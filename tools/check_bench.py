#!/usr/bin/env python3
"""Validate the machine-readable BENCH_*.json traces the benches emit.

Usage: tools/check_bench.py BENCH_lp.json BENCH_snd.json BENCH_service.json ...

Each file self-identifies through meta.bench; the matching schema check
runs and the script exits nonzero on the first violation. CI calls this
instead of inlining the assertions in the workflow, so the checks are
versioned with the code that produces the traces (schemas documented in
EXPERIMENTS.md).
"""

import json
import sys


class BenchError(Exception):
    pass


# Hard steady-state allocation budget for the sparse revised simplex,
# in amortized Gc minor words per pivot (lp.sparse.allocs_per_pivot,
# also words_per_pivot in BENCH_alloc.json). The Bigarray kernels
# measure ~220-310 words/pivot at n=128-256; the budget carries a ~3.3x
# headroom factor over that so refactorization-amortization drift (the
# gauge divides total words by pivot count, and refactor cadence shifts
# with Devex reference resets) never flaps the gate. This is headroom
# for *accounting* drift, not timing: minor-word deltas are
# deterministic allocation counts, so unlike the wall-clock gates no
# shared-runner relaxation applies and the budget is hard in every
# mode. For scale: the boxed-float kernels this replaced measured
# 3834.85 words/pivot at n=256 (recorded as baseline_words_per_pivot
# in BENCH_alloc.json), 3.7x over this budget.
WORDS_PER_PIVOT_BUDGET = 1024.0


def need(obj, key, where):
    if key not in obj:
        raise BenchError(f"{where}: missing key {key!r}")
    return obj[key]


def check_lp(b):
    rows = need(b, "sparse", "lp_bench")
    if not rows:
        raise BenchError("lp_bench: empty sparse bench block")
    for row in rows:
        if row.get("agree") is not True:
            raise BenchError(f"lp_bench: sparse row disagrees: {row}")
        for key in ("n", "dense_ms", "sparse_ms", "speedup",
                    "dense_pivots", "sparse_pivots", "sparse_refactors"):
            need(row, key, "lp_bench sparse row")
    if need(b, "separation", "lp_bench").get("agree") is not True:
        raise BenchError(f"lp_bench: separation disagrees: {b['separation']}")
    meta = need(b, "meta", "lp_bench")
    if meta.get("sparse_backend") != "revised-simplex-sparse":
        raise BenchError(f"lp_bench: unexpected sparse backend: {meta}")
    if meta.get("sparse_engine") != "lu-ft":
        raise BenchError(f"lp_bench: sparse engine is not the LU default: {meta}")
    check_lp_lu(b, meta)
    summary = need(b, "summary", "lp_bench")
    for key in ("n64_speedup", "warm_pivots_total", "cold_pivots_total",
                "separation_speedup", "lu_max_n", "lu_speedup_n128"):
        need(summary, key, "lp_bench summary")
    if summary["warm_pivots_total"] > summary["cold_pivots_total"]:
        raise BenchError(
            "lp_bench: warm-started cutting planes pivoted more than cold "
            f"({summary['warm_pivots_total']} > {summary['cold_pivots_total']})")


def check_lp_lu(b, meta):
    """The LU-vs-eta block (DESIGN.md section 11, EXPERIMENTS.md schema).

    Hard gates: rows present at the mode's required sizes, LU/eta cost
    agreement wherever eta ran, strictly fewer LU refactorizations at
    n >= 256, the n=128 speedup floor (>= 1.0x in full mode;
    smoke/quick timings on shared runners only have a 0.8x hard floor,
    with a warning below 1.0x), and the allocs-per-pivot steady-state
    budget (hard — minor-word counts are deterministic allocation
    accounting, immune to shared-runner timing noise; see
    WORDS_PER_PIVOT_BUDGET).
    """
    rows = need(b, "lu", "lp_bench")
    if not rows:
        raise BenchError("lp_bench: empty lu bench block")
    strict = meta.get("mode") == "full"
    required = {128, 256} if meta.get("mode") != "full" else {128, 256, 512, 1024}
    sizes = set()
    for row in rows:
        for key in ("n", "lu_ms", "lu_pivots", "lu_refactors", "lu_updates",
                    "lu_fill_nnz", "allocs_per_pivot", "rounds", "cost"):
            need(row, key, "lp_bench lu row")
        n = row["n"]
        sizes.add(n)
        if "eta_ms" in row:
            if row.get("agree") is not True:
                raise BenchError(f"lp_bench: LU/eta disagree at n={n}: {row}")
            if n >= 256 and row["lu_refactors"] >= row["eta_refactors"]:
                raise BenchError(
                    f"lp_bench: LU refactorized {row['lu_refactors']}x at n={n}, "
                    f"not strictly fewer than eta's {row['eta_refactors']}x")
            if n == 128:
                speedup = need(row, "speedup_vs_eta", "lp_bench lu row")
                floor = 1.0 if strict else 0.8
                if speedup < floor:
                    raise BenchError(
                        f"lp_bench: LU {speedup:.2f}x vs eta at n=128 below the "
                        f"{floor}x hard floor")
                if not strict and speedup < 1.0:
                    print("check_bench: WARNING: LU only "
                          f"{speedup:.2f}x vs eta at n=128 "
                          f"({meta.get('mode')} timing)", file=sys.stderr)
        elif n <= 256:
            raise BenchError(f"lp_bench: lu row n={n} lacks its eta comparison")
        if row["allocs_per_pivot"] > WORDS_PER_PIVOT_BUDGET:
            raise BenchError(
                f"lp_bench: lp.sparse.allocs_per_pivot "
                f"{row['allocs_per_pivot']:.0f} words at n={n} exceeds the "
                f"{WORDS_PER_PIVOT_BUDGET:.0f}-word hard budget")
    missing = required - sizes
    if missing:
        raise BenchError(
            f"lp_bench: lu block missing required sizes {sorted(missing)} "
            f"for mode {meta.get('mode')!r}")


def check_snd(b):
    frontier = need(b, "frontier", "snd_bench")
    if frontier.get("agree") is not True:
        raise BenchError(f"snd_bench: frontier disagrees with brute force: {frontier}")
    priced = need(need(frontier, "engine", "snd_bench frontier"),
                  "trees_priced", "snd_bench frontier.engine")
    total = need(frontier, "trees_total", "snd_bench frontier")
    if priced > total:
        raise BenchError(
            f"snd_bench: engine priced {priced} trees, brute enumerates {total}")
    for row in need(b, "scaling", "snd_bench"):
        if row.get("agree") is not True:
            raise BenchError(f"snd_bench: scaling row disagrees: {row}")
    summary = need(b, "summary", "snd_bench")
    if summary.get("frontier_target_met") is not True:
        raise BenchError(f"snd_bench: frontier solve-reduction target missed: {summary}")
    if need(summary, "max_n_engine", "snd_bench summary") < \
       need(summary, "max_n_brute", "snd_bench summary"):
        raise BenchError(f"snd_bench: engine scaled worse than brute force: {summary}")


def check_service(b):
    meta = need(b, "meta", "service_bench")
    load = need(b, "load", "service_bench")
    results = need(b, "results", "service_bench")
    latency = need(b, "latency_ms", "service_bench")
    requests = need(load, "requests", "service_bench load")
    if meta.get("mode") == "smoke" and requests < 1000:
        raise BenchError(f"service_bench: smoke replayed only {requests} requests (< 1000)")
    answered = sum(need(results, key, "service_bench results")
                   for key in ("ok", "deadline_expired", "parse_errors",
                               "solver_errors", "other_errors"))
    if answered != requests:
        raise BenchError(
            f"service_bench: {requests} requests but {answered} responses accounted for")
    if results["solver_errors"] != 0:
        raise BenchError(f"service_bench: {results['solver_errors']} solver errors")
    if results["deadline_expired"] < 1:
        raise BenchError("service_bench: no deadline expiry observed")
    if need(results, "cache_hits", "service_bench results") < 1:
        raise BenchError("service_bench: no cache hit observed")
    p50 = need(latency, "p50", "service_bench latency_ms")
    p99 = need(latency, "p99", "service_bench latency_ms")
    if not (0.0 <= p50 <= p99 <= need(latency, "max", "service_bench latency_ms")):
        raise BenchError(f"service_bench: latency percentiles out of order: {latency}")
    if need(b, "throughput_rps", "service_bench") <= 0.0:
        raise BenchError("service_bench: nonpositive throughput")

    # Sharding at saturation (DESIGN.md section 12): N >= 2 shards must
    # not be slower than the single-dispatcher baseline. Timing floor
    # follows the repo's shared-runner policy: hard >= 0.8x with a
    # warning below 1.0x in smoke mode, strict >= 1.0x in full mode.
    strict = meta.get("mode") == "full"
    sat = need(b, "saturation", "service_bench")
    if need(sat, "shards", "service_bench saturation") < 2:
        raise BenchError("service_bench: saturation block ran with < 2 shards")
    for key in ("baseline_rps", "sharded_rps"):
        if need(sat, key, "service_bench saturation") <= 0.0:
            raise BenchError(f"service_bench: nonpositive saturation {key}")
    speedup = need(sat, "speedup", "service_bench saturation")
    floor = 1.0 if strict else 0.8
    if speedup < floor:
        raise BenchError(
            f"service_bench: {sat['shards']} shards reached only "
            f"{speedup:.2f}x the single-dispatcher saturation rps "
            f"(floor {floor:.1f}x)")
    if not strict and speedup < 1.0:
        print(f"WARNING: service_bench: sharded saturation speedup "
              f"{speedup:.2f}x < 1.0x (smoke timing, advisory)",
              file=sys.stderr)

    # Open-loop overload (EXPERIMENTS.md schema): every offered request
    # answered (shed-not-crash), zero solver errors under overload, real
    # shedding at 2x, shed counts monotone in load, and p99 monotone in
    # load (warn below 1.0x for shared-runner noise, hard fail below
    # 0.5x — inverted latency means the harness is broken).
    ol = need(b, "open_loop", "service_bench")
    runs = need(ol, "runs", "service_bench open_loop")
    if len(runs) < 2:
        raise BenchError("service_bench: open_loop needs runs at >= 2 load factors")
    per_run = need(ol, "requests_per_run", "service_bench open_loop")
    by_load = {}
    for run in runs:
        where = "service_bench open_loop run"
        load = need(run, "load_factor", where)
        answered = sum(need(run, key, where)
                       for key in ("ok", "shed", "deadline_expired", "errors"))
        if answered != per_run:
            raise BenchError(
                f"service_bench: open loop at {load}x answered {answered} of "
                f"{per_run} offered requests")
        if run["errors"] != 0:
            raise BenchError(
                f"service_bench: {run['errors']} solver errors under "
                f"{load}x open-loop load")
        lat = need(run, "latency_ms", where)
        if not (0.0 <= need(lat, "p50", where) <= need(lat, "p99", where)
                <= need(lat, "p999", where) <= need(lat, "max", where)):
            raise BenchError(
                f"service_bench: open-loop latency percentiles out of order "
                f"at {load}x: {lat}")
        by_load[load] = run
    if 1.0 not in by_load or 2.0 not in by_load:
        raise BenchError(
            f"service_bench: open loop must include 1.0x and 2.0x runs, "
            f"got {sorted(by_load)}")
    run_1x, run_2x = by_load[1.0], by_load[2.0]
    if run_2x["shed"] < 1:
        raise BenchError("service_bench: no shedding under 2x open-loop overload")
    if run_2x["shed"] < run_1x["shed"]:
        raise BenchError(
            f"service_bench: shed count fell with load "
            f"({run_1x['shed']} at 1x, {run_2x['shed']} at 2x)")
    p99_1x = run_1x["latency_ms"]["p99"]
    p99_2x = run_2x["latency_ms"]["p99"]
    if p99_1x > 0.0:
        ratio = p99_2x / p99_1x
        if ratio < 0.5:
            raise BenchError(
                f"service_bench: p99 fell to {ratio:.2f}x under 2x overload "
                f"({p99_1x:.2f}ms -> {p99_2x:.2f}ms) — harness broken")
        if ratio < 1.0:
            print(f"WARNING: service_bench: p99 not monotone in load "
                  f"({p99_1x:.2f}ms at 1x, {p99_2x:.2f}ms at 2x; "
                  f"shared-runner timing, advisory)", file=sys.stderr)

    if need(need(b, "summary", "service_bench"), "gates_met",
            "service_bench summary") is not True:
        raise BenchError("service_bench: the bench's own gates failed")


def check_churn(b):
    """BENCH_churn.json: incremental re-solve sessions under a churn trace.

    Correctness is a hard failure (warm/cold disagreement, a missing
    rational certificate, a nonconverged resolve, malformed schema); the
    >= 5x warm-vs-cold speedup target is a warning only — latency on
    shared CI runners is advisory.
    """
    trace = need(b, "trace", "churn_bench")
    steps = need(trace, "steps", "churn_bench trace")
    if steps < 1:
        raise BenchError("churn_bench: empty trace")
    mutations = (need(trace, "weight_deltas", "churn_bench trace")
                 + need(trace, "add_player", "churn_bench trace")
                 + need(trace, "remove_player", "churn_bench trace"))
    if mutations != steps:
        raise BenchError(
            f"churn_bench: {steps} steps but {mutations} deltas accounted for")
    backends = need(b, "backends", "churn_bench")
    slow = []
    for name in ("dense", "sparse"):
        side = need(backends, name, f"churn_bench backends")
        where = f"churn_bench {name}"
        if side.get("agree") is not True:
            raise BenchError(f"{where}: warm resolve disagrees with cold solve")
        if side.get("converged") is not True:
            raise BenchError(f"{where}: a resolve did not converge")
        for block in ("warm_ms", "cold_ms"):
            ms = need(side, block, where)
            if not (0.0 <= need(ms, "p50", where) <= need(ms, "p99", where)):
                raise BenchError(f"{where}: {block} percentiles out of order: {ms}")
        for key in ("pivots_per_resolve", "cold_pivots_per_solve",
                    "rounds_per_resolve", "warm_starts"):
            if need(side, key, where) < 0:
                raise BenchError(f"{where}: negative {key}")
        reuse = need(side, "cut_reuse_rate", where)
        if not (0.0 <= reuse <= 1.0):
            raise BenchError(f"{where}: cut_reuse_rate {reuse} outside [0, 1]")
        speedup = need(side, "speedup_p50", where)
        if speedup < 5.0:
            slow.append(f"{name} {speedup:.1f}x")
    rational = need(b, "rational", "churn_bench")
    if rational.get("all_certified") is not True:
        raise BenchError("churn_bench: a step lacks its exact-rational certificate")
    if need(rational, "certified_steps", "churn_bench rational") != steps:
        raise BenchError(
            f"churn_bench: certified {rational['certified_steps']} of {steps} steps")
    if need(b, "snd_churn", "churn_bench").get("agree") is not True:
        raise BenchError(
            "churn_bench: SND frontier diverged after cache invalidation")
    if need(need(b, "summary", "churn_bench"), "gates_met",
            "churn_bench summary") is not True:
        raise BenchError("churn_bench: the bench's own gates failed")
    if slow:
        print("check_bench: WARNING: churn_bench warm p50 speedup below the "
              f"5x target ({', '.join(slow)}) — advisory on shared runners",
              file=sys.stderr)


def check_alloc(b):
    """BENCH_alloc.json: steady-state allocation on the solver hot paths.

    Every gate here is hard, smoke mode included: minor-word counts are
    deterministic allocation accounting, not wall clock (see
    WORDS_PER_PIVOT_BUDGET for the documented headroom). Gates: pivot
    rows at the required sizes within the per-pivot budget, a >= 10x
    reduction against the recorded boxed-kernel baseline at n=256,
    separation allocation O(1) per unit of separation work (a round
    prices n players over m edges, so words/round/(n*m) must not grow
    with n), zero arena regrowth once warm, and a measured per-request
    gauge on the service path.
    """
    meta = need(b, "meta", "alloc_bench")
    rows = need(b, "pivot", "alloc_bench")
    if not rows:
        raise BenchError("alloc_bench: empty pivot block")
    sizes = set()
    for row in rows:
        for key in ("n", "m", "pivots", "refactors", "rounds",
                    "words_per_pivot", "words_per_round", "cost"):
            need(row, key, "alloc_bench pivot row")
        n = row["n"]
        sizes.add(n)
        if row["words_per_pivot"] > WORDS_PER_PIVOT_BUDGET:
            raise BenchError(
                f"alloc_bench: {row['words_per_pivot']:.0f} words/pivot at "
                f"n={n} exceeds the {WORDS_PER_PIVOT_BUDGET:.0f}-word hard "
                "budget")
    required = {128, 256} if meta.get("mode") != "full" else {128, 256, 512}
    missing = required - sizes
    if missing:
        raise BenchError(
            f"alloc_bench: pivot block missing required sizes "
            f"{sorted(missing)} for mode {meta.get('mode')!r}")
    summary = need(b, "summary", "alloc_bench")
    baseline = need(summary, "baseline_words_per_pivot", "alloc_bench summary")
    reduction = need(summary, "reduction_at_n256", "alloc_bench summary")
    if reduction < 10.0:
        raise BenchError(
            f"alloc_bench: words/pivot at n=256 only {reduction:.1f}x below "
            f"the {baseline:.0f}-word boxed-kernel baseline (>= 10x required)")
    sep_ratio = need(summary, "sep_words_per_unit_ratio", "alloc_bench summary")
    if sep_ratio > 1.5:
        raise BenchError(
            f"alloc_bench: separation words per player*edge grew {sep_ratio:.2f}x "
            "across sizes — per-round allocation is not O(1) in n")
    arena = need(b, "arena", "alloc_bench")
    for key in ("refactor_grows_delta", "dijkstra_grows_delta"):
        delta = need(arena, key, "alloc_bench arena")
        if delta != 0:
            raise BenchError(
                f"alloc_bench: {key} = {delta} — scratch reallocated after "
                "warm-up (arena reuse broken)")
    service = need(b, "service", "alloc_bench")
    if need(service, "requests", "alloc_bench service") < 1:
        raise BenchError("alloc_bench: no service requests measured")
    if need(service, "words_per_request", "alloc_bench service") <= 0.0:
        raise BenchError("alloc_bench: service.request_words gauge not measured")
    if need(summary, "gates_met", "alloc_bench summary") is not True:
        raise BenchError("alloc_bench: the bench's own gates failed")


CHECKS = {
    "lp_bench": check_lp,
    "snd_bench": check_snd,
    "service_bench": check_service,
    "churn_bench": check_churn,
    "alloc_bench": check_alloc,
}


def main(paths):
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in paths:
        try:
            with open(path) as f:
                b = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_bench: {path}: unreadable: {e}", file=sys.stderr)
            return 1
        name = b.get("meta", {}).get("bench")
        check = CHECKS.get(name)
        if check is None:
            print(f"check_bench: {path}: unknown bench {name!r} "
                  f"(expected one of {sorted(CHECKS)})", file=sys.stderr)
            return 1
        try:
            check(b)
        except BenchError as e:
            print(f"check_bench: {path}: {e}", file=sys.stderr)
            return 1
        print(f"check_bench: {path}: ok ({name}, mode={b['meta'].get('mode')})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
