(** Minimal OCaml 5 data parallelism for the benchmark sweeps and the
    branch-and-bound SND engine.

    [map f a] evaluates [f] on every element of [a] using up to
    [Domain.recommended_domain_count] domains, handing out indices through
    an atomic counter (dynamic scheduling: parameter sweeps here have wildly
    uneven per-item cost — an LP at n=256 dwarfs one at n=8). Exceptions in
    workers are captured and re-raised in the caller; sibling workers
    cancel cooperatively (they poll the shared error cell before every
    item, and [map_cancellable] also hands [f] a poll closure so long items
    can abort mid-flight). On a single-core container this degrades
    gracefully to sequential execution.

    [Pool] is the persistent variant: spawn the domains once, push many
    [map]s through them — the SND search prices trees in small batches and
    cannot afford a domain spawn/join per batch. [Incumbent] is the shared
    atomic bound those workers race on. *)

exception Cancelled

module Obs = Repro_obs.Obs

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* A [Cancelled] raised while the error cell is still empty did NOT come
   from the poll closure (which only raises once the cell is set) — it came
   from the user callback itself. Such a spurious [Cancelled] must poison
   the sweep and re-raise in the caller; silently discarding it used to
   leave a hole in [results] and crash the final [Option.get] with an
   opaque [Invalid_argument]. The CAS covers both cases at once: a
   cooperative [Cancelled] (cell already set) loses the race and is
   discarded; a spurious one (cell empty) wins it and poisons the sweep
   like any other exception. *)
let record_item_exn ~error e = ignore (Atomic.compare_and_set error None (Some e))

(* Guided chunk size: claim half the remaining work divided evenly over
   the workers, never less than one item. Early chunks are large (low
   counter contention), late chunks shrink to single items so an uneven
   tail — one player's Dijkstra dwarfing the rest — cannot strand the
   whole sweep behind a worker holding a big fixed chunk. [approx] is a
   racy read of the claim counter; it only tunes the size, claims
   themselves go through fetch-and-add and never overlap. *)
let guided_chunk ~workers ~n approx = max 1 ((n - approx) / (2 * workers))

(* The shared work loop: claim guided chunks of indices until the array
   is exhausted or a sibling has recorded an error. Results land at their
   absolute indices, so scheduling never reorders them. [f] receives a
   poll closure raising [Cancelled] when the sweep is poisoned, so
   cooperative items can bail mid-computation. *)
let run_sweep ~workers ~error ~next ~results f a =
  let n = Array.length a in
  let check () = if Atomic.get error <> None then raise Cancelled in
  let rec work () =
    if Atomic.get error = None then begin
      let k = guided_chunk ~workers ~n (Atomic.get next) in
      let lo = Atomic.fetch_and_add next k in
      if lo < n then begin
        let hi = min (lo + k) n in
        let i = ref lo in
        while !i < hi && Atomic.get error = None do
          (match f check a.(!i) with
          | v -> results.(!i) <- Some v
          | exception e -> record_item_exn ~error e);
          incr i
        done;
        work ()
      end
    end
  in
  work

let map_cancellable ?domains f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let workers = min n (match domains with Some d -> max 1 d | None -> default_domains ()) in
    if workers = 1 then Array.map (f (fun () -> ())) a
    else begin
      let results = Array.make n None in
      let error = Atomic.make None in
      let next = Atomic.make 0 in
      let work = run_sweep ~workers ~error ~next ~results f a in
      let handles = List.init (workers - 1) (fun _ -> Domain.spawn work) in
      work ();
      List.iter Domain.join handles;
      (match Atomic.get error with Some e -> raise e | None -> ());
      Array.map Option.get results
    end
  end

let map ?domains f a = map_cancellable ?domains (fun _check x -> f x) a

(** [map_list f l] is [map] over a list. *)
let map_list ?domains f l = Array.to_list (map ?domains f (Array.of_list l))

(** Timing helper: elapsed seconds of [f ()] along with its result.
    Monotonic, so an NTP step mid-measurement cannot produce a negative
    or wildly inflated duration. *)
let timed f =
  let t0 = Repro_util.Mclock.now () in
  let v = f () in
  (v, Repro_util.Mclock.now () -. t0)

(* ------------------------------------------------------------------ *)
(* Shared atomic incumbent                                             *)
(* ------------------------------------------------------------------ *)

module Incumbent = struct
  (* Lock-free best-so-far cell: workers race CAS improvements ordered by
     a caller-supplied strict "beats" relation. The SND search keeps its
     best affordable (weight, tree) here so sibling domains can skip
     pricing trees an incumbent already dominates. *)
  type 'a t = { cell : 'a option Atomic.t; better : 'a -> 'a -> bool }

  let create ~better () = { cell = Atomic.make None; better }
  let get t = Atomic.get t.cell

  (* CAS loop; true iff [v] strictly improved the incumbent. *)
  let rec improve t v =
    let cur = Atomic.get t.cell in
    let wins = match cur with None -> true | Some c -> t.better v c in
    if wins then
      if Atomic.compare_and_set t.cell cur (Some v) then true else improve t v
    else wins
end

(* ------------------------------------------------------------------ *)
(* Persistent worker pool                                              *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* One outstanding job at a time; workers sleep on [work_ready] between
     jobs. Completion is "all indices claimed (or the job poisoned) and no
     worker still inside an item", tracked by [next]/[inflight]. A worker
     that wakes up late joins the job, finds nothing to claim, and goes
     back to sleep — nothing is lost or run twice. *)
  type ('a, 'b) job_data = {
    data : 'a array;
    f : (unit -> unit) -> 'a -> 'b;
    results : 'b option array;
    next : int Atomic.t;
    inflight : int Atomic.t;
    error : exn option Atomic.t;
    job_workers : int; (* guided-chunk divisor: pool size at submit time *)
  }

  type job = Job : ('a, 'b) job_data -> job

  type t = {
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable job : job option;
    mutable epoch : int;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
  }

  (* Pool observability: items claimed across all jobs, wall-clock seconds
     workers spent inside jobs, and items aborted by cancellation. All
     atomic — workers report without touching the pool mutex. *)
  let c_items = Obs.counter "pool.items"
  let c_cancellations = Obs.counter "pool.cancellations"
  let c_item_errors = Obs.counter "pool.item_errors"
  let g_busy = Obs.gauge "pool.busy_s"

  let run_job pool (Job j) =
    Atomic.incr j.inflight;
    let t0 = Repro_util.Mclock.now () in
    let n = Array.length j.data in
    let check () = if Atomic.get j.error <> None then raise Cancelled in
    let rec work () =
      if Atomic.get j.error = None then begin
        let k = guided_chunk ~workers:j.job_workers ~n (Atomic.get j.next) in
        let lo = Atomic.fetch_and_add j.next k in
        if lo < n then begin
          let hi = min (lo + k) n in
          let i = ref lo in
          while !i < hi && Atomic.get j.error = None do
            Obs.incr c_items;
            (* Same unpoisoned-[Cancelled] contract as [run_sweep]. *)
            (match j.f check j.data.(!i) with
            | v -> j.results.(!i) <- Some v
            | exception Cancelled ->
                Obs.incr c_cancellations;
                record_item_exn ~error:j.error Cancelled
            | exception e -> record_item_exn ~error:j.error e);
            incr i
          done;
          work ()
        end
      end
    in
    work ();
    Obs.accumulate g_busy (Repro_util.Mclock.now () -. t0);
    Atomic.decr j.inflight;
    Mutex.lock pool.mutex;
    Condition.broadcast pool.work_done;
    Mutex.unlock pool.mutex

  let worker pool =
    let rec loop last_epoch =
      Mutex.lock pool.mutex;
      while (not pool.stop) && pool.epoch = last_epoch do
        Condition.wait pool.work_ready pool.mutex
      done;
      let stop = pool.stop and epoch = pool.epoch and job = pool.job in
      Mutex.unlock pool.mutex;
      if not stop then begin
        (match job with Some j -> run_job pool j | None -> ());
        loop epoch
      end
    in
    loop 0

  let create ?domains () =
    let workers = match domains with Some d -> max 1 d | None -> default_domains () in
    let pool =
      {
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        job = None;
        epoch = 0;
        stop = false;
        workers = [];
      }
    in
    (* The submitting domain participates too, so spawn one fewer. *)
    pool.workers <- List.init (workers - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
    pool

  let size pool = 1 + List.length pool.workers

  let map_cancellable pool f a =
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      Mutex.lock pool.mutex;
      if pool.stop then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Parallel.Pool.map: pool is shut down"
      end;
      let j =
        {
          data = a;
          f;
          results = Array.make n None;
          next = Atomic.make 0;
          inflight = Atomic.make 0;
          error = Atomic.make None;
          job_workers = size pool;
        }
      in
      pool.job <- Some (Job j);
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      run_job pool (Job j);
      let finished () =
        Atomic.get j.inflight = 0
        && (Atomic.get j.next >= n || Atomic.get j.error <> None)
      in
      Mutex.lock pool.mutex;
      while not (finished ()) do
        Condition.wait pool.work_done pool.mutex
      done;
      pool.job <- None;
      Mutex.unlock pool.mutex;
      (match Atomic.get j.error with Some e -> raise e | None -> ());
      Array.map Option.get j.results
    end

  let map pool f a = map_cancellable pool (fun _check x -> f x) a

  (* Fault isolation by construction: the wrapped callback never raises, so
     the sweep machinery never sees an exception and never poisons the job.
     Each item's exception lands as [Error] at its own index — the request
     service's per-request cancellation (deadline cells raising [Cancelled]
     from a composed poll) rides entirely on this. *)
  let map_result pool f a =
    map_cancellable pool
      (fun check x ->
        match f check x with
        | v -> Ok v
        | exception (Cancelled as e) ->
            Obs.incr c_cancellations;
            Error e
        | exception e ->
            Obs.incr c_item_errors;
            Error e)
      a

  let shutdown pool =
    Mutex.lock pool.mutex;
    let already = pool.stop in
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    if not already then List.iter Domain.join pool.workers;
    pool.workers <- []
end
