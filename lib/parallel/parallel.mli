(** Minimal OCaml 5 data parallelism for parameter sweeps and the
    branch-and-bound SND engine.

    Dynamic scheduling over an atomic index counter with guided chunk
    sizing (each claim takes half the remaining work split over the
    workers, shrinking to single items near the tail) — sweep items here
    have wildly uneven cost (an LP at n=256 dwarfs one at n=8, one
    player's Dijkstra dwarfs the rest of a separation round). Results
    always land at their input indices, whatever the schedule. Degrades
    to sequential execution on single-core machines. *)

(** Raised inside a worker item by the poll closure of
    {!map_cancellable} / {!Pool.map_cancellable} when a sibling worker has
    already poisoned the sweep; the item's result is discarded and the
    original exception is re-raised in the caller. If the user callback
    raises [Cancelled] on its own while the sweep is {e not} poisoned, the
    sweep treats it like any other exception: siblings cancel and
    [Cancelled] re-raises in the caller (it used to be swallowed, leaving
    a hole in the result array and crashing with an opaque
    [Invalid_argument]). *)
exception Cancelled

(** [Domain.recommended_domain_count () - 1], at least 1. *)
val default_domains : unit -> int

(** [map ?domains f a]: evaluate [f] on every element using up to
    [domains] domains (default {!default_domains}). Order of results
    matches [a]. A worker exception is re-raised in the caller; sibling
    workers cancel cooperatively (the error cell is polled before every
    item claim). *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map] where [f] also receives a poll closure: calling it raises
    {!Cancelled} when the sweep has been poisoned, so long-running items
    can abort mid-computation instead of running to completion. *)
val map_cancellable : ?domains:int -> ((unit -> unit) -> 'a -> 'b) -> 'a array -> 'b array

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** Wall-clock seconds of a thunk, with its result. *)
val timed : (unit -> 'a) -> 'a * float

(** Lock-free best-so-far cell shared between worker domains, ordered by a
    caller-supplied strict "beats" relation. *)
module Incumbent : sig
  type 'a t

  (** [create ~better ()]: empty incumbent; [better a b] must mean [a]
      strictly beats [b] (irreflexive), or the CAS loop would spin. *)
  val create : better:('a -> 'a -> bool) -> unit -> 'a t

  val get : 'a t -> 'a option

  (** Race a candidate in; [true] iff it strictly improved the cell. *)
  val improve : 'a t -> 'a -> bool
end

(** Persistent worker pool: spawn the domains once, push many maps through
    them. The SND search prices trees in small batches and cannot afford a
    domain spawn/join per batch. At most one map may be in flight per pool
    (maps from the pool's own workers would deadlock — don't nest). *)
module Pool : sig
  type t

  (** [create ?domains ()] spawns [domains - 1] worker domains (default
      {!default_domains}); the submitting domain participates in every
      map, so total parallelism is [domains]. *)
  val create : ?domains:int -> unit -> t

  (** Total domains participating in a map (workers + submitter). *)
  val size : t -> int

  (** Like {!val:map}, on the pool's resident domains. Raises
      [Invalid_argument] after [shutdown]. *)
  val map : t -> ('a -> 'b) -> 'a array -> 'b array

  (** Like {!val:map_cancellable}, on the pool's resident domains. *)
  val map_cancellable : t -> ((unit -> unit) -> 'a -> 'b) -> 'a array -> 'b array

  (** Per-item fault isolation: like {!map_cancellable}, but an exception
      raised by one item is captured as [Error] at that item's index
      instead of poisoning the sweep — every other item still runs to
      completion. This is the hook the request service builds per-request
      cancellation on: each item's callback composes its own poll (e.g. a
      deadline or cancellation cell) that raises {!Cancelled}, and the
      resulting [Error Cancelled] kills only that request. A captured
      [Cancelled] still counts under the [pool.cancellations] obs counter;
      other exceptions count under [pool.item_errors]. *)
  val map_result : t -> ((unit -> unit) -> 'a -> 'b) -> 'a array -> ('b, exn) result array

  (** Join the worker domains; idempotent. Subsequent maps raise. *)
  val shutdown : t -> unit
end
