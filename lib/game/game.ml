(** Network design games with fair (Shapley) cost sharing, as defined in
    Section 2 of the paper, functorized over the weight field.

    A game is an edge-weighted undirected graph plus one (source, target)
    pair per player; a state assigns each player a path; the weight of every
    established edge is split equally among the players using it. Subsidies
    [b] reduce edge [a]'s shareable weight to [w_a - b_a] (the "extension of
    the game with subsidies").

    The module provides the general engine (costs, best responses via
    Dijkstra on deviation shares, equilibrium checks, Rosenthal potential,
    best-response dynamics) and two specializations used heavily by the
    reproduction: [Broadcast] (spanning-tree states checked with the O(|E|)
    condition of Lemma 2) and [Exact] (price of stability / anarchy by
    spanning-tree enumeration on small instances). *)

module Make (F : Repro_field.Field.S) = struct
  module G = Repro_graph.Wgraph.Make (F)

  type spec = { graph : G.t; pairs : (int * int) array }

  let n_players spec = Array.length spec.pairs

  let create ~graph ~pairs =
    Array.iter
      (fun (s, t) ->
        if s < 0 || s >= G.n_nodes graph || t < 0 || t >= G.n_nodes graph then
          invalid_arg "Game.create: terminal out of range";
        if s = t then invalid_arg "Game.create: source equals target")
      pairs;
    { graph; pairs }

  (** Broadcast game: one player per non-root node, each connecting to
      [root]. Player [i] is associated with the [i]-th non-root node in
      increasing node order. *)
  let broadcast ~graph ~root =
    let pairs =
      Array.init (G.n_nodes graph - 1) (fun i ->
          let v = if i < root then i else i + 1 in
          (v, root))
    in
    { graph; pairs }

  (** The player associated with node [v] in a broadcast game. *)
  let broadcast_player ~root v =
    if v = root then invalid_arg "Game.broadcast_player: root has no player";
    if v < root then v else v - 1

  (** Multicast game: one player per terminal, each connecting to [root]
      (broadcast is the special case terminals = all non-root nodes). The
      paper's Section 6 poses SND on multicast games as an open problem;
      the general-game machinery (LP (2), cutting planes, dynamics) applies
      unchanged, while the broadcast-only fast paths do not. *)
  let multicast ~graph ~root ~terminals =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun v ->
        if v = root then invalid_arg "Game.multicast: root cannot be a terminal";
        if Hashtbl.mem seen v then invalid_arg "Game.multicast: duplicate terminal";
        Hashtbl.add seen v ())
      terminals;
    create ~graph ~pairs:(Array.of_list (List.map (fun v -> (v, root)) terminals))

  (* ---------------------------------------------------------------- *)
  (* States                                                            *)
  (* ---------------------------------------------------------------- *)

  (** A state assigns each player a path, as edge ids in travel order from
      her source to her target. *)
  type state = int list array

  (** Check that [state.(i)] is a walk from [s_i] to [t_i]. *)
  let validate_state spec state =
    if Array.length state <> n_players spec then
      invalid_arg "Game.validate_state: wrong number of strategies";
    Array.iteri
      (fun i path ->
        let s, t = spec.pairs.(i) in
        let final =
          List.fold_left
            (fun here id -> G.other spec.graph id here)
            s path
        in
        if final <> t then invalid_arg "Game.validate_state: path does not reach target")
      state

  (** n_a(T): how many players use each edge. *)
  let usage spec state =
    let u = Array.make (G.n_edges spec.graph) 0 in
    ignore spec;
    Array.iter (List.iter (fun id -> u.(id) <- u.(id) + 1)) state;
    u

  (** Membership mask of player [i]'s strategy: n^i_a(T). *)
  let player_edges spec state i =
    let m = Array.make (G.n_edges spec.graph) false in
    List.iter (fun id -> m.(id) <- true) state.(i);
    m

  let no_subsidy spec = Array.make (G.n_edges spec.graph) F.zero

  (** Shareable weight of edge [id] under subsidies. *)
  let net_weight spec subsidy id = F.sub (G.weight spec.graph id) subsidy.(id)

  (** cost_i(T; b) = sum over the player's edges of (w_a - b_a)/n_a(T).
      [usage] short-circuits the per-call usage recomputation when the
      caller already holds [usage spec state] — the separation sweeps call
      this once per player per round, and the recount was the dominant
      cost of a sweep. *)
  let player_cost ?subsidy ?usage:u_opt spec state i =
    let b = match subsidy with Some b -> b | None -> no_subsidy spec in
    let u = match u_opt with Some u -> u | None -> usage spec state in
    List.fold_left
      (fun acc id -> F.add acc (F.div (net_weight spec b id) (F.of_int u.(id))))
      F.zero state.(i)

  (** Social cost: total weight of established edges (the full weight; the
      authority pays the subsidized part). *)
  let social_cost spec state =
    let u = usage spec state in
    let acc = ref F.zero in
    Array.iteri (fun id k -> if k > 0 then acc := F.add !acc (G.weight spec.graph id)) u;
    !acc

  (** Rosenthal's potential Phi(T) = sum_a (w_a - b_a) * H_{n_a(T)}. *)
  let potential ?subsidy spec state =
    let b = match subsidy with Some b -> b | None -> no_subsidy spec in
    let u = usage spec state in
    let acc = ref F.zero in
    Array.iteri
      (fun id k ->
        if k > 0 then
          acc :=
            F.add !acc (F.mul (net_weight spec b id) (Repro_field.Field.harmonic (module F) k)))
      u;
    !acc

  (* ---------------------------------------------------------------- *)
  (* Best responses and equilibrium                                    *)
  (* ---------------------------------------------------------------- *)

  (** Best response of player [i] to the other players' strategies in
      [state]: the cheapest path from s_i to t_i where edge [a] costs
      [(w_a - b_a) / (n_a(T) + 1 - n^i_a(T))]. Returns the cost and path. *)
  let best_response ?subsidy ?usage:u_opt spec state i =
    let b = match subsidy with Some b -> b | None -> no_subsidy spec in
    let u = match u_opt with Some u -> u | None -> usage spec state in
    let mine = player_edges spec state i in
    let weight_fn (e : G.edge) =
      let sharers = u.(e.id) + 1 - if mine.(e.id) then 1 else 0 in
      F.div (net_weight spec b e.id) (F.of_int sharers)
    in
    let s, t = spec.pairs.(i) in
    match G.shortest_path ~weight_fn spec.graph ~src:s ~dst:t with
    | None -> invalid_arg "Game.best_response: graph disconnects a player"
    | Some (cost, path) -> (cost, path)

  (** The most profitable unilateral deviation, if any: player index,
      current cost, deviation cost, deviation path. *)
  let worst_violation ?subsidy spec state =
    let best = ref None in
    let u = usage spec state in
    for i = 0 to n_players spec - 1 do
      let current = player_cost ?subsidy ~usage:u spec state i in
      let cost, path = best_response ?subsidy ~usage:u spec state i in
      if F.lt cost current then begin
        let gain = F.sub current cost in
        match !best with
        | Some (_, _, _, _, g) when F.leq gain g -> ()
        | _ -> best := Some (i, current, cost, path, gain)
      end
    done;
    Option.map (fun (i, cur, cost, path, _) -> (i, cur, cost, path)) !best

  let is_equilibrium ?subsidy spec state = worst_violation ?subsidy spec state = None

  (** Additive instability: the largest unilateral gain available to any
      player — zero exactly at equilibria. The natural "distance from
      equilibrium" used by the approximate-equilibria literature the paper
      cites (Albers & Lenzner). *)
  let additive_instability ?subsidy spec state =
    let worst = ref F.zero in
    for i = 0 to n_players spec - 1 do
      let gain =
        F.sub (player_cost ?subsidy spec state i) (fst (best_response ?subsidy spec state i))
      in
      if F.compare gain !worst > 0 then worst := gain
    done;
    !worst

  (** Multiplicative instability: the smallest alpha >= 1 such that the
      state is an alpha-approximate equilibrium (cost_i <= alpha * best
      response for every player). [None] when some player's best response
      is free while her current cost is not (alpha would be infinite). *)
  let multiplicative_instability ?subsidy spec state =
    let worst = ref (Some F.one) in
    for i = 0 to n_players spec - 1 do
      let cur = player_cost ?subsidy spec state i in
      let br = fst (best_response ?subsidy spec state i) in
      match !worst with
      | None -> ()
      | Some alpha ->
          if F.sign br > 0 then begin
            let ratio = F.div cur br in
            if F.compare ratio alpha > 0 then worst := Some ratio
          end
          else if F.sign cur > 0 then worst := None
    done;
    !worst

  let is_epsilon_equilibrium ?subsidy spec state ~epsilon =
    F.leq (additive_instability ?subsidy spec state) epsilon

  (* ---------------------------------------------------------------- *)
  (* Best-response dynamics                                            *)
  (* ---------------------------------------------------------------- *)

  module Dynamics = struct
    type outcome = {
      state : state;
      rounds : int; (* completed passes over the players *)
      moves : int; (* strategy changes performed *)
      converged : bool;
    }

    (** Like {!best_response_dynamics}, also recording the Rosenthal
        potential after each round — the decreasing sequence whose
        existence (Rosenthal, via Anshelevich et al.) is why the dynamics
        terminate. First element: the starting potential. *)
    let trace ?subsidy ?(max_rounds = 10_000) spec start =
      let state = Array.copy start in
      let moves = ref 0 in
      let potentials = ref [ potential ?subsidy spec state ] in
      let rec run round =
        if round >= max_rounds then
          ({ state; rounds = round; moves = !moves; converged = false }, List.rev !potentials)
        else begin
          let changed = ref false in
          for i = 0 to n_players spec - 1 do
            let current = player_cost ?subsidy spec state i in
            let cost, path = best_response ?subsidy spec state i in
            if F.lt cost current then begin
              state.(i) <- path;
              incr moves;
              changed := true
            end
          done;
          if !changed then begin
            potentials := potential ?subsidy spec state :: !potentials;
            run (round + 1)
          end
          else
            ({ state; rounds = round; moves = !moves; converged = true }, List.rev !potentials)
        end
      in
      run 0

    (** Round-robin best-response dynamics from [start]. Terminates because
        each improving move strictly decreases the Rosenthal potential;
        [max_rounds] only guards against float-tolerance livelock. *)
    let best_response_dynamics ?subsidy ?(max_rounds = 10_000) spec start =
      let state = Array.copy start in
      let moves = ref 0 in
      let rec run round =
        if round >= max_rounds then { state; rounds = round; moves = !moves; converged = false }
        else begin
          let changed = ref false in
          for i = 0 to n_players spec - 1 do
            let current = player_cost ?subsidy spec state i in
            let cost, path = best_response ?subsidy spec state i in
            if F.lt cost current then begin
              state.(i) <- path;
              incr moves;
              changed := true
            end
          done;
          if !changed then run (round + 1)
          else { state; rounds = round; moves = !moves; converged = true }
        end
      in
      run 0
  end

  (* ---------------------------------------------------------------- *)
  (* Broadcast specialization                                          *)
  (* ---------------------------------------------------------------- *)

  module Broadcast = struct
    (** State induced by a rooted spanning tree: every player walks her tree
        path to the root. *)
    let state_of_tree spec ~root (tree : G.Tree.t) =
      Array.init (n_players spec) (fun i ->
          let v, r = spec.pairs.(i) in
          assert (r = root);
          G.Tree.path_to_root tree v)

    (** Per-node cumulative shares along root paths.

        [s1.(v)] = sum over the tree path from v to the root of
        (w_a - b_a)/n_a — the cost of the player at v.
        [s2.(v)] = same sum with denominators n_a + 1 — the share a player
        from outside the subtree would pay after joining. *)
    let path_shares ?subsidy spec (tree : G.Tree.t) =
      let b = match subsidy with Some b -> b | None -> no_subsidy spec in
      let n = G.n_nodes spec.graph in
      let s1 = Array.make n F.zero and s2 = Array.make n F.zero in
      Array.iter
        (fun v ->
          match G.Tree.parent_edge tree v with
          | None -> ()
          | Some id ->
              let p = Option.get (G.Tree.parent tree v) in
              let w = net_weight spec b id in
              let na = G.Tree.usage tree id in
              s1.(v) <- F.add s1.(p) (F.div w (F.of_int na));
              s2.(v) <- F.add s2.(p) (F.div w (F.of_int (na + 1))))
        (G.Tree.order tree);
      (s1, s2)

    (** One Lemma 2 / LP (3) constraint: can the player at [u] gain by
        switching to non-tree edge [(u,v)] followed by v's tree path?
        Returns [Some slack] with slack = deviation cost - current cost. *)
    let deviation_slack ?subsidy spec (tree : G.Tree.t) ~shares:(s1, s2) ~u ~edge_id ~v =
      let b = match subsidy with Some b -> b | None -> no_subsidy spec in
      let l = G.Tree.lca tree u v in
      let current = s1.(u) in
      let deviation =
        F.add (net_weight spec b edge_id) (F.add (F.sub s2.(v) s2.(l)) s1.(l))
      in
      F.sub deviation current

    (** Equilibrium check for a spanning-tree state via Lemma 2: only
        single-non-tree-edge deviations need examining. Returns the most
        violated constraint if any. *)
    let tree_violation ?subsidy spec (tree : G.Tree.t) =
      let root = tree.G.Tree.root in
      let shares = path_shares ?subsidy spec tree in
      let worst = ref None in
      G.fold_edges spec.graph ~init:() ~f:(fun () e ->
          if not (G.Tree.mem_edge tree e.G.id) then
            List.iter
              (fun u ->
                if u <> root then begin
                  let v = G.other spec.graph e.G.id u in
                  let slack =
                    deviation_slack ?subsidy spec tree ~shares ~u ~edge_id:e.G.id ~v
                  in
                  if F.lt slack F.zero then
                    match !worst with
                    | Some (_, _, _, s) when F.leq s slack -> ()
                    | _ -> worst := Some (u, e.G.id, v, slack)
                end)
              [ e.G.u; e.G.v ]);
      !worst

    let is_tree_equilibrium ?subsidy spec tree = tree_violation ?subsidy spec tree = None
  end

  (* ---------------------------------------------------------------- *)
  (* Exact optima on small instances                                   *)
  (* ---------------------------------------------------------------- *)

  module Exact = struct
    type landscape = {
      mst_weight : F.t;
      best_equilibrium : (F.t * int list) option; (* weight, tree edge ids *)
      worst_equilibrium : (F.t * int list) option;
      n_trees : int;
      n_equilibria : int;
    }

    (** Scan every spanning tree of a broadcast game (no subsidies),
        recording the cheapest and the costliest equilibrium trees. By the
        cycle argument in Section 2, restricting to trees loses no
        equilibrium weight. Exponential: small instances only. *)
    let equilibrium_landscape ~graph ~root =
      let spec = broadcast ~graph ~root in
      let best = ref None and worst = ref None in
      let n_trees = ref 0 and n_eq = ref 0 in
      let mst_weight = ref None in
      G.Enumerate.iter_spanning_trees graph ~f:(fun ids ->
          incr n_trees;
          let w = G.total_weight graph ids in
          (match !mst_weight with
          | Some m when F.leq m w -> ()
          | _ -> mst_weight := Some w);
          let tree = G.Tree.of_edge_ids graph ~root ids in
          if Broadcast.is_tree_equilibrium spec tree then begin
            incr n_eq;
            (match !best with
            | Some (bw, _) when F.leq bw w -> ()
            | _ -> best := Some (w, ids));
            match !worst with
            | Some (ww, _) when F.leq w ww -> ()
            | _ -> worst := Some (w, ids)
          end);
      match !mst_weight with
      | None -> invalid_arg "Exact.equilibrium_landscape: disconnected graph"
      | Some m ->
          {
            mst_weight = m;
            best_equilibrium = !best;
            worst_equilibrium = !worst;
            n_trees = !n_trees;
            n_equilibria = !n_eq;
          }

    (** Price of stability of a broadcast game, as best-equilibrium weight
        over MST weight. [None] when no spanning tree is an equilibrium
        (possible in principle only through float tolerance artifacts;
        Rosenthal's potential guarantees existence). *)
    (* A zero-weight optimum forces every equilibrium weight to zero too
       (the zero spanning tree is an equilibrium: no deviation can beat a
       free path), so the ratio is 1 rather than 0/0. *)
    let ratio_to_mst l w = if F.sign l.mst_weight = 0 then F.one else F.div w l.mst_weight

    let price_of_stability ~graph ~root =
      let l = equilibrium_landscape ~graph ~root in
      Option.map (fun (w, _) -> ratio_to_mst l w) l.best_equilibrium

    let price_of_anarchy_over_trees ~graph ~root =
      let l = equilibrium_landscape ~graph ~root in
      Option.map (fun (w, _) -> ratio_to_mst l w) l.worst_equilibrium

    (* All simple paths between two nodes (bounded DFS), for the state
       landscape below. *)
    let simple_paths graph ~src ~dst ~limit =
      let out = ref [] in
      let count = ref 0 in
      let visited = Array.make (G.n_nodes graph) false in
      let rec go here path =
        if !count < limit then begin
          if here = dst then begin
            incr count;
            out := List.rev path :: !out
          end
          else begin
            visited.(here) <- true;
            List.iter
              (fun (id, next) -> if not visited.(next) then go next (id :: path))
              (G.neighbors graph here);
            visited.(here) <- false
          end
        end
      in
      go src [];
      List.rev !out

    type state_landscape = {
      optimum : F.t; (* cheapest social cost over all states *)
      best_eq : (F.t * state) option;
      worst_eq : (F.t * state) option;
      n_states : int;
      n_eq : int;
    }

    (** Exhaustive state landscape of a {e general} game (multicast, or any
        terminal pairs): enumerate the product of every player's simple
        paths, check each profile for equilibrium. The product size is
        guarded by [max_states]; raises [Invalid_argument] beyond it. This
        is the multicast analogue of [equilibrium_landscape] (which only
        applies to broadcast games and spanning trees). *)
    let state_landscape ?(max_states = 2_000_000) spec =
      let graph = spec.graph in
      let paths =
        Array.map
          (fun (s, t) -> Array.of_list (simple_paths graph ~src:s ~dst:t ~limit:max_states))
          spec.pairs
      in
      let total =
        Array.fold_left
          (fun acc p ->
            let n = Array.length p in
            if n = 0 then invalid_arg "Exact.state_landscape: disconnected player";
            if acc > max_states / n then max_states + 1 else acc * n)
          1 paths
      in
      if total > max_states then
        invalid_arg "Exact.state_landscape: state space exceeds max_states";
      let n = n_players spec in
      let choice = Array.make n 0 in
      let optimum = ref None and best = ref None and worst = ref None in
      let n_states = ref 0 and n_eq = ref 0 in
      let rec enumerate i =
        if i = n then begin
          incr n_states;
          let state = Array.init n (fun k -> paths.(k).(choice.(k))) in
          let w = social_cost spec state in
          (match !optimum with Some o when F.leq o w -> () | _ -> optimum := Some w);
          if is_equilibrium spec state then begin
            incr n_eq;
            (match !best with
            | Some (bw, _) when F.leq bw w -> ()
            | _ -> best := Some (w, state));
            match !worst with
            | Some (ww, _) when F.leq w ww -> ()
            | _ -> worst := Some (w, state)
          end
        end
        else
          for c = 0 to Array.length paths.(i) - 1 do
            choice.(i) <- c;
            enumerate (i + 1)
          done
      in
      enumerate 0;
      {
        optimum = Option.get !optimum;
        best_eq = !best;
        worst_eq = !worst;
        n_states = !n_states;
        n_eq = !n_eq;
      }
  end
end

module Float_game = Make (Repro_field.Field.Float_field)
module Rat_game = Make (Repro_field.Field.Rat)
