(** Network design games with fair (Shapley) cost sharing (Section 2 of the
    paper), functorized over the weight field.

    A game is an edge-weighted undirected graph plus one (source, target)
    pair per player; a state assigns each player a path; every established
    edge's weight is split equally among its users. Subsidies [b] reduce
    edge [a]'s shareable weight to [w_a - b_a] (the "extension of the game
    with subsidies"). All subsidy parameters below are edge-indexed arrays;
    omitting them means the unsubsidized game. *)

module Make (F : Repro_field.Field.S) : sig
  module G : module type of Repro_graph.Wgraph.Make (F)

  type spec = { graph : G.t; pairs : (int * int) array }

  val n_players : spec -> int

  (** Validates terminals; raises [Invalid_argument]. *)
  val create : graph:G.t -> pairs:(int * int) array -> spec

  (** Broadcast game: one player per non-root node, connecting to [root];
      player [i] is the i-th non-root node in node order. *)
  val broadcast : graph:G.t -> root:int -> spec

  (** The player index of a non-root node in a broadcast game. *)
  val broadcast_player : root:int -> int -> int

  (** Multicast game: one player per terminal, each connecting to [root]
      (the Section 6 generalization; the broadcast fast paths below do not
      apply to it, the general machinery does). *)
  val multicast : graph:G.t -> root:int -> terminals:int list -> spec

  (** {1 States} *)

  (** state.(i) = player i's path, as edge ids in travel order. *)
  type state = int list array

  (** Checks every strategy is a walk from its source to its target. *)
  val validate_state : spec -> state -> unit

  (** n_a(T): users per edge. *)
  val usage : spec -> state -> int array

  (** n^i_a(T) as a membership mask over edge ids. *)
  val player_edges : spec -> state -> int -> bool array

  val no_subsidy : spec -> F.t array

  (** w_a - b_a. *)
  val net_weight : spec -> F.t array -> int -> F.t

  (** cost_i(T; b) = sum over the player's edges of (w_a - b_a)/n_a(T).
      [usage] supplies a precomputed [usage spec state] so per-round
      sweeps over all players skip the per-call usage recount. *)
  val player_cost : ?subsidy:F.t array -> ?usage:int array -> spec -> state -> int -> F.t

  (** Total weight of established edges (the authority pays the subsidized
      part, so subsidies do not change it). *)
  val social_cost : spec -> state -> F.t

  (** Rosenthal's potential sum_a (w_a - b_a) H_{n_a(T)}. *)
  val potential : ?subsidy:F.t array -> spec -> state -> F.t

  (** {1 Best responses and equilibria} *)

  (** Cheapest deviation of player [i]: Dijkstra where edge [a] costs
      (w_a - b_a)/(n_a(T) + 1 - n^i_a(T)). Returns (cost, path). [usage]
      as in {!player_cost}. *)
  val best_response :
    ?subsidy:F.t array -> ?usage:int array -> spec -> state -> int -> F.t * int list

  (** Most profitable unilateral deviation, if any:
      (player, current cost, deviation cost, deviation path). *)
  val worst_violation :
    ?subsidy:F.t array -> spec -> state -> (int * F.t * F.t * int list) option

  val is_equilibrium : ?subsidy:F.t array -> spec -> state -> bool

  (** Largest unilateral gain available to any player (0 at equilibria). *)
  val additive_instability : ?subsidy:F.t array -> spec -> state -> F.t

  (** Smallest alpha with cost_i <= alpha * best response for all i;
      [None] when a player's best response is free but her cost is not. *)
  val multiplicative_instability : ?subsidy:F.t array -> spec -> state -> F.t option

  val is_epsilon_equilibrium : ?subsidy:F.t array -> spec -> state -> epsilon:F.t -> bool

  (** {1 Best-response dynamics} *)

  module Dynamics : sig
    type outcome = {
      state : state;
      rounds : int; (** completed passes over the players *)
      moves : int;
      converged : bool;
    }

    (** Like {!best_response_dynamics}, also returning the Rosenthal
        potential after every round (starting value first) — the strictly
        decreasing sequence that proves termination. *)
    val trace :
      ?subsidy:F.t array -> ?max_rounds:int -> spec -> state -> outcome * F.t list

    (** Round-robin best responses; terminates by potential descent
        ([max_rounds] only guards float-tolerance livelock). *)
    val best_response_dynamics :
      ?subsidy:F.t array -> ?max_rounds:int -> spec -> state -> outcome
  end

  (** {1 Broadcast fast paths (Lemma 2)} *)

  module Broadcast : sig
    (** The state where every player walks her tree path to the root. *)
    val state_of_tree : spec -> root:int -> G.Tree.t -> state

    (** Cumulative root-path shares: [s1.(v)] with denominators n_a (v's
        player's cost), [s2.(v)] with n_a + 1 (an outsider's share after
        joining). *)
    val path_shares : ?subsidy:F.t array -> spec -> G.Tree.t -> F.t array * F.t array

    (** Slack of one Lemma 2 / LP (3) constraint: deviation cost minus
        current cost for the player at [u] switching to non-tree edge
        [(u, v)] then v's tree path. *)
    val deviation_slack :
      ?subsidy:F.t array ->
      spec ->
      G.Tree.t ->
      shares:F.t array * F.t array ->
      u:int ->
      edge_id:int ->
      v:int ->
      F.t

    (** Most violated Lemma 2 constraint, if any: (u, edge id, v, slack).
        By Lemma 2 this is a complete equilibrium check for spanning trees
        of broadcast games. *)
    val tree_violation :
      ?subsidy:F.t array -> spec -> G.Tree.t -> (int * int * int * F.t) option

    val is_tree_equilibrium : ?subsidy:F.t array -> spec -> G.Tree.t -> bool
  end

  (** {1 Exact optima on small instances (exponential enumeration)} *)

  module Exact : sig
    type landscape = {
      mst_weight : F.t;
      best_equilibrium : (F.t * int list) option; (** weight, tree edges *)
      worst_equilibrium : (F.t * int list) option;
      n_trees : int;
      n_equilibria : int;
    }

    (** Scan every spanning tree of a broadcast game (no subsidies); by the
        Section 2 cycle argument this loses no equilibrium weight. *)
    val equilibrium_landscape : graph:G.t -> root:int -> landscape

    (** Best-equilibrium weight over MST weight. *)
    val price_of_stability : graph:G.t -> root:int -> F.t option

    val price_of_anarchy_over_trees : graph:G.t -> root:int -> F.t option

    (** Bounded DFS enumeration of simple paths (shared with the state
        landscape below and the coalition module). *)
    val simple_paths : G.t -> src:int -> dst:int -> limit:int -> int list list

    type state_landscape = {
      optimum : F.t; (** cheapest social cost over all states *)
      best_eq : (F.t * state) option;
      worst_eq : (F.t * state) option;
      n_states : int;
      n_eq : int;
    }

    (** Exhaustive landscape of a general game (multicast or arbitrary
        pairs) over the product of the players' simple paths. Raises
        [Invalid_argument] beyond [max_states] or on a disconnected
        player. *)
    val state_landscape : ?max_states:int -> spec -> state_landscape
  end
end

module Float_game : module type of Make (Repro_field.Field.Float_field)
module Rat_game : module type of Make (Repro_field.Field.Rat)
