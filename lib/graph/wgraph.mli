(** Weighted undirected multigraphs, functorized over the weight field.

    The substrate of every game in the repository. Nodes are dense integers
    [0 .. n-1]; edges carry a stable [id] used throughout the stack to
    identify strategies (paths are edge-id lists), subsidies (edge-indexed
    arrays) and tree membership. Parallel edges are allowed; self-loops and
    negative weights are rejected. *)

module Make (F : Repro_field.Field.S) : sig
  type edge = { id : int; u : int; v : int; weight : F.t }

  type t = {
    n : int;
    edges : edge array;
    adj : (int * int) list array; (** adj.(x) = (edge id, other endpoint) *)
  }

  val n_nodes : t -> int
  val n_edges : t -> int

  (** [create ~n spec] builds a graph on nodes [0..n-1] from [(u, v, w)]
      triples; edge ids follow the order of [spec]. Raises
      [Invalid_argument] on out-of-range endpoints, self-loops or negative
      weights. *)
  val create : n:int -> (int * int * F.t) list -> t

  (** Raises [Invalid_argument] on a bad id. *)
  val edge : t -> int -> edge

  val weight : t -> int -> F.t
  val endpoints : t -> int -> int * int

  (** The endpoint of the edge that is not the given node. *)
  val other : t -> int -> int -> int

  (** Edge-id-sorted [(edge id, neighbour)] list. *)
  val neighbors : t -> int -> (int * int) list

  val total_weight : t -> int list -> F.t
  val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

  (** Copy with reweighted edges (ids and adjacency preserved). *)
  val with_weights : t -> (edge -> F.t) -> t

  (** {1 Connectivity} *)

  val component_count : t -> int
  val is_connected : t -> bool

  (** {1 Minimum spanning trees} *)

  (** Kruskal; sorted edge ids of a deterministic MST, [None] if
      disconnected. *)
  val mst_kruskal : t -> int list option

  (** Prim (heap-based); used to cross-check Kruskal in the tests. *)
  val mst_prim : t -> int list option

  (** {1 Shortest paths} *)

  type sssp = { dist : F.t option array; pred_edge : int option array }

  (** Dijkstra from [src]; [weight_fn] reprices edges (must stay
      non-negative) — this is how best responses price deviation shares. *)
  val dijkstra : ?weight_fn:(edge -> F.t) -> t -> src:int -> sssp

  (** Path extraction from a Dijkstra run rooted at [src]: cost and edge
      ids in travel order. *)
  val extract_path : t -> sssp -> src:int -> dst:int -> (F.t * int list) option

  val shortest_path :
    ?weight_fn:(edge -> F.t) -> t -> src:int -> dst:int -> (F.t * int list) option

  (** Reallocation count of the per-domain Dijkstra scratch (this
      domain); a zero delta across runs proves scratch reuse. *)
  val dijkstra_scratch_grows : unit -> int

  (** {1 Rooted spanning trees} *)

  module Tree : sig
    type graph := t

    type t = {
      graph : graph;
      root : int;
      parent : int array; (** -1 at the root *)
      parent_edge : int array; (** -1 at the root *)
      children : int list array;
      order : int array; (** BFS order from the root *)
      depth : int array;
      subtree_size : int array;
      in_tree : bool array; (** indexed by edge id *)
    }

    (** Build a rooted spanning tree from edge ids; raises
        [Invalid_argument] when they do not form one. *)
    val of_edge_ids : graph -> root:int -> int list -> t

    val root : t -> int
    val parent : t -> int -> int option
    val parent_edge : t -> int -> int option
    val children : t -> int -> int list
    val depth : t -> int -> int
    val mem_edge : t -> int -> bool
    val order : t -> int array

    (** Sorted ids of the tree's edges. *)
    val edge_ids : t -> int list

    (** n_a(T): broadcast players whose root path uses the edge — the
        subtree size below it; 0 for non-tree edges. *)
    val usage : t -> int -> int

    (** The child-side endpoint of a tree edge. *)
    val lower_endpoint : t -> int -> int

    (** Edge ids from a node up to the root, nearest first. *)
    val path_to_root : t -> int -> int list

    val lca : t -> int -> int -> int

    (** Tree path between two nodes: up to the LCA, then down. *)
    val path_between : t -> int -> int -> int list

    val total_weight : t -> F.t

    (** Nodes of the subtree rooted at a node (inclusive). *)
    val subtree_nodes : t -> int -> int list
  end

  (** {1 Spanning-tree enumeration} (include/exclude with rollback
      union-find; exponential — small instances) *)

  module Enumerate : sig
    val fold_spanning_trees : t -> init:'a -> f:('a -> int list -> 'a) -> 'a
    val count_spanning_trees : t -> int
    val iter_spanning_trees : t -> f:(int list -> unit) -> unit

    (** Search-effort counters for {!by_weight}. *)
    type order_stats = {
      mutable nodes_expanded : int;  (** subproblems popped and branched *)
      mutable msts_computed : int;  (** MST completions across all children *)
    }

    val fresh_stats : unit -> order_stats

    (** Every spanning tree as [(weight, sorted edge ids)], in nondecreasing
        weight (ties in sorted-edge-id lexicographic order). Lawler
        partition with include/exclude branching: each subproblem is
        represented by its minimum spanning tree, computed by Kruskal with
        the forced edges contracted and the excluded edges deleted, so the
        stream is cheapest-first and consumers can stop early. The sequence
        is ephemeral (mutable heap underneath): traverse it once. *)
    val by_weight : ?stats:order_stats -> t -> (F.t * int list) Seq.t
  end

  (** {1 Generators} (deterministic given the PRNG state) *)

  module Gen : sig
    (** Path 0 - 1 - ... - (n-1); edge i joins i and i+1. *)
    val path : n:int -> weight:(int -> F.t) -> t

    (** Cycle; edge i joins i and (i+1) mod n; needs n >= 3. *)
    val cycle : n:int -> weight:(int -> F.t) -> t

    (** Star with center 0. *)
    val star : n:int -> weight:(int -> F.t) -> t

    val complete : n:int -> weight:(int -> int -> F.t) -> t
    val grid : rows:int -> cols:int -> weight:(int -> int -> F.t) -> t

    (** Random recursive tree plus [extra_edges] distinct shortcuts. *)
    val random_connected :
      Repro_util.Prng.t ->
      n:int ->
      extra_edges:int ->
      rand_weight:(Repro_util.Prng.t -> F.t) ->
      t
  end
end

(** Pre-instantiated float and exact-rational graph stacks. *)
module Float_graph : module type of Make (Repro_field.Field.Float_field)

module Rat_graph : module type of Make (Repro_field.Field.Rat)
