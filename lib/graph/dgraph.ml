(** Directed weighted multigraphs, functorized over the weight field.

    The paper's games live on undirected graphs, but it notes (Section 1)
    that the results adapt to directed networks — where the price of
    stability is a full H_n (Anshelevich et al.) rather than the open
    sub-logarithmic undirected quantity. {!Digame} builds directed games on
    top of this module; the structure mirrors {!Wgraph} with arcs instead
    of edges. *)

module Make (F : Repro_field.Field.S) = struct
  type arc = { id : int; src : int; dst : int; weight : F.t }

  type t = {
    n : int;
    arcs : arc array;
    out_adj : (int * int) list array; (* out_adj.(u) = (arc id, head) list *)
  }

  let n_nodes g = g.n
  let n_arcs g = Array.length g.arcs

  (** [create ~n spec] builds a digraph on nodes [0..n-1] from
      [(src, dst, weight)] triples; arc ids follow [spec]'s order. *)
  let create ~n spec =
    if n <= 0 then invalid_arg "Dgraph.create: need at least one node";
    let arcs =
      List.mapi
        (fun id (src, dst, weight) ->
          if src < 0 || src >= n || dst < 0 || dst >= n then
            invalid_arg "Dgraph.create: endpoint out of range";
          if src = dst then invalid_arg "Dgraph.create: self-loop";
          if F.sign weight < 0 then invalid_arg "Dgraph.create: negative weight";
          { id; src; dst; weight })
        spec
      |> Array.of_list
    in
    let out_adj = Array.make n [] in
    Array.iter (fun a -> out_adj.(a.src) <- (a.id, a.dst) :: out_adj.(a.src)) arcs;
    Array.iteri (fun i l -> out_adj.(i) <- List.sort compare l) out_adj;
    { n; arcs; out_adj }

  let arc g id =
    if id < 0 || id >= Array.length g.arcs then invalid_arg "Dgraph.arc: bad id";
    g.arcs.(id)

  let weight g id = (arc g id).weight
  let successors g u = g.out_adj.(u)
  let total_weight g ids = List.fold_left (fun acc id -> F.add acc (weight g id)) F.zero ids

  let fold_arcs g ~init ~f = Array.fold_left f init g.arcs

  type sssp = { dist : F.t option array; pred_arc : int option array }

  (* Per-domain Dijkstra scratch, the same shape as Wgraph's: a
     monomorphic (key, node) binary heap plus reached/dist/pred buffers
     with an O(touched) reset. The (key, node) total order matches the
     old tuple heap, and (key, node) pairs are unique (a node re-enters
     the heap only on a strict improvement), so the pop sequence and
     predecessor choices are unchanged. *)
  type dij_scratch = {
    mutable keys : F.t array;
    mutable nodes : int array;
    mutable hn : int;
    mutable dist : F.t array;
    mutable reached : Bytes.t;
    mutable pred : int array;
    mutable touched : int array;
    mutable n_touched : int;
    mutable grows : int;
  }

  let dij_key =
    Domain.DLS.new_key (fun () ->
        {
          keys = [||];
          nodes = [||];
          hn = 0;
          dist = [||];
          reached = Bytes.empty;
          pred = [||];
          touched = [||];
          n_touched = 0;
          grows = 0;
        })

  let dijkstra_scratch_grows () = (Domain.DLS.get dij_key).grows

  let heap_less h i j =
    let c = F.compare h.keys.(i) h.keys.(j) in
    if c <> 0 then c < 0 else h.nodes.(i) < h.nodes.(j)

  let heap_swap h i j =
    let k = h.keys.(i) in
    h.keys.(i) <- h.keys.(j);
    h.keys.(j) <- k;
    let m = h.nodes.(i) in
    h.nodes.(i) <- h.nodes.(j);
    h.nodes.(j) <- m

  let heap_push h d x =
    (if h.hn = Array.length h.keys then begin
       let cap = max 16 (2 * h.hn) in
       let keys = Array.make cap F.zero and nodes = Array.make cap 0 in
       Array.blit h.keys 0 keys 0 h.hn;
       Array.blit h.nodes 0 nodes 0 h.hn;
       h.keys <- keys;
       h.nodes <- nodes
     end);
    h.keys.(h.hn) <- d;
    h.nodes.(h.hn) <- x;
    h.hn <- h.hn + 1;
    let i = ref (h.hn - 1) in
    let up = ref true in
    while !up && !i > 0 do
      let p = (!i - 1) / 2 in
      if heap_less h !i p then begin
        heap_swap h !i p;
        i := p
      end
      else up := false
    done

  let rec heap_sift_down h i =
    let l = (2 * i) + 1 in
    if l < h.hn then begin
      let s = if l + 1 < h.hn && heap_less h (l + 1) l then l + 1 else l in
      if heap_less h s i then begin
        heap_swap h i s;
        heap_sift_down h s
      end
    end

  let dij_reset h n =
    if Array.length h.dist < n then begin
      let cap = max n (max 16 (2 * Array.length h.dist)) in
      h.dist <- Array.make cap F.zero;
      h.reached <- Bytes.make cap '\000';
      h.pred <- Array.make cap (-1);
      h.touched <- Array.make cap 0;
      h.n_touched <- 0;
      h.grows <- h.grows + 1
    end
    else begin
      for k = 0 to h.n_touched - 1 do
        Bytes.unsafe_set h.reached (Array.unsafe_get h.touched k) '\000'
      done;
      h.n_touched <- 0
    end

  let[@inline] dij_reached h x = Bytes.unsafe_get h.reached x <> '\000'

  let[@inline] dij_mark h x =
    Bytes.unsafe_set h.reached x '\001';
    Array.unsafe_set h.touched h.n_touched x;
    h.n_touched <- h.n_touched + 1

  let dijkstra_core wf g ~src =
    let h = Domain.DLS.get dij_key in
    h.hn <- 0;
    dij_reset h g.n;
    h.dist.(src) <- F.zero;
    h.pred.(src) <- -1;
    dij_mark h src;
    heap_push h F.zero src;
    while h.hn > 0 do
      let d = h.keys.(0) and x = h.nodes.(0) in
      h.hn <- h.hn - 1;
      if h.hn > 0 then begin
        h.keys.(0) <- h.keys.(h.hn);
        h.nodes.(0) <- h.nodes.(h.hn);
        heap_sift_down h 0
      end;
      let stale = if dij_reached h x then F.compare h.dist.(x) d < 0 else true in
      if not stale then
        List.iter
          (fun (id, y) ->
            let w = wf g.arcs.(id) in
            assert (F.sign w >= 0);
            let nd = F.add d w in
            let better =
              if dij_reached h y then F.compare nd h.dist.(y) < 0 else true
            in
            if better then begin
              if not (dij_reached h y) then dij_mark h y;
              h.dist.(y) <- nd;
              h.pred.(y) <- id;
              heap_push h nd y
            end)
          g.out_adj.(x)
    done;
    h

  (** Dijkstra over out-arcs; [weight_fn] must stay non-negative. *)
  let dijkstra ?weight_fn g ~src =
    let wf = match weight_fn with Some f -> f | None -> fun a -> a.weight in
    let h = dijkstra_core wf g ~src in
    let dist = Array.make g.n None in
    let pred_arc = Array.make g.n None in
    for x = 0 to g.n - 1 do
      if dij_reached h x then begin
        dist.(x) <- Some h.dist.(x);
        if h.pred.(x) >= 0 then pred_arc.(x) <- Some h.pred.(x)
      end
    done;
    { dist; pred_arc }

  let shortest_path ?weight_fn g ~src ~dst =
    let wf = match weight_fn with Some f -> f | None -> fun a -> a.weight in
    let h = dijkstra_core wf g ~src in
    if not (dij_reached h dst) then None
    else begin
      let d = h.dist.(dst) in
      let rec walk x acc =
        if x = src then acc
        else
          let id = h.pred.(x) in
          if id < 0 then acc else walk g.arcs.(id).src (id :: acc)
      in
      Some (d, walk dst [])
    end

  (** All simple directed paths src -> dst (bounded DFS). *)
  let simple_paths g ~src ~dst ~limit =
    let out = ref [] in
    let count = ref 0 in
    let visited = Array.make g.n false in
    let rec go here path =
      if !count < limit then begin
        if here = dst then begin
          incr count;
          out := List.rev path :: !out
        end
        else begin
          visited.(here) <- true;
          List.iter
            (fun (id, next) -> if not visited.(next) then go next (id :: path))
            g.out_adj.(here);
          visited.(here) <- false
        end
      end
    in
    go src [];
    List.rev !out
end

module Float_dgraph = Make (Repro_field.Field.Float_field)
module Rat_dgraph = Make (Repro_field.Field.Rat)
