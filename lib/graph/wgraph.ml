(** Weighted undirected multigraphs, functorized over the weight field.

    This is the substrate for every game in the repository. Nodes are dense
    integers [0 .. n-1]; edges carry a stable [id] used throughout the stack
    to identify strategies (paths are edge-id lists), subsidies (indexed by
    edge id) and tree memberships. Parallel edges are allowed (the lower
    bound constructions of Theorems 11 and 21 use them conceptually);
    self-loops are rejected because no cost-sharing path ever uses one. *)

module Make (F : Repro_field.Field.S) = struct
  type edge = { id : int; u : int; v : int; weight : F.t }

  type t = {
    n : int;
    edges : edge array;
    adj : (int * int) list array; (* adj.(x) = (edge id, other endpoint) list *)
  }

  let n_nodes g = g.n
  let n_edges g = Array.length g.edges

  (** [create ~n spec] builds a graph on nodes [0..n-1] from a list of
      [(u, v, weight)] triples. Edge ids follow the order of [spec]. *)
  let create ~n spec =
    if n <= 0 then invalid_arg "Wgraph.create: need at least one node";
    let edges =
      List.mapi
        (fun id (u, v, weight) ->
          if u < 0 || u >= n || v < 0 || v >= n then
            invalid_arg "Wgraph.create: endpoint out of range";
          if u = v then invalid_arg "Wgraph.create: self-loop";
          if F.sign weight < 0 then invalid_arg "Wgraph.create: negative weight";
          { id; u; v; weight })
        spec
      |> Array.of_list
    in
    let adj = Array.make n [] in
    Array.iter
      (fun e ->
        adj.(e.u) <- (e.id, e.v) :: adj.(e.u);
        adj.(e.v) <- (e.id, e.u) :: adj.(e.v))
      edges;
    (* Keep adjacency in edge-id order for deterministic traversals. *)
    Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
    { n; edges; adj }

  let edge g id =
    if id < 0 || id >= Array.length g.edges then invalid_arg "Wgraph.edge: bad id";
    g.edges.(id)

  let weight g id = (edge g id).weight
  let endpoints g id =
    let e = edge g id in
    (e.u, e.v)

  (** The endpoint of edge [id] that is not [x]. *)
  let other g id x =
    let e = edge g id in
    if e.u = x then e.v
    else if e.v = x then e.u
    else invalid_arg "Wgraph.other: node not an endpoint"

  let neighbors g x = g.adj.(x)

  let total_weight g ids =
    List.fold_left (fun acc id -> F.add acc (weight g id)) F.zero ids

  let fold_edges g ~init ~f = Array.fold_left f init g.edges

  (** [with_weights g f] is a copy of [g] where edge [e] weighs [f e]. Ids,
      endpoints and adjacency are preserved. *)
  let with_weights g f =
    let edges = Array.map (fun e -> { e with weight = f e }) g.edges in
    { g with edges }

  (* ---------------------------------------------------------------- *)
  (* Connectivity                                                      *)
  (* ---------------------------------------------------------------- *)

  let component_count g =
    let uf = Union_find.create g.n in
    Array.iter (fun e -> ignore (Union_find.union uf e.u e.v)) g.edges;
    Union_find.components uf

  let is_connected g = component_count g = 1

  (* ---------------------------------------------------------------- *)
  (* Minimum spanning trees                                            *)
  (* ---------------------------------------------------------------- *)

  (** Kruskal's algorithm. Returns the edge ids of a minimum spanning tree,
      or [None] if the graph is disconnected. Ties are broken by edge id, so
      the result is deterministic. *)
  let mst_kruskal g =
    let order = Array.init (n_edges g) (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = F.compare g.edges.(a).weight g.edges.(b).weight in
        if c <> 0 then c else compare a b)
      order;
    let uf = Union_find.create g.n in
    let chosen = ref [] in
    Array.iter
      (fun id ->
        let e = g.edges.(id) in
        if Union_find.union uf e.u e.v then chosen := id :: !chosen)
      order;
    if Union_find.components uf = 1 then Some (List.sort compare !chosen) else None

  (** Prim's algorithm (heap-based); used to cross-check Kruskal in tests. *)
  let mst_prim g =
    if g.n = 1 then Some []
    else begin
      let in_tree = Array.make g.n false in
      let heap = Repro_util.Heap.create ~cmp:(fun (w1, id1, _) (w2, id2, _) ->
          let c = F.compare w1 w2 in
          if c <> 0 then c else compare id1 id2)
      in
      let chosen = ref [] in
      let visit x =
        in_tree.(x) <- true;
        List.iter
          (fun (id, y) ->
            if not in_tree.(y) then
              Repro_util.Heap.push heap (g.edges.(id).weight, id, y))
          g.adj.(x)
      in
      visit 0;
      let count = ref 1 in
      let rec grow () =
        match Repro_util.Heap.pop heap with
        | None -> ()
        | Some (_, id, y) ->
            if not in_tree.(y) then begin
              chosen := id :: !chosen;
              incr count;
              visit y
            end;
            grow ()
      in
      grow ();
      if !count = g.n then Some (List.sort compare !chosen) else None
    end

  (* ---------------------------------------------------------------- *)
  (* Shortest paths                                                    *)
  (* ---------------------------------------------------------------- *)

  type sssp = { dist : F.t option array; pred_edge : int option array }

  (* Monomorphic binary heap for Dijkstra: keys in a flat [F.t] array
     (dynamically an unboxed float array for the float field) and nodes
     in an [int] array, ordered by (key, node) — the exact total order
     the old polymorphic tuple heap used, so the pop sequence and hence
     the predecessor choices are unchanged. No tuple allocation per push
     on the separation-oracle hot loop. The scratch is per-domain (DLS):
     concurrent oracle sweeps on a [Parallel.Pool] each get their own.
     [dijkstra] is accordingly not reentrant within a domain (no caller
     runs it from inside a [weight_fn]). *)
  type heap_scratch = {
    mutable keys : F.t array;
    mutable nodes : int array;
    mutable hn : int;
    (* Full Dijkstra scratch (same DLS slot): distances are valid only
       where [reached] is set, [pred] is -1 for none, and [touched]
       records the reached nodes so the next run resets in O(touched)
       instead of O(n). Nothing here escapes: the public [sssp] is built
       on demand, and [shortest_path] walks [pred] directly. *)
    mutable dist : F.t array;
    mutable reached : Bytes.t;
    mutable pred : int array;
    mutable touched : int array;
    mutable n_touched : int;
    mutable grows : int; (* scratch reallocations, for the reuse tests *)
  }

  let heap_key =
    Domain.DLS.new_key (fun () ->
        {
          keys = [||];
          nodes = [||];
          hn = 0;
          dist = [||];
          reached = Bytes.empty;
          pred = [||];
          touched = [||];
          n_touched = 0;
          grows = 0;
        })

  (* Grow the node-indexed scratch to >= n and clear the previous run's
     reached marks. Fresh buffers start clear; reused ones are cleared
     through the touched list. *)
  let dij_reset h n =
    if Array.length h.dist < n then begin
      let cap = max n (max 16 (2 * Array.length h.dist)) in
      h.dist <- Array.make cap F.zero;
      h.reached <- Bytes.make cap '\000';
      h.pred <- Array.make cap (-1);
      h.touched <- Array.make cap 0;
      h.n_touched <- 0;
      h.grows <- h.grows + 1
    end
    else begin
      for k = 0 to h.n_touched - 1 do
        Bytes.unsafe_set h.reached (Array.unsafe_get h.touched k) '\000'
      done;
      h.n_touched <- 0
    end

  let[@inline] dij_reached h x = Bytes.unsafe_get h.reached x <> '\000'

  let[@inline] dij_mark h x =
    Bytes.unsafe_set h.reached x '\001';
    Array.unsafe_set h.touched h.n_touched x;
    h.n_touched <- h.n_touched + 1

  let dijkstra_scratch_grows () = (Domain.DLS.get heap_key).grows

  let heap_less h i j =
    let c = F.compare h.keys.(i) h.keys.(j) in
    if c <> 0 then c < 0 else h.nodes.(i) < h.nodes.(j)

  let heap_swap h i j =
    let k = h.keys.(i) in
    h.keys.(i) <- h.keys.(j);
    h.keys.(j) <- k;
    let m = h.nodes.(i) in
    h.nodes.(i) <- h.nodes.(j);
    h.nodes.(j) <- m

  let heap_push h d x =
    (if h.hn = Array.length h.keys then begin
       let cap = max 16 (2 * h.hn) in
       let keys = Array.make cap F.zero and nodes = Array.make cap 0 in
       Array.blit h.keys 0 keys 0 h.hn;
       Array.blit h.nodes 0 nodes 0 h.hn;
       h.keys <- keys;
       h.nodes <- nodes
     end);
    h.keys.(h.hn) <- d;
    h.nodes.(h.hn) <- x;
    h.hn <- h.hn + 1;
    let i = ref (h.hn - 1) in
    let up = ref true in
    while !up && !i > 0 do
      let p = (!i - 1) / 2 in
      if heap_less h !i p then begin
        heap_swap h !i p;
        i := p
      end
      else up := false
    done

  let rec heap_sift_down h i =
    let l = (2 * i) + 1 in
    if l < h.hn then begin
      let s = if l + 1 < h.hn && heap_less h (l + 1) l then l + 1 else l in
      if heap_less h s i then begin
        heap_swap h i s;
        heap_sift_down h s
      end
    end

  (** Dijkstra from [src]. [weight_fn] lets callers reinterpret weights
      (this is how best responses price deviations, and how the LP (1)
      separation oracle builds the graph H_i); it must be non-negative.
      Settled nodes are detected lazily: a popped entry whose key is
      already beaten by the recorded distance is stale and skipped, which
      replaces both the [final] array and decrease-key. *)
  (* The zero-allocation core: runs entirely on the per-domain scratch
     (valid until the next run on this domain). The stale-pop test and
     the relax order are exactly the option-array version's, so the pop
     sequence and predecessor choices are unchanged. *)
  let dijkstra_core wf g ~src =
    let h = Domain.DLS.get heap_key in
    h.hn <- 0;
    dij_reset h g.n;
    h.dist.(src) <- F.zero;
    h.pred.(src) <- -1;
    dij_mark h src;
    heap_push h F.zero src;
    while h.hn > 0 do
      let d = h.keys.(0) and x = h.nodes.(0) in
      h.hn <- h.hn - 1;
      if h.hn > 0 then begin
        h.keys.(0) <- h.keys.(h.hn);
        h.nodes.(0) <- h.nodes.(h.hn);
        heap_sift_down h 0
      end;
      let stale = if dij_reached h x then F.compare h.dist.(x) d < 0 else true in
      if not stale then
        List.iter
          (fun (id, y) ->
            let w = wf g.edges.(id) in
            assert (F.sign w >= 0);
            let nd = F.add d w in
            let better =
              if dij_reached h y then F.compare nd h.dist.(y) < 0 else true
            in
            if better then begin
              if not (dij_reached h y) then dij_mark h y;
              h.dist.(y) <- nd;
              h.pred.(y) <- id;
              heap_push h nd y
            end)
          g.adj.(x)
    done;
    h

  let dijkstra ?weight_fn g ~src =
    let wf = match weight_fn with Some f -> f | None -> fun e -> e.weight in
    let h = dijkstra_core wf g ~src in
    let dist = Array.make g.n None in
    let pred_edge = Array.make g.n None in
    for x = 0 to g.n - 1 do
      if dij_reached h x then begin
        dist.(x) <- Some h.dist.(x);
        if h.pred.(x) >= 0 then pred_edge.(x) <- Some h.pred.(x)
      end
    done;
    { dist; pred_edge }

  (** Extract the edge-id path [src -> dst] from a Dijkstra run rooted at
      [src]. Returns the path cost and the edges in travel order. *)
  let extract_path g (sssp : sssp) ~src ~dst =
    match sssp.dist.(dst) with
    | None -> None
    | Some d ->
        let rec walk x acc =
          if x = src then acc
          else
            match sssp.pred_edge.(x) with
            | None -> acc (* x = src already handled; unreachable otherwise *)
            | Some id ->
                let y = other g id x in
                walk y (id :: acc)
        in
        Some (d, walk dst [])

  (* Scratch-walking [shortest_path]: the returned path list is the only
     allocation besides field arithmetic — no [sssp] materialization. The
     separation oracles call this once per player per round. *)
  let shortest_path ?weight_fn g ~src ~dst =
    let wf = match weight_fn with Some f -> f | None -> fun e -> e.weight in
    let h = dijkstra_core wf g ~src in
    if not (dij_reached h dst) then None
    else begin
      let d = h.dist.(dst) in
      let rec walk x acc =
        if x = src then acc
        else
          let id = h.pred.(x) in
          if id < 0 then acc
          else walk (other g id x) (id :: acc)
      in
      Some (d, walk dst [])
    end

  (* ---------------------------------------------------------------- *)
  (* Rooted spanning trees                                             *)
  (* ---------------------------------------------------------------- *)

  module Tree = struct
    type graph = t

    type t = {
      graph : graph;
      root : int;
      parent : int array; (* -1 at the root *)
      parent_edge : int array; (* -1 at the root *)
      children : int list array;
      order : int array; (* BFS order from the root *)
      depth : int array;
      subtree_size : int array;
      in_tree : bool array; (* indexed by edge id *)
    }

    (** Build a rooted spanning tree from a set of edge ids. Raises
        [Invalid_argument] when the edges do not form a spanning tree. *)
    let of_edge_ids g ~root ids =
      let n = g.n in
      if List.length ids <> n - 1 then
        invalid_arg "Tree.of_edge_ids: a spanning tree has n-1 edges";
      let in_tree = Array.make (n_edges g) false in
      List.iter (fun id -> in_tree.(id) <- true) ids;
      let parent = Array.make n (-1) in
      let parent_edge = Array.make n (-1) in
      let children = Array.make n [] in
      let depth = Array.make n 0 in
      let visited = Array.make n false in
      let order = Array.make n root in
      let queue = Queue.create () in
      Queue.add root queue;
      visited.(root) <- true;
      let count = ref 0 in
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        order.(!count) <- x;
        incr count;
        List.iter
          (fun (id, y) ->
            if in_tree.(id) && not visited.(y) then begin
              visited.(y) <- true;
              parent.(y) <- x;
              parent_edge.(y) <- id;
              children.(x) <- y :: children.(x);
              depth.(y) <- depth.(x) + 1;
              Queue.add y queue
            end)
          g.adj.(x)
      done;
      if !count <> n then invalid_arg "Tree.of_edge_ids: edges do not span the graph";
      Array.iteri (fun i l -> children.(i) <- List.rev l) children;
      let subtree_size = Array.make n 1 in
      for i = n - 1 downto 1 do
        let x = order.(i) in
        subtree_size.(parent.(x)) <- subtree_size.(parent.(x)) + subtree_size.(x)
      done;
      { graph = g; root; parent; parent_edge; children; order; depth; subtree_size; in_tree }

    let root t = t.root
    let parent t x = if t.parent.(x) < 0 then None else Some t.parent.(x)
    let parent_edge t x = if t.parent_edge.(x) < 0 then None else Some t.parent_edge.(x)
    let children t x = t.children.(x)
    let depth t x = t.depth.(x)
    let mem_edge t id = t.in_tree.(id)
    let order t = t.order

    let edge_ids t =
      Array.to_list t.order
      |> List.filter_map (fun x -> if t.parent_edge.(x) >= 0 then Some t.parent_edge.(x) else None)
      |> List.sort compare

    (** Number of broadcast players whose root path uses the tree edge
        [id] — the size of the subtree hanging below it; [0] for non-tree
        edges. This is n_a(T) in the paper. *)
    let usage t id =
      if not t.in_tree.(id) then 0
      else begin
        let e = t.graph.edges.(id) in
        (* The lower endpoint is the one whose parent edge is [id]. *)
        if t.parent_edge.(e.u) = id then t.subtree_size.(e.u)
        else t.subtree_size.(e.v)
      end

    (** The child-side endpoint of a tree edge. *)
    let lower_endpoint t id =
      if not t.in_tree.(id) then invalid_arg "Tree.lower_endpoint: not a tree edge";
      let e = t.graph.edges.(id) in
      if t.parent_edge.(e.u) = id then e.u else e.v

    (** Edge ids on the path from [x] up to the root, nearest edge first. *)
    let path_to_root t x =
      let rec go x acc =
        if t.parent.(x) < 0 then List.rev acc else go t.parent.(x) (t.parent_edge.(x) :: acc)
      in
      go x []

    let lca t x y =
      let rec lift x d = if t.depth.(x) > d then lift t.parent.(x) d else x in
      let x = lift x t.depth.(y) and y = lift y t.depth.(x) in
      let rec meet x y = if x = y then x else meet t.parent.(x) t.parent.(y) in
      meet x y

    (** Edge ids on the tree path from [x] to [y]: first the edges from [x]
        up to the LCA (in travel order), then from the LCA down to [y]. *)
    let path_between t x y =
      let a = lca t x y in
      let rec up x acc = if x = a then List.rev acc else up t.parent.(x) (t.parent_edge.(x) :: acc) in
      let rec down y acc = if y = a then acc else down t.parent.(y) (t.parent_edge.(y) :: acc) in
      up x [] @ down y []

    let total_weight t = total_weight t.graph (edge_ids t)

    (** Nodes in the subtree rooted at [x] (including [x]). *)
    let subtree_nodes t x =
      let rec go x acc = List.fold_left (fun acc c -> go c acc) (x :: acc) t.children.(x) in
      go x []
  end

  (* ---------------------------------------------------------------- *)
  (* Spanning-tree enumeration                                         *)
  (* ---------------------------------------------------------------- *)

  module Enumerate = struct
    (** Fold [f] over every spanning tree of [g] (as a sorted edge-id list).
        Include/exclude search with a rollback union-find; intended for the
        small instances on which exact prices of stability are computed. *)
    let fold_spanning_trees g ~init ~f =
      let m = n_edges g in
      let target = g.n - 1 in
      let uf = Union_find.Rollback.create g.n in
      let acc = ref init in
      let chosen = ref [] in
      let rec go i count =
        if count = target then acc := f !acc (List.rev !chosen)
        else if i < m && m - i >= target - count then begin
          let e = g.edges.(i) in
          if Union_find.Rollback.union uf e.u e.v then begin
            chosen := i :: !chosen;
            go (i + 1) (count + 1);
            chosen := List.tl !chosen;
            Union_find.Rollback.undo uf
          end;
          go (i + 1) count
        end
      in
      go 0 0;
      !acc

    let count_spanning_trees g = fold_spanning_trees g ~init:0 ~f:(fun n _ -> n + 1)

    let iter_spanning_trees g ~f = fold_spanning_trees g ~init:() ~f:(fun () t -> f t)

    (* -------------------------------------------------------------- *)
    (* Weight-ordered (best-first) enumeration                         *)
    (* -------------------------------------------------------------- *)

    type order_stats = {
      mutable nodes_expanded : int; (* subproblems popped and branched *)
      mutable msts_computed : int; (* MST completions across all children *)
    }

    let fresh_stats () = { nodes_expanded = 0; msts_computed = 0 }

    (* A subproblem of the Lawler partition: the spanning trees containing
       every [forced] edge and no [excluded] edge, represented by its
       minimum such tree [ids] of weight [w]. *)
    type subproblem = {
      w : F.t;
      ids : int list; (* sorted; the representative (minimum) tree *)
      forced : int list;
      excluded : int list;
    }

    (** Every spanning tree of [g], in nondecreasing total weight
        (ties broken by the sorted edge-id list, lexicographically — the
        same order [fold_spanning_trees] visits a tied class in). Lawler's
        partition scheme over include/exclude subproblems: each heap entry
        carries the minimum spanning tree of its subproblem (Kruskal on the
        graph with forced edges contracted and excluded edges deleted), so
        popping in bound order streams trees cheapest-first and a consumer
        searching for the first tree satisfying a monotone predicate can
        stop as soon as the stream's weight passes its incumbent.

        The sequence is ephemeral (backed by a mutable heap): traverse it
        once. Cost: one Kruskal completion per child of each popped tree
        (at most n-1 per tree), against one LP per tree for the pricing
        consumers — generation is never the bottleneck. *)
    let by_weight ?stats g : (F.t * int list) Seq.t =
      let m = n_edges g in
      let target = g.n - 1 in
      let tick_node () =
        match stats with Some s -> s.nodes_expanded <- s.nodes_expanded + 1 | None -> ()
      and tick_mst () =
        match stats with Some s -> s.msts_computed <- s.msts_computed + 1 | None -> ()
      in
      (* Kruskal scan order, fixed once: (weight, id) — the same tie-break
         as [mst_kruskal], so the root representative is the MST. *)
      let order = Array.init m (fun i -> i) in
      Array.sort
        (fun a b ->
          let c = F.compare g.edges.(a).weight g.edges.(b).weight in
          if c <> 0 then c else compare a b)
        order;
      let out = Array.make m false (* scratch exclusion mask *) in
      (* Minimum spanning tree of a subproblem: union the forced edges
         (contraction), then greedily complete; [None] when the forced
         edges close a cycle or the remaining graph is disconnected. *)
      let complete ~forced ~excluded =
        tick_mst ();
        List.iter (fun id -> out.(id) <- true) excluded;
        let uf = Union_find.create g.n in
        let bad = ref false in
        List.iter
          (fun id ->
            let e = g.edges.(id) in
            if not (Union_find.union uf e.u e.v) then bad := true)
          forced;
        let chosen = ref [] in
        let count = ref (List.length forced) in
        if not !bad then
          Array.iter
            (fun id ->
              if !count < target && not out.(id) then begin
                let e = g.edges.(id) in
                if Union_find.union uf e.u e.v then begin
                  chosen := id :: !chosen;
                  incr count
                end
              end)
            order;
        List.iter (fun id -> out.(id) <- false) excluded;
        if !bad || !count <> target then None
        else
          let ids = List.sort compare (List.rev_append !chosen forced) in
          Some (total_weight g ids, ids)
      in
      let heap =
        Repro_util.Heap.create ~cmp:(fun a b ->
            let c = F.compare a.w b.w in
            if c <> 0 then c else compare a.ids b.ids)
      in
      (match complete ~forced:[] ~excluded:[] with
      | Some (w, ids) -> Repro_util.Heap.push heap { w; ids; forced = []; excluded = [] }
      | None -> ());
      let rec next () =
        match Repro_util.Heap.pop heap with
        | None -> Seq.Nil
        | Some node ->
            tick_node ();
            (* Branch on the representative's free (not yet forced) edges:
               child k keeps the first k-1 free edges and bans the k-th —
               a partition of the subproblem minus its representative. *)
            let free = List.filter (fun id -> not (List.mem id node.forced)) node.ids in
            let rec branch forced = function
              | [] -> ()
              | e :: rest ->
                  let excluded = e :: node.excluded in
                  (match complete ~forced ~excluded with
                  | Some (w, ids) -> Repro_util.Heap.push heap { w; ids; forced; excluded }
                  | None -> ());
                  branch (e :: forced) rest
            in
            branch node.forced free;
            Seq.Cons ((node.w, node.ids), next)
      in
      next
  end

  (* ---------------------------------------------------------------- *)
  (* Generators                                                        *)
  (* ---------------------------------------------------------------- *)

  module Gen = struct
    (** Path 0 - 1 - ... - (n-1); edge i joins i and i+1. *)
    let path ~n ~weight = create ~n (List.init (n - 1) (fun i -> (i, i + 1, weight i)))

    (** Cycle on n nodes; edge i joins i and (i+1) mod n. *)
    let cycle ~n ~weight =
      if n < 3 then invalid_arg "Gen.cycle: need at least 3 nodes";
      create ~n (List.init n (fun i -> (i, (i + 1) mod n, weight i)))

    (** Star with center 0 and leaves 1..n-1. *)
    let star ~n ~weight = create ~n (List.init (n - 1) (fun i -> (0, i + 1, weight i)))

    let complete ~n ~weight =
      let spec = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          spec := (u, v, weight u v) :: !spec
        done
      done;
      create ~n (List.rev !spec)

    let grid ~rows ~cols ~weight =
      let n = rows * cols in
      let id r c = (r * cols) + c in
      let spec = ref [] in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if c + 1 < cols then spec := (id r c, id r (c + 1), weight (id r c) (id r (c + 1))) :: !spec;
          if r + 1 < rows then spec := (id r c, id (r + 1) c, weight (id r c) (id (r + 1) c)) :: !spec
        done
      done;
      create ~n (List.rev !spec)

    (** Random connected graph: a uniform random recursive tree plus
        [extra_edges] additional distinct non-tree edges. Weights are drawn
        by [rand_weight]. Deterministic given the generator state. *)
    let random_connected rng ~n ~extra_edges ~rand_weight =
      if n < 2 then invalid_arg "Gen.random_connected: need at least 2 nodes";
      let spec = ref [] in
      let present = Hashtbl.create (2 * n) in
      let add u v =
        let key = (min u v, max u v) in
        if u <> v && not (Hashtbl.mem present key) then begin
          Hashtbl.add present key ();
          spec := (u, v, rand_weight rng) :: !spec;
          true
        end
        else false
      in
      for v = 1 to n - 1 do
        ignore (add v (Repro_util.Prng.int rng v))
      done;
      let max_extra = (n * (n - 1) / 2) - (n - 1) in
      let wanted = min extra_edges max_extra in
      let added = ref 0 in
      while !added < wanted do
        let u = Repro_util.Prng.int rng n and v = Repro_util.Prng.int rng n in
        if add u v then incr added
      done;
      create ~n (List.rev !spec)
  end
end

(** Pre-instantiated float and exact-rational graph stacks. *)
module Float_graph = Make (Repro_field.Field.Float_field)
module Rat_graph = Make (Repro_field.Field.Rat)
