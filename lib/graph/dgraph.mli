(** Directed weighted multigraphs, functorized over the weight field — the
    substrate of {!Repro_game.Digame}. Arc ids are stable and identify
    strategies and subsidies, mirroring {!Wgraph}. *)

module Make (F : Repro_field.Field.S) : sig
  type arc = { id : int; src : int; dst : int; weight : F.t }

  type t = {
    n : int;
    arcs : arc array;
    out_adj : (int * int) list array; (** out_adj.(u) = (arc id, head) list *)
  }

  val n_nodes : t -> int
  val n_arcs : t -> int

  (** Rejects out-of-range endpoints, self-loops, negative weights. *)
  val create : n:int -> (int * int * F.t) list -> t

  val arc : t -> int -> arc
  val weight : t -> int -> F.t
  val successors : t -> int -> (int * int) list
  val total_weight : t -> int list -> F.t
  val fold_arcs : t -> init:'a -> f:('a -> arc -> 'a) -> 'a

  type sssp = { dist : F.t option array; pred_arc : int option array }

  (** Dijkstra over out-arcs; [weight_fn] must stay non-negative. *)
  val dijkstra : ?weight_fn:(arc -> F.t) -> t -> src:int -> sssp

  val shortest_path :
    ?weight_fn:(arc -> F.t) -> t -> src:int -> dst:int -> (F.t * int list) option

  (** Reallocation count of the per-domain Dijkstra scratch (this
      domain); a zero delta across runs proves scratch reuse. *)
  val dijkstra_scratch_grows : unit -> int

  (** Bounded DFS enumeration of simple directed paths. *)
  val simple_paths : t -> src:int -> dst:int -> limit:int -> int list list
end

module Float_dgraph : module type of Make (Repro_field.Field.Float_field)
module Rat_dgraph : module type of Make (Repro_field.Field.Rat)
