(** Canonical content digests for cache keys. MD5 via the stdlib [Digest]
    — stability and speed matter here, not cryptographic strength. *)

let of_string s = Digest.to_hex (Digest.string s)

(* Length-prefix each field so field boundaries are part of the hash:
   ["ab"; "c"] and ["a"; "bc"] must not collide. *)
let of_fields fields =
  let buf = Buffer.create 64 in
  List.iter
    (fun f ->
      Buffer.add_string buf (string_of_int (String.length f));
      Buffer.add_char buf ':';
      Buffer.add_string buf f)
    fields;
  of_string (Buffer.contents buf)
