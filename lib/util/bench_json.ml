(* Tiny JSON emitter for machine-readable bench artifacts (BENCH_*.json).

   The sealed package set has no JSON library, and the benches only need to
   WRITE well-formed JSON, never parse it — so this is a value type plus a
   printer with proper string escaping and float formatting (NaN/infinity
   are not valid JSON; they serialize as null). Shared by bench/lp_bench.ml
   and bench/main.ml --json so CI archives a uniform format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        (* NaN and +/-inf are not representable in JSON *)
        Buffer.add_string b "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_char b '[';
      newline ();
      List.iteri
        (fun k x ->
          if k > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          emit b ~indent ~level:(level + 1) x)
        xs;
      newline ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_char b '{';
      newline ();
      List.iteri
        (fun k (key, x) ->
          if k > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          escape_string b key;
          Buffer.add_string b (if indent then ": " else ":");
          emit b ~indent ~level:(level + 1) x)
        kvs;
      newline ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = true) v =
  let b = Buffer.create 1024 in
  emit b ~indent ~level:0 v;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))
