(** Bigarray (float64 / int, C layout) vectors for solver hot paths.

    Data lives off the OCaml heap: stores never allocate or hit the write
    barrier, and the GC never scans or moves the payload. Use [uget]/[uset]
    only in loops whose bounds were checked once on entry (DESIGN.md §13);
    everywhere else the checked [get]/[set] (or the native [a.{i}] syntax)
    apply. *)

type fvec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type ivec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

module F : sig
  type t = fvec

  val make : int -> float -> t
  (** [make n x] is a fresh vector of [max 0 n] cells, all [x]. *)

  val length : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit

  val uget : t -> int -> float
  (** Unchecked read — caller proved [0 <= i < length]. *)

  val uset : t -> int -> float -> unit
  (** Unchecked write — caller proved [0 <= i < length]. *)

  val fill : t -> float -> unit
  val fill_range : t -> int -> int -> float -> unit
  val blit : t -> int -> t -> int -> int -> unit

  val grow : t -> int -> float -> t
  (** [grow a n pad] is [a] itself when [length a >= n]; otherwise a fresh
      vector of capacity [>= n] (amortized doubling) with [a]'s contents in
      the prefix and [pad] in the tail. *)

  val of_array : float array -> t
  val to_array : t -> float array
end

module I : sig
  type t = ivec

  val make : int -> int -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val uget : t -> int -> int
  val uset : t -> int -> int -> unit
  val fill : t -> int -> unit
  val fill_range : t -> int -> int -> int -> unit
  val blit : t -> int -> t -> int -> int -> unit
  val grow : t -> int -> int -> t
  val of_array : int array -> t
  val to_array : t -> int array
end
