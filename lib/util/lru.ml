(* Least-recently-used cache: hashtable plus an intrusive doubly-linked
   recency list. Single-threaded (callers wrap a mutex around it when
   sharing across domains — the SND pricing cache does). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option; (* most recently used *)
  mutable last : ('k, 'v) node option; (* eviction candidate *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    first = None;
    last = None;
    hits = 0;
    misses = 0;
  }

let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k

(* Drops entries AND zeroes the hit/miss counters: the observability layer
   calls this between engine runs, and stale counts from a previous run
   would corrupt the new run's hit rate. *)
let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None;
  t.hits <- 0;
  t.misses <- 0

(* Least-recently-used entry the [keep] predicate does not protect, or
   None when every entry is pinned. Walks tail-to-front so the victim is
   the stalest evictable entry, matching plain LRU when [keep] is absent.
   [exclude] additionally shields one specific node by physical identity:
   [add] passes the node it just inserted, so a newcomer facing a table
   of all-pinned elders overflows the table instead of evicting itself
   (handing the caller a key that is already gone). *)
let victim_of ?keep ?exclude t =
  let protected_ n =
    (match exclude with Some m -> m == n | None -> false)
    || (match keep with Some f -> f n.key n.value | None -> false)
  in
  let rec walk = function
    | None -> None
    | Some n -> if protected_ n then walk n.prev else Some n
  in
  walk t.last

let evict_one ?on_evict ?keep ?exclude t =
  match victim_of ?keep ?exclude t with
  | None -> false
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.key;
      (* The callback runs after the victim is already gone, so a
         re-entrant [add]/[remove] from inside it sees a consistent
         cache (it just must not assume the victim is still there). *)
      (match on_evict with
      | Some f -> f victim.key victim.value
      | None -> ());
      true

let add ?on_evict ?keep t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n;
      if Hashtbl.length t.table > t.capacity then
        (* When every other entry is pinned the table temporarily
           overflows; [shrink] restores the bound once pins release. The
           just-inserted node is never its own victim. *)
        ignore (evict_one ?on_evict ?keep ~exclude:n t : bool)

let shrink ?on_evict ?keep t =
  let rec loop () =
    if Hashtbl.length t.table > t.capacity && evict_one ?on_evict ?keep t
    then loop ()
  in
  loop ()

(* Keep only the entries the predicate accepts, preserving recency order.
   Walks the intrusive list (not the hashtable) so the relative order of
   survivors is untouched; no hit/miss counter movement. *)
let filter t ~f =
  let rec walk = function
    | None -> ()
    | Some n ->
        let next = n.next in
        if not (f n.key n.value) then begin
          unlink t n;
          Hashtbl.remove t.table n.key
        end;
        walk next
  in
  walk t.first
