(* Bigarray-backed numeric vectors for the solver hot paths.

   [fvec]/[ivec] live off the OCaml heap: the GC neither scans nor moves
   them, and writing a float into one allocates nothing (no boxing, no
   write barrier). Switching a record field from [float array] to [fvec]
   turns every stale [a.(i)] access into a type error, which is how the
   kernel conversions below stay compiler-checked. *)

open Bigarray

type fvec = (float, float64_elt, c_layout) Array1.t
type ivec = (int, int_elt, c_layout) Array1.t

module F = struct
  type t = fvec

  let make n x : t =
    let a = Array1.create float64 c_layout (max 0 n) in
    Array1.fill a x;
    a

  let length (a : t) = Array1.dim a
  let get (a : t) i = a.{i}
  let set (a : t) i x = a.{i} <- x
  let[@inline] uget (a : t) i : float = Array1.unsafe_get a i
  let[@inline] uset (a : t) i (x : float) = Array1.unsafe_set a i x
  let fill (a : t) x = Array1.fill a x

  (* Loop-based on purpose: [Array1.sub] allocates a fresh descriptor per
     call, which would put an allocation back into every per-pivot fill. *)
  let fill_range (a : t) pos len x =
    if pos < 0 || len < 0 || pos + len > Array1.dim a then
      invalid_arg "Vec.F.fill_range";
    for i = pos to pos + len - 1 do
      Array1.unsafe_set a i x
    done

  let blit (src : t) spos (dst : t) dpos len =
    if
      spos < 0 || dpos < 0 || len < 0
      || spos + len > Array1.dim src
      || dpos + len > Array1.dim dst
    then invalid_arg "Vec.F.blit";
    for i = 0 to len - 1 do
      Array1.unsafe_set dst (dpos + i) (Array1.unsafe_get src (spos + i))
    done

  (* Fresh vector of capacity >= [n] (amortized doubling), prefix copied,
     grown tail set to [pad]. *)
  let grow (a : t) n pad : t =
    let len = length a in
    if n <= len then a
    else begin
      let b = make (max n (max 8 (2 * len))) pad in
      blit a 0 b 0 len;
      b
    end

  let of_array (src : float array) : t =
    let a = Array1.create float64 c_layout (Array.length src) in
    Array.iteri (fun i x -> a.{i} <- x) src;
    a

  let to_array (a : t) = Array.init (length a) (fun i -> a.{i})
end

module I = struct
  type t = ivec

  let make n x : t =
    let a = Array1.create int c_layout (max 0 n) in
    Array1.fill a x;
    a

  let length (a : t) = Array1.dim a
  let get (a : t) i = a.{i}
  let set (a : t) i x = a.{i} <- x
  let[@inline] uget (a : t) i : int = Array1.unsafe_get a i
  let[@inline] uset (a : t) i (x : int) = Array1.unsafe_set a i x
  let fill (a : t) x = Array1.fill a x

  let fill_range (a : t) pos len x =
    if pos < 0 || len < 0 || pos + len > Array1.dim a then
      invalid_arg "Vec.I.fill_range";
    for i = pos to pos + len - 1 do
      Array1.unsafe_set a i x
    done

  let blit (src : t) spos (dst : t) dpos len =
    if
      spos < 0 || dpos < 0 || len < 0
      || spos + len > Array1.dim src
      || dpos + len > Array1.dim dst
    then invalid_arg "Vec.I.blit";
    for i = 0 to len - 1 do
      Array1.unsafe_set dst (dpos + i) (Array1.unsafe_get src (spos + i))
    done

  let grow (a : t) n pad : t =
    let len = length a in
    if n <= len then a
    else begin
      let b = make (max n (max 8 (2 * len))) pad in
      blit a 0 b 0 len;
      b
    end

  let of_array (src : int array) : t =
    let a = Array1.create int c_layout (Array.length src) in
    Array.iteri (fun i x -> a.{i} <- x) src;
    a

  let to_array (a : t) = Array.init (length a) (fun i -> a.{i})
end
