(** Tiny JSON emitter for machine-readable bench artifacts (BENCH_*.json).

    Write-only: a value type plus a printer with proper string escaping.
    NaN and infinities serialize as [null] (JSON has no representation for
    them). Shared by [bench/lp_bench.ml] and [bench/main.ml --json] so CI
    archives a uniform format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render to a string; [indent] (default [true]) pretty-prints with
    two-space indentation and a trailing newline. *)
val to_string : ?indent:bool -> t -> string

(** Write [to_string v] to [path], truncating any existing file. *)
val write_file : path:string -> t -> unit
