(** Per-domain reusable scratch arenas.

    A {!slot} names one scratch buffer per domain (via [Domain.DLS]):
    Parallel.Pool workers and service shards each get their own lazily
    created copy, so there is no contention and — once warm — no
    allocation. This generalizes the Wgraph Dijkstra heap-scratch pattern.

    Borrowing contract: the buffer returned by {!get} is valid until the
    next {!get} on the same slot from the same domain. Do not store it in
    long-lived structures, do not pass it to another domain, and assume
    its contents are dirty (initialize the prefix you use). See DESIGN.md
    §13 for the full ownership rules. *)

type fbuf = Vec.fvec
type ibuf = Vec.ivec

type 'a slot

val floats : unit -> fbuf slot
(** A float64 Bigarray scratch slot (fresh slot; call once at module
    init, not per use). *)

val ints : unit -> ibuf slot
(** An int Bigarray scratch slot. *)

val bytes : unit -> Bytes.t slot
(** A byte scratch slot (cheap boolean flags). *)

val get : 'a slot -> int -> 'a
(** [get slot n] is the calling domain's buffer for [slot], grown to at
    least [n] cells (amortized doubling; prefix preserved, grown tail
    zeroed). Steady state returns the physically same buffer ([==]) and
    allocates nothing. *)

val capacity : 'a slot -> int
(** Current capacity of the calling domain's buffer. *)

val grows : 'a slot -> int
(** Total reallocation count across all domains — zero delta between two
    calls proves the scratch was reused. *)
