(** Monotonic clock.

    [now ()] is seconds since an arbitrary epoch (boot, typically),
    strictly unaffected by NTP steps or manual wall-clock changes. Use
    it for every duration and deadline computation; keep
    [Unix.gettimeofday] strictly for human-facing timestamps. The
    service layer injects this as its default clock and tests substitute
    a fake to simulate skew deterministically. *)

val now : unit -> float
(** Monotonic seconds. Differences between two calls on the same domain
    are nonnegative; the absolute value is meaningless across
    processes. *)
