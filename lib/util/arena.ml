(* Per-domain scratch arenas.

   Generalizes the Wgraph Dijkstra DLS scratch (PR 4): a [slot] names one
   reusable buffer per domain, materialized lazily through [Domain.DLS] so
   Parallel.Pool workers and service shards each see their own copy and
   never contend. [get] returns the domain's buffer grown to at least the
   requested length — steady state (no growth) allocates nothing and
   returns the physically same buffer every call, which is what the
   arena-reuse tests pin down with [==].

   Ownership rules (DESIGN.md §13): a borrowed buffer is valid until the
   next [get] on the same slot from the same domain; never store it in a
   long-lived structure, never hand it to another domain, and treat its
   contents as dirty — initialize the prefix you use. *)

type fbuf = Vec.fvec
type ibuf = Vec.ivec

type 'a ops = { length : 'a -> int; realloc : 'a -> int -> 'a }
type 'a slot = { key : 'a Domain.DLS.key; ops : 'a ops; grows : int Atomic.t }

(* Amortized doubling, and never comically small. *)
let cap_for len n = max n (max 8 (2 * len))

let make_slot ops empty =
  { key = Domain.DLS.new_key (fun () -> empty ()); ops; grows = Atomic.make 0 }

let floats () : fbuf slot =
  make_slot
    {
      length = Vec.F.length;
      (* Prefix preserved, grown tail zeroed — same contract as Vec.F.grow,
         but sized by [cap_for] against the *current* capacity. *)
      realloc =
        (fun a n ->
          let b = Vec.F.make (cap_for (Vec.F.length a) n) 0.0 in
          Vec.F.blit a 0 b 0 (Vec.F.length a);
          b);
    }
    (fun () -> Vec.F.make 0 0.0)

let ints () : ibuf slot =
  make_slot
    {
      length = Vec.I.length;
      realloc =
        (fun a n ->
          let b = Vec.I.make (cap_for (Vec.I.length a) n) 0 in
          Vec.I.blit a 0 b 0 (Vec.I.length a);
          b);
    }
    (fun () -> Vec.I.make 0 0)

let bytes () : Bytes.t slot =
  make_slot
    {
      length = Bytes.length;
      realloc =
        (fun b n ->
          let c = Bytes.make (cap_for (Bytes.length b) n) '\000' in
          Bytes.blit b 0 c 0 (Bytes.length b);
          c);
    }
    (fun () -> Bytes.create 0)

let get slot n =
  let cur = Domain.DLS.get slot.key in
  if slot.ops.length cur >= n then cur
  else begin
    let grown = slot.ops.realloc cur n in
    Domain.DLS.set slot.key grown;
    Atomic.incr slot.grows;
    grown
  end

let capacity slot = slot.ops.length (Domain.DLS.get slot.key)
let grows slot = Atomic.get slot.grows
