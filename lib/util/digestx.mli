(** Canonical content digests for cache keys (the service layer's
    cross-request cache keys instances by these).

    Thin wrapper over the stdlib [Digest] (MD5): not cryptographic — a
    stable, collision-resistant-enough fingerprint for deduplicating
    identical solver inputs inside one process. Digests are lowercase hex,
    so they embed directly in JSON and log lines. *)

(** MD5 of the raw bytes, as 32 lowercase hex characters. *)
val of_string : string -> string

(** Digest of a compound key: the fields are length-prefixed before
    hashing, so [["ab"; "c"]] and [["a"; "bc"]] never collide the way a
    plain concatenation would. *)
val of_fields : string list -> string
