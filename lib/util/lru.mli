(** Least-recently-used cache (hashtable + intrusive recency list).

    Single-threaded; callers sharing one across domains wrap a mutex
    around it (the SND pricing cache does). Keys are compared with
    structural equality/hashing, so canonical sorted edge-id lists work
    directly as keys. *)

type ('k, 'v) t

(** Raises [Invalid_argument] unless [capacity > 0]. *)
val create : capacity:int -> ('k, 'v) t

val length : ('k, 'v) t -> int

(** Lookup; refreshes the entry's recency and counts a hit or miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Insert or overwrite; evicts the least recently used entry when over
    capacity. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
