(** Least-recently-used cache (hashtable + intrusive recency list).

    Single-threaded; callers sharing one across domains wrap a mutex
    around it (the SND pricing cache does). Keys are compared with
    structural equality/hashing, so canonical sorted edge-id lists work
    directly as keys. *)

type ('k, 'v) t

(** Raises [Invalid_argument] unless [capacity > 0]. *)
val create : capacity:int -> ('k, 'v) t

val length : ('k, 'v) t -> int

(** Lookup; refreshes the entry's recency and counts a hit or miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Insert or overwrite; evicts the least recently used entry when over
    capacity. Overwriting refreshes recency but is not a lookup — only
    {!find} moves the hit/miss counters, so [hits + misses] is exactly the
    number of [find] calls. [on_evict] fires once per capacity eviction,
    after the victim has been removed (never on overwrite or {!remove}),
    so session tables can release resources held by the evicted value.

    [keep] pins entries: the victim is the least recently used entry the
    predicate rejects, and the entry being inserted is never its own
    victim — when every older entry is pinned, no eviction happens and
    the table temporarily exceeds capacity — call {!shrink} once pins
    release to restore the bound. The service session table uses this to
    never drop a session whose per-session lock is held by an in-flight
    resolve (which would recycle solver scratch out from under it). *)
val add :
  ?on_evict:('k -> 'v -> unit) ->
  ?keep:('k -> 'v -> bool) ->
  ('k, 'v) t ->
  'k ->
  'v ->
  unit

(** Evict least-recently-used, non-[keep] entries until the table is back
    within capacity or only pinned entries remain. [on_evict] fires per
    victim exactly as in {!add}. No-op when already within capacity. *)
val shrink :
  ?on_evict:('k -> 'v -> unit) ->
  ?keep:('k -> 'v -> bool) ->
  ('k, 'v) t ->
  unit

(** Drop [k] if present (no counter movement); no-op otherwise. *)
val remove : ('k, 'v) t -> 'k -> unit

(** Keep only the entries [f] accepts; survivors retain their relative
    recency order. No counter movement — dirty-edge invalidation in the
    SND pricing cache must not skew hit rates. *)
val filter : ('k, 'v) t -> f:('k -> 'v -> bool) -> unit

(** Drop every entry and zero the hit/miss counters — a fresh cache for
    the next engine run, without re-allocating. *)
val clear : ('k, 'v) t -> unit

(** Number of {!find} calls that returned an entry. *)
val hits : ('k, 'v) t -> int

(** Number of {!find} calls that returned [None]. *)
val misses : ('k, 'v) t -> int
