/* Monotonic clock for deadline arithmetic (DESIGN.md, service layer).

   OCaml 5.1's Unix module exposes only gettimeofday, which follows NTP
   steps and manual clock changes; a wall-clock deadline computed before
   a backwards step never fires, and a forwards step expires everything
   in flight. CLOCK_MONOTONIC is immune to both. The stub stays
   noalloc-free (caml_copy_double allocates) but needs no runtime lock
   release: clock_gettime is a vDSO call on Linux, nanoseconds not
   milliseconds. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value repro_mclock_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}
