external now : unit -> float = "repro_mclock_now"
