(** Linear programming from scratch.

    The paper's Theorem 1 reduces STABLE NETWORK ENFORCEMENT to linear
    programming, and no LP solver exists in the offline package set, so this
    module implements one: a dense-tableau, two-phase primal simplex with
    Bland's anti-cycling rule, functorized over the ordered field. The float
    instantiation handles the benchmark sweeps; the exact-rational
    instantiation certifies optima on reduction gadgets (simplex over the
    rationals never misclassifies feasibility, which matters when constraint
    margins are ~1/n^2 for n in the hundreds of thousands).

    The model layer supports general bounded variables ([lower]/[upper] in
    [F.t option], [None] = unbounded on that side) and <=, >= and =
    constraints. Bounds are compiled away by variable shifting/splitting and
    explicit bound rows — simple and robust at the instance sizes the
    reproduction needs. *)

module Make (F : Repro_field.Field.S) = struct
  type num = F.t
  type relation = Leq | Geq | Eq

  let name = "simplex-functor-" ^ F.name

  type constr = {
    coeffs : (int * F.t) list; (* sparse: variable index, coefficient *)
    relation : relation;
    rhs : F.t;
    label : string;
  }

  type problem = {
    n_vars : int;
    minimize : (int * F.t) list; (* sparse objective *)
    constraints : constr list;
    lower : F.t option array;
    upper : F.t option array;
    var_name : int -> string;
  }

  type solution = { values : F.t array; objective : F.t }
  type outcome = Optimal of solution | Infeasible | Unbounded

  let make_problem ~n_vars ?(var_name = fun i -> Printf.sprintf "x%d" i) ~minimize
      ~constraints ~lower ~upper () =
    if Array.length lower <> n_vars || Array.length upper <> n_vars then
      invalid_arg "Simplex.make_problem: bound arrays must have n_vars entries";
    let check_index (i, _) =
      if i < 0 || i >= n_vars then invalid_arg "Simplex.make_problem: variable out of range"
    in
    List.iter check_index minimize;
    List.iter (fun c -> List.iter check_index c.coeffs) constraints;
    { n_vars; minimize; constraints; lower; upper; var_name }

  (** All variables in [0, +inf). *)
  let nonneg n = (Array.make n (Some F.zero), Array.make n None)

  let pp_relation fmt = function
    | Leq -> Format.pp_print_string fmt "<="
    | Geq -> Format.pp_print_string fmt ">="
    | Eq -> Format.pp_print_string fmt "="

  let pp_problem fmt p =
    let pp_terms fmt coeffs =
      if coeffs = [] then Format.pp_print_string fmt "0"
      else
        List.iteri
          (fun k (i, c) ->
            if k > 0 then Format.pp_print_string fmt " + ";
            Format.fprintf fmt "%s*%s" (F.to_string c) (p.var_name i))
          coeffs
    in
    Format.fprintf fmt "minimize %a@." pp_terms p.minimize;
    List.iter
      (fun c ->
        Format.fprintf fmt "  [%s] %a %a %s@." c.label pp_terms c.coeffs pp_relation
          c.relation (F.to_string c.rhs))
      p.constraints;
    Array.iteri
      (fun i (lo, up) ->
        let s = function None -> "inf" | Some x -> F.to_string x in
        Format.fprintf fmt "  %s in [%s, %s]@." (p.var_name i) (s lo) (s up))
      (Array.map2 (fun a b -> (a, b)) p.lower p.upper)

  (* ---------------------------------------------------------------- *)
  (* Internal canonical form                                           *)
  (* ---------------------------------------------------------------- *)

  (* How an original variable is recovered from canonical columns. *)
  type recover =
    | Shifted of int * F.t (* x = base + y_col *)
    | Mirrored of int * F.t (* x = base - y_col *)
    | Split of int * int (* x = y_plus - y_minus *)

  type canonical = {
    m : int; (* rows *)
    cols : int; (* structural + slack columns (artificials added later) *)
    rows : F.t array array; (* m x (cols + 1); last column = rhs >= 0 *)
    needs_artificial : bool array;
    cost : F.t array; (* phase-2 objective over the canonical columns *)
    cost_const : F.t; (* constant offset from variable shifting *)
    recover : recover array; (* per original variable *)
  }

  let canonicalize p =
    (* 1. Assign canonical columns to original variables. *)
    let next = ref 0 in
    let fresh () =
      let c = !next in
      incr next;
      c
    in
    let extra_rows = ref [] in
    let recover =
      Array.init p.n_vars (fun i ->
          match (p.lower.(i), p.upper.(i)) with
          | Some lo, Some up ->
              if F.compare up lo < 0 then
                invalid_arg "Simplex: empty variable range (upper < lower)";
              let col = fresh () in
              (* y <= up - lo as an explicit row. *)
              extra_rows :=
                { coeffs = [ (i, F.one) ]; relation = Leq; rhs = up; label = "ub" }
                :: !extra_rows;
              Shifted (col, lo)
          | Some lo, None -> Shifted (fresh (), lo)
          | None, Some up -> Mirrored (fresh (), up)
          | None, None ->
              let cp = fresh () in
              let cm = fresh () in
              Split (cp, cm))
    in
    let structural = !next in
    let all_constraints = p.constraints @ List.rev !extra_rows in
    (* 2. Rewrite each constraint over canonical columns. *)
    let rewrite c =
      let acc = Hashtbl.create 8 in
      let addc col v =
        let cur = try Hashtbl.find acc col with Not_found -> F.zero in
        Hashtbl.replace acc col (F.add cur v)
      in
      let rhs = ref c.rhs in
      List.iter
        (fun (i, a) ->
          match recover.(i) with
          | Shifted (col, base) ->
              addc col a;
              rhs := F.sub !rhs (F.mul a base)
          | Mirrored (col, base) ->
              addc col (F.neg a);
              rhs := F.sub !rhs (F.mul a base)
          | Split (cp, cm) ->
              addc cp a;
              addc cm (F.neg a))
        c.coeffs;
      (acc, c.relation, !rhs)
    in
    let rewritten = List.map rewrite all_constraints in
    let m = List.length rewritten in
    (* 3. Lay out the tableau: structural columns, then one slack/surplus
       column per inequality row. *)
    let n_slack =
      List.fold_left (fun k (_, rel, _) -> match rel with Eq -> k | _ -> k + 1) 0 rewritten
    in
    let cols = structural + n_slack in
    let rows = Array.init m (fun _ -> Array.make (cols + 1) F.zero) in
    let needs_artificial = Array.make m false in
    let slack = ref structural in
    List.iteri
      (fun r (acc, rel, rhs) ->
        let row = rows.(r) in
        Hashtbl.iter (fun col v -> row.(col) <- F.add row.(col) v) acc;
        row.(cols) <- rhs;
        (* Make rhs non-negative. *)
        let rel =
          if F.sign row.(cols) < 0 then begin
            for j = 0 to cols do
              row.(j) <- F.neg row.(j)
            done;
            match rel with Leq -> Geq | Geq -> Leq | Eq -> Eq
          end
          else rel
        in
        (match rel with
        | Leq ->
            row.(!slack) <- F.one;
            incr slack
        | Geq ->
            row.(!slack) <- F.neg F.one;
            incr slack;
            needs_artificial.(r) <- true
        | Eq -> needs_artificial.(r) <- true))
      rewritten;
    (* 4. Phase-2 objective over canonical columns. *)
    let cost = Array.make cols F.zero in
    let cost_const = ref F.zero in
    List.iter
      (fun (i, a) ->
        match recover.(i) with
        | Shifted (col, base) ->
            cost.(col) <- F.add cost.(col) a;
            cost_const := F.add !cost_const (F.mul a base)
        | Mirrored (col, base) ->
            cost.(col) <- F.sub cost.(col) a;
            cost_const := F.add !cost_const (F.mul a base)
        | Split (cp, cm) ->
            cost.(cp) <- F.add cost.(cp) a;
            cost.(cm) <- F.sub cost.(cm) a)
      p.minimize;
    { m; cols; rows; needs_artificial; cost; cost_const = !cost_const; recover }

  (* ---------------------------------------------------------------- *)
  (* Tableau pivoting                                                  *)
  (* ---------------------------------------------------------------- *)

  type tableau = {
    t_rows : F.t array array; (* m x (width + 1) *)
    width : int;
    obj : F.t array; (* reduced costs, length width + 1 (last = -z) *)
    basis : int array;
  }

  (* Module-level pivot counter: [state] snapshots it around each solve so
     the benches can compare pivot budgets across backends. *)
  let pivot_counter = ref 0

  let pivot tab r c =
    incr pivot_counter;
    let row = tab.t_rows.(r) in
    let piv = row.(c) in
    for j = 0 to tab.width do
      row.(j) <- F.div row.(j) piv
    done;
    let eliminate target =
      let factor = target.(c) in
      if F.sign factor <> 0 then
        for j = 0 to tab.width do
          target.(j) <- F.sub target.(j) (F.mul factor row.(j))
        done
    in
    for i = 0 to Array.length tab.t_rows - 1 do
      if i <> r then eliminate tab.t_rows.(i)
    done;
    eliminate tab.obj;
    tab.basis.(r) <- c

  (* Bland's rule: entering column = smallest index with reduced cost that
     is genuinely negative; leaving row = lexicographic (ratio, basis id). *)
  let rec iterate ?(allowed = fun _ -> true) tab =
    let entering = ref (-1) in
    (try
       for j = 0 to tab.width - 1 do
         if allowed j && F.lt tab.obj.(j) F.zero then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      let best = ref None in
      for r = 0 to Array.length tab.t_rows - 1 do
        let a = tab.t_rows.(r).(c) in
        if F.compare a F.pivot_threshold > 0 then begin
          let ratio = F.div tab.t_rows.(r).(tab.width) a in
          let better =
            match !best with
            | None -> true
            | Some (br, bratio) ->
                let cmp = F.compare ratio bratio in
                cmp < 0 || (cmp = 0 && tab.basis.(r) < tab.basis.(br))
          in
          if better then best := Some (r, ratio)
        end
      done;
      match !best with
      | None -> `Unbounded
      | Some (r, _) ->
          pivot tab r c;
          iterate ~allowed tab
    end
  [@@warning "-27"]

  (* Build the objective row for [cost] given the current basis: reduced
     costs d_j = c_j - c_B . B^-1 A_j, realized by row elimination. *)
  let set_objective tab cost cost_of_basis =
    Array.fill tab.obj 0 (tab.width + 1) F.zero;
    Array.blit cost 0 tab.obj 0 (Array.length cost);
    Array.iteri
      (fun r b ->
        let cb = cost_of_basis b in
        if F.sign cb <> 0 then
          let row = tab.t_rows.(r) in
          for j = 0 to tab.width do
            tab.obj.(j) <- F.sub tab.obj.(j) (F.mul cb row.(j))
          done)
      tab.basis

  let objective_value tab = F.neg tab.obj.(tab.width)

  (* ---------------------------------------------------------------- *)
  (* Two-phase driver                                                  *)
  (* ---------------------------------------------------------------- *)

  let solve p =
    let c = canonicalize p in
    let n_art = Array.fold_left (fun k b -> if b then k + 1 else k) 0 c.needs_artificial in
    let width = c.cols + n_art in
    let t_rows = Array.init c.m (fun r ->
        let row = Array.make (width + 1) F.zero in
        Array.blit c.rows.(r) 0 row 0 c.cols;
        row.(width) <- c.rows.(r).(c.cols);
        row)
    in
    let basis = Array.make c.m (-1) in
    (* Rows without an artificial start basic at their slack column; find it
       (the unique +1 slack coefficient we just planted). *)
    let next_art = ref c.cols in
    Array.iteri
      (fun r needs ->
        if needs then begin
          t_rows.(r).(!next_art) <- F.one;
          basis.(r) <- !next_art;
          incr next_art
        end
        else begin
          (* The slack column of this row: the last structural+slack column
             with coefficient one that is a unit column. We recorded slacks
             in canonicalize in row order, so scan for it. *)
          let found = ref (-1) in
          for j = c.cols - 1 downto 0 do
            if !found < 0 && F.equal t_rows.(r).(j) F.one then begin
              (* Check unit column. *)
              let unit = ref true in
              for i = 0 to c.m - 1 do
                if i <> r && F.sign c.rows.(i).(j) <> 0 then unit := false
              done;
              if !unit then found := j
            end
          done;
          assert (!found >= 0);
          basis.(r) <- !found
        end)
      c.needs_artificial;
    let tab = { t_rows; width; obj = Array.make (width + 1) F.zero; basis } in
    let is_artificial j = j >= c.cols in
    (* Phase 1: minimize the sum of artificials. *)
    if n_art > 0 then begin
      let phase1_cost = Array.init width (fun j -> if is_artificial j then F.one else F.zero) in
      set_objective tab phase1_cost (fun b -> if is_artificial b then F.one else F.zero);
      match iterate tab with
      | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
      | `Optimal ->
          if F.lt F.zero (objective_value tab) then raise Exit
    end;
    (* Drive any residual zero-valued artificials out of the basis. *)
    Array.iteri
      (fun r b ->
        if is_artificial b then begin
          let found = ref (-1) in
          for j = 0 to c.cols - 1 do
            if !found < 0 && F.compare (F.abs tab.t_rows.(r).(j)) F.pivot_threshold > 0 then
              found := j
          done;
          if !found >= 0 then pivot tab r !found
          (* else: redundant row; it stays with a zero artificial, harmless
             because artificial columns are barred from re-entering below. *)
        end)
      tab.basis;
    (* Phase 2. *)
    let phase2_cost = Array.init width (fun j -> if is_artificial j then F.zero else c.cost.(j)) in
    set_objective tab phase2_cost (fun b -> if is_artificial b then F.zero else c.cost.(b));
    match iterate ~allowed:(fun j -> not (is_artificial j)) tab with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let col_value = Array.make c.cols F.zero in
        Array.iteri
          (fun r b -> if b < c.cols then col_value.(b) <- tab.t_rows.(r).(width))
          tab.basis;
        let values =
          Array.map
            (function
              | Shifted (col, base) -> F.add base col_value.(col)
              | Mirrored (col, base) -> F.sub base col_value.(col)
              | Split (cp, cm) -> F.sub col_value.(cp) col_value.(cm))
            c.recover
        in
        let objective =
          List.fold_left
            (fun acc (i, a) -> F.add acc (F.mul a values.(i)))
            F.zero p.minimize
        in
        Optimal { values; objective }

  let solve p = try solve p with Exit -> Infeasible

  (* ---------------------------------------------------------------- *)
  (* Incremental interface (cold implementation)                       *)
  (* ---------------------------------------------------------------- *)

  (* The functor path keeps no factorization around: [add_constraint]
     re-solves the accumulated problem from scratch. That makes it the
     semantic oracle for the genuinely warm-started [Simplex_float] kernel —
     both must report identical outcomes round after round — while [pivots]
     exposes exactly how much work cold restarts cost. *)
  type state = {
    mutable cur : problem;
    mutable last : outcome;
    mutable spent : int; (* pivots spent on this state so far *)
  }

  let pivots st = st.spent

  let solve_incremental p =
    let before = !pivot_counter in
    let o = solve p in
    ({ cur = p; last = o; spent = !pivot_counter - before }, o)

  let add_constraint st c =
    match st.last with
    | Infeasible ->
        (* Adding a row only shrinks the feasible region. *)
        st.cur <- { st.cur with constraints = c :: st.cur.constraints };
        Infeasible
    | Optimal _ | Unbounded ->
        let p = { st.cur with constraints = c :: st.cur.constraints } in
        let before = !pivot_counter in
        let o = solve p in
        st.cur <- p;
        st.last <- o;
        st.spent <- st.spent + (!pivot_counter - before);
        o
end

module Float_simplex = Make (Repro_field.Field.Float_field)
module Rat_simplex = Make (Repro_field.Field.Rat)
