(* Sparse revised simplex with bounded variables.

   The dense kernel ([Simplex_float]) compiles general bounds away: every
   doubly-bounded variable becomes an explicit upper-bound row, and each
   pivot rewrites the whole O(rows * cols) tableau. On the cutting-plane
   masters of [Sne_lp] that is exactly wrong: the box bounds
   0 <= b_a <= w_a cover every variable (so the dense tableau starts with
   |E| rows before the first cut arrives), while the generated rows are
   sparse tree-path cuts touching a dozen edges each. This kernel keeps
   the bounds implicit and the matrix sparse:

   - columns are the structural variables plus one +1-coefficient slack
     per row (the relation lives in the slack's bounds: <= gives
     s in [0,inf), >= gives s in (-inf,0], = pins s at 0);
   - constraints are stored twice: CSR (rows, append-only — the dual
     ratio test sweeps the leaving row through it) and CSC (per-column
     grow arrays — FTRAN scatters and pricing dot-products walk columns);
   - the basis inverse is a product-form eta file: one column eta per
     pivot, one row eta per appended cut (see [append_row]), rebuilt from
     scratch by [refactor] when the file grows past its trigger;
   - pricing is partial (rotating column sections, largest reduced cost
     within the first section that offers a candidate), with Bland's rule
     after a degeneracy streak, mirroring the dense kernel's fallback.

   A fresh problem starts from the all-slack basis: dual feasible for the
   whole LP (3) family (minimize a nonnegative combination of
   lower-bounded variables), in which case the dual simplex repairs
   primal feasibility directly; otherwise a composite phase 1 drives the
   infeasibility out. Numerical trouble — stalls, singular
   refactorization — falls back to a cold rebuild and, as a last resort,
   delegates the state to the dense kernel, so the answer is always
   delivered; only the pivot count changes. Tolerances are aligned with
   [Simplex_float] so the two kernels classify borderline instances the
   same way (the property tests cross-validate both against the
   exact-rational functor). *)

type num = float
type relation = Leq | Geq | Eq

type constr = {
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
  label : string;
}

type problem = {
  n_vars : int;
  minimize : (int * float) list;
  constraints : constr list;
  lower : float option array;
  upper : float option array;
  var_name : int -> string;
}

type solution = { values : float array; objective : float }
type outcome = Optimal of solution | Infeasible | Unbounded

let name = "revised-simplex-sparse"

module Obs = Repro_obs.Obs

let c_pivots = Obs.counter "lp.sparse.pivots"
let c_primal = Obs.counter "lp.sparse.primal_pivots"
let c_dual = Obs.counter "lp.sparse.dual_pivots"
let c_flips = Obs.counter "lp.sparse.bound_flips"
let c_refactors = Obs.counter "lp.sparse.refactors"
let c_drift = Obs.counter "lp.sparse.drift_refactors"
let c_cold = Obs.counter "lp.sparse.cold_solves"
let c_warm = Obs.counter "lp.sparse.warm_solves"
let c_rebuilds = Obs.counter "lp.sparse.rebuilds"
let c_fallbacks = Obs.counter "lp.sparse.fallbacks"

(* Same up-front NaN/inf rejection as the dense kernel: a non-finite
   coefficient silently poisons float pricing comparisons. *)
let check_finite ~what ~where x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "%s: non-finite %s (%g)" what where x)

let check_constr ~what (c : constr) =
  List.iter
    (fun (_, a) ->
      check_finite ~what ~where:(Printf.sprintf "coefficient in constraint %S" c.label) a)
    c.coeffs;
  check_finite ~what ~where:(Printf.sprintf "rhs in constraint %S" c.label) c.rhs

let make_problem ~n_vars ?(var_name = fun i -> Printf.sprintf "x%d" i) ~minimize
    ~constraints ~lower ~upper () =
  let what = "Revised_sparse.make_problem" in
  if Array.length lower <> n_vars || Array.length upper <> n_vars then
    invalid_arg (what ^ ": bound arrays must have n_vars entries");
  let check_index (i, _) =
    if i < 0 || i >= n_vars then invalid_arg (what ^ ": variable out of range")
  in
  List.iter check_index minimize;
  List.iter (fun c -> List.iter check_index c.coeffs) constraints;
  List.iter (fun (i, a) ->
      check_finite ~what ~where:(Printf.sprintf "objective coefficient of %s" (var_name i)) a)
    minimize;
  List.iter (check_constr ~what) constraints;
  let check_bound which i = function
    | Some x ->
        check_finite ~what ~where:(Printf.sprintf "%s bound of %s" which (var_name i)) x
    | None -> ()
  in
  Array.iteri (check_bound "lower") lower;
  Array.iteri (check_bound "upper") upper;
  { n_vars; minimize; constraints; lower; upper; var_name }

let nonneg n = (Array.make n (Some 0.0), Array.make n None)

(* Tolerances, aligned with Simplex_float. *)
let pivot_tol = 1e-9
let price_tol = 1e-9
let feas_tol = 1e-9
let phase1_tol = 1e-7
let degen_tol = 1e-12
let bland_after = 40
let eta_drop = 1e-13 (* eta entries below this are rounding noise *)
let refactor_etas = 64 (* eta-file length that triggers refactorization *)

(* ------------------------------------------------------------------ *)
(* The eta file                                                        *)
(* ------------------------------------------------------------------ *)

(* Column eta (from a pivot on row [r] with FTRANed column [w]):
     FTRAN   t = w_r / pr; w_r <- t; w_i <- w_i - v_i * t
     BTRAN   w_r <- (w_r - sum_i v_i * w_i) / pr
   Row eta (from an appended row [r]; pr = 1):
     FTRAN   w_r <- w_r - sum_i v_i * w_i
     BTRAN   w_i <- w_i - v_i * w_r
   [idx]/[v] hold the off-pivot entries. *)
type eta = { col : bool; r : int; pr : float; idx : int array; v : float array }

type core = {
  ns : int; (* structural columns; slack of row r is column ns + r *)
  (* CSR, rows append-only *)
  mutable nrows : int;
  mutable row_ptr : int array; (* nrows + 1 entries in use *)
  mutable rc : int array;
  mutable rv : float array;
  mutable nnz : int;
  mutable b : float array; (* rhs per row *)
  (* CSC of the structural columns (slack columns are implicit units) *)
  cr : int array array;
  cv : float array array;
  clen : int array;
  (* per-column data, structural then slacks; length ns + nrows in use *)
  mutable lo : float array; (* neg_infinity = unbounded below *)
  mutable up : float array;
  mutable cost : float array;
  mutable bpos : int array; (* row of a basic column, -1 if nonbasic *)
  mutable nb_up : bool array; (* nonbasic column rests at its upper bound *)
  (* basis *)
  mutable basis : int array; (* per row *)
  mutable xb : float array; (* values of the basic columns, per row *)
  (* eta file *)
  mutable etas : eta array;
  mutable n_etas : int;
  mutable eta_nnz : int;
  (* eta file size right after the last refactorization: the refactor
     trigger bounds the UPDATE file (etas added since), not the
     factorization itself, or dense bases would refactor every pivot *)
  mutable base_etas : int;
  mutable base_nnz : int;
  (* scratch (capacity >= nrows / >= ncols; zeroed by their users) *)
  mutable wk : float array;
  mutable rho : float array;
  mutable yv : float array;
  mutable acc : float array;
  mutable acc_touched : bool array;
  mutable touched : int array;
  mutable n_touched : int;
  (* pricing / anti-cycling *)
  mutable price_ptr : int;
  mutable degen_streak : int;
  mutable bland : bool;
  (* stats *)
  mutable n_pivots : int;
  mutable n_refactors : int;
}

let ncols core = core.ns + core.nrows

(* Growable-array helpers (amortized doubling). *)
let grow_f a n =
  let len = Array.length a in
  if len >= n then a
  else begin
    let a' = Array.make (max n (max 8 (2 * len))) 0.0 in
    Array.blit a 0 a' 0 len;
    a'
  end

let grow_i a n fill =
  let len = Array.length a in
  if len >= n then a
  else begin
    let a' = Array.make (max n (max 8 (2 * len))) fill in
    Array.blit a 0 a' 0 len;
    a'
  end

let grow_b a n =
  let len = Array.length a in
  if len >= n then a
  else begin
    let a' = Array.make (max n (max 8 (2 * len))) false in
    Array.blit a 0 a' 0 len;
    a'
  end

(* ------------------------------------------------------------------ *)
(* FTRAN / BTRAN over the eta file                                     *)
(* ------------------------------------------------------------------ *)

let apply_eta_ftran (e : eta) w =
  if e.col then begin
    let t = Array.unsafe_get w e.r /. e.pr in
    Array.unsafe_set w e.r t;
    if t <> 0.0 then
      for k = 0 to Array.length e.idx - 1 do
        let i = Array.unsafe_get e.idx k in
        Array.unsafe_set w i
          (Array.unsafe_get w i -. (Array.unsafe_get e.v k *. t))
      done
  end
  else begin
    let s = ref 0.0 in
    for k = 0 to Array.length e.idx - 1 do
      s := !s +. (Array.unsafe_get e.v k *. Array.unsafe_get w (Array.unsafe_get e.idx k))
    done;
    w.(e.r) <- w.(e.r) -. !s
  end

let apply_eta_btran (e : eta) w =
  if e.col then begin
    let s = ref 0.0 in
    for k = 0 to Array.length e.idx - 1 do
      s := !s +. (Array.unsafe_get e.v k *. Array.unsafe_get w (Array.unsafe_get e.idx k))
    done;
    w.(e.r) <- (w.(e.r) -. !s) /. e.pr
  end
  else begin
    let t = Array.unsafe_get w e.r in
    if t <> 0.0 then
      for k = 0 to Array.length e.idx - 1 do
        let i = Array.unsafe_get e.idx k in
        Array.unsafe_set w i
          (Array.unsafe_get w i -. (Array.unsafe_get e.v k *. t))
      done
  end

let ftran core w =
  for k = 0 to core.n_etas - 1 do
    apply_eta_ftran (Array.unsafe_get core.etas k) w
  done

let btran core w =
  for k = core.n_etas - 1 downto 0 do
    apply_eta_btran (Array.unsafe_get core.etas k) w
  done

let push_eta core e =
  if Array.length core.etas = core.n_etas then begin
    let etas' =
      Array.make (max 16 (2 * core.n_etas))
        { col = true; r = 0; pr = 1.0; idx = [||]; v = [||] }
    in
    Array.blit core.etas 0 etas' 0 core.n_etas;
    core.etas <- etas'
  end;
  core.etas.(core.n_etas) <- e;
  core.n_etas <- core.n_etas + 1;
  core.eta_nnz <- core.eta_nnz + Array.length e.idx + 1

(* Column eta from the FTRANed entering column [w], pivot row [r]. *)
let push_col_eta core r w =
  let count = ref 0 in
  for i = 0 to core.nrows - 1 do
    if i <> r && Float.abs w.(i) > eta_drop then incr count
  done;
  let idx = Array.make !count 0 and v = Array.make !count 0.0 in
  let k = ref 0 in
  for i = 0 to core.nrows - 1 do
    if i <> r && Float.abs w.(i) > eta_drop then begin
      idx.(!k) <- i;
      v.(!k) <- w.(i);
      incr k
    end
  done;
  push_eta core { col = true; r; pr = w.(r); idx; v }

(* ------------------------------------------------------------------ *)
(* Columns, values, reduced costs                                      *)
(* ------------------------------------------------------------------ *)

(* Scatter column [j] of [A | I] into [w] (caller pre-zeroes). *)
let scatter_col core j w =
  if j < core.ns then begin
    let cr = core.cr.(j) and cv = core.cv.(j) in
    for k = 0 to core.clen.(j) - 1 do
      w.(cr.(k)) <- cv.(k)
    done
  end
  else w.(j - core.ns) <- 1.0

(* y . A_j *)
let dot_col core y j =
  if j < core.ns then begin
    let cr = core.cr.(j) and cv = core.cv.(j) in
    let s = ref 0.0 in
    for k = 0 to core.clen.(j) - 1 do
      s := !s +. (Array.unsafe_get cv k *. Array.unsafe_get y (Array.unsafe_get cr k))
    done;
    !s
  end
  else y.(j - core.ns)

(* Value of a nonbasic column: its resting bound (0 for free columns). *)
let nb_val core j =
  if core.nb_up.(j) then core.up.(j)
  else if core.lo.(j) > neg_infinity then core.lo.(j)
  else 0.0

let value_of core j =
  let p = core.bpos.(j) in
  if p >= 0 then core.xb.(p) else nb_val core j

let fixed core j = core.lo.(j) = core.up.(j)

(* xb = B^-1 (b - A_N x_N), from scratch (initial build, refactorization,
   crash starts). *)
let recompute_xb core =
  let v = core.wk in
  for r = 0 to core.nrows - 1 do
    v.(r) <- core.b.(r);
    if core.bpos.(core.ns + r) < 0 then v.(r) <- v.(r) -. nb_val core (core.ns + r)
  done;
  for r = 0 to core.nrows - 1 do
    for k = core.row_ptr.(r) to core.row_ptr.(r + 1) - 1 do
      let j = core.rc.(k) in
      if core.bpos.(j) < 0 then begin
        let x = nb_val core j in
        if x <> 0.0 then v.(r) <- v.(r) -. (core.rv.(k) *. x)
      end
    done
  done;
  ftran core v;
  Array.blit v 0 core.xb 0 core.nrows

(* ------------------------------------------------------------------ *)
(* Refactorization: rebuild the eta file from scratch                   *)
(* ------------------------------------------------------------------ *)

(* Re-enter the basic columns into an identity basis one at a time,
   sparsest first, claiming for each the unclaimed row with the largest
   FTRANed magnitude (partial pivoting restricted to free rows). Rows
   whose basic column is their own slack are trivial and claim
   themselves. Returns [false] when no acceptable pivot remains — the
   caller rebuilds cold. Also recomputes [xb], so refactorization doubles
   as drift repair. *)
let refactor core =
  Obs.incr c_refactors;
  core.n_refactors <- core.n_refactors + 1;
  core.n_etas <- 0;
  core.eta_nnz <- 0;
  let claimed = Array.make core.nrows false in
  let pending = ref [] in
  for r = 0 to core.nrows - 1 do
    if core.basis.(r) = core.ns + r then claimed.(r) <- true
    else pending := core.basis.(r) :: !pending
  done;
  let col_nnz j = if j < core.ns then core.clen.(j) else 1 in
  let pending =
    List.sort (fun a b -> compare (col_nnz a, a) (col_nnz b, b)) !pending
  in
  let w = core.wk in
  let ok = ref true in
  List.iter
    (fun c ->
      if !ok then begin
        Array.fill w 0 core.nrows 0.0;
        scatter_col core c w;
        ftran core w;
        let best = ref (-1) and bestv = ref 0.0 in
        for r = 0 to core.nrows - 1 do
          if (not claimed.(r)) && Float.abs w.(r) > !bestv then begin
            best := r;
            bestv := Float.abs w.(r)
          end
        done;
        if !best < 0 || !bestv <= 1e-10 then ok := false
        else begin
          let r = !best in
          push_col_eta core r w;
          claimed.(r) <- true;
          core.basis.(r) <- c;
          core.bpos.(c) <- r
        end
      end)
    pending;
  core.base_etas <- core.n_etas;
  core.base_nnz <- core.eta_nnz;
  if !ok then recompute_xb core;
  !ok

let maybe_refactor core =
  if
    core.n_etas - core.base_etas >= refactor_etas
    || core.eta_nnz - core.base_nnz > 24 * (core.nrows + 8)
  then refactor core
  else true

(* ------------------------------------------------------------------ *)
(* Feasibility bookkeeping                                             *)
(* ------------------------------------------------------------------ *)

(* Most-violated row: (row, amount, below) with amount <= feas_tol when
   primal feasible. *)
let max_violation core =
  let row = ref (-1) and amt = ref feas_tol and below = ref false in
  for r = 0 to core.nrows - 1 do
    let c = core.basis.(r) in
    let v = core.xb.(r) in
    let d_lo = core.lo.(c) -. v and d_up = v -. core.up.(c) in
    if d_lo > !amt then begin
      row := r;
      amt := d_lo;
      below := true
    end
    else if d_up > !amt then begin
      row := r;
      amt := d_up;
      below := false
    end
  done;
  (!row, !amt, !below)

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)
(* ------------------------------------------------------------------ *)

(* Reduced cost of a nonbasic column under the (possibly phase-1) duals;
   [phase1] zeroes the nonbasic objective. *)
let reduced_cost core ~phase1 y j =
  (if phase1 then 0.0 else core.cost.(j)) -. dot_col core y j

(* Entering-column candidate: Some (direction, |d|) or None. Direction
   +1 increases the column off its lower bound, -1 decreases it off its
   upper; free columns move either way. *)
let candidate core ~phase1 y j =
  if core.bpos.(j) >= 0 || fixed core j then None
  else begin
    let d = reduced_cost core ~phase1 y j in
    if core.nb_up.(j) then if d > price_tol then Some (-1, d) else None
    else if core.lo.(j) > neg_infinity then
      if d < -.price_tol then Some (1, -.d) else None
    else if d < -.price_tol then Some (1, -.d)
    else if d > price_tol then Some (-1, d)
    else None
  end

(* Partial pricing: rotate through column sections starting at
   [price_ptr], stop at the end of the first section containing a
   candidate (largest |d| within it). Bland mode scans everything and
   takes the least index. *)
let pick_entering core ~phase1 y =
  let n = ncols core in
  if core.bland then begin
    let found = ref None in
    (try
       for j = 0 to n - 1 do
         match candidate core ~phase1 y j with
         | Some (dir, _) ->
             found := Some (j, dir);
             raise Exit
         | None -> ()
       done
     with Exit -> ());
    !found
  end
  else begin
    let section = max 64 (n / 8) in
    let best = ref None and bestv = ref 0.0 in
    let off = ref 0 in
    (try
       while !off < n do
         let j = (core.price_ptr + !off) mod n in
         (match candidate core ~phase1 y j with
         | Some (dir, mag) ->
             if mag > !bestv then begin
               best := Some (j, dir);
               bestv := mag
             end
         | None -> ());
         incr off;
         if !off mod section = 0 && !best <> None then raise Exit
       done
     with Exit -> ());
    (match !best with
    | Some (j, _) -> core.price_ptr <- (j + 1) mod n
    | None -> ());
    !best
  end

(* ------------------------------------------------------------------ *)
(* Primal simplex (phase 2, and composite phase 1)                      *)
(* ------------------------------------------------------------------ *)

let track_degeneracy core t =
  if t <= degen_tol then begin
    core.degen_streak <- core.degen_streak + 1;
    if core.degen_streak > bland_after then core.bland <- true
  end
  else begin
    core.degen_streak <- 0;
    core.bland <- false
  end

(* One primal step on entering column [j] moving in [dir]. In phase 1,
   infeasible basics block at their violated bound (they become feasible
   there and leave); feasible basics block as usual. *)
let primal_step core ~phase1 j dir =
  let w = core.wk in
  Array.fill w 0 core.nrows 0.0;
  scatter_col core j w;
  ftran core w;
  let limit = ref infinity and leave_r = ref (-1) and leave_up = ref false in
  let leave_mag = ref 0.0 in
  let rng = core.up.(j) -. core.lo.(j) in
  if rng < infinity then limit := rng;
  let try_limit t r up mag =
    let t = Float.max 0.0 t in
    if t < !limit -. 1e-12 || (t < !limit +. 1e-12 && mag > !leave_mag) then begin
      limit := t;
      leave_r := r;
      leave_up := up;
      leave_mag := mag
    end
  in
  let fdir = float_of_int dir in
  for r = 0 to core.nrows - 1 do
    let wr = w.(r) in
    if Float.abs wr > pivot_tol then begin
      let delta = -.fdir *. wr in
      let c = core.basis.(r) in
      let bv = core.xb.(r) in
      let lo_b = core.lo.(c) and up_b = core.up.(c) in
      let mag = Float.abs wr in
      if phase1 && bv < lo_b -. feas_tol then begin
        if delta > 0.0 then try_limit ((lo_b -. bv) /. delta) r false mag
      end
      else if phase1 && bv > up_b +. feas_tol then begin
        if delta < 0.0 then try_limit ((bv -. up_b) /. -.delta) r true mag
      end
      else if delta < 0.0 then begin
        if lo_b > neg_infinity then try_limit ((bv -. lo_b) /. -.delta) r false mag
      end
      else if up_b < infinity then try_limit ((up_b -. bv) /. delta) r true mag
    end
  done;
  if !limit = infinity then `Unbounded
  else begin
    let t = Float.max 0.0 !limit in
    let step = fdir *. t in
    if step <> 0.0 then
      for r = 0 to core.nrows - 1 do
        core.xb.(r) <- core.xb.(r) -. (step *. w.(r))
      done;
    if !leave_r < 0 then begin
      (* Bound flip: the entering column crosses its own range. *)
      core.nb_up.(j) <- not core.nb_up.(j);
      Obs.incr c_flips;
      track_degeneracy core t;
      `Step
    end
    else begin
      let r = !leave_r in
      let vq = nb_val core j +. step in
      let lv = core.basis.(r) in
      core.nb_up.(lv) <- !leave_up;
      core.bpos.(lv) <- -1;
      core.basis.(r) <- j;
      core.bpos.(j) <- r;
      core.xb.(r) <- vq;
      push_col_eta core r w;
      core.n_pivots <- core.n_pivots + 1;
      Obs.incr c_pivots;
      Obs.incr c_primal;
      track_degeneracy core t;
      if maybe_refactor core then `Step else `Stalled
    end
  end

(* Phase-1 duals: the composite cost is +-1 on the violated basics. *)
let phase1_duals core y =
  Array.fill y 0 core.nrows 0.0;
  for r = 0 to core.nrows - 1 do
    let c = core.basis.(r) in
    let v = core.xb.(r) in
    if v < core.lo.(c) -. feas_tol then y.(r) <- -1.0
    else if v > core.up.(c) +. feas_tol then y.(r) <- 1.0
  done;
  btran core y

let phase2_duals core y =
  Array.fill y 0 core.nrows 0.0;
  for r = 0 to core.nrows - 1 do
    y.(r) <- core.cost.(core.basis.(r))
  done;
  btran core y

let primal_loop core ~phase1 =
  let max_iter = 500 + (20 * (core.nrows + ncols core)) in
  let iter = ref 0 in
  let rec go () =
    if phase1 && (let _, amt, _ = max_violation core in amt <= feas_tol) then `Feasible
    else if !iter > max_iter then `Stalled
    else begin
      incr iter;
      let y = core.yv in
      if phase1 then phase1_duals core y else phase2_duals core y;
      match pick_entering core ~phase1 y with
      | None ->
          if not phase1 then `Optimal
          else begin
            let _, amt, _ = max_violation core in
            if amt > phase1_tol then `Infeasible else `Feasible
          end
      | Some (j, dir) -> (
          match primal_step core ~phase1 j dir with
          | `Step -> go ()
          | `Stalled -> `Stalled
          | `Unbounded -> if phase1 then `Stalled else `Unbounded)
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)
(* ------------------------------------------------------------------ *)

(* alpha_j = rho . A_j for every column touched by the rows where rho is
   nonzero: a CSR sweep plus the implicit slack units. Results land in
   [acc]; [touched] lists the columns to reset afterwards. *)
let dual_sweep core rho =
  core.n_touched <- 0;
  let touch j x =
    if not core.acc_touched.(j) then begin
      core.acc_touched.(j) <- true;
      core.acc.(j) <- x;
      core.touched.(core.n_touched) <- j;
      core.n_touched <- core.n_touched + 1
    end
    else core.acc.(j) <- core.acc.(j) +. x
  in
  for r = 0 to core.nrows - 1 do
    let x = rho.(r) in
    if Float.abs x > 1e-13 then begin
      touch (core.ns + r) x;
      for k = core.row_ptr.(r) to core.row_ptr.(r + 1) - 1 do
        touch core.rc.(k) (x *. core.rv.(k))
      done
    end
  done

let clear_sweep core =
  for k = 0 to core.n_touched - 1 do
    let j = core.touched.(k) in
    core.acc.(j) <- 0.0;
    core.acc_touched.(j) <- false
  done;
  core.n_touched <- 0

(* Dual simplex: drive the most-violated basic to its bound, entering
   the column with the best (smallest) dual ratio. The no-candidate
   verdict is a sound infeasibility certificate independent of dual
   feasibility: the leaving row's equation already maximizes (minimizes)
   the basic value over the nonbasic boxes. *)
let dual_loop core =
  let max_iter = 500 + (20 * (core.nrows + ncols core)) in
  let iter = ref 0 in
  let rec go retried =
    let r, _amt, below = max_violation core in
    if r < 0 then `Feasible
    else if !iter > max_iter then `Stalled
    else begin
      incr iter;
      let rho = core.rho in
      Array.fill rho 0 core.nrows 0.0;
      rho.(r) <- 1.0;
      btran core rho;
      let y = core.yv in
      phase2_duals core y;
      dual_sweep core rho;
      (* Dual ratio test over the touched nonbasic columns. *)
      let q = ref (-1) and q_ratio = ref infinity and q_mag = ref 0.0 in
      for k = 0 to core.n_touched - 1 do
        let j = core.touched.(k) in
        if core.bpos.(j) < 0 && not (fixed core j) then begin
          let a = core.acc.(j) in
          if Float.abs a > pivot_tol then begin
            let at_up = core.nb_up.(j) in
            let free = (not at_up) && core.lo.(j) = neg_infinity in
            let ok =
              if free then true
              else if below then if at_up then a > 0.0 else a < 0.0
              else if at_up then a < 0.0
              else a > 0.0
            in
            if ok then begin
              let d = reduced_cost core ~phase1:false y j in
              let num =
                if free then Float.abs d
                else if at_up then Float.max 0.0 (-.d)
                else Float.max 0.0 d
              in
              let ratio = num /. Float.abs a in
              if
                ratio < !q_ratio -. 1e-12
                || (ratio < !q_ratio +. 1e-12 && Float.abs a > !q_mag)
              then begin
                q := j;
                q_ratio := ratio;
                q_mag := Float.abs a
              end
            end
          end
        end
      done;
      let alpha_q = if !q >= 0 then core.acc.(!q) else 0.0 in
      clear_sweep core;
      if !q < 0 then `Infeasible
      else begin
        let j = !q in
        let target = if below then core.lo.(core.basis.(r)) else core.up.(core.basis.(r)) in
        let dq = (core.xb.(r) -. target) /. alpha_q in
        let rng = core.up.(j) -. core.lo.(j) in
        if rng < infinity && Float.abs dq > rng +. feas_tol then begin
          (* The entering column hits its own far bound first: flip it,
             shift the basics, and retry the (still violated) row. *)
          let step = if core.nb_up.(j) then -.rng else rng in
          let w = core.wk in
          Array.fill w 0 core.nrows 0.0;
          scatter_col core j w;
          ftran core w;
          for i = 0 to core.nrows - 1 do
            core.xb.(i) <- core.xb.(i) -. (step *. w.(i))
          done;
          core.nb_up.(j) <- not core.nb_up.(j);
          Obs.incr c_flips;
          go false
        end
        else begin
          let w = core.wk in
          Array.fill w 0 core.nrows 0.0;
          scatter_col core j w;
          ftran core w;
          if Float.abs (w.(r) -. alpha_q) > 1e-6 *. Float.max 1.0 (Float.abs alpha_q)
             || Float.abs w.(r) <= pivot_tol
          then
            (* FTRAN and BTRAN disagree on the pivot element: the eta
               file has drifted. Refactorize once and retry the row. *)
            if retried then `Stalled
            else if (Obs.incr c_drift; refactor core) then go true
            else `Stalled
          else begin
            let vq = nb_val core j +. dq in
            for i = 0 to core.nrows - 1 do
              core.xb.(i) <- core.xb.(i) -. (dq *. w.(i))
            done;
            let lv = core.basis.(r) in
            core.nb_up.(lv) <- not below;
            core.bpos.(lv) <- -1;
            core.basis.(r) <- j;
            core.bpos.(j) <- r;
            core.xb.(r) <- vq;
            push_col_eta core r w;
            core.n_pivots <- core.n_pivots + 1;
            Obs.incr c_pivots;
            Obs.incr c_dual;
            track_degeneracy core (Float.abs dq);
            if maybe_refactor core then go false else `Stalled
          end
        end
      end
    end
  in
  go false

(* ------------------------------------------------------------------ *)
(* Building a core                                                     *)
(* ------------------------------------------------------------------ *)

(* Canonical sparse row: duplicate indices merged, exact zeros dropped,
   sorted by column for deterministic sweeps. *)
let canon_coeffs coeffs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) coeffs in
  let rec merge = function
    | (i, a) :: (j, b) :: tl when i = j -> merge ((i, a +. b) :: tl)
    | (i, a) :: tl -> if a = 0.0 then merge tl else (i, a) :: merge tl
    | [] -> []
  in
  merge sorted

let slack_bounds = function
  | Leq -> (0.0, infinity)
  | Geq -> (neg_infinity, 0.0)
  | Eq -> (0.0, 0.0)

let alloc_core prob rows =
  let ns = prob.n_vars in
  let nrows = List.length rows in
  let nc = ns + nrows in
  let lo = Array.make nc neg_infinity and up = Array.make nc infinity in
  for j = 0 to ns - 1 do
    (match prob.lower.(j) with Some l -> lo.(j) <- l | None -> ());
    (match prob.upper.(j) with Some u -> up.(j) <- u | None -> ());
    if up.(j) < lo.(j) then
      invalid_arg "Simplex: empty variable range (upper < lower)"
  done;
  let cost = Array.make nc 0.0 in
  List.iter (fun (j, c) -> cost.(j) <- cost.(j) +. c) prob.minimize;
  let canon = List.map (fun c -> (canon_coeffs c.coeffs, c)) rows in
  let nnz = List.fold_left (fun a (cs, _) -> a + List.length cs) 0 canon in
  let row_ptr = Array.make (nrows + 1) 0 in
  let rc = Array.make (max 1 nnz) 0 and rv = Array.make (max 1 nnz) 0.0 in
  let b = Array.make (max 1 nrows) 0.0 in
  let clen = Array.make ns 0 in
  List.iter (fun (cs, _) -> List.iter (fun (j, _) -> clen.(j) <- clen.(j) + 1) cs) canon;
  let cr = Array.init ns (fun j -> Array.make (max 1 clen.(j)) 0) in
  let cv = Array.init ns (fun j -> Array.make (max 1 clen.(j)) 0.0) in
  Array.fill clen 0 ns 0;
  let pos = ref 0 in
  List.iteri
    (fun r (cs, (cstr : constr)) ->
      row_ptr.(r) <- !pos;
      List.iter
        (fun (j, a) ->
          rc.(!pos) <- j;
          rv.(!pos) <- a;
          incr pos;
          cr.(j).(clen.(j)) <- r;
          cv.(j).(clen.(j)) <- a;
          clen.(j) <- clen.(j) + 1)
        cs;
      b.(r) <- cstr.rhs;
      let slo, sup = slack_bounds cstr.relation in
      lo.(ns + r) <- slo;
      up.(ns + r) <- sup)
    canon;
  row_ptr.(nrows) <- !pos;
  let bpos = Array.make nc (-1) in
  let nb_up = Array.make nc false in
  for j = 0 to ns - 1 do
    nb_up.(j) <- lo.(j) = neg_infinity && up.(j) < infinity
  done;
  let basis = Array.init (max 1 nrows) (fun r -> ns + r) in
  for r = 0 to nrows - 1 do
    bpos.(ns + r) <- r
  done;
  let core =
    {
      ns;
      nrows;
      row_ptr;
      rc;
      rv;
      nnz;
      b;
      cr;
      cv;
      clen;
      lo;
      up;
      cost;
      bpos;
      nb_up;
      basis;
      xb = Array.make (max 1 nrows) 0.0;
      etas = [||];
      n_etas = 0;
      eta_nnz = 0;
      base_etas = 0;
      base_nnz = 0;
      wk = Array.make (max 1 nrows) 0.0;
      rho = Array.make (max 1 nrows) 0.0;
      yv = Array.make (max 1 nrows) 0.0;
      acc = Array.make (max 1 nc) 0.0;
      acc_touched = Array.make (max 1 nc) false;
      touched = Array.make (max 1 nc) 0;
      n_touched = 0;
      price_ptr = 0;
      degen_streak = 0;
      bland = false;
      n_pivots = 0;
      n_refactors = 0;
    }
  in
  recompute_xb core;
  core

(* The all-slack origin basis is dual feasible when every nonbasic
   reduced cost (= the raw objective coefficient) respects its resting
   bound — the whole LP (3) family qualifies. *)
let dual_feasible_start core =
  let ok = ref true in
  for j = 0 to core.ns - 1 do
    if !ok then
      let c = core.cost.(j) in
      if fixed core j then ()
      else if core.nb_up.(j) then ok := c <= price_tol
      else if core.lo.(j) > neg_infinity then ok := c >= -.price_tol
      else ok := Float.abs c <= price_tol
  done;
  !ok

let extract core prob =
  let values = Array.init core.ns (value_of core) in
  let objective =
    List.fold_left (fun a (j, c) -> a +. (c *. values.(j))) 0.0 prob.minimize
  in
  { values; objective }

(* Crash the hinted structural columns into the all-slack basis (rows
   still holding their own slack only), then recompute xb. Used by the
   cross-solve warm start. *)
let crash_hint core hint =
  let crashed = ref false in
  List.iter
    (fun j ->
      if j >= 0 && j < core.ns && core.bpos.(j) < 0 && not (fixed core j) then begin
        let w = core.wk in
        Array.fill w 0 core.nrows 0.0;
        scatter_col core j w;
        ftran core w;
        let best = ref (-1) and bestv = ref 1e-7 in
        for r = 0 to core.nrows - 1 do
          if core.basis.(r) = core.ns + r && Float.abs w.(r) > !bestv then begin
            best := r;
            bestv := Float.abs w.(r)
          end
        done;
        if !best >= 0 then begin
          let r = !best in
          let lv = core.basis.(r) in
          core.nb_up.(lv) <- core.lo.(lv) = neg_infinity;
          core.bpos.(lv) <- -1;
          core.basis.(r) <- j;
          core.bpos.(j) <- r;
          push_col_eta core r w;
          crashed := true
        end
      end)
    hint;
  if !crashed then recompute_xb core

(* Full solve of a fresh core: dual simplex when the origin basis is
   dual feasible (then a primal polish mops up drift), composite
   phase 1 + phase 2 otherwise. [`Fail] = numerical stall; the caller
   delegates to the dense kernel. *)
let solve_core core prob ~hint =
  let polish () =
    match primal_loop core ~phase1:false with
    | `Optimal -> `Done (Optimal (extract core prob))
    | `Unbounded -> `Done Unbounded
    | `Stalled | `Feasible | `Infeasible -> `Fail
  in
  let via_phase1 () =
    match primal_loop core ~phase1:true with
    | `Feasible -> polish ()
    | `Infeasible -> `Done Infeasible
    | `Stalled | `Optimal | `Unbounded -> `Fail
  in
  if dual_feasible_start core then begin
    (match hint with [] -> () | h -> crash_hint core h);
    match dual_loop core with
    | `Feasible -> polish ()
    | `Infeasible -> `Done Infeasible
    | `Stalled -> via_phase1 ()
  end
  else via_phase1 ()

(* ------------------------------------------------------------------ *)
(* Appending a row to a live core                                      *)
(* ------------------------------------------------------------------ *)

(* Append one canonicalized row with a fresh basic slack. The basis
   matrix gains one row and one unit column; its inverse is the old one
   extended by a single row eta holding the new row's coefficients on
   the old basic columns. Old basic values are untouched. Returns [true]
   when the new slack already sits within its bounds. *)
let append_row core (c : constr) =
  let cs = canon_coeffs c.coeffs in
  let r = core.nrows in
  let extra = List.length cs in
  core.rc <- grow_i core.rc (core.nnz + extra) 0;
  core.rv <- grow_f core.rv (core.nnz + extra);
  core.row_ptr <- grow_i core.row_ptr (r + 2) 0;
  core.b <- grow_f core.b (r + 1);
  (* The new slack's value under the current solution, and the row eta
     over the old basic columns. *)
  let v = ref c.rhs in
  let eta_idx = ref [] and eta_v = ref [] and eta_n = ref 0 in
  List.iter
    (fun (j, a) ->
      core.rc.(core.nnz) <- j;
      core.rv.(core.nnz) <- a;
      core.nnz <- core.nnz + 1;
      let cr = grow_i core.cr.(j) (core.clen.(j) + 1) 0 in
      let cv = grow_f core.cv.(j) (core.clen.(j) + 1) in
      cr.(core.clen.(j)) <- r;
      cv.(core.clen.(j)) <- a;
      core.cr.(j) <- cr;
      core.cv.(j) <- cv;
      core.clen.(j) <- core.clen.(j) + 1;
      v := !v -. (a *. value_of core j);
      let p = core.bpos.(j) in
      if p >= 0 then begin
        eta_idx := p :: !eta_idx;
        eta_v := a :: !eta_v;
        incr eta_n
      end)
    cs;
  core.row_ptr.(r + 1) <- core.nnz;
  core.b.(r) <- c.rhs;
  let nc = core.ns + r + 1 in
  core.lo <- grow_f core.lo nc;
  core.up <- grow_f core.up nc;
  core.cost <- grow_f core.cost nc;
  core.bpos <- grow_i core.bpos nc (-1);
  core.nb_up <- grow_b core.nb_up nc;
  let slo, sup = slack_bounds c.relation in
  let sj = core.ns + r in
  core.lo.(sj) <- slo;
  core.up.(sj) <- sup;
  core.cost.(sj) <- 0.0;
  core.nb_up.(sj) <- false;
  core.basis <- grow_i core.basis (r + 1) (-1);
  core.xb <- grow_f core.xb (r + 1);
  core.basis.(r) <- sj;
  core.bpos.(sj) <- r;
  core.xb.(r) <- !v;
  core.nrows <- r + 1;
  if !eta_n > 0 then
    push_eta core
      {
        col = false;
        r;
        pr = 1.0;
        idx = Array.of_list (List.rev !eta_idx);
        v = Array.of_list (List.rev !eta_v);
      };
  core.wk <- grow_f core.wk core.nrows;
  core.rho <- grow_f core.rho core.nrows;
  core.yv <- grow_f core.yv core.nrows;
  core.acc <- grow_f core.acc nc;
  core.acc_touched <- grow_b core.acc_touched nc;
  core.touched <- grow_i core.touched nc 0;
  !v >= slo -. feas_tol && !v <= sup +. feas_tol

(* ------------------------------------------------------------------ *)
(* Incremental state and the BACKEND surface                           *)
(* ------------------------------------------------------------------ *)

type state = {
  prob : problem;
  mutable added : constr list; (* newest first *)
  mutable core : core option;
  mutable deleg : Simplex_float.state option;
  mutable base_pivots : int; (* pivots of abandoned cores *)
  mutable base_refactors : int;
  mutable last : outcome;
}

let pivots st =
  st.base_pivots
  + (match st.core with Some c -> c.n_pivots | None -> 0)
  + (match st.deleg with Some d -> Simplex_float.pivots d | None -> 0)

let refactors st =
  st.base_refactors + match st.core with Some c -> c.n_refactors | None -> 0

(* Delegation to the dense kernel: the structural problem types are
   field-for-field identical, only nominally distinct. *)
let to_dense_relation = function
  | Leq -> Simplex_float.Leq
  | Geq -> Simplex_float.Geq
  | Eq -> Simplex_float.Eq

let to_dense_constr (c : constr) =
  {
    Simplex_float.coeffs = c.coeffs;
    relation = to_dense_relation c.relation;
    rhs = c.rhs;
    label = c.label;
  }

let to_dense_problem (p : problem) extra =
  {
    Simplex_float.n_vars = p.n_vars;
    minimize = p.minimize;
    constraints = List.map to_dense_constr (p.constraints @ extra);
    lower = p.lower;
    upper = p.upper;
    var_name = p.var_name;
  }

let of_dense_outcome = function
  | Simplex_float.Optimal s ->
      Optimal { values = s.Simplex_float.values; objective = s.Simplex_float.objective }
  | Simplex_float.Infeasible -> Infeasible
  | Simplex_float.Unbounded -> Unbounded

let delegate st =
  Obs.incr c_fallbacks;
  (match st.core with
  | Some c ->
      st.base_pivots <- st.base_pivots + c.n_pivots;
      st.base_refactors <- st.base_refactors + c.n_refactors
  | None -> ());
  st.core <- None;
  let d, out =
    Simplex_float.solve_incremental (to_dense_problem st.prob (List.rev st.added))
  in
  st.deleg <- Some d;
  st.last <- of_dense_outcome out;
  st.last

let build_state ?(hint = []) prob =
  let st =
    {
      prob;
      added = [];
      core = None;
      deleg = None;
      base_pivots = 0;
      base_refactors = 0;
      last = Infeasible;
    }
  in
  let core = alloc_core prob prob.constraints in
  (match solve_core core prob ~hint with
  | `Done out ->
      st.core <- Some core;
      st.last <- out
  | `Fail ->
      st.base_pivots <- core.n_pivots;
      st.base_refactors <- core.n_refactors;
      ignore (delegate st));
  (st, st.last)

let cold_rebuild st =
  Obs.incr c_rebuilds;
  (match st.core with
  | Some c ->
      st.base_pivots <- st.base_pivots + c.n_pivots;
      st.base_refactors <- st.base_refactors + c.n_refactors
  | None -> ());
  st.core <- None;
  let prob = st.prob in
  let core = alloc_core prob (prob.constraints @ List.rev st.added) in
  match solve_core core prob ~hint:[] with
  | `Done out ->
      st.core <- Some core;
      st.last <- out;
      out
  | `Fail ->
      st.base_pivots <- st.base_pivots + core.n_pivots;
      st.base_refactors <- st.base_refactors + core.n_refactors;
      delegate st

let solve_incremental prob =
  Obs.incr c_cold;
  build_state prob

let solve prob = snd (solve_incremental prob)

let solve_dual_incremental ?(hint = []) prob =
  Obs.incr c_cold;
  build_state ~hint prob

let basis_hint st =
  match (st.core, st.deleg) with
  | Some core, _ ->
      let out = ref [] in
      for j = core.ns - 1 downto 0 do
        if core.bpos.(j) >= 0 then out := j :: !out
      done;
      !out
  | None, Some d -> Simplex_float.basis_hint d
  | None, None -> []

let add_constraint st (c : constr) =
  let what = "Revised_sparse.add_constraint" in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= st.prob.n_vars then invalid_arg (what ^ ": variable out of range"))
    c.coeffs;
  check_constr ~what c;
  st.added <- c :: st.added;
  match st.deleg with
  | Some d ->
      st.last <- of_dense_outcome (Simplex_float.add_constraint d (to_dense_constr c));
      st.last
  | None -> (
      match (st.last, st.core) with
      | Infeasible, _ -> Infeasible
      | _, None | Unbounded, _ -> cold_rebuild st
      | Optimal _, Some core ->
          Obs.incr c_warm;
          if append_row core c then st.last
          else begin
            let polish () =
              match primal_loop core ~phase1:false with
              | `Optimal ->
                  st.last <- Optimal (extract core st.prob);
                  st.last
              | `Unbounded ->
                  st.last <- Unbounded;
                  st.last
              | `Stalled | `Feasible | `Infeasible -> cold_rebuild st
            in
            match dual_loop core with
            | `Feasible -> polish ()
            | `Infeasible ->
                st.last <- Infeasible;
                st.last
            | `Stalled -> cold_rebuild st
          end)
