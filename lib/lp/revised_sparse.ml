(* Sparse revised simplex with bounded variables.

   The dense kernel ([Simplex_float]) compiles general bounds away: every
   doubly-bounded variable becomes an explicit upper-bound row, and each
   pivot rewrites the whole O(rows * cols) tableau. On the cutting-plane
   masters of [Sne_lp] that is exactly wrong: the box bounds
   0 <= b_a <= w_a cover every variable (so the dense tableau starts with
   |E| rows before the first cut arrives), while the generated rows are
   sparse tree-path cuts touching a dozen edges each. This kernel keeps
   the bounds implicit and the matrix sparse:

   - columns are the structural variables plus one +1-coefficient slack
     per row (the relation lives in the slack's bounds: <= gives
     s in [0,inf), >= gives s in (-inf,0], = pins s at 0);
   - constraints are stored twice: CSR (rows, append-only — the dual
     ratio test sweeps the leaving row through it) and CSC (per-column
     grow arrays — FTRAN scatters and pricing dot-products walk columns);
   - the basis inverse is, by default, a Markowitz-ordered sparse LU
     factorization updated in place by Forrest–Tomlin row eliminations on
     every pivot ([lu_refactor] / [lu_update]); the PR-4 product-form eta
     file survives as a selectable legacy mode ([set_basis_kind Eta]) so
     the benches can measure one against the other;
   - pricing is Devex by default (reference-framework weights on both the
     primal and the dual side, [Lp_intf.pricing]), with the PR-4 partial
     pricing (rotating column sections) selectable; both fall back to
     Bland's rule after a degeneracy streak, mirroring the dense kernel.

   Both basis modes share the op-file machinery: an LU factorization is a
   file of column ops (the Gauss multipliers of each Markowitz pivot)
   plus an explicit permuted-triangular U, and a Forrest–Tomlin update
   appends one row op and edits U, so FTRAN/BTRAN are "apply the op file,
   then solve with U" — with U = I and one column op per pivot that
   degenerates to exactly the old eta file.

   A fresh problem starts from the all-slack basis: dual feasible for the
   whole LP (3) family (minimize a nonnegative combination of
   lower-bounded variables), in which case the dual simplex repairs
   primal feasibility directly; otherwise a composite phase 1 drives the
   infeasibility out. Numerical trouble — stalls, singular
   refactorization — falls back to a cold rebuild and, as a last resort,
   delegates the state to the dense kernel, so the answer is always
   delivered; only the pivot count changes. Tolerances are aligned with
   [Simplex_float] so the two kernels classify borderline instances the
   same way (the property tests cross-validate both against the
   exact-rational functor). *)

type num = float
type relation = Leq | Geq | Eq

type constr = {
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
  label : string;
}

type problem = {
  n_vars : int;
  minimize : (int * float) list;
  constraints : constr list;
  lower : float option array;
  upper : float option array;
  var_name : int -> string;
}

type solution = { values : float array; objective : float }
type outcome = Optimal of solution | Infeasible | Unbounded

let name = "revised-simplex-sparse"

module Obs = Repro_obs.Obs

let c_pivots = Obs.counter "lp.sparse.pivots"
let c_primal = Obs.counter "lp.sparse.primal_pivots"
let c_dual = Obs.counter "lp.sparse.dual_pivots"
let c_flips = Obs.counter "lp.sparse.bound_flips"
let c_refactors = Obs.counter "lp.sparse.refactors"

(* Historical name: under the eta basis this counted the refactorizations
   forced by FTRAN/BTRAN pivot drift. The LU basis made that path dead
   (the Forrest–Tomlin diagonal test subsumes it), so the counter now
   reports the length of the Forrest–Tomlin update file: one tick per row
   op appended by [lu_update]. *)
let c_drift = Obs.counter "lp.sparse.drift_refactors"
let c_cold = Obs.counter "lp.sparse.cold_solves"
let c_warm = Obs.counter "lp.sparse.warm_solves"
let c_rebuilds = Obs.counter "lp.sparse.rebuilds"
let c_fallbacks = Obs.counter "lp.sparse.fallbacks"
let c_patches = Obs.counter "lp.sparse.patches"

(* Basis-representation fill: nonzeros of U plus the op file, sampled
   after every (re)factorization and update. *)
let g_fill = Obs.gauge "lp.sparse.fill_nnz"

(* Amortized GC minor words per pivot across every solve/add_constraint/
   patch entry since process start (ROADMAP item 5's allocation
   discipline). Metered only while obs is enabled; never read by the
   solver, so obs on/off cannot change results. *)
let g_allocs = Obs.gauge "lp.sparse.allocs_per_pivot"

let alloc_words = Atomic.make 0.0
let alloc_pivots = Atomic.make 0

let atomic_addf a d =
  let rec go () =
    let v = Atomic.get a in
    if not (Atomic.compare_and_set a v (v +. d)) then go ()
  in
  go ()

(* Run [f] with the allocation meter on: charge the Gc minor-words delta
   and the pivot delta ([piv] is sampled before and after) to the
   process-wide amortized gauge. *)
let metered ~piv f =
  if not (Obs.enabled ()) then f ()
  else begin
    let w0 = Gc.minor_words () and p0 = piv () in
    let finish () =
      atomic_addf alloc_words (Gc.minor_words () -. w0);
      let dp = piv () - p0 in
      if dp > 0 then ignore (Atomic.fetch_and_add alloc_pivots dp);
      let p = Atomic.get alloc_pivots in
      if p > 0 then Obs.set g_allocs (Atomic.get alloc_words /. float_of_int p)
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end


(* Same up-front NaN/inf rejection as the dense kernel: a non-finite
   coefficient silently poisons float pricing comparisons. *)
let check_finite ~what ~where x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "%s: non-finite %s (%g)" what where x)

let check_constr ~what (c : constr) =
  List.iter
    (fun (_, a) ->
      check_finite ~what ~where:(Printf.sprintf "coefficient in constraint %S" c.label) a)
    c.coeffs;
  check_finite ~what ~where:(Printf.sprintf "rhs in constraint %S" c.label) c.rhs

let make_problem ~n_vars ?(var_name = fun i -> Printf.sprintf "x%d" i) ~minimize
    ~constraints ~lower ~upper () =
  let what = "Revised_sparse.make_problem" in
  if Array.length lower <> n_vars || Array.length upper <> n_vars then
    invalid_arg (what ^ ": bound arrays must have n_vars entries");
  let check_index (i, _) =
    if i < 0 || i >= n_vars then invalid_arg (what ^ ": variable out of range")
  in
  List.iter check_index minimize;
  List.iter (fun c -> List.iter check_index c.coeffs) constraints;
  List.iter (fun (i, a) ->
      check_finite ~what ~where:(Printf.sprintf "objective coefficient of %s" (var_name i)) a)
    minimize;
  List.iter (check_constr ~what) constraints;
  let check_bound which i = function
    | Some x ->
        check_finite ~what ~where:(Printf.sprintf "%s bound of %s" which (var_name i)) x
    | None -> ()
  in
  Array.iteri (check_bound "lower") lower;
  Array.iteri (check_bound "upper") upper;
  { n_vars; minimize; constraints; lower; upper; var_name }

let nonneg n = (Array.make n (Some 0.0), Array.make n None)

(* Tolerances, aligned with Simplex_float. *)
let pivot_tol = 1e-9
let price_tol = 1e-9
let feas_tol = 1e-9
let phase1_tol = 1e-7
let degen_tol = 1e-12
let bland_after = 40
let eta_drop = 1e-13 (* eta/U entries below this are rounding noise *)
let refactor_etas = 64 (* eta-file growth that triggers refactorization *)

(* LU-mode knobs. The Markowitz threshold trades sparsity against
   stability the standard way (accept a pivot within a factor [lu_mtol]
   of its column's max); a Forrest–Tomlin update whose new diagonal falls
   below [lu_dtol] is rejected and answered with a fresh factorization.
   FT row ops are both cheaper and better conditioned than product-form
   etas (one short U-row elimination instead of a near-dense FTRANed
   column), so the LU update file is allowed to grow [lu_updates] long
   between refactorizations where the eta file refactors at
   [refactor_etas] — and on large masters the cap scales as [nrows/4]:
   once the permuted-U solve dominates FTRAN anyway, a longer update
   file costs almost nothing while each avoided Markowitz
   refactorization saves work that grows with fill. *)
let lu_mtol = 0.1
let lu_dtol = 1e-10
let lu_updates = 100

(* Devex weights are re-anchored (reset to the current frame) once the
   largest weight outgrows this — Harris's classic guard against the
   reference framework drifting into noise. *)
let devex_reset = 1e7

(* ------------------------------------------------------------------ *)
(* Mode selection                                                      *)
(* ------------------------------------------------------------------ *)

type basis_kind = Lu | Eta

(* Process-wide defaults, snapshotted into each solver core when it is
   allocated (so an in-flight solve never changes representation or
   pricing mid-stream). Set them at startup — they are plain refs, not
   synchronized against concurrent solves. *)
let basis_mode = ref Lu
let set_basis_kind k = basis_mode := k
let basis_kind () = !basis_mode
let pricing_mode = ref Lp_intf.Devex
let set_pricing p = pricing_mode := p
let pricing () = !pricing_mode


(* ------------------------------------------------------------------ *)
(* The op file                                                         *)
(* ------------------------------------------------------------------ *)

module V = Repro_util.Vec
module Arena = Repro_util.Arena

(* Local unsafe accessors: the non-flambda compiler does not inline
   [fget] across the library boundary, which would box every float
   read in the hot loops. A local [@inline] wrapper reduces to the
   bigarray primitive. Same proof obligation as fget: bounds were
   checked once on loop entry. *)
let[@inline] fget (a : V.fvec) i : float = Bigarray.Array1.unsafe_get a i
let[@inline] fset (a : V.fvec) i (x : float) = Bigarray.Array1.unsafe_set a i x
let[@inline] iget (a : V.ivec) i : int = Bigarray.Array1.unsafe_get a i
let[@inline] iset (a : V.ivec) i (x : int) = Bigarray.Array1.unsafe_set a i x

(* [Float.max] is a plain stdlib function, so every hot-loop call boxes
   both arguments and the result. The sites below never see NaN and
   never need the signed-zero normalization, so a bare comparison is
   value-identical and allocation-free. *)
let[@inline] fmax (x : float) (y : float) : float = if y > x then y else x

(* Shared zero-length vectors for growable vec-array cells: [V.*.grow]
   replaces them before any write can happen. *)
let empty_iv : V.ivec = V.I.make 0 0
let empty_fv : V.fvec = V.F.make 0 0.0

(* Column op (from a pivot on row [r] with FTRANed column [w]):
     FTRAN   t = w_r / pr; w_r <- t; w_i <- w_i - v_i * t
     BTRAN   w_r <- (w_r - sum_i v_i * w_i) / pr
   Row op (from an appended row [r] or a Forrest-Tomlin elimination;
   pr = 1):
     FTRAN   w_r <- w_r - sum_i v_i * w_i
     BTRAN   w_i <- w_i - v_i * w_r
   Ops are stored flat: op [k] keeps its kind in [op_col] ('\001' =
   column), its pivot row in [op_r], its pivot value in [op_pr], and its
   off-pivot entries in [e_idx]/[e_val] at positions
   [op_start.(k) .. op_start.(k+1) - 1]. Appending an op is
   allocation-free once the buffers are warm, where the PR-7 layout
   consed two fresh arrays and a record per pivot (ROADMAP item 5's
   allocation discipline; see DESIGN.md §13). *)

type core = {
  mode : basis_kind; (* basis representation, fixed at allocation *)
  price : Lp_intf.pricing; (* pricing rule, fixed at allocation *)
  ns : int; (* structural columns; slack of row r is column ns + r *)
  (* CSR, rows append-only; Bigarray-backed so the sweeps never touch
     the GC *)
  mutable nrows : int;
  mutable row_ptr : int array; (* nrows + 1 entries in use *)
  mutable rc : V.ivec;
  mutable rv : V.fvec;
  mutable nnz : int;
  mutable b : V.fvec; (* rhs per row *)
  (* CSC of the structural columns (slack columns are implicit units) *)
  cr : V.ivec array;
  cv : V.fvec array;
  clen : int array;
  (* per-column data, structural then slacks; length ns + nrows in use *)
  mutable lo : V.fvec; (* neg_infinity = unbounded below *)
  mutable up : V.fvec;
  mutable cost : V.fvec;
  mutable bpos : int array; (* row of a basic column, -1 if nonbasic *)
  mutable nb_up : bool array; (* nonbasic column rests at its upper bound *)
  (* basis *)
  mutable basis : int array; (* per row *)
  mutable xb : V.fvec; (* values of the basic columns, per row *)
  (* flat op file (see above). Eta mode: one column op per pivot, one
     row op per appended cut. LU mode: the factorization's Gauss column
     ops followed by one Forrest-Tomlin row op per pivot/appended cut. *)
  mutable op_col : Bytes.t; (* '\001' = column op *)
  mutable op_r : int array;
  mutable op_pr : V.fvec;
  mutable op_start : int array; (* n_etas + 1 entries in use *)
  mutable e_idx : V.ivec;
  mutable e_val : V.fvec;
  mutable e_n : int; (* entry cursor; pending op = [op_start.(n_etas), e_n) *)
  mutable n_etas : int;
  mutable eta_nnz : int;
  (* op-file size right after the last refactorization: the refactor
     trigger bounds the UPDATE file (ops added since), not the
     factorization itself, or dense bases would refactor every pivot *)
  mutable base_etas : int;
  mutable base_nnz : int;
  (* Explicit U of the LU basis (LU mode only; identity in eta mode).
     U is triangular under a pair of permutations: position [p] pairs
     problem row [row_of_pos.(p)] with slot [slot_of_pos.(p)], where slot
     [s] carries basic column [basis.(s)]. [udiag] is indexed by slot;
     [ur_*] hold each row's entries strictly right of its diagonal as
     (slot, value); [uc_*] hold each slot's entries strictly above its
     diagonal as (row, value) — the same nonzeros stored both ways. *)
  mutable udiag : V.fvec;
  mutable ur_idx : V.ivec array;
  mutable ur_val : V.fvec array;
  mutable ur_len : int array;
  mutable uc_idx : V.ivec array;
  mutable uc_val : V.fvec array;
  mutable uc_len : int array;
  mutable u_nnz : int; (* off-diagonal U nonzeros *)
  mutable row_of_pos : int array;
  mutable pos_of_row : int array;
  mutable slot_of_pos : int array;
  mutable pos_of_slot : int array;
  mutable n_updates : int; (* Forrest–Tomlin updates since allocation *)
  (* LU scratch: [spike] keeps every FTRAN's op-file intermediate (the
     Forrest–Tomlin spike of the entering column), [fx] the U-solve
     result, [rsp]/[rin]/[hp] the row-spike accumulator, membership
     flags, and elimination heap of [eliminate_row_spike]. *)
  mutable spike : V.fvec;
  mutable fx : V.fvec;
  mutable rsp : V.fvec;
  mutable rin : bool array;
  mutable hp : int array;
  mutable hp_n : int;
  (* Markowitz refactorization spines (row entries and candidate row
     lists), persistent across refactorizations of this core; the
     per-refactorization lengths/counts live in arena scratch. *)
  mutable rf_idx : V.ivec array;
  mutable rf_val : V.fvec array;
  mutable rf_rows : V.ivec array;
  (* Devex reference-framework weights: [dwc] per column (primal),
     [dwr] per row (dual Forrest–Goldfarb). *)
  mutable dwc : V.fvec;
  mutable dwr : V.fvec;
  (* scratch (capacity >= nrows / >= ncols; zeroed by their users) *)
  mutable wk : V.fvec;
  mutable rho : V.fvec;
  mutable yv : V.fvec;
  mutable acc : V.fvec;
  mutable acc_touched : bool array;
  mutable touched : int array;
  mutable n_touched : int;
  (* One-cell magnitude mailbox: [set_rcost]/[candidate] leave their
     float result here instead of returning it — without flambda a
     float returned across a non-inlined call boxes on every pricing
     probe. *)
  cmag : V.fvec;
  (* pricing / anti-cycling *)
  mutable price_ptr : int;
  mutable degen_streak : int;
  mutable bland : bool;
  (* stats *)
  mutable n_pivots : int;
  mutable n_refactors : int;
}

let ncols core = core.ns + core.nrows

(* Growable-array helpers for the native bookkeeping arrays (amortized
   doubling); the float payloads use [V.F.grow]/[V.I.grow]. *)
let grow_i a n fill =
  let len = Array.length a in
  if len >= n then a
  else begin
    let a' = Array.make (max n (max 8 (2 * len))) fill in
    Array.blit a 0 a' 0 len;
    a'
  end

let grow_b a n =
  let len = Array.length a in
  if len >= n then a
  else begin
    let a' = Array.make (max n (max 8 (2 * len))) false in
    Array.blit a 0 a' 0 len;
    a'
  end

let grow_any a n fill =
  let len = Array.length a in
  if len >= n then a
  else begin
    let a' = Array.make (max n (max 8 (2 * len))) fill in
    Array.blit a 0 a' 0 len;
    a'
  end

(* ------------------------------------------------------------------ *)
(* Appending ops to the flat file                                      *)
(* ------------------------------------------------------------------ *)

(* Out-of-line entry-buffer growth keeps [op_emit] small enough to
   inline. *)
let op_grow_entries core n =
  core.e_idx <- V.I.grow core.e_idx n 0;
  core.e_val <- V.F.grow core.e_val n 0.0

(* Stage one off-pivot entry of the pending op. *)
let[@inline] op_emit core i v =
  let n = core.e_n in
  if V.I.length core.e_idx <= n then op_grow_entries core (n + 1);
  iset core.e_idx n i;
  fset core.e_val n v;
  core.e_n <- n + 1

let op_reserve core =
  let k = core.n_etas in
  core.op_r <- grow_i core.op_r (k + 1) 0;
  core.op_start <- grow_i core.op_start (k + 2) 0;
  core.op_pr <- V.F.grow core.op_pr (k + 1) 1.0;
  if Bytes.length core.op_col <= k then begin
    let nb = Bytes.length core.op_col in
    let b = Bytes.make (max (k + 1) (max 16 (2 * nb))) '\000' in
    Bytes.blit core.op_col 0 b 0 nb;
    core.op_col <- b
  end

(* Seal the pending entries as one op. [rev] flips the stored entry
   order: the PR-7 layout consed entries onto a list and [Array.of_list]
   reversed them, and the row-op FTRAN / column-op BTRAN dot products
   sum in entry order, so preserving the historical order keeps results
   bit-identical. *)
let op_commit core ~col ~r ~pr ~rev =
  op_reserve core;
  let k = core.n_etas in
  let s = core.op_start.(k) and e = core.e_n in
  if rev then begin
    let idx = core.e_idx and vl = core.e_val in
    let i = ref s and j = ref (e - 1) in
    while !i < !j do
      let ti = iget idx !i in
      iset idx !i (iget idx !j);
      iset idx !j ti;
      let tv = fget vl !i in
      fset vl !i (fget vl !j);
      fset vl !j tv;
      incr i;
      decr j
    done
  end;
  Bytes.unsafe_set core.op_col k (if col then '\001' else '\000');
  core.op_r.(k) <- r;
  fset core.op_pr k pr;
  core.op_start.(k + 1) <- e;
  core.n_etas <- k + 1;
  core.eta_nnz <- core.eta_nnz + (e - s) + 1

(* Reset the whole file (refactorization start). *)
let ops_clear core =
  core.n_etas <- 0;
  core.eta_nnz <- 0;
  core.e_n <- 0;
  core.op_start.(0) <- 0

(* ------------------------------------------------------------------ *)
(* FTRAN / BTRAN over the op file                                      *)
(* ------------------------------------------------------------------ *)

(* Solve U x = w (w indexed by problem row) by back substitution in
   position order, scattering each slot's above-diagonal column. The
   result is indexed by slot — and slots are row indices (slot [s]
   carries [basis.(s)]), so it is blitted straight back into [w]. *)
let u_fsolve core (w : V.fvec) =
  let fx = core.fx in
  for p = core.nrows - 1 downto 0 do
    let r = core.row_of_pos.(p) in
    let s = core.slot_of_pos.(p) in
    let t = w.{r} /. core.udiag.{s} in
    fx.{s} <- t;
    if t <> 0.0 then begin
      let ci = core.uc_idx.(s) and cv = core.uc_val.(s) in
      for k = 0 to core.uc_len.(s) - 1 do
        let i = iget ci k in
        fset w i (fget w i -. (fget cv k *. t))
      done
    end
  done;
  V.F.blit fx 0 w 0 core.nrows

(* Solve U^T y = w (w indexed by slot) by forward substitution in
   position order, scattering each row's right-of-diagonal entries; the
   result is indexed by problem row. *)
let u_bsolve core (w : V.fvec) =
  let fx = core.fx in
  for p = 0 to core.nrows - 1 do
    let r = core.row_of_pos.(p) in
    let s = core.slot_of_pos.(p) in
    let t = w.{s} /. core.udiag.{s} in
    fx.{r} <- t;
    if t <> 0.0 then begin
      let ri = core.ur_idx.(r) and rv = core.ur_val.(r) in
      for k = 0 to core.ur_len.(r) - 1 do
        let i = iget ri k in
        fset w i (fget w i -. (fget rv k *. t))
      done
    end
  done;
  V.F.blit fx 0 w 0 core.nrows

(* B^-1 w. In LU mode the op-file intermediate (the Forrest–Tomlin spike
   of the column being transformed) is saved in [core.spike]: a pivot on
   the column FTRANed last uses it for the basis update. *)
let ftran core (w : V.fvec) =
  let idx = core.e_idx and vl = core.e_val and pr = core.op_pr in
  let st = core.op_start and rr = core.op_r and oc = core.op_col in
  for k = 0 to core.n_etas - 1 do
    let s = Array.unsafe_get st k and e = Array.unsafe_get st (k + 1) in
    let r = Array.unsafe_get rr k in
    if Bytes.unsafe_get oc k = '\001' then begin
      let t = fget w r /. fget pr k in
      fset w r t;
      if t <> 0.0 then
        for q = s to e - 1 do
          let i = iget idx q in
          fset w i (fget w i -. (fget vl q *. t))
        done
    end
    else begin
      let acc = ref 0.0 in
      for q = s to e - 1 do
        acc := !acc +. (fget vl q *. fget w (iget idx q))
      done;
      fset w r (fget w r -. !acc)
    end
  done;
  if core.mode = Lu then begin
    V.F.blit w 0 core.spike 0 core.nrows;
    u_fsolve core w
  end

let btran core (w : V.fvec) =
  if core.mode = Lu then u_bsolve core w;
  let idx = core.e_idx and vl = core.e_val and pr = core.op_pr in
  let st = core.op_start and rr = core.op_r and oc = core.op_col in
  for k = core.n_etas - 1 downto 0 do
    let s = Array.unsafe_get st k and e = Array.unsafe_get st (k + 1) in
    let r = Array.unsafe_get rr k in
    if Bytes.unsafe_get oc k = '\001' then begin
      let acc = ref 0.0 in
      for q = s to e - 1 do
        acc := !acc +. (fget vl q *. fget w (iget idx q))
      done;
      fset w r ((fget w r -. !acc) /. fget pr k)
    end
    else begin
      let t = fget w r in
      if t <> 0.0 then
        for q = s to e - 1 do
          let i = iget idx q in
          fset w i (fget w i -. (fget vl q *. t))
        done
    end
  done

(* Column op from the FTRANed entering column [w], pivot row [r]. *)
let push_col_eta core r (w : V.fvec) =
  for i = 0 to core.nrows - 1 do
    if i <> r then begin
      let v = w.{i} in
      if Float.abs v > eta_drop then op_emit core i v
    end
  done;
  op_commit core ~col:true ~r ~pr:w.{r} ~rev:false

(* ------------------------------------------------------------------ *)
(* U maintenance (LU mode)                                             *)
(* ------------------------------------------------------------------ *)

(* [u_nnz] counts each off-diagonal nonzero once: the row-wise side
   ([ur_push]/[ur_remove]) maintains it, the column-wise mirror does
   not. *)
let[@inline] ur_push core r s v =
  let n = core.ur_len.(r) in
  if V.I.length core.ur_idx.(r) <= n then begin
    core.ur_idx.(r) <- V.I.grow core.ur_idx.(r) (n + 1) 0;
    core.ur_val.(r) <- V.F.grow core.ur_val.(r) (n + 1) 0.0
  end;
  iset core.ur_idx.(r) n s;
  fset core.ur_val.(r) n v;
  core.ur_len.(r) <- n + 1;
  core.u_nnz <- core.u_nnz + 1

let[@inline] uc_push core s r v =
  let n = core.uc_len.(s) in
  if V.I.length core.uc_idx.(s) <= n then begin
    core.uc_idx.(s) <- V.I.grow core.uc_idx.(s) (n + 1) 0;
    core.uc_val.(s) <- V.F.grow core.uc_val.(s) (n + 1) 0.0
  end;
  iset core.uc_idx.(s) n r;
  fset core.uc_val.(s) n v;
  core.uc_len.(s) <- n + 1

let ur_remove core r s =
  let n = core.ur_len.(r) in
  let idx = core.ur_idx.(r) in
  let k = ref (-1) in
  for i = 0 to n - 1 do
    if idx.{i} = s then k := i
  done;
  if !k >= 0 then begin
    let last = n - 1 in
    idx.{!k} <- idx.{last};
    fset core.ur_val.(r) !k (fget core.ur_val.(r) last);
    core.ur_len.(r) <- last;
    core.u_nnz <- core.u_nnz - 1
  end

let uc_remove core s r =
  let n = core.uc_len.(s) in
  let idx = core.uc_idx.(s) in
  let k = ref (-1) in
  for i = 0 to n - 1 do
    if idx.{i} = r then k := i
  done;
  if !k >= 0 then begin
    let last = n - 1 in
    idx.{!k} <- idx.{last};
    fset core.uc_val.(s) !k (fget core.uc_val.(s) last);
    core.uc_len.(s) <- last
  end

(* Min-heap of slots keyed by their current position: the row-spike
   elimination below must consume entries in position order, so that
   fill-ins (which always land at strictly later positions) are still
   ahead of the cursor when they appear. *)
let heap_push core s =
  core.hp <- grow_i core.hp (core.hp_n + 1) 0;
  let hp = core.hp and pos = core.pos_of_slot in
  let i = ref core.hp_n in
  core.hp_n <- core.hp_n + 1;
  hp.(!i) <- s;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if pos.(hp.(p)) > pos.(hp.(!i)) then begin
      let t = hp.(p) in
      hp.(p) <- hp.(!i);
      hp.(!i) <- t;
      i := p
    end
    else continue := false
  done

let heap_pop core =
  let hp = core.hp and pos = core.pos_of_slot in
  let top = hp.(0) in
  core.hp_n <- core.hp_n - 1;
  hp.(0) <- hp.(core.hp_n);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < core.hp_n && pos.(hp.(l)) < pos.(hp.(!m)) then m := l;
    if r < core.hp_n && pos.(hp.(r)) < pos.(hp.(!m)) then m := r;
    if !m = !i then continue := false
    else begin
      let t = hp.(!m) in
      hp.(!m) <- hp.(!i);
      hp.(!i) <- t;
      i := !m
    end
  done;
  top

(* Eliminate the exposed row spike of row [it] (now at the last
   position) against the diagonal rows of its entries, in position
   order. [rsp]/[rin] hold the spike by slot and the matching slots sit
   in the heap; both are left clean. Appends the eliminations as one row
   op (they compose exactly: the pivot rows used are never themselves
   modified) and returns the new diagonal [sdiag - sum m_k * sp r_k],
   where [sp] is the spike column being installed at the last position
   ([use_sp] false reads it as all-zero — the appended-row case, whose
   diagonal stays exactly [sdiag]). *)
let eliminate_row_spike core it sdiag (sp : V.fvec) use_sp =
  let d = ref sdiag in
  let e0 = core.op_start.(core.n_etas) in
  while core.hp_n > 0 do
    let q = heap_pop core in
    if core.rin.(q) then begin
      core.rin.(q) <- false;
      let v = core.rsp.{q} in
      core.rsp.{q} <- 0.0;
      if Float.abs v > eta_drop then begin
        let rq = core.row_of_pos.(core.pos_of_slot.(q)) in
        let m = v /. core.udiag.{q} in
        op_emit core rq m;
        if use_sp then d := !d -. (m *. sp.{rq});
        let ri = core.ur_idx.(rq) and rv = core.ur_val.(rq) in
        for k = 0 to core.ur_len.(rq) - 1 do
          let q' = iget ri k in
          core.rsp.{q'} <- core.rsp.{q'} -. (m *. fget rv k);
          if not core.rin.(q') then begin
            core.rin.(q') <- true;
            heap_push core q'
          end
        done
      end
    end
  done;
  if core.e_n > e0 then begin
    op_commit core ~col:false ~r:it ~pr:1.0 ~rev:true;
    Obs.incr c_drift
  end;
  !d

(* Forrest–Tomlin update: the basic column at row/slot [rr] is being
   replaced by the column whose op-file transform (spike) the last FTRAN
   saved in [core.spike]. Deletes U's old column [rr] and its diagonal
   row, shifts both permutations cyclically so [rr] lands at the last
   position, eliminates the exposed row spike (one appended row op), and
   installs the saved spike as U's new last column. Returns [false] when
   the new diagonal collapses below [lu_dtol] — U is then stale and the
   caller must refactorize. *)
let lu_update core rr =
  let n = core.nrows in
  let sp = core.spike in
  let p_out = core.pos_of_slot.(rr) in
  let it = core.row_of_pos.(p_out) in
  (* Delete U's column [rr] (its entries live above the diagonal). *)
  for k = 0 to core.uc_len.(rr) - 1 do
    ur_remove core (iget core.uc_idx.(rr) k) rr
  done;
  core.uc_len.(rr) <- 0;
  (* Gather row [it] as the row spike and delete it from U. *)
  let rlen = core.ur_len.(it) in
  for k = 0 to rlen - 1 do
    let s = iget core.ur_idx.(it) k in
    core.rsp.{s} <- fget core.ur_val.(it) k;
    core.rin.(s) <- true;
    uc_remove core s it
  done;
  core.u_nnz <- core.u_nnz - rlen;
  core.ur_len.(it) <- 0;
  (* Cyclic shift: positions after [p_out] slide down; [it]/[rr] last. *)
  for p = p_out to n - 2 do
    let r' = core.row_of_pos.(p + 1) in
    core.row_of_pos.(p) <- r';
    core.pos_of_row.(r') <- p;
    let s' = core.slot_of_pos.(p + 1) in
    core.slot_of_pos.(p) <- s';
    core.pos_of_slot.(s') <- p
  done;
  core.row_of_pos.(n - 1) <- it;
  core.pos_of_row.(it) <- n - 1;
  core.slot_of_pos.(n - 1) <- rr;
  core.pos_of_slot.(rr) <- n - 1;
  (* Heap-load the spike slots (positions are now final) and eliminate. *)
  core.hp_n <- 0;
  for s = 0 to n - 1 do
    if core.rin.(s) then heap_push core s
  done;
  let d = eliminate_row_spike core it sp.{it} sp true in
  if Float.abs d <= lu_dtol then false
  else begin
    core.udiag.{rr} <- d;
    for r' = 0 to n - 1 do
      if r' <> it then begin
        let v = sp.{r'} in
        if Float.abs v > eta_drop then begin
          ur_push core r' rr v;
          uc_push core rr r' v
        end
      end
    done;
    core.n_updates <- core.n_updates + 1;
    Obs.set g_fill (float_of_int (core.u_nnz + core.nrows + core.eta_nnz));
    true
  end

(* ------------------------------------------------------------------ *)
(* Columns, values, reduced costs                                      *)
(* ------------------------------------------------------------------ *)

(* Scatter column [j] of [A | I] into [w] (caller pre-zeroes). *)
let scatter_col core j (w : V.fvec) =
  if j < core.ns then begin
    let cr = core.cr.(j) and cv = core.cv.(j) in
    for k = 0 to core.clen.(j) - 1 do
      fset w (iget cr k) (fget cv k)
    done
  end
  else w.{j - core.ns} <- 1.0

(* Reduced cost of column [j] under the (possibly phase-1) duals [y],
   left in [core.cmag]: (if phase1 then 0 else cost_j) - y . A_j. *)
let set_rcost core ~phase1 (y : V.fvec) j =
  let c0 = if phase1 then 0.0 else core.cost.{j} in
  if j < core.ns then begin
    let cr = core.cr.(j) and cv = core.cv.(j) in
    let s = ref 0.0 in
    for k = 0 to core.clen.(j) - 1 do
      s := !s +. (fget cv k *. fget y (iget cr k))
    done;
    core.cmag.{0} <- c0 -. !s
  end
  else core.cmag.{0} <- c0 -. y.{j - core.ns}

(* Value of a nonbasic column: its resting bound (0 for free columns). *)
let[@inline] nb_val core j =
  if core.nb_up.(j) then core.up.{j}
  else if core.lo.{j} > neg_infinity then core.lo.{j}
  else 0.0

let[@inline] value_of core j =
  let p = core.bpos.(j) in
  if p >= 0 then core.xb.{p} else nb_val core j

let[@inline] fixed core j = core.lo.{j} = core.up.{j}

(* xb = B^-1 (b - A_N x_N), from scratch (initial build, refactorization,
   crash starts). *)
let recompute_xb core =
  let v = core.wk in
  for r = 0 to core.nrows - 1 do
    v.{r} <- core.b.{r};
    if core.bpos.(core.ns + r) < 0 then v.{r} <- v.{r} -. nb_val core (core.ns + r)
  done;
  for r = 0 to core.nrows - 1 do
    for k = core.row_ptr.(r) to core.row_ptr.(r + 1) - 1 do
      let j = iget core.rc k in
      if core.bpos.(j) < 0 then begin
        let x = nb_val core j in
        if x <> 0.0 then v.{r} <- v.{r} -. (fget core.rv k *. x)
      end
    done
  done;
  ftran core v;
  V.F.blit v 0 core.xb 0 core.nrows

(* ------------------------------------------------------------------ *)
(* Refactorization: rebuild the basis representation from scratch       *)
(* ------------------------------------------------------------------ *)

(* Eta mode: re-enter the basic columns into an identity basis one at a
   time, sparsest first, claiming for each the unclaimed row with the
   largest FTRANed magnitude (partial pivoting restricted to free rows).
   Rows whose basic column is their own slack are trivial and claim
   themselves. Returns [false] when no acceptable pivot remains — the
   caller rebuilds cold. Also recomputes [xb], so refactorization doubles
   as drift repair. *)
let eta_refactor core =
  ops_clear core;
  let claimed = Array.make core.nrows false in
  let pending = ref [] in
  for r = 0 to core.nrows - 1 do
    if core.basis.(r) = core.ns + r then claimed.(r) <- true
    else pending := core.basis.(r) :: !pending
  done;
  let col_nnz j = if j < core.ns then core.clen.(j) else 1 in
  let pending =
    List.sort (fun a b -> compare (col_nnz a, a) (col_nnz b, b)) !pending
  in
  let w = core.wk in
  let ok = ref true in
  List.iter
    (fun c ->
      if !ok then begin
        V.F.fill_range w 0 core.nrows 0.0;
        scatter_col core c w;
        ftran core w;
        let best = ref (-1) and bestv = ref 0.0 in
        for r = 0 to core.nrows - 1 do
          if (not claimed.(r)) && Float.abs w.{r} > !bestv then begin
            best := r;
            bestv := Float.abs w.{r}
          end
        done;
        if !best < 0 || !bestv <= 1e-10 then ok := false
        else begin
          let r = !best in
          push_col_eta core r w;
          claimed.(r) <- true;
          core.basis.(r) <- c;
          core.bpos.(c) <- r
        end
      end)
    pending;
  core.base_etas <- core.n_etas;
  core.base_nnz <- core.eta_nnz;
  if !ok then recompute_xb core;
  !ok

(* Markowitz working-submatrix scratch, shared per domain through the
   arena (DESIGN.md §13): column counts, candidate-row cursors, row
   lengths, and the packed active flags ([0,n) rows, [n,2n) columns).
   The row/column spines themselves persist on the core ([rf_*]): their
   warmed capacities are problem-shaped, and reusing them across the
   refactorizations of one master is the point. *)
let a_ccount = Arena.ints ()
let a_coln = Arena.ints ()
let a_rlen = Arena.ints ()
let a_act = Arena.bytes ()

(* LU mode: Markowitz-ordered sparse LU of the current basis matrix
   (column [basis.(s)] at slot [s]), rebuilding the op file (the Gauss
   column ops of each pivot) and the explicit U from scratch. Pivots
   minimize the fill score (rcount-1)(ccount-1) over the candidate rows
   of the few cheapest active columns, restricted to entries within
   [lu_mtol] of their column's magnitude max. The working submatrix
   keeps exact column counts and lazily validated candidate row lists;
   active rows only ever hold entries in active columns. Returns
   [false] on a numerically singular basis — the caller rebuilds cold.
   Recomputes [xb] on success, so refactorization doubles as drift
   repair. Unlike [eta_refactor] it never reassigns basic columns to
   different rows: the row permutation lives inside U. *)
let lu_refactor core =
  let n = core.nrows in
  ops_clear core;
  let nn = max 1 n in
  let rlen = Arena.get a_rlen nn in
  let ccount = Arena.get a_ccount nn in
  let col_n = Arena.get a_coln nn in
  let act = Arena.get a_act (2 * nn) in
  V.I.fill_range rlen 0 n 0;
  V.I.fill_range ccount 0 n 0;
  V.I.fill_range col_n 0 n 0;
  Bytes.fill act 0 (2 * n) '\001';
  (* Load the basis columns into the row spines and candidate lists. *)
  for s = 0 to n - 1 do
    let c = core.basis.(s) in
    if c < core.ns then begin
      let cr = core.cr.(c) and cv = core.cv.(c) in
      for k = 0 to core.clen.(c) - 1 do
        let r = iget cr k in
        let kw = rlen.{r} in
        if V.I.length core.rf_idx.(r) <= kw then begin
          core.rf_idx.(r) <- V.I.grow core.rf_idx.(r) (kw + 1) 0;
          core.rf_val.(r) <- V.F.grow core.rf_val.(r) (kw + 1) 0.0
        end;
        iset core.rf_idx.(r) kw s;
        fset core.rf_val.(r) kw (fget cv k);
        rlen.{r} <- kw + 1;
        ccount.{s} <- ccount.{s} + 1;
        let q = col_n.{s} in
        if V.I.length core.rf_rows.(s) <= q then
          core.rf_rows.(s) <- V.I.grow core.rf_rows.(s) (q + 1) 0;
        iset core.rf_rows.(s) q r;
        col_n.{s} <- q + 1
      done
    end
    else begin
      let r = c - core.ns in
      let kw = rlen.{r} in
      if V.I.length core.rf_idx.(r) <= kw then begin
        core.rf_idx.(r) <- V.I.grow core.rf_idx.(r) (kw + 1) 0;
        core.rf_val.(r) <- V.F.grow core.rf_val.(r) (kw + 1) 0.0
      end;
      iset core.rf_idx.(r) kw s;
      fset core.rf_val.(r) kw 1.0;
      rlen.{r} <- kw + 1;
      ccount.{s} <- 1;
      let q = col_n.{s} in
      if V.I.length core.rf_rows.(s) <= q then
        core.rf_rows.(s) <- V.I.grow core.rf_rows.(s) (q + 1) 0;
      iset core.rf_rows.(s) q r;
      col_n.{s} <- q + 1
    end
  done;
  let rsp = core.rsp and rin = core.rin in
  let cand = Array.make 4 (-1) in
  let ok = ref true in
  let step = ref 0 in
  while !ok && !step < n do
    (* The few cheapest active columns by exact count. *)
    cand.(0) <- -1;
    cand.(1) <- -1;
    cand.(2) <- -1;
    cand.(3) <- -1;
    let n_cand = ref 0 in
    for s = 0 to n - 1 do
      if Bytes.unsafe_get act (n + s) = '\001' then
        if !n_cand < 4 then begin
          cand.(!n_cand) <- s;
          incr n_cand;
          (* keep the worst candidate last *)
          for i = !n_cand - 1 downto 1 do
            if ccount.{cand.(i)} < ccount.{cand.(i - 1)} then begin
              let t = cand.(i) in
              cand.(i) <- cand.(i - 1);
              cand.(i - 1) <- t
            end
          done
        end
        else if ccount.{s} < ccount.{cand.(3)} then begin
          cand.(3) <- s;
          for i = 3 downto 1 do
            if ccount.{cand.(i)} < ccount.{cand.(i - 1)} then begin
              let t = cand.(i) in
              cand.(i) <- cand.(i - 1);
              cand.(i - 1) <- t
            end
          done
        end
    done;
    let best_r = ref (-1) and best_s = ref (-1) and best_score = ref max_int in
    let best_mag = ref 0.0 in
    for ci = 0 to !n_cand - 1 do
      let s = cand.(ci) in
      (* Validate and compact the candidate rows, find the column max. *)
      let rows = core.rf_rows.(s) in
      let w = ref 0 and colmax = ref 0.0 in
      for k = 0 to col_n.{s} - 1 do
        let r = iget rows k in
        if Bytes.unsafe_get act r = '\001' then begin
          (* entry_of r s, inlined *)
          let v = ref 0.0 in
          let ri = core.rf_idx.(r) and rv = core.rf_val.(r) in
          for i = 0 to rlen.{r} - 1 do
            if iget ri i = s then v := fget rv i
          done;
          if !v <> 0.0 then begin
            (* drop duplicates from re-fills *)
            let dup = ref false in
            for i = 0 to !w - 1 do
              if iget rows i = r then dup := true
            done;
            if not !dup then begin
              iset rows !w r;
              incr w;
              if Float.abs !v > !colmax then colmax := Float.abs !v
            end
          end
        end
      done;
      col_n.{s} <- !w;
      if !colmax > lu_dtol then
        for k = 0 to !w - 1 do
          let r = iget rows k in
          let v = ref 0.0 in
          let ri = core.rf_idx.(r) and rv = core.rf_val.(r) in
          for i = 0 to rlen.{r} - 1 do
            if iget ri i = s then v := fget rv i
          done;
          let v = Float.abs !v in
          if v >= lu_mtol *. !colmax then begin
            let score = (rlen.{r} - 1) * (!w - 1) in
            if score < !best_score || (score = !best_score && v > !best_mag)
            then begin
              best_score := score;
              best_mag := v;
              best_r := r;
              best_s := s
            end
          end
        done
    done;
    if !best_r < 0 then ok := false
    else begin
      let r = !best_r and s = !best_s in
      (* piv = entry_of r s, inlined *)
      let piv =
        let v = ref 0.0 in
        let ri = core.rf_idx.(r) and rv = core.rf_val.(r) in
        for i = 0 to rlen.{r} - 1 do
          if iget ri i = s then v := fget rv i
        done;
        !v
      in
      (* Eliminate column [s] from the other rows holding it; the
         multipliers become one column op, committed below with the
         historical (reversed) entry order. *)
      let e0 = core.op_start.(core.n_etas) in
      for k = 0 to col_n.{s} - 1 do
        let r' = iget core.rf_rows.(s) k in
        if r' <> r && Bytes.unsafe_get act r' = '\001' then begin
          (* load row r' *)
          let len' = rlen.{r'} in
          let ri' = core.rf_idx.(r') and rv' = core.rf_val.(r') in
          for i = 0 to len' - 1 do
            let s' = iget ri' i in
            rsp.{s'} <- fget rv' i;
            rin.(s') <- true
          done;
          let m = rsp.{s} /. piv in
          rin.(s) <- false;
          rsp.{s} <- 0.0;
          op_emit core r' m;
          (* subtract m * (pivot row minus the pivot slot); fresh fill
             slots park in [hp] (free during refactorization) *)
          let n_fills = ref 0 in
          let rpi = core.rf_idx.(r) and rpv = core.rf_val.(r) in
          for i = 0 to rlen.{r} - 1 do
            let s' = iget rpi i in
            if s' <> s then
              if rin.(s') then rsp.{s'} <- rsp.{s'} -. (m *. fget rpv i)
              else begin
                rin.(s') <- true;
                rsp.{s'} <- -.(m *. fget rpv i);
                core.hp.(!n_fills) <- s';
                incr n_fills
              end
          done;
          (* rebuild row r' in place: old entries first (the write
             cursor never passes the read cursor), then fills in the
             historical (reversed) order *)
          let wlen = ref 0 in
          for i = 0 to len' - 1 do
            let s' = iget ri' i in
            if rin.(s') then begin
              rin.(s') <- false;
              let v = rsp.{s'} in
              rsp.{s'} <- 0.0;
              if Float.abs v > eta_drop then begin
                iset core.rf_idx.(r') !wlen s';
                fset core.rf_val.(r') !wlen v;
                incr wlen
              end
              else ccount.{s'} <- ccount.{s'} - 1 (* cancelled *)
            end
          done;
          for f = !n_fills - 1 downto 0 do
            let s' = core.hp.(f) in
            if rin.(s') then begin
              rin.(s') <- false;
              let v = rsp.{s'} in
              rsp.{s'} <- 0.0;
              if Float.abs v > eta_drop then begin
                let kw = !wlen in
                if V.I.length core.rf_idx.(r') <= kw then begin
                  core.rf_idx.(r') <- V.I.grow core.rf_idx.(r') (kw + 1) 0;
                  core.rf_val.(r') <- V.F.grow core.rf_val.(r') (kw + 1) 0.0
                end;
                iset core.rf_idx.(r') kw s';
                fset core.rf_val.(r') kw v;
                wlen := kw + 1;
                ccount.{s'} <- ccount.{s'} + 1;
                let q = col_n.{s'} in
                if V.I.length core.rf_rows.(s') <= q then
                  core.rf_rows.(s') <- V.I.grow core.rf_rows.(s') (q + 1) 0;
                iset core.rf_rows.(s') q r';
                col_n.{s'} <- q + 1
              end
            end
          done;
          rlen.{r'} <- !wlen
        end
      done;
      (* the eliminated entries leave column s *)
      ccount.{s} <- 1;
      if core.e_n > e0 then op_commit core ~col:true ~r ~pr:1.0 ~rev:true;
      (* retire the pivot row and column *)
      Bytes.unsafe_set act r '\000';
      Bytes.unsafe_set act (n + s) '\000';
      core.row_of_pos.(!step) <- r;
      core.pos_of_row.(r) <- !step;
      core.slot_of_pos.(!step) <- s;
      core.pos_of_slot.(s) <- !step;
      core.udiag.{s} <- piv;
      let ri = core.rf_idx.(r) in
      for i = 0 to rlen.{r} - 1 do
        let s' = iget ri i in
        if s' <> s then ccount.{s'} <- ccount.{s'} - 1
      done;
      incr step
    end
  done;
  if !ok then begin
    (* Install U from the retired rows: everything but each row's own
       diagonal sits strictly right of it in position order. The row
       side writes straight into the spines' mirror; the column side
       first counts per slot (reusing [ccount]) so each column grows at
       most once, then fills with [col_n] as cursors. *)
    Array.fill core.ur_len 0 n 0;
    Array.fill core.uc_len 0 n 0;
    core.u_nnz <- 0;
    V.I.fill_range ccount 0 n 0;
    for r = 0 to n - 1 do
      let sd = core.slot_of_pos.(core.pos_of_row.(r)) in
      let cnt = rlen.{r} in
      if V.I.length core.ur_idx.(r) < cnt then begin
        core.ur_idx.(r) <- V.I.grow core.ur_idx.(r) cnt 0;
        core.ur_val.(r) <- V.F.grow core.ur_val.(r) cnt 0.0
      end;
      let ri = core.rf_idx.(r) and rv = core.rf_val.(r) in
      let w = ref 0 in
      for k = 0 to cnt - 1 do
        let s' = iget ri k in
        if s' <> sd then begin
          iset core.ur_idx.(r) !w s';
          fset core.ur_val.(r) !w (fget rv k);
          incr w;
          ccount.{s'} <- ccount.{s'} + 1
        end
      done;
      core.ur_len.(r) <- !w;
      core.u_nnz <- core.u_nnz + !w
    done;
    for s = 0 to n - 1 do
      let c = ccount.{s} in
      if V.I.length core.uc_idx.(s) < c then begin
        core.uc_idx.(s) <- V.I.grow core.uc_idx.(s) c 0;
        core.uc_val.(s) <- V.F.grow core.uc_val.(s) c 0.0
      end
    done;
    V.I.fill_range col_n 0 n 0;
    for r = 0 to n - 1 do
      let ri = core.ur_idx.(r) and rv = core.ur_val.(r) in
      for k = 0 to core.ur_len.(r) - 1 do
        let s' = iget ri k in
        let q = col_n.{s'} in
        iset core.uc_idx.(s') q r;
        fset core.uc_val.(s') q (fget rv k);
        col_n.{s'} <- q + 1;
        core.uc_len.(s') <- q + 1
      done
    done;
    core.base_etas <- core.n_etas;
    core.base_nnz <- core.eta_nnz;
    Obs.set g_fill (float_of_int (core.u_nnz + n + core.eta_nnz));
    recompute_xb core;
    true
  end
  else false

let refactor core =
  Obs.incr c_refactors;
  core.n_refactors <- core.n_refactors + 1;
  match core.mode with Lu -> lu_refactor core | Eta -> eta_refactor core

let maybe_refactor core =
  let cap =
    match core.mode with
    | Lu -> max lu_updates (core.nrows / 4)
    | Eta -> refactor_etas
  in
  if
    core.n_etas - core.base_etas >= cap
    || core.eta_nnz - core.base_nnz > 24 * (core.nrows + 8)
  then refactor core
  else true

(* Record a basis change (entering column FTRANed into [w], now basic at
   row [r]) in the representation, then apply the refactorization
   policy. Returns [false] when the representation could not be
   repaired; the caller stalls into the cold-rebuild chain. *)
let basis_pivot core r w =
  match core.mode with
  | Eta ->
      push_col_eta core r w;
      maybe_refactor core
  | Lu -> if lu_update core r then maybe_refactor core else refactor core

(* ------------------------------------------------------------------ *)
(* Feasibility bookkeeping                                             *)
(* ------------------------------------------------------------------ *)

(* Most-violated row: (row, amount, below) with amount <= feas_tol when
   primal feasible. *)
let max_violation core =
  let row = ref (-1) and amt = ref feas_tol and below = ref false in
  for r = 0 to core.nrows - 1 do
    let c = core.basis.(r) in
    let v = core.xb.{r} in
    let d_lo = core.lo.{c} -. v and d_up = v -. core.up.{c} in
    if d_lo > !amt then begin
      row := r;
      amt := d_lo;
      below := true
    end
    else if d_up > !amt then begin
      row := r;
      amt := d_up;
      below := false
    end
  done;
  (!row, !amt, !below)

(* alpha_j = rho . A_j for every column touched by the rows where rho is
   nonzero: a CSR sweep plus the implicit slack units. Results land in
   [acc]; [touched] lists the columns to reset afterwards. Shared by the
   dual ratio test and the primal Devex weight propagation (both need a
   full tableau row). The accumulate step is written out twice (slack,
   then row entries) instead of through a local closure: a closure
   taking the float increment would box it on every call. *)
let dual_sweep core (rho : V.fvec) =
  core.n_touched <- 0;
  let acc = core.acc and tch = core.acc_touched and tl = core.touched in
  let rc = core.rc and rv = core.rv and rp = core.row_ptr in
  for r = 0 to core.nrows - 1 do
    let x = rho.{r} in
    if Float.abs x > 1e-13 then begin
      let j = core.ns + r in
      if Array.unsafe_get tch j then fset acc j (fget acc j +. x)
      else begin
        Array.unsafe_set tch j true;
        fset acc j x;
        Array.unsafe_set tl core.n_touched j;
        core.n_touched <- core.n_touched + 1
      end;
      for k = rp.(r) to rp.(r + 1) - 1 do
        let j = iget rc k in
        let v = x *. fget rv k in
        if Array.unsafe_get tch j then fset acc j (fget acc j +. v)
        else begin
          Array.unsafe_set tch j true;
          fset acc j v;
          Array.unsafe_set tl core.n_touched j;
          core.n_touched <- core.n_touched + 1
        end
      done
    end
  done

let clear_sweep core =
  for k = 0 to core.n_touched - 1 do
    let j = core.touched.(k) in
    core.acc.{j} <- 0.0;
    core.acc_touched.(j) <- false
  done;
  core.n_touched <- 0

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)
(* ------------------------------------------------------------------ *)

(* Entering-column candidate: the direction (+1 = off its lower bound,
   -1 = off its upper; free columns move either way) or 0 for none, with
   |d| left in [core.cmag]. The PR-7 shape returned [Some (dir, mag)] —
   an option, a tuple and a boxed float on every improving probe of the
   pricing scan. *)
let candidate core ~phase1 (y : V.fvec) j =
  if core.bpos.(j) >= 0 || fixed core j then 0
  else begin
    set_rcost core ~phase1 y j;
    let d = core.cmag.{0} in
    if core.nb_up.(j) then
      if d > price_tol then -1 else 0
    else if core.lo.{j} > neg_infinity then
      if d < -.price_tol then begin
        core.cmag.{0} <- -.d;
        1
      end
      else 0
    else if d < -.price_tol then begin
      core.cmag.{0} <- -.d;
      1
    end
    else if d > price_tol then -1
    else 0
  end

(* Entering-column choice. Devex: full scan maximizing d^2 / gamma_j
   over the reference-framework weights (an approximate projected
   steepest edge). Partial: rotate through column sections starting at
   [price_ptr], stop at the end of the first section containing a
   candidate (largest |d| within it). Bland mode scans everything and
   takes the least index. *)
let pick_entering core ~phase1 y =
  let n = ncols core in
  if core.bland then begin
    let best = ref (-1) and bdir = ref 0 in
    (try
       for j = 0 to n - 1 do
         let dir = candidate core ~phase1 y j in
         if dir <> 0 then begin
           best := j;
           bdir := dir;
           raise Exit
         end
       done
     with Exit -> ());
    if !best < 0 then None else Some (!best, !bdir)
  end
  else if core.price = Lp_intf.Devex then begin
    let best = ref (-1) and bdir = ref 0 and bests = ref 0.0 in
    for j = 0 to n - 1 do
      let dir = candidate core ~phase1 y j in
      if dir <> 0 then begin
        let mag = core.cmag.{0} in
        let s = mag *. mag /. core.dwc.{j} in
        if s > !bests then begin
          best := j;
          bdir := dir;
          bests := s
        end
      end
    done;
    if !best < 0 then None else Some (!best, !bdir)
  end
  else begin
    let section = max 64 (n / 8) in
    let best = ref (-1) and bdir = ref 0 and bestv = ref 0.0 in
    let off = ref 0 in
    (try
       while !off < n do
         let j = (core.price_ptr + !off) mod n in
         let dir = candidate core ~phase1 y j in
         if dir <> 0 then begin
           let mag = core.cmag.{0} in
           if mag > !bestv then begin
             best := j;
             bdir := dir;
             bestv := mag
           end
         end;
         incr off;
         if !off mod section = 0 && !best >= 0 then raise Exit
       done
     with Exit -> ());
    if !best < 0 then None
    else begin
      core.price_ptr <- (!best + 1) mod n;
      Some (!best, !bdir)
    end
  end

(* ------------------------------------------------------------------ *)
(* Primal simplex (phase 2, and composite phase 1)                      *)
(* ------------------------------------------------------------------ *)

(* Devex weight propagation after a primal pivot (entering [j], leaving
   row [r], FTRANed entering column [w], alpha = w.(r)): for every
   nonbasic column of the pivot row, gamma_j' <- max(gamma_j',
   (alpha_j'/alpha)^2 gamma_j), and the leaving column restarts at
   max(1, gamma_j/alpha^2). Computing the pivot row costs one BTRAN plus
   a CSR sweep — the Devex surcharge per pivot. Must run before the
   basis arrays mutate. Weights above [devex_reset] re-anchor the whole
   reference framework. *)
let devex_primal_update core j r (w : V.fvec) =
  let aq = w.{r} in
  if Float.abs aq > pivot_tol then begin
    let gq = core.dwc.{j} in
    let rho = core.rho in
    V.F.fill_range rho 0 core.nrows 0.0;
    rho.{r} <- 1.0;
    btran core rho;
    dual_sweep core rho;
    let mx = ref 1.0 in
    for k = 0 to core.n_touched - 1 do
      let j' = core.touched.(k) in
      if j' <> j && core.bpos.(j') < 0 then begin
        let a = core.acc.{j'} /. aq in
        let cand = a *. a *. gq in
        if cand > core.dwc.{j'} then core.dwc.{j'} <- cand;
        if core.dwc.{j'} > !mx then mx := core.dwc.{j'}
      end
    done;
    clear_sweep core;
    let lv = core.basis.(r) in
    core.dwc.{lv} <- fmax 1.0 (gq /. (aq *. aq));
    if fmax !mx core.dwc.{lv} > devex_reset then V.F.fill core.dwc 1.0
  end

(* Dual Devex (Forrest–Goldfarb) weight propagation after a dual pivot
   on row [r] with FTRANed entering column [w]: beta_i <- max(beta_i,
   (w_i/w_r)^2 beta_r) and beta_r <- max(1, beta_r/w_r^2) — essentially
   free, since [w] is already in hand. *)
let devex_dual_update core r (w : V.fvec) =
  let ar = w.{r} in
  if Float.abs ar > pivot_tol then begin
    let br = core.dwr.{r} in
    let t = fmax 1.0 (br /. (ar *. ar)) in
    let mx = ref t in
    for i = 0 to core.nrows - 1 do
      if i <> r then begin
        let wi = w.{i} in
        if wi <> 0.0 then begin
          let cand = wi /. ar *. (wi /. ar) *. br in
          if cand > core.dwr.{i} then core.dwr.{i} <- cand
        end;
        if core.dwr.{i} > !mx then mx := core.dwr.{i}
      end
    done;
    core.dwr.{r} <- t;
    if !mx > devex_reset then V.F.fill core.dwr 1.0
  end

let track_degeneracy core t =
  if t <= degen_tol then begin
    core.degen_streak <- core.degen_streak + 1;
    if core.degen_streak > bland_after then core.bland <- true
  end
  else begin
    core.degen_streak <- 0;
    core.bland <- false
  end

(* One primal step on entering column [j] moving in [dir]. In phase 1,
   infeasible basics block at their violated bound (they become feasible
   there and leave); feasible basics block as usual. The ratio test is
   written flat (no [try_limit] closure: its float arguments would box
   per blocking row, and the captured float refs would be heap cells). *)
let primal_step core ~phase1 j dir =
  let w = core.wk in
  V.F.fill_range w 0 core.nrows 0.0;
  scatter_col core j w;
  ftran core w;
  let limit = ref infinity and leave_r = ref (-1) and leave_up = ref false in
  let leave_mag = ref 0.0 in
  let rng = core.up.{j} -. core.lo.{j} in
  if rng < infinity then limit := rng;
  let fdir = float_of_int dir in
  for r = 0 to core.nrows - 1 do
    let wr = w.{r} in
    if Float.abs wr > pivot_tol then begin
      let delta = -.fdir *. wr in
      let c = core.basis.(r) in
      let bv = core.xb.{r} in
      let lo_b = core.lo.{c} and up_b = core.up.{c} in
      (* blocking ratio of this row, nan = no blocking bound here *)
      let t = ref nan and up_side = ref false in
      if phase1 && bv < lo_b -. feas_tol then begin
        if delta > 0.0 then t := (lo_b -. bv) /. delta
      end
      else if phase1 && bv > up_b +. feas_tol then begin
        if delta < 0.0 then begin
          t := (bv -. up_b) /. -.delta;
          up_side := true
        end
      end
      else if delta < 0.0 then begin
        if lo_b > neg_infinity then t := (bv -. lo_b) /. -.delta
      end
      else if up_b < infinity then begin
        t := (up_b -. bv) /. delta;
        up_side := true
      end;
      if !t = !t then begin
        let t = fmax 0.0 !t in
        let mag = Float.abs wr in
        if t < !limit -. 1e-12 || (t < !limit +. 1e-12 && mag > !leave_mag)
        then begin
          limit := t;
          leave_r := r;
          leave_up := !up_side;
          leave_mag := mag
        end
      end
    end
  done;
  if !limit = infinity then `Unbounded
  else begin
    let t = fmax 0.0 !limit in
    let step = fdir *. t in
    if step <> 0.0 then
      for r = 0 to core.nrows - 1 do
        core.xb.{r} <- core.xb.{r} -. (step *. w.{r})
      done;
    if !leave_r < 0 then begin
      (* Bound flip: the entering column crosses its own range. *)
      core.nb_up.(j) <- not core.nb_up.(j);
      Obs.incr c_flips;
      track_degeneracy core t;
      `Step
    end
    else begin
      let r = !leave_r in
      let vq = nb_val core j +. step in
      if core.price = Lp_intf.Devex then devex_primal_update core j r w;
      let lv = core.basis.(r) in
      core.nb_up.(lv) <- !leave_up;
      core.bpos.(lv) <- -1;
      core.basis.(r) <- j;
      core.bpos.(j) <- r;
      core.xb.{r} <- vq;
      core.n_pivots <- core.n_pivots + 1;
      Obs.incr c_pivots;
      Obs.incr c_primal;
      track_degeneracy core t;
      if basis_pivot core r w then `Step else `Stalled
    end
  end

(* Phase-1 duals: the composite cost is +-1 on the violated basics. *)
let phase1_duals core (y : V.fvec) =
  V.F.fill_range y 0 core.nrows 0.0;
  for r = 0 to core.nrows - 1 do
    let c = core.basis.(r) in
    let v = core.xb.{r} in
    if v < core.lo.{c} -. feas_tol then y.{r} <- -1.0
    else if v > core.up.{c} +. feas_tol then y.{r} <- 1.0
  done;
  btran core y

let phase2_duals core (y : V.fvec) =
  V.F.fill_range y 0 core.nrows 0.0;
  for r = 0 to core.nrows - 1 do
    y.{r} <- core.cost.{core.basis.(r)}
  done;
  btran core y

let primal_loop core ~phase1 =
  let max_iter = 500 + (20 * (core.nrows + ncols core)) in
  let iter = ref 0 in
  let rec go () =
    if phase1 && (let _, amt, _ = max_violation core in amt <= feas_tol) then
      `Feasible
    else if !iter > max_iter then `Stalled
    else begin
      incr iter;
      let y = core.yv in
      if phase1 then phase1_duals core y else phase2_duals core y;
      match pick_entering core ~phase1 y with
      | None ->
          if not phase1 then `Optimal
          else begin
            let _, amt, _ = max_violation core in
            if amt > phase1_tol then `Infeasible else `Feasible
          end
      | Some (j, dir) -> (
          match primal_step core ~phase1 j dir with
          | `Step -> go ()
          | `Stalled -> `Stalled
          | `Unbounded -> if phase1 then `Stalled else `Unbounded)
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)
(* ------------------------------------------------------------------ *)

(* Dual simplex: drive the most-violated basic to its bound, entering
   the column with the best (smallest) dual ratio. The no-candidate
   verdict is a sound infeasibility certificate independent of dual
   feasibility: the leaving row's equation already maximizes (minimizes)
   the basic value over the nonbasic boxes. *)
(* Leaving-row choice for the dual simplex: the most violated row under
   partial pricing, the largest violation^2 / weight under dual Devex
   (Forrest–Goldfarb). *)
let pick_leaving core =
  match core.price with
  | Lp_intf.Partial -> max_violation core
  | Lp_intf.Devex ->
      let row = ref (-1) and amt = ref feas_tol and below = ref false in
      let bests = ref 0.0 in
      for r = 0 to core.nrows - 1 do
        let c = core.basis.(r) in
        let v = core.xb.{r} in
        let d_lo = core.lo.{c} -. v and d_up = v -. core.up.{c} in
        let a = fmax d_lo d_up in
        if a > feas_tol then begin
          let s = a *. a /. core.dwr.{r} in
          if !row < 0 || s > !bests then begin
            bests := s;
            row := r;
            amt := a;
            below := d_lo >= d_up
          end
        end
      done;
      (!row, !amt, !below)

let dual_loop core =
  let max_iter = 500 + (20 * (core.nrows + ncols core)) in
  let iter = ref 0 in
  let rec go retried =
    let r, _amt, below = pick_leaving core in
    if r < 0 then `Feasible
    else if !iter > max_iter then `Stalled
    else begin
      incr iter;
      let rho = core.rho in
      V.F.fill_range rho 0 core.nrows 0.0;
      rho.{r} <- 1.0;
      btran core rho;
      let y = core.yv in
      phase2_duals core y;
      dual_sweep core rho;
      (* Dual ratio test over the touched nonbasic columns. *)
      let q = ref (-1) and q_ratio = ref infinity and q_mag = ref 0.0 in
      for k = 0 to core.n_touched - 1 do
        let j = core.touched.(k) in
        if core.bpos.(j) < 0 && not (fixed core j) then begin
          let a = core.acc.{j} in
          if Float.abs a > pivot_tol then begin
            let at_up = core.nb_up.(j) in
            let free = (not at_up) && core.lo.{j} = neg_infinity in
            let ok =
              if free then true
              else if below then if at_up then a > 0.0 else a < 0.0
              else if at_up then a < 0.0
              else a > 0.0
            in
            if ok then begin
              set_rcost core ~phase1:false y j;
              let d = core.cmag.{0} in
              let num =
                if free then Float.abs d
                else if at_up then fmax 0.0 (-.d)
                else fmax 0.0 d
              in
              let ratio = num /. Float.abs a in
              if
                ratio < !q_ratio -. 1e-12
                || (ratio < !q_ratio +. 1e-12 && Float.abs a > !q_mag)
              then begin
                q := j;
                q_ratio := ratio;
                q_mag := Float.abs a
              end
            end
          end
        end
      done;
      let alpha_q = if !q >= 0 then core.acc.{!q} else 0.0 in
      clear_sweep core;
      if !q < 0 then `Infeasible
      else begin
        let j = !q in
        let target =
          if below then core.lo.{core.basis.(r)} else core.up.{core.basis.(r)}
        in
        let dq = (core.xb.{r} -. target) /. alpha_q in
        let rng = core.up.{j} -. core.lo.{j} in
        if rng < infinity && Float.abs dq > rng +. feas_tol then begin
          (* The entering column hits its own far bound first: flip it,
             shift the basics, and retry the (still violated) row. *)
          let step = if core.nb_up.(j) then -.rng else rng in
          let w = core.wk in
          V.F.fill_range w 0 core.nrows 0.0;
          scatter_col core j w;
          ftran core w;
          for i = 0 to core.nrows - 1 do
            core.xb.{i} <- core.xb.{i} -. (step *. w.{i})
          done;
          core.nb_up.(j) <- not core.nb_up.(j);
          Obs.incr c_flips;
          go false
        end
        else begin
          let w = core.wk in
          V.F.fill_range w 0 core.nrows 0.0;
          scatter_col core j w;
          ftran core w;
          if
            Float.abs (w.{r} -. alpha_q) > 1e-6 *. fmax 1.0 (Float.abs alpha_q)
            || Float.abs w.{r} <= pivot_tol
          then
            (* FTRAN and BTRAN disagree on the pivot element: the
               representation has drifted. Refactorize once and retry
               the row. *)
            if retried then `Stalled
            else if refactor core then go true
            else `Stalled
          else begin
            let vq = nb_val core j +. dq in
            for i = 0 to core.nrows - 1 do
              core.xb.{i} <- core.xb.{i} -. (dq *. w.{i})
            done;
            if core.price = Lp_intf.Devex then devex_dual_update core r w;
            let lv = core.basis.(r) in
            core.nb_up.(lv) <- not below;
            core.bpos.(lv) <- -1;
            core.basis.(r) <- j;
            core.bpos.(j) <- r;
            core.xb.{r} <- vq;
            core.n_pivots <- core.n_pivots + 1;
            Obs.incr c_pivots;
            Obs.incr c_dual;
            track_degeneracy core (Float.abs dq);
            if basis_pivot core r w then go false else `Stalled
          end
        end
      end
    end
  in
  go false

(* ------------------------------------------------------------------ *)
(* Building a core                                                     *)
(* ------------------------------------------------------------------ *)

(* Canonical sparse row: duplicate indices merged, exact zeros dropped,
   sorted by column for deterministic sweeps. *)
let canon_coeffs coeffs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) coeffs in
  let rec merge = function
    | (i, a) :: (j, b) :: tl when i = j -> merge ((i, a +. b) :: tl)
    | (i, a) :: tl -> if a = 0.0 then merge tl else (i, a) :: merge tl
    | [] -> []
  in
  merge sorted

(* Arena-backed canonicalization for the hot append/patch paths: same
   result as [canon_coeffs] (duplicates merged with commutative [+.],
   exact zeros dropped, sorted by column) without the List.sort cons
   traffic. Returns the entry count and the two scratch buffers, valid
   until the next [Arena.get] on these slots. *)
let a_csi = Arena.ints ()
let a_csv = Arena.floats ()

let canon_scratch coeffs =
  let k = List.length coeffs in
  let idx = Arena.get a_csi k and vl = Arena.get a_csv k in
  let n = ref 0 in
  List.iter
    (fun (j, a) ->
      iset idx !n j;
      fset vl !n a;
      incr n)
    coeffs;
  (* In-place insertion sort by column (cut rows arrive nearly sorted).
     Stable, though duplicate-column merge order is immaterial: IEEE
     [+.] is commutative. *)
  for i = 1 to k - 1 do
    let ji = iget idx i and ai = fget vl i in
    let p = ref (i - 1) in
    while !p >= 0 && iget idx !p > ji do
      iset idx (!p + 1) (iget idx !p);
      fset vl (!p + 1) (fget vl !p);
      decr p
    done;
    iset idx (!p + 1) ji;
    fset vl (!p + 1) ai
  done;
  (* Merge duplicate columns left-to-right and drop exact zeros, in
     place — the same run fold as [canon_coeffs]. *)
  let w = ref 0 and i = ref 0 in
  while !i < k do
    let j = iget idx !i in
    let s = ref (fget vl !i) in
    incr i;
    while !i < k && iget idx !i = j do
      s := !s +. fget vl !i;
      incr i
    done;
    if !s <> 0.0 then begin
      iset idx !w j;
      fset vl !w !s;
      incr w
    end
  done;
  (!w, idx, vl)

let slack_bounds = function
  | Leq -> (0.0, infinity)
  | Geq -> (neg_infinity, 0.0)
  | Eq -> (0.0, 0.0)

let alloc_core prob rows =
  let ns = prob.n_vars in
  let nrows = List.length rows in
  let nc = ns + nrows in
  let lo = V.F.make nc neg_infinity and up = V.F.make nc infinity in
  for j = 0 to ns - 1 do
    (match prob.lower.(j) with Some l -> lo.{j} <- l | None -> ());
    (match prob.upper.(j) with Some u -> up.{j} <- u | None -> ());
    if up.{j} < lo.{j} then
      invalid_arg "Simplex: empty variable range (upper < lower)"
  done;
  let cost = V.F.make nc 0.0 in
  List.iter (fun (j, c) -> cost.{j} <- cost.{j} +. c) prob.minimize;
  let canon = List.map (fun c -> (canon_coeffs c.coeffs, c)) rows in
  let nnz = List.fold_left (fun a (cs, _) -> a + List.length cs) 0 canon in
  let row_ptr = Array.make (nrows + 1) 0 in
  let rc = V.I.make (max 1 nnz) 0 and rv = V.F.make (max 1 nnz) 0.0 in
  let b = V.F.make (max 1 nrows) 0.0 in
  let clen = Array.make ns 0 in
  List.iter (fun (cs, _) -> List.iter (fun (j, _) -> clen.(j) <- clen.(j) + 1) cs) canon;
  let cr = Array.init ns (fun j -> V.I.make (max 1 clen.(j)) 0) in
  let cv = Array.init ns (fun j -> V.F.make (max 1 clen.(j)) 0.0) in
  Array.fill clen 0 ns 0;
  let pos = ref 0 in
  List.iteri
    (fun r (cs, (cstr : constr)) ->
      row_ptr.(r) <- !pos;
      List.iter
        (fun (j, a) ->
          rc.{!pos} <- j;
          rv.{!pos} <- a;
          incr pos;
          cr.(j).{clen.(j)} <- r;
          cv.(j).{clen.(j)} <- a;
          clen.(j) <- clen.(j) + 1)
        cs;
      b.{r} <- cstr.rhs;
      let slo, sup = slack_bounds cstr.relation in
      lo.{ns + r} <- slo;
      up.{ns + r} <- sup)
    canon;
  row_ptr.(nrows) <- !pos;
  let bpos = Array.make nc (-1) in
  let nb_up = Array.make nc false in
  for j = 0 to ns - 1 do
    nb_up.(j) <- lo.{j} = neg_infinity && up.{j} < infinity
  done;
  let basis = Array.init (max 1 nrows) (fun r -> ns + r) in
  for r = 0 to nrows - 1 do
    bpos.(ns + r) <- r
  done;
  let core =
    {
      mode = !basis_mode;
      price = !pricing_mode;
      ns;
      nrows;
      row_ptr;
      rc;
      rv;
      nnz;
      b;
      cr;
      cv;
      clen;
      lo;
      up;
      cost;
      bpos;
      nb_up;
      basis;
      xb = V.F.make (max 1 nrows) 0.0;
      op_col = Bytes.make 16 '\000';
      op_r = Array.make 16 0;
      op_pr = V.F.make 16 1.0;
      op_start = Array.make 17 0;
      e_idx = V.I.make 64 0;
      e_val = V.F.make 64 0.0;
      e_n = 0;
      n_etas = 0;
      eta_nnz = 0;
      base_etas = 0;
      base_nnz = 0;
      (* the all-slack origin basis is exactly the identity: U = I *)
      udiag = V.F.make (max 1 nrows) 1.0;
      ur_idx = Array.make (max 1 nrows) empty_iv;
      ur_val = Array.make (max 1 nrows) empty_fv;
      ur_len = Array.make (max 1 nrows) 0;
      uc_idx = Array.make (max 1 nrows) empty_iv;
      uc_val = Array.make (max 1 nrows) empty_fv;
      uc_len = Array.make (max 1 nrows) 0;
      u_nnz = 0;
      row_of_pos = Array.init (max 1 nrows) (fun i -> i);
      pos_of_row = Array.init (max 1 nrows) (fun i -> i);
      slot_of_pos = Array.init (max 1 nrows) (fun i -> i);
      pos_of_slot = Array.init (max 1 nrows) (fun i -> i);
      n_updates = 0;
      spike = V.F.make (max 1 nrows) 0.0;
      fx = V.F.make (max 1 nrows) 0.0;
      rsp = V.F.make (max 1 nrows) 0.0;
      rin = Array.make (max 1 nrows) false;
      hp = Array.make (max 1 nrows) 0;
      hp_n = 0;
      rf_idx = Array.make (max 1 nrows) empty_iv;
      rf_val = Array.make (max 1 nrows) empty_fv;
      rf_rows = Array.make (max 1 nrows) empty_iv;
      dwc = V.F.make (max 1 nc) 1.0;
      dwr = V.F.make (max 1 nrows) 1.0;
      wk = V.F.make (max 1 nrows) 0.0;
      rho = V.F.make (max 1 nrows) 0.0;
      yv = V.F.make (max 1 nrows) 0.0;
      acc = V.F.make (max 1 nc) 0.0;
      acc_touched = Array.make (max 1 nc) false;
      touched = Array.make (max 1 nc) 0;
      n_touched = 0;
      cmag = V.F.make 1 0.0;
      price_ptr = 0;
      degen_streak = 0;
      bland = false;
      n_pivots = 0;
      n_refactors = 0;
    }
  in
  recompute_xb core;
  core

(* The all-slack origin basis is dual feasible when every nonbasic
   reduced cost (= the raw objective coefficient) respects its resting
   bound — the whole LP (3) family qualifies. *)
let dual_feasible_start core =
  let ok = ref true in
  for j = 0 to core.ns - 1 do
    if !ok then begin
      let c = core.cost.{j} in
      if fixed core j then ()
      else if core.nb_up.(j) then ok := c <= price_tol
      else if core.lo.{j} > neg_infinity then ok := c >= -.price_tol
      else ok := Float.abs c <= price_tol
    end
  done;
  !ok

(* The result array is the only allocation here: the per-element value
   computation stays unboxed (explicit loop, [@inline] value_of), and the
   objective accumulates through the [cmag] mailbox so the fold closure
   never boxes its float accumulator. Summation order matches the old
   List.fold_left (head to tail). *)
let extract core prob =
  let values = Array.make core.ns 0.0 in
  for j = 0 to core.ns - 1 do
    Array.unsafe_set values j (value_of core j)
  done;
  core.cmag.{0} <- 0.0;
  List.iter
    (fun (j, c) -> core.cmag.{0} <- core.cmag.{0} +. (c *. Array.unsafe_get values j))
    prob.minimize;
  { values; objective = core.cmag.{0} }

(* Crash the hinted structural columns into the all-slack basis (rows
   still holding their own slack only), then recompute xb. Used by the
   cross-solve warm start. *)
let crash_hint core hint =
  let crashed = ref false in
  List.iter
    (fun j ->
      if j >= 0 && j < core.ns && core.bpos.(j) < 0 && not (fixed core j) then begin
        let w = core.wk in
        V.F.fill_range w 0 core.nrows 0.0;
        scatter_col core j w;
        ftran core w;
        let best = ref (-1) and bestv = ref 1e-7 in
        for r = 0 to core.nrows - 1 do
          if core.basis.(r) = core.ns + r && Float.abs w.{r} > !bestv then begin
            best := r;
            bestv := Float.abs w.{r}
          end
        done;
        if !best >= 0 then begin
          let r = !best in
          let lv = core.basis.(r) in
          core.nb_up.(lv) <- core.lo.{lv} = neg_infinity;
          core.bpos.(lv) <- -1;
          core.basis.(r) <- j;
          core.bpos.(j) <- r;
          (match core.mode with
          | Eta ->
              push_col_eta core r w;
              crashed := true
          | Lu ->
              if lu_update core r then crashed := true
              else begin
                (* a failed update leaves U stale: revert the crash
                   pivot and refactorize the previous (valid) basis *)
                core.basis.(r) <- lv;
                core.bpos.(lv) <- r;
                core.bpos.(j) <- -1;
                ignore (refactor core)
              end)
        end
      end)
    hint;
  if !crashed then recompute_xb core

(* Full solve of a fresh core: dual simplex when the origin basis is
   dual feasible (then a primal polish mops up drift), composite
   phase 1 + phase 2 otherwise. [`Fail] = numerical stall; the caller
   delegates to the dense kernel. *)
let solve_core core prob ~hint =
  let polish () =
    match primal_loop core ~phase1:false with
    | `Optimal -> `Done (Optimal (extract core prob))
    | `Unbounded -> `Done Unbounded
    | `Stalled | `Feasible | `Infeasible -> `Fail
  in
  let via_phase1 () =
    match primal_loop core ~phase1:true with
    | `Feasible -> polish ()
    | `Infeasible -> `Done Infeasible
    | `Stalled | `Optimal | `Unbounded -> `Fail
  in
  if dual_feasible_start core then begin
    (match hint with [] -> () | h -> crash_hint core h);
    match dual_loop core with
    | `Feasible -> polish ()
    | `Infeasible -> `Done Infeasible
    | `Stalled -> via_phase1 ()
  end
  else via_phase1 ()

(* ------------------------------------------------------------------ *)
(* Appending a row to a live core                                      *)
(* ------------------------------------------------------------------ *)

(* Append one canonicalized row with a fresh basic slack. The basis
   matrix gains one row and one unit column; its inverse is the old one
   extended by a single row op holding the new row's coefficients on
   the old basic columns. Old basic values are untouched. Returns [true]
   when the new slack already sits within its bounds. *)
let append_row core (c : constr) =
  let ncs, csi, csv = canon_scratch c.coeffs in
  let r = core.nrows in
  core.rc <- V.I.grow core.rc (core.nnz + ncs) 0;
  core.rv <- V.F.grow core.rv (core.nnz + ncs) 0.0;
  core.row_ptr <- grow_i core.row_ptr (r + 2) 0;
  core.b <- V.F.grow core.b (r + 1) 0.0;
  (* The new slack's value under the current solution; the row op over
     the old basic columns is staged directly ([op_emit], Eta mode) or
     loaded into the row-spike accumulator (LU mode). *)
  (match core.mode with Lu -> core.hp_n <- 0 | Eta -> ());
  let v = ref c.rhs in
  for k = 0 to ncs - 1 do
    let j = iget csi k and a = fget csv k in
    core.rc.{core.nnz} <- j;
    core.rv.{core.nnz} <- a;
    core.nnz <- core.nnz + 1;
    let cri = V.I.grow core.cr.(j) (core.clen.(j) + 1) 0 in
    let cvi = V.F.grow core.cv.(j) (core.clen.(j) + 1) 0.0 in
    cri.{core.clen.(j)} <- r;
    cvi.{core.clen.(j)} <- a;
    core.cr.(j) <- cri;
    core.cv.(j) <- cvi;
    core.clen.(j) <- core.clen.(j) + 1;
    v := !v -. (a *. value_of core j);
    let p = core.bpos.(j) in
    if p >= 0 then
      match core.mode with
      | Eta -> op_emit core p a
      | Lu ->
          core.rsp.{p} <- a;
          core.rin.(p) <- true;
          heap_push core p
  done;
  core.row_ptr.(r + 1) <- core.nnz;
  core.b.{r} <- c.rhs;
  let nc = core.ns + r + 1 in
  core.lo <- V.F.grow core.lo nc 0.0;
  core.up <- V.F.grow core.up nc 0.0;
  core.cost <- V.F.grow core.cost nc 0.0;
  core.bpos <- grow_i core.bpos nc (-1);
  core.nb_up <- grow_b core.nb_up nc;
  let slo, sup = slack_bounds c.relation in
  let sj = core.ns + r in
  core.lo.{sj} <- slo;
  core.up.{sj} <- sup;
  core.cost.{sj} <- 0.0;
  core.nb_up.(sj) <- false;
  core.basis <- grow_i core.basis (r + 1) (-1);
  core.xb <- V.F.grow core.xb (r + 1) 0.0;
  core.basis.(r) <- sj;
  core.bpos.(sj) <- r;
  core.xb.{r} <- !v;
  core.nrows <- r + 1;
  core.wk <- V.F.grow core.wk core.nrows 0.0;
  core.rho <- V.F.grow core.rho core.nrows 0.0;
  core.yv <- V.F.grow core.yv core.nrows 0.0;
  core.acc <- V.F.grow core.acc nc 0.0;
  core.acc_touched <- grow_b core.acc_touched nc;
  core.touched <- grow_i core.touched nc 0;
  core.spike <- V.F.grow core.spike core.nrows 0.0;
  core.fx <- V.F.grow core.fx core.nrows 0.0;
  core.rsp <- V.F.grow core.rsp core.nrows 0.0;
  core.rin <- grow_b core.rin core.nrows;
  core.hp <- grow_i core.hp core.nrows 0;
  core.dwc <- V.F.grow core.dwc nc 0.0;
  core.dwc.{sj} <- 1.0;
  core.dwr <- V.F.grow core.dwr core.nrows 0.0;
  core.dwr.{r} <- 1.0;
  (match core.mode with
  | Eta ->
      if core.e_n > core.op_start.(core.n_etas) then
        op_commit core ~col:false ~r ~pr:1.0 ~rev:false
  | Lu ->
      (* The appended unit slack column is untouched by the op file, so
         U gains a unit last column and one new row — the constraint's
         coefficients on the old basic columns, by slot (slot = basic
         row = the positions loaded into [rsp] above). Eliminate that
         row spike exactly like a Forrest–Tomlin update whose spike
         column is e_r: the new diagonal is exactly 1.0. *)
      core.udiag <- V.F.grow core.udiag core.nrows 0.0;
      core.ur_idx <- grow_any core.ur_idx core.nrows empty_iv;
      core.ur_val <- grow_any core.ur_val core.nrows empty_fv;
      core.ur_len <- grow_i core.ur_len core.nrows 0;
      core.uc_idx <- grow_any core.uc_idx core.nrows empty_iv;
      core.uc_val <- grow_any core.uc_val core.nrows empty_fv;
      core.uc_len <- grow_i core.uc_len core.nrows 0;
      core.rf_idx <- grow_any core.rf_idx core.nrows empty_iv;
      core.rf_val <- grow_any core.rf_val core.nrows empty_fv;
      core.rf_rows <- grow_any core.rf_rows core.nrows empty_iv;
      core.row_of_pos <- grow_i core.row_of_pos core.nrows 0;
      core.pos_of_row <- grow_i core.pos_of_row core.nrows 0;
      core.slot_of_pos <- grow_i core.slot_of_pos core.nrows 0;
      core.pos_of_slot <- grow_i core.pos_of_slot core.nrows 0;
      core.ur_idx.(r) <- empty_iv;
      core.ur_val.(r) <- empty_fv;
      core.ur_len.(r) <- 0;
      core.uc_idx.(r) <- empty_iv;
      core.uc_val.(r) <- empty_fv;
      core.uc_len.(r) <- 0;
      core.row_of_pos.(r) <- r;
      core.pos_of_row.(r) <- r;
      core.slot_of_pos.(r) <- r;
      core.pos_of_slot.(r) <- r;
      core.udiag.{r} <- eliminate_row_spike core r 1.0 core.spike false;
      Obs.set g_fill (float_of_int (core.u_nnz + core.nrows + core.eta_nnz)));
  !v >= slo -. feas_tol && !v <= sup +. feas_tol

(* ------------------------------------------------------------------ *)
(* Incremental state and the BACKEND surface                           *)
(* ------------------------------------------------------------------ *)

type state = {
  mutable prob : problem; (* rebound in place by [patch] *)
  mutable added : constr list; (* newest first *)
  mutable core : core option;
  mutable deleg : Simplex_float.state option;
  mutable base_pivots : int; (* pivots of abandoned cores *)
  mutable base_refactors : int;
  mutable base_updates : int;
  mutable last : outcome;
}

let pivots st =
  st.base_pivots
  + (match st.core with Some c -> c.n_pivots | None -> 0)
  + (match st.deleg with Some d -> Simplex_float.pivots d | None -> 0)

let refactors st =
  st.base_refactors + match st.core with Some c -> c.n_refactors | None -> 0

let updates st =
  st.base_updates + match st.core with Some c -> c.n_updates | None -> 0

(* Basis-representation nonzeros right now: U (off-diagonals plus the
   diagonal) plus the op file in LU mode, the op file alone in eta
   mode. 0 once the state has delegated to the dense kernel. *)
let fill_nnz st =
  match st.core with
  | Some c -> (
      match c.mode with
      | Lu -> c.u_nnz + c.nrows + c.eta_nnz
      | Eta -> c.eta_nnz)
  | None -> 0

(* Delegation to the dense kernel: the structural problem types are
   field-for-field identical, only nominally distinct. *)
let to_dense_relation = function
  | Leq -> Simplex_float.Leq
  | Geq -> Simplex_float.Geq
  | Eq -> Simplex_float.Eq

let to_dense_constr (c : constr) =
  {
    Simplex_float.coeffs = c.coeffs;
    relation = to_dense_relation c.relation;
    rhs = c.rhs;
    label = c.label;
  }

let to_dense_problem (p : problem) extra =
  {
    Simplex_float.n_vars = p.n_vars;
    minimize = p.minimize;
    constraints = List.map to_dense_constr (p.constraints @ extra);
    lower = p.lower;
    upper = p.upper;
    var_name = p.var_name;
  }

let of_dense_outcome = function
  | Simplex_float.Optimal s ->
      Optimal { values = s.Simplex_float.values; objective = s.Simplex_float.objective }
  | Simplex_float.Infeasible -> Infeasible
  | Simplex_float.Unbounded -> Unbounded

let delegate st =
  Obs.incr c_fallbacks;
  (match st.core with
  | Some c ->
      st.base_pivots <- st.base_pivots + c.n_pivots;
      st.base_refactors <- st.base_refactors + c.n_refactors;
      st.base_updates <- st.base_updates + c.n_updates
  | None -> ());
  st.core <- None;
  let d, out =
    Simplex_float.solve_incremental (to_dense_problem st.prob (List.rev st.added))
  in
  st.deleg <- Some d;
  st.last <- of_dense_outcome out;
  st.last

let build_state ?(hint = []) prob =
  let st =
    {
      prob;
      added = [];
      core = None;
      deleg = None;
      base_pivots = 0;
      base_refactors = 0;
      base_updates = 0;
      last = Infeasible;
    }
  in
  metered
    ~piv:(fun () -> pivots st)
    (fun () ->
      let core = alloc_core prob prob.constraints in
      match solve_core core prob ~hint with
      | `Done out ->
          st.core <- Some core;
          st.last <- out
      | `Fail ->
          st.base_pivots <- core.n_pivots;
          st.base_refactors <- core.n_refactors;
          st.base_updates <- core.n_updates;
          ignore (delegate st));
  (st, st.last)

let cold_rebuild st =
  Obs.incr c_rebuilds;
  (match st.core with
  | Some c ->
      st.base_pivots <- st.base_pivots + c.n_pivots;
      st.base_refactors <- st.base_refactors + c.n_refactors;
      st.base_updates <- st.base_updates + c.n_updates
  | None -> ());
  st.core <- None;
  let prob = st.prob in
  let core = alloc_core prob (prob.constraints @ List.rev st.added) in
  match solve_core core prob ~hint:[] with
  | `Done out ->
      st.core <- Some core;
      st.last <- out;
      out
  | `Fail ->
      st.base_pivots <- st.base_pivots + core.n_pivots;
      st.base_refactors <- st.base_refactors + core.n_refactors;
      st.base_updates <- st.base_updates + core.n_updates;
      delegate st

let solve_incremental prob =
  Obs.incr c_cold;
  build_state prob

let solve prob = snd (solve_incremental prob)

let solve_dual_incremental ?(hint = []) prob =
  Obs.incr c_cold;
  build_state ~hint prob

let basis_hint st =
  match (st.core, st.deleg) with
  | Some core, _ ->
      let out = ref [] in
      for j = core.ns - 1 downto 0 do
        if core.bpos.(j) >= 0 then out := j :: !out
      done;
      !out
  | None, Some d -> Simplex_float.basis_hint d
  | None, None -> []

let add_constraint st (c : constr) =
  let what = "Revised_sparse.add_constraint" in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= st.prob.n_vars then invalid_arg (what ^ ": variable out of range"))
    c.coeffs;
  check_constr ~what c;
  st.added <- c :: st.added;
  metered ~piv:(fun () -> pivots st) @@ fun () ->
  match st.deleg with
  | Some d ->
      st.last <- of_dense_outcome (Simplex_float.add_constraint d (to_dense_constr c));
      st.last
  | None -> (
      match (st.last, st.core) with
      | Infeasible, _ -> Infeasible
      | _, None | Unbounded, _ -> cold_rebuild st
      | Optimal _, Some core ->
          Obs.incr c_warm;
          if append_row core c then st.last
          else begin
            let polish () =
              match primal_loop core ~phase1:false with
              | `Optimal ->
                  st.last <- Optimal (extract core st.prob);
                  st.last
              | `Unbounded ->
                  st.last <- Unbounded;
                  st.last
              | `Stalled | `Feasible | `Infeasible -> cold_rebuild st
            in
            match dual_loop core with
            | `Feasible -> polish ()
            | `Infeasible ->
                st.last <- Infeasible;
                st.last
            | `Stalled -> cold_rebuild st
          end)

(* ------------------------------------------------------------------ *)
(* In-place re-bind of a structurally identical problem               *)
(* ------------------------------------------------------------------ *)

(* [patch st p'] rebinds [st] to [p'] without rebuilding anything when
   [p'] has the same variables and the same constraint matrix (count,
   canonical coefficients and relations are checked entry-for-entry
   against the live CSR) — only objective, bounds and right-hand sides
   may differ. On a match the core keeps its basis, factorization,
   Devex weights and pricing state: the new numbers are patched into
   the arrays, [xb] is recomputed through the existing factors, and the
   dual simplex re-optimizes from the retained basis (numerical trouble
   falls through the usual cold-rebuild -> dense-delegate chain
   internally, never to the caller). Returns [None] only on a
   structural mismatch, in which case [st] is untouched and the caller
   must build a fresh state. *)
let patch st (p' : problem) =
  if p'.n_vars <> st.prob.n_vars then None
  else
    metered ~piv:(fun () -> pivots st) @@ fun () ->
    match st.deleg with
    | Some d -> (
        match Simplex_float.patch d (to_dense_problem p' []) with
        | Some out ->
            Obs.incr c_patches;
            st.prob <- p';
            st.added <- [];
            st.last <- of_dense_outcome out;
            Some st.last
        | None -> None)
    | None -> (
        match st.core with
        | None -> None
        | Some core ->
            let cs' = p'.constraints in
            if List.length cs' <> core.nrows then None
            else begin
              let ok = ref true in
              List.iteri
                (fun r (c : constr) ->
                  if !ok then begin
                    let ncs, csi, csv = canon_scratch c.coeffs in
                    let k0 = core.row_ptr.(r) and k1 = core.row_ptr.(r + 1) in
                    let k = ref k0 in
                    for i = 0 to ncs - 1 do
                      if
                        !k >= k1
                        || core.rc.{!k} <> iget csi i
                        || core.rv.{!k} <> fget csv i
                      then ok := false;
                      incr k
                    done;
                    if !k <> k1 then ok := false;
                    let slo, sup = slack_bounds c.relation in
                    if core.lo.{core.ns + r} <> slo || core.up.{core.ns + r} <> sup
                    then ok := false
                  end)
                cs';
              if not !ok then None
              else begin
                Obs.incr c_patches;
                st.prob <- p';
                st.added <- [];
                List.iteri (fun r (c : constr) -> core.b.{r} <- c.rhs) cs';
                V.F.fill_range core.cost 0 core.ns 0.0;
                List.iter
                  (fun (j, c) -> core.cost.{j} <- core.cost.{j} +. c)
                  p'.minimize;
                for j = 0 to core.ns - 1 do
                  core.lo.{j} <-
                    (match p'.lower.(j) with Some l -> l | None -> neg_infinity);
                  core.up.{j} <-
                    (match p'.upper.(j) with Some u -> u | None -> infinity);
                  if core.up.{j} < core.lo.{j} then
                    invalid_arg "Simplex: empty variable range (upper < lower)";
                  if core.bpos.(j) < 0 then begin
                    (* keep the resting side meaningful under the new box *)
                    if core.nb_up.(j) && core.up.{j} = infinity then
                      core.nb_up.(j) <- false;
                    if
                      (not core.nb_up.(j))
                      && core.lo.{j} = neg_infinity
                      && core.up.{j} < infinity
                    then core.nb_up.(j) <- true
                  end
                done;
                recompute_xb core;
                let polish () =
                  match primal_loop core ~phase1:false with
                  | `Optimal ->
                      st.last <- Optimal (extract core st.prob);
                      st.last
                  | `Unbounded ->
                      st.last <- Unbounded;
                      st.last
                  | `Stalled | `Feasible | `Infeasible -> cold_rebuild st
                in
                let out =
                  (* Unlike [add_constraint], the dual pass here may START
                     dual infeasible (the basis was optimal for the old
                     objective), so its [`Infeasible] verdict can be
                     spurious — route it through the cold rebuild, which
                     re-derives the true outcome from scratch. *)
                  match dual_loop core with
                  | `Feasible -> polish ()
                  | `Infeasible | `Stalled -> cold_rebuild st
                in
                Some out
              end
            end)

(* ------------------------------------------------------------------ *)
(* Test hooks                                                          *)
(* ------------------------------------------------------------------ *)

(* Arena-reuse instrumentation for the property tests: total
   reallocation count and current capacity of the refactorization
   scratch slots. A zero delta across two solves on the same domain
   proves the scratch was reused, not reallocated. *)
let refactor_arena_grows () =
  Arena.grows a_ccount + Arena.grows a_coln + Arena.grows a_rlen
  + Arena.grows a_act

let refactor_arena_capacity () = Arena.capacity a_ccount
