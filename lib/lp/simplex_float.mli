(** Specialized float simplex kernel on flat unboxed tableaus.

    Drop-in replacement for [Simplex.Make (Field.Float_field)] on the hot
    paths: the same model layer (general bounds, <=/>=/= rows) and the same
    [problem]/[outcome] shape, but the tableau is a single flat row-major
    [float array] pivoted with direct float ops — no functor indirection,
    no per-op closure, no boxing. Pricing is Dantzig's largest-coefficient
    rule with an automatic fallback to Bland's least-index rule after a
    degeneracy streak (and back once progress resumes).

    The warm-start half of {!Lp_intf.BACKEND} is genuinely incremental
    here: [add_constraint] appends the canonicalized row with a fresh basic
    slack to the optimal tableau and re-optimizes by dual simplex instead
    of re-running two-phase from scratch. The cutting-plane SNE solvers in
    [Sne_lp] are built on exactly this.

    The functorized exact-rational simplex remains the correctness oracle;
    the property tests cross-validate every verdict of this kernel against
    it. *)

type num = float
type relation = Leq | Geq | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse: variable index, coefficient *)
  relation : relation;
  rhs : float;
  label : string;
}

type problem = {
  n_vars : int;
  minimize : (int * float) list;  (** sparse objective *)
  constraints : constr list;
  lower : float option array;  (** [None] = unbounded below *)
  upper : float option array;
  var_name : int -> string;
}

type solution = { values : float array; objective : float }
type outcome = Optimal of solution | Infeasible | Unbounded

(** Backend name for bench labels ("simplex-float-unboxed"). *)
val name : string

(** Validates array lengths and variable indices; raises
    [Invalid_argument]. *)
val make_problem :
  n_vars:int ->
  ?var_name:(int -> string) ->
  minimize:(int * float) list ->
  constraints:constr list ->
  lower:float option array ->
  upper:float option array ->
  unit ->
  problem

(** Bound arrays putting all variables in [\[0, +inf)]. *)
val nonneg : int -> float option array * float option array

(** One-shot two-phase solve. Raises [Invalid_argument] on an empty
    variable range (upper < lower). *)
val solve : problem -> outcome

(** Opaque warm-startable solver state: the canonicalized tableau, its
    basis, and the bookkeeping needed to append rows later. *)
type state

(** Full two-phase solve that keeps the final tableau around for
    [add_constraint]. *)
val solve_incremental : problem -> state * outcome

(** Append one constraint and re-optimize from the previous basis (dual
    simplex; an [Eq] row becomes two [<=] rows). Falls back to a cold
    rebuild if the previous outcome was [Unbounded] or the dual pass
    stalls; once [Infeasible], stays [Infeasible]. *)
val add_constraint : state -> constr -> outcome

(** Total simplex pivots spent on this state so far (two-phase + all warm
    re-optimizations). *)
val pivots : state -> int

(** Cross-solve warm start: a dual-simplex solve from the all-slack
    (canonical-origin) basis, optionally crash-pivoting the variables in
    [hint] — original variable indices, typically an adjacent solve's
    {!basis_hint} — into the basis first. Skips phase 1 entirely: the
    origin basis is dual feasible whenever every canonical objective
    coefficient is nonnegative, which holds for the whole LP (3) pricing
    family (minimize a nonnegative combination of lower-bounded
    variables). Problems outside that shape, and solves where the dual
    pass stalls, fall back to the cold two-phase [solve_incremental];
    the answer is always exact, only the pivot count changes. *)
val solve_dual_incremental : ?hint:int list -> problem -> state * outcome

(** Original-variable indices of the variables currently basic — feed to
    the next adjacent solve's [?hint]. *)
val basis_hint : state -> int list

(** [patch st p'] re-targets a dual-layout state (one built by
    [solve_dual_incremental]) at a structurally identical problem whose
    rhs, objective, and bound values changed — same coefficient pattern,
    relations, and bound shape (which sides are finite). Rewrites the rhs
    column in place through the factorized basis and re-optimizes
    (dual pass then primal polish), keeping every appended cut. Returns
    [None] when the state cannot be patched: not dual layout (two-phase
    builds and cold rebuilds clear the flag), any structural mismatch, or
    an objective the dual start cannot price. Numerical trouble never
    yields [None]; it falls back to an internal cold rebuild. *)
val patch : state -> problem -> outcome option

val pp_relation : Format.formatter -> relation -> unit
val pp_problem : Format.formatter -> problem -> unit
