(** Sparse revised simplex with bounded variables.

    Drop-in {!Lp_intf.BACKEND} sibling of {!Simplex_float}, built for the
    cutting-plane workloads of [Sne_lp]: every constraint those masters
    ever see is a sparse tree-path cut over a handful of edge variables,
    and the box bounds [0 <= b_a <= w_a] never need to become rows. Where
    the dense kernel compiles general bounds away (shift / mirror / split
    plus an explicit row per upper bound) and pivots a dense tableau, this
    kernel keeps the bounds implicit — nonbasic variables rest at either
    bound — and represents the basis inverse as a Markowitz-ordered sparse
    LU factorization maintained by Forrest–Tomlin updates (default; a
    product-form eta file survives as the selectable legacy engine) over
    CSR/CSC constraint storage, so a pivot costs O(nnz) instead of
    O(rows * cols). Pricing is reference-framework Devex by default, with
    the original rotating partial pricing selectable via {!set_pricing}.
    See DESIGN.md §8 for the shared data layout and §11 for the LU
    factorization, the update-file growth policy, and Devex resets.

    The warm-start contract of {!Lp_intf.BACKEND} is genuinely
    incremental: [add_constraint] appends the row (its fresh slack basic),
    extends the eta file with one row-eta, and re-optimizes by dual
    simplex from the previous optimal basis. Numerical trouble (stalls,
    singular refactorization) falls back to a cold rebuild and, as a last
    resort, to the dense {!Simplex_float} kernel — the answer is always
    delivered, only the pivot count changes. The exact-rational functor
    simplex remains the correctness oracle; property tests cross-validate
    every verdict of this kernel against it and against the dense one. *)

(** Basis-inverse representation. [Lu] (the default) is the sparse LU
    factorization with Forrest–Tomlin updates; [Eta] is the legacy
    product-form eta file, kept selectable so benches and differential
    tests can compare the engines on identical instances. *)
type basis_kind = Lu | Eta

(** Process-wide engine selection, snapshotted per solver state at
    creation — an in-flight solve never changes representation. *)
val set_basis_kind : basis_kind -> unit

val basis_kind : unit -> basis_kind

(** Process-wide pricing-rule selection ({!Lp_intf.pricing}; default
    [Devex]), snapshotted per solver state at creation. *)
val set_pricing : Lp_intf.pricing -> unit

val pricing : unit -> Lp_intf.pricing

type num = float
type relation = Leq | Geq | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse: variable index, coefficient *)
  relation : relation;
  rhs : float;
  label : string;
}

type problem = {
  n_vars : int;
  minimize : (int * float) list;  (** sparse objective *)
  constraints : constr list;
  lower : float option array;  (** [None] = unbounded below *)
  upper : float option array;
  var_name : int -> string;
}

type solution = { values : float array; objective : float }
type outcome = Optimal of solution | Infeasible | Unbounded

(** Backend name for bench labels ("revised-simplex-sparse"). *)
val name : string

(** Validates array lengths and variable indices; raises
    [Invalid_argument]. *)
val make_problem :
  n_vars:int ->
  ?var_name:(int -> string) ->
  minimize:(int * float) list ->
  constraints:constr list ->
  lower:float option array ->
  upper:float option array ->
  unit ->
  problem

(** Bound arrays putting all variables in [\[0, +inf)]. *)
val nonneg : int -> float option array * float option array

(** One-shot solve. Starts the dual simplex directly when the all-slack
    basis is dual feasible (the whole LP (3) family), otherwise runs a
    composite phase 1. Raises [Invalid_argument] on an empty variable
    range (upper < lower). *)
val solve : problem -> outcome

(** Opaque warm-startable solver state: CSR/CSC constraint storage, the
    basis, and the eta file. *)
type state

val solve_incremental : problem -> state * outcome

(** Append one constraint and re-optimize dual-feasibly from the previous
    basis (one row-eta plus a short dual-simplex run). Falls back to a
    cold rebuild if the previous outcome was [Unbounded] or the dual pass
    stalls; once [Infeasible], stays [Infeasible]. *)
val add_constraint : state -> constr -> outcome

(** Total simplex pivots spent on this state so far (bound flips are
    counted separately, under [lp.sparse.bound_flips]). *)
val pivots : state -> int

(** Cross-solve warm start, mirroring
    {!Simplex_float.solve_dual_incremental}: crash the variables in
    [hint] (original variable indices, typically an adjacent solve's
    {!basis_hint}) into the all-slack basis, then re-optimize by dual
    simplex. Problems whose origin basis is not dual feasible, and solves
    where the dual pass stalls, fall back to the ordinary
    [solve_incremental] path; the answer is always exact, only the pivot
    count changes. *)
val solve_dual_incremental : ?hint:int list -> problem -> state * outcome

(** Original-variable indices of the variables currently basic — feed to
    the next adjacent solve's [?hint]. *)
val basis_hint : state -> int list

(** Basis refactorizations performed on this state (also accumulated
    process-wide under the [lp.sparse.refactors] Obs counter). *)
val refactors : state -> int

(** Forrest–Tomlin updates applied since the last refactorization ([Lu]
    states; always 0 for [Eta] states) — the live update-file length. *)
val updates : state -> int

(** Current basis-representation nonzeros: U off-diagonals + diagonal +
    op-file entries for [Lu] states, eta-file entries for [Eta] states.
    The fill-in figure the benches chart. *)
val fill_nnz : state -> int

(** [patch st p'] re-targets the state at a structurally identical
    problem whose rhs, objective, and bound values changed — the per-row
    coefficient pattern (canonical CSR order), relations, and bound shape
    must match exactly. On success the factorized basis and every
    appended cut survive; the solve resumes by dual simplex from the
    previous basis with a primal polish. Returns [None] only on a
    structural mismatch (including delegated states whose dense tableau
    is no longer dual-layout); numerical trouble falls back to the
    internal cold-rebuild chain instead. [Sne_session] leans on this to
    keep one kernel state resident across weight-only resolves. *)
val patch : state -> problem -> outcome option

(**/**)

(* Test hooks: refactorization-arena instrumentation (see test/test_lp).
   [refactor_arena_grows] is the total reallocation count across the
   per-domain Markowitz scratch slots; a zero delta between two solves
   proves arena reuse. *)
val refactor_arena_grows : unit -> int
val refactor_arena_capacity : unit -> int
