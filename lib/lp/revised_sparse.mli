(** Sparse revised simplex with bounded variables.

    Drop-in {!Lp_intf.BACKEND} sibling of {!Simplex_float}, built for the
    cutting-plane workloads of [Sne_lp]: every constraint those masters
    ever see is a sparse tree-path cut over a handful of edge variables,
    and the box bounds [0 <= b_a <= w_a] never need to become rows. Where
    the dense kernel compiles general bounds away (shift / mirror / split
    plus an explicit row per upper bound) and pivots a dense tableau, this
    kernel keeps the bounds implicit — nonbasic variables rest at either
    bound — and represents the basis inverse as a product-form eta file
    over CSR/CSC constraint storage, so a pivot costs O(nnz) instead of
    O(rows * cols). See DESIGN.md §8 for the data layout, the append-row
    eta trick behind [add_constraint], the refactorization trigger, and
    the regimes where the dense kernel still wins.

    The warm-start contract of {!Lp_intf.BACKEND} is genuinely
    incremental: [add_constraint] appends the row (its fresh slack basic),
    extends the eta file with one row-eta, and re-optimizes by dual
    simplex from the previous optimal basis. Numerical trouble (stalls,
    singular refactorization) falls back to a cold rebuild and, as a last
    resort, to the dense {!Simplex_float} kernel — the answer is always
    delivered, only the pivot count changes. The exact-rational functor
    simplex remains the correctness oracle; property tests cross-validate
    every verdict of this kernel against it and against the dense one. *)

type num = float
type relation = Leq | Geq | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse: variable index, coefficient *)
  relation : relation;
  rhs : float;
  label : string;
}

type problem = {
  n_vars : int;
  minimize : (int * float) list;  (** sparse objective *)
  constraints : constr list;
  lower : float option array;  (** [None] = unbounded below *)
  upper : float option array;
  var_name : int -> string;
}

type solution = { values : float array; objective : float }
type outcome = Optimal of solution | Infeasible | Unbounded

(** Backend name for bench labels ("revised-simplex-sparse"). *)
val name : string

(** Validates array lengths and variable indices; raises
    [Invalid_argument]. *)
val make_problem :
  n_vars:int ->
  ?var_name:(int -> string) ->
  minimize:(int * float) list ->
  constraints:constr list ->
  lower:float option array ->
  upper:float option array ->
  unit ->
  problem

(** Bound arrays putting all variables in [\[0, +inf)]. *)
val nonneg : int -> float option array * float option array

(** One-shot solve. Starts the dual simplex directly when the all-slack
    basis is dual feasible (the whole LP (3) family), otherwise runs a
    composite phase 1. Raises [Invalid_argument] on an empty variable
    range (upper < lower). *)
val solve : problem -> outcome

(** Opaque warm-startable solver state: CSR/CSC constraint storage, the
    basis, and the eta file. *)
type state

val solve_incremental : problem -> state * outcome

(** Append one constraint and re-optimize dual-feasibly from the previous
    basis (one row-eta plus a short dual-simplex run). Falls back to a
    cold rebuild if the previous outcome was [Unbounded] or the dual pass
    stalls; once [Infeasible], stays [Infeasible]. *)
val add_constraint : state -> constr -> outcome

(** Total simplex pivots spent on this state so far (bound flips are
    counted separately, under [lp.sparse.bound_flips]). *)
val pivots : state -> int

(** Cross-solve warm start, mirroring
    {!Simplex_float.solve_dual_incremental}: crash the variables in
    [hint] (original variable indices, typically an adjacent solve's
    {!basis_hint}) into the all-slack basis, then re-optimize by dual
    simplex. Problems whose origin basis is not dual feasible, and solves
    where the dual pass stalls, fall back to the ordinary
    [solve_incremental] path; the answer is always exact, only the pivot
    count changes. *)
val solve_dual_incremental : ?hint:int list -> problem -> state * outcome

(** Original-variable indices of the variables currently basic — feed to
    the next adjacent solve's [?hint]. *)
val basis_hint : state -> int list

(** Eta-file refactorizations performed on this state (also accumulated
    process-wide under the [lp.sparse.refactors] Obs counter). *)
val refactors : state -> int
