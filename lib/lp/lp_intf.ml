(** Pluggable LP-backend signature.

    Theorem 1 turns STABLE NETWORK ENFORCEMENT into linear programming, so
    every solver in [Repro_core] ultimately calls an LP backend. Two live
    here:

    - {!Simplex.Make}: the dense two-phase simplex functorized over the
      ordered field — the exact-rational instantiation is the correctness
      oracle;
    - {!Simplex_float}: a specialized kernel on flat unboxed [float array]
      tableaus with a genuine warm-start path (dual simplex after each
      appended cut), used by the float sweeps.

    Both match [BACKEND], so [Sne_lp.Make_backend] (and anything else built
    on the cutting-plane loop) can swap them with a one-line module change.

    {2 Warm-start contract}

    [solve_incremental p] runs the full two-phase solve and returns an
    opaque solver [state] alongside the outcome. [add_constraint st c]
    appends one more constraint to the problem [st] was created from and
    re-optimizes, preferably from the previous optimal basis (the float
    kernel appends the canonicalized row with a fresh slack and runs the
    dual simplex; the generic functor re-solves from scratch, which keeps it
    honest as an oracle). Outcomes are cumulative: once [Infeasible], every
    later [add_constraint] is [Infeasible] too. [pivots st] is the total
    number of simplex pivots spent on [st] so far — the currency the
    benchmarks compare warm against cold restarts in. *)

(** Pricing rule for kernels that expose a choice (today the sparse
    revised-simplex kernel, {!Revised_sparse}):

    - [Partial]: rotating-section partial pricing on the primal side and
      most-violated-row selection on the dual side — cheap per iteration,
      more iterations on hard bases;
    - [Devex]: reference-framework Devex (an approximate projected
      steepest edge, Forrest–Goldfarb on the dual side) — a little more
      work per pivot, markedly fewer pivots on the long cutting-plane
      masters. The default for {!Revised_sparse}.

    Selection is process-wide ([Revised_sparse.set_pricing]) and
    snapshotted per solver state at creation, so an in-flight solve is
    internally consistent. *)
type pricing = Partial | Devex

module type BACKEND = sig
  type num
  (** The scalar type (the field the LP is over). *)

  type relation = Leq | Geq | Eq

  type constr = {
    coeffs : (int * num) list;  (** sparse: variable index, coefficient *)
    relation : relation;
    rhs : num;
    label : string;
  }

  type problem = {
    n_vars : int;
    minimize : (int * num) list;  (** sparse objective *)
    constraints : constr list;
    lower : num option array;  (** [None] = unbounded below *)
    upper : num option array;
    var_name : int -> string;
  }

  type solution = { values : num array; objective : num }
  type outcome = Optimal of solution | Infeasible | Unbounded

  (** Human-readable backend name for bench labels and error messages. *)
  val name : string

  (** Validates array lengths and variable indices; raises
      [Invalid_argument]. *)
  val make_problem :
    n_vars:int ->
    ?var_name:(int -> string) ->
    minimize:(int * num) list ->
    constraints:constr list ->
    lower:num option array ->
    upper:num option array ->
    unit ->
    problem

  (** Bound arrays putting all variables in [\[0, +inf)]. *)
  val nonneg : int -> num option array * num option array

  (** One-shot solve. *)
  val solve : problem -> outcome

  (** Opaque incremental-solver state (see the warm-start contract above). *)
  type state

  val solve_incremental : problem -> state * outcome
  val add_constraint : state -> constr -> outcome

  (** Total simplex pivots spent on this state so far. *)
  val pivots : state -> int
end
