(** Linear programming from scratch: a dense-tableau, two-phase primal
    simplex with Bland's anti-cycling rule, functorized over the ordered
    field.

    Theorem 1 reduces STABLE NETWORK ENFORCEMENT to LP and the sealed
    environment has no solver, so this module provides one. The float
    instantiation powers the sweeps; the exact-rational one certifies
    optima on reduction gadgets whose constraint margins are far below
    float resolution (pivoting respects [F.pivot_threshold], so the exact
    field pivots on any non-zero element while the float field refuses
    rounding-noise pivots). *)

module Make (F : Repro_field.Field.S) : sig
  type num = F.t
  type relation = Leq | Geq | Eq

  (** Backend name for bench labels ("simplex-functor-<field>"). *)
  val name : string

  type constr = {
    coeffs : (int * F.t) list; (** sparse: variable index, coefficient *)
    relation : relation;
    rhs : F.t;
    label : string;
  }

  type problem = {
    n_vars : int;
    minimize : (int * F.t) list; (** sparse objective *)
    constraints : constr list;
    lower : F.t option array; (** [None] = unbounded below *)
    upper : F.t option array;
    var_name : int -> string;
  }

  type solution = { values : F.t array; objective : F.t }
  type outcome = Optimal of solution | Infeasible | Unbounded

  (** Validates array lengths and variable indices; raises
      [Invalid_argument]. *)
  val make_problem :
    n_vars:int ->
    ?var_name:(int -> string) ->
    minimize:(int * F.t) list ->
    constraints:constr list ->
    lower:F.t option array ->
    upper:F.t option array ->
    unit ->
    problem

  (** Bound arrays putting all variables in [\[0, +inf)]. *)
  val nonneg : int -> F.t option array * F.t option array

  val pp_relation : Format.formatter -> relation -> unit
  val pp_problem : Format.formatter -> problem -> unit

  (** Solve by two-phase primal simplex. General bounds are compiled away
      by shifting/mirroring/splitting variables plus explicit bound rows.
      Raises [Invalid_argument] on an empty variable range
      (upper < lower). *)
  val solve : problem -> outcome

  (** Incremental-solver state for the {!Lp_intf.BACKEND} warm-start
      contract. This functor keeps no factorization: [add_constraint]
      re-solves the accumulated problem from scratch (a {e cold} restart),
      which makes it the semantic oracle for the warm-started
      {!Simplex_float} kernel while [pivots] prices what cold restarts
      cost. *)
  type state

  val solve_incremental : problem -> state * outcome
  val add_constraint : state -> constr -> outcome

  (** Total simplex pivots spent on this state so far. *)
  val pivots : state -> int
end

module Float_simplex : module type of Make (Repro_field.Field.Float_field)
module Rat_simplex : module type of Make (Repro_field.Field.Rat)
