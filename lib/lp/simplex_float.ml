(* Specialized float simplex kernel on flat unboxed tableaus.

   The functorized [Simplex.Make] boxes every scalar behind [F.t] and pays a
   closure call per arithmetic op in the innermost pivot loop; instantiated
   at float that overhead dominates the SNE sweeps. This kernel is the same
   dense two-phase primal simplex, hand-specialized:

   - the tableau is one flat row-major [float array] (rhs at offset 0 of
     each row, coefficient of column j at offset 1+j), so the pivot loop is
     straight-line unboxed float code over contiguous memory;
   - pricing is Dantzig's largest-coefficient rule, with an automatic
     fallback to Bland's least-index rule after [bland_after] consecutive
     degenerate pivots (and back to Dantzig once progress resumes);
   - [solve_incremental]/[add_constraint] implement the warm-start contract
     of {!Lp_intf.BACKEND}: an appended constraint becomes one new row (its
     fresh slack basic) reduced against the current basis, and the dual
     simplex re-optimizes from the previous optimal tableau instead of
     re-running two-phase from scratch — the cutting-plane loops in
     [Sne_lp] lean on this.

   The model layer (general bounds compiled away by shifting / mirroring /
   splitting plus explicit upper-bound rows) mirrors [Simplex.Make] exactly,
   so the exact-rational functor instantiation stays the drop-in
   correctness oracle. *)

type num = float
type relation = Leq | Geq | Eq

type constr = {
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
  label : string;
}

type problem = {
  n_vars : int;
  minimize : (int * float) list;
  constraints : constr list;
  lower : float option array;
  upper : float option array;
  var_name : int -> string;
}

type solution = { values : float array; objective : float }
type outcome = Optimal of solution | Infeasible | Unbounded

let name = "simplex-float-unboxed"

(* Kernel-wide observability counters (Repro_obs registry; no-ops while
   instrumentation is disabled). *)
module Obs = Repro_obs.Obs
module V = Repro_util.Vec

(* Local unsafe bigarray accessors: cross-library [V.F.uget] does not
   inline under the non-flambda compiler, which would box every float in
   the pivot loops (see Revised_sparse). Bounds are checked once per loop
   on entry. *)
let[@inline] fget (a : V.fvec) i : float = Bigarray.Array1.unsafe_get a i
let[@inline] fset (a : V.fvec) i (x : float) = Bigarray.Array1.unsafe_set a i x

let c_pivots = Obs.counter "lp.pivots"
let c_phase1 = Obs.counter "lp.phase1_pivots"
let c_phase2 = Obs.counter "lp.phase2_pivots"
let c_dual = Obs.counter "lp.dual_pivots"
let c_cold = Obs.counter "lp.cold_solves"
let c_warm = Obs.counter "lp.warm_solves"
let c_rebuilds = Obs.counter "lp.rebuilds"
let c_patches = Obs.counter "lp.patches"

(* NaN poisons the Dantzig pricing comparisons silently ([d < !best] is
   always false for NaN), so a non-finite coefficient can stall
   entering-variable selection or return garbage labelled [Optimal].
   Reject such models up front with a pinpointed error instead. *)
let check_finite ~what ~where x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "%s: non-finite %s (%g)" what where x)

let check_constr ~what (c : constr) =
  List.iter
    (fun (_, a) ->
      check_finite ~what ~where:(Printf.sprintf "coefficient in constraint %S" c.label) a)
    c.coeffs;
  check_finite ~what ~where:(Printf.sprintf "rhs in constraint %S" c.label) c.rhs

let make_problem ~n_vars ?(var_name = fun i -> Printf.sprintf "x%d" i) ~minimize
    ~constraints ~lower ~upper () =
  let what = "Simplex_float.make_problem" in
  if Array.length lower <> n_vars || Array.length upper <> n_vars then
    invalid_arg (what ^ ": bound arrays must have n_vars entries");
  let check_index (i, _) =
    if i < 0 || i >= n_vars then invalid_arg (what ^ ": variable out of range")
  in
  List.iter check_index minimize;
  List.iter (fun c -> List.iter check_index c.coeffs) constraints;
  List.iter (fun (i, a) ->
      check_finite ~what ~where:(Printf.sprintf "objective coefficient of %s" (var_name i)) a)
    minimize;
  List.iter (check_constr ~what) constraints;
  let check_bound which i = function
    | Some x ->
        check_finite ~what ~where:(Printf.sprintf "%s bound of %s" which (var_name i)) x
    | None -> ()
  in
  Array.iteri (check_bound "lower") lower;
  Array.iteri (check_bound "upper") upper;
  { n_vars; minimize; constraints; lower; upper; var_name }

let nonneg n = (Array.make n (Some 0.0), Array.make n None)

(* Tolerances, aligned with Field.Float_field so the kernel classifies
   borderline instances the same way the functor float path does. *)
let pivot_tol = 1e-9 (* minimum pivot magnitude *)
let price_tol = 1e-9 (* reduced cost must be below -price_tol to enter *)
let feas_tol = 1e-9 (* rhs below -feas_tol means primal infeasible *)
let phase1_tol = 1e-7 (* residual artificial mass that counts as infeasible *)
let degen_tol = 1e-12 (* a ratio this small is a degenerate step *)
let bland_after = 40 (* degenerate pivots in a row before Bland takes over *)

(* How an original variable is recovered from canonical columns. *)
type recover =
  | Shifted of int * float (* x = base + y_col *)
  | Mirrored of int * float (* x = base - y_col *)
  | Split of int * int (* x = y_plus - y_minus *)

type state = {
  mutable prob : problem;
  mutable recover : recover array;
  structural : int; (* canonical structural columns *)
  mutable dual_layout : bool;
      (* true iff every row k's slack is column [structural + k] (states
         built by [build_dual] and extended only by [append_leq]); the
         invariant [patch] needs to rewrite the rhs in place. A two-phase
         [build]/[rebuild] breaks it. *)
  mutable added : constr list; (* cuts appended after the initial solve *)
  mutable a : V.fvec; (* flat tableau, row i at [i*stride .. ] *)
  mutable stride : int; (* >= width + 1; row layout: rhs, then columns *)
  mutable m : int;
  mutable width : int; (* columns in use (structural + slacks + arts) *)
  mutable obj : V.fvec; (* reduced-cost row, same layout; obj.{0} = -z *)
  mutable basis : int array; (* length >= m *)
  mutable barred : bool array; (* per column; artificials after phase 1 *)
  mutable n_pivots : int;
  mutable degen_streak : int;
  mutable bland : bool;
  mutable last : outcome;
}

let pivots st = st.n_pivots

let[@inline] coef st i j = fget st.a ((i * st.stride) + 1 + j)
let[@inline] row_rhs st i = fget st.a (i * st.stride)

(* ------------------------------------------------------------------ *)
(* The pivot kernel                                                    *)
(* ------------------------------------------------------------------ *)

let pivot st r c =
  let a = st.a and stride = st.stride and width = st.width in
  let base = r * stride in
  let inv = 1.0 /. fget a (base + 1 + c) in
  for j = 0 to width do
    fset a (base + j) (fget a (base + j) *. inv)
  done;
  fset a (base + 1 + c) 1.0;
  for i = 0 to st.m - 1 do
    if i <> r then begin
      let bi = i * stride in
      let f = fget a (bi + 1 + c) in
      if f <> 0.0 then begin
        for j = 0 to width do
          fset a (bi + j) (fget a (bi + j) -. (f *. fget a (base + j)))
        done;
        fset a (bi + 1 + c) 0.0
      end
    end
  done;
  let obj = st.obj in
  let f = fget obj (1 + c) in
  if f <> 0.0 then begin
    for j = 0 to width do
      fset obj j (fget obj j -. (f *. fget a (base + j)))
    done;
    fset obj (1 + c) 0.0
  end;
  st.basis.(r) <- c;
  st.n_pivots <- st.n_pivots + 1;
  Obs.incr c_pivots

(* ------------------------------------------------------------------ *)
(* Primal simplex: Dantzig pricing, Bland fallback on degeneracy        *)
(* ------------------------------------------------------------------ *)

let entering_column st =
  let obj = st.obj and barred = st.barred in
  if st.bland then begin
    (* Bland: smallest index with a genuinely negative reduced cost. *)
    let e = ref (-1) in
    (try
       for j = 0 to st.width - 1 do
         if
           (not (Array.unsafe_get barred j))
           && fget obj (1 + j) < -.price_tol
         then begin
           e := j;
           raise Exit
         end
       done
     with Exit -> ());
    !e
  end
  else begin
    (* Dantzig: most negative reduced cost. *)
    let e = ref (-1) and best = ref (-.price_tol) in
    for j = 0 to st.width - 1 do
      let d = fget obj (1 + j) in
      if d < !best && not (Array.unsafe_get barred j) then begin
        best := d;
        e := j
      end
    done;
    !e
  end

let rec primal st =
  let c = entering_column st in
  if c < 0 then `Optimal
  else begin
    (* Ratio test; ties break toward the smallest basis id (lexicographic,
       as in the functor) so Bland mode is genuinely anti-cycling. *)
    let leave = ref (-1) and best_ratio = ref infinity in
    for r = 0 to st.m - 1 do
      let arc = coef st r c in
      if arc > pivot_tol then begin
        let ratio = row_rhs st r /. arc in
        let better =
          !leave < 0
          || ratio < !best_ratio -. degen_tol
          || (ratio <= !best_ratio +. degen_tol && st.basis.(r) < st.basis.(!leave))
        in
        if better then begin
          if !leave < 0 || ratio < !best_ratio then best_ratio := ratio;
          leave := r
        end
      end
    done;
    if !leave < 0 then `Unbounded
    else begin
      if !best_ratio <= degen_tol then begin
        st.degen_streak <- st.degen_streak + 1;
        if st.degen_streak >= bland_after then st.bland <- true
      end
      else begin
        st.degen_streak <- 0;
        st.bland <- false
      end;
      pivot st !leave c;
      primal st
    end
  end

(* ------------------------------------------------------------------ *)
(* Dual simplex: re-optimization after an appended cut                  *)
(* ------------------------------------------------------------------ *)

(* Precondition: the reduced-cost row is dual feasible (all >= -tol), which
   holds at any primal optimum and is preserved by the ratio test below.
   Returns [`Stalled] past a generous pivot budget so the caller can fall
   back to a cold rebuild instead of cycling on numerical noise. *)
let dual st =
  let limit = 200 + (20 * (st.m + st.width)) in
  let rec loop iters =
    let leave = ref (-1) and worst = ref (-.feas_tol) in
    for r = 0 to st.m - 1 do
      let b = row_rhs st r in
      if b < !worst then begin
        worst := b;
        leave := r
      end
    done;
    if !leave < 0 then `Optimal
    else if iters > limit then `Stalled
    else begin
      let r = !leave in
      (* Entering column: minimize obj_j / (-a_rj) over a_rj < 0, keeping
         the first (smallest-index) column among near-ties. *)
      let enter = ref (-1) and best = ref infinity in
      for j = 0 to st.width - 1 do
        if not (Array.unsafe_get st.barred j) then begin
          let arj = coef st r j in
          if arj < -.pivot_tol then begin
            let ratio = fget st.obj (1 + j) /. -.arj in
            if !enter < 0 || ratio < !best -. degen_tol then begin
              best := ratio;
              enter := j
            end
          end
        end
      done;
      if !enter < 0 then `Infeasible
      else begin
        pivot st r !enter;
        Obs.incr c_dual;
        loop (iters + 1)
      end
    end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Canonicalization and the two-phase driver                            *)
(* ------------------------------------------------------------------ *)

(* Rewrite a user constraint over canonical columns: a dense accumulator of
   length [structural] plus the adjusted rhs. *)
let rewrite ~recover ~structural (c : constr) =
  let acc = Array.make structural 0.0 in
  let rhs = ref c.rhs in
  List.iter
    (fun (i, a) ->
      match recover.(i) with
      | Shifted (col, base) ->
          acc.(col) <- acc.(col) +. a;
          rhs := !rhs -. (a *. base)
      | Mirrored (col, base) ->
          acc.(col) <- acc.(col) -. a;
          rhs := !rhs -. (a *. base)
      | Split (cp, cm) ->
          acc.(cp) <- acc.(cp) +. a;
          acc.(cm) <- acc.(cm) -. a)
    c.coeffs;
  (acc, !rhs)

(* Rhs-only variant of [rewrite] for paths that never look at the
   coefficients (patch replays): skips the per-row dense accumulator. *)
let rewrite_rhs ~recover (c : constr) =
  let rhs = ref c.rhs in
  List.iter
    (fun (i, a) ->
      match recover.(i) with
      | Shifted (_, base) | Mirrored (_, base) -> rhs := !rhs -. (a *. base)
      | Split _ -> ())
    c.coeffs;
  !rhs

let extract st =
  let vals = Array.make st.structural 0.0 in
  for r = 0 to st.m - 1 do
    let b = st.basis.(r) in
    if b < st.structural then vals.(b) <- row_rhs st r
  done;
  let values =
    Array.map
      (function
        | Shifted (col, base) -> base +. vals.(col)
        | Mirrored (col, base) -> base -. vals.(col)
        | Split (cp, cm) -> vals.(cp) -. vals.(cm))
      st.recover
  in
  let objective =
    List.fold_left (fun acc (i, a) -> acc +. (a *. values.(i))) 0.0 st.prob.minimize
  in
  Optimal { values; objective }

(* Reduced costs for [cost_of] given the current basis, by row elimination:
   d_j = c_j - c_B . B^-1 A_j. *)
let set_objective st cost_of =
  V.F.fill_range st.obj 0 st.stride 0.0;
  for j = 0 to st.width - 1 do
    st.obj.{1 + j} <- cost_of j
  done;
  for r = 0 to st.m - 1 do
    let cb = cost_of st.basis.(r) in
    if cb <> 0.0 then begin
      let base = r * st.stride in
      for j = 0 to st.width do
        st.obj.{j} <- st.obj.{j} -. (cb *. st.a.{base + j})
      done
    end
  done

(* Step 1 of canonicalization, shared by [build] and [build_dual]: assign
   canonical columns; doubly-bounded variables also get an explicit
   upper-bound row appended to the constraint list. *)
let assign_columns p =
  let next = ref 0 in
  let fresh () =
    let c = !next in
    incr next;
    c
  in
  let extra_rows = ref [] in
  let recover =
    Array.init p.n_vars (fun i ->
        match (p.lower.(i), p.upper.(i)) with
        | Some lo, Some up ->
            if up < lo then
              invalid_arg "Simplex: empty variable range (upper < lower)";
            let col = fresh () in
            extra_rows :=
              { coeffs = [ (i, 1.0) ]; relation = Leq; rhs = up; label = "ub" }
              :: !extra_rows;
            Shifted (col, lo)
        | Some lo, None -> Shifted (fresh (), lo)
        | None, Some up -> Mirrored (fresh (), up)
        | None, None ->
            let cp = fresh () in
            let cm = fresh () in
            Split (cp, cm))
  in
  (recover, !next, p.constraints @ List.rev !extra_rows)

(* The objective over canonical columns. *)
let canonical_cost ~recover ~structural minimize =
  let cost = Array.make (max 1 structural) 0.0 in
  List.iter
    (fun (i, a) ->
      match recover.(i) with
      | Shifted (col, _) -> cost.(col) <- cost.(col) +. a
      | Mirrored (col, _) -> cost.(col) <- cost.(col) -. a
      | Split (cp, cm) ->
          cost.(cp) <- cost.(cp) +. a;
          cost.(cm) <- cost.(cm) -. a)
    minimize;
  cost

let build p =
  (* 1. Assign canonical columns; bounded variables also get an explicit
     upper-bound row. *)
  let recover, structural, all_constraints = assign_columns p in
  let m = List.length all_constraints in
  (* 2. Rewrite rows over canonical columns and normalize rhs >= 0. *)
  let rewritten =
    List.map
      (fun c ->
        let acc, rhs = rewrite ~recover ~structural c in
        if rhs < 0.0 then begin
          for j = 0 to structural - 1 do
            acc.(j) <- -.acc.(j)
          done;
          let rel =
            match c.relation with Leq -> Geq | Geq -> Leq | Eq -> Eq
          in
          (acc, rel, -.rhs)
        end
        else (acc, c.relation, rhs))
      all_constraints
  in
  (* 3. Column layout: structural, slacks/surpluses, artificials. *)
  let n_slack =
    List.fold_left
      (fun k (_, rel, _) -> match rel with Eq -> k | Leq | Geq -> k + 1)
      0 rewritten
  in
  let n_art =
    List.fold_left
      (fun k (_, rel, _) -> match rel with Leq -> k | Geq | Eq -> k + 1)
      0 rewritten
  in
  let width = structural + n_slack + n_art in
  (* Headroom so a typical cutting-plane run appends without realloc. *)
  let stride = width + 1 + 16 in
  let mcap = m + 16 in
  let st =
    {
      prob = p;
      recover;
      structural;
      dual_layout = false;
      added = [];
      a = V.F.make (max 1 (mcap * stride)) 0.0;
      stride;
      m;
      width;
      obj = V.F.make stride 0.0;
      basis = Array.make (max 1 mcap) (-1);
      barred = Array.make (max 1 (stride - 1)) false;
      n_pivots = 0;
      degen_streak = 0;
      bland = false;
      last = Infeasible;
    }
  in
  let next_slack = ref structural in
  let next_art = ref (structural + n_slack) in
  List.iteri
    (fun r (acc, rel, rhs) ->
      let base = r * stride in
      for j = 0 to structural - 1 do
        st.a.{base + 1 + j} <- acc.(j)
      done;
      st.a.{base} <- rhs;
      (match rel with
      | Leq ->
          let s = !next_slack in
          incr next_slack;
          st.a.{base + 1 + s} <- 1.0;
          st.basis.(r) <- s
      | Geq ->
          let s = !next_slack in
          incr next_slack;
          st.a.{base + 1 + s} <- -1.0;
          let art = !next_art in
          incr next_art;
          st.a.{base + 1 + art} <- 1.0;
          st.basis.(r) <- art
      | Eq ->
          let art = !next_art in
          incr next_art;
          st.a.{base + 1 + art} <- 1.0;
          st.basis.(r) <- art))
    rewritten;
  let is_artificial j = j >= structural + n_slack in
  Obs.incr c_cold;
  (* 4. Phase 1: minimize the sum of artificials. *)
  let infeasible = ref false in
  if n_art > 0 then begin
    set_objective st (fun j -> if is_artificial j then 1.0 else 0.0);
    let before = st.n_pivots in
    (match primal st with
    | `Unbounded -> assert false (* bounded below by 0 *)
    | `Optimal -> if -.st.obj.{0} > phase1_tol then infeasible := true);
    Obs.add c_phase1 (st.n_pivots - before);
    if not !infeasible then
      (* Drive residual zero-valued artificials out of the basis; redundant
         rows keep theirs, harmlessly, because artificial columns are barred
         below. *)
      for r = 0 to st.m - 1 do
        if is_artificial st.basis.(r) then begin
          let found = ref (-1) in
          for j = 0 to structural + n_slack - 1 do
            if !found < 0 && Float.abs (coef st r j) > pivot_tol then found := j
          done;
          if !found >= 0 then pivot st r !found
        end
      done
  end;
  if !infeasible then begin
    st.last <- Infeasible;
    st
  end
  else begin
    (* 5. Phase 2 over the real objective; artificials are barred for the
       rest of the state's life (warm rounds included). *)
    for j = structural + n_slack to width - 1 do
      st.barred.(j) <- true
    done;
    let cost = canonical_cost ~recover ~structural p.minimize in
    set_objective st (fun j -> if j < structural then cost.(j) else 0.0);
    st.degen_streak <- 0;
    st.bland <- false;
    let before = st.n_pivots in
    (match primal st with
    | `Unbounded -> st.last <- Unbounded
    | `Optimal -> st.last <- extract st);
    Obs.add c_phase2 (st.n_pivots - before);
    st
  end

let solve_incremental p =
  let st = build p in
  (st, st.last)

let solve p = (build p).last

(* ------------------------------------------------------------------ *)
(* Warm re-optimization                                                *)
(* ------------------------------------------------------------------ *)

let grow st ~rows ~cols =
  let need_w = st.width + cols + 1 in
  let need_m = st.m + rows in
  let cap_rows = V.F.length st.a / st.stride in
  if need_w > st.stride then begin
    let stride' = max need_w (st.stride * 2) in
    let cap' = max need_m (cap_rows * 2) in
    let a' = V.F.make (cap' * stride') 0.0 in
    for i = 0 to st.m - 1 do
      V.F.blit st.a (i * st.stride) a' (i * stride') (st.width + 1)
    done;
    let obj' = V.F.make stride' 0.0 in
    V.F.blit st.obj 0 obj' 0 (st.width + 1);
    st.a <- a';
    st.obj <- obj';
    st.stride <- stride'
  end
  else if need_m > cap_rows then begin
    let cap' = max need_m (cap_rows * 2) in
    let a' = V.F.make (cap' * st.stride) 0.0 in
    V.F.blit st.a 0 a' 0 (st.m * st.stride);
    st.a <- a'
  end;
  if Array.length st.basis < need_m then begin
    let b' = Array.make (max need_m (Array.length st.basis * 2)) (-1) in
    Array.blit st.basis 0 b' 0 st.m;
    st.basis <- b'
  end;
  if Array.length st.barred < st.width + cols then begin
    let b' = Array.make (max (st.width + cols) (Array.length st.barred * 2)) false in
    Array.blit st.barred 0 b' 0 st.width;
    st.barred <- b'
  end

(* Append one <= row (canonical coefficients scaled by [sgn]) with a fresh
   basic slack, reduced against the current basis. *)
let append_leq st acc rhs sgn =
  grow st ~rows:1 ~cols:1;
  let slack = st.width in
  st.width <- st.width + 1;
  st.barred.(slack) <- false;
  let r = st.m in
  st.m <- st.m + 1;
  let base = r * st.stride in
  V.F.fill_range st.a base st.stride 0.0;
  for j = 0 to st.structural - 1 do
    st.a.{base + 1 + j} <- sgn *. acc.(j)
  done;
  st.a.{base + 1 + slack} <- 1.0;
  st.a.{base} <- sgn *. rhs;
  (* Zero out the basic columns of the new row: basic columns are unit
     columns in the old rows, so one elimination pass per old row does it. *)
  for i = 0 to r - 1 do
    let b = st.basis.(i) in
    let f = st.a.{base + 1 + b} in
    if f <> 0.0 then begin
      let bi = i * st.stride in
      for j = 0 to st.width do
        st.a.{base + j} <- st.a.{base + j} -. (f *. st.a.{bi + j})
      done;
      st.a.{base + 1 + b} <- 0.0
    end
  done;
  st.basis.(r) <- slack

(* Cold rebuild of the whole state in place — the fallback when the dual
   simplex stalls or the previous outcome was Unbounded. *)
let rebuild st =
  Obs.incr c_rebuilds;
  let p =
    { st.prob with constraints = st.prob.constraints @ List.rev st.added }
  in
  let fresh = build p in
  st.recover <- fresh.recover;
  st.dual_layout <- false;
  st.a <- fresh.a;
  st.stride <- fresh.stride;
  st.m <- fresh.m;
  st.width <- fresh.width;
  st.obj <- fresh.obj;
  st.basis <- fresh.basis;
  st.barred <- fresh.barred;
  st.n_pivots <- st.n_pivots + fresh.n_pivots;
  st.degen_streak <- 0;
  st.bland <- false;
  st.last <- fresh.last;
  st.last

let add_constraint st c =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= st.prob.n_vars then
        invalid_arg "Simplex_float.add_constraint: variable out of range")
    c.coeffs;
  check_constr ~what:"Simplex_float.add_constraint" c;
  st.added <- c :: st.added;
  match st.last with
  | Infeasible ->
      (* Adding a row only shrinks the feasible region. *)
      Infeasible
  | Unbounded ->
      (* No optimal basis to warm-start from; the new row may bound the
         problem, so rebuild cold. *)
      rebuild st
  | Optimal _ -> (
      Obs.incr c_warm;
      let acc, rhs = rewrite ~recover:st.recover ~structural:st.structural c in
      (match c.relation with
      | Leq -> append_leq st acc rhs 1.0
      | Geq -> append_leq st acc rhs (-1.0)
      | Eq ->
          append_leq st acc rhs 1.0;
          append_leq st acc rhs (-1.0));
      match dual st with
      | `Stalled -> rebuild st
      | `Infeasible ->
          st.last <- Infeasible;
          Infeasible
      | `Optimal -> (
          (* The dual pass restores primal feasibility and preserves dual
             feasibility, so this is optimal; a primal polish pass mops up
             any rounding-induced negative reduced costs (usually zero
             pivots). *)
          st.degen_streak <- 0;
          st.bland <- false;
          match primal st with
          | `Unbounded ->
              st.last <- Unbounded;
              Unbounded
          | `Optimal ->
              st.last <- extract st;
              st.last))

(* ------------------------------------------------------------------ *)
(* Cross-solve warm starts: dual simplex from a crash-pivoted slack     *)
(* basis                                                                *)
(* ------------------------------------------------------------------ *)

let basis_hint st =
  let inv = Array.make (max 1 st.structural) (-1) in
  Array.iteri
    (fun i r ->
      match r with
      | Shifted (c, _) | Mirrored (c, _) -> inv.(c) <- i
      | Split (cp, cm) ->
          inv.(cp) <- i;
          inv.(cm) <- i)
    st.recover;
  let vars = ref [] in
  for r = 0 to st.m - 1 do
    let b = st.basis.(r) in
    if b >= 0 && b < st.structural && inv.(b) >= 0 then vars := inv.(b) :: !vars
  done;
  List.sort_uniq compare !vars

(* A dual-startable tableau: every constraint rewritten as <= with a basic
   slack and no rhs sign normalization, so the canonical origin is a basis
   straight away — dual feasible whenever every canonical objective
   coefficient is nonnegative (the LP (3) pricing family: minimize a
   nonnegative combination of lower-bounded variables). Returns [None]
   when the objective disqualifies the problem. *)
let build_dual ~hint p =
  let recover, structural, all_constraints = assign_columns p in
  let cost = canonical_cost ~recover ~structural p.minimize in
  if Array.exists (fun c -> c < 0.0) cost then None
  else begin
    let rows =
      List.concat_map
        (fun c ->
          let acc, rhs = rewrite ~recover ~structural c in
          match c.relation with
          | Leq -> [ (acc, rhs) ]
          | Geq -> [ (Array.map (fun x -> -.x) acc, -.rhs) ]
          | Eq -> [ (Array.copy acc, rhs); (Array.map (fun x -> -.x) acc, -.rhs) ])
        all_constraints
    in
    let m = List.length rows in
    let width = structural + m in
    let stride = width + 1 + 16 in
    let mcap = m + 16 in
    let st =
      {
        prob = p;
        recover;
        structural;
        dual_layout = true;
        added = [];
        a = V.F.make (max 1 (mcap * stride)) 0.0;
        stride;
        m;
        width;
        obj = V.F.make stride 0.0;
        basis = Array.make (max 1 mcap) (-1);
        barred = Array.make (max 1 (stride - 1)) false;
        n_pivots = 0;
        degen_streak = 0;
        bland = false;
        last = Infeasible;
      }
    in
    List.iteri
      (fun r (acc, rhs) ->
        let base = r * stride in
        for j = 0 to structural - 1 do
          st.a.{base + 1 + j} <- acc.(j)
        done;
        st.a.{base} <- rhs;
        st.a.{base + 1 + structural + r} <- 1.0;
        st.basis.(r) <- structural + r)
      rows;
    set_objective st (fun j -> if j < structural then cost.(j) else 0.0);
    (* Crash pivots: drive the hinted variables (an adjacent solve's basis)
       into this basis before the dual pass. May break dual feasibility of
       the objective row; the primal polish after [dual] absorbs that. *)
    let crashed = ref false in
    let basic = Array.make (max 1 width) false in
    for r = 0 to st.m - 1 do
      basic.(st.basis.(r)) <- true
    done;
    List.iter
      (fun i ->
        if i >= 0 && i < p.n_vars then
          match recover.(i) with
          | Split _ -> ()
          | Shifted (c, _) | Mirrored (c, _) ->
              if not basic.(c) then begin
                let best_r = ref (-1) and best = ref 1e-7 in
                for r = 0 to st.m - 1 do
                  if st.basis.(r) >= structural then begin
                    let v = Float.abs (coef st r c) in
                    if v > !best then begin
                      best := v;
                      best_r := r
                    end
                  end
                done;
                if !best_r >= 0 then begin
                  basic.(st.basis.(!best_r)) <- false;
                  basic.(c) <- true;
                  pivot st !best_r c;
                  crashed := true
                end
              end)
      hint;
    Some (st, !crashed)
  end

let solve_dual_incremental ?(hint = []) p =
  match build_dual ~hint p with
  | None -> solve_incremental p
  | Some (st, crashed) -> (
      Obs.incr c_warm;
      match dual st with
      | `Stalled ->
          (* Numerical trouble; a cold two-phase solve is the safe answer. *)
          solve_incremental p
      | `Infeasible ->
          if crashed then solve_incremental p
          else begin
            st.last <- Infeasible;
            (st, Infeasible)
          end
      | `Optimal -> (
          (* Primal feasible now; polish away any negative reduced costs
             the crash pivots left behind (usually zero pivots). *)
          st.degen_streak <- 0;
          st.bland <- false;
          match primal st with
          | `Unbounded ->
              st.last <- Unbounded;
              (st, Unbounded)
          | `Optimal ->
              st.last <- extract st;
              (st, st.last)))

(* ------------------------------------------------------------------ *)
(* In-place re-solve after a rhs/cost/bounds-only change                *)
(* ------------------------------------------------------------------ *)

(* [patch st p'] re-targets a dual-layout state at a structurally
   identical problem whose rhs, objective, and bound {e values} changed
   (the coefficient pattern, relations, and bound {e shape} — which sides
   are finite — must be bitwise identical). Returns [None] when the state
   cannot be patched (not dual layout, structural mismatch, or a negative
   canonical cost, which the dual start cannot price); the caller falls
   back to a fresh [solve_dual_incremental].

   Why it works: in the dual layout every row [k]'s slack is column
   [structural + k], and slack columns start as unit columns, so after any
   pivot sequence [coef st i (structural+k) = (B^-1)_{i,k}]. The current
   tableau rows are [B^-1 A | B^-1 b]; only [b] changed, so the new rhs
   column is [B^-1 b' = sum_k coef(i, structural+k) * b'_k] — an O(m^2)
   rewrite that keeps the factorized basis and every appended cut. *)
let patch st (p' : problem) =
  if not st.dual_layout then None
  else if p'.n_vars <> st.prob.n_vars then None
  else begin
    let p = st.prob in
    let shape_ok = ref true in
    for i = 0 to p.n_vars - 1 do
      if
        Option.is_some p.lower.(i) <> Option.is_some p'.lower.(i)
        || Option.is_some p.upper.(i) <> Option.is_some p'.upper.(i)
      then shape_ok := false
    done;
    let same_coeffs (c : constr) (c' : constr) =
      c.relation = c'.relation
      && (try List.for_all2 (fun (i, a) (i', a') -> i = i' && a = a') c.coeffs c'.coeffs
          with Invalid_argument _ -> false)
    in
    if
      (not !shape_ok)
      || List.length p.constraints <> List.length p'.constraints
      || not (List.for_all2 same_coeffs p.constraints p'.constraints)
    then None
    else begin
      List.iter (check_constr ~what:"Simplex_float.patch") p'.constraints;
      List.iter
        (fun (i, a) ->
          check_finite ~what:"Simplex_float.patch"
            ~where:(Printf.sprintf "objective coefficient of %s" (p'.var_name i))
            a)
        p'.minimize;
      (* Same bound shape => same column assignment; recompute recover for
         the new bound values and require a dual-startable objective. *)
      let recover', structural', all_constraints' = assign_columns p' in
      if structural' <> st.structural then None
      else begin
        let cost = canonical_cost ~recover:recover' ~structural:structural' p'.minimize in
        if Array.exists (fun c -> c < 0.0) cost then None
        else begin
          Obs.incr c_patches;
          (* New per-row rhs, in tableau row order: the build_dual expansion
             of the (re-based) constraints, then every appended cut replayed
             through [add_constraint]'s expansion. *)
          let rows =
            List.concat_map
              (fun c ->
                let rhs = rewrite_rhs ~recover:recover' c in
                match c.relation with
                | Leq -> [ rhs ]
                | Geq -> [ -.rhs ]
                | Eq -> [ rhs; -.rhs ])
              all_constraints'
            @ List.concat_map
                (fun c ->
                  let rhs = rewrite_rhs ~recover:recover' c in
                  match c.relation with
                  | Leq -> [ rhs ]
                  | Geq -> [ -.rhs ]
                  | Eq -> [ rhs; -.rhs ])
                (List.rev st.added)
          in
          if List.length rows <> st.m then None
          else begin
            let b' = Array.of_list rows in
            st.prob <- p';
            st.recover <- recover';
            let rhs' = Array.make st.m 0.0 in
            for i = 0 to st.m - 1 do
              let acc = ref 0.0 in
              for k = 0 to st.m - 1 do
                let binv = coef st i (st.structural + k) in
                if binv <> 0.0 then acc := !acc +. (binv *. b'.(k))
              done;
              rhs'.(i) <- !acc
            done;
            for i = 0 to st.m - 1 do
              st.a.{i * st.stride} <- rhs'.(i)
            done;
            set_objective st (fun j -> if j < st.structural then cost.(j) else 0.0);
            st.degen_streak <- 0;
            st.bland <- false;
            (* The dual pass restores primal feasibility; it may start dual
               infeasible (the basis was optimal for the old objective), so
               a primal polish follows, exactly as after crash pivots. A
               stall or a spurious infeasibility verdict falls back to the
               cold rebuild, which is always safe. *)
            match dual st with
            | `Stalled | `Infeasible -> Some (rebuild st)
            | `Optimal -> (
                match primal st with
                | `Unbounded ->
                    st.last <- Unbounded;
                    Some Unbounded
                | `Optimal ->
                    st.last <- extract st;
                    Some st.last)
          end
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Pretty-printing (mirrors Simplex.Make)                               *)
(* ------------------------------------------------------------------ *)

let pp_relation fmt = function
  | Leq -> Format.pp_print_string fmt "<="
  | Geq -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp_problem fmt p =
  let pp_terms fmt coeffs =
    if coeffs = [] then Format.pp_print_string fmt "0"
    else
      List.iteri
        (fun k (i, c) ->
          if k > 0 then Format.pp_print_string fmt " + ";
          Format.fprintf fmt "%.12g*%s" c (p.var_name i))
        coeffs
  in
  Format.fprintf fmt "minimize %a@." pp_terms p.minimize;
  List.iter
    (fun c ->
      Format.fprintf fmt "  [%s] %a %a %.12g@." c.label pp_terms c.coeffs
        pp_relation c.relation c.rhs)
    p.constraints;
  Array.iteri
    (fun i (lo, up) ->
      let s = function None -> "inf" | Some x -> Printf.sprintf "%.12g" x in
      Format.fprintf fmt "  %s in [%s, %s]@." (p.var_name i) (s lo) (s up))
    (Array.map2 (fun a b -> (a, b)) p.lower p.upper)
