(** Plain-text instance serialization, so instances can be saved, shared
    and fed to the CLI.

    Format (comment lines start with [#]; whitespace separated):

    {v
    # broadcast network design instance
    nodes 5
    root 0
    edge 0 1 2.5        # u v weight
    edge 1 2 1/3        # rationals allowed
    tree 0 1 3 4        # optional: target tree edge ids (by declaration order)
    subsidy 2 0.75      # optional: edge id, amount
    budget 5            # optional: subsidy budget cap
    v}

    Weights are parsed by the field's own reader, so the same file loads
    into the float and the exact-rational stacks (floats parse "1/3" too,
    by division). Writers always emit the field's [to_string]. *)

module Make (F : Repro_field.Field.S) = struct
  module Gm = Repro_game.Game.Make (F)
  module G = Gm.G

  type t = {
    graph : G.t;
    root : int;
    tree_edge_ids : int list option;
    subsidy : (int * F.t) list;
    budget : F.t option;
  }

  let parse_weight s =
    match String.index_opt s '/' with
    | Some i -> (
        let num = String.sub s 0 i and den = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt num, int_of_string_opt den) with
        | Some n, Some d when d <> 0 -> F.div (F.of_int n) (F.of_int d)
        | _ -> failwith (Printf.sprintf "Serial: cannot parse weight %S" s))
    | None -> (
        (* Integers go through of_int to stay exact in the rational field;
           decimals are only meaningful for the float field. *)
        match int_of_string_opt s with
        | Some i -> F.of_int i
        | None -> (
            match float_of_string_opt s with
            | Some f ->
                (* Scale through a power of ten to keep rationals exact. *)
                let scaled = Float.round (f *. 1e6) in
                F.div (F.of_int (int_of_float scaled)) (F.of_int 1_000_000)
            | None -> failwith (Printf.sprintf "Serial: cannot parse weight %S" s)))

  let of_string text =
    let nodes = ref None in
    let root = ref 0 in
    let edges = ref [] in
    let tree = ref None in
    let subsidy = ref [] in
    let budget = ref None in
    String.split_on_char '\n' text
    |> List.iteri (fun lineno line ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let fail msg = failwith (Printf.sprintf "Serial line %d: %s" (lineno + 1) msg) in
           let int_arg what s =
             match int_of_string_opt s with
             | Some i -> i
             | None -> fail (Printf.sprintf "%s: bad integer %S" what s)
           in
           let weight_arg s =
             try parse_weight s with Failure msg -> fail msg
           in
           match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
           | [] -> ()
           | [ "nodes"; n ] -> nodes := Some (int_arg "nodes" n)
           | "nodes" :: _ -> fail "'nodes' expects exactly one count"
           | [ "root"; r ] -> root := int_arg "root" r
           | "root" :: _ -> fail "'root' expects exactly one node"
           | [ "edge"; u; v; w ] ->
               edges := (int_arg "edge endpoint" u, int_arg "edge endpoint" v, weight_arg w) :: !edges
           | "edge" :: _ -> fail "'edge' expects 'edge u v weight'"
           | "tree" :: (_ :: _ as ids) ->
               tree := Some (lineno + 1, List.map (int_arg "tree edge id") ids)
           | [ "tree" ] -> fail "'tree' expects at least one edge id"
           | [ "subsidy"; id; amount ] ->
               subsidy := (lineno + 1, int_arg "subsidy edge id" id, weight_arg amount) :: !subsidy
           | "subsidy" :: _ -> fail "'subsidy' expects 'subsidy edge_id amount'"
           | [ "budget"; b ] -> budget := Some (weight_arg b)
           | "budget" :: _ -> fail "'budget' expects exactly one amount"
           | tok :: _ -> fail (Printf.sprintf "unknown directive %S" tok))
    |> ignore;
    let n = match !nodes with Some n -> n | None -> failwith "Serial: missing 'nodes'" in
    let graph = G.create ~n (List.rev !edges) in
    if !root < 0 || !root >= n then failwith "Serial: root out of range";
    (* Edge ids are only meaningful once every 'edge' line has been seen, so
       referential validation runs after the graph is built — but still
       fails with the referencing line's number, not a late crash in
       [subsidy_array]/[target_tree] long after parsing. *)
    let m = G.n_edges graph in
    let check_id what lineno id =
      if id < 0 || id >= m then
        failwith
          (Printf.sprintf
             "Serial line %d: %s references nonexistent edge id %d (instance has %d edges)"
             lineno what id m)
    in
    (match !tree with
    | Some (lineno, ids) -> List.iter (check_id "'tree'" lineno) ids
    | None -> ());
    List.iter (fun (lineno, id, _) -> check_id "'subsidy'" lineno id) (List.rev !subsidy);
    {
      graph;
      root = !root;
      tree_edge_ids = Option.map snd !tree;
      subsidy = List.rev_map (fun (_, id, v) -> (id, v)) !subsidy;
      budget = !budget;
    }

  let to_string t =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "# broadcast network design instance\n";
    Buffer.add_string buf (Printf.sprintf "nodes %d\n" (G.n_nodes t.graph));
    Buffer.add_string buf (Printf.sprintf "root %d\n" t.root);
    (match t.budget with
    | Some b -> Buffer.add_string buf (Printf.sprintf "budget %s\n" (F.to_string b))
    | None -> ());
    G.fold_edges t.graph ~init:() ~f:(fun () e ->
        Buffer.add_string buf
          (Printf.sprintf "edge %d %d %s\n" e.G.u e.G.v (F.to_string e.G.weight)));
    (match t.tree_edge_ids with
    | Some ids ->
        Buffer.add_string buf
          ("tree " ^ String.concat " " (List.map string_of_int ids) ^ "\n")
    | None -> ());
    List.iter
      (fun (id, b) -> Buffer.add_string buf (Printf.sprintf "subsidy %d %s\n" id (F.to_string b)))
      t.subsidy;
    Buffer.contents buf

  let load path =
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    of_string text

  let save path t =
    let oc = open_out path in
    output_string oc (to_string t);
    close_out oc

  (** The subsidy list as a dense per-edge array. *)
  let subsidy_array t =
    let b = Array.make (G.n_edges t.graph) F.zero in
    List.iter
      (fun (id, v) ->
        if id < 0 || id >= Array.length b then failwith "Serial: subsidy edge id out of range";
        b.(id) <- v)
      t.subsidy;
    b

  (** The declared target tree (or the MST when none is declared). *)
  let target_tree t =
    let ids =
      match t.tree_edge_ids with
      | Some ids -> ids
      | None -> (
          match G.mst_kruskal t.graph with
          | Some ids -> ids
          | None -> failwith "Serial: disconnected instance")
    in
    G.Tree.of_edge_ids t.graph ~root:t.root ids

  (** Instance deltas: the churn vocabulary the incremental re-solve path
      speaks. Application goes through the same [G.create]/canonical-order
      machinery as parsing, so [to_string (apply d i).inst] is byte-equal
      to serializing the mutated instance built directly — [Digestx] cache
      keys stay stable across the delta path. *)
  module Delta = struct
    type inst = t

    type t =
      | Edge_weight of { edge : int; weight : F.t }
      | Add_player of { attach : (int * F.t) list }
          (** New node [n] (next dense id) wired to existing nodes; edge
              ids of the attachments are appended in list order. *)
      | Remove_player of { node : int }
          (** Nodes above [node] shift down one; surviving edges are
              renumbered compactly in declaration order. *)
      | Set_budget of F.t option

    type applied = {
      inst : inst;
      edge_map : int array;
          (** old edge id -> new edge id, [-1] when the edge died. *)
      dirty_edges : int list;
          (** new-instance ids of edges whose weight changed or that are
              new; cache invalidation granularity for weight deltas. *)
      structural : bool;
          (** Node/edge ids were renumbered or the node set changed —
              edge-keyed caches for the old instance are wholesale stale. *)
    }

    let fail fmt = Printf.ksprintf failwith ("Delta: " ^^ fmt)

    let triples g =
      G.fold_edges g ~init:[] ~f:(fun acc e -> (e.G.u, e.G.v, e.G.weight) :: acc)
      |> List.rev

    let identity_map m = Array.init m Fun.id

    let apply inst = function
      | Edge_weight { edge; weight } ->
          let m = G.n_edges inst.graph in
          if edge < 0 || edge >= m then
            fail "edge_weight references nonexistent edge id %d" edge;
          if F.lt weight F.zero then fail "edge_weight: negative weight on edge %d" edge;
          let graph =
            G.with_weights inst.graph (fun e -> if e.G.id = edge then weight else e.G.weight)
          in
          {
            inst = { inst with graph };
            edge_map = identity_map m;
            dirty_edges = [ edge ];
            structural = false;
          }
      | Add_player { attach } ->
          if attach = [] then fail "add_player needs at least one attachment edge";
          let n = G.n_nodes inst.graph and m = G.n_edges inst.graph in
          List.iter
            (fun (u, w) ->
              if u < 0 || u >= n then fail "add_player attaches to nonexistent node %d" u;
              if F.lt w F.zero then fail "add_player: negative attachment weight")
            attach;
          let fresh = List.map (fun (u, w) -> (u, n, w)) attach in
          let graph = G.create ~n:(n + 1) (triples inst.graph @ fresh) in
          (* The old target tree no longer spans the new node. *)
          {
            inst = { inst with graph; tree_edge_ids = None };
            edge_map = identity_map m;
            dirty_edges = List.init (List.length attach) (fun i -> m + i);
            structural = true;
          }
      | Remove_player { node } ->
          let n = G.n_nodes inst.graph and m = G.n_edges inst.graph in
          if node < 0 || node >= n then fail "remove_player: nonexistent node %d" node;
          if node = inst.root then fail "remove_player: cannot remove the root";
          if n <= 2 then fail "remove_player: instance would have no players left";
          let shift x = if x > node then x - 1 else x in
          let edge_map = Array.make m (-1) in
          let next = ref 0 in
          let surviving =
            G.fold_edges inst.graph ~init:[] ~f:(fun acc e ->
                if e.G.u = node || e.G.v = node then acc
                else begin
                  edge_map.(e.G.id) <- !next;
                  incr next;
                  (shift e.G.u, shift e.G.v, e.G.weight) :: acc
                end)
            |> List.rev
          in
          let graph = G.create ~n:(n - 1) surviving in
          if not (G.is_connected graph) then
            fail "remove_player: removing node %d disconnects the instance" node;
          let subsidy =
            List.filter_map
              (fun (id, b) ->
                let id' = edge_map.(id) in
                if id' >= 0 then Some (id', b) else None)
              inst.subsidy
          in
          {
            inst =
              {
                graph;
                root = shift inst.root;
                tree_edge_ids = None;
                subsidy;
                budget = inst.budget;
              };
            edge_map;
            dirty_edges = [];
            structural = true;
          }
      | Set_budget b ->
          (match b with
          | Some v when F.lt v F.zero -> fail "set_budget: negative budget"
          | _ -> ());
          {
            inst = { inst with budget = b };
            edge_map = identity_map (G.n_edges inst.graph);
            dirty_edges = [];
            structural = false;
          }

    let apply_all inst deltas = List.fold_left (fun i d -> (apply i d).inst) inst deltas

    (* One-line text form for wire payloads and churn traces:
         edge_weight ID W | add_player U1 W1 [U2 W2 ...]
         | remove_player NODE | set_budget B|none *)
    let to_string = function
      | Edge_weight { edge; weight } ->
          Printf.sprintf "edge_weight %d %s" edge (F.to_string weight)
      | Add_player { attach } ->
          "add_player "
          ^ String.concat " "
              (List.concat_map (fun (u, w) -> [ string_of_int u; F.to_string w ]) attach)
      | Remove_player { node } -> Printf.sprintf "remove_player %d" node
      | Set_budget None -> "set_budget none"
      | Set_budget (Some b) -> Printf.sprintf "set_budget %s" (F.to_string b)

    let of_string line =
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let int_arg what s =
        match int_of_string_opt s with
        | Some i -> i
        | None -> fail "%s: bad integer %S" what s
      in
      let weight_arg s = try parse_weight s with Failure _ -> fail "bad weight %S" s in
      let rec attach_pairs = function
        | [] -> []
        | [ _ ] -> fail "add_player expects 'add_player u1 w1 [u2 w2 ...]'"
        | u :: w :: rest ->
            (int_arg "add_player node" u, weight_arg w) :: attach_pairs rest
      in
      match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
      | [ "edge_weight"; id; w ] ->
          Edge_weight { edge = int_arg "edge_weight edge id" id; weight = weight_arg w }
      | "edge_weight" :: _ -> fail "edge_weight expects 'edge_weight edge_id weight'"
      | "add_player" :: (_ :: _ as rest) -> Add_player { attach = attach_pairs rest }
      | [ "add_player" ] -> fail "add_player needs at least one attachment edge"
      | [ "remove_player"; v ] -> Remove_player { node = int_arg "remove_player node" v }
      | "remove_player" :: _ -> fail "remove_player expects 'remove_player node'"
      | [ "set_budget"; "none" ] -> Set_budget None
      | [ "set_budget"; b ] -> Set_budget (Some (weight_arg b))
      | "set_budget" :: _ -> fail "set_budget expects 'set_budget amount|none'"
      | [] -> fail "empty delta"
      | tok :: _ -> fail "unknown delta %S" tok

    (* Multi-line trace: one delta per line, [#] comments and blanks
       skipped; failures carry the offending line number. *)
    let list_of_string text =
      String.split_on_char '\n' text
      |> List.mapi (fun lineno line -> (lineno + 1, line))
      |> List.filter_map (fun (lineno, line) ->
             let stripped =
               match String.index_opt line '#' with
               | Some i -> String.sub line 0 i
               | None -> line
             in
             if String.trim stripped = "" then None
             else
               match of_string line with
               | d -> Some d
               | exception Failure msg ->
                   failwith (Printf.sprintf "%s (line %d)" msg lineno))

    let list_to_string deltas = String.concat "\n" (List.map to_string deltas) ^ "\n"
  end
end

module Float = Make (Repro_field.Field.Float_field)
module Rat = Make (Repro_field.Field.Rat)
