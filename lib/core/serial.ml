(** Plain-text instance serialization, so instances can be saved, shared
    and fed to the CLI.

    Format (comment lines start with [#]; whitespace separated):

    {v
    # broadcast network design instance
    nodes 5
    root 0
    edge 0 1 2.5        # u v weight
    edge 1 2 1/3        # rationals allowed
    tree 0 1 3 4        # optional: target tree edge ids (by declaration order)
    subsidy 2 0.75      # optional: edge id, amount
    v}

    Weights are parsed by the field's own reader, so the same file loads
    into the float and the exact-rational stacks (floats parse "1/3" too,
    by division). Writers always emit the field's [to_string]. *)

module Make (F : Repro_field.Field.S) = struct
  module Gm = Repro_game.Game.Make (F)
  module G = Gm.G

  type t = {
    graph : G.t;
    root : int;
    tree_edge_ids : int list option;
    subsidy : (int * F.t) list;
  }

  let parse_weight s =
    match String.index_opt s '/' with
    | Some i -> (
        let num = String.sub s 0 i and den = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt num, int_of_string_opt den) with
        | Some n, Some d when d <> 0 -> F.div (F.of_int n) (F.of_int d)
        | _ -> failwith (Printf.sprintf "Serial: cannot parse weight %S" s))
    | None -> (
        (* Integers go through of_int to stay exact in the rational field;
           decimals are only meaningful for the float field. *)
        match int_of_string_opt s with
        | Some i -> F.of_int i
        | None -> (
            match float_of_string_opt s with
            | Some f ->
                (* Scale through a power of ten to keep rationals exact. *)
                let scaled = Float.round (f *. 1e6) in
                F.div (F.of_int (int_of_float scaled)) (F.of_int 1_000_000)
            | None -> failwith (Printf.sprintf "Serial: cannot parse weight %S" s)))

  let of_string text =
    let nodes = ref None in
    let root = ref 0 in
    let edges = ref [] in
    let tree = ref None in
    let subsidy = ref [] in
    String.split_on_char '\n' text
    |> List.iteri (fun lineno line ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let fail msg = failwith (Printf.sprintf "Serial line %d: %s" (lineno + 1) msg) in
           let int_arg what s =
             match int_of_string_opt s with
             | Some i -> i
             | None -> fail (Printf.sprintf "%s: bad integer %S" what s)
           in
           let weight_arg s =
             try parse_weight s with Failure msg -> fail msg
           in
           match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
           | [] -> ()
           | [ "nodes"; n ] -> nodes := Some (int_arg "nodes" n)
           | "nodes" :: _ -> fail "'nodes' expects exactly one count"
           | [ "root"; r ] -> root := int_arg "root" r
           | "root" :: _ -> fail "'root' expects exactly one node"
           | [ "edge"; u; v; w ] ->
               edges := (int_arg "edge endpoint" u, int_arg "edge endpoint" v, weight_arg w) :: !edges
           | "edge" :: _ -> fail "'edge' expects 'edge u v weight'"
           | "tree" :: (_ :: _ as ids) ->
               tree := Some (lineno + 1, List.map (int_arg "tree edge id") ids)
           | [ "tree" ] -> fail "'tree' expects at least one edge id"
           | [ "subsidy"; id; amount ] ->
               subsidy := (lineno + 1, int_arg "subsidy edge id" id, weight_arg amount) :: !subsidy
           | "subsidy" :: _ -> fail "'subsidy' expects 'subsidy edge_id amount'"
           | tok :: _ -> fail (Printf.sprintf "unknown directive %S" tok))
    |> ignore;
    let n = match !nodes with Some n -> n | None -> failwith "Serial: missing 'nodes'" in
    let graph = G.create ~n (List.rev !edges) in
    if !root < 0 || !root >= n then failwith "Serial: root out of range";
    (* Edge ids are only meaningful once every 'edge' line has been seen, so
       referential validation runs after the graph is built — but still
       fails with the referencing line's number, not a late crash in
       [subsidy_array]/[target_tree] long after parsing. *)
    let m = G.n_edges graph in
    let check_id what lineno id =
      if id < 0 || id >= m then
        failwith
          (Printf.sprintf
             "Serial line %d: %s references nonexistent edge id %d (instance has %d edges)"
             lineno what id m)
    in
    (match !tree with
    | Some (lineno, ids) -> List.iter (check_id "'tree'" lineno) ids
    | None -> ());
    List.iter (fun (lineno, id, _) -> check_id "'subsidy'" lineno id) (List.rev !subsidy);
    {
      graph;
      root = !root;
      tree_edge_ids = Option.map snd !tree;
      subsidy = List.rev_map (fun (_, id, v) -> (id, v)) !subsidy;
    }

  let to_string t =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "# broadcast network design instance\n";
    Buffer.add_string buf (Printf.sprintf "nodes %d\n" (G.n_nodes t.graph));
    Buffer.add_string buf (Printf.sprintf "root %d\n" t.root);
    G.fold_edges t.graph ~init:() ~f:(fun () e ->
        Buffer.add_string buf
          (Printf.sprintf "edge %d %d %s\n" e.G.u e.G.v (F.to_string e.G.weight)));
    (match t.tree_edge_ids with
    | Some ids ->
        Buffer.add_string buf
          ("tree " ^ String.concat " " (List.map string_of_int ids) ^ "\n")
    | None -> ());
    List.iter
      (fun (id, b) -> Buffer.add_string buf (Printf.sprintf "subsidy %d %s\n" id (F.to_string b)))
      t.subsidy;
    Buffer.contents buf

  let load path =
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    of_string text

  let save path t =
    let oc = open_out path in
    output_string oc (to_string t);
    close_out oc

  (** The subsidy list as a dense per-edge array. *)
  let subsidy_array t =
    let b = Array.make (G.n_edges t.graph) F.zero in
    List.iter
      (fun (id, v) ->
        if id < 0 || id >= Array.length b then failwith "Serial: subsidy edge id out of range";
        b.(id) <- v)
      t.subsidy;
    b

  (** The declared target tree (or the MST when none is declared). *)
  let target_tree t =
    let ids =
      match t.tree_edge_ids with
      | Some ids -> ids
      | None -> (
          match G.mst_kruskal t.graph with
          | Some ids -> ids
          | None -> failwith "Serial: disconnected instance")
    in
    G.Tree.of_edge_ids t.graph ~root:t.root ids
end

module Float = Make (Repro_field.Field.Float_field)
module Rat = Make (Repro_field.Field.Rat)
