(** Branch-and-bound STABLE NETWORK DESIGN engine.

    The seed solver ([Snd]) enumerated every spanning tree and priced each
    with LP (3). This engine replaces the enumeration with a best-first
    search over the Lawler partition of spanning trees
    ({!Repro_graph.Wgraph.Make.Enumerate.by_weight}): trees arrive in
    nondecreasing weight, so [exact_small] can stop at the first affordable
    weight class, and the frontier computation can stop once a zero-cost
    (self-enforcing) tree has been priced. Two more layers cut LP work:

    - {b admissible pruning} — {!Lower_bounds.Make.broadcast_enforcement_lb}
      gives a certified lower bound on a tree's enforcement cost; a tree
      whose bound already exceeds the budget (or the best priced cost, for
      the frontier) is discarded unpriced;
    - {b pricing acceleration} — an LRU cache keyed by canonical sorted
      edge-id lists absorbs re-priced trees, and the float instantiation
      can opt into warm-started dual-simplex solves that reuse the previous
      tree's optimal basis ({!Float.warm_kernel_pricer}).

    Search is optionally domain-parallel: candidates are pulled from the
    weight-ordered stream in batches and priced on a persistent
    {!Repro_parallel.Parallel.Pool}, with a shared atomic incumbent letting
    workers skip trees a sibling has already beaten. Results are folded
    back in stream order, so every configuration returns exactly what the
    sequential seed solver returns (see DESIGN.md for the argument). *)

module Make (F : Repro_field.Field.S) = struct
  module Gm = Repro_game.Game.Make (F)
  module G = Gm.G
  module Sne = Sne_lp.Make (F)
  module Lb = Lower_bounds.Make (F)
  module Par = Repro_parallel.Parallel
  module Obs = Repro_obs.Obs

  let c_seen = Obs.counter "snd.trees_seen"
  let c_priced = Obs.counter "snd.trees_priced"
  let c_lb_pruned = Obs.counter "snd.lb_pruned"
  let c_inc_skips = Obs.counter "snd.incumbent_skips"
  let c_cache_hits = Obs.counter "snd.cache_hits"
  let c_cache_misses = Obs.counter "snd.cache_misses"
  let c_nodes = Obs.counter "snd.nodes_expanded"
  let c_msts = Obs.counter "snd.msts_computed"
  let c_batches = Obs.counter "snd.batches"
  let c_batch_items = Obs.counter "snd.batch_items"

  type design = {
    tree_edges : int list;
    weight : F.t;
    subsidy : F.t array;
    subsidy_cost : F.t;
  }

  type stats = {
    trees_seen : int;  (** pulled from the weight-ordered stream *)
    trees_priced : int;  (** LP (3) solves actually performed *)
    lb_pruned : int;  (** discarded by the enforcement lower bound *)
    incumbent_skips : int;  (** discarded because an incumbent already won *)
    cache_hits : int;  (** prices served from the LRU cache *)
    nodes_expanded : int;  (** Lawler subproblems branched *)
    msts_computed : int;  (** MST completions inside the generator *)
  }

  (* A pricer answers "minimum enforcement cost of this tree". [price]
     must be pure and thread-safe: parallel configurations call it from
     several domains at once. [solves] counts underlying LP solves (the
     cached wrapper shares its inner pricer's counter, so cache hits do
     not bump it). *)
  type pricer = {
    name : string;
    price : G.Tree.t -> int list -> Sne.result;
    solves : int Atomic.t;
    cache_hits : unit -> int;
    cache_misses : unit -> int;
  }

  let lp_pricer spec ~root =
    let solves = Atomic.make 0 in
    {
      name = "lp3";
      price =
        (fun tree _ids ->
          Atomic.incr solves;
          Sne.broadcast spec ~root tree);
      solves;
      cache_hits = (fun () -> 0);
      cache_misses = (fun () -> 0);
    }

  (* A sharable pricing cache: the LRU keyed by canonical sorted edge-id
     lists plus its mutex. Under churn the incremental path keeps one of
     these alive across instance deltas and evicts selectively instead of
     rebuilding the pricer (and losing every cached tree) per step. *)
  type price_cache = {
    pc_lru : (int list, Sne.result) Repro_util.Lru.t;
    pc_mu : Mutex.t;
  }

  let price_cache ~capacity =
    { pc_lru = Repro_util.Lru.create ~capacity; pc_mu = Mutex.create () }

  let pc_locked pc f =
    Mutex.lock pc.pc_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock pc.pc_mu) f

  (* Dirty-edge invalidation: evict exactly the entries whose tree
     contains a mutated edge (keys are the trees' sorted edge-id lists).
     A price for a tree CONTAINING a dirty edge is certainly stale; one
     for a tree avoiding every dirty edge can still drift through LP (3)
     deviation rows that reference the reweighted non-tree edge, so this
     granularity is for callers that re-certify prices downstream (the
     churn bench does) — callers needing exactness after an arbitrary
     reweight, or any structural delta, use [clear_price_cache]. *)
  let invalidate_edges pc dirty =
    match dirty with
    | [] -> ()
    | dirty ->
        let dirty = List.sort_uniq compare dirty in
        pc_locked pc (fun () ->
            Repro_util.Lru.filter pc.pc_lru ~f:(fun ids _ ->
                not (List.exists (fun id -> List.mem id dirty) ids)))

  let clear_price_cache pc = pc_locked pc (fun () -> Repro_util.Lru.clear pc.pc_lru)

  let cached_pricer ?(capacity = 256) ?cache inner =
    let pc = match cache with Some pc -> pc | None -> price_cache ~capacity in
    let locked f = pc_locked pc f in
    let cache = pc.pc_lru in
    {
      name = inner.name ^ "+lru";
      price =
        (fun tree ids ->
          match locked (fun () -> Repro_util.Lru.find cache ids) with
          | Some r -> r
          | None ->
              let r = inner.price tree ids in
              locked (fun () -> Repro_util.Lru.add cache ids r);
              r);
      solves = inner.solves;
      cache_hits = (fun () -> locked (fun () -> Repro_util.Lru.hits cache));
      cache_misses = (fun () -> locked (fun () -> Repro_util.Lru.misses cache));
    }

  type config = {
    domains : int;  (** 1 = sequential (no domains spawned) *)
    batch : int;  (** candidates priced per round; 0 = pick from [domains] *)
    cache : int;  (** LRU capacity for the default pricer; 0 = uncached *)
    use_lb : bool;  (** apply the enforcement-cost lower bound *)
  }

  let default_config = { domains = 1; batch = 0; cache = 256; use_lb = true }

  let zero_stats =
    {
      trees_seen = 0;
      trees_priced = 0;
      lb_pruned = 0;
      incumbent_skips = 0;
      cache_hits = 0;
      nodes_expanded = 0;
      msts_computed = 0;
    }

  (* Mirror one engine call's stats deltas into the process-wide registry
     (no-ops while observability is off). *)
  let record_stats (s : stats) ~misses =
    Obs.add c_seen s.trees_seen;
    Obs.add c_priced s.trees_priced;
    Obs.add c_lb_pruned s.lb_pruned;
    Obs.add c_inc_skips s.incumbent_skips;
    Obs.add c_cache_hits s.cache_hits;
    Obs.add c_cache_misses misses;
    Obs.add c_nodes s.nodes_expanded;
    Obs.add c_msts s.msts_computed

  (* The stream's total order: exact weight, then sorted edge ids. *)
  let beats (w, ids) (w', ids') =
    let c = F.compare w w' in
    c < 0 || (c = 0 && compare ids ids' < 0)

  (* A candidate pulled from the stream and scheduled for pricing. *)
  type cand = { cw : F.t; cids : int list; ctree : G.Tree.t; clb : F.t }

  let design_of_result (c : cand) (r : Sne.result) =
    {
      tree_edges = c.cids;
      weight = c.cw;
      subsidy = r.Sne.subsidy;
      subsidy_cost = r.Sne.cost;
    }

  let with_pool config f =
    if config.domains > 1 then begin
      let pool = Par.Pool.create ~domains:config.domains () in
      Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f (Some pool))
    end
    else f None

  let batch_size config =
    if config.batch > 0 then config.batch
    else if config.domains > 1 then 2 * config.domains
    else 1

  let default_pricer config spec ~root =
    let p = lp_pricer spec ~root in
    if config.cache > 0 then cached_pricer ~capacity:config.cache p else p

  (* Search driver shared by both entry points. [pull] extracts the next
     batch of candidates worth pricing (applying stop rules and bounds);
     [price] maps one candidate to an optional result (workers may decline,
     e.g. when an incumbent already wins); [fold] consumes results in
     stream order. *)
  let drive config pool ~pull ~price ~fold =
    let batch = batch_size config in
    let again = ref true in
    while !again do
      let cands = pull batch in
      let n = Array.length cands in
      if n = 0 then again := false
      else begin
        (* snd.batch_items / (snd.batches * batch) = parallel occupancy:
           how full the pricing rounds actually ran. *)
        Obs.incr c_batches;
        Obs.add c_batch_items n;
        let results =
          Obs.span "snd.price_batch" (fun () ->
              match pool with
              | None -> Array.map (fun c -> price (fun () -> ()) c) cands
              | Some p -> Par.Pool.map_cancellable p price cands)
        in
        Array.iteri (fun i r -> fold cands.(i) r) results
      end
    done

  (** Exact SND, returning the same design as the seed enumeration solver:
      the first affordable tree in (weight, sorted-edge-ids) order among
      the minimum-weight affordable class. Terminates as soon as the
      stream's weights exceed the incumbent's. *)
  let exact_small ?(config = default_config) ?pricer ?(poll = fun () -> ())
      ?(on_incumbent = fun (_ : design) -> ()) ~graph ~root ~budget () =
    Obs.span "snd.exact_small" @@ fun () ->
    let spec = Gm.broadcast ~graph ~root in
    let pricer =
      match pricer with Some p -> p | None -> default_pricer config spec ~root
    in
    let solves0 = Atomic.get pricer.solves in
    let hits0 = pricer.cache_hits () in
    let misses0 = pricer.cache_misses () in
    let ostats = G.Enumerate.fresh_stats () in
    let stream = ref (G.Enumerate.by_weight ~stats:ostats graph) in
    let seen = ref 0 and lb_pruned = ref 0 and inc_skips = ref 0 in
    let best = ref None in
    let exhausted = ref false in
    (* The seed's adoption test, with an exact tie-break on edge ids so
       equal-weight trees resolve to the lexicographically first one the
       seed's scan order would have kept. *)
    let promising w ids =
      match !best with
      | None -> true
      | Some d ->
          F.lt w d.weight
          || (F.compare w d.weight = 0 && compare ids d.tree_edges < 0)
    in
    let pull k =
      let acc = ref [] and count = ref 0 in
      while (not !exhausted) && !count < k do
        poll ();
        match !stream () with
        | Seq.Nil -> exhausted := true
        | Seq.Cons ((w, ids), rest) ->
            stream := rest;
            (* Weights only grow along the stream: once they exactly exceed
               the incumbent's, nothing later can beat it. (Exact ties can
               still improve the tie-break, so keep draining the class.) *)
            (match !best with
            | Some d when F.compare w d.weight > 0 -> exhausted := true
            | _ ->
                incr seen;
                if not (promising w ids) then incr inc_skips
                else begin
                  let tree = G.Tree.of_edge_ids graph ~root ids in
                  let lb =
                    if config.use_lb then Lb.broadcast_enforcement_lb spec ~root tree
                    else F.zero
                  in
                  if config.use_lb && F.lt budget lb then incr lb_pruned
                  else begin
                    acc := { cw = w; cids = ids; ctree = tree; clb = lb } :: !acc;
                    incr count
                  end
                end)
      done;
      Array.of_list (List.rev !acc)
    in
    with_pool config (fun pool ->
        (* Shared affordable incumbent in exact stream order: if a sibling
           has already certified an affordable tree that precedes candidate
           [c], then [c] cannot be the final answer and pricing it is
           wasted work. *)
        let incumbent = Par.Incumbent.create ~better:beats () in
        let price _check (c : cand) =
          (* Cancellation point before each LP solve; in parallel
             configurations this runs on worker domains, so [poll] must be
             thread-safe (the service's deadline cells are atomics). *)
          poll ();
          let dominated =
            match Par.Incumbent.get incumbent with
            | Some iv -> beats iv (c.cw, c.cids)
            | None -> false
          in
          if dominated then None
          else begin
            let r = pricer.price c.ctree c.cids in
            if F.leq r.Sne.cost budget then
              ignore (Par.Incumbent.improve incumbent (c.cw, c.cids));
            Some r
          end
        in
        let fold (c : cand) = function
          | None -> incr inc_skips
          | Some (r : Sne.result) ->
              if promising c.cw c.cids && F.leq r.Sne.cost budget then begin
                let d = design_of_result c r in
                best := Some d;
                (* Streaming hook: every strict improvement of the
                   affordable incumbent, in stream order ([fold] runs on
                   the driver domain even in parallel configurations, so
                   the sequence is deterministic for a fixed config). *)
                on_incumbent d
              end
        in
        drive config pool ~pull ~price ~fold;
        let stats =
          {
            trees_seen = !seen;
            trees_priced = Atomic.get pricer.solves - solves0;
            lb_pruned = !lb_pruned;
            incumbent_skips = !inc_skips;
            cache_hits = pricer.cache_hits () - hits0;
            nodes_expanded = ostats.G.Enumerate.nodes_expanded;
            msts_computed = ostats.G.Enumerate.msts_computed;
          }
        in
        record_stats stats ~misses:(pricer.cache_misses () - misses0);
        (!best, stats))

  (** The full (budget, weight) Pareto frontier, identical to the seed's
      price-everything computation. Incremental dominance filtering: a tree
      whose enforcement lower bound strictly exceeds the best priced cost so
      far is already dominated by an earlier (no heavier) tree and is never
      priced; once a zero-cost tree has been priced, every later tree is
      dominated and the stream stops. *)
  let pareto_frontier ?(config = default_config) ?pricer ?(poll = fun () -> ()) ~graph
      ~root () =
    Obs.span "snd.pareto_frontier" @@ fun () ->
    let spec = Gm.broadcast ~graph ~root in
    let pricer =
      match pricer with Some p -> p | None -> default_pricer config spec ~root
    in
    let solves0 = Atomic.get pricer.solves in
    let hits0 = pricer.cache_hits () in
    let misses0 = pricer.cache_misses () in
    let ostats = G.Enumerate.fresh_stats () in
    let stream = ref (G.Enumerate.by_weight ~stats:ostats graph) in
    let seen = ref 0 and lb_pruned = ref 0 in
    let min_cost = ref None in
    let priced = ref [] in
    let exhausted = ref false in
    let pull k =
      let acc = ref [] and count = ref 0 in
      while (not !exhausted) && !count < k do
        poll ();
        match !min_cost with
        | Some m when F.leq m F.zero -> exhausted := true
        | _ -> (
            match !stream () with
            | Seq.Nil -> exhausted := true
            | Seq.Cons ((w, ids), rest) ->
                stream := rest;
                incr seen;
                let tree = G.Tree.of_edge_ids graph ~root ids in
                let lb =
                  if config.use_lb then Lb.broadcast_enforcement_lb spec ~root tree
                  else F.zero
                in
                let dominated =
                  config.use_lb
                  &&
                  match !min_cost with
                  | Some m -> F.lt m lb
                  | None -> false
                in
                if dominated then incr lb_pruned
                else begin
                  acc := { cw = w; cids = ids; ctree = tree; clb = lb } :: !acc;
                  incr count
                end)
      done;
      Array.of_list (List.rev !acc)
    in
    with_pool config (fun pool ->
        (* Per-batch completion board for worker-side skipping: slot [j]
           holds tree [j]'s priced cost once known. A candidate whose lower
           bound exceeds an earlier (hence no heavier) sibling's priced cost
           is dominated. A single scalar incumbent would be unsound here —
           a *heavier* sibling's low cost says nothing about a lighter
           tree's frontier membership — so the scan is restricted to strict
           predecessors in stream order. *)
        let board = ref [||] in
        let price _check (slot, (c : cand)) =
          poll ();
          let dominated =
            config.use_lb
            && ((match !min_cost with Some m -> F.lt m c.clb | None -> false)
               ||
               let b = !board in
               let rec scan j =
                 j < slot
                 &&
                 match Atomic.get b.(j) with
                 | Some cj when F.lt cj c.clb -> true
                 | _ -> scan (j + 1)
               in
               scan 0)
          in
          if dominated then None
          else begin
            let r = pricer.price c.ctree c.cids in
            Atomic.set (!board).(slot) (Some r.Sne.cost);
            Some r
          end
        in
        let fold (_, (c : cand)) = function
          | None -> incr lb_pruned
          | Some (r : Sne.result) ->
              priced := design_of_result c r :: !priced;
              (match !min_cost with
              | Some m when F.compare m r.Sne.cost <= 0 -> ()
              | _ -> min_cost := Some r.Sne.cost)
        in
        let pull_slotted k =
          let cands = pull k in
          board := Array.init (Array.length cands) (fun _ -> Atomic.make None);
          Array.mapi (fun i c -> (i, c)) cands
        in
        drive config pool ~pull:pull_slotted ~price ~fold;
        (* The seed's postprocessing, verbatim: stable sort by (weight,
           cost), keep the strictly-decreasing-cost prefix points. *)
        let sorted =
          List.sort
            (fun a b ->
              let c = F.compare a.weight b.weight in
              if c <> 0 then c else F.compare a.subsidy_cost b.subsidy_cost)
            !priced
        in
        let frontier = ref [] in
        List.iter
          (fun d ->
            match !frontier with
            | b :: _ when F.leq b.subsidy_cost d.subsidy_cost -> ()
            | _ -> frontier := d :: !frontier)
          sorted;
        let stats =
          {
            trees_seen = !seen;
            trees_priced = Atomic.get pricer.solves - solves0;
            lb_pruned = !lb_pruned;
            incumbent_skips = 0;
            cache_hits = pricer.cache_hits () - hits0;
            nodes_expanded = ostats.G.Enumerate.nodes_expanded;
            msts_computed = ostats.G.Enumerate.msts_computed;
          }
        in
        record_stats stats ~misses:(pricer.cache_misses () - misses0);
        (List.rev !frontier, stats))
end

module Float = struct
  include Make (Repro_field.Field.Float_field)

  (** Warm-started pricing on the unboxed kernel: build LP (3) via
      {!Sne_lp.Float.broadcast_problem} and solve it with
      {!Repro_lp.Simplex_float.solve_dual_incremental}, seeding each solve
      with the optimal basis of the previous tree mapped through edge ids.
      Adjacent trees in the weight-ordered stream differ by few edges, so
      most of the basis carries over. Results agree with {!lp_pricer} up to
      float rounding but are {e not} bit-identical (different pivot paths);
      the default engine therefore keeps the functorized backend and this
      pricer is an explicit opt-in for benchmarks. *)
  let warm_kernel_pricer spec ~root =
    let module K = Repro_lp.Simplex_float in
    let graph = spec.Gm.graph in
    let m = G.n_edges graph in
    let solves = Atomic.make 0 in
    let mu = Mutex.create () in
    let last_basis = ref [] in
    let price tree _ids =
      let p, edge_of_var = Sne_lp.Float.broadcast_problem spec ~root tree in
      let var_of_edge = Array.make m (-1) in
      Array.iteri (fun k id -> var_of_edge.(id) <- k) edge_of_var;
      Mutex.lock mu;
      let prev = !last_basis in
      Mutex.unlock mu;
      let hint =
        List.filter_map
          (fun id -> if var_of_edge.(id) >= 0 then Some var_of_edge.(id) else None)
          prev
      in
      Atomic.incr solves;
      let st, outcome = K.solve_dual_incremental ~hint p in
      match outcome with
      | K.Optimal s ->
          let basis_edges = List.map (fun k -> edge_of_var.(k)) (K.basis_hint st) in
          Mutex.lock mu;
          last_basis := basis_edges;
          Mutex.unlock mu;
          let subsidy = Array.make m 0.0 in
          Array.iteri
            (fun k id ->
              subsidy.(id) <-
                Stdlib.Float.max 0.0
                  (Stdlib.Float.min s.K.values.(k) (G.weight graph id)))
            edge_of_var;
          { Sne.subsidy; cost = s.K.objective }
      | K.Infeasible | K.Unbounded ->
          failwith "Snd_search.warm_kernel_pricer: LP (3) solve failed (bug)"
    in
    {
      name = "lp3-warm";
      price;
      solves;
      cache_hits = (fun () -> 0);
      cache_misses = (fun () -> 0);
    }

  (** {!warm_kernel_pricer} on the sparse revised-simplex kernel
      ({!Repro_lp.Revised_sparse}): same LP (3) construction and
      cross-solve basis hinting, but the masters stay sparse and the
      crash start replays the previous tree's basic columns through the
      eta file instead of a dense rebuild. Same agreement caveats. *)
  let sparse_kernel_pricer spec ~root =
    let module K = Repro_lp.Revised_sparse in
    let graph = spec.Gm.graph in
    let m = G.n_edges graph in
    let solves = Atomic.make 0 in
    let mu = Mutex.create () in
    let last_basis = ref [] in
    let price tree _ids =
      let p, edge_of_var = Sne_lp.Float_sparse.broadcast_problem spec ~root tree in
      let var_of_edge = Array.make m (-1) in
      Array.iteri (fun k id -> var_of_edge.(id) <- k) edge_of_var;
      Mutex.lock mu;
      let prev = !last_basis in
      Mutex.unlock mu;
      let hint =
        List.filter_map
          (fun id -> if var_of_edge.(id) >= 0 then Some var_of_edge.(id) else None)
          prev
      in
      Atomic.incr solves;
      let st, outcome = K.solve_dual_incremental ~hint p in
      match outcome with
      | K.Optimal s ->
          let basis_edges = List.map (fun k -> edge_of_var.(k)) (K.basis_hint st) in
          Mutex.lock mu;
          last_basis := basis_edges;
          Mutex.unlock mu;
          let subsidy = Array.make m 0.0 in
          Array.iteri
            (fun k id ->
              subsidy.(id) <-
                Stdlib.Float.max 0.0
                  (Stdlib.Float.min s.K.values.(k) (G.weight graph id)))
            edge_of_var;
          { Sne.subsidy; cost = s.K.objective }
      | K.Infeasible | K.Unbounded ->
          failwith "Snd_search.sparse_kernel_pricer: LP (3) solve failed (bug)"
    in
    {
      name = "lp3-sparse";
      price;
      solves;
      cache_hits = (fun () -> 0);
      cache_misses = (fun () -> 0);
    }
end

module Rat = Make (Repro_field.Field.Rat)
