(** STABLE NETWORK ENFORCEMENT via linear programming (Theorem 1).

    Three formulations from Section 3, all computing a minimum-cost subsidy
    assignment enforcing a given state as an equilibrium:

    - [broadcast]: the compact LP (3) for broadcast games and spanning-tree
      targets — n variables, O(|E|) constraints, using the LCA cancellation
      from Lemma 2's proof.
    - [poly]: the polynomial-size LP (2) for general games — shortest-path
      potentials pi_i(v) simulate the separation oracle inside the LP.
    - [cutting_plane]: the exponential LP (1) solved by constraint
      generation. The paper invokes the ellipsoid method with a Dijkstra
      separation oracle; we run the same oracle inside a cutting-plane loop
      (the standard practical stand-in; see DESIGN.md §2), re-solving with
      the simplex solver as violated path constraints are discovered.

    SNE is always feasible (fully subsidizing the target state works), so
    all three return a subsidy assignment; an [Infeasible]/[Unbounded]
    answer from the LP solver indicates a bug and raises. *)

module Make_backend
    (F : Repro_field.Field.S)
    (Lp : Repro_lp.Lp_intf.BACKEND with type num = F.t) =
struct
  module Gm = Repro_game.Game.Make (F)
  module W = Repro_game.Weighted.Make (F)
  module G = Gm.G
  module Lp = Lp

  type result = {
    subsidy : F.t array; (* indexed by edge id; zero outside the target *)
    cost : F.t; (* total subsidies *)
  }

  type cutting_plane_stats = {
    rounds : int;
    generated : int;
    converged : bool;
    pivots : int; (* total simplex pivots across all master solves *)
  }

  let ok_or_fail ~what = function
    | Lp.Optimal s -> s
    | Lp.Infeasible -> failwith (what ^ ": LP infeasible (SNE is always feasible; bug)")
    | Lp.Unbounded -> failwith (what ^ ": LP unbounded (objective is >= 0; bug)")

  let solve_or_fail ~what p = ok_or_fail ~what (Lp.solve p)

  (* Solver-level observability (Repro_obs registry; both field
     instantiations share the same named counters). *)
  module Obs = Repro_obs.Obs

  let c_broadcast = Obs.counter "sne.broadcast_solves"
  let c_weighted = Obs.counter "sne.weighted_broadcast_solves"
  let c_poly = Obs.counter "sne.poly_solves"
  let c_rounds = Obs.counter "sne.cut_rounds"
  let c_cuts = Obs.counter "sne.cuts_generated"
  let c_nonconverged = Obs.counter "sne.nonconverged"
  let c_sep_batches = Obs.counter "sne.separate.batches"
  let c_sep_oracle = Obs.counter "sne.separate.oracle_calls"
  let c_sep_parallel = Obs.counter "sne.separate.parallel_batches"
  let c_sep_dedup = Obs.counter "sne.separate.cuts_deduped"

  (* Amortized GC minor words per completed cut round (clamp + separation
     sweep + master re-solve), the separation-path sibling of
     [lp.sparse.allocs_per_pivot]. Metered only while obs is enabled and
     never read by the solver, so obs on/off cannot change results. *)
  let g_round_words = Obs.gauge "sne.sep_round_words"
  let round_words = Atomic.make 0.0
  let round_count = Atomic.make 0

  let atomic_addf a d =
    let rec go () =
      let v = Atomic.get a in
      if not (Atomic.compare_and_set a v (v +. d)) then go ()
    in
    go ()

  let record_round w0 =
    atomic_addf round_words (Gc.minor_words () -. w0);
    let r = 1 + Atomic.fetch_and_add round_count 1 in
    Obs.set g_round_words (Atomic.get round_words /. float_of_int r)

  (* ---------------------------------------------------------------- *)
  (* Batched separation                                                *)
  (* ---------------------------------------------------------------- *)

  (** Run the per-player oracles of one separation round: [oracle i] for
      every player, results in player order. With a [pool] of size > 1
      the best-response Dijkstras fan out over its domains (guided
      chunking absorbs the uneven per-player cost; each domain keeps its
      own heap scratch); without one, or on a single-domain pool, the
      sweep is a plain serial loop. Exposed so the benches can time
      serial vs parallel separation on identical subsidy vectors. *)
  let oracle_sweep ?pool ~n_players (oracle : int -> 'a) : 'a array =
    Obs.incr c_sep_batches;
    Obs.add c_sep_oracle n_players;
    match pool with
    | Some p when Repro_parallel.Parallel.Pool.size p > 1 && n_players > 1 ->
        Obs.incr c_sep_parallel;
        Repro_parallel.Parallel.Pool.map p oracle (Array.init n_players Fun.id)
    | _ -> Array.init n_players oracle

  (* Within-round cut dedup, keyed on the mathematical content (sorted
     coefficients, relation, rhs) and not the label: symmetric deviations
     routinely produce the same inequality for different players, and
     appending both just grows the master. *)
  let cut_key (c : Lp.constr) =
    let coeffs = List.sort (fun (a, _) (b, _) -> compare a b) c.Lp.coeffs in
    let b = Buffer.create 64 in
    List.iter
      (fun (k, v) ->
        Buffer.add_string b (string_of_int k);
        Buffer.add_char b ':';
        Buffer.add_string b (F.to_string v);
        Buffer.add_char b ';')
      coeffs;
    Buffer.add_string b
      (match c.Lp.relation with Lp.Leq -> "<=" | Lp.Geq -> ">=" | Lp.Eq -> "=");
    Buffer.add_string b (F.to_string c.Lp.rhs);
    Buffer.contents b

  let dedup_cuts cuts =
    let seen = Hashtbl.create 16 in
    let kept =
      List.filter
        (fun c ->
          let k = cut_key c in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        cuts
    in
    Obs.add c_sep_dedup (List.length cuts - List.length kept);
    kept

  (* ---------------------------------------------------------------- *)
  (* LP (3): broadcast games, spanning-tree target                     *)
  (* ---------------------------------------------------------------- *)

  (** The LP (3) instance for enforcing [tree], without solving it: the
      problem plus the variable layout ([edge_of_var.(k)] is the tree-edge
      id of LP variable [k]). The branch-and-bound SND engine uses this to
      drive the kernel's cross-solve warm start directly. *)
  let broadcast_problem spec ~root (tree : G.Tree.t) =
    let graph = spec.Gm.graph in
    let m = G.n_edges graph in
    (* One LP variable per tree edge. *)
    let tree_edges = G.Tree.edge_ids tree in
    let var_of_edge = Array.make m (-1) in
    List.iteri (fun k id -> var_of_edge.(id) <- k) tree_edges;
    let edge_of_var = Array.of_list tree_edges in
    let n_vars = Array.length edge_of_var in
    let lower = Array.make n_vars (Some F.zero) in
    let upper = Array.map (fun id -> Some (G.weight graph id)) edge_of_var in
    let constraints = ref [] in
    let add_constraint u edge_id v =
      (* Player at u deviating to (u,v) then v's tree path. q1 = u -> lca,
         q2 = v -> lca; common segment above the LCA cancels. *)
      let l = G.Tree.lca tree u v in
      let coeffs = Hashtbl.create 8 in
      let rhs = ref (G.weight graph edge_id) in
      let touch ~on_q1 id =
        let n = G.Tree.usage tree id in
        let d = F.of_int (if on_q1 then n else n + 1) in
        let w_over_d = F.div (G.weight graph id) d in
        let c = F.div F.one d in
        let k = var_of_edge.(id) in
        let cur = try Hashtbl.find coeffs k with Not_found -> F.zero in
        if on_q1 then begin
          (* LHS term (w - b)/n: contributes -b/n left, -w/n right. *)
          Hashtbl.replace coeffs k (F.sub cur c);
          rhs := F.sub !rhs w_over_d
        end
        else begin
          (* RHS term (w - b)/(n+1): contributes +b/(n+1) left, +w/(n+1) right. *)
          Hashtbl.replace coeffs k (F.add cur c);
          rhs := F.add !rhs w_over_d
        end
      in
      List.iter (touch ~on_q1:true) (G.Tree.path_between tree u l);
      List.iter (touch ~on_q1:false) (G.Tree.path_between tree v l);
      constraints :=
        {
          Lp.coeffs = Hashtbl.fold (fun k c acc -> (k, c) :: acc) coeffs [];
          relation = Lp.Leq;
          rhs = !rhs;
          label = Printf.sprintf "dev(%d,[%d],%d)" u edge_id v;
        }
        :: !constraints
    in
    G.fold_edges graph ~init:() ~f:(fun () e ->
        if not (G.Tree.mem_edge tree e.G.id) then
          List.iter
            (fun u -> if u <> root then add_constraint u e.G.id (G.other graph e.G.id u))
            [ e.G.u; e.G.v ]);
    let p =
      Lp.make_problem ~n_vars
        ~var_name:(fun k -> Printf.sprintf "b_e%d" edge_of_var.(k))
        ~minimize:(List.init n_vars (fun k -> (k, F.one)))
        ~constraints:!constraints ~lower ~upper ()
    in
    (p, edge_of_var)

  (** Clamp an LP (3) solution into an edge-indexed subsidy assignment. *)
  let broadcast_extract spec (s : Lp.solution) edge_of_var =
    let graph = spec.Gm.graph in
    let subsidy = Array.make (G.n_edges graph) F.zero in
    Array.iteri
      (fun k id -> subsidy.(id) <- F.max F.zero (F.min s.Lp.values.(k) (G.weight graph id)))
      edge_of_var;
    { subsidy; cost = s.Lp.objective }

  (** Minimum-cost subsidies enforcing the spanning tree [tree] in the
      broadcast game [spec] rooted at [root]. *)
  let broadcast spec ~root (tree : G.Tree.t) =
    Obs.incr c_broadcast;
    Obs.span "sne.broadcast" (fun () ->
        let p, edge_of_var = broadcast_problem spec ~root tree in
        let s = solve_or_fail ~what:"Sne_lp.broadcast" p in
        broadcast_extract spec s edge_of_var)

  (* ---------------------------------------------------------------- *)
  (* Weighted broadcast LP: the Section 6 extension to weighted players *)
  (* ---------------------------------------------------------------- *)

  (** Minimum-cost subsidies enforcing a spanning tree of a {e weighted}
      broadcast game (demands d_i; shares proportional to demand). Same
      single-non-tree-edge constraint family as LP (3), with demand sums
      D_a in place of usage counts and the deviating player's demand added
      below the LCA. *)
  let weighted_broadcast (wspec : W.spec) ~root (tree : G.Tree.t) =
    let graph = W.graph wspec in
    let m = G.n_edges graph in
    let dem = W.Broadcast.tree_demand wspec tree in
    let tree_edges = G.Tree.edge_ids tree in
    let var_of_edge = Array.make m (-1) in
    List.iteri (fun k id -> var_of_edge.(id) <- k) tree_edges;
    let edge_of_var = Array.of_list tree_edges in
    let n_vars = Array.length edge_of_var in
    let lower = Array.make n_vars (Some F.zero) in
    let upper = Array.map (fun id -> Some (G.weight graph id)) edge_of_var in
    let constraints = ref [] in
    let add_constraint u edge_id v =
      let du = wspec.W.demand.(Gm.broadcast_player ~root u) in
      let l = G.Tree.lca tree u v in
      let coeffs = Hashtbl.create 8 in
      let rhs = ref (G.weight graph edge_id) in
      let touch ~on_q1 id =
        let denom = if on_q1 then dem id else F.add (dem id) du in
        let scale = F.div du denom in
        let k = var_of_edge.(id) in
        let cur = try Hashtbl.find coeffs k with Not_found -> F.zero in
        if on_q1 then begin
          Hashtbl.replace coeffs k (F.sub cur scale);
          rhs := F.sub !rhs (F.mul scale (G.weight graph id))
        end
        else begin
          Hashtbl.replace coeffs k (F.add cur scale);
          rhs := F.add !rhs (F.mul scale (G.weight graph id))
        end
      in
      List.iter (touch ~on_q1:true) (G.Tree.path_between tree u l);
      List.iter (touch ~on_q1:false) (G.Tree.path_between tree v l);
      constraints :=
        {
          Lp.coeffs = Hashtbl.fold (fun k c acc -> (k, c) :: acc) coeffs [];
          relation = Lp.Leq;
          rhs = !rhs;
          label = Printf.sprintf "wdev(%d,[%d],%d)" u edge_id v;
        }
        :: !constraints
    in
    G.fold_edges graph ~init:() ~f:(fun () e ->
        if not (G.Tree.mem_edge tree e.G.id) then
          List.iter
            (fun u -> if u <> root then add_constraint u e.G.id (G.other graph e.G.id u))
            [ e.G.u; e.G.v ]);
    let p =
      Lp.make_problem ~n_vars
        ~var_name:(fun k -> Printf.sprintf "b_e%d" edge_of_var.(k))
        ~minimize:(List.init n_vars (fun k -> (k, F.one)))
        ~constraints:!constraints ~lower ~upper ()
    in
    Obs.incr c_weighted;
    let s = Obs.span "sne.weighted_broadcast" (fun () ->
        solve_or_fail ~what:"Sne_lp.weighted_broadcast" p)
    in
    let subsidy = Array.make m F.zero in
    Array.iteri
      (fun k id -> subsidy.(id) <- F.max F.zero (F.min s.Lp.values.(k) (G.weight graph id)))
      edge_of_var;
    { subsidy; cost = s.Lp.objective }

  (* ---------------------------------------------------------------- *)
  (* Shared constraint-generation driver                               *)
  (* ---------------------------------------------------------------- *)

  (* The cutting-plane loop over an oracle [find_cuts] that, given the
     clamped subsidy vector of the current master optimum, returns the
     violated path constraints (empty = converged). [warm] picks between
     the backend's incremental path — append each cut to the live tableau
     and re-optimize from the previous basis — and cold restarts that
     re-solve the accumulated master from scratch every round. Both reach
     the same optimum; the stats record how many pivots each spent. *)
  let cutting_core ~what ~warm ~max_rounds ~poll ~on_round ~graph base ~find_cuts =
    let m = G.n_edges graph in
    (* One clamp buffer per cutting-plane run, reused across rounds: the
       oracles only read [~subsidy] during their round (including from
       pool domains — reads race with nothing, the buffer is stable for
       the round), and [finish] copies it before it escapes. *)
    let clamp_buf = Array.make m F.zero in
    let clamp (s : Lp.solution) =
      for id = 0 to m - 1 do
        clamp_buf.(id) <- F.max F.zero (F.min s.Lp.values.(id) (G.weight graph id))
      done;
      clamp_buf
    in
    let generated = ref 0 in
    let cold_constraints = ref base.Lp.constraints in
    let cold_pivots = ref 0 in
    let warm_state = ref None in
    let initial () =
      Obs.span "sne.master" (fun () ->
          let st, o = Lp.solve_incremental base in
          if warm then warm_state := Some st else cold_pivots := Lp.pivots st;
          ok_or_fail ~what o)
    in
    let apply_cuts cuts =
      generated := !generated + List.length cuts;
      Obs.add c_cuts (List.length cuts);
      Obs.span "sne.master" (fun () ->
          match !warm_state with
          | Some st ->
              let last =
                List.fold_left (fun _ c -> Lp.add_constraint st c) Lp.Infeasible cuts
              in
              ok_or_fail ~what last
          | None ->
              cold_constraints := List.rev_append cuts !cold_constraints;
              let st, o =
                Lp.solve_incremental { base with Lp.constraints = !cold_constraints }
              in
              cold_pivots := !cold_pivots + Lp.pivots st;
              ok_or_fail ~what o)
    in
    let total_pivots () =
      match !warm_state with Some st -> Lp.pivots st | None -> !cold_pivots
    in
    let rec loop round (s : Lp.solution) =
      (* Cancellation point, once per master/separation round: a service
         deadline raising here aborts the loop between pivot batches
         instead of running the master to convergence. *)
      poll ();
      let meter = Obs.enabled () in
      let w0 = if meter then Gc.minor_words () else 0.0 in
      let subsidy = clamp s in
      let finish converged =
        if not converged then Obs.incr c_nonconverged;
        ( { subsidy = Array.copy subsidy; cost = s.Lp.objective },
          {
            rounds = round;
            generated = !generated;
            converged;
            pivots = total_pivots ();
          } )
      in
      match Obs.span "sne.separate" (fun () -> dedup_cuts (find_cuts ~subsidy)) with
      | [] -> finish true
      | _ when round >= max_rounds -> finish false
      | cuts ->
          Obs.incr c_rounds;
          (* Progress hook, fired before the master re-solve so a
             streaming client sees the round while it is still being
             worked on. Runs on the solving domain; keep it cheap. *)
          on_round ~round ~cuts:(List.length cuts);
          let s' = apply_cuts cuts in
          if meter then record_round w0;
          loop (round + 1) s'
    in
    Obs.span "sne.cutting_plane" (fun () -> loop 0 (initial ()))

  (* The box-only master: minimize total subsidies with 0 <= b_a <= w_a. *)
  let box_master graph =
    let m = G.n_edges graph in
    Lp.make_problem ~n_vars:m
      ~var_name:(fun id -> Printf.sprintf "b_e%d" id)
      ~minimize:(List.init m (fun id -> (id, F.one)))
      ~constraints:[]
      ~lower:(Array.make m (Some F.zero))
      ~upper:(Array.init m (fun id -> Some (G.weight graph id)))
      ()

  (** Exact weighted SNE by constraint generation. [weighted_broadcast]
      only guards against single-non-tree-edge deviations; for {e unit}
      demands Lemma 2 makes that sufficient, but for general demands it is
      not (the test suite exhibits instances where a two-non-tree-edge
      deviation beats every one-edge deviation — the exchange argument in
      Lemma 2's proof genuinely needs unit demands). So the exact solver
      runs the cutting-plane loop with the weighted best-response oracle,
      warm-starting each master re-solve from the previous basis. *)
  let weighted_cutting_plane ?(warm = true) ?(max_rounds = 500) ?pool
      ?(poll = fun () -> ()) ?(on_round = fun ~round:_ ~cuts:_ -> ())
      (wspec : W.spec) ~(state : Gm.state) =
    let graph = W.graph wspec in
    let du_all = W.demand_usage wspec state in
    (* Player i's cost on her current path must not exceed her cost on the
       deviation path p: sum_{a in T_i} (w-b) d_i/D_a <= sum_{a in p}
       (w-b) d_i/(D_a + d_i - [i uses a] d_i). *)
    let path_constraint i path =
      let di = wspec.W.demand.(i) in
      let mine = Gm.player_edges wspec.W.base state i in
      let coeffs = Hashtbl.create 8 in
      let rhs = ref F.zero in
      let touch ~side id denom =
        let scale = F.div di denom in
        let cur = try Hashtbl.find coeffs id with Not_found -> F.zero in
        match side with
        | `Current ->
            Hashtbl.replace coeffs id (F.sub cur scale);
            rhs := F.sub !rhs (F.mul scale (G.weight graph id))
        | `Deviation ->
            Hashtbl.replace coeffs id (F.add cur scale);
            rhs := F.add !rhs (F.mul scale (G.weight graph id))
      in
      List.iter (fun id -> touch ~side:`Current id du_all.(id)) state.(i);
      List.iter
        (fun id ->
          let others = if mine.(id) then F.sub du_all.(id) di else du_all.(id) in
          touch ~side:`Deviation id (F.add others di))
        path;
      {
        Lp.coeffs = Hashtbl.fold (fun k c acc -> (k, c) :: acc) coeffs [];
        relation = Lp.Leq;
        rhs = !rhs;
        label = Printf.sprintf "wpath(p%d)" i;
      }
    in
    let find_cuts ~subsidy =
      (* The Dijkstra oracles fan out (read-only on the graph/state); the
         constraints are then built serially in player order, so the cut
         list is identical to the old sequential loop's. *)
      let responses =
        oracle_sweep ?pool ~n_players:(W.n_players wspec) (fun i ->
            let current = W.player_cost ~subsidy wspec state i in
            let cost, path = W.best_response ~subsidy wspec state i in
            if F.lt cost current then Some path else None)
      in
      let cuts = ref [] in
      for i = Array.length responses - 1 downto 0 do
        match responses.(i) with
        | Some path -> cuts := path_constraint i path :: !cuts
        | None -> ()
      done;
      !cuts
    in
    cutting_core ~what:"Sne_lp.weighted_cutting_plane" ~warm ~max_rounds ~poll
      ~on_round ~graph
      (box_master graph) ~find_cuts

  (* ---------------------------------------------------------------- *)
  (* LP (2): general games, polynomial size                            *)
  (* ---------------------------------------------------------------- *)

  (** Minimum-cost subsidies enforcing [state] in a general network design
      game, via the polynomial LP with shortest-path potentials. *)
  let poly spec ~(state : Gm.state) =
    Obs.incr c_poly;
    Obs.span "sne.poly" @@ fun () ->
    let graph = spec.Gm.graph in
    let m = G.n_edges graph in
    let n = G.n_nodes graph in
    let np = Gm.n_players spec in
    let usage = Gm.usage spec state in
    (* Variable layout: [0, m) subsidies; then pi_i(v) at m + i*n + v. *)
    let pi i v = m + (i * n) + v in
    let n_vars = m + (np * n) in
    let lower = Array.make n_vars (Some F.zero) in
    let upper = Array.make n_vars None in
    for id = 0 to m - 1 do
      upper.(id) <- Some (G.weight graph id)
    done;
    for i = 0 to np - 1 do
      let s, _ = spec.Gm.pairs.(i) in
      (* pi_i(s_i) = 0. *)
      upper.(pi i s) <- Some F.zero
    done;
    let constraints = ref [] in
    for i = 0 to np - 1 do
      let mine = Gm.player_edges spec state i in
      (* Edge relaxations: pi_i(y) <= pi_i(x) + (w - b)/d, both directions. *)
      G.fold_edges graph ~init:() ~f:(fun () e ->
          let d = F.of_int (usage.(e.G.id) + 1 - if mine.(e.G.id) then 1 else 0) in
          let w_over_d = F.div e.G.weight d in
          let b_coeff = F.div F.one d in
          let relax x y =
            constraints :=
              {
                Lp.coeffs = [ (pi i y, F.one); (pi i x, F.neg F.one); (e.G.id, b_coeff) ];
                relation = Lp.Leq;
                rhs = w_over_d;
                label = Printf.sprintf "relax(p%d,e%d,%d->%d)" i e.G.id x y;
              }
              :: !constraints
          in
          relax e.G.u e.G.v;
          relax e.G.v e.G.u);
      (* pi_i(t_i) >= cost_i(T; b). *)
      let _, t = spec.Gm.pairs.(i) in
      let coeffs = Hashtbl.create 8 in
      Hashtbl.replace coeffs (pi i t) F.one;
      let rhs = ref F.zero in
      List.iter
        (fun id ->
          let na = F.of_int usage.(id) in
          let cur = try Hashtbl.find coeffs id with Not_found -> F.zero in
          Hashtbl.replace coeffs id (F.add cur (F.div F.one na));
          rhs := F.add !rhs (F.div (G.weight graph id) na))
        state.(i);
      constraints :=
        {
          Lp.coeffs = Hashtbl.fold (fun k c acc -> (k, c) :: acc) coeffs [];
          relation = Lp.Geq;
          rhs = !rhs;
          label = Printf.sprintf "stable(p%d)" i;
        }
        :: !constraints
    done;
    let p =
      Lp.make_problem ~n_vars
        ~var_name:(fun k ->
          if k < m then Printf.sprintf "b_e%d" k
          else Printf.sprintf "pi_p%d(%d)" ((k - m) / n) ((k - m) mod n))
        ~minimize:(List.init m (fun id -> (id, F.one)))
        ~constraints:!constraints ~lower ~upper ()
    in
    let s = solve_or_fail ~what:"Sne_lp.poly" p in
    let subsidy =
      Array.init m (fun id -> F.max F.zero (F.min s.Lp.values.(id) (G.weight graph id)))
    in
    { subsidy; cost = s.Lp.objective }

  (* ---------------------------------------------------------------- *)
  (* LP (1): constraint generation with the Dijkstra separation oracle *)
  (* ---------------------------------------------------------------- *)

  (** The LP (1) constraint pinning player [i]'s cost on her current
      strategy below the cost of deviation path [path]:
      cost_i(T;b) <= sum_{a in p} (w_a - b_a)/d_a. Terms for edges on
      both sides cancel via the shared hashtable. Exposed so the
      incremental session can rebuild its retained cut pool against the
      {e current} state/usage/weights after a delta — any u->root path
      yields a valid member of the constraint family when its
      coefficients are recomputed this way. *)
  let lp1_path_constraint spec ~(state : Gm.state) ~(usage : int array) i path =
    let graph = spec.Gm.graph in
    let mine = Gm.player_edges spec state i in
    let coeffs = Hashtbl.create 8 in
    let rhs = ref F.zero in
    let touch ~side id d =
      let d = F.of_int d in
      let cur = try Hashtbl.find coeffs id with Not_found -> F.zero in
      let c = F.div F.one d in
      let w_over_d = F.div (G.weight graph id) d in
      match side with
      | `Current ->
          Hashtbl.replace coeffs id (F.sub cur c);
          rhs := F.sub !rhs w_over_d
      | `Deviation ->
          Hashtbl.replace coeffs id (F.add cur c);
          rhs := F.add !rhs w_over_d
    in
    List.iter (fun id -> touch ~side:`Current id usage.(id)) state.(i);
    List.iter
      (fun id -> touch ~side:`Deviation id (usage.(id) + 1 - if mine.(id) then 1 else 0))
      path;
    {
      Lp.coeffs = Hashtbl.fold (fun k c acc -> (k, c) :: acc) coeffs [];
      relation = Lp.Leq;
      rhs = !rhs;
      label = Printf.sprintf "path(p%d)" i;
    }

  (** Solve the exponential LP (1) by cutting planes: start with only the
      box constraints, and repeatedly add the constraint of each player's
      cheapest deviating path (found by [Gm.best_response], which is exactly
      the paper's H_i shortest-path oracle) until none is violated. Each
      master re-solve warm-starts from the previous optimal basis
      ([warm = false] forces the old cold restarts, kept for the
      pivot-budget benchmarks and the warm-vs-cold property tests). *)
  let cutting_plane ?(warm = true) ?(max_rounds = 500) ?pool ?(poll = fun () -> ())
      ?(on_round = fun ~round:_ ~cuts:_ -> ()) spec ~(state : Gm.state) =
    let graph = spec.Gm.graph in
    let usage = Gm.usage spec state in
    let path_constraint i path = lp1_path_constraint spec ~state ~usage i path in
    let find_cuts ~subsidy =
      let responses =
        oracle_sweep ?pool ~n_players:(Gm.n_players spec) (fun i ->
            let current = Gm.player_cost ~subsidy ~usage spec state i in
            let cost, path = Gm.best_response ~subsidy ~usage spec state i in
            if F.lt cost current then Some path else None)
      in
      let cuts = ref [] in
      for i = Array.length responses - 1 downto 0 do
        match responses.(i) with
        | Some path -> cuts := path_constraint i path :: !cuts
        | None -> ()
      done;
      !cuts
    in
    cutting_core ~what:"Sne_lp.cutting_plane" ~warm ~max_rounds ~poll ~on_round
      ~graph (box_master graph) ~find_cuts
end

module Make (F : Repro_field.Field.S) = Make_backend (F) (Repro_lp.Simplex.Make (F))

(* The float instantiation runs on the specialized unboxed kernel (with its
   genuine dual-simplex warm start); the exact-rational one keeps the
   functorized simplex as the correctness oracle. *)
module Float = Make_backend (Repro_field.Field.Float_field) (Repro_lp.Simplex_float)

(* Same field, same games, sparse revised-simplex masters: the kernel the
   cutting-plane solvers select with [--backend sparse]. *)
module Float_sparse =
  Make_backend (Repro_field.Field.Float_field) (Repro_lp.Revised_sparse)

module Rat = Make (Repro_field.Field.Rat)
