(** Incremental re-solve sessions for the LP (1) cutting-plane SNE solver.

    A session holds a mutable {!Serial.Float} instance plus the two
    artifacts worth keeping across {!Serial.Make.Delta} mutations: the
    pool of deviation paths separated by previous resolves (keyed by
    source node, so it survives renumbering) and the edge variables basic
    at the previous optimum (fed to the kernels' cross-solve dual-simplex
    warm start). [resolve] rebuilds the pool into LP (1) constraints
    against the current state/usage/weights — always-valid members of the
    constraint family, so the seeded master is a relaxation and can never
    cut off the optimum — then separates fresh cuts only for what the
    pool missed. The master carries one variable per {e tree} edge (some
    optimal LP (1) solution is zero off the target tree), which keeps
    the per-resolve master cost at n-1 variables instead of m.

    Sessions are single-owner: no internal locking (the service layer
    wraps each one in a mutex). Exact agreement with cold solves is
    pinned by the float differential and exact-rational tests. *)

(** What the session needs beyond {!Repro_lp.Lp_intf.BACKEND}: the
    cross-solve dual-simplex warm start both float kernels expose, plus
    the in-place [patch] re-bind. A session keeps one kernel state
    resident across resolves: when only rhs / objective / bounds moved
    (weight-only deltas in steady state) [patch] re-binds it without any
    rebuild — [service.session.master_patched] counts those resolves,
    [service.session.master_rebuilds] the ones where a resident master
    existed but could not be patched. *)
module type WARM_KERNEL = sig
  include Repro_lp.Lp_intf.BACKEND with type num = float

  val solve_dual_incremental : ?hint:int list -> problem -> state * outcome
  val basis_hint : state -> int list
  val patch : state -> problem -> outcome option
end

module Make_kernel (K : WARM_KERNEL) : sig
  module Sne : module type of Sne_lp.Make_backend (Repro_field.Field.Float_field) (K)
  module Gm : module type of Sne.Gm
  module G : module type of Sne.G
  module Ser : module type of Serial.Float

  type resolve_stats = {
    pivots : int;  (** simplex pivots this resolve *)
    rounds : int;  (** separation rounds beyond the seeded master *)
    reused_cuts : int;  (** pool cuts rebuilt and seeded into the master *)
    fresh_cuts : int;  (** cuts separated anew this resolve *)
    pool_size : int;  (** pool size after the resolve *)
    warm : bool;  (** a basis hint from a previous resolve was used *)
    converged : bool;
  }

  type t

  (** [pool_cap] bounds the retained cut pool (newest entries win);
      [max_rounds] bounds each resolve's separation loop. *)
  val create : ?max_rounds:int -> ?pool_cap:int -> Ser.t -> t

  val instance : t -> Ser.t

  (** Deltas applied since [create]. *)
  val generation : t -> int

  val pool_size : t -> int

  (** Digest of the canonical serialization — identical to hashing
      [Ser.to_string] of the same instance built directly (the
      [Serial.Delta] canonicality guarantee). *)
  val digest : t -> string

  (** Apply a delta: mutates the instance and remaps the retained pool
      and basis through the delta's edge/node maps, dropping anything
      that died. Raises [Failure] (and leaves the session untouched) on
      an invalid delta. *)
  val mutate : t -> Ser.Delta.t -> Ser.Delta.applied

  (** Re-solve the current instance, warm. Separation is specialized to
      the session's tree states via Lemma 2 (single-non-tree-edge slack
      checks over precomputed path shares instead of per-player
      best-response Dijkstras), so a steady-state resolve costs a share
      walk plus a few dual pivots; [pool] is accepted for interface
      parity but unused — the Lemma 2 pass is cheap enough to stay
      serial. [poll] is the per-round cancellation hook (as in
      {!Sne_lp.Make_backend.cutting_plane}). The result is the same
      optimum a cold [cutting_plane] reaches. *)
  val resolve :
    ?pool:Repro_parallel.Parallel.Pool.t ->
    ?poll:(unit -> unit) ->
    t ->
    Sne.result * resolve_stats
end

(** Sessions over the dense unboxed float kernel
    ({!Repro_lp.Simplex_float}). Game/graph modules are shared with
    {!Sne_lp.Float} (applicative functors). *)
module Dense : module type of Make_kernel (Repro_lp.Simplex_float)

(** Sessions over the sparse revised-simplex kernel
    ({!Repro_lp.Revised_sparse}); shared with {!Sne_lp.Float_sparse}. *)
module Sparse : module type of Make_kernel (Repro_lp.Revised_sparse)
