(** Branch-and-bound STABLE NETWORK DESIGN engine.

    Replaces the seed solver's exhaustive spanning-tree enumeration with a
    best-first search over the weight-ordered Lawler partition
    ({!Repro_graph.Wgraph.Make.Enumerate.by_weight}), pruned by the
    admissible enforcement-cost lower bound of
    {!Lower_bounds.Make.broadcast_enforcement_lb}, with LRU-cached and
    optionally warm-started LP (3) pricing and optional domain-parallel
    batch exploration. Every configuration returns exactly the same
    designs as the seed enumeration solver (DESIGN.md, "SND search
    engine"); only the amount of LP work differs. *)

module Make (F : Repro_field.Field.S) : sig
  module Gm : module type of Repro_game.Game.Make (F)
  module G : module type of Gm.G
  module Sne : module type of Sne_lp.Make (F)
  module Lb : module type of Lower_bounds.Make (F)

  type design = {
    tree_edges : int list;
    weight : F.t;  (** social cost of the design *)
    subsidy : F.t array;
    subsidy_cost : F.t;  (** minimum enforcement cost (LP (3)) *)
  }

  (** Search-effort counters, all deltas for one engine call. *)
  type stats = {
    trees_seen : int;  (** pulled from the weight-ordered stream *)
    trees_priced : int;  (** LP (3) solves actually performed *)
    lb_pruned : int;  (** discarded by the enforcement lower bound *)
    incumbent_skips : int;  (** discarded because an incumbent already won *)
    cache_hits : int;  (** prices served from the LRU cache *)
    nodes_expanded : int;  (** Lawler subproblems branched *)
    msts_computed : int;  (** MST completions inside the generator *)
  }

  (** A tree-pricing backend. [price tree ids] returns the minimum
      enforcement cost of [tree] (with [ids] its canonical sorted edge-id
      list); it must be pure and thread-safe. [solves] counts underlying LP
      solves; [cache_hits ()] / [cache_misses ()] report cache absorption
      (both 0 for uncached pricers), so hit rate is hits / (hits + misses). *)
  type pricer = {
    name : string;
    price : G.Tree.t -> int list -> Sne.result;
    solves : int Atomic.t;
    cache_hits : unit -> int;
    cache_misses : unit -> int;
  }

  (** The reference pricer: one {!Sne_lp} LP (3) solve per call, on the
      same functorized backend the seed solver used (so results are
      bit-identical to the seed's). *)
  val lp_pricer : Gm.spec -> root:int -> pricer

  (** A sharable pricing cache (the LRU keyed by canonical sorted tree
      edge-id lists, plus its mutex). Under churn, keep one of these
      alive across instance deltas and invalidate selectively instead of
      rebuilding the pricer — and losing every cached tree — per step. *)
  type price_cache

  val price_cache : capacity:int -> price_cache

  (** Evict exactly the entries whose tree contains a dirty edge. Stale
      certainty only runs one way: a tree {e containing} a mutated edge
      is certainly stale, while one avoiding every dirty edge can still
      drift through LP (3) deviation rows referencing a reweighted
      non-tree edge — so this granularity is for callers that re-certify
      prices downstream; use {!clear_price_cache} when exactness after an
      arbitrary reweight (or any structural delta) is required. *)
  val invalidate_edges : price_cache -> int list -> unit

  val clear_price_cache : price_cache -> unit

  (** Wrap a pricer with an LRU cache keyed by canonical sorted edge-id
      lists (mutex-protected; safe across domains). Shares the inner
      pricer's [solves] counter. [cache] plugs in a shared
      {!price_cache} (then [capacity] is ignored); by default a private
      cache of [capacity] is created. *)
  val cached_pricer : ?capacity:int -> ?cache:price_cache -> pricer -> pricer

  type config = {
    domains : int;  (** 1 = sequential (no domains spawned) *)
    batch : int;  (** candidates priced per round; 0 = pick from [domains] *)
    cache : int;  (** LRU capacity for the default pricer; 0 = uncached *)
    use_lb : bool;  (** apply the enforcement-cost lower bound *)
  }

  (** [{ domains = 1; batch = 0; cache = 256; use_lb = true }]. *)
  val default_config : config

  val zero_stats : stats

  (** Exact SND: the design the seed enumeration solver returns, found by
      weight-ordered search with early termination. [None] only on
      disconnected graphs. [poll] is called once per enumerated candidate
      and once before each pricing LP; it may raise (e.g.
      {!Repro_parallel.Parallel.Cancelled} from an expired service
      deadline) to abort the search mid-stream — the exception propagates
      to the caller. In parallel configurations it runs on worker domains
      and must be thread-safe.

      [on_incumbent] is the streaming progress hook: fired on the driver
      domain each time the affordable incumbent strictly improves (so the
      last firing, if any, carries the returned design). The sequence is
      deterministic for a fixed config; the service forwards it to
      streaming clients as partial-result frames. Must be cheap and must
      not raise. *)
  val exact_small :
    ?config:config ->
    ?pricer:pricer ->
    ?poll:(unit -> unit) ->
    ?on_incumbent:(design -> unit) ->
    graph:G.t ->
    root:int ->
    budget:F.t ->
    unit ->
    design option * stats

  (** The full (required budget, design weight) Pareto frontier, identical
      to the seed's price-every-tree computation, with dominated trees
      filtered incrementally during the search. [poll] as in
      {!exact_small}. *)
  val pareto_frontier :
    ?config:config ->
    ?pricer:pricer ->
    ?poll:(unit -> unit) ->
    graph:G.t ->
    root:int ->
    unit ->
    design list * stats
end

module Float : sig
  include module type of Make (Repro_field.Field.Float_field)

  (** Warm-started pricing on the unboxed float kernel: LP (3) built via
      {!Sne_lp.Float.broadcast_problem}, solved by
      {!Repro_lp.Simplex_float.solve_dual_incremental} seeded with the
      previous tree's optimal basis (mapped through edge ids). Agrees with
      {!lp_pricer} up to float rounding but is not bit-identical — opt-in
      for benchmarks, not the engine default. *)
  val warm_kernel_pricer : Gm.spec -> root:int -> pricer

  (** {!warm_kernel_pricer} on the sparse revised-simplex kernel
      ({!Repro_lp.Revised_sparse}): sparse masters, eta-file warm starts.
      Same agreement caveats — opt-in via [--backend sparse]. *)
  val sparse_kernel_pricer : Gm.spec -> root:int -> pricer
end

module Rat : module type of Make (Repro_field.Field.Rat)
