(** STABLE NETWORK ENFORCEMENT via linear programming (Theorem 1), plus the
    weighted-player extension of Section 6.

    All solvers compute a minimum-cost subsidy assignment enforcing a given
    state; SNE is always feasible (fully subsidizing the target works), so
    they never report infeasibility (an LP failure raises — it would be a
    bug).

    The solvers are functorized over an LP backend ({!Repro_lp.Lp_intf.BACKEND})
    so the float instantiation can run on the specialized unboxed kernel
    ({!Repro_lp.Simplex_float}) while the exact-rational one keeps the
    functorized simplex as the correctness oracle. The cutting-plane
    solvers use the backend's warm-start path: each violated constraint is
    appended to the live tableau and the master re-optimizes from the
    previous basis instead of re-running two-phase from scratch. *)

module Make_backend
    (F : Repro_field.Field.S)
    (Lp : Repro_lp.Lp_intf.BACKEND with type num = F.t) : sig
  module Gm : module type of Repro_game.Game.Make (F)
  module W : module type of Repro_game.Weighted.Make (F)
  module G : module type of Gm.G

  (** The backend itself, with its types kept transparent (so e.g.
      [Float.Lp.problem] is [Repro_lp.Simplex_float.problem] and external
      solvers interoperate with [broadcast_problem]). *)
  module Lp : module type of struct
    include Lp
  end

  type result = {
    subsidy : F.t array; (** edge-indexed; zero outside the target *)
    cost : F.t; (** total subsidies *)
  }

  type cutting_plane_stats = {
    rounds : int;
    generated : int;
    converged : bool;
        (** [false] = the loop hit [max_rounds] with violated constraints
            still outstanding; consumers should warn, not silently pass the
            last iterate through *)
    pivots : int; (** total simplex pivots across all master solves *)
  }

  (** LP (3): the compact broadcast formulation — one variable per tree
      edge, one constraint per (player, incident non-tree edge) with the
      LCA cancellation of Lemma 2's proof. *)
  val broadcast : Gm.spec -> root:int -> G.Tree.t -> result

  (** The LP (3) instance without solving it, plus its variable layout:
      [edge_of_var.(k)] is the tree-edge id of LP variable [k]. The
      branch-and-bound SND engine builds the problem here and solves it
      through the kernel's cross-solve warm start. *)
  val broadcast_problem : Gm.spec -> root:int -> G.Tree.t -> Lp.problem * int array

  (** Clamp an LP (3) solution into an edge-indexed subsidy assignment
      (the [broadcast] postprocessing, exposed for external solves). *)
  val broadcast_extract : Gm.spec -> Lp.solution -> int array -> result

  (** The weighted one-non-tree-edge analogue of LP (3). For unit demands
      this is exact (Lemma 2); for general demands it is only a
      {e relaxation} — see [weighted_cutting_plane]. *)
  val weighted_broadcast : W.spec -> root:int -> G.Tree.t -> result

  (** One separation round's per-player oracles, batched: [oracle i] for
      each player, results in player order. A [pool] of size > 1 fans the
      (read-only) best-response Dijkstras out over its domains with
      guided chunking; otherwise the sweep is serial. Exposed so the
      benches can time serial vs parallel separation on identical
      subsidy vectors. Instrumented under [sne.separate.*]. *)
  val oracle_sweep :
    ?pool:Repro_parallel.Parallel.Pool.t -> n_players:int -> (int -> 'a) -> 'a array

  (** Exact weighted SNE by constraint generation with the weighted
      best-response oracle. Lemma 2's single-edge deviation family is
      insufficient for weighted games (the tests pin a witness), so the
      exact solver generates violated path constraints until none remain.
      [warm] (default [true]) re-optimizes each master from the previous
      basis; [warm:false] forces cold restarts (for benchmarks/tests).
      [pool] parallelizes each round's separation oracles; the generated
      cut sequence is identical either way (cuts are deduplicated within
      a round and appended in player order). [poll] is called once per
      round and may raise (e.g. {!Repro_parallel.Parallel.Cancelled} from a
      service deadline) to abort the loop between master solves; the
      exception propagates to the caller. [on_round] is the streaming
      progress hook: fired once per separation round that found violated
      cuts (with the 0-based round index and that round's deduplicated
      cut count), before the master re-solve, on the solving domain — a
      service shard forwards it to the client as a progress frame. It
      must be cheap and must not raise. *)
  val weighted_cutting_plane :
    ?warm:bool ->
    ?max_rounds:int ->
    ?pool:Repro_parallel.Parallel.Pool.t ->
    ?poll:(unit -> unit) ->
    ?on_round:(round:int -> cuts:int -> unit) ->
    W.spec ->
    state:Gm.state ->
    result * cutting_plane_stats

  (** LP (2): the polynomial-size formulation for general games —
      shortest-path potentials pi_i(v) simulate the separation oracle
      inside the LP. *)
  val poly : Gm.spec -> state:Gm.state -> result

  (** The LP (1) box-only master for a graph: minimize total subsidies
      with 0 <= b_a <= w_a, no path constraints yet; variable id = edge
      id. This is the cutting-plane loop's starting master; the
      incremental session ({!Sne_session}) instead builds a master
      restricted to tree-edge variables (optimal LP (1) subsidies vanish
      off the target tree). *)
  val box_master : G.t -> Lp.problem

  (** The LP (1) cut for player [i] forced below the cost of deviation
      path [path], built against the given [state] and [usage] (which
      must be [Gm.usage spec state]). Any source->root path yields a
      valid member of the LP (1) family when recomputed this way, which
      is what lets the incremental session re-use cuts separated before a
      delta: coefficients are rebuilt against current weights/usage, so
      the seeded master is a relaxation of LP (1) and never cuts off the
      optimum. *)
  val lp1_path_constraint :
    Gm.spec -> state:Gm.state -> usage:int array -> int -> int list -> Lp.constr

  (** LP (1) solved by cutting planes: the paper's ellipsoid + Dijkstra
      separation oracle, run as the standard constraint-generation loop
      (DESIGN.md §2), warm-started between rounds. [pool] runs each
      round's per-player oracles concurrently (see {!oracle_sweep});
      [poll] is the per-round cancellation hook and [on_round] the
      per-round streaming progress hook (see
      {!weighted_cutting_plane}). *)
  val cutting_plane :
    ?warm:bool ->
    ?max_rounds:int ->
    ?pool:Repro_parallel.Parallel.Pool.t ->
    ?poll:(unit -> unit) ->
    ?on_round:(round:int -> cuts:int -> unit) ->
    Gm.spec ->
    state:Gm.state ->
    result * cutting_plane_stats
end

module Make (F : Repro_field.Field.S) :
  module type of Make_backend (F) (Repro_lp.Simplex.Make (F))

module Float :
  module type of Make_backend (Repro_field.Field.Float_field) (Repro_lp.Simplex_float)

(** The float games on the sparse revised-simplex kernel
    ({!Repro_lp.Revised_sparse}) — selected by the CLI/benches with
    [--backend sparse]. Shares the graph/game modules with {!Float} (the
    functors are applicative), so trees and specs move freely between the
    two; only the [Lp] types differ. *)
module Float_sparse :
  module type of Make_backend (Repro_field.Field.Float_field) (Repro_lp.Revised_sparse)

module Rat : module type of Make (Repro_field.Field.Rat)
