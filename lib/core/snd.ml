(** STABLE NETWORK DESIGN: find the cheapest network enforceable within a
    subsidy budget.

    SND is NP-hard even for broadcast games with budget zero (Theorem 3), so
    there is an exact solver for small instances (spanning-tree enumeration,
    each tree priced by the LP (3) optimum) and two heuristics for larger
    ones. All operate on broadcast games with spanning-tree designs; by the
    cycle argument of Section 2 this loses nothing. *)

module Make (F : Repro_field.Field.S) = struct
  module Gm = Repro_game.Game.Make (F)
  module G = Gm.G
  module Sne = Sne_lp.Make (F)
  module Aon = Aon.Make (F)

  type design = {
    tree_edges : int list;
    weight : F.t; (* social cost of the design *)
    subsidy : F.t array;
    subsidy_cost : F.t;
  }

  let design_of_tree spec ~root graph ids =
    let tree = G.Tree.of_edge_ids graph ~root ids in
    let r = Sne.broadcast spec ~root tree in
    {
      tree_edges = ids;
      weight = G.total_weight graph ids;
      subsidy = r.Sne.subsidy;
      subsidy_cost = r.Sne.cost;
    }

  (** Exact SND by exhaustive enumeration: every spanning tree priced, the
      lightest affordable one kept. Kept as the reference oracle for the
      branch-and-bound engine (differential tests, benchmark baselines);
      [exact_small] below returns the same design with far fewer LP solves. *)
  let exact_small_brute ~graph ~root ~budget =
    let spec = Gm.broadcast ~graph ~root in
    let best = ref None in
    G.Enumerate.iter_spanning_trees graph ~f:(fun ids ->
        let w = G.total_weight graph ids in
        let promising =
          match !best with Some d -> F.lt w d.weight | None -> true
        in
        if promising then begin
          let d = design_of_tree spec ~root graph ids in
          if F.leq d.subsidy_cost budget then best := Some d
        end);
    !best

  module Search = Snd_search.Make (F)

  let design_of_search (d : Search.design) =
    {
      tree_edges = d.Search.tree_edges;
      weight = d.Search.weight;
      subsidy = d.Search.subsidy;
      subsidy_cost = d.Search.subsidy_cost;
    }

  (** Exact SND on small instances: the lightest spanning tree whose
      minimum enforcement cost fits the budget. Such a tree always exists
      when [budget >= 0] is large enough; with small budgets the best
      equilibrium tree of the unsubsidized game is still feasible at
      subsidy 0, so the result is [None] only for disconnected graphs.
      Runs the branch-and-bound engine ({!Snd_search}); returns exactly
      what [exact_small_brute] returns. *)
  let exact_small ~graph ~root ~budget =
    let d, _stats = Search.exact_small ~graph ~root ~budget () in
    Option.map design_of_search d

  (** The integral (all-or-nothing) version of SND, as defined in
      Section 2: subsidies must cover whole edges. Enumerate spanning
      trees, price each with the exact all-or-nothing solver, keep the
      lightest within budget. Doubly exponential (trees x subsets):
      genuinely tiny instances only — which is the point; Theorem 12 says
      nothing better exists in general. *)
  let exact_small_aon ?(max_nodes = 500_000) ~graph ~root ~budget () =
    let spec = Gm.broadcast ~graph ~root in
    let best = ref None in
    G.Enumerate.iter_spanning_trees graph ~f:(fun ids ->
        let w = G.total_weight graph ids in
        let promising =
          match !best with Some (bw, _, _) -> F.lt w bw | None -> true
        in
        if promising then begin
          let tree = G.Tree.of_edge_ids graph ~root ids in
          let r = Aon.solve_exact ~max_nodes spec tree in
          if r.Aon.optimal && F.leq r.Aon.cost budget then best := Some (w, ids, r)
        end);
    Option.map
      (fun (w, ids, (r : Aon.result)) ->
        {
          tree_edges = ids;
          weight = w;
          subsidy = Aon.subsidy_of_chosen graph r.Aon.chosen;
          subsidy_cost = r.Aon.cost;
        })
      !best

  (** The designer's budget menu — the paper's motivating question "what is
      the best design the network designer can guarantee given this
      budget?" made concrete: all Pareto-optimal (subsidy budget, design
      weight) pairs over spanning trees, cheapest-weight first. Walking the
      list left to right, each point is the cheapest enforceable design
      whose required budget does not exceed the given one. Exponential
      (tree enumeration x one LP each): small instances. *)
  let pareto_frontier_brute ~graph ~root =
    let spec = Gm.broadcast ~graph ~root in
    let points = ref [] in
    G.Enumerate.iter_spanning_trees graph ~f:(fun ids ->
        let d = design_of_tree spec ~root graph ids in
        points := d :: !points);
    (* Sort by weight, then cost; keep the strictly-decreasing-cost
       frontier. *)
    let sorted =
      List.sort
        (fun a b ->
          let c = F.compare a.weight b.weight in
          if c <> 0 then c else F.compare a.subsidy_cost b.subsidy_cost)
        !points
    in
    let frontier = ref [] in
    List.iter
      (fun d ->
        match !frontier with
        | best :: _ when F.leq best.subsidy_cost d.subsidy_cost -> ()
        | _ -> frontier := d :: !frontier)
      sorted;
    List.rev !frontier

  (** Same frontier, computed by the branch-and-bound engine with
      incremental dominance filtering instead of pricing every tree. *)
  let pareto_frontier ~graph ~root =
    let ds, _stats = Search.pareto_frontier ~graph ~root () in
    List.map design_of_search ds

  (** The cheapest design enforceable within [budget], read off a
      precomputed frontier. *)
  let best_for_budget frontier ~budget =
    List.fold_left
      (fun acc d ->
        if F.leq d.subsidy_cost budget then
          match acc with
          | Some best when F.leq best.weight d.weight -> acc
          | _ -> Some d
        else acc)
      None frontier

  (** The Theorem 6-flavoured heuristic: take a minimum spanning tree and
      price its enforcement with the LP; feasible iff the optimum fits the
      budget (and by Theorem 6 a budget of wgt(MST)/e always suffices). *)
  let mst_heuristic ~graph ~root ~budget =
    match G.mst_kruskal graph with
    | None -> None
    | Some ids ->
        let spec = Gm.broadcast ~graph ~root in
        let d = design_of_tree spec ~root graph ids in
        if F.leq d.subsidy_cost budget then Some d else None

  (** Local search: start from the MST; while enforcement exceeds the
      budget, try single edge swaps (add one non-tree edge, drop one tree
      edge on the created cycle) and move to the swap that minimizes
      (infeasibility, weight) lexicographically. Returns the first feasible
      design found, or [None] after [max_iters] rounds without one. *)
  let local_search ?(max_iters = 50) ~graph ~root ~budget () =
    match G.mst_kruskal graph with
    | None -> None
    | Some start ->
        let spec = Gm.broadcast ~graph ~root in
        let rec improve ids iter =
          let d = design_of_tree spec ~root graph ids in
          if F.leq d.subsidy_cost budget then Some d
          else if iter >= max_iters then None
          else begin
            let tree = G.Tree.of_edge_ids graph ~root ids in
            let best = ref None in
            let consider ids' =
              let d' = design_of_tree spec ~root graph ids' in
              let over = F.max F.zero (F.sub d'.subsidy_cost budget) in
              let key = (over, d'.weight) in
              let better =
                match !best with
                | None -> true
                | Some ((o, w), _) ->
                    let c = F.compare (fst key) o in
                    c < 0 || (c = 0 && F.compare (snd key) w < 0)
              in
              if better then best := Some (key, ids')
            in
            G.fold_edges graph ~init:() ~f:(fun () e ->
                if not (G.Tree.mem_edge tree e.G.id) then
                  (* Swapping e in: any tree edge on the path between its
                     endpoints can leave. *)
                  List.iter
                    (fun out ->
                      let ids' =
                        List.sort compare (e.G.id :: List.filter (( <> ) out) ids)
                      in
                      consider ids')
                    (G.Tree.path_between tree e.G.u e.G.v));
            match !best with
            | Some ((over, _), ids') when F.sign over = 0 -> improve ids' iter
            | Some (_, ids') when ids' <> ids -> improve ids' (iter + 1)
            | _ -> None
          end
        in
        improve start 0
end

module Float = Make (Repro_field.Field.Float_field)
module Rat = Make (Repro_field.Field.Rat)
