(** All-or-nothing STABLE NETWORK ENFORCEMENT (Section 5).

    Every subsidy is either the full edge weight or nothing. The
    optimization version is inapproximable within any factor (Theorem 12),
    so this module provides what is actually possible:

    - [solve_exact]: branch-and-bound over the subsets of positive-weight
      tree edges. Note that feasibility is {e not} monotone in the subsidy
      set — subsidizing an edge can make a {e deviation} cheaper and break a
      different player's constraint — so the search cannot prune by
      "more subsidies are always safe" and checks full assignments, cut only
      by the cost bound.
    - [greedy]: repeatedly fixes the most violated Lemma 2 constraint by
      fully subsidizing the least-crowded unsubsidized edge on the violated
      player's path (mirroring the packing intuition of Theorem 6). Always
      terminates with a feasible assignment.
    - [lp_rounding]: rounds the fractional LP (3) optimum up; sound only
      when the resulting assignment happens to pass the equilibrium check
      (returned as [None] otherwise), included as a benchmark baseline. *)

module Make (F : Repro_field.Field.S) = struct
  module Gm = Repro_game.Game.Make (F)
  module G = Gm.G
  module Sne = Sne_lp.Make (F)
  module Obs = Repro_obs.Obs

  let c_solves = Obs.counter "aon.exact_solves"
  let c_nodes = Obs.counter "aon.nodes_explored"
  let c_truncated = Obs.counter "aon.truncated"

  type result = {
    chosen : bool array; (* per edge id: fully subsidized? *)
    cost : F.t;
    nodes_explored : int; (* search nodes for solve_exact; iterations for greedy *)
    optimal : bool; (* true iff the search ran to completion *)
  }

  let subsidy_of_chosen graph chosen =
    Array.init (G.n_edges graph) (fun id -> if chosen.(id) then G.weight graph id else F.zero)

  let cost_of_chosen graph chosen =
    let acc = ref F.zero in
    Array.iteri (fun id c -> if c then acc := F.add !acc (G.weight graph id)) chosen;
    !acc

  (** Is the tree an equilibrium when exactly [chosen] is subsidized? *)
  let enforces spec (tree : G.Tree.t) chosen =
    let subsidy = subsidy_of_chosen spec.Gm.graph chosen in
    Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree

  (** Exact minimum all-or-nothing subsidy enforcing [tree], by
      branch-and-bound over the positive-weight tree edges (zero-weight
      edges never need subsidizing). [max_nodes] caps the search; if hit,
      the best assignment found so far is returned with [optimal = false].
      Fully subsidizing everything is always feasible, so a result always
      exists. *)
  let solve_exact ?(max_nodes = 2_000_000) spec (tree : G.Tree.t) =
    Obs.incr c_solves;
    Obs.span "aon.solve_exact" @@ fun () ->
    let graph = spec.Gm.graph in
    let candidates =
      G.Tree.edge_ids tree
      |> List.filter (fun id -> F.sign (G.weight graph id) > 0)
      (* Heaviest first: the "subsidize" branch gets expensive early, so the
         cost bound prunes sooner. *)
      |> List.sort (fun a b -> F.compare (G.weight graph b) (G.weight graph a))
      |> Array.of_list
    in
    let k = Array.length candidates in
    let chosen = Array.make (G.n_edges graph) false in
    (* Start from the always-feasible full subsidy. *)
    let best_chosen = Array.copy chosen in
    Array.iter (fun id -> best_chosen.(id) <- true) candidates;
    let best_cost = ref (cost_of_chosen graph best_chosen) in
    let explored = ref 0 in
    let truncated = ref false in
    let rec go i cost =
      if !explored >= max_nodes then truncated := true
      else begin
        incr explored;
        if F.lt cost !best_cost then begin
          if i = k then begin
            if enforces spec tree chosen then begin
              best_cost := cost;
              Array.blit chosen 0 best_chosen 0 (Array.length chosen)
            end
          end
          else begin
            let id = candidates.(i) in
            (* Cheaper branch first. *)
            go (i + 1) cost;
            chosen.(id) <- true;
            go (i + 1) (F.add cost (G.weight graph id));
            chosen.(id) <- false
          end
        end
      end
    in
    go 0 F.zero;
    Obs.add c_nodes !explored;
    if !truncated then Obs.incr c_truncated;
    {
      chosen = best_chosen;
      cost = !best_cost;
      nodes_explored = !explored;
      optimal = not !truncated;
    }

  (** Greedy repair: while some Lemma 2 constraint is violated, fully
      subsidize the least-crowded positive-weight unsubsidized edge on the
      violated player's side of the constraint. Each step subsidizes a new
      edge, and with the whole path subsidized the constraint holds, so at
      most n-1 steps are needed. *)
  let greedy spec (tree : G.Tree.t) =
    let graph = spec.Gm.graph in
    let chosen = Array.make (G.n_edges graph) false in
    let rec fix steps =
      let subsidy = subsidy_of_chosen graph chosen in
      match Gm.Broadcast.tree_violation ~subsidy spec tree with
      | None -> steps
      | Some (u, _, v, _) ->
          let l = G.Tree.lca tree u v in
          let candidates =
            G.Tree.path_between tree u l
            |> List.filter (fun id -> (not chosen.(id)) && F.sign (G.weight graph id) > 0)
          in
          (match candidates with
          | [] ->
              (* Impossible: a fully-subsidized path has zero cost and the
                 constraint's right-hand side is non-negative. *)
              failwith "Aon.greedy: violated constraint with fully subsidized path"
          | first :: rest ->
              let least_crowded =
                List.fold_left
                  (fun best id ->
                    if G.Tree.usage tree id < G.Tree.usage tree best then id else best)
                  first rest
              in
              chosen.(least_crowded) <- true);
          fix (steps + 1)
    in
    let steps = fix 0 in
    { chosen; cost = cost_of_chosen graph chosen; nodes_explored = steps; optimal = false }

  (** Round the fractional LP (3) optimum up to full subsidies. Unsound in
      general (feasibility is not monotone); [None] when the rounded
      assignment fails the equilibrium check. *)
  let lp_rounding spec ~root (tree : G.Tree.t) =
    let graph = spec.Gm.graph in
    let frac = Sne.broadcast spec ~root tree in
    let chosen =
      Array.init (G.n_edges graph) (fun id -> F.sign frac.Sne.subsidy.(id) > 0)
    in
    if enforces spec tree chosen then
      Some { chosen; cost = cost_of_chosen graph chosen; nodes_explored = 0; optimal = false }
    else None
end

module Float = Make (Repro_field.Field.Float_field)
module Rat = Make (Repro_field.Field.Rat)
