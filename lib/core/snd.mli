(** STABLE NETWORK DESIGN: the cheapest network enforceable within a
    subsidy budget. NP-hard even at budget zero (Theorem 3), so: an exact
    solver for small instances, the budget/weight Pareto frontier (the
    paper's motivating trade-off, computed exactly), and two heuristics. *)

module Make (F : Repro_field.Field.S) : sig
  module Gm : module type of Repro_game.Game.Make (F)
  module G : module type of Gm.G
  module Sne : module type of Sne_lp.Make (F)

  type design = {
    tree_edges : int list;
    weight : F.t; (** social cost of the design *)
    subsidy : F.t array;
    subsidy_cost : F.t; (** its minimum enforcement cost (LP (3)) *)
  }

  module Aon : module type of Aon.Make (F)

  (** Exact SND: lightest spanning tree whose LP enforcement cost fits the
      budget; [None] only on disconnected graphs. Runs the branch-and-bound
      engine ({!Snd_search}) — weight-ordered search with admissible
      pruning — and returns exactly what {!exact_small_brute} returns. *)
  val exact_small : graph:G.t -> root:int -> budget:F.t -> design option

  (** The seed exhaustive solver (every spanning tree priced), kept as the
      reference oracle for differential tests and benchmark baselines. *)
  val exact_small_brute : graph:G.t -> root:int -> budget:F.t -> design option

  (** The integral SND of Section 2 (whole-edge subsidies): tree
      enumeration x exact all-or-nothing pricing. Doubly exponential;
      tiny instances. *)
  val exact_small_aon :
    ?max_nodes:int -> graph:G.t -> root:int -> budget:F.t -> unit -> design option

  (** All Pareto-optimal (required budget, design weight) pairs over
      spanning trees, cheapest weight first — the designer's menu.
      Computed by the branch-and-bound engine with incremental dominance
      filtering; identical to {!pareto_frontier_brute}. *)
  val pareto_frontier : graph:G.t -> root:int -> design list

  (** The seed price-every-tree frontier computation (reference oracle). *)
  val pareto_frontier_brute : graph:G.t -> root:int -> design list

  (** Cheapest design on a precomputed frontier affordable at [budget]. *)
  val best_for_budget : design list -> budget:F.t -> design option

  (** Price the MST's enforcement; feasible iff it fits the budget (by
      Theorem 6 a budget of wgt(MST)/e always does). *)
  val mst_heuristic : graph:G.t -> root:int -> budget:F.t -> design option

  (** Edge-swap local search from the MST toward a feasible design. *)
  val local_search :
    ?max_iters:int -> graph:G.t -> root:int -> budget:F.t -> unit -> design option
end

module Float : module type of Make (Repro_field.Field.Float_field)
module Rat : module type of Make (Repro_field.Field.Rat)
