(** The paper's lower-bound instance families: the unit cycle of Theorem 11
    (fractional subsidies approach wgt(T)/e) and the shortcut path of
    Theorem 21 (all-or-nothing subsidies approach e/(2e-1)·wgt(T)). *)

module Make (F : Repro_field.Field.S) : sig
  module Gm : module type of Repro_game.Game.Make (F)
  module G : module type of Gm.G

  type instance = {
    graph : G.t;
    root : int;
    tree_edge_ids : int list; (** the target spanning tree *)
  }

  val spec : instance -> Gm.spec
  val tree : instance -> G.Tree.t

  (** Admissible lower bound on the LP (3) enforcement optimum of a
      spanning tree, computed without an LP solve: the max over violated
      deviation rows of [(-rhs) * min_{a in q1} n_a] (see the
      implementation note). Exact in the field's arithmetic; 0 when the
      tree is already an equilibrium. The branch-and-bound SND engine
      uses it to discard trees whose enforcement provably exceeds the
      budget (or the incumbent frontier cost) before pricing them. *)
  val broadcast_enforcement_lb : Gm.spec -> root:int -> G.Tree.t -> F.t

  (** Theorem 11: unit cycle on n+1 nodes, target = the spanning path
      (the edge (root, v_1) is the dropped temptation). Needs n >= 2. *)
  val cycle_instance : n:int -> instance

  (** Theorem 21: path of weight-[x] edges with a final weight-1 edge, plus
      shortcut edges (root, v_{n-1}) of weight x and (root, v_n) of
      weight 1. The paper's bound uses x = 1/(n - n/e + 1)
      ({!theorem21_x}); any x in (0, 1] is a valid instance. *)
  val aon_path_instance : n:int -> x:F.t -> instance
end

module Float : module type of Make (Repro_field.Field.Float_field)
module Rat : module type of Make (Repro_field.Field.Rat)

(** x = 1/(n - n/e + 1), as a float. *)
val theorem21_x : n:int -> float
