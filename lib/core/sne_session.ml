(** Incremental re-solve sessions for the LP (1) cutting-plane SNE solver.

    A session retains, across instance deltas, the two artifacts a cold
    solve rebuilds from nothing every time:

    - the {e separated-cut pool}: the deviation paths discovered by the
      Dijkstra oracle in previous resolves, keyed by source {e node} (not
      player index — node identity survives the renumbering of
      [Serial.Delta.Remove_player] via the edge/node maps);
    - the {e optimal basis}: the structural (edge) variables basic at the
      previous optimum, fed to the kernels' cross-solve dual-simplex warm
      start ([solve_dual_incremental ~hint]).

    On [resolve] the retained paths are rebuilt into LP (1) constraints
    against the {e current} state/usage/weights with
    [Sne_lp.lp1_path_constraint]. Any source->root path yields a valid
    member of the LP (1) family under recomputation, so the seeded master
    is a relaxation of LP (1): it can never cut off the optimum, and since
    SNE is always feasible an [Infeasible] outcome still indicates a bug
    and raises. Fresh separation then runs only for the violations the
    pool missed — on small deltas typically zero or one round.

    Sessions are single-owner: no internal locking. The service layer
    wraps each session in its own mutex. *)

module F = Repro_field.Field.Float_field
module Obs = Repro_obs.Obs

let c_resolves = Obs.counter "sne.session.resolves"
let c_mutations = Obs.counter "sne.session.mutations"
let c_reused = Obs.counter "sne.session.cuts_reused"
let c_fresh = Obs.counter "sne.session.cuts_fresh"
let c_dropped = Obs.counter "sne.session.pool_dropped"

(* Resident-master bookkeeping: a resolve that re-binds the retained
   kernel state in place ticks [master_patched]; one that had a master
   but could not patch it (structural delta, pool churn, or a dense
   tableau past its dual layout) ticks [master_rebuilds]. The very first
   build of a session is neither. *)
let c_master_patched = Obs.counter "service.session.master_patched"
let c_master_rebuilds = Obs.counter "service.session.master_rebuilds"

(** What the session needs beyond {!Repro_lp.Lp_intf.BACKEND}: the
    cross-solve dual-simplex warm start both float kernels expose, plus
    the in-place [patch] re-bind that keeps one kernel state resident
    across weight-only resolves. *)
module type WARM_KERNEL = sig
  include Repro_lp.Lp_intf.BACKEND with type num = float

  val solve_dual_incremental : ?hint:int list -> problem -> state * outcome
  val basis_hint : state -> int list
  val patch : state -> problem -> outcome option
end

module Make_kernel (K : WARM_KERNEL) = struct
  module Sne = Sne_lp.Make_backend (F) (K)
  module Gm = Sne.Gm
  module G = Sne.G
  module Ser = Serial.Float

  type resolve_stats = {
    pivots : int;  (** simplex pivots this resolve *)
    rounds : int;  (** separation rounds beyond the seeded master *)
    reused_cuts : int;  (** pool cuts rebuilt and seeded *)
    fresh_cuts : int;  (** cuts separated anew this resolve *)
    pool_size : int;  (** pool size after the resolve *)
    warm : bool;  (** a basis hint from a previous resolve was used *)
    converged : bool;
  }

  type t = {
    mutable inst : Ser.t;
    max_rounds : int;
    pool_cap : int;
    mutable pool : (int * int list) list;  (** (source node, path edge ids), newest first *)
    mutable basis : int list;  (** edge ids basic at the last optimum *)
    mutable master : K.state option;  (** resident kernel state, re-bound by [K.patch] *)
    mutable generation : int;  (** deltas applied since [create] *)
  }

  let create ?(max_rounds = 500) ?(pool_cap = 4096) inst =
    { inst; max_rounds; pool_cap; pool = []; basis = []; master = None; generation = 0 }

  let instance t = t.inst
  let generation t = t.generation
  let pool_size t = List.length t.pool

  (** Digest of the canonical serialization — the same bytes a cold parse
      of [to_string] would hash, by the [Serial.Delta] canonicality
      guarantee. *)
  let digest t = Repro_util.Digestx.of_string (Ser.to_string t.inst)

  (* Remap a retained (node, path) pool entry across a delta. Dropping an
     entry is always sound (the pool is an optimization); keeping a wrong
     one is not, so anything ambiguous dies. *)
  let remap_pool (delta : Ser.Delta.t) (applied : Ser.Delta.applied) pool =
    let old_m = Array.length applied.Ser.Delta.edge_map in
    let map_path path =
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | id :: rest ->
            if id < 0 || id >= old_m then None
            else
              let id' = applied.Ser.Delta.edge_map.(id) in
              if id' < 0 then None else go (id' :: acc) rest
      in
      go [] path
    in
    let map_node u =
      match delta with
      | Ser.Delta.Remove_player { node } ->
          if u = node then None else Some (if u > node then u - 1 else u)
      | _ -> Some u
    in
    List.filter_map
      (fun (u, path) ->
        match map_node u with
        | None -> None
        | Some u' -> (
            match map_path path with Some p -> Some (u', p) | None -> None))
      pool

  let mutate t delta =
    let applied = Ser.Delta.apply t.inst delta in
    let before = List.length t.pool in
    t.pool <- remap_pool delta applied t.pool;
    Obs.add c_dropped (before - List.length t.pool);
    (* Basis edge ids survive exactly when the edge does. *)
    let old_m = Array.length applied.Ser.Delta.edge_map in
    t.basis <-
      List.filter_map
        (fun id ->
          if id < 0 || id >= old_m then None
          else
            let id' = applied.Ser.Delta.edge_map.(id) in
            if id' < 0 then None else Some id')
        t.basis;
    t.inst <- applied.Ser.Delta.inst;
    t.generation <- t.generation + 1;
    Obs.incr c_mutations;
    applied

  let ok_or_fail ~what = function
    | K.Optimal s -> s
    | K.Infeasible -> failwith (what ^ ": LP infeasible (SNE is always feasible; bug)")
    | K.Unbounded -> failwith (what ^ ": LP unbounded (objective is >= 0; bug)")

  (* Mathematical-content key, mirroring the cutting-plane loop's
     within-round dedup: symmetric deviations produce identical rows. *)
  let cut_key (c : K.constr) =
    let coeffs = List.sort (fun (a, _) (b, _) -> compare a b) c.K.coeffs in
    String.concat ";"
      (List.map (fun (k, v) -> Printf.sprintf "%d:%s" k (F.to_string v)) coeffs)
    ^ Printf.sprintf "|%s" (F.to_string c.K.rhs)

  let resolve ?pool:_ ?(poll = fun () -> ()) t =
    Obs.incr c_resolves;
    Obs.span "sne.session.resolve" @@ fun () ->
    let inst = t.inst in
    let graph = inst.Ser.graph in
    let root = inst.Ser.root in
    let n = G.n_nodes graph and m = G.n_edges graph in
    let tree = Ser.target_tree inst in
    let spec = Gm.broadcast ~graph ~root in
    let state = Gm.Broadcast.state_of_tree spec ~root tree in
    let usage = Gm.usage spec state in
    (* The master is restricted to tree-edge variables. Some optimal
       LP (1) solution always has b_a = 0 off the target tree: an off-tree
       subsidy leaves every player's current cost unchanged (the enforced
       state uses tree edges only) while cheapening deviations, so zeroing
       it preserves feasibility and lowers the objective. Fixing those
       variables shrinks the dense master from m rows of compiled upper
       bounds to n-1, which is what makes a steady-state warm resolve
       cheap. Projecting a cut = dropping its off-tree coefficients
       (exact, since those variables are fixed at zero). *)
    let tree_ids = G.Tree.edge_ids tree in
    let n_tv = List.length tree_ids in
    let edge_of_var = Array.of_list tree_ids in
    let var_of_edge = Array.make m (-1) in
    Array.iteri (fun k id -> var_of_edge.(id) <- k) edge_of_var;
    let project (c : K.constr) =
      let coeffs =
        List.filter_map
          (fun (id, x) ->
            let k = var_of_edge.(id) in
            if k < 0 then None else Some (k, x))
          c.K.coeffs
      in
      (* An empty projection is a constant inequality; validity of the
         recomputed row at b_tree = w (full subsidy: every current cost is
         0 <= any deviation cost) makes it hold, so dropping is exact. *)
      match coeffs with [] -> None | _ -> Some { c with K.coeffs }
    in
    (* Revalidate the pool against the current instance; mutate already
       remapped ids, so this only drops entries made nonsensical by root
       moves or ids beyond a shrunk instance. *)
    let valid (u, path) =
      u >= 0 && u < n && u <> root && path <> []
      && List.for_all (fun id -> id >= 0 && id < m) path
    in
    t.pool <- List.filter valid t.pool;
    let seen = Hashtbl.create 64 in
    let constraint_of (u, path) =
      project
        (Sne.lp1_path_constraint spec ~state ~usage (Gm.broadcast_player ~root u) path)
    in
    let retained =
      List.filter_map
        (fun entry ->
          match constraint_of entry with
          | None -> None
          | Some c ->
              let k = cut_key c in
              if Hashtbl.mem seen k then None
              else begin
                Hashtbl.add seen k ();
                Some c
              end)
        (List.rev t.pool (* oldest first, so newest win LRU-style capping *))
    in
    let reused = List.length retained in
    Obs.add c_reused reused;
    let base =
      K.make_problem ~n_vars:n_tv
        ~var_name:(fun k -> Printf.sprintf "b_e%d" edge_of_var.(k))
        ~minimize:(List.init n_tv (fun k -> (k, F.one)))
        ~constraints:retained
        ~lower:(Array.make n_tv (Some F.zero))
        ~upper:(Array.init n_tv (fun k -> Some (G.weight graph edge_of_var.(k))))
        ()
    in
    (* Retained basis entries are edge ids; only those still in the tree
       name variables of this master. *)
    let hint =
      List.filter_map
        (fun id ->
          if id >= 0 && id < m && var_of_edge.(id) >= 0 then Some var_of_edge.(id)
          else None)
        t.basis
    in
    let what = "Sne_session.resolve" in
    (* Prefer re-binding the resident master in place: [K.patch] verifies
       the constraint matrix entry-for-entry against its live storage, so
       it succeeds exactly when this resolve's master has the same rows
       as the last one's (weight-only deltas in steady state) and only
       rhs / objective / box bounds moved — the factorized basis, cuts
       and pricing state all survive. Anything structural (player or
       edge deltas, pool churn changing the retained set) makes patch
       return [None] and we rebuild from the basis hint as before. *)
    let p0 = ref 0 in
    let st, outcome, warm =
      Obs.span "sne.session.master" (fun () ->
          let patched =
            match t.master with
            | None -> None
            | Some st -> (
                let before = K.pivots st in
                match K.patch st base with
                | Some out ->
                    Obs.incr c_master_patched;
                    p0 := before;
                    Some (st, out, true)
                | None ->
                    Obs.incr c_master_rebuilds;
                    None)
          in
          match patched with
          | Some r -> r
          | None ->
              let st, out = K.solve_dual_incremental ~hint base in
              p0 := 0;
              (st, out, hint <> []))
    in
    t.master <- Some st;
    let clamp (s : K.solution) =
      let b = Array.make m 0.0 in
      Array.iteri
        (fun k id ->
          b.(id) <- Float.max 0.0 (Float.min s.K.values.(k) (G.weight graph id)))
        edge_of_var;
      b
    in
    let fresh_count = ref 0 in
    (* Separation specialized to tree states via Lemma 2: the session
       always enforces [state_of_tree tree], and for spanning trees of
       broadcast games single-non-tree-edge deviations are a complete
       equilibrium check — so instead of one best-response Dijkstra per
       player per round (the generic LP (1) oracle, O(n m log n) per
       sweep), one O(n) share walk plus an O(1)-per-check slack pass over
       (endpoint, non-tree edge) pairs finds every violated player. The
       emitted cut is the most violated deviation per player: the
       (u, v)-edge followed by v's tree path, a valid LP (1) path row
       like any other, so pool reuse and the rational differential are
       unaffected. This is what turns the steady-state resolve from a
       Dijkstra-sweep cost into a few dual pivots. *)
    let find_violations subsidy =
      let shares = Gm.Broadcast.path_shares ~subsidy spec tree in
      let best = Array.make n None in
      G.fold_edges graph ~init:() ~f:(fun () e ->
          if not (G.Tree.mem_edge tree e.G.id) then
            List.iter
              (fun u ->
                if u <> root then begin
                  let v = G.other graph e.G.id u in
                  let slack =
                    Gm.Broadcast.deviation_slack ~subsidy spec tree ~shares ~u
                      ~edge_id:e.G.id ~v
                  in
                  if F.lt slack F.zero then
                    match best.(u) with
                    | Some (s, _, _) when F.leq s slack -> ()
                    | _ -> best.(u) <- Some (slack, e.G.id, v)
                end)
              [ e.G.u; e.G.v ]);
      let acc = ref [] in
      for u = n - 1 downto 0 do
        match best.(u) with
        | Some (_, edge_id, v) ->
            let path = edge_id :: G.Tree.path_to_root tree v in
            acc := (Gm.broadcast_player ~root u, path) :: !acc
        | None -> ()
      done;
      !acc
    in
    let node_of_player i = if i < root then i else i + 1 in
    let rec loop round (s : K.solution) =
      poll ();
      let subsidy = clamp s in
      let finish converged =
        ( { Sne.subsidy; cost = s.K.objective },
          {
            pivots = K.pivots st - !p0;
            rounds = round;
            reused_cuts = reused;
            fresh_cuts = !fresh_count;
            pool_size = List.length t.pool;
            warm;
            converged;
          } )
      in
      let violations =
        Obs.span "sne.session.separate" (fun () -> find_violations subsidy)
      in
      let cuts =
        List.filter_map
          (fun (i, path) ->
            match project (Sne.lp1_path_constraint spec ~state ~usage i path) with
            | None -> None
            | Some c ->
                let k = cut_key c in
                if Hashtbl.mem seen k then None
                else begin
                  Hashtbl.add seen k ();
                  t.pool <- (node_of_player i, path) :: t.pool;
                  Some c
                end)
          violations
      in
      match cuts with
      | [] -> finish true
      | _ when round >= t.max_rounds -> finish false
      | cuts ->
          fresh_count := !fresh_count + List.length cuts;
          Obs.add c_fresh (List.length cuts);
          let last =
            Obs.span "sne.session.master" (fun () ->
                List.fold_left (fun _ c -> K.add_constraint st c) K.Infeasible cuts)
          in
          loop (round + 1) (ok_or_fail ~what last)
    in
    let result, stats = loop 0 (ok_or_fail ~what outcome) in
    (* Cap the pool (newest first) and remember the basis for next time. *)
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    if List.length t.pool > t.pool_cap then begin
      Obs.add c_dropped (List.length t.pool - t.pool_cap);
      t.pool <- take t.pool_cap t.pool
    end;
    t.basis <-
      List.filter_map
        (fun k -> if k >= 0 && k < n_tv then Some edge_of_var.(k) else None)
        (K.basis_hint st);
    (result, { stats with pool_size = List.length t.pool })
end

(** The two float kernels with a genuine dual-simplex warm start. The
    game/graph modules are shared with {!Sne_lp.Float} and
    {!Sne_lp.Float_sparse} (applicative functors), so instances, trees and
    results move freely between the session and the cold solvers. *)
module Dense = Make_kernel (Repro_lp.Simplex_float)

module Sparse = Make_kernel (Repro_lp.Revised_sparse)
