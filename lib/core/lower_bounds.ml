(** The paper's lower-bound instance families.

    - Theorem 11: a unit-weight cycle on n+1 nodes, target tree = the
      n-edge path. Enforcing it needs subsidies approaching wgt(T)/e.
    - Theorem 21: a path with a heavy last edge plus two shortcut edges from
      the root; any all-or-nothing assignment enforcing it costs at least
      (e/(2e-1) - eps) * wgt(T). *)

module Make (F : Repro_field.Field.S) = struct
  module Gm = Repro_game.Game.Make (F)
  module G = Gm.G

  type instance = {
    graph : G.t;
    root : int;
    tree_edge_ids : int list; (* the target spanning tree *)
  }

  let spec i = Gm.broadcast ~graph:i.graph ~root:i.root
  let tree i = G.Tree.of_edge_ids i.graph ~root:i.root i.tree_edge_ids

  (** Theorem 11 instance: nodes r = 0, v_1 ... v_n on a unit cycle. The
      target tree drops the edge (r, v_1), so the player at v_1 is tempted
      by that direct edge and subsidies must flow to the far end of the
      path. *)
  let cycle_instance ~n =
    if n < 2 then invalid_arg "Lower_bounds.cycle_instance: n >= 2";
    (* Edge ids: 0 = (0,1) [dropped from T]; i = (i, i+1) for 1 <= i <= n-1;
       n = (n, 0). *)
    let spec_edges =
      (0, 1, F.one)
      :: List.init (n - 1) (fun i -> (i + 1, i + 2, F.one))
      @ [ (n, 0, F.one) ]
    in
    let graph = G.create ~n:(n + 1) spec_edges in
    { graph; root = 0; tree_edge_ids = List.init n (fun i -> i + 1) }

  (** Admissible lower bound on the LP (3) enforcement optimum of [tree],
      without solving any LP. Each LP (3) row says
      [sum_k alpha_k b_k <= rhs] over subsidies [b >= 0]; when a row is
      violated at b = 0 (rhs < 0), any feasible assignment must put at
      least [(-rhs) / max_k (-alpha_k)] total subsidy on its
      negative-coefficient edges, and the negative coefficients are exactly
      [-1/n_a] for the edges a on the deviator's own path segment q1. So
      [(-rhs) * min_{a in q1} n_a] bounds the total cost from below; the
      bound is the max over all rows, exact in the field's arithmetic and
      0 when the tree is already an equilibrium. The row constants mirror
      {!Sne_lp}'s [broadcast] construction (LCA cancellation of Lemma 2):
      rhs = w_e - sum_{q1} w_a/n_a + sum_{q2} w_a/(n_a+1). *)
  let broadcast_enforcement_lb (spec : Gm.spec) ~root (tree : G.Tree.t) =
    let graph = spec.Gm.graph in
    let best = ref F.zero in
    let consider u edge_id v =
      let l = G.Tree.lca tree u v in
      let rhs = ref (G.weight graph edge_id) in
      (* min n_a over the deviator-side segment; 0 = empty segment. *)
      let min_usage = ref 0 in
      List.iter
        (fun id ->
          let n = G.Tree.usage tree id in
          rhs := F.sub !rhs (F.div (G.weight graph id) (F.of_int n));
          if !min_usage = 0 || n < !min_usage then min_usage := n)
        (G.Tree.path_between tree u l);
      List.iter
        (fun id ->
          let n = G.Tree.usage tree id in
          rhs := F.add !rhs (F.div (G.weight graph id) (F.of_int (n + 1))))
        (G.Tree.path_between tree v l);
      if F.sign !rhs < 0 then begin
        (* rhs < 0 forces q1 nonempty: with q1 empty every rhs term is
           nonnegative. *)
        let lb = F.mul (F.neg !rhs) (F.of_int !min_usage) in
        if F.compare lb !best > 0 then best := lb
      end
    in
    G.fold_edges graph ~init:() ~f:(fun () e ->
        if not (G.Tree.mem_edge tree e.G.id) then
          List.iter
            (fun u -> if u <> root then consider u e.G.id (G.other graph e.G.id u))
            [ e.G.u; e.G.v ]);
    !best

  (** Theorem 21 instance: path <r, v_1, ..., v_n> with edges of weight [x]
      except the last, of weight 1; plus shortcut edges (r, v_{n-1}) of
      weight [x] and (r, v_n) of weight 1. The paper's bound takes
      x = 1/(n - n/e + 1); the instance is valid for any x in (0, 1]. *)
  let aon_path_instance ~n ~x =
    if n < 3 then invalid_arg "Lower_bounds.aon_path_instance: n >= 3";
    if F.sign x <= 0 then invalid_arg "Lower_bounds.aon_path_instance: x > 0";
    (* Edge ids: 0..n-2 = path edges (i, i+1) with weight x for i < n-1 and
       weight 1 for the last one; n-1 = (0, n-1) weight x; n = (0, n)
       weight 1. *)
    let path_edges =
      List.init n (fun i -> (i, i + 1, if i = n - 1 then F.one else x))
    in
    let graph = G.create ~n:(n + 1) (path_edges @ [ (0, n - 1, x); (0, n, F.one) ]) in
    { graph; root = 0; tree_edge_ids = List.init n (fun i -> i) }
end

module Float = Make (Repro_field.Field.Float_field)
module Rat = Make (Repro_field.Field.Rat)

(** The x of Theorem 21's proof, x = 1/(n - n/e + 1), as a float. *)
let theorem21_x ~n =
  let nf = float_of_int n in
  1.0 /. (nf -. (nf /. Stdlib.exp 1.0) +. 1.0)
