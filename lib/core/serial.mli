(** Plain-text instance serialization (the format the CLI's [--file]
    accepts): [nodes]/[root]/[edge u v w]/[tree ids...]/[subsidy id amount]
    directives, [#] comments, weights as integers, [n/d] fractions or
    decimals. The same file loads exactly into both field stacks. *)

module Make (F : Repro_field.Field.S) : sig
  module Gm : module type of Repro_game.Game.Make (F)
  module G : module type of Gm.G

  type t = {
    graph : G.t;
    root : int;
    tree_edge_ids : int list option;
    subsidy : (int * F.t) list;
  }

  (** Raises [Failure] with a line number on malformed input, including
      [tree]/[subsidy] lines referencing edge ids the instance does not
      declare (referential validation happens at parse time, not when the
      subsidy array or target tree is later materialized). *)
  val of_string : string -> t

  val to_string : t -> string
  val load : string -> t
  val save : string -> t -> unit

  (** The subsidy list as a dense per-edge array. *)
  val subsidy_array : t -> F.t array

  (** The declared target tree, or the MST when none is declared. *)
  val target_tree : t -> G.Tree.t
end

module Float : module type of Make (Repro_field.Field.Float_field)
module Rat : module type of Make (Repro_field.Field.Rat)
