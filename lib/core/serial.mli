(** Plain-text instance serialization (the format the CLI's [--file]
    accepts): [nodes]/[root]/[edge u v w]/[tree ids...]/[subsidy id amount]/
    [budget b] directives, [#] comments, weights as integers, [n/d]
    fractions or decimals. The same file loads exactly into both field
    stacks. *)

module Make (F : Repro_field.Field.S) : sig
  module Gm : module type of Repro_game.Game.Make (F)
  module G : module type of Gm.G

  type t = {
    graph : G.t;
    root : int;
    tree_edge_ids : int list option;
    subsidy : (int * F.t) list;
    budget : F.t option;  (** optional subsidy budget cap *)
  }

  (** Raises [Failure] with a line number on malformed input, including
      [tree]/[subsidy] lines referencing edge ids the instance does not
      declare (referential validation happens at parse time, not when the
      subsidy array or target tree is later materialized). *)
  val of_string : string -> t

  val to_string : t -> string
  val load : string -> t
  val save : string -> t -> unit

  (** The subsidy list as a dense per-edge array. *)
  val subsidy_array : t -> F.t array

  (** The declared target tree, or the MST when none is declared. *)
  val target_tree : t -> G.Tree.t

  (** Instance deltas — the churn vocabulary of the incremental re-solve
      path. Application preserves canonical serialization:
      [to_string (apply d i).inst] equals serializing the mutated instance
      built directly, so [Repro_util.Digestx] cache keys stay stable. *)
  module Delta : sig
    type inst = t

    type t =
      | Edge_weight of { edge : int; weight : F.t }
          (** Reweight one edge in place; ids and adjacency preserved. *)
      | Add_player of { attach : (int * F.t) list }
          (** A new node (the next dense id) wired to existing nodes;
              attachment edge ids are appended in list order. Drops any
              declared target tree (it no longer spans). *)
      | Remove_player of { node : int }
          (** Remove a non-root node; higher node ids shift down one and
              surviving edges are renumbered compactly in declaration
              order. Fails if the remainder is disconnected. *)
      | Set_budget of F.t option

    type applied = {
      inst : inst;
      edge_map : int array;
          (** old edge id -> new edge id, [-1] when the edge died. *)
      dirty_edges : int list;
          (** new-instance ids of changed/new edges (invalidation
              granularity for weight deltas). *)
      structural : bool;
          (** ids were renumbered or the node set changed — edge-keyed
              caches built against the old instance are wholesale stale. *)
    }

    (** Raises [Failure] (message prefixed "Delta:") on out-of-range ids,
        negative weights, removing the root or the last player, or a
        removal that disconnects the instance. *)
    val apply : inst -> t -> applied

    val apply_all : inst -> t list -> inst

    (** One-line text form, used in wire payloads and churn traces:
        [edge_weight ID W], [add_player U1 W1 [U2 W2 ...]],
        [remove_player NODE], [set_budget B|none]. *)
    val to_string : t -> string

    (** Parse one delta line ([#] comments allowed); raises [Failure]. *)
    val of_string : string -> t

    (** Parse a multi-line trace (blank lines and comments skipped);
        failures carry the offending line number. *)
    val list_of_string : string -> t list

    val list_to_string : t list -> string
  end
end

module Float : module type of Make (Repro_field.Field.Float_field)
module Rat : module type of Make (Repro_field.Field.Rat)
