(** Unified solver observability: one process-wide registry of named
    monotonic counters, float gauges and hierarchical wall-clock spans,
    shared by every layer of the solver stack (the simplex kernels,
    the cutting-plane loops, the SND search, the parallel pool).

    {2 Enablement and the disabled fast path}

    Instrumentation is {e disabled by default}: every [incr]/[add]/[set]
    and every [span] first reads one shared atomic flag and returns
    immediately when it is off, so instrumented hot paths cost one atomic
    load plus a branch per event (measured by [bench/lp_bench.exe] and
    recorded under ["obs_overhead"] in BENCH_lp.json; the budget is < 2%
    of solve time). Handle creation ([counter]/[gauge]) is independent of
    the flag — handles are cheap and are normally created once at module
    initialization.

    Enabling instrumentation must never change what a solver computes —
    [test/test_obs.ml] runs the cutting-plane and SND-search entry points
    with the flag on and off over random graphs and checks byte-identical
    results.

    {2 Domain-safety contract}

    - Counters and gauges accumulate through [Atomic] operations only:
      worker domains ({!Repro_parallel.Parallel.Pool}) report without
      taking any lock.
    - The span stack is per-domain ([Domain.DLS]), so concurrent spans in
      different domains nest independently; a worker's span tree is rooted
      at that domain's outermost span.
    - Registration and span aggregation take a short global mutex, on
      handle creation and span {e exit} only — never per counter event.
    - [reset]/[set_enabled] are not synchronized against in-flight
      workers; call them between solver runs, not during one. *)

(** {1 Enablement} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [with_enabled flag f] runs [f ()] with the flag set to [flag] and
    restores the previous value afterwards (also on exceptions). *)
val with_enabled : bool -> (unit -> 'a) -> 'a

(** Zero every counter and gauge and drop all recorded spans. The
    registry keeps its handles: existing counters stay valid. *)
val reset : unit -> unit

(** {1 Counters and gauges} *)

type counter

(** [counter name] returns the process-wide counter registered under
    [name], creating it at zero on first use (idempotent). *)
val counter : string -> counter

(** No-op while disabled. *)
val incr : counter -> unit

(** [add c n] bumps [c] by [n] ([n >= 0]; counters are monotonic while
    the flag is up). No-op while disabled. *)
val add : counter -> int -> unit

val value : counter -> int

type gauge

val gauge : string -> gauge

(** Overwrite the gauge. No-op while disabled. *)
val set : gauge -> float -> unit

(** Accumulate into the gauge (atomic CAS loop). No-op while disabled. *)
val accumulate : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Spans} *)

(** [span name f] times [f ()] and records the wall-clock duration under
    the current domain's span path (so nested spans aggregate
    hierarchically: ["snd.search" > "snd.price" > ...]). The duration is
    recorded even when [f] raises. While disabled this is just [f ()]. *)
val span : string -> (unit -> 'a) -> 'a

(** One node of the aggregated span tree: total seconds and number of
    completed invocations at this path, with children sorted by name. *)
type span_node = {
  name : string;
  count : int;
  total_s : float;
  children : span_node list;
}

val span_tree : unit -> span_node list

(** {1 Snapshots and emission} *)

(** Every registered counter (zero or not), sorted by name. *)
val counters : unit -> (string * int) list

val gauges : unit -> (string * float) list

(** Human-readable tables (counters + gauges, then the span tree),
    rendered through {!Repro_util.Table}. *)
val render_stats : unit -> string

(** The machine-readable stats block embedded in BENCH_*.json:
    [{"counters": {...}, "gauges": {...}, "spans": [...]}]. *)
val stats_json : unit -> Repro_util.Bench_json.t

(** The span tree alone, as written by [sne_cli --trace FILE]. *)
val trace_json : unit -> Repro_util.Bench_json.t
