(* Process-wide metrics and tracing for the solver stack. See obs.mli for
   the semantics; the implementation notes that matter:

   - One shared [enabled] flag gates every event. The disabled path is a
     single [Atomic.get] plus a branch, so instrumentation can live inside
     pivot loops and worker domains without a measurable cost while off.
   - Counters and gauges are individual [Atomic.t] cells found once by
     name (under the registry mutex) and then updated lock-free — the
     parallel pool's workers bump them concurrently.
   - Spans keep a per-domain path stack in [Domain.DLS]; aggregation into
     the global table happens once per span exit, under the mutex. Keys
     are reversed paths (leaf first), which makes push/pop on the domain
     stack O(1). *)

let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let prev = Atomic.get flag in
  Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

type counter = { c : int Atomic.t }

let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counter_tbl name with
      | Some c -> c
      | None ->
          let c = { c = Atomic.make 0 } in
          Hashtbl.add counter_tbl name c;
          c)

let incr c = if Atomic.get flag then Atomic.incr c.c
let add c n = if Atomic.get flag then ignore (Atomic.fetch_and_add c.c n)
let value c = Atomic.get c.c

type gauge = { g : float Atomic.t }

let gauge_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauge_tbl name with
      | Some g -> g
      | None ->
          let g = { g = Atomic.make 0.0 } in
          Hashtbl.add gauge_tbl name g;
          g)

let set g x = if Atomic.get flag then Atomic.set g.g x

let rec accumulate g x =
  if Atomic.get flag then begin
    let cur = Atomic.get g.g in
    (* CAS on the box we just read: retried only under a genuine race. *)
    if not (Atomic.compare_and_set g.g cur (cur +. x)) then accumulate g x
  end

let gauge_value g = Atomic.get g.g

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_cell = { mutable s_count : int; mutable s_total : float }

(* Keyed by the reversed path: ["price"; "search"] is search > price. *)
let span_tbl : (string list, span_cell) Hashtbl.t = Hashtbl.create 64
let stack_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let span name f =
  if not (Atomic.get flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let path = name :: !stack in
    stack := path;
    let t0 = Repro_util.Mclock.now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Repro_util.Mclock.now () -. t0 in
        (stack := match !stack with _ :: rest -> rest | [] -> []);
        locked (fun () ->
            match Hashtbl.find_opt span_tbl path with
            | Some cell ->
                cell.s_count <- cell.s_count + 1;
                cell.s_total <- cell.s_total +. dt
            | None -> Hashtbl.add span_tbl path { s_count = 1; s_total = dt }))
      f
  end

type span_node = {
  name : string;
  count : int;
  total_s : float;
  children : span_node list;
}

(* Regroup the flat (path, cell) table into a tree. An interior path that
   was never completed itself (only its children were) gets count 0. *)
let rec build_tree items =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (path, data) ->
      match path with
      | [] -> ()
      | hd :: rest ->
          let own, subs =
            match Hashtbl.find_opt tbl hd with
            | Some x -> x
            | None ->
                let x = (ref None, ref []) in
                Hashtbl.add tbl hd x;
                order := hd :: !order;
                x
          in
          if rest = [] then own := Some data else subs := (rest, data) :: !subs)
    items;
  !order
  |> List.rev_map (fun name ->
         let own, subs = Hashtbl.find tbl name in
         let count, total_s = match !own with Some d -> d | None -> (0, 0.0) in
         { name; count; total_s; children = build_tree !subs })
  |> List.sort (fun a b -> compare a.name b.name)

let span_tree () =
  let items =
    locked (fun () ->
        Hashtbl.fold
          (fun path cell acc -> (List.rev path, (cell.s_count, cell.s_total)) :: acc)
          span_tbl [])
  in
  build_tree items

(* ------------------------------------------------------------------ *)
(* Reset and snapshots                                                 *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c 0) counter_tbl;
      Hashtbl.iter (fun _ g -> Atomic.set g.g 0.0) gauge_tbl;
      Hashtbl.reset span_tbl)

let counters () =
  locked (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c) :: acc) counter_tbl [])
  |> List.sort compare

let gauges () =
  locked (fun () ->
      Hashtbl.fold (fun name g acc -> (name, Atomic.get g.g) :: acc) gauge_tbl [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let render_stats () =
  let buf = Buffer.create 1024 in
  let t = Repro_util.Table.create ~title:"observability counters" ~header:[ "counter"; "value" ] in
  List.iter (fun (name, v) -> Repro_util.Table.add_row t [ name; Repro_util.Table.cell_i v ])
    (counters ());
  List.iter
    (fun (name, v) -> Repro_util.Table.add_row t [ name; Repro_util.Table.cell_f ~digits:6 v ])
    (gauges ());
  Buffer.add_string buf (Repro_util.Table.render t);
  (match span_tree () with
  | [] -> ()
  | roots ->
      let st =
        Repro_util.Table.create ~title:"span tree" ~header:[ "span"; "count"; "seconds" ]
      in
      let rec walk depth n =
        Repro_util.Table.add_row st
          [
            String.make (2 * depth) ' ' ^ n.name;
            Repro_util.Table.cell_i n.count;
            Repro_util.Table.cell_f ~digits:6 n.total_s;
          ];
        List.iter (walk (depth + 1)) n.children
      in
      List.iter (walk 0) roots;
      Buffer.add_string buf (Repro_util.Table.render st));
  Buffer.contents buf

let rec span_json n =
  Repro_util.Bench_json.Obj
    [
      ("name", Repro_util.Bench_json.Str n.name);
      ("count", Repro_util.Bench_json.Int n.count);
      ("total_s", Repro_util.Bench_json.Float n.total_s);
      ("children", Repro_util.Bench_json.List (List.map span_json n.children));
    ]

let trace_json () = Repro_util.Bench_json.List (List.map span_json (span_tree ()))

let stats_json () =
  Repro_util.Bench_json.Obj
    [
      ( "counters",
        Repro_util.Bench_json.Obj
          (List.map (fun (n, v) -> (n, Repro_util.Bench_json.Int v)) (counters ())) );
      ( "gauges",
        Repro_util.Bench_json.Obj
          (List.map (fun (n, v) -> (n, Repro_util.Bench_json.Float v)) (gauges ())) );
      ("spans", trace_json ());
    ]
