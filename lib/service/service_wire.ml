(* Wire format for the request service: key=value request lines with
   percent-encoded values, one-line JSON responses through the repo's
   write-only JSON emitter. The format is deliberately line-oriented so
   `sne_cli serve --stdio` composes with shell pipelines and the bench's
   replay files are plain text. *)

module Json = Repro_util.Bench_json

(* ------------------------------------------------------------------ *)
(* Percent encoding                                                    *)
(* ------------------------------------------------------------------ *)

let unreserved c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '~' || c = '/' || c = ':' || c = '-'

let encode s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      if unreserved c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] <> '%' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 2 >= n then Error "truncated percent escape"
    else
      match (hex_val s.[i + 1], hex_val s.[i + 2]) with
      | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
      | _ -> Error (Printf.sprintf "bad percent escape %%%c%c" s.[i + 1] s.[i + 2])
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let split_tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (( <> ) "")

let parse_request line =
  let ( let* ) = Result.bind in
  let* pairs =
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "token %S is not key=value" tok)
        | Some i ->
            let key = String.sub tok 0 i in
            let raw = String.sub tok (i + 1) (String.length tok - i - 1) in
            if List.mem_assoc key acc then
              Error (Printf.sprintf "duplicate key %S" key)
            else
              let* v =
                Result.map_error
                  (fun e -> Printf.sprintf "key %S: %s" key e)
                  (decode raw)
              in
              Ok ((key, v) :: acc))
      (Ok []) (split_tokens line)
  in
  let find k = List.assoc_opt k pairs in
  let known =
    [ "id"; "kind"; "inst"; "method"; "backend"; "max_rounds"; "budget";
      "deadline_ms"; "priority"; "session"; "delta"; "stream" ]
  in
  let* () =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        if List.mem k known then Ok ()
        else Error (Printf.sprintf "unknown key %S" k))
      (Ok ()) pairs
  in
  let require k =
    match find k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing required key %S" k)
  in
  let int_of k v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "key %S: bad integer %S" k v)
  in
  let float_of k v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "key %S: bad number %S" k v)
  in
  let optional k ~default parse =
    match find k with Some v -> parse k v | None -> Ok default
  in
  let* id = require "id" in
  let* kind_s = require "kind" in
  let* max_rounds = optional "max_rounds" ~default:500 int_of in
  let* backend =
    optional "backend" ~default:Service.Dense (fun k v ->
        match v with
        | "dense" -> Ok Service.Dense
        | "sparse" -> Ok Service.Sparse
        | _ -> Error (Printf.sprintf "key %S: expected dense or sparse, got %S" k v))
  in
  let* meth =
    optional "method" ~default:`Lp3 (fun k v ->
        match v with
        | "lp3" -> Ok `Lp3
        | "cut" -> Ok `Cut
        | _ -> Error (Printf.sprintf "key %S: expected lp3 or cut, got %S" k v))
  in
  let* kind =
    match kind_s with
    | "sne" -> Ok (Service.Sne { meth; backend; max_rounds })
    | "enforce" -> Ok Service.Enforce
    | "snd" ->
        let* b = require "budget" in
        let* budget = float_of "budget" b in
        Ok (Service.Snd { budget })
    | "check" -> Ok Service.Check
    | "open" -> Ok (Service.Session_open { backend; max_rounds })
    | "mutate" ->
        let* session = require "session" in
        Ok (Service.Session_mutate { session })
    | "resolve" ->
        let* session = require "session" in
        Ok (Service.Session_resolve { session })
    | "close" ->
        let* session = require "session" in
        Ok (Service.Session_close { session })
    | _ ->
        Error
          (Printf.sprintf
             "key \"kind\": expected sne, enforce, snd, check, open, mutate, \
              resolve or close, got %S"
             kind_s)
  in
  (* The payload key depends on the kind: stateless solves and [open]
     carry an instance, [mutate] a delta trace, [resolve]/[close] nothing
     beyond the handle. *)
  let* payload =
    match kind with
    | Service.Sne _ | Service.Enforce | Service.Snd _ | Service.Check
    | Service.Session_open _ ->
        require "inst"
    | Service.Session_mutate _ -> require "delta"
    | Service.Session_resolve _ | Service.Session_close _ -> Ok ""
  in
  let* deadline_ms =
    match find "deadline_ms" with
    | None -> Ok None
    | Some v ->
        let* f = float_of "deadline_ms" v in
        if f <= 0.0 then Error "key \"deadline_ms\": must be positive"
        else Ok (Some f)
  in
  let* priority = optional "priority" ~default:0 int_of in
  let* stream =
    optional "stream" ~default:false (fun k v ->
        match v with
        | "1" | "true" -> Ok true
        | "0" | "false" -> Ok false
        | _ -> Error (Printf.sprintf "key %S: expected 0/1/true/false, got %S" k v))
  in
  Ok { Service.id; kind; payload; deadline_ms; priority; stream }

let request_to_string (r : Service.request) =
  let buf = Buffer.create 128 in
  let kv k v =
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf k;
    Buffer.add_char buf '=';
    Buffer.add_string buf (encode v)
  in
  kv "id" r.Service.id;
  (match r.Service.kind with
  | Service.Sne { meth; backend; max_rounds } ->
      kv "kind" "sne";
      kv "method" (match meth with `Lp3 -> "lp3" | `Cut -> "cut");
      kv "backend" (match backend with Service.Dense -> "dense" | Service.Sparse -> "sparse");
      if max_rounds <> 500 then kv "max_rounds" (string_of_int max_rounds)
  | Service.Enforce -> kv "kind" "enforce"
  | Service.Snd { budget } ->
      kv "kind" "snd";
      kv "budget" (Printf.sprintf "%.12g" budget)
  | Service.Check -> kv "kind" "check"
  | Service.Session_open { backend; max_rounds } ->
      kv "kind" "open";
      kv "backend"
        (match backend with Service.Dense -> "dense" | Service.Sparse -> "sparse");
      if max_rounds <> 500 then kv "max_rounds" (string_of_int max_rounds)
  | Service.Session_mutate { session } ->
      kv "kind" "mutate";
      kv "session" session
  | Service.Session_resolve { session } ->
      kv "kind" "resolve";
      kv "session" session
  | Service.Session_close { session } ->
      kv "kind" "close";
      kv "session" session);
  (match r.Service.deadline_ms with
  | Some ms -> kv "deadline_ms" (Printf.sprintf "%.12g" ms)
  | None -> ());
  if r.Service.priority <> 0 then kv "priority" (string_of_int r.Service.priority);
  if r.Service.stream then kv "stream" "1";
  (* The payload key mirrors the parser: inst for stateless kinds and
     open, delta for mutate, nothing for resolve/close. *)
  (match r.Service.kind with
  | Service.Sne _ | Service.Enforce | Service.Snd _ | Service.Check
  | Service.Session_open _ ->
      kv "inst" r.Service.payload
  | Service.Session_mutate _ -> kv "delta" r.Service.payload
  | Service.Session_resolve _ | Service.Session_close _ -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Response emission                                                   *)
(* ------------------------------------------------------------------ *)

let reason_slug = function
  | Service.Parse_error _ -> "parse_error"
  | Service.Deadline_expired -> "deadline_expired"
  | Service.Cancelled -> "cancelled"
  | Service.Overloaded -> "overloaded"
  | Service.Nonconverged -> "nonconverged"
  | Service.No_design -> "no_design"
  | Service.Solver_error _ -> "solver_error"
  | Service.Shutdown -> "shutdown"
  | Service.Unknown_session _ -> "unknown_session"
  | Service.Invalid_delta _ -> "invalid_delta"

let reason_detail = function
  | Service.Parse_error msg
  | Service.Solver_error msg
  | Service.Invalid_delta msg
  | Service.Unknown_session msg ->
      Some msg
  | _ -> None

let outcome_json = function
  | Service.Subsidy { cost; tree_weight; equilibrium; edges } ->
      Json.Obj
        [
          ("type", Json.Str "subsidy");
          ("cost", Json.Float cost);
          ("tree_weight", Json.Float tree_weight);
          ("equilibrium", Json.Bool equilibrium);
          ( "edges",
            Json.List
              (List.map
                 (fun (id, b) ->
                   Json.Obj [ ("edge", Json.Int id); ("amount", Json.Float b) ])
                 edges) );
        ]
  | Service.Design { weight; subsidy_cost; tree_edges } ->
      Json.Obj
        [
          ("type", Json.Str "design");
          ("weight", Json.Float weight);
          ("subsidy_cost", Json.Float subsidy_cost);
          ("tree_edges", Json.List (List.map (fun i -> Json.Int i) tree_edges));
        ]
  | Service.Equilibrium { equilibrium; tree_weight } ->
      Json.Obj
        [
          ("type", Json.Str "check");
          ("equilibrium", Json.Bool equilibrium);
          ("tree_weight", Json.Float tree_weight);
        ]
  | Service.Opened { session; digest } ->
      Json.Obj
        [
          ("type", Json.Str "opened");
          ("session", Json.Str session);
          ("digest", Json.Str digest);
        ]
  | Service.Mutated { session; digest; applied } ->
      Json.Obj
        [
          ("type", Json.Str "mutated");
          ("session", Json.Str session);
          ("digest", Json.Str digest);
          ("applied", Json.Int applied);
        ]
  | Service.Resolved
      {
        session;
        cost;
        tree_weight;
        equilibrium;
        edges;
        pivots;
        rounds;
        reused_cuts;
        fresh_cuts;
        warm;
      } ->
      Json.Obj
        [
          ("type", Json.Str "resolved");
          ("session", Json.Str session);
          ("cost", Json.Float cost);
          ("tree_weight", Json.Float tree_weight);
          ("equilibrium", Json.Bool equilibrium);
          ( "edges",
            Json.List
              (List.map
                 (fun (id, b) ->
                   Json.Obj [ ("edge", Json.Int id); ("amount", Json.Float b) ])
                 edges) );
          ("pivots", Json.Int pivots);
          ("rounds", Json.Int rounds);
          ("reused_cuts", Json.Int reused_cuts);
          ("fresh_cuts", Json.Int fresh_cuts);
          ("warm", Json.Bool warm);
        ]
  | Service.Closed { session } ->
      Json.Obj [ ("type", Json.Str "closed"); ("session", Json.Str session) ]

let outcome_to_string o = Json.to_string ~indent:false (outcome_json o)

let response_json (r : Service.response) =
  let base =
    [
      ("id", Json.Str r.Service.id);
      ( "status",
        Json.Str (match r.Service.result with Ok _ -> "ok" | Error _ -> "error") );
      ("cache_hit", Json.Bool r.Service.cache_hit);
      ("elapsed_ms", Json.Float r.Service.elapsed_ms);
    ]
  in
  match r.Service.result with
  | Ok outcome -> Json.Obj (base @ [ ("outcome", outcome_json outcome) ])
  | Error reason ->
      let detail =
        match reason_detail reason with
        | Some msg -> [ ("detail", Json.Str msg) ]
        | None -> []
      in
      Json.Obj (base @ [ ("reason", Json.Str (reason_slug reason)) ] @ detail)

let response_to_string r =
  let s = Json.to_string ~indent:false (response_json r) in
  (* to_string without indentation still has no trailing newline, but be
     explicit about the one-line contract. *)
  String.concat "" (String.split_on_char '\n' s)

(* ------------------------------------------------------------------ *)
(* Streaming progress events                                           *)
(* ------------------------------------------------------------------ *)

(* Progress events carry "event" where responses carry "status", so a
   client demultiplexes the interleaved stream on key presence alone. *)
let progress_json ~id (p : Service.progress) =
  match p with
  | Service.Snd_incumbent { weight; subsidy_cost; tree_edges } ->
      Json.Obj
        [
          ("id", Json.Str id);
          ("event", Json.Str "incumbent");
          ("weight", Json.Float weight);
          ("subsidy_cost", Json.Float subsidy_cost);
          ("tree_edges", Json.List (List.map (fun i -> Json.Int i) tree_edges));
        ]
  | Service.Cut_round { round; cuts } ->
      Json.Obj
        [
          ("id", Json.Str id);
          ("event", Json.Str "round");
          ("round", Json.Int round);
          ("cuts", Json.Int cuts);
        ]

let progress_to_string ~id p =
  let s = Json.to_string ~indent:false (progress_json ~id p) in
  String.concat "" (String.split_on_char '\n' s)

(* ------------------------------------------------------------------ *)
(* Binary wire                                                         *)
(* ------------------------------------------------------------------ *)

module Binary = struct
  (* Length-prefixed frames: a 4-byte big-endian unsigned payload
     length, then the payload. Request frames carry the compact binary
     request encoding below; response and progress frames carry the same
     one-line JSON the text wire emits (the win of the binary wire is on
     the request side, where percent-encoding inflates instance text
     ~3x — responses are already compact). The cap bounds a single
     allocation from a hostile or corrupt prefix. *)

  let max_frame = 16 * 1024 * 1024

  let write_frame oc payload =
    let n = String.length payload in
    if n > max_frame then
      invalid_arg "Service_wire.Binary.write_frame: frame exceeds max_frame";
    let hdr = Bytes.create 4 in
    Bytes.set_int32_be hdr 0 (Int32.of_int n);
    output_bytes oc hdr;
    output_string oc payload

  let read_frame ic =
    (* The first byte is read alone to tell a clean end-of-stream (EOF at
       a frame boundary -> [Ok None]) from a prefix cut mid-write (a
       structured error: the peer died or the stream is corrupt). *)
    match input_char ic with
    | exception End_of_file -> Ok None
    | b0 -> (
        match really_input_string ic 3 with
        | exception End_of_file -> Error "truncated length prefix"
        | rest -> (
            let hdr = Bytes.create 4 in
            Bytes.set_uint8 hdr 0 (Char.code b0);
            Bytes.blit_string rest 0 hdr 1 3;
            let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
            if n < 0 || n > max_frame then
              Error
                (Printf.sprintf "frame length %d exceeds the %d-byte cap" n
                   max_frame)
            else
              match really_input_string ic n with
              | exception End_of_file ->
                  Error
                    (Printf.sprintf "truncated frame: expected %d payload bytes"
                       n)
              | payload -> Ok (Some payload)))

  (* Compact request encoding, version 1 (layout in DESIGN.md §12):

       u8  version (1)
       u8  kind tag: 0 sne | 1 enforce | 2 snd | 3 check
                   | 4 open | 5 mutate | 6 resolve | 7 close
       u8  flags: bit0 stream, bit1 deadline present
       u16 |id|, id bytes
       kind fields:
         sne:  u8 method (0 lp3 | 1 cut), u8 backend (0 dense | 1 sparse),
               u32 max_rounds
         snd:  f64 budget (IEEE-754 bits)
         open: u8 backend, u32 max_rounds
         mutate/resolve/close: u16 |session|, session bytes
       f64 deadline_ms             (iff flags bit1)
       i32 priority                (two's complement)
       u32 |payload|, payload bytes

     All integers big-endian. Trailing bytes after the payload are a
     decode error — a frame is exactly one request. *)

  let tag_of_kind = function
    | Service.Sne _ -> 0
    | Service.Enforce -> 1
    | Service.Snd _ -> 2
    | Service.Check -> 3
    | Service.Session_open _ -> 4
    | Service.Session_mutate _ -> 5
    | Service.Session_resolve _ -> 6
    | Service.Session_close _ -> 7

  let encode_request (r : Service.request) =
    let buf = Buffer.create (128 + String.length r.Service.payload) in
    let u8 v = Buffer.add_uint8 buf v in
    let u16s s =
      if String.length s > 0xFFFF then
        invalid_arg "Service_wire.Binary.encode_request: string exceeds u16 length";
      Buffer.add_uint16_be buf (String.length s);
      Buffer.add_string buf s
    in
    let u32 v = Buffer.add_int32_be buf (Int32.of_int v) in
    let f64 v = Buffer.add_int64_be buf (Int64.bits_of_float v) in
    let backend_byte = function Service.Dense -> 0 | Service.Sparse -> 1 in
    u8 1;
    u8 (tag_of_kind r.Service.kind);
    u8
      ((if r.Service.stream then 1 else 0)
      lor match r.Service.deadline_ms with Some _ -> 2 | None -> 0);
    u16s r.Service.id;
    (match r.Service.kind with
    | Service.Sne { meth; backend; max_rounds } ->
        u8 (match meth with `Lp3 -> 0 | `Cut -> 1);
        u8 (backend_byte backend);
        u32 max_rounds
    | Service.Enforce | Service.Check -> ()
    | Service.Snd { budget } -> f64 budget
    | Service.Session_open { backend; max_rounds } ->
        u8 (backend_byte backend);
        u32 max_rounds
    | Service.Session_mutate { session }
    | Service.Session_resolve { session }
    | Service.Session_close { session } ->
        u16s session);
    (match r.Service.deadline_ms with Some ms -> f64 ms | None -> ());
    u32 r.Service.priority;
    u32 (String.length r.Service.payload);
    Buffer.add_string buf r.Service.payload;
    Buffer.contents buf

  exception Bad of string

  let decode_request s =
    let b = Bytes.unsafe_of_string s in
    let len = String.length s in
    let pos = ref 0 in
    let need n what =
      if !pos + n > len then raise (Bad (Printf.sprintf "truncated %s" what))
    in
    let u8 what =
      need 1 what;
      let v = Bytes.get_uint8 b !pos in
      incr pos;
      v
    in
    let u16 what =
      need 2 what;
      let v = Bytes.get_uint16_be b !pos in
      pos := !pos + 2;
      v
    in
    let i32 what =
      need 4 what;
      let v = Int32.to_int (Bytes.get_int32_be b !pos) in
      pos := !pos + 4;
      v
    in
    let f64 what =
      need 8 what;
      let v = Int64.float_of_bits (Bytes.get_int64_be b !pos) in
      pos := !pos + 8;
      v
    in
    let str n what =
      need n what;
      let v = String.sub s !pos n in
      pos := !pos + n;
      v
    in
    let sized what = str (u16 what) what in
    let backend what =
      match u8 what with
      | 0 -> Service.Dense
      | 1 -> Service.Sparse
      | v -> raise (Bad (Printf.sprintf "%s: bad backend byte %d" what v))
    in
    try
      (match u8 "version" with
      | 1 -> ()
      | v -> raise (Bad (Printf.sprintf "unsupported version %d" v)));
      let tag = u8 "kind tag" in
      let flags = u8 "flags" in
      if flags land lnot 3 <> 0 then
        raise (Bad (Printf.sprintf "unknown flag bits 0x%x" (flags land lnot 3)));
      let stream = flags land 1 <> 0 in
      let id = sized "id" in
      let kind =
        match tag with
        | 0 ->
            let meth =
              match u8 "method" with
              | 0 -> `Lp3
              | 1 -> `Cut
              | v -> raise (Bad (Printf.sprintf "bad method byte %d" v))
            in
            let backend = backend "backend" in
            Service.Sne { meth; backend; max_rounds = i32 "max_rounds" }
        | 1 -> Service.Enforce
        | 2 -> Service.Snd { budget = f64 "budget" }
        | 3 -> Service.Check
        | 4 ->
            let backend = backend "backend" in
            Service.Session_open { backend; max_rounds = i32 "max_rounds" }
        | 5 -> Service.Session_mutate { session = sized "session" }
        | 6 -> Service.Session_resolve { session = sized "session" }
        | 7 -> Service.Session_close { session = sized "session" }
        | v -> raise (Bad (Printf.sprintf "unknown kind tag %d" v))
      in
      let deadline_ms =
        if flags land 2 <> 0 then begin
          let ms = f64 "deadline_ms" in
          if not (ms > 0.0) then
            raise (Bad "key \"deadline_ms\": must be positive");
          Some ms
        end
        else None
      in
      let priority = i32 "priority" in
      let n_payload = i32 "payload length" in
      if n_payload < 0 || n_payload > max_frame then
        raise (Bad (Printf.sprintf "bad payload length %d" n_payload));
      let payload = str n_payload "payload" in
      if !pos <> len then
        raise (Bad (Printf.sprintf "%d trailing bytes after the payload" (len - !pos)));
      Ok { Service.id; kind; payload; deadline_ms; priority; stream }
    with Bad msg -> Error msg
end
