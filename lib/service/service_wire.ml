(* Wire format for the request service: key=value request lines with
   percent-encoded values, one-line JSON responses through the repo's
   write-only JSON emitter. The format is deliberately line-oriented so
   `sne_cli serve --stdio` composes with shell pipelines and the bench's
   replay files are plain text. *)

module Json = Repro_util.Bench_json

(* ------------------------------------------------------------------ *)
(* Percent encoding                                                    *)
(* ------------------------------------------------------------------ *)

let unreserved c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '~' || c = '/' || c = ':' || c = '-'

let encode s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      if unreserved c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] <> '%' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 2 >= n then Error "truncated percent escape"
    else
      match (hex_val s.[i + 1], hex_val s.[i + 2]) with
      | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
      | _ -> Error (Printf.sprintf "bad percent escape %%%c%c" s.[i + 1] s.[i + 2])
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let split_tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (( <> ) "")

let parse_request line =
  let ( let* ) = Result.bind in
  let* pairs =
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "token %S is not key=value" tok)
        | Some i ->
            let key = String.sub tok 0 i in
            let raw = String.sub tok (i + 1) (String.length tok - i - 1) in
            if List.mem_assoc key acc then
              Error (Printf.sprintf "duplicate key %S" key)
            else
              let* v =
                Result.map_error
                  (fun e -> Printf.sprintf "key %S: %s" key e)
                  (decode raw)
              in
              Ok ((key, v) :: acc))
      (Ok []) (split_tokens line)
  in
  let find k = List.assoc_opt k pairs in
  let known =
    [ "id"; "kind"; "inst"; "method"; "backend"; "max_rounds"; "budget";
      "deadline_ms"; "priority"; "session"; "delta" ]
  in
  let* () =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        if List.mem k known then Ok ()
        else Error (Printf.sprintf "unknown key %S" k))
      (Ok ()) pairs
  in
  let require k =
    match find k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing required key %S" k)
  in
  let int_of k v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "key %S: bad integer %S" k v)
  in
  let float_of k v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "key %S: bad number %S" k v)
  in
  let optional k ~default parse =
    match find k with Some v -> parse k v | None -> Ok default
  in
  let* id = require "id" in
  let* kind_s = require "kind" in
  let* max_rounds = optional "max_rounds" ~default:500 int_of in
  let* backend =
    optional "backend" ~default:Service.Dense (fun k v ->
        match v with
        | "dense" -> Ok Service.Dense
        | "sparse" -> Ok Service.Sparse
        | _ -> Error (Printf.sprintf "key %S: expected dense or sparse, got %S" k v))
  in
  let* meth =
    optional "method" ~default:`Lp3 (fun k v ->
        match v with
        | "lp3" -> Ok `Lp3
        | "cut" -> Ok `Cut
        | _ -> Error (Printf.sprintf "key %S: expected lp3 or cut, got %S" k v))
  in
  let* kind =
    match kind_s with
    | "sne" -> Ok (Service.Sne { meth; backend; max_rounds })
    | "enforce" -> Ok Service.Enforce
    | "snd" ->
        let* b = require "budget" in
        let* budget = float_of "budget" b in
        Ok (Service.Snd { budget })
    | "check" -> Ok Service.Check
    | "open" -> Ok (Service.Session_open { backend; max_rounds })
    | "mutate" ->
        let* session = require "session" in
        Ok (Service.Session_mutate { session })
    | "resolve" ->
        let* session = require "session" in
        Ok (Service.Session_resolve { session })
    | "close" ->
        let* session = require "session" in
        Ok (Service.Session_close { session })
    | _ ->
        Error
          (Printf.sprintf
             "key \"kind\": expected sne, enforce, snd, check, open, mutate, \
              resolve or close, got %S"
             kind_s)
  in
  (* The payload key depends on the kind: stateless solves and [open]
     carry an instance, [mutate] a delta trace, [resolve]/[close] nothing
     beyond the handle. *)
  let* payload =
    match kind with
    | Service.Sne _ | Service.Enforce | Service.Snd _ | Service.Check
    | Service.Session_open _ ->
        require "inst"
    | Service.Session_mutate _ -> require "delta"
    | Service.Session_resolve _ | Service.Session_close _ -> Ok ""
  in
  let* deadline_ms =
    match find "deadline_ms" with
    | None -> Ok None
    | Some v ->
        let* f = float_of "deadline_ms" v in
        if f <= 0.0 then Error "key \"deadline_ms\": must be positive"
        else Ok (Some f)
  in
  let* priority = optional "priority" ~default:0 int_of in
  Ok { Service.id; kind; payload; deadline_ms; priority }

let request_to_string (r : Service.request) =
  let buf = Buffer.create 128 in
  let kv k v =
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf k;
    Buffer.add_char buf '=';
    Buffer.add_string buf (encode v)
  in
  kv "id" r.Service.id;
  (match r.Service.kind with
  | Service.Sne { meth; backend; max_rounds } ->
      kv "kind" "sne";
      kv "method" (match meth with `Lp3 -> "lp3" | `Cut -> "cut");
      kv "backend" (match backend with Service.Dense -> "dense" | Service.Sparse -> "sparse");
      if max_rounds <> 500 then kv "max_rounds" (string_of_int max_rounds)
  | Service.Enforce -> kv "kind" "enforce"
  | Service.Snd { budget } ->
      kv "kind" "snd";
      kv "budget" (Printf.sprintf "%.12g" budget)
  | Service.Check -> kv "kind" "check"
  | Service.Session_open { backend; max_rounds } ->
      kv "kind" "open";
      kv "backend"
        (match backend with Service.Dense -> "dense" | Service.Sparse -> "sparse");
      if max_rounds <> 500 then kv "max_rounds" (string_of_int max_rounds)
  | Service.Session_mutate { session } ->
      kv "kind" "mutate";
      kv "session" session
  | Service.Session_resolve { session } ->
      kv "kind" "resolve";
      kv "session" session
  | Service.Session_close { session } ->
      kv "kind" "close";
      kv "session" session);
  (match r.Service.deadline_ms with
  | Some ms -> kv "deadline_ms" (Printf.sprintf "%.12g" ms)
  | None -> ());
  if r.Service.priority <> 0 then kv "priority" (string_of_int r.Service.priority);
  (* The payload key mirrors the parser: inst for stateless kinds and
     open, delta for mutate, nothing for resolve/close. *)
  (match r.Service.kind with
  | Service.Sne _ | Service.Enforce | Service.Snd _ | Service.Check
  | Service.Session_open _ ->
      kv "inst" r.Service.payload
  | Service.Session_mutate _ -> kv "delta" r.Service.payload
  | Service.Session_resolve _ | Service.Session_close _ -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Response emission                                                   *)
(* ------------------------------------------------------------------ *)

let reason_slug = function
  | Service.Parse_error _ -> "parse_error"
  | Service.Deadline_expired -> "deadline_expired"
  | Service.Cancelled -> "cancelled"
  | Service.Overloaded -> "overloaded"
  | Service.Nonconverged -> "nonconverged"
  | Service.No_design -> "no_design"
  | Service.Solver_error _ -> "solver_error"
  | Service.Shutdown -> "shutdown"
  | Service.Unknown_session _ -> "unknown_session"
  | Service.Invalid_delta _ -> "invalid_delta"

let reason_detail = function
  | Service.Parse_error msg
  | Service.Solver_error msg
  | Service.Invalid_delta msg
  | Service.Unknown_session msg ->
      Some msg
  | _ -> None

let outcome_json = function
  | Service.Subsidy { cost; tree_weight; equilibrium; edges } ->
      Json.Obj
        [
          ("type", Json.Str "subsidy");
          ("cost", Json.Float cost);
          ("tree_weight", Json.Float tree_weight);
          ("equilibrium", Json.Bool equilibrium);
          ( "edges",
            Json.List
              (List.map
                 (fun (id, b) ->
                   Json.Obj [ ("edge", Json.Int id); ("amount", Json.Float b) ])
                 edges) );
        ]
  | Service.Design { weight; subsidy_cost; tree_edges } ->
      Json.Obj
        [
          ("type", Json.Str "design");
          ("weight", Json.Float weight);
          ("subsidy_cost", Json.Float subsidy_cost);
          ("tree_edges", Json.List (List.map (fun i -> Json.Int i) tree_edges));
        ]
  | Service.Equilibrium { equilibrium; tree_weight } ->
      Json.Obj
        [
          ("type", Json.Str "check");
          ("equilibrium", Json.Bool equilibrium);
          ("tree_weight", Json.Float tree_weight);
        ]
  | Service.Opened { session; digest } ->
      Json.Obj
        [
          ("type", Json.Str "opened");
          ("session", Json.Str session);
          ("digest", Json.Str digest);
        ]
  | Service.Mutated { session; digest; applied } ->
      Json.Obj
        [
          ("type", Json.Str "mutated");
          ("session", Json.Str session);
          ("digest", Json.Str digest);
          ("applied", Json.Int applied);
        ]
  | Service.Resolved
      {
        session;
        cost;
        tree_weight;
        equilibrium;
        edges;
        pivots;
        rounds;
        reused_cuts;
        fresh_cuts;
        warm;
      } ->
      Json.Obj
        [
          ("type", Json.Str "resolved");
          ("session", Json.Str session);
          ("cost", Json.Float cost);
          ("tree_weight", Json.Float tree_weight);
          ("equilibrium", Json.Bool equilibrium);
          ( "edges",
            Json.List
              (List.map
                 (fun (id, b) ->
                   Json.Obj [ ("edge", Json.Int id); ("amount", Json.Float b) ])
                 edges) );
          ("pivots", Json.Int pivots);
          ("rounds", Json.Int rounds);
          ("reused_cuts", Json.Int reused_cuts);
          ("fresh_cuts", Json.Int fresh_cuts);
          ("warm", Json.Bool warm);
        ]
  | Service.Closed { session } ->
      Json.Obj [ ("type", Json.Str "closed"); ("session", Json.Str session) ]

let outcome_to_string o = Json.to_string ~indent:false (outcome_json o)

let response_json (r : Service.response) =
  let base =
    [
      ("id", Json.Str r.Service.id);
      ( "status",
        Json.Str (match r.Service.result with Ok _ -> "ok" | Error _ -> "error") );
      ("cache_hit", Json.Bool r.Service.cache_hit);
      ("elapsed_ms", Json.Float r.Service.elapsed_ms);
    ]
  in
  match r.Service.result with
  | Ok outcome -> Json.Obj (base @ [ ("outcome", outcome_json outcome) ])
  | Error reason ->
      let detail =
        match reason_detail reason with
        | Some msg -> [ ("detail", Json.Str msg) ]
        | None -> []
      in
      Json.Obj (base @ [ ("reason", Json.Str (reason_slug reason)) ] @ detail)

let response_to_string r =
  let s = Json.to_string ~indent:false (response_json r) in
  (* to_string without indentation still has no trailing newline, but be
     explicit about the one-line contract. *)
  String.concat "" (String.split_on_char '\n' s)
