(* Batched request-processing service over the solver stack: a bounded
   priority queue drained by a dispatcher domain onto a resident
   Parallel.Pool, with per-request deadlines/cancellation polled inside
   the solvers and a digest-keyed LRU reusing outcomes across requests.
   See service.mli for the architecture contract and DESIGN.md §9 for the
   request lifecycle. *)

module Serial = Repro_core.Serial.Float
module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Snes = Repro_core.Sne_lp.Float_sparse
module Search = Repro_core.Snd_search.Float
module Enforce = Repro_core.Enforce
module Par = Repro_parallel.Parallel
module Obs = Repro_obs.Obs
module Lru = Repro_util.Lru
module Digestx = Repro_util.Digestx

type backend = Dense | Sparse

type kind =
  | Sne of { meth : [ `Lp3 | `Cut ]; backend : backend; max_rounds : int }
  | Enforce
  | Snd of { budget : float }
  | Check

type request = {
  id : string;
  kind : kind;
  payload : string;
  deadline_ms : float option;
  priority : int;
}

type error_reason =
  | Parse_error of string
  | Deadline_expired
  | Cancelled
  | Overloaded
  | Nonconverged
  | No_design
  | Solver_error of string
  | Shutdown

type outcome =
  | Subsidy of {
      cost : float;
      tree_weight : float;
      equilibrium : bool;
      edges : (int * float) list;
    }
  | Design of { weight : float; subsidy_cost : float; tree_edges : int list }
  | Equilibrium of { equilibrium : bool; tree_weight : float }

type response = {
  id : string;
  result : (outcome, error_reason) result;
  cache_hit : bool;
  elapsed_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let c_submitted = Obs.counter "service.submitted"
let c_completed = Obs.counter "service.completed"
let c_rejected = Obs.counter "service.rejected"
let c_deadline = Obs.counter "service.deadline_expired"
let c_cancelled = Obs.counter "service.cancelled"
let c_cache_hits = Obs.counter "service.cache_hits"
let c_parse_errors = Obs.counter "service.parse_errors"
let c_solver_errors = Obs.counter "service.solver_errors"
let c_batches = Obs.counter "service.batches"
let g_queue_depth = Obs.gauge "service.queue_depth"
let g_inflight = Obs.gauge "service.inflight"

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

let kind_fingerprint = function
  | Sne { meth; backend; max_rounds } ->
      Printf.sprintf "sne:%s:%s:%d"
        (match meth with `Lp3 -> "lp3" | `Cut -> "cut")
        (match backend with Dense -> "dense" | Sparse -> "sparse")
        max_rounds
  | Enforce -> "enforce"
  (* %h prints the exact bits, so budgets differing below decimal printing
     precision never share a cache line. *)
  | Snd { budget } -> Printf.sprintf "snd:%h" budget
  | Check -> "check"

(* The digest keys the payload's *parse*, re-serialized to the canonical
   writer format — comments, blank lines, decimal-vs-fraction spellings and
   subsidy line order all wash out, so textually different but semantically
   identical instances share a cache entry. *)
let cache_key_of_inst kind (inst : Serial.t) =
  Digestx.of_fields [ kind_fingerprint kind; Serial.to_string inst ]

let cache_key (req : request) =
  cache_key_of_inst req.kind (Serial.of_string req.payload)

(* ------------------------------------------------------------------ *)
(* Running one request                                                 *)
(* ------------------------------------------------------------------ *)

let nonzero_subsidies subsidy =
  let acc = ref [] in
  Array.iteri (fun id b -> if b > 1e-9 then acc := (id, b) :: !acc) subsidy;
  List.rev !acc

let subsidy_outcome spec tree subsidy cost =
  Ok
    (Subsidy
       {
         cost;
         tree_weight = G.Tree.total_weight tree;
         equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
         edges = nonzero_subsidies subsidy;
       })

(* Solve the parsed instance. [poll] raises [Par.Cancelled] once the
   request's deadline has passed or it was cancelled; the long solvers
   (cutting planes, SND search) poll it mid-run through their [?poll]
   hooks, the one-shot LPs only between phases. *)
let solve_kind ~poll (inst : Serial.t) kind =
  let graph = inst.Serial.graph and root = inst.Serial.root in
  match kind with
  | Sne { meth; backend; max_rounds } -> (
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      match (meth, backend) with
      | `Lp3, Dense ->
          let r = Sne.broadcast spec ~root tree in
          subsidy_outcome spec tree r.Sne.subsidy r.Sne.cost
      | `Lp3, Sparse ->
          let r = Snes.broadcast spec ~root tree in
          subsidy_outcome spec tree r.Snes.subsidy r.Snes.cost
      | `Cut, Dense ->
          let state = Gm.Broadcast.state_of_tree spec ~root tree in
          let r, s = Sne.cutting_plane ~max_rounds ~poll spec ~state in
          if not s.Sne.converged then Error Nonconverged
          else subsidy_outcome spec tree r.Sne.subsidy r.Sne.cost
      | `Cut, Sparse ->
          let state = Gm.Broadcast.state_of_tree spec ~root tree in
          let r, s = Snes.cutting_plane ~max_rounds ~poll spec ~state in
          if not s.Snes.converged then Error Nonconverged
          else subsidy_outcome spec tree r.Snes.subsidy r.Snes.cost)
  | Enforce ->
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      let r = Enforce.subsidize_mst graph tree in
      subsidy_outcome spec tree r.Enforce.subsidy r.Enforce.total
  | Snd { budget } -> (
      match Search.exact_small ~poll ~graph ~root ~budget () with
      | Some d, _ ->
          Ok
            (Design
               {
                 weight = d.Search.weight;
                 subsidy_cost = d.Search.subsidy_cost;
                 tree_edges = d.Search.tree_edges;
               })
      | None, _ -> Error No_design)
  | Check ->
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      let subsidy = Serial.subsidy_array inst in
      Ok
        (Equilibrium
           {
             equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
             tree_weight = G.Tree.total_weight tree;
           })

(* ------------------------------------------------------------------ *)
(* The service                                                         *)
(* ------------------------------------------------------------------ *)

type ticket = {
  req : request;
  submitted_at : float;
  deadline_at : float option;
  cancelled : bool Atomic.t;
  mutable resp : response option;  (* guarded by the service mutex *)
}

type t = {
  mu : Mutex.t;
  work_ready : Condition.t;  (* dispatcher sleeps here between submissions *)
  resp_ready : Condition.t;  (* awaiters sleep here *)
  mutable queue : (int * ticket) list;  (* newest first; int = arrival seq *)
  mutable seq : int;
  mutable n_pending : int;
  mutable n_inflight : int;
  mutable stopping : bool;
  mutable dispatcher : unit Domain.t option;
  pool : Par.Pool.t;
  batch : int;
  queue_limit : int;
  cache : (string, outcome) Lru.t option;
  cache_mu : Mutex.t;
}

let count_result = function
  | Ok _ -> ()
  | Error Deadline_expired -> Obs.incr c_deadline
  | Error Cancelled -> Obs.incr c_cancelled
  | Error (Parse_error _) -> Obs.incr c_parse_errors
  | Error (Solver_error _) | Error Nonconverged -> Obs.incr c_solver_errors
  | Error Overloaded -> () (* counted as service.rejected at submission *)
  | Error No_design | Error Shutdown -> ()

(* Complete a ticket (first completion wins; later ones are dropped, so
   e.g. the dispatcher's belt-and-braces pass after a batch cannot
   overwrite the worker's real response). *)
let fulfill svc tk result ~cache_hit =
  let resp =
    {
      id = tk.req.id;
      result;
      cache_hit;
      elapsed_ms = 1000.0 *. (Unix.gettimeofday () -. tk.submitted_at);
    }
  in
  Mutex.lock svc.mu;
  let fresh = tk.resp = None in
  if fresh then tk.resp <- Some resp;
  if fresh then Condition.broadcast svc.resp_ready;
  Mutex.unlock svc.mu;
  if fresh then begin
    Obs.incr c_completed;
    count_result result
  end

let cache_find svc key =
  match svc.cache with
  | None -> None
  | Some cache ->
      Mutex.lock svc.cache_mu;
      let r = Lru.find cache key in
      Mutex.unlock svc.cache_mu;
      r

let cache_add svc key outcome =
  match svc.cache with
  | None -> ()
  | Some cache ->
      Mutex.lock svc.cache_mu;
      Lru.add cache key outcome;
      Mutex.unlock svc.cache_mu

(* Worker-side execution of one dispatched ticket. Every failure mode
   lands as a structured [Error] response — nothing escapes, so a batch
   mate can never be poisoned and the service cannot wedge. *)
let exec svc pool_check tk =
  let expired () =
    match tk.deadline_at with
    | Some t -> Unix.gettimeofday () > t
    | None -> false
  in
  let poll () =
    pool_check ();
    if Atomic.get tk.cancelled || expired () then raise Par.Cancelled
  in
  if Atomic.get tk.cancelled then fulfill svc tk (Error Cancelled) ~cache_hit:false
  else if expired () then fulfill svc tk (Error Deadline_expired) ~cache_hit:false
  else
    match Serial.of_string tk.req.payload with
    | exception Failure msg ->
        fulfill svc tk (Error (Parse_error msg)) ~cache_hit:false
    | inst -> (
        let key = cache_key_of_inst tk.req.kind inst in
        match cache_find svc key with
        | Some outcome ->
            Obs.incr c_cache_hits;
            fulfill svc tk (Ok outcome) ~cache_hit:true
        | None -> (
            match solve_kind ~poll inst tk.req.kind with
            | Ok outcome ->
                cache_add svc key outcome;
                fulfill svc tk (Ok outcome) ~cache_hit:false
            | Error reason -> fulfill svc tk (Error reason) ~cache_hit:false
            | exception Par.Cancelled ->
                let reason =
                  if Atomic.get tk.cancelled then Cancelled else Deadline_expired
                in
                fulfill svc tk (Error reason) ~cache_hit:false
            | exception e ->
                fulfill svc tk (Error (Solver_error (Printexc.to_string e)))
                  ~cache_hit:false))

(* Dispatcher: drain the queue in priority batches onto the pool until
   shutdown, then fail whatever is still queued. Runs in its own domain
   and participates in every pool sweep (Pool.map_* include the
   submitting domain), so [workers = 1] needs no extra domains at all. *)
let dispatch_loop svc =
  let rec loop () =
    Mutex.lock svc.mu;
    while svc.queue = [] && not svc.stopping do
      Condition.wait svc.work_ready svc.mu
    done;
    if svc.stopping then begin
      let rest = List.rev_map snd svc.queue in
      svc.queue <- [];
      svc.n_pending <- 0;
      Obs.set g_queue_depth 0.0;
      Mutex.unlock svc.mu;
      List.iter (fun tk -> fulfill svc tk (Error Shutdown) ~cache_hit:false) rest
    end
    else begin
      (* Highest priority first, FIFO among equals (the arrival sequence
         breaks ties). The unsent remainder keeps its arrival order. *)
      let sorted =
        List.stable_sort
          (fun (sa, ta) (sb, tb) ->
            if ta.req.priority <> tb.req.priority then
              compare tb.req.priority ta.req.priority
            else compare sa sb)
          (List.rev svc.queue)
      in
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (k - 1) (x :: acc) rest
      in
      let taken, rest = split svc.batch [] sorted in
      let batch = Array.of_list (List.map snd taken) in
      svc.queue <- List.rev rest;
      svc.n_pending <- svc.n_pending - Array.length batch;
      svc.n_inflight <- Array.length batch;
      Obs.set g_queue_depth (float_of_int svc.n_pending);
      Obs.set g_inflight (float_of_int svc.n_inflight);
      Mutex.unlock svc.mu;
      Obs.incr c_batches;
      let results = Par.Pool.map_result svc.pool (fun check tk -> exec svc check tk) batch in
      (* [exec] never raises, so every slot is [Ok ()]; the [Error] arm is
         pure insurance — if it ever fires, the ticket still completes. *)
      Array.iteri
        (fun i r ->
          match r with
          | Ok () -> ()
          | Error e ->
              fulfill svc batch.(i)
                (Error (Solver_error (Printexc.to_string e)))
                ~cache_hit:false)
        results;
      Mutex.lock svc.mu;
      svc.n_inflight <- 0;
      Obs.set g_inflight 0.0;
      Mutex.unlock svc.mu;
      loop ()
    end
  in
  loop ()

let create ?(workers = 1) ?(queue_limit = 256) ?(cache = 512) ?batch () =
  if workers < 1 then invalid_arg "Service.create: workers must be >= 1";
  if queue_limit < 1 then invalid_arg "Service.create: queue_limit must be >= 1";
  let batch = match batch with Some b -> max 1 b | None -> 2 * workers in
  let svc =
    {
      mu = Mutex.create ();
      work_ready = Condition.create ();
      resp_ready = Condition.create ();
      queue = [];
      seq = 0;
      n_pending = 0;
      n_inflight = 0;
      stopping = false;
      dispatcher = None;
      pool = Par.Pool.create ~domains:workers ();
      batch;
      queue_limit;
      cache = (if cache > 0 then Some (Lru.create ~capacity:cache) else None);
      cache_mu = Mutex.create ();
    }
  in
  svc.dispatcher <- Some (Domain.spawn (fun () -> dispatch_loop svc));
  svc

let completed_ticket req ~at result =
  {
    req;
    submitted_at = at;
    deadline_at = None;
    cancelled = Atomic.make false;
    resp =
      Some
        { id = req.id; result; cache_hit = false; elapsed_ms = 0.0 };
  }

let submit svc req =
  let now = Unix.gettimeofday () in
  Obs.incr c_submitted;
  Mutex.lock svc.mu;
  if svc.stopping then begin
    Mutex.unlock svc.mu;
    Obs.incr c_completed;
    completed_ticket req ~at:now (Error Shutdown)
  end
  else if svc.n_pending >= svc.queue_limit then begin
    Mutex.unlock svc.mu;
    (* Backpressure: reject *now*, with a complete ticket — the caller can
       shed or retry, the queue never grows past the high-water mark. *)
    Obs.incr c_rejected;
    Obs.incr c_completed;
    completed_ticket req ~at:now (Error Overloaded)
  end
  else begin
    let tk =
      {
        req;
        submitted_at = now;
        deadline_at = Option.map (fun ms -> now +. (ms /. 1000.0)) req.deadline_ms;
        cancelled = Atomic.make false;
        resp = None;
      }
    in
    svc.queue <- (svc.seq, tk) :: svc.queue;
    svc.seq <- svc.seq + 1;
    svc.n_pending <- svc.n_pending + 1;
    Obs.set g_queue_depth (float_of_int svc.n_pending);
    Condition.signal svc.work_ready;
    Mutex.unlock svc.mu;
    tk
  end

let await svc tk =
  Mutex.lock svc.mu;
  let rec wait () =
    match tk.resp with
    | Some r ->
        Mutex.unlock svc.mu;
        r
    | None ->
        Condition.wait svc.resp_ready svc.mu;
        wait ()
  in
  wait ()

let poll_response svc tk =
  Mutex.lock svc.mu;
  let r = tk.resp in
  Mutex.unlock svc.mu;
  r

let cancel _svc tk = Atomic.set tk.cancelled true

let run_batch svc reqs =
  let tickets = List.map (submit svc) reqs in
  List.map (await svc) tickets

let pending svc =
  Mutex.lock svc.mu;
  let n = svc.n_pending in
  Mutex.unlock svc.mu;
  n

let inflight svc =
  Mutex.lock svc.mu;
  let n = svc.n_inflight in
  Mutex.unlock svc.mu;
  n

let shutdown svc =
  Mutex.lock svc.mu;
  svc.stopping <- true;
  let d = svc.dispatcher in
  svc.dispatcher <- None;
  Condition.broadcast svc.work_ready;
  Mutex.unlock svc.mu;
  match d with
  | None -> ()
  | Some d ->
      Domain.join d;
      Par.Pool.shutdown svc.pool

let with_service ?workers ?queue_limit ?cache ?batch f =
  let svc = create ?workers ?queue_limit ?cache ?batch () in
  Fun.protect ~finally:(fun () -> shutdown svc) (fun () -> f svc)
