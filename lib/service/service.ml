(* Batched request-processing service over the solver stack: a bounded
   priority queue drained by a dispatcher domain onto a resident
   Parallel.Pool, with per-request deadlines/cancellation polled inside
   the solvers and a digest-keyed LRU reusing outcomes across requests.
   See service.mli for the architecture contract and DESIGN.md §9 for the
   request lifecycle. *)

module Serial = Repro_core.Serial.Float
module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Snes = Repro_core.Sne_lp.Float_sparse
module Search = Repro_core.Snd_search.Float
module Enforce = Repro_core.Enforce
module Sess_d = Repro_core.Sne_session.Dense
module Sess_s = Repro_core.Sne_session.Sparse
module Par = Repro_parallel.Parallel
module Obs = Repro_obs.Obs
module Lru = Repro_util.Lru
module Digestx = Repro_util.Digestx

type backend = Dense | Sparse

type kind =
  | Sne of { meth : [ `Lp3 | `Cut ]; backend : backend; max_rounds : int }
  | Enforce
  | Snd of { budget : float }
  | Check
  | Session_open of { backend : backend; max_rounds : int }
  | Session_mutate of { session : string }
  | Session_resolve of { session : string }
  | Session_close of { session : string }

type request = {
  id : string;
  kind : kind;
  payload : string;
  deadline_ms : float option;
  priority : int;
}

type error_reason =
  | Parse_error of string
  | Deadline_expired
  | Cancelled
  | Overloaded
  | Nonconverged
  | No_design
  | Solver_error of string
  | Shutdown
  | Unknown_session of string
  | Invalid_delta of string

type outcome =
  | Subsidy of {
      cost : float;
      tree_weight : float;
      equilibrium : bool;
      edges : (int * float) list;
    }
  | Design of { weight : float; subsidy_cost : float; tree_edges : int list }
  | Equilibrium of { equilibrium : bool; tree_weight : float }
  | Opened of { session : string; digest : string }
  | Mutated of { session : string; digest : string; applied : int }
  | Resolved of {
      session : string;
      cost : float;
      tree_weight : float;
      equilibrium : bool;
      edges : (int * float) list;
      pivots : int;
      rounds : int;
      reused_cuts : int;
      fresh_cuts : int;
      warm : bool;
    }
  | Closed of { session : string }

type response = {
  id : string;
  result : (outcome, error_reason) result;
  cache_hit : bool;
  elapsed_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let c_submitted = Obs.counter "service.submitted"
let c_completed = Obs.counter "service.completed"
let c_rejected = Obs.counter "service.rejected"
let c_deadline = Obs.counter "service.deadline_expired"
let c_cancelled = Obs.counter "service.cancelled"
let c_cache_hits = Obs.counter "service.cache_hits"
let c_parse_errors = Obs.counter "service.parse_errors"
let c_solver_errors = Obs.counter "service.solver_errors"
let c_batches = Obs.counter "service.batches"
let g_queue_depth = Obs.gauge "service.queue_depth"
let g_inflight = Obs.gauge "service.inflight"
let c_sess_opened = Obs.counter "service.session.opened"
let c_sess_closed = Obs.counter "service.session.closed"
let c_sess_evicted = Obs.counter "service.session.evicted"
let c_sess_mutations = Obs.counter "service.session.mutations"
let c_sess_resolves = Obs.counter "service.session.resolves"
let c_sess_unknown = Obs.counter "service.session.unknown"
let g_sess_active = Obs.gauge "service.session.active"

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

let kind_fingerprint = function
  | Sne { meth; backend; max_rounds } ->
      Printf.sprintf "sne:%s:%s:%d"
        (match meth with `Lp3 -> "lp3" | `Cut -> "cut")
        (match backend with Dense -> "dense" | Sparse -> "sparse")
        max_rounds
  | Enforce -> "enforce"
  (* %h prints the exact bits, so budgets differing below decimal printing
     precision never share a cache line. *)
  | Snd { budget } -> Printf.sprintf "snd:%h" budget
  | Check -> "check"
  (* Session requests mutate state: two identical Resolve lines can
     legitimately return different answers, so they never share a cache
     entry (exec bypasses the response cache for them entirely). *)
  | Session_open _ | Session_mutate _ | Session_resolve _ | Session_close _ ->
      failwith "Service.cache_key: session requests are stateful and uncacheable"

(* The digest keys the payload's *parse*, re-serialized to the canonical
   writer format — comments, blank lines, decimal-vs-fraction spellings and
   subsidy line order all wash out, so textually different but semantically
   identical instances share a cache entry. *)
let cache_key_of_inst kind (inst : Serial.t) =
  Digestx.of_fields [ kind_fingerprint kind; Serial.to_string inst ]

let cache_key (req : request) =
  cache_key_of_inst req.kind (Serial.of_string req.payload)

(* ------------------------------------------------------------------ *)
(* Running one request                                                 *)
(* ------------------------------------------------------------------ *)

let nonzero_subsidies subsidy =
  let acc = ref [] in
  Array.iteri
    (fun id b ->
      if Repro_util.Floatx.gt b 0.0 then acc := (id, b) :: !acc)
    subsidy;
  List.rev !acc

let subsidy_outcome spec tree subsidy cost =
  Ok
    (Subsidy
       {
         cost;
         tree_weight = G.Tree.total_weight tree;
         equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
         edges = nonzero_subsidies subsidy;
       })

(* Solve the parsed instance. [poll] raises [Par.Cancelled] once the
   request's deadline has passed or it was cancelled; the long solvers
   (cutting planes, SND search) poll it mid-run through their [?poll]
   hooks, the one-shot LPs only between phases. *)
let solve_kind ~poll (inst : Serial.t) kind =
  let graph = inst.Serial.graph and root = inst.Serial.root in
  match kind with
  | Sne { meth; backend; max_rounds } -> (
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      match (meth, backend) with
      | `Lp3, Dense ->
          let r = Sne.broadcast spec ~root tree in
          subsidy_outcome spec tree r.Sne.subsidy r.Sne.cost
      | `Lp3, Sparse ->
          let r = Snes.broadcast spec ~root tree in
          subsidy_outcome spec tree r.Snes.subsidy r.Snes.cost
      | `Cut, Dense ->
          let state = Gm.Broadcast.state_of_tree spec ~root tree in
          let r, s = Sne.cutting_plane ~max_rounds ~poll spec ~state in
          if not s.Sne.converged then Error Nonconverged
          else subsidy_outcome spec tree r.Sne.subsidy r.Sne.cost
      | `Cut, Sparse ->
          let state = Gm.Broadcast.state_of_tree spec ~root tree in
          let r, s = Snes.cutting_plane ~max_rounds ~poll spec ~state in
          if not s.Snes.converged then Error Nonconverged
          else subsidy_outcome spec tree r.Snes.subsidy r.Snes.cost)
  | Enforce ->
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      let r = Enforce.subsidize_mst graph tree in
      subsidy_outcome spec tree r.Enforce.subsidy r.Enforce.total
  | Snd { budget } -> (
      match Search.exact_small ~poll ~graph ~root ~budget () with
      | Some d, _ ->
          Ok
            (Design
               {
                 weight = d.Search.weight;
                 subsidy_cost = d.Search.subsidy_cost;
                 tree_edges = d.Search.tree_edges;
               })
      | None, _ -> Error No_design)
  | Check ->
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      let subsidy = Serial.subsidy_array inst in
      Ok
        (Equilibrium
           {
             equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
             tree_weight = G.Tree.total_weight tree;
           })
  | Session_open _ | Session_mutate _ | Session_resolve _ | Session_close _ ->
      (* exec routes session kinds to [run_session] before parsing. *)
      invalid_arg "Service.solve_kind: session request on the stateless path"

(* ------------------------------------------------------------------ *)
(* The service                                                         *)
(* ------------------------------------------------------------------ *)

type ticket = {
  req : request;
  submitted_at : float;
  deadline_at : float option;
  cancelled : bool Atomic.t;
  mutable resp : response option;  (* guarded by the service mutex *)
}

(* One live incremental session. Each carries its own mutex: the session
   modules are single-owner by contract, and two wire requests naming the
   same handle can land in one pool batch. The session table's LRU holds
   the entry; the per-session lock serializes the actual solving. *)
type session_state = Dense_session of Sess_d.t | Sparse_session of Sess_s.t

type session_entry = { smu : Mutex.t; state : session_state }

type t = {
  mu : Mutex.t;
  work_ready : Condition.t;  (* dispatcher sleeps here between submissions *)
  resp_ready : Condition.t;  (* awaiters sleep here *)
  mutable queue : (int * ticket) list;  (* newest first; int = arrival seq *)
  mutable seq : int;
  mutable n_pending : int;
  mutable n_inflight : int;
  mutable stopping : bool;
  mutable dispatcher : unit Domain.t option;
  pool : Par.Pool.t;
  batch : int;
  queue_limit : int;
  cache : (string, outcome) Lru.t option;
  cache_mu : Mutex.t;
  sessions : (string, session_entry) Lru.t;  (* bounded; LRU-evicted *)
  sessions_mu : Mutex.t;
  mutable session_seq : int;  (* guarded by sessions_mu *)
}

let count_result = function
  | Ok _ -> ()
  | Error Deadline_expired -> Obs.incr c_deadline
  | Error Cancelled -> Obs.incr c_cancelled
  | Error (Parse_error _) -> Obs.incr c_parse_errors
  | Error (Solver_error _) | Error Nonconverged -> Obs.incr c_solver_errors
  | Error Overloaded -> () (* counted as service.rejected at submission *)
  | Error (Unknown_session _) -> Obs.incr c_sess_unknown
  | Error (Invalid_delta _) -> ()
  | Error No_design | Error Shutdown -> ()

(* Complete a ticket (first completion wins; later ones are dropped, so
   e.g. the dispatcher's belt-and-braces pass after a batch cannot
   overwrite the worker's real response). *)
let fulfill svc tk result ~cache_hit =
  let resp =
    {
      id = tk.req.id;
      result;
      cache_hit;
      elapsed_ms = 1000.0 *. (Unix.gettimeofday () -. tk.submitted_at);
    }
  in
  Mutex.lock svc.mu;
  let fresh = tk.resp = None in
  if fresh then tk.resp <- Some resp;
  if fresh then Condition.broadcast svc.resp_ready;
  Mutex.unlock svc.mu;
  if fresh then begin
    Obs.incr c_completed;
    count_result result
  end

let cache_find svc key =
  match svc.cache with
  | None -> None
  | Some cache ->
      Mutex.lock svc.cache_mu;
      let r = Lru.find cache key in
      Mutex.unlock svc.cache_mu;
      r

let cache_add svc key outcome =
  match svc.cache with
  | None -> ()
  | Some cache ->
      Mutex.lock svc.cache_mu;
      Lru.add cache key outcome;
      Mutex.unlock svc.cache_mu

(* ------------------------------------------------------------------ *)
(* Incremental sessions                                                *)
(* ------------------------------------------------------------------ *)

let sessions_locked svc f =
  Mutex.lock svc.sessions_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock svc.sessions_mu) f

let session_gauge svc = Obs.set g_sess_active (float_of_int (Lru.length svc.sessions))

(* Look up a handle (refreshing its recency, so actively-driven sessions
   survive eviction pressure) and run [f] under the session's own lock.
   The table lock is released before the session lock is taken: a resolve
   on one session must not block table operations on others. *)
let with_session svc sid f =
  match sessions_locked svc (fun () -> Lru.find svc.sessions sid) with
  | None -> Error (Unknown_session sid)
  | Some entry ->
      Mutex.lock entry.smu;
      Fun.protect ~finally:(fun () -> Mutex.unlock entry.smu) (fun () -> f entry.state)

let session_digest = function
  | Dense_session s -> Sess_d.digest s
  | Sparse_session s -> Sess_s.digest s

(* Run one session request to a result. Pure with respect to the ticket:
   [exec] turns the result (or an escaped exception) into the response. *)
let run_session svc ~poll (req : request) =
  match req.kind with
  | Session_open { backend; max_rounds } -> (
      poll ();
      match Serial.of_string req.payload with
      | exception Failure msg -> Error (Parse_error msg)
      | inst ->
          let state =
            match backend with
            | Dense -> Dense_session (Sess_d.create ~max_rounds inst)
            | Sparse -> Sparse_session (Sess_s.create ~max_rounds inst)
          in
          let entry = { smu = Mutex.create (); state } in
          let session =
            sessions_locked svc (fun () ->
                svc.session_seq <- svc.session_seq + 1;
                let sid = Printf.sprintf "s%d" svc.session_seq in
                Lru.add
                  ~on_evict:(fun _sid _entry -> Obs.incr c_sess_evicted)
                  svc.sessions sid entry;
                session_gauge svc;
                sid)
          in
          Obs.incr c_sess_opened;
          Ok (Opened { session; digest = session_digest entry.state }))
  | Session_mutate { session } ->
      poll ();
      with_session svc session (fun state ->
          match Serial.Delta.list_of_string req.payload with
          | exception Failure msg -> Error (Invalid_delta msg)
          | [] -> Error (Invalid_delta "Delta: empty mutation payload")
          | deltas -> (
              let instance =
                match state with
                | Dense_session s -> Sess_d.instance s
                | Sparse_session s -> Sess_s.instance s
              in
              (* All-or-nothing: a delta failing mid-sequence must not
                 leave the session half-mutated, so validate the whole
                 sequence on the (immutable) instance first. *)
              match Serial.Delta.apply_all instance deltas with
              | exception Failure msg -> Error (Invalid_delta msg)
              | _ ->
                  (match state with
                  | Dense_session s -> List.iter (fun d -> ignore (Sess_d.mutate s d)) deltas
                  | Sparse_session s -> List.iter (fun d -> ignore (Sess_s.mutate s d)) deltas);
                  Obs.add c_sess_mutations (List.length deltas);
                  Ok
                    (Mutated
                       {
                         session;
                         digest = session_digest state;
                         applied = List.length deltas;
                       })))
  | Session_resolve { session } ->
      poll ();
      with_session svc session (fun state ->
          Obs.incr c_sess_resolves;
          let subsidy, cost, stats, inst =
            match state with
            | Dense_session s ->
                let r, st = Sess_d.resolve ~poll s in
                ( r.Sess_d.Sne.subsidy,
                  r.Sess_d.Sne.cost,
                  ( st.Sess_d.pivots,
                    st.Sess_d.rounds,
                    st.Sess_d.reused_cuts,
                    st.Sess_d.fresh_cuts,
                    st.Sess_d.warm,
                    st.Sess_d.converged ),
                  Sess_d.instance s )
            | Sparse_session s ->
                let r, st = Sess_s.resolve ~poll s in
                ( r.Sess_s.Sne.subsidy,
                  r.Sess_s.Sne.cost,
                  ( st.Sess_s.pivots,
                    st.Sess_s.rounds,
                    st.Sess_s.reused_cuts,
                    st.Sess_s.fresh_cuts,
                    st.Sess_s.warm,
                    st.Sess_s.converged ),
                  Sess_s.instance s )
          in
          let pivots, rounds, reused_cuts, fresh_cuts, warm, converged = stats in
          if not converged then Error Nonconverged
          else
            let tree = Serial.target_tree inst in
            let spec = Gm.broadcast ~graph:inst.Serial.graph ~root:inst.Serial.root in
            Ok
              (Resolved
                 {
                   session;
                   cost;
                   tree_weight = G.Tree.total_weight tree;
                   equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
                   edges = nonzero_subsidies subsidy;
                   pivots;
                   rounds;
                   reused_cuts;
                   fresh_cuts;
                   warm;
                 }))
  | Session_close { session } ->
      poll ();
      sessions_locked svc (fun () ->
          let known = Lru.find svc.sessions session <> None in
          if not known then Error (Unknown_session session)
          else begin
            Lru.remove svc.sessions session;
            Obs.incr c_sess_closed;
            session_gauge svc;
            Ok (Closed { session })
          end)
  | Sne _ | Enforce | Snd _ | Check ->
      invalid_arg "Service.run_session: not a session request"

(* Worker-side execution of one dispatched ticket. Every failure mode
   lands as a structured [Error] response — nothing escapes, so a batch
   mate can never be poisoned and the service cannot wedge. *)
let exec svc pool_check tk =
  let expired () =
    match tk.deadline_at with
    | Some t -> Unix.gettimeofday () > t
    | None -> false
  in
  let poll () =
    pool_check ();
    if Atomic.get tk.cancelled || expired () then raise Par.Cancelled
  in
  if Atomic.get tk.cancelled then fulfill svc tk (Error Cancelled) ~cache_hit:false
  else if expired () then fulfill svc tk (Error Deadline_expired) ~cache_hit:false
  else
    match tk.req.kind with
    | Session_open _ | Session_mutate _ | Session_resolve _ | Session_close _ -> (
        (* Stateful: bypasses the response cache entirely. *)
        match run_session svc ~poll tk.req with
        | result -> fulfill svc tk result ~cache_hit:false
        | exception Par.Cancelled ->
            let reason =
              if Atomic.get tk.cancelled then Cancelled else Deadline_expired
            in
            fulfill svc tk (Error reason) ~cache_hit:false
        | exception e ->
            fulfill svc tk (Error (Solver_error (Printexc.to_string e))) ~cache_hit:false)
    | Sne _ | Enforce | Snd _ | Check -> (
    match Serial.of_string tk.req.payload with
    | exception Failure msg ->
        fulfill svc tk (Error (Parse_error msg)) ~cache_hit:false
    | inst -> (
        let key = cache_key_of_inst tk.req.kind inst in
        match cache_find svc key with
        | Some outcome ->
            Obs.incr c_cache_hits;
            fulfill svc tk (Ok outcome) ~cache_hit:true
        | None -> (
            match solve_kind ~poll inst tk.req.kind with
            | Ok outcome ->
                cache_add svc key outcome;
                fulfill svc tk (Ok outcome) ~cache_hit:false
            | Error reason -> fulfill svc tk (Error reason) ~cache_hit:false
            | exception Par.Cancelled ->
                let reason =
                  if Atomic.get tk.cancelled then Cancelled else Deadline_expired
                in
                fulfill svc tk (Error reason) ~cache_hit:false
            | exception e ->
                fulfill svc tk (Error (Solver_error (Printexc.to_string e)))
                  ~cache_hit:false)))

(* Dispatcher: drain the queue in priority batches onto the pool until
   shutdown, then fail whatever is still queued. Runs in its own domain
   and participates in every pool sweep (Pool.map_* include the
   submitting domain), so [workers = 1] needs no extra domains at all. *)
let dispatch_loop svc =
  let rec loop () =
    Mutex.lock svc.mu;
    while svc.queue = [] && not svc.stopping do
      Condition.wait svc.work_ready svc.mu
    done;
    if svc.stopping then begin
      let rest = List.rev_map snd svc.queue in
      svc.queue <- [];
      svc.n_pending <- 0;
      Obs.set g_queue_depth 0.0;
      Mutex.unlock svc.mu;
      List.iter (fun tk -> fulfill svc tk (Error Shutdown) ~cache_hit:false) rest
    end
    else begin
      (* Highest priority first, FIFO among equals (the arrival sequence
         breaks ties). The unsent remainder keeps its arrival order. *)
      let sorted =
        List.stable_sort
          (fun (sa, ta) (sb, tb) ->
            if ta.req.priority <> tb.req.priority then
              compare tb.req.priority ta.req.priority
            else compare sa sb)
          (List.rev svc.queue)
      in
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (k - 1) (x :: acc) rest
      in
      let taken, rest = split svc.batch [] sorted in
      let batch = Array.of_list (List.map snd taken) in
      svc.queue <- List.rev rest;
      svc.n_pending <- svc.n_pending - Array.length batch;
      svc.n_inflight <- Array.length batch;
      Obs.set g_queue_depth (float_of_int svc.n_pending);
      Obs.set g_inflight (float_of_int svc.n_inflight);
      Mutex.unlock svc.mu;
      Obs.incr c_batches;
      let results = Par.Pool.map_result svc.pool (fun check tk -> exec svc check tk) batch in
      (* [exec] never raises, so every slot is [Ok ()]; the [Error] arm is
         pure insurance — if it ever fires, the ticket still completes. *)
      Array.iteri
        (fun i r ->
          match r with
          | Ok () -> ()
          | Error e ->
              fulfill svc batch.(i)
                (Error (Solver_error (Printexc.to_string e)))
                ~cache_hit:false)
        results;
      Mutex.lock svc.mu;
      svc.n_inflight <- 0;
      Obs.set g_inflight 0.0;
      Mutex.unlock svc.mu;
      loop ()
    end
  in
  loop ()

let create ?(workers = 1) ?(queue_limit = 256) ?(cache = 512) ?(sessions = 64) ?batch
    () =
  if workers < 1 then invalid_arg "Service.create: workers must be >= 1";
  if queue_limit < 1 then invalid_arg "Service.create: queue_limit must be >= 1";
  if sessions < 1 then invalid_arg "Service.create: sessions must be >= 1";
  let batch = match batch with Some b -> max 1 b | None -> 2 * workers in
  let svc =
    {
      mu = Mutex.create ();
      work_ready = Condition.create ();
      resp_ready = Condition.create ();
      queue = [];
      seq = 0;
      n_pending = 0;
      n_inflight = 0;
      stopping = false;
      dispatcher = None;
      pool = Par.Pool.create ~domains:workers ();
      batch;
      queue_limit;
      cache = (if cache > 0 then Some (Lru.create ~capacity:cache) else None);
      cache_mu = Mutex.create ();
      sessions = Lru.create ~capacity:sessions;
      sessions_mu = Mutex.create ();
      session_seq = 0;
    }
  in
  svc.dispatcher <- Some (Domain.spawn (fun () -> dispatch_loop svc));
  svc

let completed_ticket req ~at result =
  {
    req;
    submitted_at = at;
    deadline_at = None;
    cancelled = Atomic.make false;
    resp =
      Some
        { id = req.id; result; cache_hit = false; elapsed_ms = 0.0 };
  }

let submit svc req =
  let now = Unix.gettimeofday () in
  Obs.incr c_submitted;
  Mutex.lock svc.mu;
  if svc.stopping then begin
    Mutex.unlock svc.mu;
    Obs.incr c_completed;
    completed_ticket req ~at:now (Error Shutdown)
  end
  else if svc.n_pending >= svc.queue_limit then begin
    Mutex.unlock svc.mu;
    (* Backpressure: reject *now*, with a complete ticket — the caller can
       shed or retry, the queue never grows past the high-water mark. *)
    Obs.incr c_rejected;
    Obs.incr c_completed;
    completed_ticket req ~at:now (Error Overloaded)
  end
  else begin
    let tk =
      {
        req;
        submitted_at = now;
        deadline_at = Option.map (fun ms -> now +. (ms /. 1000.0)) req.deadline_ms;
        cancelled = Atomic.make false;
        resp = None;
      }
    in
    svc.queue <- (svc.seq, tk) :: svc.queue;
    svc.seq <- svc.seq + 1;
    svc.n_pending <- svc.n_pending + 1;
    Obs.set g_queue_depth (float_of_int svc.n_pending);
    Condition.signal svc.work_ready;
    Mutex.unlock svc.mu;
    tk
  end

let await svc tk =
  Mutex.lock svc.mu;
  let rec wait () =
    match tk.resp with
    | Some r ->
        Mutex.unlock svc.mu;
        r
    | None ->
        Condition.wait svc.resp_ready svc.mu;
        wait ()
  in
  wait ()

let poll_response svc tk =
  Mutex.lock svc.mu;
  let r = tk.resp in
  Mutex.unlock svc.mu;
  r

let cancel _svc tk = Atomic.set tk.cancelled true

let run_batch svc reqs =
  let tickets = List.map (submit svc) reqs in
  List.map (await svc) tickets

let pending svc =
  Mutex.lock svc.mu;
  let n = svc.n_pending in
  Mutex.unlock svc.mu;
  n

let inflight svc =
  Mutex.lock svc.mu;
  let n = svc.n_inflight in
  Mutex.unlock svc.mu;
  n

let shutdown svc =
  Mutex.lock svc.mu;
  svc.stopping <- true;
  let d = svc.dispatcher in
  svc.dispatcher <- None;
  Condition.broadcast svc.work_ready;
  Mutex.unlock svc.mu;
  match d with
  | None -> ()
  | Some d ->
      Domain.join d;
      Par.Pool.shutdown svc.pool

let with_service ?workers ?queue_limit ?cache ?sessions ?batch f =
  let svc = create ?workers ?queue_limit ?cache ?sessions ?batch () in
  Fun.protect ~finally:(fun () -> shutdown svc) (fun () -> f svc)

let active_sessions svc =
  Mutex.lock svc.sessions_mu;
  let n = Lru.length svc.sessions in
  Mutex.unlock svc.sessions_mu;
  n
