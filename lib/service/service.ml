(* Sharded request-processing service over the solver stack: N
   independent shards, each a bounded priority queue drained by its own
   dispatcher domain onto a resident Parallel.Pool, with per-request
   deadlines/cancellation polled inside the solvers and a digest-keyed
   LRU reusing outcomes across requests. Requests are routed to shards
   by the canonical instance digest, so a given instance — and any
   session opened on it — always lands on the same shard and shard
   caches never duplicate an entry. See service.mli for the architecture
   contract and DESIGN.md §9/§12 for the request lifecycle and the shard
   layer. *)

module Serial = Repro_core.Serial.Float
module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Snes = Repro_core.Sne_lp.Float_sparse
module Search = Repro_core.Snd_search.Float
module Enforce = Repro_core.Enforce
module Sess_d = Repro_core.Sne_session.Dense
module Sess_s = Repro_core.Sne_session.Sparse
module Par = Repro_parallel.Parallel
module Obs = Repro_obs.Obs
module Lru = Repro_util.Lru
module Mclock = Repro_util.Mclock
module Digestx = Repro_util.Digestx

type backend = Dense | Sparse

type kind =
  | Sne of { meth : [ `Lp3 | `Cut ]; backend : backend; max_rounds : int }
  | Enforce
  | Snd of { budget : float }
  | Check
  | Session_open of { backend : backend; max_rounds : int }
  | Session_mutate of { session : string }
  | Session_resolve of { session : string }
  | Session_close of { session : string }

type request = {
  id : string;
  kind : kind;
  payload : string;
  deadline_ms : float option;
  priority : int;
  stream : bool;
}

type error_reason =
  | Parse_error of string
  | Deadline_expired
  | Cancelled
  | Overloaded
  | Nonconverged
  | No_design
  | Solver_error of string
  | Shutdown
  | Unknown_session of string
  | Invalid_delta of string

type outcome =
  | Subsidy of {
      cost : float;
      tree_weight : float;
      equilibrium : bool;
      edges : (int * float) list;
    }
  | Design of { weight : float; subsidy_cost : float; tree_edges : int list }
  | Equilibrium of { equilibrium : bool; tree_weight : float }
  | Opened of { session : string; digest : string }
  | Mutated of { session : string; digest : string; applied : int }
  | Resolved of {
      session : string;
      cost : float;
      tree_weight : float;
      equilibrium : bool;
      edges : (int * float) list;
      pivots : int;
      rounds : int;
      reused_cuts : int;
      fresh_cuts : int;
      warm : bool;
    }
  | Closed of { session : string }

type progress =
  | Snd_incumbent of {
      weight : float;
      subsidy_cost : float;
      tree_edges : int list;
    }
  | Cut_round of { round : int; cuts : int }

type response = {
  id : string;
  result : (outcome, error_reason) result;
  cache_hit : bool;
  elapsed_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let c_submitted = Obs.counter "service.submitted"
let c_completed = Obs.counter "service.completed"
let c_rejected = Obs.counter "service.rejected"
let c_deadline = Obs.counter "service.deadline_expired"
let c_cancelled = Obs.counter "service.cancelled"
let c_cache_hits = Obs.counter "service.cache_hits"
let c_parse_errors = Obs.counter "service.parse_errors"
let c_solver_errors = Obs.counter "service.solver_errors"
let c_batches = Obs.counter "service.batches"
let c_progress = Obs.counter "service.progress_events"

(* With several shards mutating concurrently, the depth gauges are kept
   by delta ([Obs.accumulate]), never absolute [Obs.set] — an absolute
   write from shard 0 would erase shard 1's contribution. The invariant
   is that every increment is paired with exactly one decrement, so the
   gauge reads the fleet-wide total. *)
let g_queue_depth = Obs.gauge "service.queue_depth"
let g_inflight = Obs.gauge "service.inflight"
let c_sess_opened = Obs.counter "service.session.opened"
let c_sess_closed = Obs.counter "service.session.closed"
let c_sess_evicted = Obs.counter "service.session.evicted"
let c_sess_mutations = Obs.counter "service.session.mutations"
let c_sess_resolves = Obs.counter "service.session.resolves"
let c_sess_unknown = Obs.counter "service.session.unknown"
let g_sess_active = Obs.gauge "service.session.active"

(* Per-shard splits of the fleet-wide counters above, so a stats report
   shows how routing spread the load. Handles are minted once per shard
   at [create] ([Obs.counter] is idempotent per name, so re-creating a
   service reuses them) and kept on the shard record — hot paths never
   format a name. Each shard counter is bumped alongside its aggregate
   twin; the aggregates stay authoritative. *)
type shard_obs = {
  s_submitted : Obs.counter;
  s_completed : Obs.counter;
  s_rejected : Obs.counter;
  s_cache_hits : Obs.counter;
  s_batches : Obs.counter;
}

let shard_counters index =
  let c suffix = Obs.counter (Printf.sprintf "service.shard%d.%s" index suffix) in
  {
    s_submitted = c "submitted";
    s_completed = c "completed";
    s_rejected = c "rejected";
    s_cache_hits = c "cache_hits";
    s_batches = c "batches";
  }

(* Amortized minor-heap words the executing domain allocates per request
   (parse + solve + fulfill), the service-path member of the allocation
   counter family next to [lp.sparse.allocs_per_pivot] and
   [sne.sep_round_words]. Measured only while observability is enabled;
   a request runs start to finish on one pool domain, so the
   [Gc.minor_words] delta is that request's own allocation. *)
let g_req_words = Obs.gauge "service.request_words"
let req_words = Atomic.make 0.0
let req_count = Atomic.make 0

let atomic_addf a d =
  let rec go () =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. d)) then go ()
  in
  go ()

let record_request w0 =
  atomic_addf req_words (Gc.minor_words () -. w0);
  let r = 1 + Atomic.fetch_and_add req_count 1 in
  Obs.set g_req_words (Atomic.get req_words /. float_of_int r)

(* ------------------------------------------------------------------ *)
(* Cache keys and shard routing                                        *)
(* ------------------------------------------------------------------ *)

let kind_fingerprint = function
  | Sne { meth; backend; max_rounds } ->
      Printf.sprintf "sne:%s:%s:%d"
        (match meth with `Lp3 -> "lp3" | `Cut -> "cut")
        (match backend with Dense -> "dense" | Sparse -> "sparse")
        max_rounds
  | Enforce -> "enforce"
  (* %h prints the exact bits, so budgets differing below decimal printing
     precision never share a cache line. *)
  | Snd { budget } -> Printf.sprintf "snd:%h" budget
  | Check -> "check"
  (* Session requests mutate state: two identical Resolve lines can
     legitimately return different answers, so they never share a cache
     entry (exec bypasses the response cache for them entirely). *)
  | Session_open _ | Session_mutate _ | Session_resolve _ | Session_close _ ->
      failwith "Service.cache_key: session requests are stateful and uncacheable"

(* The digest keys the payload's *parse*, re-serialized to the canonical
   writer format — comments, blank lines, decimal-vs-fraction spellings and
   subsidy line order all wash out, so textually different but semantically
   identical instances share a cache entry. *)
let cache_key_of_inst kind (inst : Serial.t) =
  Digestx.of_fields [ kind_fingerprint kind; Serial.to_string inst ]

let cache_key (req : request) =
  cache_key_of_inst req.kind (Serial.of_string req.payload)

(* The canonical instance digest used for shard routing: the digest of
   the re-serialized parse when the payload parses (so every spelling of
   one instance routes identically, matching the digest sessions report),
   or of the raw payload when it does not (the shard only has to produce
   the parse error — any deterministic shard will do). *)
let route_digest (req : request) =
  match req.kind with
  | Session_open _ | Sne _ | Enforce | Snd _ | Check -> (
      match Serial.of_string req.payload with
      | inst -> Digestx.of_string (Serial.to_string inst)
      | exception Failure _ -> Digestx.of_string req.payload)
  | Session_mutate { session } | Session_resolve { session } | Session_close { session }
    ->
      Digestx.of_string session

(* Deterministic digest -> shard map: a pure fold over the digest bytes,
   so the same digest lands on the same shard across processes and runs
   (no Hashtbl.hash, whose seed can vary). *)
let shard_of_digest ~shards digest =
  if shards < 1 then invalid_arg "Service.shard_of_digest: shards must be >= 1";
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3FFFFFFF) digest;
  !h mod shards

(* Session handles encode their home shard by residue: shard [i] of [n]
   issues handles s{i+1}, s{i+1+n}, s{i+1+2n}, ... so shard = (h-1) mod n
   recovers the owner without any shared table, and a single-shard
   service still issues the documented s1, s2, ... sequence. *)
let shard_of_handle ~shards sid =
  let h =
    if String.length sid > 1 && sid.[0] = 's' then
      match int_of_string_opt (String.sub sid 1 (String.length sid - 1)) with
      | Some h when h > 0 -> h
      | _ -> 1
    else 1
  in
  (h - 1) mod shards

(* ------------------------------------------------------------------ *)
(* Running one request                                                 *)
(* ------------------------------------------------------------------ *)

let nonzero_subsidies subsidy =
  let acc = ref [] in
  Array.iteri
    (fun id b ->
      if Repro_util.Floatx.gt b 0.0 then acc := (id, b) :: !acc)
    subsidy;
  List.rev !acc

let subsidy_outcome spec tree subsidy cost =
  Ok
    (Subsidy
       {
         cost;
         tree_weight = G.Tree.total_weight tree;
         equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
         edges = nonzero_subsidies subsidy;
       })

(* Solve the parsed instance. [poll] raises [Par.Cancelled] once the
   request's deadline has passed or it was cancelled; the long solvers
   (cutting planes, SND search) poll it mid-run through their [?poll]
   hooks, the one-shot LPs only between phases. [progress] receives
   streaming partial results (SND incumbents, cutting-plane rounds) and
   is a no-op for non-streaming tickets. *)
let solve_kind ~poll ~progress (inst : Serial.t) kind =
  let graph = inst.Serial.graph and root = inst.Serial.root in
  match kind with
  | Sne { meth; backend; max_rounds } -> (
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      let on_round ~round ~cuts = progress (Cut_round { round; cuts }) in
      match (meth, backend) with
      | `Lp3, Dense ->
          let r = Sne.broadcast spec ~root tree in
          subsidy_outcome spec tree r.Sne.subsidy r.Sne.cost
      | `Lp3, Sparse ->
          let r = Snes.broadcast spec ~root tree in
          subsidy_outcome spec tree r.Snes.subsidy r.Snes.cost
      | `Cut, Dense ->
          let state = Gm.Broadcast.state_of_tree spec ~root tree in
          let r, s = Sne.cutting_plane ~max_rounds ~poll ~on_round spec ~state in
          if not s.Sne.converged then Error Nonconverged
          else subsidy_outcome spec tree r.Sne.subsidy r.Sne.cost
      | `Cut, Sparse ->
          let state = Gm.Broadcast.state_of_tree spec ~root tree in
          let r, s = Snes.cutting_plane ~max_rounds ~poll ~on_round spec ~state in
          if not s.Snes.converged then Error Nonconverged
          else subsidy_outcome spec tree r.Snes.subsidy r.Snes.cost)
  | Enforce ->
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      let r = Enforce.subsidize_mst graph tree in
      subsidy_outcome spec tree r.Enforce.subsidy r.Enforce.total
  | Snd { budget } -> (
      let on_incumbent (d : Search.design) =
        progress
          (Snd_incumbent
             {
               weight = d.Search.weight;
               subsidy_cost = d.Search.subsidy_cost;
               tree_edges = d.Search.tree_edges;
             })
      in
      match Search.exact_small ~poll ~on_incumbent ~graph ~root ~budget () with
      | Some d, _ ->
          Ok
            (Design
               {
                 weight = d.Search.weight;
                 subsidy_cost = d.Search.subsidy_cost;
                 tree_edges = d.Search.tree_edges;
               })
      | None, _ -> Error No_design)
  | Check ->
      poll ();
      let tree = Serial.target_tree inst in
      let spec = Gm.broadcast ~graph ~root in
      let subsidy = Serial.subsidy_array inst in
      Ok
        (Equilibrium
           {
             equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
             tree_weight = G.Tree.total_weight tree;
           })
  | Session_open _ | Session_mutate _ | Session_resolve _ | Session_close _ ->
      (* exec routes session kinds to [run_session] before parsing. *)
      invalid_arg "Service.solve_kind: session request on the stateless path"

(* ------------------------------------------------------------------ *)
(* The service                                                         *)
(* ------------------------------------------------------------------ *)

(* One live incremental session. Each carries its own mutex: the session
   modules are single-owner by contract, and two wire requests naming the
   same handle can land in one pool batch. The session table's LRU holds
   the entry; the per-session lock serializes the actual solving. [pins]
   (guarded by the shard's sessions_mu) counts in-flight requests holding
   or about to take [smu]: a pinned session is never LRU-evicted, which
   is what keeps an eviction from dropping a session whose state a
   concurrent resolve is still mutating. *)
type session_state = Dense_session of Sess_d.t | Sparse_session of Sess_s.t

type session_entry = {
  smu : Mutex.t;
  state : session_state;
  mutable pins : int;
}

type shard = {
  index : int;
  n_shards : int;  (* fleet size, for session-handle residues *)
  clock : unit -> float;  (* monotonic unless a test injects skew *)
  mu : Mutex.t;
  work_ready : Condition.t;  (* dispatcher sleeps here between submissions *)
  resp_ready : Condition.t;  (* awaiters sleep here *)
  mutable queue : (int * ticket) list;  (* newest first; int = arrival seq *)
  mutable seq : int;
  mutable n_pending : int;
  mutable n_inflight : int;
  mutable stopping : bool;
  mutable dispatcher : unit Domain.t option;
  pool : Par.Pool.t;
  batch : int;
  queue_limit : int;
  cache : (string, outcome) Lru.t option;
  cache_mu : Mutex.t;
  sessions : (string, session_entry) Lru.t;  (* bounded; LRU-evicted *)
  sessions_mu : Mutex.t;
  mutable session_seq : int;  (* local open count; guarded by sessions_mu *)
  obs : shard_obs;  (* this shard's service.shard<i>.* counters *)
}

and ticket = {
  req : request;
  home : shard;  (* the shard this ticket was routed to *)
  submitted_at : float;  (* home.clock time *)
  deadline_at : float option;  (* home.clock time *)
  cancelled : bool Atomic.t;
  on_progress : (progress -> unit) option;
  parsed : Serial.t option;  (* routing parse, reused by the worker *)
  mutable resp : response option;  (* guarded by home.mu *)
}

type t = { shards : shard array }

let shard_count svc = Array.length svc.shards

let shard_of_request svc (req : request) =
  let shards = shard_count svc in
  match req.kind with
  | Session_mutate { session } | Session_resolve { session } | Session_close { session }
    ->
      shard_of_handle ~shards session
  | Session_open _ | Sne _ | Enforce | Snd _ | Check ->
      shard_of_digest ~shards (route_digest req)

let count_result = function
  | Ok _ -> ()
  | Error Deadline_expired -> Obs.incr c_deadline
  | Error Cancelled -> Obs.incr c_cancelled
  | Error (Parse_error _) -> Obs.incr c_parse_errors
  | Error (Solver_error _) | Error Nonconverged -> Obs.incr c_solver_errors
  | Error Overloaded -> () (* counted as service.rejected at submission *)
  | Error (Unknown_session _) -> Obs.incr c_sess_unknown
  | Error (Invalid_delta _) -> ()
  | Error No_design | Error Shutdown -> ()

(* Complete a ticket (first completion wins; later ones are dropped, so
   e.g. the dispatcher's belt-and-braces pass after a batch cannot
   overwrite the worker's real response). *)
let fulfill tk result ~cache_hit =
  let sh = tk.home in
  let resp =
    {
      id = tk.req.id;
      result;
      cache_hit;
      elapsed_ms = 1000.0 *. (sh.clock () -. tk.submitted_at);
    }
  in
  Mutex.lock sh.mu;
  let fresh = tk.resp = None in
  if fresh then tk.resp <- Some resp;
  if fresh then Condition.broadcast sh.resp_ready;
  Mutex.unlock sh.mu;
  if fresh then begin
    Obs.incr c_completed;
    Obs.incr sh.obs.s_completed;
    count_result result
  end

let cache_find sh key =
  match sh.cache with
  | None -> None
  | Some cache ->
      Mutex.lock sh.cache_mu;
      let r = Lru.find cache key in
      Mutex.unlock sh.cache_mu;
      r

let cache_add sh key outcome =
  match sh.cache with
  | None -> ()
  | Some cache ->
      Mutex.lock sh.cache_mu;
      Lru.add cache key outcome;
      Mutex.unlock sh.cache_mu

(* ------------------------------------------------------------------ *)
(* Incremental sessions                                                *)
(* ------------------------------------------------------------------ *)

let sessions_locked sh f =
  Mutex.lock sh.sessions_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.sessions_mu) f

let keep_pinned _sid (entry : session_entry) = entry.pins > 0

let on_session_evicted _sid _entry =
  Obs.incr c_sess_evicted;
  Obs.accumulate g_sess_active (-1.0)

(* Look up a handle (refreshing its recency, so actively-driven sessions
   survive eviction pressure), pin it, and run [f] under the session's
   own lock. The table lock is released before the session lock is
   taken: a resolve on one session must not block table operations on
   others. The pin keeps concurrent opens from evicting this entry while
   [f] runs; if every slot is pinned the table briefly overflows, and
   the unpin path shrinks it back once a pin releases. *)
let with_session sh sid f =
  let entry =
    sessions_locked sh (fun () ->
        match Lru.find sh.sessions sid with
        | None -> None
        | Some entry ->
            entry.pins <- entry.pins + 1;
            Some entry)
  in
  match entry with
  | None -> Error (Unknown_session sid)
  | Some entry ->
      Fun.protect
        ~finally:(fun () ->
          sessions_locked sh (fun () ->
              entry.pins <- entry.pins - 1;
              Lru.shrink ~on_evict:on_session_evicted ~keep:keep_pinned sh.sessions))
        (fun () ->
          Mutex.lock entry.smu;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock entry.smu)
            (fun () -> f entry.state))

let session_digest = function
  | Dense_session s -> Sess_d.digest s
  | Sparse_session s -> Sess_s.digest s

(* Run one session request to a result. Pure with respect to the ticket:
   [exec] turns the result (or an escaped exception) into the response. *)
let run_session ~poll tk =
  let sh = tk.home in
  let req = tk.req in
  match req.kind with
  | Session_open { backend; max_rounds } -> (
      poll ();
      let inst =
        match tk.parsed with
        | Some inst -> Ok inst
        | None -> (
            match Serial.of_string req.payload with
            | exception Failure msg -> Error msg
            | inst -> Ok inst)
      in
      match inst with
      | Error msg -> Error (Parse_error msg)
      | Ok inst ->
          let state =
            match backend with
            | Dense -> Dense_session (Sess_d.create ~max_rounds inst)
            | Sparse -> Sparse_session (Sess_s.create ~max_rounds inst)
          in
          let entry = { smu = Mutex.create (); state; pins = 0 } in
          let session =
            sessions_locked sh (fun () ->
                let h = sh.index + 1 + (sh.n_shards * sh.session_seq) in
                sh.session_seq <- sh.session_seq + 1;
                let sid = Printf.sprintf "s%d" h in
                Lru.add ~on_evict:on_session_evicted ~keep:keep_pinned sh.sessions
                  sid entry;
                Obs.accumulate g_sess_active 1.0;
                sid)
          in
          Obs.incr c_sess_opened;
          Ok (Opened { session; digest = session_digest entry.state }))
  | Session_mutate { session } ->
      poll ();
      with_session sh session (fun state ->
          match Serial.Delta.list_of_string req.payload with
          | exception Failure msg -> Error (Invalid_delta msg)
          | [] -> Error (Invalid_delta "Delta: empty mutation payload")
          | deltas -> (
              let instance =
                match state with
                | Dense_session s -> Sess_d.instance s
                | Sparse_session s -> Sess_s.instance s
              in
              (* All-or-nothing: a delta failing mid-sequence must not
                 leave the session half-mutated, so validate the whole
                 sequence on the (immutable) instance first. *)
              match Serial.Delta.apply_all instance deltas with
              | exception Failure msg -> Error (Invalid_delta msg)
              | _ ->
                  (match state with
                  | Dense_session s -> List.iter (fun d -> ignore (Sess_d.mutate s d)) deltas
                  | Sparse_session s -> List.iter (fun d -> ignore (Sess_s.mutate s d)) deltas);
                  Obs.add c_sess_mutations (List.length deltas);
                  Ok
                    (Mutated
                       {
                         session;
                         digest = session_digest state;
                         applied = List.length deltas;
                       })))
  | Session_resolve { session } ->
      poll ();
      with_session sh session (fun state ->
          Obs.incr c_sess_resolves;
          let subsidy, cost, stats, inst =
            match state with
            | Dense_session s ->
                let r, st = Sess_d.resolve ~poll s in
                ( r.Sess_d.Sne.subsidy,
                  r.Sess_d.Sne.cost,
                  ( st.Sess_d.pivots,
                    st.Sess_d.rounds,
                    st.Sess_d.reused_cuts,
                    st.Sess_d.fresh_cuts,
                    st.Sess_d.warm,
                    st.Sess_d.converged ),
                  Sess_d.instance s )
            | Sparse_session s ->
                let r, st = Sess_s.resolve ~poll s in
                ( r.Sess_s.Sne.subsidy,
                  r.Sess_s.Sne.cost,
                  ( st.Sess_s.pivots,
                    st.Sess_s.rounds,
                    st.Sess_s.reused_cuts,
                    st.Sess_s.fresh_cuts,
                    st.Sess_s.warm,
                    st.Sess_s.converged ),
                  Sess_s.instance s )
          in
          let pivots, rounds, reused_cuts, fresh_cuts, warm, converged = stats in
          if not converged then Error Nonconverged
          else
            let tree = Serial.target_tree inst in
            let spec = Gm.broadcast ~graph:inst.Serial.graph ~root:inst.Serial.root in
            Ok
              (Resolved
                 {
                   session;
                   cost;
                   tree_weight = G.Tree.total_weight tree;
                   equilibrium = Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree;
                   edges = nonzero_subsidies subsidy;
                   pivots;
                   rounds;
                   reused_cuts;
                   fresh_cuts;
                   warm;
                 }))
  | Session_close { session } ->
      poll ();
      sessions_locked sh (fun () ->
          let known = Lru.find sh.sessions session <> None in
          if not known then Error (Unknown_session session)
          else begin
            (* An explicit close always wins, pinned or not: the handle
               dies now, while any in-flight resolve keeps its own
               reference to the entry and finishes safely off-table. *)
            Lru.remove sh.sessions session;
            Obs.incr c_sess_closed;
            Obs.accumulate g_sess_active (-1.0);
            Ok (Closed { session })
          end)
  | Sne _ | Enforce | Snd _ | Check ->
      invalid_arg "Service.run_session: not a session request"

(* Worker-side execution of one dispatched ticket. Every failure mode
   lands as a structured [Error] response — nothing escapes, so a batch
   mate can never be poisoned and the service cannot wedge. *)
let exec_ticket pool_check tk =
  let sh = tk.home in
  let expired () =
    match tk.deadline_at with Some t -> sh.clock () > t | None -> false
  in
  let poll () =
    pool_check ();
    if Atomic.get tk.cancelled || expired () then raise Par.Cancelled
  in
  (* Streaming sink: only streaming tickets carry one; a raising sink is
     the client's bug and must not take the worker (or the batch) down
     with it, so exceptions are swallowed here. *)
  let progress =
    match tk.on_progress with
    | Some f when tk.req.stream ->
        fun p ->
          Obs.incr c_progress;
          (try f p with _ -> ())
    | _ -> fun _ -> ()
  in
  if Atomic.get tk.cancelled then fulfill tk (Error Cancelled) ~cache_hit:false
  else if expired () then fulfill tk (Error Deadline_expired) ~cache_hit:false
  else
    match tk.req.kind with
    | Session_open _ | Session_mutate _ | Session_resolve _ | Session_close _ -> (
        (* Stateful: bypasses the response cache entirely. *)
        match run_session ~poll tk with
        | result -> fulfill tk result ~cache_hit:false
        | exception Par.Cancelled ->
            let reason =
              if Atomic.get tk.cancelled then Cancelled else Deadline_expired
            in
            fulfill tk (Error reason) ~cache_hit:false
        | exception e ->
            fulfill tk (Error (Solver_error (Printexc.to_string e))) ~cache_hit:false)
    | Sne _ | Enforce | Snd _ | Check -> (
        let inst =
          match tk.parsed with
          | Some inst -> Ok inst
          | None -> (
              (* The routing parse failed; re-parse for the error text. *)
              match Serial.of_string tk.req.payload with
              | exception Failure msg -> Error msg
              | inst -> Ok inst)
        in
        match inst with
        | Error msg -> fulfill tk (Error (Parse_error msg)) ~cache_hit:false
        | Ok inst -> (
            let key = cache_key_of_inst tk.req.kind inst in
            match cache_find sh key with
            | Some outcome ->
                Obs.incr c_cache_hits;
                Obs.incr sh.obs.s_cache_hits;
                fulfill tk (Ok outcome) ~cache_hit:true
            | None -> (
                match solve_kind ~poll ~progress inst tk.req.kind with
                | Ok outcome ->
                    cache_add sh key outcome;
                    fulfill tk (Ok outcome) ~cache_hit:false
                | Error reason -> fulfill tk (Error reason) ~cache_hit:false
                | exception Par.Cancelled ->
                    let reason =
                      if Atomic.get tk.cancelled then Cancelled else Deadline_expired
                    in
                    fulfill tk (Error reason) ~cache_hit:false
                | exception e ->
                    fulfill tk (Error (Solver_error (Printexc.to_string e)))
                      ~cache_hit:false)))

(* Meter the per-request allocation gauge around the real executor.
   [exec_ticket] never raises (every outcome goes through [fulfill]),
   so a plain sequence suffices — no protection needed. *)
let exec pool_check tk =
  if not (Obs.enabled ()) then exec_ticket pool_check tk
  else begin
    let w0 = Gc.minor_words () in
    exec_ticket pool_check tk;
    record_request w0
  end

(* Per-shard dispatcher: drain the queue in priority batches onto the
   shard's pool until shutdown, then fail whatever is still queued. Runs
   in its own domain and participates in every pool sweep (Pool.map_*
   include the submitting domain), so [workers = 1] needs no extra
   domains per shard at all. *)
let dispatch_loop sh =
  let rec loop () =
    Mutex.lock sh.mu;
    while sh.queue = [] && not sh.stopping do
      Condition.wait sh.work_ready sh.mu
    done;
    if sh.stopping then begin
      let rest = List.rev_map snd sh.queue in
      let drained = sh.n_pending in
      sh.queue <- [];
      sh.n_pending <- 0;
      Obs.accumulate g_queue_depth (-.float_of_int drained);
      Mutex.unlock sh.mu;
      List.iter (fun tk -> fulfill tk (Error Shutdown) ~cache_hit:false) rest
    end
    else begin
      (* Highest priority first, FIFO among equals (the arrival sequence
         breaks ties). The unsent remainder keeps its arrival order. *)
      let sorted =
        List.stable_sort
          (fun (sa, ta) (sb, tb) ->
            if ta.req.priority <> tb.req.priority then
              compare tb.req.priority ta.req.priority
            else compare sa sb)
          (List.rev sh.queue)
      in
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (k - 1) (x :: acc) rest
      in
      let taken, rest = split sh.batch [] sorted in
      let batch = Array.of_list (List.map snd taken) in
      sh.queue <- List.rev rest;
      sh.n_pending <- sh.n_pending - Array.length batch;
      sh.n_inflight <- Array.length batch;
      Obs.accumulate g_queue_depth (-.float_of_int (Array.length batch));
      Obs.accumulate g_inflight (float_of_int (Array.length batch));
      Mutex.unlock sh.mu;
      Obs.incr c_batches;
      Obs.incr sh.obs.s_batches;
      let results = Par.Pool.map_result sh.pool (fun check tk -> exec check tk) batch in
      (* [exec] never raises, so every slot is [Ok ()]; the [Error] arm is
         pure insurance — if it ever fires, the ticket still completes. *)
      Array.iteri
        (fun i r ->
          match r with
          | Ok () -> ()
          | Error e ->
              fulfill batch.(i)
                (Error (Solver_error (Printexc.to_string e)))
                ~cache_hit:false)
        results;
      Mutex.lock sh.mu;
      sh.n_inflight <- 0;
      Obs.accumulate g_inflight (-.float_of_int (Array.length batch));
      Mutex.unlock sh.mu;
      loop ()
    end
  in
  loop ()

let create ?(shards = 1) ?(workers = 1) ?(queue_limit = 256) ?(cache = 512)
    ?(sessions = 64) ?batch ?(now = Mclock.now) () =
  if shards < 1 then invalid_arg "Service.create: shards must be >= 1";
  if workers < 1 then invalid_arg "Service.create: workers must be >= 1";
  if queue_limit < 1 then invalid_arg "Service.create: queue_limit must be >= 1";
  if sessions < 1 then invalid_arg "Service.create: sessions must be >= 1";
  let batch = match batch with Some b -> max 1 b | None -> 2 * workers in
  let mk_shard index =
    {
      index;
      n_shards = shards;
      clock = now;
      mu = Mutex.create ();
      work_ready = Condition.create ();
      resp_ready = Condition.create ();
      queue = [];
      seq = 0;
      n_pending = 0;
      n_inflight = 0;
      stopping = false;
      dispatcher = None;
      pool = Par.Pool.create ~domains:workers ();
      batch;
      queue_limit;
      cache = (if cache > 0 then Some (Lru.create ~capacity:cache) else None);
      cache_mu = Mutex.create ();
      sessions = Lru.create ~capacity:sessions;
      sessions_mu = Mutex.create ();
      session_seq = 0;
      obs = shard_counters index;
    }
  in
  let svc = { shards = Array.init shards mk_shard } in
  Array.iter
    (fun sh -> sh.dispatcher <- Some (Domain.spawn (fun () -> dispatch_loop sh)))
    svc.shards;
  svc

let completed_ticket sh req ~at result =
  {
    req;
    home = sh;
    submitted_at = at;
    deadline_at = None;
    cancelled = Atomic.make false;
    on_progress = None;
    parsed = None;
    resp = Some { id = req.id; result; cache_hit = false; elapsed_ms = 0.0 };
  }

let submit ?on_progress svc req =
  let sh = svc.shards.(shard_of_request svc req) in
  let now = sh.clock () in
  Obs.incr c_submitted;
  Obs.incr sh.obs.s_submitted;
  (* Parse once on the submitting thread for routing; the worker reuses
     the result, so stateless requests are parsed exactly once total
     (the seed parsed once too, just later). *)
  let parsed =
    match req.kind with
    | Session_open _ | Sne _ | Enforce | Snd _ | Check -> (
        match Serial.of_string req.payload with
        | inst -> Some inst
        | exception Failure _ -> None)
    | Session_mutate _ | Session_resolve _ | Session_close _ -> None
  in
  Mutex.lock sh.mu;
  if sh.stopping then begin
    Mutex.unlock sh.mu;
    Obs.incr c_completed;
    Obs.incr sh.obs.s_completed;
    completed_ticket sh req ~at:now (Error Shutdown)
  end
  else if sh.n_pending >= sh.queue_limit then begin
    Mutex.unlock sh.mu;
    (* Backpressure: reject *now*, with a complete ticket — the caller can
       shed or retry, this shard's queue never grows past the high-water
       mark (the limit is per shard; a hot shard sheds while its
       neighbours stay responsive). *)
    Obs.incr c_rejected;
    Obs.incr c_completed;
    Obs.incr sh.obs.s_rejected;
    Obs.incr sh.obs.s_completed;
    completed_ticket sh req ~at:now (Error Overloaded)
  end
  else begin
    let tk =
      {
        req;
        home = sh;
        submitted_at = now;
        deadline_at = Option.map (fun ms -> now +. (ms /. 1000.0)) req.deadline_ms;
        cancelled = Atomic.make false;
        on_progress;
        parsed;
        resp = None;
      }
    in
    sh.queue <- (sh.seq, tk) :: sh.queue;
    sh.seq <- sh.seq + 1;
    sh.n_pending <- sh.n_pending + 1;
    Obs.accumulate g_queue_depth 1.0;
    Condition.signal sh.work_ready;
    Mutex.unlock sh.mu;
    tk
  end

let await _svc tk =
  let sh = tk.home in
  Mutex.lock sh.mu;
  let rec wait () =
    match tk.resp with
    | Some r ->
        Mutex.unlock sh.mu;
        r
    | None ->
        Condition.wait sh.resp_ready sh.mu;
        wait ()
  in
  wait ()

let poll_response _svc tk =
  let sh = tk.home in
  Mutex.lock sh.mu;
  let r = tk.resp in
  Mutex.unlock sh.mu;
  r

let cancel _svc tk = Atomic.set tk.cancelled true

let run_batch svc reqs =
  let tickets = List.map (submit svc) reqs in
  List.map (await svc) tickets

let sum_shards svc f =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.mu;
      let n = f sh in
      Mutex.unlock sh.mu;
      acc + n)
    0 svc.shards

let pending svc = sum_shards svc (fun sh -> sh.n_pending)
let inflight svc = sum_shards svc (fun sh -> sh.n_inflight)

let shutdown svc =
  (* Flip every shard to stopping first so no submit can race onto a
     half-stopped fleet, then join the dispatchers. *)
  let joins =
    Array.map
      (fun sh ->
        Mutex.lock sh.mu;
        sh.stopping <- true;
        let d = sh.dispatcher in
        sh.dispatcher <- None;
        Condition.broadcast sh.work_ready;
        Mutex.unlock sh.mu;
        (sh, d))
      svc.shards
  in
  Array.iter
    (fun (sh, d) ->
      match d with
      | None -> ()
      | Some d ->
          Domain.join d;
          Par.Pool.shutdown sh.pool)
    joins

let with_service ?shards ?workers ?queue_limit ?cache ?sessions ?batch ?now f =
  let svc = create ?shards ?workers ?queue_limit ?cache ?sessions ?batch ?now () in
  Fun.protect ~finally:(fun () -> shutdown svc) (fun () -> f svc)

let active_sessions svc =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sessions_mu;
      let n = Lru.length sh.sessions in
      Mutex.unlock sh.sessions_mu;
      acc + n)
    0 svc.shards
