(** Sharded request-processing service over the solver stack.

    Every solver entry point in this repo used to be a one-shot CLI
    invocation: parse, solve, exit. This module is the layer the ROADMAP's
    "serve heavy traffic" goal needs — a typed request/response API that
    accepts a stream of solver requests, bounds their latency with
    deadlines, rejects excess load instead of growing without bound, and
    reuses work across requests through a digest-keyed response cache.

    {2 Architecture}

    - {b Shards}: the service is [shards] independent copies of the
      whole pipeline below — each shard owns its bounded queue, its
      dispatcher domain, its worker pool, its response cache and its
      session table, and shards never share a lock on the hot path.
      Requests are routed to a shard by the canonical instance digest
      ({!shard_of_digest} over {!route_digest}), so a given instance
      always lands on the same shard (its cached outcome is never
      duplicated across shard caches) and a session lives its whole life
      on the shard that opened it (the handle encodes the shard by
      residue: shard [i] of [n] issues [s{i+1}], [s{i+1+n}], ...).
    - {b Submission queue}: [submit] enqueues under the home shard's
      mutex; beyond [queue_limit] pending requests {e on that shard} it
      refuses immediately with an [Overloaded] response (backpressure —
      a hot shard sheds while its neighbours stay responsive). Pending
      requests are dispatched highest [priority] first, FIFO among
      equals.
    - {b Worker pool}: each shard's dispatcher domain drains its queue in
      batches and fans each batch out over a resident
      {!Repro_parallel.Parallel.Pool} via [Pool.map_result], so one
      request's failure (solver exception, expired deadline) is captured
      as that request's structured [Error] response and never poisons its
      batch-mates.
    - {b Deadlines and cancellation}: each request carries an optional
      deadline (measured from submission {e on the monotonic clock} —
      an NTP step can neither spuriously expire nor immortalize a
      request) and a cancellation cell ([cancel]). Workers poll both
      through the [?poll] hooks of {!Repro_core.Snd_search} and the
      {!Repro_core.Sne_lp} cutting-plane loop: an expired deadline raises
      {!Repro_parallel.Parallel.Cancelled} inside the search and aborts it
      mid-stream rather than running to completion.
    - {b Streaming partial results}: a request with [stream = true]
      submitted with [~on_progress] receives {!progress} events while it
      solves — SND incumbent improvements as they are found, cutting-plane
      rounds as they close — so a long search is not all-or-nothing at
      the deadline: a client whose request expires still holds the best
      incumbent streamed before the cutoff.
    - {b Cross-request cache}: successful outcomes are cached in an LRU
      ({!Repro_util.Lru}) keyed by a canonical instance digest
      ({!Repro_util.Digestx} over the re-serialized parse of the payload
      plus the request kind), so repeated instances — e.g. a
      price-of-stability sweep hammering near-identical graphs — return
      the cached response with [cache_hit = true]. Cached responses are
      byte-identical to the original under {!Service_wire} serialization.
    - {b Graceful degradation}: a request that cannot be served yields a
      structured [Error] response carrying the reason; the service itself
      never raises out of [submit]/[await] and never wedges.

    Observability: [service.*] counters and gauges (submitted, completed,
    rejected, deadline_expired, cancelled, cache_hits, solver_errors,
    progress_events, queue_depth, inflight) in the process-wide
    {!Repro_obs.Obs} registry, visible through the CLI's [--stats] path.
    The gauges aggregate across shards (maintained by delta, not
    absolute writes). *)

type backend = Dense | Sparse

(** What to run against the payload instance.

    The [Session_*] kinds drive {e incremental re-solve sessions}
    ({!Repro_core.Sne_session}): [Session_open] parses the payload as an
    instance and returns a service-generated handle; [Session_mutate]
    applies the payload as a {!Repro_core.Serial.Make.Delta} trace
    (all-or-nothing); [Session_resolve] re-solves warm, reusing the
    session's retained cut pool and optimal basis; [Session_close]
    releases the handle. Sessions live in a bounded per-shard LRU table
    (see [create]'s [sessions]) — least-recently-used handles are evicted
    when the table is full, and any later request naming an evicted,
    closed or never-issued handle gets a structured [Unknown_session]
    error, never a raise. A session whose per-session lock is held (or
    about to be taken) by an in-flight request is {e pinned}: eviction
    skips it and falls to the next-stalest unpinned handle, so a resolve
    can never race an eviction of its own session. Session requests
    bypass the response cache (they are stateful by design). Counters
    under [service.session.*]. *)
type kind =
  | Sne of { meth : [ `Lp3 | `Cut ]; backend : backend; max_rounds : int }
      (** Theorem 1 SNE: the compact broadcast LP (3), or LP (1) by
          cutting planes. *)
  | Enforce  (** The Theorem 6 constructive wgt(T)/e bound on the MST. *)
  | Snd of { budget : float }
      (** Branch-and-bound stable network design within [budget]. *)
  | Check  (** Lemma 2 equilibrium check of the target tree under the
               payload's declared subsidies. *)
  | Session_open of { backend : backend; max_rounds : int }
  | Session_mutate of { session : string }
  | Session_resolve of { session : string }
  | Session_close of { session : string }

type request = {
  id : string;  (** caller-chosen; echoed verbatim in the response *)
  kind : kind;
  payload : string;  (** a {!Repro_core.Serial} instance text *)
  deadline_ms : float option;  (** latency budget from submission *)
  priority : int;  (** higher dispatches earlier; default wire value 0 *)
  stream : bool;
      (** opt into {!progress} events (needs [~on_progress] at submit) *)
}

type error_reason =
  | Parse_error of string  (** malformed payload (or wire line/frame) *)
  | Deadline_expired
  | Cancelled  (** by {!cancel} *)
  | Overloaded  (** rejected at submission: home shard at [queue_limit] *)
  | Nonconverged  (** cutting plane hit its round limit *)
  | No_design  (** SND: no tree enforceable within the budget *)
  | Solver_error of string  (** the solver raised; message attached *)
  | Shutdown  (** service stopped before the request ran *)
  | Unknown_session of string
      (** handle never issued, closed, or LRU-evicted; the handle echoed *)
  | Invalid_delta of string
      (** mutation payload malformed or inapplicable; nothing applied *)

type outcome =
  | Subsidy of {
      cost : float;
      tree_weight : float;
      equilibrium : bool;  (** independent Lemma 2 re-check of the plan *)
      edges : (int * float) list;  (** nonzero subsidies, by edge id *)
    }
  | Design of { weight : float; subsidy_cost : float; tree_edges : int list }
  | Equilibrium of { equilibrium : bool; tree_weight : float }
  | Opened of { session : string; digest : string }
      (** [digest] = canonical instance digest (equals the digest of the
          same instance built or parsed any other way) *)
  | Mutated of { session : string; digest : string; applied : int }
      (** [applied] = deltas applied (the whole payload or nothing) *)
  | Resolved of {
      session : string;
      cost : float;
      tree_weight : float;
      equilibrium : bool;
      edges : (int * float) list;
      pivots : int;  (** simplex pivots this resolve *)
      rounds : int;  (** fresh separation rounds *)
      reused_cuts : int;  (** cut-pool entries reused *)
      fresh_cuts : int;  (** cuts newly separated *)
      warm : bool;  (** warm-started from a previous basis *)
    }
  | Closed of { session : string }

(** A streaming partial result, delivered through [submit]'s
    [~on_progress] while the request solves (only when the request set
    [stream = true]). Events fire on service worker domains — the sink
    must be thread-safe and cheap, and exceptions it raises are swallowed
    (a client bug must not poison the worker's batch). *)
type progress =
  | Snd_incumbent of {
      weight : float;
      subsidy_cost : float;
      tree_edges : int list;
    }
      (** the SND search's affordable incumbent strictly improved; the
          last event matches the final design *)
  | Cut_round of { round : int; cuts : int }
      (** a cutting-plane separation round found [cuts] violated
          constraints (fired before the master re-solve) *)

type response = {
  id : string;
  result : (outcome, error_reason) result;
  cache_hit : bool;
  elapsed_ms : float;  (** submission to completion, queue wait included *)
}

type t
type ticket

(** [create ()] spawns the shard fleet. [shards] independent shards
    (default 1 — the seed's single-dispatcher behavior, including the
    [s1], [s2], ... session-handle sequence); [workers] solve parallelism
    {e per shard} (default 1: each dispatcher solves alone, no extra
    domains); [queue_limit] the backpressure high-water mark on pending
    requests {e per shard} (default 256); [cache] each shard's LRU
    capacity in cached outcomes (default 512; [0] disables caching —
    digest routing means the fleet never stores an instance twice, so
    total capacity scales with the shard count); [sessions] each shard's
    bounded session-table capacity (default 64; least-recently-used
    {e unpinned} handles are evicted — [Lru.find] on every session
    request refreshes recency, so actively-driven sessions survive);
    [batch] how many requests one pool sweep takes (default
    [2 * workers]). [now] injects the clock used for [submitted_at],
    deadlines and [elapsed_ms] (default {!Repro_util.Mclock.now}, the
    monotonic clock; tests inject a fake to simulate skew — wall time is
    deliberately never consulted). *)
val create :
  ?shards:int ->
  ?workers:int ->
  ?queue_limit:int ->
  ?cache:int ->
  ?sessions:int ->
  ?batch:int ->
  ?now:(unit -> float) ->
  unit ->
  t

(** Number of shards the service was created with. *)
val shard_count : t -> int

(** The digest a request is routed by: the canonical instance digest
    (of the re-serialized parse — every spelling of one instance routes
    identically, and equals the [digest] sessions report) for stateless
    and [Session_open] requests, falling back to the raw payload digest
    when the payload does not parse; the digest of the handle for other
    session requests (though their shard comes from the handle residue,
    see {!shard_of_request}). *)
val route_digest : request -> string

(** Deterministic digest -> shard map: a pure function of the digest
    bytes and [shards] only, identical across processes, runs, and OCaml
    versions. Raises [Invalid_argument] when [shards < 1]. *)
val shard_of_digest : shards:int -> string -> int

(** The shard [submit] would route this request to: by
    {!shard_of_digest} of {!route_digest} for instance-carrying
    requests, by handle residue for session mutate/resolve/close. *)
val shard_of_request : t -> request -> int

(** Enqueue; never raises and never blocks on solver work. When the home
    shard's queue is at [queue_limit] (or the service is shut down), the
    ticket is already complete with [Error Overloaded] (resp.
    [Error Shutdown]). [on_progress] is the streaming sink — it only
    fires for requests with [stream = true], from worker domains (see
    {!progress}). *)
val submit : ?on_progress:(progress -> unit) -> t -> request -> ticket

(** Block until the ticket's response is ready. Idempotent. *)
val await : t -> ticket -> response

(** [poll_response] is [await] without blocking. *)
val poll_response : t -> ticket -> response option

(** Best-effort cancellation: a still-queued request completes as
    [Error Cancelled] without solving; a running one aborts at its next
    poll point. No-op on completed tickets. *)
val cancel : t -> ticket -> unit

(** [submit] them all, then [await] them all; responses in input order. *)
val run_batch : t -> request list -> response list

(** Pending (queued, not yet dispatched) request count, summed over
    shards — what backpressure measures against [queue_limit]
    shard-locally. *)
val pending : t -> int

(** Requests currently executing, summed over shards. *)
val inflight : t -> int

(** Live incremental sessions, summed over the per-shard tables. *)
val active_sessions : t -> int

(** Stop accepting work, fail remaining queued requests with
    [Error Shutdown], join every shard's dispatcher and pool.
    Idempotent. *)
val shutdown : t -> unit

(** [with_service ?shards ... f] runs [f] over a fresh service and
    shuts it down afterwards, also on exceptions. *)
val with_service :
  ?shards:int ->
  ?workers:int ->
  ?queue_limit:int ->
  ?cache:int ->
  ?sessions:int ->
  ?batch:int ->
  ?now:(unit -> float) ->
  (t -> 'a) ->
  'a

(** The canonical cache digest of a request — exposed so tests can assert
    that equivalent payloads (comments, whitespace, reordered subsidy
    lines) coincide. Raises [Failure] on unparseable payloads and on
    session requests (stateful, hence uncacheable by design). *)
val cache_key : request -> string
