(** Batched request-processing service over the solver stack.

    Every solver entry point in this repo used to be a one-shot CLI
    invocation: parse, solve, exit. This module is the layer the ROADMAP's
    "serve heavy traffic" goal needs — a typed request/response API that
    accepts a stream of solver requests, bounds their latency with
    deadlines, rejects excess load instead of growing without bound, and
    reuses work across requests through a digest-keyed response cache.

    {2 Architecture}

    - {b Submission queue}: [submit] enqueues under a mutex; beyond
      [queue_limit] pending requests it refuses immediately with an
      [Overloaded] response (backpressure — the queue never grows without
      bound). Pending requests are dispatched highest [priority] first,
      FIFO among equals.
    - {b Worker pool}: a dispatcher domain drains the queue in batches and
      fans each batch out over a resident
      {!Repro_parallel.Parallel.Pool} via [Pool.map_result], so one
      request's failure (solver exception, expired deadline) is captured
      as that request's structured [Error] response and never poisons its
      batch-mates.
    - {b Deadlines and cancellation}: each request carries an optional
      deadline (measured from submission) and a cancellation cell
      ([cancel]). Workers poll both through the [?poll] hooks of
      {!Repro_core.Snd_search} and the {!Repro_core.Sne_lp} cutting-plane
      loop: an expired deadline raises
      {!Repro_parallel.Parallel.Cancelled} inside the search and aborts it
      mid-stream rather than running to completion.
    - {b Cross-request cache}: successful outcomes are cached in an LRU
      ({!Repro_util.Lru}) keyed by a canonical instance digest
      ({!Repro_util.Digestx} over the re-serialized parse of the payload
      plus the request kind), so repeated instances — e.g. a
      price-of-stability sweep hammering near-identical graphs — return
      the cached response with [cache_hit = true]. Cached responses are
      byte-identical to the original under {!Service_wire} serialization.
    - {b Graceful degradation}: a request that cannot be served yields a
      structured [Error] response carrying the reason; the service itself
      never raises out of [submit]/[await] and never wedges.

    Observability: [service.*] counters and gauges (submitted, completed,
    rejected, deadline_expired, cancelled, cache_hits, solver_errors,
    queue_depth, inflight) in the process-wide {!Repro_obs.Obs} registry,
    visible through the CLI's [--stats] path. *)

type backend = Dense | Sparse

(** What to run against the payload instance.

    The [Session_*] kinds drive {e incremental re-solve sessions}
    ({!Repro_core.Sne_session}): [Session_open] parses the payload as an
    instance and returns a service-generated handle; [Session_mutate]
    applies the payload as a {!Repro_core.Serial.Make.Delta} trace
    (all-or-nothing); [Session_resolve] re-solves warm, reusing the
    session's retained cut pool and optimal basis; [Session_close]
    releases the handle. Sessions live in a bounded LRU table (see
    [create]'s [sessions]) — least-recently-used handles are evicted when
    the table is full, and any later request naming an evicted, closed or
    never-issued handle gets a structured [Unknown_session] error, never a
    raise. Session requests bypass the response cache (they are stateful
    by design). Counters under [service.session.*]. *)
type kind =
  | Sne of { meth : [ `Lp3 | `Cut ]; backend : backend; max_rounds : int }
      (** Theorem 1 SNE: the compact broadcast LP (3), or LP (1) by
          cutting planes. *)
  | Enforce  (** The Theorem 6 constructive wgt(T)/e bound on the MST. *)
  | Snd of { budget : float }
      (** Branch-and-bound stable network design within [budget]. *)
  | Check  (** Lemma 2 equilibrium check of the target tree under the
               payload's declared subsidies. *)
  | Session_open of { backend : backend; max_rounds : int }
  | Session_mutate of { session : string }
  | Session_resolve of { session : string }
  | Session_close of { session : string }

type request = {
  id : string;  (** caller-chosen; echoed verbatim in the response *)
  kind : kind;
  payload : string;  (** a {!Repro_core.Serial} instance text *)
  deadline_ms : float option;  (** latency budget from submission *)
  priority : int;  (** higher dispatches earlier; default wire value 0 *)
}

type error_reason =
  | Parse_error of string  (** malformed payload (or wire line) *)
  | Deadline_expired
  | Cancelled  (** by {!cancel} *)
  | Overloaded  (** rejected at submission: queue at [queue_limit] *)
  | Nonconverged  (** cutting plane hit its round limit *)
  | No_design  (** SND: no tree enforceable within the budget *)
  | Solver_error of string  (** the solver raised; message attached *)
  | Shutdown  (** service stopped before the request ran *)
  | Unknown_session of string
      (** handle never issued, closed, or LRU-evicted; the handle echoed *)
  | Invalid_delta of string
      (** mutation payload malformed or inapplicable; nothing applied *)

type outcome =
  | Subsidy of {
      cost : float;
      tree_weight : float;
      equilibrium : bool;  (** independent Lemma 2 re-check of the plan *)
      edges : (int * float) list;  (** nonzero subsidies, by edge id *)
    }
  | Design of { weight : float; subsidy_cost : float; tree_edges : int list }
  | Equilibrium of { equilibrium : bool; tree_weight : float }
  | Opened of { session : string; digest : string }
      (** [digest] = canonical instance digest (equals the digest of the
          same instance built or parsed any other way) *)
  | Mutated of { session : string; digest : string; applied : int }
      (** [applied] = deltas applied (the whole payload or nothing) *)
  | Resolved of {
      session : string;
      cost : float;
      tree_weight : float;
      equilibrium : bool;
      edges : (int * float) list;
      pivots : int;  (** simplex pivots this resolve *)
      rounds : int;  (** fresh separation rounds *)
      reused_cuts : int;  (** cut-pool entries reused *)
      fresh_cuts : int;  (** cuts newly separated *)
      warm : bool;  (** warm-started from a previous basis *)
    }
  | Closed of { session : string }

type response = {
  id : string;
  result : (outcome, error_reason) result;
  cache_hit : bool;
  elapsed_ms : float;  (** submission to completion, queue wait included *)
}

type t
type ticket

(** [create ()] spawns the dispatcher domain and the worker pool.
    [workers] is total solve parallelism (default 1: the dispatcher solves
    alone, no extra domains); [queue_limit] the backpressure high-water
    mark on {e pending} requests (default 256); [cache] the LRU capacity
    in cached outcomes (default 512; [0] disables caching); [sessions]
    the bounded session-table capacity (default 64; least-recently-used
    handles are evicted — [Lru.find] on every session request refreshes
    recency, so actively-driven sessions survive); [batch] how many
    requests one pool sweep takes (default [2 * workers]). *)
val create :
  ?workers:int ->
  ?queue_limit:int ->
  ?cache:int ->
  ?sessions:int ->
  ?batch:int ->
  unit ->
  t

(** Enqueue; never raises and never blocks on solver work. When the queue
    is at [queue_limit] (or the service is shut down), the ticket is
    already complete with [Error Overloaded] (resp. [Error Shutdown]). *)
val submit : t -> request -> ticket

(** Block until the ticket's response is ready. Idempotent. *)
val await : t -> ticket -> response

(** [poll_response] is [await] without blocking. *)
val poll_response : t -> ticket -> response option

(** Best-effort cancellation: a still-queued request completes as
    [Error Cancelled] without solving; a running one aborts at its next
    poll point. No-op on completed tickets. *)
val cancel : t -> ticket -> unit

(** [submit] them all, then [await] them all; responses in input order. *)
val run_batch : t -> request list -> response list

(** Pending (queued, not yet dispatched) request count — what
    backpressure measures against [queue_limit]. *)
val pending : t -> int

(** Requests currently executing on the pool. *)
val inflight : t -> int

(** Live incremental sessions in the bounded table. *)
val active_sessions : t -> int

(** Stop accepting work, fail remaining queued requests with
    [Error Shutdown], join the dispatcher and the pool. Idempotent. *)
val shutdown : t -> unit

(** [with_service ?workers ... f] runs [f] over a fresh service and
    shuts it down afterwards, also on exceptions. *)
val with_service :
  ?workers:int ->
  ?queue_limit:int ->
  ?cache:int ->
  ?sessions:int ->
  ?batch:int ->
  (t -> 'a) ->
  'a

(** The canonical cache digest of a request — exposed so tests can assert
    that equivalent payloads (comments, whitespace, reordered subsidy
    lines) coincide. Raises [Failure] on unparseable payloads and on
    session requests (stateful, hence uncacheable by design). *)
val cache_key : request -> string
