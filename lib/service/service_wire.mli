(** Wire format for the request service, as spoken by
    [sne_cli serve --stdio]: newline-delimited requests in, one-line JSON
    responses out. Documented in DESIGN.md §9.

    {2 Request lines}

    One request per line, whitespace-separated [key=value] tokens:

    {v
    id=7 kind=sne method=cut backend=sparse deadline_ms=250 inst=nodes%203%0A...
    id=8 kind=snd budget=1.5 priority=2 inst=...
    v}

    Keys: [id] (required), [kind] ([sne]|[enforce]|[snd]|[check],
    required), [inst] (required; the {!Repro_core.Serial} instance text,
    percent-encoded), [method] ([lp3] default | [cut]), [backend] ([dense]
    default | [sparse]), [max_rounds] (default 500), [budget] (required
    for [kind=snd]), [deadline_ms], [priority] (default 0). Unknown keys,
    duplicate keys and malformed values are parse errors — the serve loop
    answers them with a structured [parse_error] response rather than
    dying.

    Values are percent-encoded: every byte outside
    [A-Za-z0-9._~/:-] is written as [%XX] (uppercase hex), so instance
    texts with spaces and newlines fit in one token.

    {2 Response lines}

    One JSON object per response, single line:

    {v
    {"id":"7","status":"ok","cache_hit":false,"elapsed_ms":3.1,
     "outcome":{"type":"subsidy","cost":0.5,...}}
    {"id":"9","status":"error","reason":"deadline_expired",
     "cache_hit":false,"elapsed_ms":250.8}
    v}

    [status] is ["ok"] iff the request produced an outcome; otherwise
    [reason] holds a stable slug ([parse_error], [deadline_expired],
    [cancelled], [overloaded], [nonconverged], [no_design],
    [solver_error], [shutdown]) and [detail] the human message when there
    is one. *)

(** Percent-encode every byte outside the unreserved set
    [A-Za-z0-9._~/:-]. *)
val encode : string -> string

(** Inverse of {!encode}; [Error] on truncated or non-hex escapes. *)
val decode : string -> (string, string) result

(** Parse one request line. [Error] messages name the offending key. *)
val parse_request : string -> (Service.request, string) result

(** Render a request as one parseable line ({!parse_request} round-trips
    it) — the bench and tests build their replay traffic with this. *)
val request_to_string : Service.request -> string

(** The stable reason slug of an error response (also used by the obs
    counters' consumers). *)
val reason_slug : Service.error_reason -> string

val outcome_json : Service.outcome -> Repro_util.Bench_json.t

(** The outcome alone, as a compact one-line JSON string — what the
    byte-identical cache-hit test compares. *)
val outcome_to_string : Service.outcome -> string

val response_json : Service.response -> Repro_util.Bench_json.t

(** One line, no trailing newline. *)
val response_to_string : Service.response -> string
