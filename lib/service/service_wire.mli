(** Wire format for the request service, as spoken by
    [sne_cli serve --stdio]: newline-delimited requests in, one-line JSON
    responses out. Documented in DESIGN.md §9.

    {2 Request lines}

    One request per line, whitespace-separated [key=value] tokens:

    {v
    id=7 kind=sne method=cut backend=sparse deadline_ms=250 inst=nodes%203%0A...
    id=8 kind=snd budget=1.5 priority=2 inst=...
    id=9 kind=open backend=sparse inst=...
    id=10 kind=mutate session=s1 delta=edge_weight%200%203.5
    id=11 kind=resolve session=s1
    id=12 kind=close session=s1
    v}

    Keys: [id] (required), [kind] ([sne]|[enforce]|[snd]|[check]|
    [open]|[mutate]|[resolve]|[close], required), [inst] (required for
    the stateless kinds and [open]; the {!Repro_core.Serial} instance
    text, percent-encoded), [method] ([lp3] default | [cut]), [backend]
    ([dense] default | [sparse]), [max_rounds] (default 500), [budget]
    (required for [kind=snd]), [session] (required for
    [mutate]/[resolve]/[close]; the handle returned by [open]'s
    [opened] outcome), [delta] (required for [mutate]; a percent-encoded
    {!Repro_core.Serial.Make.Delta} trace, one delta per line, applied
    all-or-nothing), [deadline_ms], [priority] (default 0), [stream]
    ([0] default | [1]; opt into progress events). Unknown keys,
    duplicate keys and malformed values are parse errors — the serve loop
    answers them with a structured [parse_error] response rather than
    dying.

    Values are percent-encoded: every byte outside
    [A-Za-z0-9._~/:-] is written as [%XX] (uppercase hex), so instance
    texts with spaces and newlines fit in one token.

    {2 Response lines}

    One JSON object per response, single line:

    {v
    {"id":"7","status":"ok","cache_hit":false,"elapsed_ms":3.1,
     "outcome":{"type":"subsidy","cost":0.5,...}}
    {"id":"9","status":"error","reason":"deadline_expired",
     "cache_hit":false,"elapsed_ms":250.8}
    v}

    [status] is ["ok"] iff the request produced an outcome; otherwise
    [reason] holds a stable slug ([parse_error], [deadline_expired],
    [cancelled], [overloaded], [nonconverged], [no_design],
    [solver_error], [shutdown], [unknown_session], [invalid_delta]) and
    [detail] the human message when there is one (for [unknown_session]
    it echoes the offending handle).

    Session outcomes: [open] answers
    [{"type":"opened","session":"s1","digest":"..."}] ([digest] is the
    canonical instance digest, stable across the delta path); [mutate]
    answers [{"type":"mutated",...,"applied":N}]; [resolve] answers
    [{"type":"resolved",...}] with the subsidy plan plus warm-start
    telemetry ([pivots], [rounds], [reused_cuts], [fresh_cuts], [warm]);
    [close] answers [{"type":"closed","session":"s1"}].

    {2 Progress events}

    A request with [stream=1] additionally receives zero or more one-line
    JSON progress events {e before} its response — SND incumbents as the
    search improves, cutting-plane rounds as they close:

    {v
    {"id":"7","event":"incumbent","weight":4.0,"subsidy_cost":0.5,"tree_edges":[0,2]}
    {"id":"7","event":"round","round":0,"cuts":3}
    v}

    Events carry [event] where responses carry [status], so clients
    demultiplex on key presence. Events of concurrently-executing
    requests may interleave; responses keep the usual ordering contract.

    {2 Binary wire}

    [sne_cli serve --stdio --wire=binary] speaks the same protocol in
    length-prefixed frames (see {!Binary}): request frames carry the
    compact binary request encoding; response and progress frames carry
    the same one-line JSON as the text wire. *)

(** Percent-encode every byte outside the unreserved set
    [A-Za-z0-9._~/:-]. *)
val encode : string -> string

(** Inverse of {!encode}; [Error] on truncated or non-hex escapes. *)
val decode : string -> (string, string) result

(** Parse one request line. [Error] messages name the offending key. *)
val parse_request : string -> (Service.request, string) result

(** Render a request as one parseable line ({!parse_request} round-trips
    it) — the bench and tests build their replay traffic with this. *)
val request_to_string : Service.request -> string

(** The stable reason slug of an error response (also used by the obs
    counters' consumers). *)
val reason_slug : Service.error_reason -> string

val outcome_json : Service.outcome -> Repro_util.Bench_json.t

(** The outcome alone, as a compact one-line JSON string — what the
    byte-identical cache-hit test compares. *)
val outcome_to_string : Service.outcome -> string

val response_json : Service.response -> Repro_util.Bench_json.t

(** One line, no trailing newline. *)
val response_to_string : Service.response -> string

val progress_json : id:string -> Service.progress -> Repro_util.Bench_json.t

(** One progress-event line for request [id]; no trailing newline. *)
val progress_to_string : id:string -> Service.progress -> string

(** The length-prefixed binary wire: 4-byte big-endian payload length,
    then the payload, capped at {!Binary.max_frame}. Request frames carry
    {!Binary.encode_request}'s compact encoding (layout documented in
    DESIGN.md §12); response and progress frames carry the one-line JSON
    of {!response_to_string} / {!progress_to_string}. *)
module Binary : sig
  (** 16 MiB — bounds the allocation a corrupt or hostile length prefix
      can demand. *)
  val max_frame : int

  (** Write one frame (length prefix + payload). Raises
      [Invalid_argument] past {!max_frame}; the caller flushes. *)
  val write_frame : out_channel -> string -> unit

  (** Read one frame. [Ok None] on a clean end-of-stream (EOF exactly at
      a frame boundary); [Error] on a truncated length prefix, a length
      above {!max_frame}, or a payload cut short — corrupt streams are
      structured errors, never exceptions. *)
  val read_frame : in_channel -> (string option, string) result

  (** Compact binary request encoding, version 1.
      {!decode_request} round-trips it. *)
  val encode_request : Service.request -> string

  (** [Error] on truncated fields, unknown version/tag/flag bits, bad
      enum bytes, nonpositive deadlines, or trailing bytes (a frame is
      exactly one request). *)
  val decode_request : string -> (Service.request, string) result
end
