(* Tests for the observability subsystem (Repro_obs.Obs): registry
   semantics (disabled no-ops, reset, name dedup), span aggregation into a
   tree, domain-safety of counter updates, and the load-bearing guarantee
   that turning instrumentation on never changes what any solver returns. *)

module Obs = Repro_obs.Obs
module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Search = Repro_core.Snd_search.Float
module Instances = Repro_core.Instances
module Parallel = Repro_parallel.Parallel

(* Every test starts from a clean, disabled registry; [with_enabled]
   restores the previous flag even when the body raises. *)
let fresh () =
  Obs.set_enabled false;
  Obs.reset ()

let unit_tests =
  [
    Alcotest.test_case "disabled instrumentation is inert" `Quick (fun () ->
        fresh ();
        let c = Obs.counter "obs.test.inert" in
        let g = Obs.gauge "obs.test.inert_g" in
        Obs.incr c;
        Obs.add c 41;
        Obs.set g 7.0;
        Obs.accumulate g 1.0;
        let v = Obs.span "obs.test.span" (fun () -> 42) in
        Alcotest.(check int) "span passes the value through" 42 v;
        Alcotest.(check int) "counter untouched" 0 (Obs.value c);
        Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.gauge_value g);
        Alcotest.(check bool) "no spans recorded" true (Obs.span_tree () = []));
    Alcotest.test_case "counters, gauges, reset and name dedup" `Quick (fun () ->
        fresh ();
        Obs.with_enabled true (fun () ->
            let c = Obs.counter "obs.test.c" in
            Obs.incr c;
            Obs.add c 41;
            Alcotest.(check int) "counter value" 42 (Obs.value c);
            (* The registry hands back the same cell for the same name. *)
            Obs.incr (Obs.counter "obs.test.c");
            Alcotest.(check int) "deduped by name" 43 (Obs.value c);
            let g = Obs.gauge "obs.test.g" in
            Obs.set g 2.0;
            Obs.accumulate g 0.5;
            Alcotest.(check (float 1e-12)) "gauge value" 2.5 (Obs.gauge_value g);
            Alcotest.(check bool) "snapshot lists the counter" true
              (List.mem_assoc "obs.test.c" (Obs.counters ()));
            Obs.reset ();
            Alcotest.(check int) "reset zeroes counters" 0 (Obs.value c);
            Alcotest.(check (float 0.0)) "reset zeroes gauges" 0.0 (Obs.gauge_value g)));
    Alcotest.test_case "span tree nests and aggregates" `Quick (fun () ->
        fresh ();
        Obs.with_enabled true (fun () ->
            Obs.span "outer" (fun () ->
                Obs.span "inner" (fun () -> ());
                Obs.span "inner" (fun () -> ()));
            Obs.span "outer" (fun () -> ());
            match Obs.span_tree () with
            | [ { Obs.name = "outer"; count = 2; total_s; children = [ inner ] } ] ->
                Alcotest.(check string) "child name" "inner" inner.Obs.name;
                Alcotest.(check int) "child count" 2 inner.Obs.count;
                Alcotest.(check bool) "parent time covers child" true
                  (total_s >= inner.Obs.total_s)
            | t -> Alcotest.failf "unexpected span tree (%d roots)" (List.length t)));
    Alcotest.test_case "spans survive exceptions" `Quick (fun () ->
        fresh ();
        Obs.with_enabled true (fun () ->
            (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
            match Obs.span_tree () with
            | [ { Obs.name = "boom"; count = 1; _ } ] -> ()
            | _ -> Alcotest.fail "raising span not recorded");
        Alcotest.(check bool) "flag restored" false (Obs.enabled ()));
    Alcotest.test_case "counters are domain-safe" `Quick (fun () ->
        fresh ();
        Obs.with_enabled true (fun () ->
            let c = Obs.counter "obs.test.par" in
            let g = Obs.gauge "obs.test.par_g" in
            ignore
              (Parallel.map ~domains:4
                 (fun _ ->
                   Obs.incr c;
                   Obs.accumulate g 1.0)
                 (Array.init 1000 (fun i -> i)));
            Alcotest.(check int) "no lost increments" 1000 (Obs.value c);
            Alcotest.(check (float 1e-9)) "no lost accumulations" 1000.0
              (Obs.gauge_value g)));
    Alcotest.test_case "emission includes registered names" `Quick (fun () ->
        fresh ();
        Obs.with_enabled true (fun () ->
            Obs.incr (Obs.counter "obs.test.emit");
            Obs.span "obs.test.espan" (fun () -> ()));
        let contains hay needle =
          let n = String.length needle in
          let rec go i =
            i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
          in
          go 0
        in
        let rendered = Obs.render_stats () in
        Alcotest.(check bool) "table has the counter" true
          (contains rendered "obs.test.emit");
        Alcotest.(check bool) "table has the span" true
          (contains rendered "obs.test.espan");
        let json = Repro_util.Bench_json.to_string (Obs.stats_json ()) in
        Alcotest.(check bool) "json has the counter" true (contains json "obs.test.emit");
        Alcotest.(check bool) "json has the span" true (contains json "obs.test.espan"));
    Alcotest.test_case "registry mirrors the engine's own stats" `Quick (fun () ->
        fresh ();
        let inst = Instances.random ~dist:(Instances.Integer 9) ~n:6 ~extra:3 ~seed:11 () in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        let budget =
          0.5 *. (Sne.broadcast spec ~root (Instances.mst_tree inst)).Sne.cost
        in
        let _, stats =
          Obs.with_enabled true (fun () -> Search.exact_small ~graph ~root ~budget ())
        in
        let v name = Obs.value (Obs.counter name) in
        Alcotest.(check int) "trees_seen" stats.Search.trees_seen (v "snd.trees_seen");
        Alcotest.(check int) "trees_priced" stats.Search.trees_priced (v "snd.trees_priced");
        Alcotest.(check int) "lb_pruned" stats.Search.lb_pruned (v "snd.lb_pruned");
        Alcotest.(check int) "incumbent_skips" stats.Search.incumbent_skips
          (v "snd.incumbent_skips");
        Alcotest.(check int) "cache_hits" stats.Search.cache_hits (v "snd.cache_hits");
        Alcotest.(check int) "nodes_expanded" stats.Search.nodes_expanded
          (v "snd.nodes_expanded");
        (* The stream partition the engine already guarantees must also hold
           in the registry's view. *)
        Alcotest.(check int) "stream partition" (v "snd.trees_seen")
          (v "snd.lb_pruned" + v "snd.incumbent_skips" + v "snd.trees_priced"
          + v "snd.cache_hits");
        (* Batch occupancy accounting: every priced-or-skipped candidate
           went through some batch. *)
        Alcotest.(check bool) "batches ran" true (v "snd.batches" > 0);
        Alcotest.(check bool) "batch items cover candidates" true
          (v "snd.batch_items" >= v "snd.trees_priced" + v "snd.cache_hits"))
    ;
  ]

(* The tentpole guarantee: observability is pure reporting. For ~50 random
   instances, running the cutting-plane SNE solver and the SND search with
   the registry enabled must return byte-identical results to the disabled
   runs (the records are floats/ints/lists only, so structural equality is
   byte-level identity), and the counters it leaves behind must be sane. *)
let prop name count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let property_tests =
  [
    prop "enabling obs never changes solver results" 50 QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        fresh ();
        let inst =
          Instances.random ~dist:(Instances.Integer 9)
            ~n:(5 + (seed mod 3))
            ~extra:(2 + (seed mod 3))
            ~seed ()
        in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let state = Gm.Broadcast.state_of_tree spec ~root tree in
        let cut_off = Obs.with_enabled false (fun () -> Sne.cutting_plane spec ~state) in
        let cut_on = Obs.with_enabled true (fun () -> Sne.cutting_plane spec ~state) in
        let budget = 0.5 *. (Sne.broadcast spec ~root tree).Sne.cost in
        let search_off =
          Obs.with_enabled false (fun () -> Search.exact_small ~graph ~root ~budget ())
        in
        Obs.reset ();
        let search_on =
          Obs.with_enabled true (fun () -> Search.exact_small ~graph ~root ~budget ())
        in
        let _, s_on = search_on in
        let v name = Obs.value (Obs.counter name) in
        cut_off = cut_on && search_off = search_on
        && v "snd.trees_seen" = s_on.Search.trees_seen
        && v "snd.trees_priced" = s_on.Search.trees_priced
        && v "sne.broadcast_solves" = s_on.Search.trees_priced
        && Obs.value (Obs.counter "sne.cut_rounds") >= 0);
  ]

let suite = unit_tests @ property_tests
