(* Differential tests for the sparse revised-simplex kernel
   (Repro_lp.Revised_sparse).

   Three layers of cross-validation:
   - raw random LPs against the exact-rational functor simplex and the
     dense unboxed kernel (status and objective agreement, warm and cold);
   - LP (3) broadcast solves and full cutting-plane runs on 200+ random
     SNE instances against the dense backend and (on integer data) the
     exact-rational backend, including zero-weight and duplicated
     (degenerate) edges;
   - the warm-start contract: appending cuts to a live sparse state
     matches a cold re-solve of the accumulated system.

   The sparse and dense kernels may pick different optimal vertices
   (alternate optima), so agreement is on outcome status, objective value
   and certification (the subsidy enforces the equilibrium) — never on
   the subsidy vector itself. *)

module SP = Repro_lp.Revised_sparse
module UF = Repro_lp.Simplex_float
module FS = Repro_lp.Simplex.Float_simplex
module RS = Repro_lp.Simplex.Rat_simplex
module Q = Repro_field.Rational
module Prng = Repro_util.Prng
module Fx = Repro_util.Floatx

let fl = Alcotest.float 1e-7

(* Structural translations between the (nominally distinct) backend
   types. *)
let sp_of_fs (p : FS.problem) : SP.problem =
  SP.make_problem ~n_vars:p.FS.n_vars ~minimize:p.FS.minimize
    ~constraints:
      (List.map
         (fun (c : FS.constr) ->
           {
             SP.coeffs = c.FS.coeffs;
             relation =
               (match c.FS.relation with FS.Leq -> SP.Leq | FS.Geq -> SP.Geq | FS.Eq -> SP.Eq);
             rhs = c.FS.rhs;
             label = c.FS.label;
           })
         p.FS.constraints)
    ~lower:p.FS.lower ~upper:p.FS.upper ~var_name:p.FS.var_name ()

let sp_of_uf_constr (c : UF.constr) =
  {
    SP.coeffs = c.UF.coeffs;
    relation = (match c.UF.relation with UF.Leq -> SP.Leq | UF.Geq -> SP.Geq | UF.Eq -> SP.Eq);
    rhs = c.UF.rhs;
    label = c.UF.label;
  }

let sp_leq coeffs rhs = { SP.coeffs; relation = SP.Leq; rhs; label = "cut" }
let sp_geq coeffs rhs = { SP.coeffs; relation = SP.Geq; rhs; label = "cut" }

let expect_optimal = function
  | SP.Optimal s -> s
  | SP.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | SP.Unbounded -> Alcotest.fail "unexpected: unbounded"

let prop ?(count = 100) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

(* Run [f] under a specific basis engine / pricing rule, restoring the
   process-wide default afterwards (tests in this suite run sequentially). *)
let with_engine kind f =
  let old = SP.basis_kind () in
  SP.set_basis_kind kind;
  Fun.protect ~finally:(fun () -> SP.set_basis_kind old) f

let with_pricing pr f =
  let old = SP.pricing () in
  SP.set_pricing pr;
  Fun.protect ~finally:(fun () -> SP.set_pricing old) f

let outcomes_agree a b =
  match (a, b) with
  | SP.Optimal x, SP.Optimal y -> Fx.approx_eq ~eps:1e-6 x.SP.objective y.SP.objective
  | SP.Infeasible, SP.Infeasible | SP.Unbounded, SP.Unbounded -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    Alcotest.test_case "sparse: textbook LP and warm-start cuts" `Quick (fun () ->
        (* Same script as the dense kernel's test: min -x - 2y over
           x + y <= 4, x <= 2, y <= 3 -> (1,3); tighten y <= 2 warm;
           then x + y >= 5 is infeasible and infeasibility absorbs. *)
        let lower, upper = SP.nonneg 2 in
        let p =
          SP.make_problem ~n_vars:2
            ~minimize:[ (0, -1.0); (1, -2.0) ]
            ~constraints:
              [
                sp_leq [ (0, 1.0); (1, 1.0) ] 4.0;
                sp_leq [ (0, 1.0) ] 2.0;
                sp_leq [ (1, 1.0) ] 3.0;
              ]
            ~lower ~upper ()
        in
        let st, o = SP.solve_incremental p in
        let s = expect_optimal o in
        Alcotest.check fl "cold objective" (-7.0) s.SP.objective;
        Alcotest.check fl "x" 1.0 s.SP.values.(0);
        Alcotest.check fl "y" 3.0 s.SP.values.(1);
        let s2 = expect_optimal (SP.add_constraint st (sp_leq [ (1, 1.0) ] 2.0)) in
        Alcotest.check fl "after Leq cut" (-6.0) s2.SP.objective;
        let o3 = SP.add_constraint st (sp_geq [ (0, 1.0); (1, 1.0) ] 5.0) in
        Alcotest.(check bool) "infeasible cut detected" true (o3 = SP.Infeasible);
        let o4 = SP.add_constraint st (sp_leq [ (0, 1.0) ] 100.0) in
        Alcotest.(check bool) "stays infeasible" true (o4 = SP.Infeasible));
    Alcotest.test_case "sparse: box-only master solves with zero rows" `Quick (fun () ->
        (* The cutting-plane master starts with no rows at all: the
           all-slack "basis" is empty and the optimum is the lower box
           corner. This is the shape the kernel is built for. *)
        let n = 7 in
        let lower = Array.make n (Some 0.0) in
        let upper = Array.init n (fun i -> Some (float_of_int (i + 1))) in
        let p =
          SP.make_problem ~n_vars:n
            ~minimize:(List.init n (fun i -> (i, 1.0)))
            ~constraints:[] ~lower ~upper ()
        in
        let s = expect_optimal (SP.solve p) in
        Alcotest.check fl "objective" 0.0 s.SP.objective);
    Alcotest.test_case "sparse: unbounded and infeasible detection" `Quick (fun () ->
        let free = Array.make 1 None in
        let p =
          SP.make_problem ~n_vars:1 ~minimize:[ (0, -1.0) ]
            ~constraints:[ sp_geq [ (0, 1.0) ] 0.0 ]
            ~lower:free ~upper:free ()
        in
        Alcotest.(check bool) "unbounded" true (SP.solve p = SP.Unbounded);
        let lower, upper = SP.nonneg 1 in
        let p2 =
          SP.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ]
            ~constraints:[ sp_geq [ (0, 1.0) ] 5.0; sp_leq [ (0, 1.0) ] 3.0 ]
            ~lower ~upper ()
        in
        Alcotest.(check bool) "infeasible" true (SP.solve p2 = SP.Infeasible));
    Alcotest.test_case "sparse: empty range rejected with the shared message" `Quick
      (fun () ->
        let p =
          SP.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ] ~constraints:[]
            ~lower:[| Some 3.0 |] ~upper:[| Some 2.0 |] ()
        in
        Alcotest.check_raises "empty"
          (Invalid_argument "Simplex: empty variable range (upper < lower)") (fun () ->
            ignore (SP.solve p)));
    Alcotest.test_case "sparse: Beale degenerate LP terminates" `Quick (fun () ->
        let lower, upper = SP.nonneg 4 in
        let p =
          SP.make_problem ~n_vars:4
            ~minimize:[ (0, -0.75); (1, 150.0); (2, -0.02); (3, 6.0) ]
            ~constraints:
              [
                sp_leq [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ] 0.0;
                sp_leq [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ] 0.0;
                sp_leq [ (2, 1.0) ] 1.0;
              ]
            ~lower ~upper ()
        in
        Alcotest.check fl "objective" (-0.05) (expect_optimal (SP.solve p)).SP.objective);
    Alcotest.test_case "sparse: rejects non-finite input up front" `Quick (fun () ->
        let expect_invalid what f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.failf "%s: non-finite value accepted" what
        in
        let free n = Array.make n None in
        expect_invalid "objective NaN" (fun () ->
            SP.make_problem ~n_vars:2 ~minimize:[ (0, Float.nan) ] ~constraints:[]
              ~lower:(free 2) ~upper:(free 2) ());
        expect_invalid "rhs inf" (fun () ->
            SP.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ]
              ~constraints:[ sp_leq [ (0, 1.0) ] Float.infinity ]
              ~lower:(free 1) ~upper:(free 1) ());
        let lower, upper = SP.nonneg 1 in
        let p =
          SP.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ] ~constraints:[] ~lower ~upper ()
        in
        let st, _ = SP.solve_incremental p in
        expect_invalid "warm cut NaN" (fun () ->
            SP.add_constraint st (sp_geq [ (0, Float.nan) ] 0.0)));
    Alcotest.test_case "sparse: eta refactorization fires on long cut streams" `Quick
      (fun () ->
        with_engine SP.Eta @@ fun () ->
        (* Append enough cuts that the eta file must be rebuilt at least
           once; the answers stay exact throughout. min sum x_i, box
           [0,10]^n, cuts x_i + x_j >= k force the objective up. *)
        let n = 12 in
        let lower = Array.make n (Some 0.0) and upper = Array.make n (Some 10.0) in
        let p =
          SP.make_problem ~n_vars:n
            ~minimize:(List.init n (fun i -> (i, 1.0)))
            ~constraints:[] ~lower ~upper ()
        in
        let st, _ = SP.solve_incremental p in
        let last = ref SP.Infeasible in
        for k = 1 to 80 do
          let i = k mod n and j = (k * 7) mod n in
          let coeffs = if i = j then [ (i, 1.0) ] else [ (i, 1.0); (j, 1.0) ] in
          last := SP.add_constraint st (sp_geq coeffs (float_of_int (1 + (k mod 5))))
        done;
        let s = expect_optimal !last in
        (* Cross-check the accumulated system cold on the dense kernel. *)
        let cuts = ref [] in
        for k = 80 downto 1 do
          let i = k mod n and j = (k * 7) mod n in
          let coeffs = if i = j then [ (i, 1.0) ] else [ (i, 1.0); (j, 1.0) ] in
          cuts :=
            {
              UF.coeffs;
              relation = UF.Geq;
              rhs = float_of_int (1 + (k mod 5));
              label = "cut";
            }
            :: !cuts
        done;
        let dp =
          UF.make_problem ~n_vars:n
            ~minimize:(List.init n (fun i -> (i, 1.0)))
            ~constraints:!cuts
            ~lower:(Array.make n (Some 0.0))
            ~upper:(Array.make n (Some 10.0))
            ()
        in
        (match UF.solve dp with
        | UF.Optimal ds -> Alcotest.check fl "objective" ds.UF.objective s.SP.objective
        | _ -> Alcotest.fail "dense cold solve failed");
        Alcotest.(check bool) "refactorized at least once" true (SP.refactors st >= 1));
    Alcotest.test_case "sparse: LU refactorization fires on a forced-pivot ratchet" `Quick
      (fun () ->
        (* Forrest–Tomlin updates accrue one per basis pivot, so force a
           long stream of genuinely violated cuts: min sum x_i over the
           box [0,10]^n with ratcheting ring cuts x_i + x_{i+1} >= 2r for
           r = 1..10 — every cut of a new level cuts off the previous
           optimum, so each append costs real dual pivots. The update
           file must overflow its cap and trigger at least one
           refactorization, with the answers exact throughout. *)
        Alcotest.(check bool) "LU is the default engine" true (SP.basis_kind () = SP.Lu);
        let n = 12 in
        let lower = Array.make n (Some 0.0) and upper = Array.make n (Some 10.0) in
        let p =
          SP.make_problem ~n_vars:n
            ~minimize:(List.init n (fun i -> (i, 1.0)))
            ~constraints:[] ~lower ~upper ()
        in
        let st, _ = SP.solve_incremental p in
        let last = ref SP.Infeasible in
        for r = 1 to 10 do
          for i = 0 to n - 1 do
            let j = (i + 1) mod n in
            last :=
              SP.add_constraint st
                (sp_geq [ (i, 1.0); (j, 1.0) ] (2.0 *. float_of_int r))
          done
        done;
        let s = expect_optimal !last in
        (* The ring cuts at level 10 sum to 2 * sum x_i >= 20n. *)
        Alcotest.check fl "objective" (float_of_int (10 * n)) s.SP.objective;
        Alcotest.(check bool) "refactorized at least once" true (SP.refactors st >= 1));
    Alcotest.test_case "sparse: patch re-binds rhs/objective/bounds in place" `Quick
      (fun () ->
        let lower, upper = SP.nonneg 2 in
        let p =
          SP.make_problem ~n_vars:2
            ~minimize:[ (0, -1.0); (1, -2.0) ]
            ~constraints:
              [
                sp_leq [ (0, 1.0); (1, 1.0) ] 4.0;
                sp_leq [ (0, 1.0) ] 2.0;
                sp_leq [ (1, 1.0) ] 3.0;
              ]
            ~lower ~upper ()
        in
        let st, o = SP.solve_incremental p in
        Alcotest.check fl "before patch" (-7.0) (expect_optimal o).SP.objective;
        (* Same matrix, new objective and right-hand sides. *)
        let p' =
          SP.make_problem ~n_vars:2
            ~minimize:[ (0, -2.0); (1, -1.0) ]
            ~constraints:
              [
                sp_leq [ (0, 1.0); (1, 1.0) ] 6.0;
                sp_leq [ (0, 1.0) ] 3.0;
                sp_leq [ (1, 1.0) ] 3.0;
              ]
            ~lower ~upper ()
        in
        (match SP.patch st p' with
        | None -> Alcotest.fail "patch rejected a structurally identical problem"
        | Some o' ->
            Alcotest.check fl "patched objective" (-9.0) (expect_optimal o').SP.objective;
            let cold = SP.solve p' in
            Alcotest.check fl "matches cold re-solve"
              (expect_optimal cold).SP.objective (expect_optimal o').SP.objective);
        (* A changed coefficient is a structural mismatch: None, state
           untouched and still usable. *)
        let bad =
          SP.make_problem ~n_vars:2
            ~minimize:[ (0, -2.0); (1, -1.0) ]
            ~constraints:
              [
                sp_leq [ (0, 1.0); (1, 2.0) ] 6.0;
                sp_leq [ (0, 1.0) ] 3.0;
                sp_leq [ (1, 1.0) ] 3.0;
              ]
            ~lower ~upper ()
        in
        Alcotest.(check bool) "coefficient change rejected" true (SP.patch st bad = None);
        (* So is a changed row count. *)
        let short =
          SP.make_problem ~n_vars:2
            ~minimize:[ (0, -2.0); (1, -1.0) ]
            ~constraints:[ sp_leq [ (0, 1.0); (1, 1.0) ] 6.0 ]
            ~lower ~upper ()
        in
        Alcotest.(check bool) "row-count change rejected" true (SP.patch st short = None);
        (* After a warm-appended cut, a patch problem listing base rows plus
           the cut (the session's pool shape) is accepted and re-bound. *)
        ignore (SP.add_constraint st (sp_leq [ (1, 1.0) ] 2.0));
        let p'' =
          SP.make_problem ~n_vars:2
            ~minimize:[ (0, -1.0); (1, -2.0) ]
            ~constraints:
              [
                sp_leq [ (0, 1.0); (1, 1.0) ] 4.0;
                sp_leq [ (0, 1.0) ] 2.0;
                sp_leq [ (1, 1.0) ] 3.0;
                sp_leq [ (1, 1.0) ] 1.0;
              ]
            ~lower ~upper ()
        in
        match SP.patch st p'' with
        | None -> Alcotest.fail "patch rejected base rows + appended cut"
        | Some o'' ->
            (* min -x - 2y over x <= 2, y <= 1, x + y <= 4. *)
            Alcotest.check fl "patched after cut" (-4.0) (expect_optimal o'').SP.objective);
    Alcotest.test_case "sparse: basis_hint round-trips through solve_dual_incremental"
      `Quick (fun () ->
        let lower, upper = SP.nonneg 3 in
        let p =
          SP.make_problem ~n_vars:3
            ~minimize:[ (0, 1.0); (1, 2.0); (2, 3.0) ]
            ~constraints:
              [ sp_geq [ (0, 1.0); (1, 1.0) ] 2.0; sp_geq [ (1, 1.0); (2, 1.0) ] 2.0 ]
            ~lower ~upper ()
        in
        let st, o = SP.solve_incremental p in
        let s = expect_optimal o in
        let hint = SP.basis_hint st in
        let st2, o2 = SP.solve_dual_incremental ~hint p in
        let s2 = expect_optimal o2 in
        Alcotest.check fl "same objective" s.SP.objective s2.SP.objective;
        Alcotest.(check bool) "hinted solve spends no more pivots" true
          (SP.pivots st2 <= SP.pivots st));
  ]

(* ------------------------------------------------------------------ *)
(* Raw random-LP differential (reusing test_lp's generator)            *)
(* ------------------------------------------------------------------ *)

let raw_lp_tests =
  [
    prop "sparse kernel agrees with exact rationals" ~count:200 (fun seed ->
        let fp, rp = Test_lp.random_lp_pair seed in
        match (SP.solve (sp_of_fs fp), RS.solve rp) with
        | SP.Optimal ss, RS.Optimal rs ->
            Fx.approx_eq ~eps:1e-6 ss.SP.objective (Q.to_float rs.objective)
        | SP.Infeasible, RS.Infeasible -> true
        | SP.Unbounded, RS.Unbounded -> true
        | _ -> false);
    prop "sparse warm cuts match dense warm cuts and sparse cold" ~count:150 (fun seed ->
        let fp, _ = Test_lp.random_lp_pair seed in
        let dense = Test_lp.uf_of_fs fp in
        let sparse = sp_of_fs fp in
        let rng = Prng.create (seed + 977) in
        let cuts =
          Test_lp.random_extra_cuts rng ~n_vars:fp.FS.n_vars
            ~count:(Prng.int_in_range rng ~lo:1 ~hi:4)
        in
        let dst, do0 = UF.solve_incremental dense in
        let dwarm = List.fold_left (fun _ c -> UF.add_constraint dst c) do0 cuts in
        let sst, so0 = SP.solve_incremental sparse in
        let swarm =
          List.fold_left (fun _ c -> SP.add_constraint sst (sp_of_uf_constr c)) so0 cuts
        in
        let scold =
          SP.solve
            {
              sparse with
              SP.constraints = sparse.SP.constraints @ List.map sp_of_uf_constr cuts;
            }
        in
        let agree a b =
          match (a, b) with
          | SP.Optimal x, SP.Optimal y -> Fx.approx_eq ~eps:1e-6 x.SP.objective y.SP.objective
          | SP.Infeasible, SP.Infeasible | SP.Unbounded, SP.Unbounded -> true
          | _ -> false
        in
        let agree_dense a b =
          match (a, b) with
          | SP.Optimal x, UF.Optimal y -> Fx.approx_eq ~eps:1e-6 x.SP.objective y.UF.objective
          | SP.Infeasible, UF.Infeasible | SP.Unbounded, UF.Unbounded -> true
          | _ -> false
        in
        agree swarm scold && agree_dense swarm dwarm);
    prop "sparse warm cuts match exact rationals" ~count:120 (fun seed ->
        (* The post-add_constraint half of the rational differential: the
           generator only emits integer data, so the accumulated system
           re-solves exactly over Q. *)
        let fp, rp = Test_lp.random_lp_pair seed in
        let rng = Prng.create (seed + 9001) in
        let cuts =
          Test_lp.random_extra_cuts rng ~n_vars:fp.FS.n_vars
            ~count:(Prng.int_in_range rng ~lo:1 ~hi:4)
        in
        let st, o0 = SP.solve_incremental (sp_of_fs fp) in
        let warm =
          List.fold_left (fun _ c -> SP.add_constraint st (sp_of_uf_constr c)) o0 cuts
        in
        let rcuts =
          List.map
            (fun (c : UF.constr) ->
              {
                RS.coeffs =
                  List.map (fun (i, a) -> (i, Q.of_int (int_of_float a))) c.UF.coeffs;
                relation =
                  (match c.UF.relation with
                  | UF.Leq -> RS.Leq
                  | UF.Geq -> RS.Geq
                  | UF.Eq -> RS.Eq);
                rhs = Q.of_int (int_of_float c.UF.rhs);
                label = c.UF.label;
              })
            cuts
        in
        let rcold = RS.solve { rp with RS.constraints = rp.RS.constraints @ rcuts } in
        match (warm, rcold) with
        | SP.Optimal s, RS.Optimal r ->
            Fx.approx_eq ~eps:1e-6 s.SP.objective (Q.to_float r.objective)
        | SP.Infeasible, RS.Infeasible | SP.Unbounded, RS.Unbounded -> true
        | _ -> false);
    prop "legacy eta engine matches exact rationals" ~count:100 (fun seed ->
        with_engine SP.Eta (fun () ->
            let fp, rp = Test_lp.random_lp_pair seed in
            match (SP.solve (sp_of_fs fp), RS.solve rp) with
            | SP.Optimal ss, RS.Optimal rs ->
                Fx.approx_eq ~eps:1e-6 ss.SP.objective (Q.to_float rs.objective)
            | SP.Infeasible, RS.Infeasible -> true
            | SP.Unbounded, RS.Unbounded -> true
            | _ -> false));
    prop "partial pricing matches Devex on warm cut streams" ~count:100 (fun seed ->
        let fp, _ = Test_lp.random_lp_pair seed in
        let sparse = sp_of_fs fp in
        let cuts =
          let rng = Prng.create (seed + 555) in
          Test_lp.random_extra_cuts rng ~n_vars:fp.FS.n_vars
            ~count:(Prng.int_in_range rng ~lo:1 ~hi:4)
        in
        let run () =
          let st, o0 = SP.solve_incremental sparse in
          List.fold_left (fun _ c -> SP.add_constraint st (sp_of_uf_constr c)) o0 cuts
        in
        let dvx = run () in
        let prt = with_pricing Repro_lp.Lp_intf.Partial run in
        outcomes_agree dvx prt);
    prop "patch matches a cold re-solve of the re-bound problem" ~count:100 (fun seed ->
        let fp, _ = Test_lp.random_lp_pair seed in
        let sparse = sp_of_fs fp in
        let st, _ = SP.solve_incremental sparse in
        let rng = Prng.create (seed + 4242) in
        let p' =
          {
            sparse with
            SP.minimize =
              List.map
                (fun (i, c) -> (i, c +. float_of_int (Prng.int_in_range rng ~lo:(-2) ~hi:2)))
                sparse.SP.minimize;
            constraints =
              List.map
                (fun (c : SP.constr) ->
                  { c with SP.rhs = c.SP.rhs +. float_of_int (Prng.int_in_range rng ~lo:(-3) ~hi:3) })
                sparse.SP.constraints;
            upper =
              Array.map
                (Option.map (fun u -> u +. float_of_int (Prng.int rng 4)))
                sparse.SP.upper;
          }
        in
        match SP.patch st p' with
        | None ->
            (* Only legitimate for a state that fell through to a dense
               tableau no longer in dual layout; the structure matches. *)
            true
        | Some warm -> outcomes_agree warm (SP.solve p'));
  ]

(* ------------------------------------------------------------------ *)
(* SNE instance differential: sparse vs dense vs exact rational        *)
(* ------------------------------------------------------------------ *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module W = Repro_game.Weighted.Float_weighted
module Sne = Repro_core.Sne_lp.Float
module Snes = Repro_core.Sne_lp.Float_sparse
module Sner = Repro_core.Sne_lp.Rat
module RGm = Sner.Gm
module RG = Sner.G
module Instances = Repro_core.Instances

(* Random connected multigraphs with small integer weights including
   zero-weight edges and duplicated (parallel) edges — the degenerate
   regime the satellite task calls for. Returned as triples so the same
   topology can be instantiated over floats and exact rationals. *)
let random_int_edges rng ~n ~extra =
  let spine =
    List.init (n - 1) (fun i ->
        let v = i + 1 in
        (Prng.int rng v, v, Prng.int_in_range rng ~lo:0 ~hi:4))
  in
  let extras =
    List.filter_map Fun.id
      (List.init extra (fun _ ->
           let u = Prng.int rng n and v = Prng.int rng n in
           if u = v then None else Some (u, v, Prng.int_in_range rng ~lo:0 ~hi:4)))
  in
  spine @ extras

(* Maximum spanning tree edge ids, computed on the float graph. Weights
   are small integers, so float arithmetic is exact and the id tie-break
   makes the choice identical over any field. *)
let anti_mst_ids g =
  let maxw = G.fold_edges g ~init:0.0 ~f:(fun a e -> Float.max a e.G.weight) in
  let inverted = G.with_weights g (fun e -> maxw -. e.G.weight +. 1.0) in
  match G.mst_kruskal inverted with
  | None -> Alcotest.fail "generator produced a disconnected graph"
  | Some ids -> ids

let int_instance seed =
  let rng = Prng.create seed in
  let n = Prng.int_in_range rng ~lo:5 ~hi:10 in
  let edges = random_int_edges rng ~n ~extra:(Prng.int_in_range rng ~lo:2 ~hi:6) in
  let root = Prng.int rng n in
  (n, edges, root)

let float_side (n, edges, root) =
  let g = G.create ~n (List.map (fun (u, v, w) -> (u, v, float_of_int w)) edges) in
  let spec = Gm.broadcast ~graph:g ~root in
  let tree = G.Tree.of_edge_ids g ~root (anti_mst_ids g) in
  let state = Gm.Broadcast.state_of_tree spec ~root tree in
  (g, spec, tree, state)

let sne_tests =
  [
    prop "cutting plane: sparse vs dense agree and both certify" ~count:60 (fun seed ->
        let _, spec, _, state = float_side (int_instance seed) in
        let rd, sd = Sne.cutting_plane spec ~state in
        let rs, ss = Snes.cutting_plane spec ~state in
        sd.Sne.converged && ss.Snes.converged
        && Fx.approx_eq ~eps:1e-6 rd.Sne.cost rs.Snes.cost
        && Gm.is_equilibrium ~subsidy:rs.Snes.subsidy spec state
        && Gm.is_equilibrium ~subsidy:rd.Sne.subsidy spec state);
    (* No pivot-count ordering is asserted here: a cold sparse solve starts
       dual-feasible from the all-slack basis of the (row-free) box master,
       so it can be cheaper than the cumulative dual re-optimizations the
       warm path pays per appended cut. Only the answers must agree. *)
    prop "cutting plane: sparse warm matches sparse cold" ~count:40 (fun seed ->
        let _, spec, _, state = float_side (int_instance seed) in
        let rw, sw = Snes.cutting_plane ~warm:true spec ~state in
        let rc, sc = Snes.cutting_plane ~warm:false spec ~state in
        sw.Snes.converged && sc.Snes.converged
        && Fx.approx_eq ~eps:1e-6 rw.Snes.cost rc.Snes.cost);
    prop "LP (3) broadcast: sparse vs dense" ~count:40 (fun seed ->
        let (_, _, root) as inst = int_instance seed in
        let _, spec, tree, _ = float_side inst in
        let rd = Sne.broadcast spec ~root tree in
        let rs = Snes.broadcast spec ~root tree in
        Fx.approx_eq ~eps:1e-6 rd.Sne.cost rs.Snes.cost
        && Gm.Broadcast.is_tree_equilibrium ~subsidy:rs.Snes.subsidy spec tree);
    prop "cutting plane: sparse vs exact rational on integer data" ~count:40 (fun seed ->
        let (n, edges, root) as inst = int_instance seed in
        let g, spec, _, state = float_side inst in
        let rg = RG.create ~n (List.map (fun (u, v, w) -> (u, v, Q.of_int w)) edges) in
        let rspec = RGm.broadcast ~graph:rg ~root in
        let rtree = RG.Tree.of_edge_ids rg ~root (anti_mst_ids g) in
        let rstate = RGm.Broadcast.state_of_tree rspec ~root rtree in
        let rs, ss = Snes.cutting_plane spec ~state in
        let rr, sr = Sner.cutting_plane rspec ~state:rstate in
        ss.Snes.converged && sr.Sner.converged
        && Fx.approx_eq ~eps:1e-6 rs.Snes.cost (Q.to_float rr.Sner.cost));
    prop "weighted cutting plane: sparse vs dense" ~count:40 (fun seed ->
        let rng = Prng.create (seed + 31_337) in
        let n = Prng.int_in_range rng ~lo:4 ~hi:8 in
        let graph =
          G.Gen.random_connected rng ~n ~extra_edges:(Prng.int rng 6)
            ~rand_weight:(fun rng -> float_of_int (Prng.int_in_range rng ~lo:0 ~hi:6))
        in
        let root = Prng.int rng n in
        let demand_of _ = float_of_int (Prng.int_in_range rng ~lo:1 ~hi:4) in
        let t = W.broadcast ~graph ~root ~demand_of in
        let tree = G.Tree.of_edge_ids graph ~root (Option.get (G.mst_kruskal graph)) in
        let state = W.Broadcast.state_of_tree t ~root tree in
        let rd, sd = Sne.weighted_cutting_plane t ~state in
        let rs, ss = Snes.weighted_cutting_plane t ~state in
        sd.Sne.converged && ss.Snes.converged
        && Fx.approx_eq ~eps:1e-6 rd.Sne.cost rs.Snes.cost
        && W.is_equilibrium ~subsidy:rs.Snes.subsidy t state);
    prop "parallel separation changes nothing" ~count:15 (fun seed ->
        (* Pool-fanned oracles + guided chunking must leave the cut
           sequence, cost, and stats untouched. *)
        let _, spec, _, state = float_side (int_instance seed) in
        let pool = Repro_parallel.Parallel.Pool.create ~domains:4 () in
        Fun.protect
          ~finally:(fun () -> Repro_parallel.Parallel.Pool.shutdown pool)
          (fun () ->
            let rs, ss = Snes.cutting_plane spec ~state in
            let rp, sp = Snes.cutting_plane ~pool spec ~state in
            ss.Snes.converged && sp.Snes.converged
            && Fx.approx_eq ~eps:1e-9 rs.Snes.cost rp.Snes.cost
            && ss.Snes.rounds = sp.Snes.rounds
            && ss.Snes.generated = sp.Snes.generated));
    prop "obs instrumentation changes no sparse result" ~count:10 (fun seed ->
        (* Counters and the allocs-per-pivot meter must be observers only:
           bit-identical cost and identical cut trajectory either way. *)
        let module O = Repro_obs.Obs in
        let _, spec, _, state = float_side (int_instance seed) in
        let r_on, s_on = O.with_enabled true (fun () -> Snes.cutting_plane spec ~state) in
        let r_off, s_off =
          O.with_enabled false (fun () -> Snes.cutting_plane spec ~state)
        in
        r_on.Snes.cost = r_off.Snes.cost
        && s_on.Snes.rounds = s_off.Snes.rounds
        && s_on.Snes.generated = s_off.Snes.generated
        && s_on.Snes.converged = s_off.Snes.converged);
    Alcotest.test_case "arena scratch steady across successive solves" `Quick
      (fun () ->
        (* After a warm-up solve, further solves on the same domain must
           not regrow the LU refactor arena or the per-domain Dijkstra
           scratch: zero grows-counter delta. The arena unit test pins
           physical buffer reuse; this pins the solver actually living
           inside the borrowed buffers (no per-solve reallocation). *)
        let _, spec, _, state = float_side (int_instance 4242) in
        let run () = ignore (Snes.cutting_plane spec ~state) in
        run ();
        let r0 = Repro_lp.Revised_sparse.refactor_arena_grows () in
        let d0 = G.dijkstra_scratch_grows () in
        run ();
        run ();
        Alcotest.(check int) "refactor arena grows delta" 0
          (Repro_lp.Revised_sparse.refactor_arena_grows () - r0);
        Alcotest.(check int) "dijkstra scratch grows delta" 0
          (G.dijkstra_scratch_grows () - d0));
  ]

let suite = unit_tests @ raw_lp_tests @ sne_tests
