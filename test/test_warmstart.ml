(* Warm-started vs. cold-restarted cutting-plane SNE (ISSUE 1 tentpole).

   The cutting-plane solvers re-optimize each master LP from the previous
   optimal basis (dual simplex on the appended rows) instead of re-running
   two-phase simplex from scratch. These tests pin the contract: for the
   same instance the warm and cold paths must reach the same enforcement
   cost, both converge, the warm path must not spend more pivots, and the
   returned subsidy must actually enforce the target (certified by the
   game-side equilibrium checks, not by the LP's own bookkeeping).

   Targets are anti-MSTs (maximum spanning trees): enforcing the MST is
   nearly free and converges in one round, while a maximum spanning tree is
   far from equilibrium, so the loop runs several rounds and accumulates
   dozens of cuts — the regime warm starts exist for. *)

module Gm = Repro_game.Game.Float_game
module W = Repro_game.Weighted.Float_weighted
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Instances = Repro_core.Instances
module Prng = Repro_util.Prng
module Fx = Repro_util.Floatx

(* Maximum spanning tree: Kruskal on inverted weights. *)
let anti_mst_tree inst =
  let g = inst.Instances.graph in
  let maxw = G.fold_edges g ~init:0.0 ~f:(fun a e -> Float.max a e.G.weight) in
  let inverted = G.with_weights g (fun e -> maxw -. e.G.weight +. 1.0) in
  match G.mst_kruskal inverted with
  | None -> Alcotest.fail "generator produced a disconnected graph"
  | Some ids -> G.Tree.of_edge_ids g ~root:inst.Instances.root ids

let hard_instance seed =
  let n = 10 + (3 * (seed mod 5)) in
  let inst = Instances.random ~dist:(Instances.Heavy_tailed 10.0) ~n ~extra:n ~seed () in
  let spec = Instances.spec inst in
  let tree = anti_mst_tree inst in
  let state = Gm.Broadcast.state_of_tree spec ~root:inst.Instances.root tree in
  (inst, spec, tree, state)

let prop ?(count = 25) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let unit_tests =
  [
    Alcotest.test_case "warm run certifies on a fixed hard instance" `Quick (fun () ->
        let _, spec, tree, state = hard_instance 3 in
        let r, stats = Sne.cutting_plane spec ~state in
        Alcotest.(check bool) "converged" true stats.Sne.converged;
        Alcotest.(check bool) "generated cuts (instance is non-trivial)" true
          (stats.Sne.generated > 0);
        Alcotest.(check bool) "rounds > 1 (multi-round regime)" true (stats.Sne.rounds > 1);
        Alcotest.(check bool) "enforces the state" true
          (Gm.is_equilibrium ~subsidy:r.Sne.subsidy spec state);
        Alcotest.(check bool) "enforces the tree" true
          (Gm.Broadcast.is_tree_equilibrium ~subsidy:r.Sne.subsidy spec tree));
    Alcotest.test_case "warm saves pivots across a seed family" `Quick (fun () ->
        (* The per-seed inequality is <=; strictness is asserted on the
           total so a single degenerate instance cannot flake the suite.
           This mirrors the acceptance gate in bench/lp_bench.ml. *)
        let seeds = [ 1; 2; 3; 4; 5 ] in
        let warm_total, cold_total =
          List.fold_left
            (fun (w, c) seed ->
              let _, spec, _, state = hard_instance seed in
              let rw, sw = Sne.cutting_plane ~warm:true spec ~state in
              let rc, sc = Sne.cutting_plane ~warm:false spec ~state in
              Alcotest.(check bool) "both converged" true
                (sw.Sne.converged && sc.Sne.converged);
              Alcotest.(check (float 1e-6)) "same enforcement cost" rc.Sne.cost rw.Sne.cost;
              Alcotest.(check bool) "warm pivots <= cold pivots" true
                (sw.Sne.pivots <= sc.Sne.pivots);
              (w + sw.Sne.pivots, c + sc.Sne.pivots))
            (0, 0) seeds
        in
        Alcotest.(check bool)
          (Printf.sprintf "warm strictly fewer pivots in total (%d < %d)" warm_total
             cold_total)
          true
          (warm_total < cold_total));
    Alcotest.test_case "max_rounds exhaustion is surfaced, not hidden" `Quick (fun () ->
        let _, spec, _, state = hard_instance 3 in
        let _, stats = Sne.cutting_plane ~max_rounds:1 spec ~state in
        Alcotest.(check bool) "converged = false" true (not stats.Sne.converged);
        Alcotest.(check bool) "rounds capped" true (stats.Sne.rounds <= 1));
  ]

let property_tests =
  [
    prop "warm and cold cutting plane agree and both certify" (fun seed ->
        let _, spec, _, state = hard_instance seed in
        let rw, sw = Sne.cutting_plane ~warm:true spec ~state in
        let rc, sc = Sne.cutting_plane ~warm:false spec ~state in
        sw.Sne.converged && sc.Sne.converged
        && Fx.approx_eq ~eps:1e-6 rw.Sne.cost rc.Sne.cost
        && sw.Sne.pivots <= sc.Sne.pivots
        && Gm.is_equilibrium ~subsidy:rw.Sne.subsidy spec state
        && Gm.is_equilibrium ~subsidy:rc.Sne.subsidy spec state);
    prop "subsidies stay within edge weights in both modes" ~count:15 (fun seed ->
        let inst, spec, _, state = hard_instance seed in
        let graph = inst.Instances.graph in
        let within r =
          Array.for_all2
            (fun b (e : G.edge) -> Fx.geq b 0.0 && Fx.leq b e.G.weight)
            r.Sne.subsidy
            (Array.init (G.n_edges graph) (G.edge graph))
        in
        let rw, _ = Sne.cutting_plane ~warm:true spec ~state in
        let rc, _ = Sne.cutting_plane ~warm:false spec ~state in
        within rw && within rc);
    prop "weighted cutting plane: warm matches cold" ~count:15 (fun seed ->
        let rng = Prng.create seed in
        let n = Prng.int_in_range rng ~lo:4 ~hi:8 in
        let graph =
          G.Gen.random_connected rng ~n ~extra_edges:(Prng.int rng 6)
            ~rand_weight:(fun rng -> float_of_int (Prng.int_in_range rng ~lo:1 ~hi:9))
        in
        let root = Prng.int rng n in
        let demand_of _ = float_of_int (Prng.int_in_range rng ~lo:1 ~hi:4) in
        let t = W.broadcast ~graph ~root ~demand_of in
        let tree = G.Tree.of_edge_ids graph ~root (Option.get (G.mst_kruskal graph)) in
        let state = W.Broadcast.state_of_tree t ~root tree in
        let rw, sw = Sne.weighted_cutting_plane ~warm:true t ~state in
        let rc, sc = Sne.weighted_cutting_plane ~warm:false t ~state in
        sw.Sne.converged && sc.Sne.converged
        && Fx.approx_eq ~eps:1e-6 rw.Sne.cost rc.Sne.cost
        && sw.Sne.pivots <= sc.Sne.pivots
        && W.is_equilibrium ~subsidy:rw.Sne.subsidy t state);
  ]

let suite = unit_tests @ property_tests
