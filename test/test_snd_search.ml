(* Tests for the branch-and-bound SND engine (Repro_core.Snd_search):
   differential identity against the seed exhaustive solver over hundreds
   of random graphs, the weight-ordered generator's order/completeness,
   admissibility of the enforcement lower bound, warm-started and cached
   pricer agreement, parallel-configuration determinism, and the
   all-or-nothing budget boundary cases. *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Snd = Repro_core.Snd.Float
module Search = Repro_core.Snd_search.Float
module Sne = Search.Sne (* the functorized backend the engine prices with *)
module Lb = Repro_core.Lower_bounds.Float
module SndR = Repro_core.Snd.Rat
module SearchR = Repro_core.Snd_search.Rat
module Instances = Repro_core.Instances
module Fx = Repro_util.Floatx
module Q = Repro_field.Rational

let fl = Alcotest.float 1e-9

(* Integer weights keep distinct tree weights >= 1 apart, so the float
   stack's tolerant comparisons agree with exact order and the engine's
   seed-identity argument applies bit-for-bit. *)
let random_instance ?(lo = 4) ?(hi = 7) seed =
  Instances.random ~dist:(Instances.Integer 9)
    ~n:(lo + (seed mod (hi - lo + 1)))
    ~extra:(seed / 7 mod 4) ~seed ()

let design_eq (a : Snd.design option) (b : Search.design option) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      a.Snd.tree_edges = b.Search.tree_edges
      && Fx.approx_eq a.Snd.weight b.Search.weight
      && Fx.approx_eq a.Snd.subsidy_cost b.Search.subsidy_cost
  | _ -> false

let mst_lp_cost spec ~root inst =
  (Sne.broadcast spec ~root (Instances.mst_tree inst)).Sne.cost

let quickstart_graph () =
  G.create ~n:4 [ (0, 1, 2.0); (1, 2, 2.0); (2, 3, 2.0); (0, 3, 3.5) ]

let unit_tests =
  [
    Alcotest.test_case "by_weight streams every spanning tree exactly once" `Quick
      (fun () ->
        let inst = random_instance 12345 in
        let g = inst.Instances.graph in
        let streamed = List.of_seq (G.Enumerate.by_weight g) in
        let all =
          G.Enumerate.fold_spanning_trees g ~init:[] ~f:(fun acc ids -> List.sort compare ids :: acc)
        in
        Alcotest.(check int) "count" (List.length all) (List.length streamed);
        Alcotest.(check bool) "same tree set" true
          (List.sort compare (List.map snd streamed) = List.sort compare all);
        let rec nondecreasing = function
          | (w1, _) :: ((w2, _) :: _ as rest) ->
              (w1 <= w2 +. 1e-9) && nondecreasing rest
          | _ -> true
        in
        Alcotest.(check bool) "nondecreasing weights" true (nondecreasing streamed);
        List.iter
          (fun (w, ids) -> Alcotest.check fl "weight matches ids" (G.total_weight g ids) w)
          streamed);
    Alcotest.test_case "by_weight stats count search effort" `Quick (fun () ->
        let inst = random_instance 99 in
        let g = inst.Instances.graph in
        let stats = G.Enumerate.fresh_stats () in
        let n = Seq.length (G.Enumerate.by_weight ~stats g) in
        Alcotest.(check bool) "one expansion per tree" true
          (stats.G.Enumerate.nodes_expanded = n);
        Alcotest.(check bool) "completions at least trees" true
          (stats.G.Enumerate.msts_computed >= n));
    Alcotest.test_case "engine stats account for every streamed tree" `Quick (fun () ->
        let graph = quickstart_graph () in
        let d, s = Search.exact_small ~graph ~root:0 ~budget:0.2 () in
        Alcotest.(check bool) "found a design" true (d <> None);
        Alcotest.(check bool) "stats partition the stream" true
          (s.Search.trees_priced + s.Search.lb_pruned + s.Search.incumbent_skips
          <= s.Search.trees_seen);
        Alcotest.(check bool) "search did not price the whole landscape" true
          (s.Search.trees_seen <= G.Enumerate.count_spanning_trees graph));
    Alcotest.test_case "frontier on the quickstart instance matches brute force" `Quick
      (fun () ->
        let graph = quickstart_graph () in
        let brute = Snd.pareto_frontier_brute ~graph ~root:0 in
        let engine, stats = Search.pareto_frontier ~graph ~root:0 () in
        Alcotest.(check int) "same size" (List.length brute) (List.length engine);
        List.iter2
          (fun (b : Snd.design) (e : Search.design) ->
            Alcotest.check fl "weight" b.Snd.weight e.Search.weight;
            Alcotest.check fl "cost" b.Snd.subsidy_cost e.Search.subsidy_cost)
          brute engine;
        Alcotest.(check bool) "stopped early" true
          (stats.Search.trees_seen <= G.Enumerate.count_spanning_trees graph));
    Alcotest.test_case "disconnected graph yields no design" `Quick (fun () ->
        let graph = G.create ~n:3 [ (0, 1, 1.0) ] in
        let d, s = Search.exact_small ~graph ~root:0 ~budget:100.0 () in
        Alcotest.(check bool) "no design" true (d = None);
        Alcotest.(check int) "nothing priced" 0 s.Search.trees_priced);
    Alcotest.test_case "cached pricer absorbs repeated prices" `Quick (fun () ->
        let graph = quickstart_graph () in
        let spec = Gm.broadcast ~graph ~root:0 in
        let pricer = Search.cached_pricer ~capacity:8 (Search.lp_pricer spec ~root:0) in
        let ids = Option.get (G.mst_kruskal graph) in
        let tree = G.Tree.of_edge_ids graph ~root:0 ids in
        let c1 = (pricer.Search.price tree ids).Sne.cost in
        let c2 = (pricer.Search.price tree ids).Sne.cost in
        Alcotest.check fl "same cost" c1 c2;
        Alcotest.(check int) "one solve" 1 (Atomic.get pricer.Search.solves);
        Alcotest.(check int) "one hit" 1 (pricer.Search.cache_hits ()));
    Alcotest.test_case "AoN budget boundaries on the quickstart instance" `Quick
      (fun () ->
        let graph = quickstart_graph () in
        let spec = Gm.broadcast ~graph ~root:0 in
        let mst_ids = Option.get (G.mst_kruskal graph) in
        let mst = G.Tree.of_edge_ids graph ~root:0 mst_ids in
        let r = Snd.Aon.solve_exact spec mst in
        Alcotest.(check bool) "optimal" true r.Snd.Aon.optimal;
        Alcotest.(check bool) "MST needs subsidies" true (r.Snd.Aon.cost > 0.0);
        (* Budget exactly the AoN pricing of the optimum buys the MST... *)
        (match Snd.exact_small_aon ~graph ~root:0 ~budget:r.Snd.Aon.cost () with
        | Some d ->
            Alcotest.(check (list int)) "exact budget buys the MST" mst_ids d.Snd.tree_edges;
            Alcotest.check fl "at its AoN cost" r.Snd.Aon.cost d.Snd.subsidy_cost
        | None -> Alcotest.fail "exact budget must be feasible");
        (* ...while a budget just below it forces a heavier design. *)
        (match Snd.exact_small_aon ~graph ~root:0 ~budget:(r.Snd.Aon.cost -. 0.01) () with
        | Some d ->
            Alcotest.(check bool) "short budget buys a heavier tree" true
              (d.Snd.weight > G.total_weight graph mst_ids)
        | None -> Alcotest.fail "a Nash tree is always affordable");
        (* Budget zero: the best unsubsidized equilibrium tree. *)
        (match Snd.exact_small_aon ~graph ~root:0 ~budget:0.0 () with
        | Some d ->
            Alcotest.check fl "zero budget costs nothing" 0.0 d.Snd.subsidy_cost;
            let best_eq =
              (Gm.Exact.equilibrium_landscape ~graph ~root:0).Gm.Exact.best_equilibrium
            in
            Alcotest.check fl "and is the best Nash tree" (fst (Option.get best_eq))
              d.Snd.weight
        | None -> Alcotest.fail "budget 0 is feasible on connected instances");
        (* Budget zero on a disconnected graph: no spanning tree at all. *)
        let disconnected = G.create ~n:3 [ (0, 1, 1.0) ] in
        Alcotest.(check bool) "disconnected is infeasible" true
          (Snd.exact_small_aon ~graph:disconnected ~root:0 ~budget:0.0 () = None));
    Alcotest.test_case "exact-rational engine equals brute on a shortcut chain" `Quick
      (fun () ->
        let module GR = SndR.G in
        let two = Q.of_int 2 and seven_halves = Q.of_ints 7 2 in
        let graph =
          GR.create ~n:4
            [ (0, 1, two); (1, 2, two); (2, 3, two); (0, 3, seven_halves) ]
        in
        let brute = SndR.pareto_frontier_brute ~graph ~root:0 in
        let engine, _ = SearchR.pareto_frontier ~graph ~root:0 () in
        Alcotest.(check int) "same size" (List.length brute) (List.length engine);
        List.iter2
          (fun (b : SndR.design) (e : SearchR.design) ->
            Alcotest.(check bool) "identical exact pairs" true
              (Q.compare b.SndR.weight e.SearchR.weight = 0
              && Q.compare b.SndR.subsidy_cost e.SearchR.subsidy_cost = 0
              && b.SndR.tree_edges = e.SearchR.tree_edges))
          brute engine);
  ]

let prop ?(count = 50) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    (* The acceptance bar: the engine returns the seed's design, verified
       differentially over >= 200 random graphs x 3 budget regimes. *)
    prop "exact_small equals the seed solver (220 random graphs)" ~count:220
      (fun seed ->
        let inst = random_instance seed in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        let mst_cost = mst_lp_cost spec ~root inst in
        List.for_all
          (fun budget ->
            design_eq
              (Snd.exact_small_brute ~graph ~root ~budget)
              (fst (Search.exact_small ~graph ~root ~budget ())))
          [ 0.0; 0.5 *. mst_cost; (2.0 *. mst_cost) +. 1.0 ]);
    prop "parallel and unpruned configurations return the same design" ~count:40
      (fun seed ->
        let inst = random_instance seed in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        let budget = 0.5 *. mst_lp_cost spec ~root inst in
        let reference = Snd.exact_small_brute ~graph ~root ~budget in
        List.for_all
          (fun config ->
            design_eq reference (fst (Search.exact_small ~config ~graph ~root ~budget ())))
          [
            { Search.default_config with domains = 2 };
            { Search.default_config with domains = 3; batch = 2 };
            { Search.default_config with use_lb = false };
            { Search.default_config with cache = 0 };
          ]);
    prop "pareto_frontier equals brute force on random graphs" ~count:25 (fun seed ->
        let inst = random_instance ~lo:4 ~hi:6 seed in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let brute = Snd.pareto_frontier_brute ~graph ~root in
        List.for_all
          (fun config ->
            let engine, _ = Search.pareto_frontier ~config ~graph ~root () in
            List.length brute = List.length engine
            && List.for_all2
                 (fun (b : Snd.design) (e : Search.design) ->
                   Fx.approx_eq b.Snd.weight e.Search.weight
                   && Fx.approx_eq b.Snd.subsidy_cost e.Search.subsidy_cost)
                 brute engine)
          [ Search.default_config; { Search.default_config with domains = 2 } ]);
    prop "enforcement lower bound is admissible" ~count:60 (fun seed ->
        let inst = random_instance seed in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        G.Enumerate.by_weight graph |> Seq.take 8
        |> Seq.for_all (fun (_, ids) ->
               let tree = G.Tree.of_edge_ids graph ~root ids in
               let lb = Lb.broadcast_enforcement_lb spec ~root tree in
               let cost = (Sne.broadcast spec ~root tree).Sne.cost in
               lb <= cost +. 1e-9));
    prop "warm kernel pricer agrees with the functor backend" ~count:30 (fun seed ->
        let inst = random_instance seed in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        let warm = Search.warm_kernel_pricer spec ~root in
        G.Enumerate.by_weight graph |> Seq.take 10
        |> Seq.for_all (fun (_, ids) ->
               let tree = G.Tree.of_edge_ids graph ~root ids in
               let reference = (Sne.broadcast spec ~root tree).Sne.cost in
               Fx.approx_eq ~eps:1e-6 (warm.Search.price tree ids).Sne.cost reference));
    prop "engine never prices more trees than brute enumerates" ~count:30 (fun seed ->
        let inst = random_instance seed in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let total = G.Enumerate.count_spanning_trees graph in
        let _, s_exact = Search.exact_small ~graph ~root ~budget:1.0 () in
        let _, s_pareto = Search.pareto_frontier ~graph ~root () in
        s_exact.Search.trees_priced <= total && s_pareto.Search.trees_priced <= total);
  ]

let suite = unit_tests @ property_tests
