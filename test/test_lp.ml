(* Tests for the two-phase simplex solver: known optima, infeasibility and
   unboundedness detection, bound handling (shifted, mirrored, split and
   fixed variables), degenerate problems, and a float-vs-exact-rational
   cross-check on random LPs.

   The same random-LP generator also cross-validates the unboxed float
   kernel (Repro_lp.Simplex_float) against the exact-rational functor, and
   exercises both backends' warm-start path (solve_incremental /
   add_constraint) against cold re-solves. *)

module FS = Repro_lp.Simplex.Float_simplex
module RS = Repro_lp.Simplex.Rat_simplex
module UF = Repro_lp.Simplex_float
module Q = Repro_field.Rational
module Prng = Repro_util.Prng

let fl = Alcotest.float 1e-7

let float_problem ~n_vars ?(lower = `Zero) ?upper ~minimize ~constraints () =
  let lo =
    match lower with
    | `Zero -> Array.make n_vars (Some 0.0)
    | `Free -> Array.make n_vars None
    | `Given a -> a
  in
  let up = match upper with None -> Array.make n_vars None | Some a -> a in
  FS.make_problem ~n_vars ~minimize ~constraints ~lower:lo ~upper:up ()

let leq coeffs rhs = { FS.coeffs; relation = FS.Leq; rhs; label = "c" }
let geq coeffs rhs = { FS.coeffs; relation = FS.Geq; rhs; label = "c" }
let eq coeffs rhs = { FS.coeffs; relation = FS.Eq; rhs; label = "c" }

let expect_optimal = function
  | FS.Optimal s -> s
  | FS.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | FS.Unbounded -> Alcotest.fail "unexpected: unbounded"

let unit_tests =
  [
    Alcotest.test_case "textbook 2-variable LP" `Quick (fun () ->
        (* min -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
           Optimum at (1,3): objective -7. *)
        let p =
          float_problem ~n_vars:2
            ~minimize:[ (0, -1.0); (1, -2.0) ]
            ~constraints:[ leq [ (0, 1.0); (1, 1.0) ] 4.0; leq [ (0, 1.0) ] 2.0; leq [ (1, 1.0) ] 3.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "objective" (-7.0) s.objective;
        Alcotest.check fl "x" 1.0 s.values.(0);
        Alcotest.check fl "y" 3.0 s.values.(1));
    Alcotest.test_case "minimization with >= rows (phase 1 needed)" `Quick (fun () ->
        (* min 2x + 3y s.t. x + y >= 4, x - y <= 2, x,y >= 0. On the active
           line x + y = 4 the cost is 12 - x, so push x up to the x - y <= 2
           limit: optimum (3,1) with value 9. *)
        let p =
          float_problem ~n_vars:2
            ~minimize:[ (0, 2.0); (1, 3.0) ]
            ~constraints:[ geq [ (0, 1.0); (1, 1.0) ] 4.0; leq [ (0, 1.0); (1, -1.0) ] 2.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "objective" 9.0 s.objective);
    Alcotest.test_case "equality constraints" `Quick (fun () ->
        (* min x + y s.t. x + 2y = 6, x - y = 0 -> x = y = 2. *)
        let p =
          float_problem ~n_vars:2
            ~minimize:[ (0, 1.0); (1, 1.0) ]
            ~constraints:[ eq [ (0, 1.0); (1, 2.0) ] 6.0; eq [ (0, 1.0); (1, -1.0) ] 0.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x" 2.0 s.values.(0);
        Alcotest.check fl "y" 2.0 s.values.(1));
    Alcotest.test_case "infeasible system detected" `Quick (fun () ->
        let p =
          float_problem ~n_vars:1
            ~minimize:[ (0, 1.0) ]
            ~constraints:[ geq [ (0, 1.0) ] 5.0; leq [ (0, 1.0) ] 3.0 ]
            ()
        in
        Alcotest.(check bool) "infeasible" true (FS.solve p = FS.Infeasible));
    Alcotest.test_case "unbounded problem detected" `Quick (fun () ->
        let p =
          float_problem ~n_vars:1 ~minimize:[ (0, -1.0) ] ~constraints:[ geq [ (0, 1.0) ] 0.0 ] ()
        in
        Alcotest.(check bool) "unbounded" true (FS.solve p = FS.Unbounded));
    Alcotest.test_case "upper bounds are respected" `Quick (fun () ->
        (* min -x with x in [0, 7]. *)
        let p =
          float_problem ~n_vars:1
            ~upper:[| Some 7.0 |]
            ~minimize:[ (0, -1.0) ]
            ~constraints:[] ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x hits its bound" 7.0 s.values.(0));
    Alcotest.test_case "non-zero lower bounds shift correctly" `Quick (fun () ->
        (* min x with x in [3, 10]. *)
        let p =
          float_problem ~n_vars:1
            ~lower:(`Given [| Some 3.0 |])
            ~upper:[| Some 10.0 |]
            ~minimize:[ (0, 1.0) ]
            ~constraints:[] ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x at lower bound" 3.0 s.values.(0));
    Alcotest.test_case "free variables (split) can go negative" `Quick (fun () ->
        (* min x s.t. x >= -5 as a row, x free. *)
        let p =
          float_problem ~n_vars:1 ~lower:`Free
            ~minimize:[ (0, 1.0) ]
            ~constraints:[ geq [ (0, 1.0) ] (-5.0) ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x = -5" (-5.0) s.values.(0));
    Alcotest.test_case "mirrored variables (upper bound only)" `Quick (fun () ->
        (* max x (= min -x) with x <= 4, x free otherwise, plus x >= 1 row. *)
        let p =
          float_problem ~n_vars:1 ~lower:`Free
            ~upper:[| Some 4.0 |]
            ~minimize:[ (0, -1.0) ]
            ~constraints:[ geq [ (0, 1.0) ] 1.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x = 4" 4.0 s.values.(0));
    Alcotest.test_case "fixed variable via equal bounds" `Quick (fun () ->
        let p =
          float_problem ~n_vars:2
            ~lower:(`Given [| Some 2.0; Some 0.0 |])
            ~upper:[| Some 2.0; None |]
            ~minimize:[ (0, 1.0); (1, 1.0) ]
            ~constraints:[ geq [ (0, 1.0); (1, 1.0) ] 5.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x fixed" 2.0 s.values.(0);
        Alcotest.check fl "y fills the rest" 3.0 s.values.(1));
    Alcotest.test_case "empty range rejected" `Quick (fun () ->
        let p =
          float_problem ~n_vars:1
            ~lower:(`Given [| Some 3.0 |])
            ~upper:[| Some 2.0 |]
            ~minimize:[ (0, 1.0) ]
            ~constraints:[] ()
        in
        Alcotest.check_raises "empty"
          (Invalid_argument "Simplex: empty variable range (upper < lower)") (fun () ->
            ignore (FS.solve p)));
    Alcotest.test_case "degenerate LP terminates (Bland)" `Quick (fun () ->
        (* Classic cycling example (Beale); Bland's rule must terminate. *)
        let p =
          float_problem ~n_vars:4
            ~minimize:[ (0, -0.75); (1, 150.0); (2, -0.02); (3, 6.0) ]
            ~constraints:
              [
                leq [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ] 0.0;
                leq [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ] 0.0;
                leq [ (2, 1.0) ] 1.0;
              ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "objective" (-0.05) s.objective);
    Alcotest.test_case "redundant equality rows do not break phase 1" `Quick (fun () ->
        let p =
          float_problem ~n_vars:2
            ~minimize:[ (0, 1.0); (1, 1.0) ]
            ~constraints:
              [ eq [ (0, 1.0); (1, 1.0) ] 2.0; eq [ (0, 2.0); (1, 2.0) ] 4.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "objective" 2.0 s.objective);
    Alcotest.test_case "exact rational solve gives exact answers" `Quick (fun () ->
        (* min x + y s.t. 3x + y >= 1, x + 3y >= 1: optimum x = y = 1/4. *)
        let lower, upper = RS.nonneg 2 in
        let p =
          RS.make_problem ~n_vars:2
            ~minimize:[ (0, Q.one); (1, Q.one) ]
            ~constraints:
              [
                { RS.coeffs = [ (0, Q.of_int 3); (1, Q.one) ]; relation = RS.Geq; rhs = Q.one; label = "a" };
                { RS.coeffs = [ (0, Q.one); (1, Q.of_int 3) ]; relation = RS.Geq; rhs = Q.one; label = "b" };
              ]
            ~lower ~upper ()
        in
        match RS.solve p with
        | RS.Optimal s ->
            Alcotest.(check string) "x" "1/4" (Q.to_string s.values.(0));
            Alcotest.(check string) "y" "1/4" (Q.to_string s.values.(1));
            Alcotest.(check string) "objective" "1/2" (Q.to_string s.objective)
        | _ -> Alcotest.fail "expected optimal");
    Alcotest.test_case "free variables with equality rows" `Quick (fun () ->
        (* min |shape|: x free, y free; x + y = 1, x - y = 5 -> x = 3,
           y = -2; objective x + 2y = -1. *)
        let p =
          float_problem ~n_vars:2 ~lower:`Free
            ~minimize:[ (0, 1.0); (1, 2.0) ]
            ~constraints:[ eq [ (0, 1.0); (1, 1.0) ] 1.0; eq [ (0, 1.0); (1, -1.0) ] 5.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x" 3.0 s.values.(0);
        Alcotest.check fl "y" (-2.0) s.values.(1);
        Alcotest.check fl "objective" (-1.0) s.objective);
    Alcotest.test_case "negative rhs rows are normalized correctly" `Quick (fun () ->
        (* -x <= -3 is x >= 3. *)
        let p =
          float_problem ~n_vars:1
            ~minimize:[ (0, 1.0) ]
            ~constraints:[ leq [ (0, -1.0) ] (-3.0) ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "x = 3" 3.0 s.values.(0));
    Alcotest.test_case "objective constants from shifted bounds" `Quick (fun () ->
        (* min 2x with x in [5, 9] and a slack row: optimum 10, exercising
           the cost_const path of the canonicalization. *)
        let p =
          float_problem ~n_vars:2
            ~lower:(`Given [| Some 5.0; Some 0.0 |])
            ~upper:[| Some 9.0; None |]
            ~minimize:[ (0, 2.0) ]
            ~constraints:[ leq [ (0, 1.0); (1, 1.0) ] 20.0 ]
            ()
        in
        let s = expect_optimal (FS.solve p) in
        Alcotest.check fl "objective" 10.0 s.objective);
    Alcotest.test_case "pp_problem renders" `Quick (fun () ->
        let p =
          float_problem ~n_vars:2
            ~minimize:[ (0, 1.0) ]
            ~constraints:[ leq [ (0, 1.0); (1, 2.0) ] 4.0 ]
            ()
        in
        let s = Format.asprintf "%a" FS.pp_problem p in
        Alcotest.(check bool) "mentions minimize" true
          (String.length s > 0 && String.sub s 0 8 = "minimize"));
  ]

(* Random LP cross-check: generate small LPs with integer data, solve in
   float and in exact rationals, and require agreement of status and (when
   optimal) objective value. *)
let random_lp_pair seed =
  let rng = Prng.create seed in
  let n_vars = Prng.int_in_range rng ~lo:1 ~hi:4 in
  let n_cons = Prng.int_in_range rng ~lo:1 ~hi:5 in
  let coeff () = Prng.int_in_range rng ~lo:(-4) ~hi:4 in
  let cons =
    List.init n_cons (fun _ ->
        let coeffs = List.init n_vars (fun i -> (i, coeff ())) in
        let rel = Prng.choose rng [ `Leq; `Geq; `Eq ] in
        let rhs = Prng.int_in_range rng ~lo:(-6) ~hi:10 in
        (coeffs, rel, rhs))
  in
  let obj = List.init n_vars (fun i -> (i, coeff ())) in
  let upper = List.init n_vars (fun _ -> if Prng.bool rng then Some (Prng.int_in_range rng ~lo:0 ~hi:8) else None) in
  let fp =
    let lower, _ = FS.nonneg n_vars in
    FS.make_problem ~n_vars
      ~minimize:(List.map (fun (i, c) -> (i, float_of_int c)) obj)
      ~constraints:
        (List.map
           (fun (coeffs, rel, rhs) ->
             {
               FS.coeffs = List.map (fun (i, c) -> (i, float_of_int c)) coeffs;
               relation = (match rel with `Leq -> FS.Leq | `Geq -> FS.Geq | `Eq -> FS.Eq);
               rhs = float_of_int rhs;
               label = "r";
             })
           cons)
      ~lower
      ~upper:(Array.of_list (List.map (Option.map float_of_int) upper))
      ()
  in
  let rp =
    let lower, _ = RS.nonneg n_vars in
    RS.make_problem ~n_vars
      ~minimize:(List.map (fun (i, c) -> (i, Q.of_int c)) obj)
      ~constraints:
        (List.map
           (fun (coeffs, rel, rhs) ->
             {
               RS.coeffs = List.map (fun (i, c) -> (i, Q.of_int c)) coeffs;
               relation = (match rel with `Leq -> RS.Leq | `Geq -> RS.Geq | `Eq -> RS.Eq);
               rhs = Q.of_int rhs;
               label = "r";
             })
           cons)
      ~lower
      ~upper:(Array.of_list (List.map (Option.map Q.of_int) upper))
      ()
  in
  (fp, rp)

let feasible_in p (s : FS.solution) =
  List.for_all
    (fun (c : FS.constr) ->
      let lhs = List.fold_left (fun acc (i, a) -> acc +. (a *. s.values.(i))) 0.0 c.coeffs in
      match c.relation with
      | FS.Leq -> Repro_util.Floatx.leq ~eps:1e-6 lhs c.rhs
      | FS.Geq -> Repro_util.Floatx.geq ~eps:1e-6 lhs c.rhs
      | FS.Eq -> Repro_util.Floatx.approx_eq ~eps:1e-6 lhs c.rhs)
    p.FS.constraints
  && Array.for_all2
       (fun v (lo, up) ->
         (match lo with None -> true | Some l -> Repro_util.Floatx.geq ~eps:1e-6 v l)
         && match up with None -> true | Some u -> Repro_util.Floatx.leq ~eps:1e-6 v u)
       s.values
       (Array.map2 (fun a b -> (a, b)) p.FS.lower p.FS.upper)

let prop name count f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "float and exact rational solvers agree" 150 (fun seed ->
        let fp, rp = random_lp_pair seed in
        match (FS.solve fp, RS.solve rp) with
        | FS.Optimal fs, RS.Optimal rs ->
            Repro_util.Floatx.approx_eq ~eps:1e-6 fs.objective (Q.to_float rs.objective)
        | FS.Infeasible, RS.Infeasible -> true
        | FS.Unbounded, RS.Unbounded -> true
        | _ -> false);
    prop "optimal solutions are feasible" 150 (fun seed ->
        let fp, _ = random_lp_pair seed in
        match FS.solve fp with FS.Optimal s -> feasible_in fp s | _ -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Unboxed float kernel (Repro_lp.Simplex_float)                        *)
(* ------------------------------------------------------------------ *)

(* The kernel shares the BACKEND record shapes with the functor but has
   its own (nominal) types; translate structurally. *)
let uf_of_fs (p : FS.problem) : UF.problem =
  UF.make_problem ~n_vars:p.FS.n_vars ~minimize:p.FS.minimize
    ~constraints:
      (List.map
         (fun (c : FS.constr) ->
           {
             UF.coeffs = c.FS.coeffs;
             relation =
               (match c.FS.relation with FS.Leq -> UF.Leq | FS.Geq -> UF.Geq | FS.Eq -> UF.Eq);
             rhs = c.FS.rhs;
             label = c.FS.label;
           })
         p.FS.constraints)
    ~lower:p.FS.lower ~upper:p.FS.upper ~var_name:p.FS.var_name ()

let uf_leq coeffs rhs = { UF.coeffs; relation = UF.Leq; rhs; label = "cut" }
let uf_geq coeffs rhs = { UF.coeffs; relation = UF.Geq; rhs; label = "cut" }
let uf_eq coeffs rhs = { UF.coeffs; relation = UF.Eq; rhs; label = "cut" }

let uf_expect_optimal = function
  | UF.Optimal s -> s
  | UF.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | UF.Unbounded -> Alcotest.fail "unexpected: unbounded"

let kernel_unit_tests =
  [
    Alcotest.test_case "kernel: textbook LP and warm-start cuts" `Quick (fun () ->
        (* min -x - 2y s.t. x + y <= 4, x <= 2, y <= 3 -> (1,3), obj -7.
           Then tighten warm: y <= 2 moves to (2,2), obj -6; then the Geq
           cut x + y >= 5 makes it infeasible. *)
        let p =
          uf_of_fs
            (float_problem ~n_vars:2
               ~minimize:[ (0, -1.0); (1, -2.0) ]
               ~constraints:
                 [ leq [ (0, 1.0); (1, 1.0) ] 4.0; leq [ (0, 1.0) ] 2.0; leq [ (1, 1.0) ] 3.0 ]
               ())
        in
        let st, o = UF.solve_incremental p in
        let s = uf_expect_optimal o in
        Alcotest.check fl "cold objective" (-7.0) s.UF.objective;
        let s2 = uf_expect_optimal (UF.add_constraint st (uf_leq [ (1, 1.0) ] 2.0)) in
        Alcotest.check fl "after Leq cut" (-6.0) s2.UF.objective;
        Alcotest.check fl "x" 2.0 s2.UF.values.(0);
        Alcotest.check fl "y" 2.0 s2.UF.values.(1);
        let o3 = UF.add_constraint st (uf_geq [ (0, 1.0); (1, 1.0) ] 5.0) in
        Alcotest.(check bool) "infeasible cut detected" true (o3 = UF.Infeasible);
        (* Infeasibility is absorbing. *)
        let o4 = UF.add_constraint st (uf_leq [ (0, 1.0) ] 100.0) in
        Alcotest.(check bool) "stays infeasible" true (o4 = UF.Infeasible));
    Alcotest.test_case "kernel: warm equality cut" `Quick (fun () ->
        (* min x + y s.t. x + y >= 1 -> obj 1; then x - y = 1 forces
           (1, 0). *)
        let p =
          uf_of_fs
            (float_problem ~n_vars:2
               ~minimize:[ (0, 1.0); (1, 1.0) ]
               ~constraints:[ geq [ (0, 1.0); (1, 1.0) ] 1.0 ]
               ())
        in
        let st, o = UF.solve_incremental p in
        Alcotest.check fl "base" 1.0 (uf_expect_optimal o).UF.objective;
        let s = uf_expect_optimal (UF.add_constraint st (uf_eq [ (0, 1.0); (1, -1.0) ] 1.0)) in
        Alcotest.check fl "obj still 1" 1.0 s.UF.objective;
        Alcotest.check fl "x" 1.0 s.UF.values.(0);
        Alcotest.check fl "y" 0.0 s.UF.values.(1));
    Alcotest.test_case "kernel: warm start after unbounded base" `Quick (fun () ->
        (* min -x, x >= 0: unbounded; adding x <= 9 bounds it (forces the
           cold-rebuild path, since an unbounded base has no optimal
           basis to warm from). *)
        let p =
          uf_of_fs (float_problem ~n_vars:1 ~minimize:[ (0, -1.0) ] ~constraints:[] ())
        in
        let st, o = UF.solve_incremental p in
        Alcotest.(check bool) "unbounded base" true (o = UF.Unbounded);
        let s = uf_expect_optimal (UF.add_constraint st (uf_leq [ (0, 1.0) ] 9.0)) in
        Alcotest.check fl "bounded now" (-9.0) s.UF.objective);
    Alcotest.test_case "kernel: pivot counter is monotone" `Quick (fun () ->
        let p =
          uf_of_fs
            (float_problem ~n_vars:2
               ~minimize:[ (0, -1.0); (1, -2.0) ]
               ~constraints:[ leq [ (0, 1.0); (1, 1.0) ] 4.0 ]
               ())
        in
        let st, _ = UF.solve_incremental p in
        let before = UF.pivots st in
        ignore (UF.add_constraint st (uf_leq [ (1, 1.0) ] 1.0));
        Alcotest.(check bool) "pivots grow" true (UF.pivots st >= before));
    Alcotest.test_case "kernel: empty range rejected" `Quick (fun () ->
        let p =
          uf_of_fs
            (float_problem ~n_vars:1
               ~lower:(`Given [| Some 3.0 |])
               ~upper:[| Some 2.0 |]
               ~minimize:[ (0, 1.0) ]
               ~constraints:[] ())
        in
        Alcotest.check_raises "empty"
          (Invalid_argument "Simplex: empty variable range (upper < lower)") (fun () ->
            ignore (UF.solve p)));
    Alcotest.test_case "kernel: Beale degenerate LP terminates" `Quick (fun () ->
        (* Dantzig pricing must fall back to Bland on a degeneracy streak;
           either way the classic cycling LP has to terminate and agree. *)
        let p =
          uf_of_fs
            (float_problem ~n_vars:4
               ~minimize:[ (0, -0.75); (1, 150.0); (2, -0.02); (3, 6.0) ]
               ~constraints:
                 [
                   leq [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ] 0.0;
                   leq [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ] 0.0;
                   leq [ (2, 1.0) ] 1.0;
                 ]
               ())
        in
        Alcotest.check fl "objective" (-0.05) (uf_expect_optimal (UF.solve p)).UF.objective);
    Alcotest.test_case "kernel: rejects non-finite input up front" `Quick (fun () ->
        (* NaN used to slip through and silently corrupt Dantzig pricing
           (d < best is always false for NaN); the kernel now fails fast at
           construction. *)
        let expect_invalid what f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.failf "%s: non-finite value accepted" what
        in
        let free n = Array.make n None in
        expect_invalid "objective NaN" (fun () ->
            UF.make_problem ~n_vars:2 ~minimize:[ (0, Float.nan) ] ~constraints:[]
              ~lower:(free 2) ~upper:(free 2) ());
        expect_invalid "constraint coeff inf" (fun () ->
            UF.make_problem ~n_vars:2 ~minimize:[ (0, 1.0) ]
              ~constraints:[ uf_leq [ (1, Float.infinity) ] 1.0 ]
              ~lower:(free 2) ~upper:(free 2) ());
        expect_invalid "rhs NaN" (fun () ->
            UF.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ]
              ~constraints:[ uf_leq [ (0, 1.0) ] Float.nan ]
              ~lower:(free 1) ~upper:(free 1) ());
        expect_invalid "bound -inf" (fun () ->
            UF.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ] ~constraints:[]
              ~lower:[| Some Float.neg_infinity |] ~upper:(free 1) ());
        (* A warm-start cut must pass the same gate. *)
        let p =
          UF.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ] ~constraints:[]
            ~lower:[| Some 0.0 |] ~upper:(free 1) ()
        in
        let st, _ = UF.solve_incremental p in
        expect_invalid "warm cut NaN" (fun () ->
            UF.add_constraint st (uf_geq [ (0, Float.nan) ] 0.0));
        (* [None] bounds stay legal: free variables are not "non-finite". *)
        ignore
          (UF.make_problem ~n_vars:1 ~minimize:[ (0, 1.0) ] ~constraints:[]
             ~lower:(free 1) ~upper:(free 1) ()));
    Alcotest.test_case "kernel: non-finite edge weights rejected via Sne_lp" `Quick
      (fun () ->
        let module Gm = Repro_game.Game.Float_game in
        let module G = Gm.G in
        let module Sne = Repro_core.Sne_lp.Float in
        (* NaN and +inf pass graph construction (sign nan = 0) and must be
           stopped by the LP layer; -inf is already a "negative weight" to
           [G.create]. Either way nothing non-finite reaches the pivot loop. *)
        let check w =
          let solve () =
            let g = G.create ~n:3 [ (0, 1, 1.0); (1, 2, w); (0, 2, 1.0) ] in
            let spec = Gm.broadcast ~graph:g ~root:0 in
            let tree = G.Tree.of_edge_ids g ~root:0 [ 0; 1 ] in
            Sne.broadcast spec ~root:0 tree
          in
          match solve () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.failf "edge weight %g accepted" w
        in
        check Float.nan;
        check Float.infinity;
        check Float.neg_infinity);
  ]

(* Extra constraints to feed add_constraint in the incremental property. *)
let random_extra_cuts rng ~n_vars ~count =
  List.init count (fun _ ->
      let coeffs = List.init n_vars (fun i -> (i, float_of_int (Prng.int_in_range rng ~lo:(-4) ~hi:4))) in
      let rhs = float_of_int (Prng.int_in_range rng ~lo:(-2) ~hi:12) in
      match Prng.choose rng [ `Leq; `Geq; `Eq ] with
      | `Leq -> uf_leq coeffs rhs
      | `Geq -> uf_geq coeffs rhs
      | `Eq -> uf_eq coeffs rhs)

let kernel_property_tests =
  [
    prop "unboxed kernel agrees with exact rationals" 200 (fun seed ->
        let fp, rp = random_lp_pair seed in
        match (UF.solve (uf_of_fs fp), RS.solve rp) with
        | UF.Optimal us, RS.Optimal rs ->
            Repro_util.Floatx.approx_eq ~eps:1e-6 us.UF.objective (Q.to_float rs.objective)
        | UF.Infeasible, RS.Infeasible -> true
        | UF.Unbounded, RS.Unbounded -> true
        | _ -> false);
    prop "warm-started cuts match a cold re-solve" 150 (fun seed ->
        let fp, _ = random_lp_pair seed in
        let base = uf_of_fs fp in
        let rng = Prng.create (seed + 77) in
        let cuts = random_extra_cuts rng ~n_vars:base.UF.n_vars ~count:(Prng.int_in_range rng ~lo:1 ~hi:3) in
        let st, o0 = UF.solve_incremental base in
        let warm = List.fold_left (fun _ c -> UF.add_constraint st c) o0 cuts in
        let cold =
          UF.solve { base with UF.constraints = base.UF.constraints @ cuts }
        in
        match (warm, cold) with
        | UF.Optimal w, UF.Optimal c ->
            Repro_util.Floatx.approx_eq ~eps:1e-6 w.UF.objective c.UF.objective
        | UF.Infeasible, UF.Infeasible -> true
        | UF.Unbounded, UF.Unbounded -> true
        (* An Infeasible mid-sequence is absorbing in the warm path; the
           cold solve of the full system must then be infeasible too. *)
        | UF.Infeasible, _ | _, UF.Infeasible | UF.Unbounded, _ | _, UF.Unbounded -> false);
    prop "functor backend add_constraint matches cold re-solve" 100 (fun seed ->
        (* The functor's warm-start API is an honest cold restart; still,
           its bookkeeping (cumulative constraints, sticky infeasibility)
           must give the same outcomes. *)
        let fp, _ = random_lp_pair seed in
        let rng = Prng.create (seed + 131) in
        let cuts =
          List.map
            (fun (c : UF.constr) ->
              {
                FS.coeffs = c.UF.coeffs;
                relation =
                  (match c.UF.relation with UF.Leq -> FS.Leq | UF.Geq -> FS.Geq | UF.Eq -> FS.Eq);
                rhs = c.UF.rhs;
                label = c.UF.label;
              })
            (random_extra_cuts rng ~n_vars:fp.FS.n_vars ~count:2)
        in
        let st, o0 = FS.solve_incremental fp in
        let warm = List.fold_left (fun _ c -> FS.add_constraint st c) o0 cuts in
        let cold = FS.solve { fp with FS.constraints = fp.FS.constraints @ cuts } in
        match (warm, cold) with
        | FS.Optimal w, FS.Optimal c ->
            Repro_util.Floatx.approx_eq ~eps:1e-6 w.objective c.objective
        | FS.Infeasible, FS.Infeasible -> true
        | FS.Unbounded, FS.Unbounded -> true
        | _ -> false);
  ]

let suite = unit_tests @ property_tests @ kernel_unit_tests @ kernel_property_tests
