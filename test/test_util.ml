(* Tests for the remaining utility modules: the binary heap, harmonic
   numbers, float comparisons, tables, the LRU cache, the domain pool
   (including cooperative cancellation and the persistent worker pool),
   and the plain-text instance serializer. *)

module Heap = Repro_util.Heap
module Harmonic = Repro_util.Harmonic
module Vec = Repro_util.Vec
module Arena = Repro_util.Arena
module Fx = Repro_util.Floatx
module Table = Repro_util.Table
module Lru = Repro_util.Lru
module Parallel = Repro_parallel.Parallel
module Prng = Repro_util.Prng
module Serial = Repro_core.Serial.Float
module SerialR = Repro_core.Serial.Rat

let unit_tests =
  [
    Alcotest.test_case "heap basics" `Quick (fun () ->
        let h = Heap.create ~cmp:compare in
        Alcotest.(check bool) "empty" true (Heap.is_empty h);
        Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
        List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
        Alcotest.(check int) "size" 5 (Heap.size h);
        Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
        Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Heap.to_sorted_list h);
        Alcotest.(check bool) "drained" true (Heap.is_empty h));
    Alcotest.test_case "heap with custom comparison" `Quick (fun () ->
        let h = Heap.create ~cmp:(fun a b -> compare b a) in
        List.iter (Heap.push h) [ 2; 9; 4 ];
        Alcotest.(check (option int)) "max first" (Some 9) (Heap.pop h));
    Alcotest.test_case "harmonic numbers" `Quick (fun () ->
        Alcotest.(check (float 1e-12)) "H_0" 0.0 (Harmonic.h 0);
        Alcotest.(check (float 1e-12)) "H_1" 1.0 (Harmonic.h 1);
        Alcotest.(check (float 1e-12)) "H_4" (25.0 /. 12.0) (Harmonic.h 4);
        Alcotest.(check (float 1e-9)) "diff" (Harmonic.h 20 -. Harmonic.h 7) (Harmonic.diff 20 7);
        Alcotest.check_raises "negative" (Invalid_argument "Harmonic.h: negative index")
          (fun () -> ignore (Harmonic.h (-1))));
    Alcotest.test_case "harmonic asymptotic expansion is continuous at the cutoff" `Quick
      (fun () ->
        (* Compare the expansion against direct summation just above the
           table limit. *)
        let n = (1 lsl 16) + 5 in
        let direct = ref 0.0 in
        for i = 1 to n do
          direct := !direct +. (1.0 /. float_of_int i)
        done;
        Alcotest.(check (float 1e-9)) "expansion matches summation" !direct (Harmonic.h n));
    Alcotest.test_case "bypass path length matches its defining inequality" `Quick
      (fun () ->
        for kappa = 1 to 30 do
          let l = Harmonic.min_l_exceeding kappa in
          if not (Harmonic.diff (kappa + l) kappa > 1.0) then
            Alcotest.failf "l too small at kappa=%d" kappa;
          if l > 1 && Harmonic.diff (kappa + l - 1) kappa > 1.0 then
            Alcotest.failf "l not minimal at kappa=%d" kappa
        done);
    Alcotest.test_case "floatx comparisons" `Quick (fun () ->
        Alcotest.(check bool) "approx_eq at scale" true (Fx.approx_eq 1e12 (1e12 +. 1.0));
        Alcotest.(check bool) "lt beyond tolerance" true (Fx.lt 1.0 1.1);
        Alcotest.(check bool) "not lt within tolerance" false (Fx.lt 1.0 (1.0 +. 1e-12));
        Alcotest.(check bool) "leq with slop" true (Fx.leq (1.0 +. 1e-12) 1.0);
        Alcotest.(check (float 0.0)) "clamp" 2.0 (Fx.clamp ~lo:0.0 ~hi:2.0 5.0));
    Alcotest.test_case "kahan summation beats naive on adversarial input" `Quick
      (fun () ->
        let a = Array.init 10_001 (fun i -> if i = 0 then 1e16 else 1.0) in
        a.(10_000) <- -1e16;
        (* True sum = 9999. Naive summation loses every unit addend into
           the 1e16's rounding; Kahan keeps them to within a few ulps. *)
        let naive = Array.fold_left ( +. ) 0.0 a in
        Alcotest.(check bool) "naive is far off" true (Float.abs (naive -. 9999.0) > 100.0);
        Alcotest.(check (float 4.0)) "kahan" 9999.0 (Fx.sum_kahan a));
    Alcotest.test_case "table renders all cells" `Quick (fun () ->
        let t = Table.create ~title:"T" ~header:[ "a"; "b" ] in
        Table.add_row t [ "1"; "2" ];
        Table.add_rows t [ [ "333"; Table.cell_b true ]; [ Table.cell_f 1.5 ] ];
        let s = Table.render t in
        let contains needle =
          let rec find i =
            i + String.length needle <= String.length s
            && (String.sub s i (String.length needle) = needle || find (i + 1))
          in
          find 0
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
          [ "== T =="; "333"; "yes"; "1.5000" ]);
    Alcotest.test_case "parallel map preserves order and values" `Quick (fun () ->
        let a = Array.init 100 (fun i -> i) in
        let r = Parallel.map ~domains:4 (fun x -> x * x) a in
        Alcotest.(check bool) "squares" true (Array.for_all2 (fun x y -> y = x * x) a r));
    Alcotest.test_case "parallel map re-raises worker exceptions" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Parallel.map ~domains:3
                  (fun x -> if x = 7 then failwith "boom" else x)
                  (Array.init 20 (fun i -> i)));
             false
           with Failure msg -> msg = "boom"));
    Alcotest.test_case "parallel map on empty input" `Quick (fun () ->
        Alcotest.(check int) "empty" 0 (Array.length (Parallel.map (fun x -> x) [||])));
    Alcotest.test_case "timed returns the thunk's value" `Quick (fun () ->
        let v, dt = Parallel.timed (fun () -> 42) in
        Alcotest.(check int) "value" 42 v;
        Alcotest.(check bool) "non-negative time" true (dt >= 0.0));
    Alcotest.test_case "poisoned sweep cancels siblings promptly" `Quick (fun () ->
        (* One item raises; the others spin on the poll closure. Without
           cooperative cancellation they would run their full 10 s deadline
           and the sweep would take as long — the regression this guards
           against. *)
        let t0 = Unix.gettimeofday () in
        (try
           ignore
             (Parallel.map_cancellable ~domains:4
                (fun check x ->
                  if x = 0 then begin
                    (* Give siblings time to enter their spin loops. *)
                    ignore (Unix.select [] [] [] 0.05);
                    failwith "poison"
                  end
                  else begin
                    let deadline = Unix.gettimeofday () +. 10.0 in
                    while Unix.gettimeofday () < deadline do
                      check ()
                    done;
                    failwith "worker was never cancelled"
                  end)
                (Array.init 8 (fun i -> i)));
           Alcotest.fail "the poisoning exception must re-raise"
         with Failure msg -> Alcotest.(check string) "poison wins" "poison" msg);
        Alcotest.(check bool) "returned promptly" true (Unix.gettimeofday () -. t0 < 5.0));
    Alcotest.test_case "spurious Cancelled poisons the sweep instead of crashing" `Quick
      (fun () ->
        (* A user callback raising [Cancelled] while no sibling has poisoned
           the sweep used to be swallowed, leaving a hole in the result
           array and crashing with Invalid_argument "option is None"; it
           must poison the sweep and re-raise like any other exception. *)
        (try
           ignore
             (Parallel.map_cancellable ~domains:2
                (fun _check x -> if x = 3 then raise Parallel.Cancelled else x)
                (Array.init 8 (fun i -> i)));
           Alcotest.fail "expected Cancelled to re-raise"
         with Parallel.Cancelled -> ());
        (* Sequential path too: one domain, no siblings to blame. *)
        try
          ignore
            (Parallel.map_cancellable ~domains:1
               (fun _check _ -> raise Parallel.Cancelled)
               [| 0 |]);
          Alcotest.fail "expected Cancelled to re-raise sequentially"
        with Parallel.Cancelled -> ());
    Alcotest.test_case "pool: spurious Cancelled poisons the job and pool survives" `Quick
      (fun () ->
        let pool = Parallel.Pool.create ~domains:3 () in
        Fun.protect
          ~finally:(fun () -> Parallel.Pool.shutdown pool)
          (fun () ->
            (try
               ignore
                 (Parallel.Pool.map_cancellable pool
                    (fun _check x -> if x = 5 then raise Parallel.Cancelled else x)
                    (Array.init 16 (fun i -> i)));
               Alcotest.fail "expected Cancelled to re-raise"
             with Parallel.Cancelled -> ());
            let r = Parallel.Pool.map pool (fun x -> x + 1) [| 1; 2 |] in
            Alcotest.(check bool) "pool still works" true (r = [| 2; 3 |])));
    Alcotest.test_case "pool runs several maps over the same domains" `Quick (fun () ->
        let pool = Parallel.Pool.create ~domains:3 () in
        Fun.protect
          ~finally:(fun () -> Parallel.Pool.shutdown pool)
          (fun () ->
            Alcotest.(check bool) "size" true (Parallel.Pool.size pool >= 1);
            let a = Array.init 50 (fun i -> i) in
            let r1 = Parallel.Pool.map pool (fun x -> x + 1) a in
            let r2 = Parallel.Pool.map pool (fun x -> x * x) a in
            Alcotest.(check bool) "first map" true
              (Array.for_all2 (fun x y -> y = x + 1) a r1);
            Alcotest.(check bool) "second map" true
              (Array.for_all2 (fun x y -> y = x * x) a r2);
            Alcotest.(check int) "empty map" 0
              (Array.length (Parallel.Pool.map pool (fun x -> x) [||]))));
    Alcotest.test_case "pool re-raises worker exceptions and survives them" `Quick
      (fun () ->
        let pool = Parallel.Pool.create ~domains:3 () in
        Fun.protect
          ~finally:(fun () -> Parallel.Pool.shutdown pool)
          (fun () ->
            (try
               ignore
                 (Parallel.Pool.map pool
                    (fun x -> if x = 7 then failwith "boom" else x)
                    (Array.init 20 (fun i -> i)));
               Alcotest.fail "expected failure"
             with Failure msg -> Alcotest.(check string) "boom" "boom" msg);
            (* The pool is still usable after a poisoned job. *)
            let r = Parallel.Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
            Alcotest.(check bool) "recovered" true (r = [| 2; 3; 4 |])));
    Alcotest.test_case "guided chunking keeps results order-stable" `Quick (fun () ->
        (* Dynamic chunk sizes must never reorder results: each item's
           value lands at its input index, whatever schedule the workers
           race into. Uneven per-item cost makes the claim pattern
           irregular on purpose. *)
        let n = 500 in
        let a = Array.init n (fun i -> i) in
        let f x =
          if x mod 17 = 0 then begin
            let s = ref 0 in
            for k = 1 to 20_000 do
              s := !s + (k mod 7)
            done;
            ignore !s
          end;
          x * 3
        in
        let expected = Array.map f a in
        for domains = 1 to 4 do
          let r = Parallel.map ~domains f a in
          Alcotest.(check bool)
            (Printf.sprintf "map order-stable at %d domains" domains)
            true (r = expected)
        done;
        let pool = Parallel.Pool.create ~domains:4 () in
        Fun.protect
          ~finally:(fun () -> Parallel.Pool.shutdown pool)
          (fun () ->
            for _ = 1 to 3 do
              let r = Parallel.Pool.map pool f a in
              Alcotest.(check bool) "pool map order-stable" true (r = expected)
            done));
    Alcotest.test_case "pool rejects maps after shutdown" `Quick (fun () ->
        let pool = Parallel.Pool.create ~domains:2 () in
        Parallel.Pool.shutdown pool;
        Parallel.Pool.shutdown pool (* idempotent *);
        Alcotest.(check bool) "raises" true
          (try
             ignore (Parallel.Pool.map pool (fun x -> x) [| 1 |]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "incumbent keeps the best value under races" `Quick (fun () ->
        let inc = Parallel.Incumbent.create ~better:(fun a b -> a < b) () in
        Alcotest.(check bool) "empty" true (Parallel.Incumbent.get inc = None);
        Alcotest.(check bool) "first improves" true (Parallel.Incumbent.improve inc 10);
        Alcotest.(check bool) "worse does not" false (Parallel.Incumbent.improve inc 12);
        Alcotest.(check bool) "better does" true (Parallel.Incumbent.improve inc 3);
        Alcotest.(check bool) "value" true (Parallel.Incumbent.get inc = Some 3);
        (* Hammer it from several domains; the minimum must win. *)
        ignore
          (Parallel.map ~domains:4
             (fun x -> Parallel.Incumbent.improve inc x)
             (Array.init 100 (fun i -> 100 - i)));
        Alcotest.(check bool) "global min" true (Parallel.Incumbent.get inc = Some 1));
    Alcotest.test_case "lru caches, refreshes and evicts" `Quick (fun () ->
        Alcotest.check_raises "capacity must be positive"
          (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
            ignore (Lru.create ~capacity:0));
        let c = Lru.create ~capacity:2 in
        Alcotest.(check (option int)) "miss" None (Lru.find c "a");
        Lru.add c "a" 1;
        Lru.add c "b" 2;
        Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
        (* "b" is now least recent; adding "c" evicts it. *)
        Lru.add c "c" 3;
        Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
        Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
        Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
        Alcotest.(check int) "length" 2 (Lru.length c);
        Alcotest.(check int) "hits" 3 (Lru.hits c);
        Alcotest.(check int) "misses" 2 (Lru.misses c);
        Lru.add c "a" 7;
        Alcotest.(check (option int)) "overwrite" (Some 7) (Lru.find c "a"));
    Alcotest.test_case "lru capacity-1 eviction order" `Quick (fun () ->
        (* The degenerate cache: every insert of a new key evicts the sole
           resident, and first/last always point at the same node. *)
        let c = Lru.create ~capacity:1 in
        Lru.add c "a" 1;
        Lru.add c "b" 2;
        Alcotest.(check (option int)) "a evicted" None (Lru.find c "a");
        Alcotest.(check (option int)) "b resident" (Some 2) (Lru.find c "b");
        Lru.add c "b" 9;
        Alcotest.(check (option int)) "overwrite keeps residency" (Some 9) (Lru.find c "b");
        Alcotest.(check int) "length stays 1" 1 (Lru.length c);
        Lru.add c "c" 3;
        Alcotest.(check (option int)) "b evicted in turn" None (Lru.find c "b");
        Alcotest.(check (option int)) "c resident" (Some 3) (Lru.find c "c"));
    Alcotest.test_case "lru remove and clear" `Quick (fun () ->
        let c = Lru.create ~capacity:3 in
        Lru.add c "a" 1;
        Lru.add c "b" 2;
        Lru.remove c "nope" (* no-op *);
        Lru.remove c "a";
        Alcotest.(check int) "length after remove" 1 (Lru.length c);
        Alcotest.(check (option int)) "removed is gone" None (Lru.find c "a");
        Alcotest.(check (option int)) "other survives" (Some 2) (Lru.find c "b");
        (* Removing the recency-list head/tail must not corrupt the links:
           fill up, remove the middle, and evict through the rest. *)
        Lru.add c "c" 3;
        Lru.add c "d" 4;
        Lru.remove c "c";
        Lru.add c "e" 5;
        Lru.add c "f" 6 (* evicts "b", the least recent *);
        Alcotest.(check (option int)) "evicted after remove" None (Lru.find c "b");
        Alcotest.(check bool) "survivors intact" true
          (Lru.find c "d" = Some 4 && Lru.find c "e" = Some 5 && Lru.find c "f" = Some 6);
        let h, m = (Lru.hits c, Lru.misses c) in
        Alcotest.(check bool) "counters moved" true (h > 0 && m > 0);
        Lru.clear c;
        Alcotest.(check int) "cleared length" 0 (Lru.length c);
        Alcotest.(check int) "cleared hits" 0 (Lru.hits c);
        Alcotest.(check int) "cleared misses" 0 (Lru.misses c);
        (* The cache is fully usable after clear. *)
        Lru.add c "x" 7;
        Alcotest.(check (option int)) "usable after clear" (Some 7) (Lru.find c "x");
        Alcotest.(check int) "fresh accounting" 1 (Lru.hits c));
    Alcotest.test_case "lru on_evict and filter (bounded session table)" `Quick
      (fun () ->
        (* [on_evict] fires exactly once per capacity eviction with the
           evicted binding — the service's session table relies on it to
           release the evicted session — and not on overwrites or
           explicit removes. *)
        let evicted = ref [] in
        let on_evict k v = evicted := (k, v) :: !evicted in
        let c = Lru.create ~capacity:2 in
        Lru.add ~on_evict c "s1" 1;
        Lru.add ~on_evict c "s2" 2;
        Alcotest.(check (list (pair string int))) "no eviction below capacity" [] !evicted;
        Lru.add ~on_evict c "s1" 10;
        Alcotest.(check (list (pair string int))) "overwrite does not evict" [] !evicted;
        Lru.add ~on_evict c "s3" 3;
        (* "s2" was least recent after s1's overwrite refreshed it *)
        Alcotest.(check (list (pair string int))) "LRU binding evicted" [ ("s2", 2) ] !evicted;
        Lru.remove c "s1";
        Alcotest.(check (list (pair string int))) "remove does not call on_evict"
          [ ("s2", 2) ] !evicted;
        (* [filter] drops rejected bindings without touching accounting
           for the keepers *)
        let c = Lru.create ~capacity:4 in
        List.iter (fun (k, v) -> Lru.add c k v) [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ];
        Lru.filter c ~f:(fun _ v -> v mod 2 = 0);
        Alcotest.(check int) "filter keeps matches" 2 (Lru.length c);
        Alcotest.(check (option int)) "odd dropped" None (Lru.find c "a");
        Alcotest.(check (option int)) "even kept" (Some 2) (Lru.find c "b");
        (* recency links survive filtering: evict through what is left *)
        Lru.add c "e" 5;
        Lru.add c "f" 6;
        Lru.add c "g" 7;
        Alcotest.(check int) "back at capacity" 4 (Lru.length c);
        Alcotest.(check (option int)) "d evicted after filter" None (Lru.find c "d"));
    Alcotest.test_case "lru keep-filter pins entries past eviction" `Quick (fun () ->
        (* [?keep] protects bindings from capacity eviction (the service
           pins sessions with in-flight resolves this way): the victim
           walk skips kept entries, the table may transiently overflow,
           and [shrink] restores the bound once entries stop being kept. *)
        let pinned = ref [ "s1" ] in
        let keep k _ = List.mem k !pinned in
        let evicted = ref [] in
        let on_evict k v = evicted := (k, v) :: !evicted in
        let c = Lru.create ~capacity:2 in
        Lru.add ~on_evict ~keep c "s1" 1;
        Lru.add ~on_evict ~keep c "s2" 2;
        (* s1 is LRU but pinned: the eviction falls on s2 instead. *)
        Lru.add ~on_evict ~keep c "s3" 3;
        Alcotest.(check (list (pair string int))) "pinned LRU skipped, next evicted"
          [ ("s2", 2) ] !evicted;
        Alcotest.(check (option int)) "pinned survives" (Some 1) (Lru.find c "s1");
        (* Pin everything resident: an add must overflow rather than drop
           a pinned binding. *)
        pinned := [ "s1"; "s3"; "s4" ];
        Lru.add ~on_evict ~keep c "s4" 4;
        Alcotest.(check int) "table overflows while all pinned" 3 (Lru.length c);
        Alcotest.(check (list (pair string int))) "nothing new evicted"
          [ ("s2", 2) ] !evicted;
        (* shrink with everything pinned is a no-op... *)
        Lru.shrink ~on_evict ~keep c;
        Alcotest.(check int) "shrink refuses to break pins" 3 (Lru.length c);
        (* ...and once the pins drop it evicts oldest-first back to
           capacity. *)
        pinned := [];
        Lru.shrink ~on_evict ~keep c;
        Alcotest.(check int) "shrink restores the bound" 2 (Lru.length c);
        (* The "pinned survives" probe above promoted s1, so s3 is the
           least recent by now and shrink evicts it. *)
        Alcotest.(check (option int)) "LRU evicted by shrink" None (Lru.find c "s3");
        Alcotest.(check bool) "recent survive shrink" true
          (Lru.find c "s1" = Some 1 && Lru.find c "s4" = Some 4));
    Alcotest.test_case "lru add never evicts the entry it just inserted" `Quick
      (fun () ->
        (* Regression: with every *older* entry pinned, the victim walk
           used to fall through to the front node — the binding [add] had
           just inserted — so opening a session against a fully-pinned
           table returned a handle that was already evicted (and
           [on_evict] released its resources while the caller was about
           to use them). The unpinned newcomer must survive; the table
           overflows instead. *)
        let keep k _ = k <> "new" in
        let evicted = ref [] in
        let on_evict k v = evicted := (k, v) :: !evicted in
        let c = Lru.create ~capacity:1 in
        Lru.add ~on_evict ~keep c "old" 1;
        Lru.add ~on_evict ~keep c "new" 2;
        Alcotest.(check (list (pair string int))) "no self-eviction" [] !evicted;
        Alcotest.(check (option int)) "newcomer resident" (Some 2) (Lru.find c "new");
        Alcotest.(check int) "table overflowed instead" 2 (Lru.length c);
        (* Once the elder unpins, shrink evicts it (it is the LRU entry)
           and the bound is restored with the newcomer still resident. *)
        Lru.shrink ~on_evict c;
        Alcotest.(check (list (pair string int)))
          "elder evicted by shrink" [ ("old", 1) ] !evicted;
        Alcotest.(check int) "bound restored" 1 (Lru.length c);
        Alcotest.(check (option int)) "newcomer still resident" (Some 2)
          (Lru.find c "new"));
    Alcotest.test_case "vec bigarray basics (make/fill/blit/grow)" `Quick (fun () ->
        let a = Vec.F.make 4 1.5 in
        Alcotest.(check int) "length" 4 (Vec.F.length a);
        Alcotest.(check (float 0.0)) "init fill" 1.5 (Vec.F.get a 3);
        Vec.F.set a 2 7.0;
        Vec.F.fill_range a 0 2 0.0;
        Alcotest.(check (float 0.0)) "fill_range start" 0.0 (Vec.F.get a 0);
        Alcotest.(check (float 0.0)) "fill_range stop" 7.0 (Vec.F.get a 2);
        let b = Vec.F.make 4 0.0 in
        Vec.F.blit a 0 b 0 4;
        Alcotest.(check (float 0.0)) "blit" 7.0 (Vec.F.get b 2);
        let g = Vec.F.grow a 8 0.25 in
        Alcotest.(check int) "grown length" 8 (Vec.F.length g);
        Alcotest.(check (float 0.0)) "grown prefix preserved" 7.0 (Vec.F.get g 2);
        Alcotest.(check (float 0.0)) "grown tail filled" 0.25 (Vec.F.get g 7);
        let i = Vec.I.of_array [| 3; 1; 4 |] in
        Alcotest.(check (array int)) "int round trip" [| 3; 1; 4 |] (Vec.I.to_array i));
    Alcotest.test_case "arena scratch is physically reused per domain" `Quick
      (fun () ->
        (* The borrowing contract behind the zero-allocation hot paths:
           steady-state [get] returns the physically same buffer and the
           grows counter stays put; an over-capacity request reallocates
           (amortized doubling, prefix preserved) and counts one grow. *)
        let s = Arena.floats () in
        let g0 = Arena.grows s in
        let a = Arena.get s 64 in
        Alcotest.(check int) "warm-up grow counted" (g0 + 1) (Arena.grows s);
        Vec.F.set a 63 42.0;
        let b = Arena.get s 64 in
        Alcotest.(check bool) "steady state: same buffer" true (a == b);
        Alcotest.(check bool) "steady state: smaller request too" true
          (Arena.get s 8 == a);
        Alcotest.(check int) "no further grows" (g0 + 1) (Arena.grows s);
        let big = Arena.get s (Arena.capacity s + 1) in
        Alcotest.(check bool) "over capacity reallocates" true (not (big == a));
        Alcotest.(check (float 0.0)) "prefix preserved across the grow" 42.0
          (Vec.F.get big 63);
        Alcotest.(check int) "grow counted" (g0 + 2) (Arena.grows s);
        (* Another domain gets its own lazily-created buffer — never the
           physically shared one (no contention, no cross-domain
           borrowing). *)
        let d = Domain.spawn (fun () -> Arena.get s 64 == big) in
        Alcotest.(check bool) "other domain has its own buffer" false
          (Domain.join d);
        let ints = Arena.ints () in
        let ia = Arena.get ints 16 in
        Alcotest.(check bool) "int slot steady state" true (Arena.get ints 16 == ia);
        let by = Arena.bytes () in
        let ba = Arena.get by 16 in
        Alcotest.(check bool) "bytes slot steady state" true (Arena.get by 16 == ba));
    Alcotest.test_case "monotonic clock advances and never steps back" `Quick
      (fun () ->
        let module Mclock = Repro_util.Mclock in
        let t0 = Mclock.now () in
        let prev = ref t0 in
        for _ = 1 to 10_000 do
          let t = Mclock.now () in
          if t < !prev then
            Alcotest.failf "clock stepped back: %.9f after %.9f" t !prev;
          prev := t
        done;
        (* It measures real elapsed time, to loose tolerance. *)
        let t1 = Mclock.now () in
        Unix.sleepf 0.02;
        let dt = Mclock.now () -. t1 in
        Alcotest.(check bool)
          (Printf.sprintf "sleep 20ms measured as %.1fms" (1000.0 *. dt))
          true
          (dt >= 0.015 && dt < 5.0));
    Alcotest.test_case "serial round-trips through of_string/to_string" `Quick
      (fun () ->
        let text =
          "# demo\nnodes 4\nroot 1\nedge 0 1 2\nedge 1 2 1/3\nedge 2 3 0.5\n\
           edge 0 3 7\ntree 0 1 3\nsubsidy 2 3/4\n"
        in
        let t = Serial.of_string text in
        (* The float stack quantizes decimal weights on parse, so compare
           from the first emitted form onward: one more round trip must be
           the identity. *)
        let t' = Serial.of_string (Serial.to_string t) in
        let t'' = Serial.of_string (Serial.to_string t') in
        Alcotest.(check string) "fixed point" (Serial.to_string t') (Serial.to_string t'');
        Alcotest.(check int) "root" 1 t'.Serial.root;
        Alcotest.(check (option (list int))) "tree" (Some [ 0; 1; 3 ]) t'.Serial.tree_edge_ids;
        (* The same text loads exactly into the rational stack too. *)
        let r = SerialR.of_string text in
        let r' = SerialR.of_string (SerialR.to_string r) in
        Alcotest.(check string) "rational fixed point" (SerialR.to_string r)
          (SerialR.to_string r'));
    Alcotest.test_case "serial rejects malformed directives with line numbers" `Quick
      (fun () ->
        let rejects ~line text =
          match Serial.of_string text with
          | exception Failure msg ->
              let prefix = Printf.sprintf "Serial line %d:" line in
              if not (String.length msg >= String.length prefix
                      && String.sub msg 0 (String.length prefix) = prefix)
              then Alcotest.failf "wrong error %S for %S" msg text
          | _ -> Alcotest.failf "accepted malformed input %S" text
        in
        rejects ~line:2 "nodes 3\nnodes 3 trailing garbage\n";
        rejects ~line:2 "nodes 3\nroot 0 0\n";
        rejects ~line:2 "nodes 3\nedge 0 1\n";
        rejects ~line:2 "nodes 3\nedge 0 1 2 junk\n";
        rejects ~line:2 "nodes 3\nedge 0 one 2\n";
        rejects ~line:2 "nodes 3\ntree\n";
        rejects ~line:2 "nodes 3\ntree 0 x\n";
        rejects ~line:2 "nodes 3\nsubsidy 0\n";
        rejects ~line:2 "nodes 3\nfrobnicate 1\n";
        rejects ~line:3 "nodes 3\nedge 0 1 1\nedge 1 2 1/0\n";
        (* Comments and blank lines are still fine. *)
        ignore (Serial.of_string "# header\n\nnodes 2\nedge 0 1 1 # weight one\n"));
  ]

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let property_tests =
  [
    prop "heap drains in sorted order" QCheck2.Gen.(list_size (int_range 0 60) int)
      (fun xs ->
        let h = Heap.create ~cmp:compare in
        List.iter (Heap.push h) xs;
        Heap.to_sorted_list h = List.sort compare xs);
    prop "heap interleaved push/pop maintains the invariant"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Prng.create seed in
        let h = Heap.create ~cmp:compare in
        let model = ref [] in
        let ok = ref true in
        for _ = 1 to 200 do
          if Prng.bool rng || !model = [] then begin
            let x = Prng.int rng 1000 in
            Heap.push h x;
            model := x :: !model
          end
          else begin
            let expected = List.fold_left min max_int !model in
            (match Heap.pop h with
            | Some v when v = expected ->
                model :=
                  (let removed = ref false in
                   List.filter
                     (fun y ->
                       if (not !removed) && y = expected then (
                         removed := true;
                         false)
                       else true)
                     !model)
            | _ -> ok := false)
          end
        done;
        !ok && Heap.size h = List.length !model);
    prop "harmonic is monotone and concave-ish" QCheck2.Gen.(int_range 1 5000) (fun n ->
        Harmonic.h (n + 1) > Harmonic.h n
        && Harmonic.h (n + 1) -. Harmonic.h n <= 1.0 /. float_of_int n +. 1e-12);
    prop "parallel map equals sequential map" QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Prng.create seed in
        let a = Array.init (Prng.int_in_range rng ~lo:1 ~hi:64) (fun _ -> Prng.int rng 1000) in
        Parallel.map ~domains:3 (fun x -> (2 * x) + 1) a = Array.map (fun x -> (2 * x) + 1) a);
  ]

let suite = unit_tests @ property_tests
