(* Incremental re-solve sessions ([Sne_session]): after every mutation the
   warm resolve must land on the same optimum a cold [cutting_plane] solve
   of the freshly re-parsed instance reaches — for both float kernels —
   and on small instances the exact-rational solver certifies both. Also
   pins the retention stats (pool growth, cut reuse, basis warm starts)
   and digest stability across mutations. *)

module SessD = Repro_core.Sne_session.Dense
module SessS = Repro_core.Sne_session.Sparse
module SneD = Repro_core.Sne_lp.Float
module SneS = Repro_core.Sne_lp.Float_sparse
module SneR = Repro_core.Sne_lp.Rat
module Ser = Repro_core.Serial.Float
module SerR = Repro_core.Serial.Rat
module Instances = Repro_core.Instances
module G = SneD.G
module Gm = SneD.Gm
module Rat = Repro_field.Field.Rat
module Digestx = Repro_util.Digestx

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b)

let instance ?(n = 10) ?(extra = 8) seed =
  let i = Instances.random ~dist:(Instances.Integer 9) ~n ~extra ~seed () in
  {
    Ser.graph = i.Instances.graph;
    root = i.Instances.root;
    tree_edge_ids = None;
    subsidy = [];
    budget = None;
  }

let cold_dense text =
  let inst = Ser.of_string text in
  let tree = Ser.target_tree inst in
  let spec = SneD.Gm.broadcast ~graph:inst.Ser.graph ~root:inst.Ser.root in
  let state = SneD.Gm.Broadcast.state_of_tree spec ~root:inst.Ser.root tree in
  let r, st = SneD.cutting_plane spec ~state in
  Alcotest.(check bool) "cold dense converged" true st.SneD.converged;
  r.SneD.cost

let cold_sparse text =
  let inst = Ser.of_string text in
  let tree = Ser.target_tree inst in
  let spec = SneS.Gm.broadcast ~graph:inst.Ser.graph ~root:inst.Ser.root in
  let state = SneS.Gm.Broadcast.state_of_tree spec ~root:inst.Ser.root tree in
  let r, st = SneS.cutting_plane spec ~state in
  Alcotest.(check bool) "cold sparse converged" true st.SneS.converged;
  r.SneS.cost

let cold_rational text =
  let inst = SerR.of_string text in
  let tree = SerR.target_tree inst in
  let spec = SneR.Gm.broadcast ~graph:inst.SerR.graph ~root:inst.SerR.root in
  let state = SneR.Gm.Broadcast.state_of_tree spec ~root:inst.SerR.root tree in
  let r, st = SneR.cutting_plane spec ~state in
  Alcotest.(check bool) "rational converged" true st.SneR.converged;
  Rat.to_float r.SneR.cost

(* A fixed churn script exercising every delta constructor. *)
let script =
  [
    "edge_weight 0 7";
    "edge_weight 3 1";
    "add_player 1 2 4 3";
    "edge_weight 2 9";
    "remove_player 2";
    "edge_weight 1 2";
    "add_player 0 5";
    "set_budget 40";
    "edge_weight 4 3";
  ]

let test_dense_matches_cold () =
  let s = SessD.create (instance 11) in
  let _, st0 = SessD.resolve s in
  Alcotest.(check bool) "first resolve is cold" false st0.SessD.warm;
  List.iter
    (fun line ->
      ignore (SessD.mutate s (Ser.Delta.of_string line));
      let r, st = SessD.resolve s in
      Alcotest.(check bool) "resolve converged" true st.SessD.converged;
      let text = Ser.to_string (SessD.instance s) in
      let cold = cold_dense text in
      if not (close r.SessD.Sne.cost cold) then
        Alcotest.failf "after %S: warm %.9f != cold %.9f" line r.SessD.Sne.cost cold;
      Alcotest.(check string) "digest = canonical digest" (Digestx.of_string text)
        (SessD.digest s))
    script

let test_sparse_matches_cold () =
  let s = SessS.create (instance 12) in
  ignore (SessS.resolve s);
  List.iter
    (fun line ->
      ignore (SessS.mutate s (Ser.Delta.of_string line));
      let r, st = SessS.resolve s in
      Alcotest.(check bool) "resolve converged" true st.SessS.converged;
      let cold = cold_sparse (Ser.to_string (SessS.instance s)) in
      if not (close r.SessS.Sne.cost cold) then
        Alcotest.failf "after %S: warm %.9f != cold %.9f" line r.SessS.Sne.cost cold)
    script

let test_rational_certifies_both () =
  let sd = SessD.create (instance 13) and ss = SessS.create (instance 13) in
  ignore (SessD.resolve sd);
  ignore (SessS.resolve ss);
  List.iter
    (fun line ->
      let d = Ser.Delta.of_string line in
      ignore (SessD.mutate sd d);
      ignore (SessS.mutate ss d);
      let rd, _ = SessD.resolve sd and rs, _ = SessS.resolve ss in
      let exact = cold_rational (Ser.to_string (SessD.instance sd)) in
      if not (close rd.SessD.Sne.cost exact) then
        Alcotest.failf "after %S: dense %.9f != exact %.9f" line rd.SessD.Sne.cost exact;
      if not (close rs.SessS.Sne.cost exact) then
        Alcotest.failf "after %S: sparse %.9f != exact %.9f" line rs.SessS.Sne.cost exact)
    script

let test_subsidy_is_equilibrium () =
  (* the returned subsidies actually enforce the target tree (Lemma 2) *)
  let s = SessD.create (instance ~n:12 ~extra:14 17) in
  ignore (SessD.resolve s);
  List.iter
    (fun line ->
      ignore (SessD.mutate s (Ser.Delta.of_string line));
      let r, _ = SessD.resolve s in
      let inst = SessD.instance s in
      let tree = Ser.target_tree inst in
      let spec = Gm.broadcast ~graph:inst.Ser.graph ~root:inst.Ser.root in
      Alcotest.(check bool)
        ("equilibrium after " ^ line) true
        (Gm.Broadcast.is_tree_equilibrium ~subsidy:r.SessD.Sne.subsidy spec tree))
    [ "edge_weight 0 9"; "edge_weight 5 1"; "add_player 3 2"; "remove_player 1" ]

let test_retention_stats () =
  let s = SessD.create (instance ~n:12 ~extra:14 19) in
  let _, st0 = SessD.resolve s in
  Alcotest.(check bool) "no reuse on the first resolve" true (st0.SessD.reused_cuts = 0);
  Alcotest.(check int) "generation starts at 0" 0 (SessD.generation s);
  let reused = ref 0 and warm = ref 0 in
  List.iteri
    (fun i line ->
      ignore (SessD.mutate s (Ser.Delta.of_string line));
      Alcotest.(check int) "generation counts deltas" (i + 1) (SessD.generation s);
      let _, st = SessD.resolve s in
      reused := !reused + st.SessD.reused_cuts;
      if st.SessD.warm then incr warm;
      Alcotest.(check bool) "pool_size consistent" true
        (st.SessD.pool_size = SessD.pool_size s))
    [ "edge_weight 0 1"; "edge_weight 1 1"; "edge_weight 2 1"; "edge_weight 0 8" ];
  (* weight churn on a fixed topology: the pool must actually carry cuts
     across resolves and the basis must warm-start at least once *)
  Alcotest.(check bool) "cuts were reused across resolves" true (!reused > 0);
  Alcotest.(check bool) "some resolve warm-started" true (!warm > 0)

let test_master_stays_resident_on_weight_deltas () =
  (* The tentpole satellite: weight-only deltas keep the kernel state
     resident — the master is re-bound in place by [patch] (rhs, objective
     and box bounds move; the constraint matrix does not), never rebuilt.
     Structural deltas change the variable set and must rebuild. Counter
     deltas are observed through the shared Obs registry. *)
  let module O = Repro_obs.Obs in
  let rebuilds = O.counter "service.session.master_rebuilds" in
  let patched = O.counter "service.session.master_patched" in
  O.with_enabled true @@ fun () ->
  let s = SessS.create (instance ~n:12 ~extra:14 29) in
  ignore (SessS.resolve s);
  (* One settling resolve so the first resolve's fresh cuts are part of the
     retained pool the resident master was last built against. *)
  ignore (SessS.resolve s);
  let r0 = O.value rebuilds and p0 = O.value patched in
  List.iter
    (fun line ->
      ignore (SessS.mutate s (Ser.Delta.of_string line));
      let r, st = SessS.resolve s in
      Alcotest.(check bool) ("converged after " ^ line) true st.SessS.converged;
      let cold = cold_sparse (Ser.to_string (SessS.instance s)) in
      if not (close r.SessS.Sne.cost cold) then
        Alcotest.failf "after %S: patched %.9f != cold %.9f" line r.SessS.Sne.cost cold)
    [ "edge_weight 0 6"; "edge_weight 3 2"; "edge_weight 1 5"; "edge_weight 4 1" ];
  Alcotest.(check int) "zero master rebuilds on weight-only deltas" r0 (O.value rebuilds);
  Alcotest.(check bool) "every weight-only resolve patched in place" true
    (O.value patched >= p0 + 4);
  (* A structural delta (new player = new node and edge) changes the
     master's variable set: patch must refuse and the rebuild path fire. *)
  ignore (SessS.mutate s (Ser.Delta.of_string "add_player 2 3"));
  let r, _ = SessS.resolve s in
  let cold = cold_sparse (Ser.to_string (SessS.instance s)) in
  Alcotest.(check bool) "structural resolve still exact" true (close r.SessS.Sne.cost cold);
  Alcotest.(check bool) "structural delta rebuilds the master" true
    (O.value rebuilds > r0)

let test_invalid_delta_leaves_session_intact () =
  let s = SessD.create (instance 23) in
  ignore (SessD.resolve s);
  let dg = SessD.digest s in
  let gen = SessD.generation s in
  Alcotest.(check bool) "invalid delta raises" true
    (try
       ignore (SessD.mutate s (Ser.Delta.Edge_weight { edge = 999; weight = 1.0 }));
       false
     with Failure _ -> true);
  Alcotest.(check string) "instance untouched" dg (SessD.digest s);
  Alcotest.(check int) "generation untouched" gen (SessD.generation s)

let suite =
  [
    Alcotest.test_case "dense session matches cold solves across churn" `Quick
      test_dense_matches_cold;
    Alcotest.test_case "sparse session matches cold solves across churn" `Quick
      test_sparse_matches_cold;
    Alcotest.test_case "exact-rational certificate for both kernels" `Quick
      test_rational_certifies_both;
    Alcotest.test_case "resolved subsidies enforce the tree" `Quick
      test_subsidy_is_equilibrium;
    Alcotest.test_case "pool/basis retention stats" `Quick test_retention_stats;
    Alcotest.test_case "resident master patches in place on weight deltas" `Quick
      test_master_stays_resident_on_weight_deltas;
    Alcotest.test_case "invalid delta leaves the session intact" `Quick
      test_invalid_delta_leaves_session_intact;
  ]
