(* The request service: typed submit/await round trips, cross-request
   caching (byte-identical replays), deadline expiry aborting a long SND
   search mid-stream, backpressure rejection at the queue high-water mark,
   structured parse errors for malformed wire lines, and the
   Pool.map_result fault-isolation hook it is all built on. *)

module Service = Repro_service.Service
module Wire = Repro_service.Service_wire
module Par = Repro_parallel.Parallel
module Obs = Repro_obs.Obs
module Instances = Repro_core.Instances
module Serial = Repro_core.Serial.Float

let payload ?(seed = 1) ?(n = 8) ?(extra = 5) () =
  let inst = Instances.random ~dist:(Instances.Integer 10) ~n ~extra ~seed () in
  Serial.to_string
    {
      Serial.graph = inst.Instances.graph;
      root = inst.Instances.root;
      tree_edge_ids = None;
      subsidy = [];
      budget = None;
    }

let req ?(id = "r") ?deadline_ms ?(priority = 0) ?(stream = false) kind payload =
  { Service.id; kind; payload; deadline_ms; priority; stream }

let lp3 = Service.Sne { meth = `Lp3; backend = Service.Dense; max_rounds = 500 }

(* A search guaranteed to run long: a hopeless (negative) budget can
   never be met, so no incumbent ever stops the stream and the engine
   grinds through the whole weight-ordered spanning-tree enumeration of a
   dense instance (astronomically many trees at n=14, one MST each).
   Deadlines must abort it mid-stream. *)
let slow_snd = Service.Snd { budget = -1.0 }
let slow_payload = payload ~seed:5 ~n:14 ~extra:14 ()

let ok_outcome = function
  | { Service.result = Ok o; _ } -> o
  | { Service.result = Error e; _ } ->
      Alcotest.failf "expected Ok response, got error %s" (Wire.reason_slug e)

let err_reason = function
  | { Service.result = Error e; _ } -> e
  | { Service.result = Ok _; _ } -> Alcotest.fail "expected Error response"

let test_basic_roundtrip () =
  Service.with_service (fun svc ->
      let p = payload () in
      let resps =
        Service.run_batch svc
          [
            req ~id:"a" lp3 p;
            req ~id:"b" Service.Enforce p;
            req ~id:"c" Service.Check p;
            req ~id:"d" (Service.Snd { budget = 1e6 }) p;
          ]
      in
      Alcotest.(check (list string))
        "ids echoed in order" [ "a"; "b"; "c"; "d" ]
        (List.map (fun r -> r.Service.id) resps);
      (match ok_outcome (List.nth resps 0) with
      | Service.Subsidy { equilibrium; cost; _ } ->
          Alcotest.(check bool) "lp3 plan certified" true equilibrium;
          Alcotest.(check bool) "lp3 cost finite" true (Float.is_finite cost)
      | _ -> Alcotest.fail "expected subsidy outcome");
      (match ok_outcome (List.nth resps 2) with
      | Service.Equilibrium { tree_weight; _ } ->
          Alcotest.(check bool) "check weight positive" true (tree_weight > 0.0)
      | _ -> Alcotest.fail "expected check outcome");
      match ok_outcome (List.nth resps 3) with
      | Service.Design { subsidy_cost; _ } ->
          Alcotest.(check bool) "huge budget affords the MST" true
            (subsidy_cost < 1e6)
      | _ -> Alcotest.fail "expected design outcome")

let test_cache_hit_byte_identical () =
  Service.with_service (fun svc ->
      let p = payload ~seed:2 () in
      let r1 = Service.await svc (Service.submit svc (req ~id:"x1" lp3 p)) in
      let r2 = Service.await svc (Service.submit svc (req ~id:"x2" lp3 p)) in
      Alcotest.(check bool) "first solve is not a hit" false r1.Service.cache_hit;
      Alcotest.(check bool) "replay is a hit" true r2.Service.cache_hit;
      Alcotest.(check string) "byte-identical outcome"
        (Wire.outcome_to_string (ok_outcome r1))
        (Wire.outcome_to_string (ok_outcome r2));
      (* Semantically identical text (comments, blank lines) hits too:
         the key digests the canonical re-serialization of the parse. *)
      let p' = "# replayed instance\n\n" ^ p in
      let r3 = Service.await svc (Service.submit svc (req ~id:"x3" lp3 p')) in
      Alcotest.(check bool) "canonicalized payload hits" true r3.Service.cache_hit;
      Alcotest.(check string) "same digest"
        (Service.cache_key (req lp3 p))
        (Service.cache_key (req lp3 p'));
      (* A different request kind against the same instance must miss. *)
      let r4 = Service.await svc (Service.submit svc (req ~id:"x4" Service.Check p)) in
      Alcotest.(check bool) "different kind misses" false r4.Service.cache_hit)

let test_deadline_expiry_cancels_snd () =
  Obs.with_enabled true (fun () ->
      let before = Obs.value (Obs.counter "service.deadline_expired") in
      let t0 = Unix.gettimeofday () in
      Service.with_service (fun svc ->
          let r =
            Service.await svc
              (Service.submit svc (req ~id:"slow" ~deadline_ms:150.0 slow_snd slow_payload))
          in
          (match err_reason r with
          | Service.Deadline_expired -> ()
          | e -> Alcotest.failf "expected deadline_expired, got %s" (Wire.reason_slug e));
          Alcotest.(check bool) "marked not cached" false r.Service.cache_hit);
      let elapsed = Unix.gettimeofday () -. t0 in
      (* The full n=14 stream takes minutes; an enforced deadline means the
         search actually aborted mid-stream, not after completion. *)
      Alcotest.(check bool)
        (Printf.sprintf "aborted promptly (%.1fs)" elapsed)
        true (elapsed < 30.0);
      Alcotest.(check bool) "service.deadline_expired bumped" true
        (Obs.value (Obs.counter "service.deadline_expired") > before))

let test_client_cancel () =
  Service.with_service ~workers:1 ~batch:1 (fun svc ->
      let tk = Service.submit svc (req ~id:"c" slow_snd slow_payload) in
      (* Whether it is still queued or already running, cancellation must
         turn it into a structured Cancelled response. *)
      Service.cancel svc tk;
      match err_reason (Service.await svc tk) with
      | Service.Cancelled -> ()
      | e -> Alcotest.failf "expected cancelled, got %s" (Wire.reason_slug e))

let spin_until ?(timeout_s = 30.0) what pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout_s do
    Domain.cpu_relax ()
  done;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

let test_backpressure_rejects () =
  Obs.with_enabled true (fun () ->
      let before = Obs.value (Obs.counter "service.rejected") in
      Service.with_service ~workers:1 ~batch:1 ~queue_limit:2 (fun svc ->
          (* Occupy the only worker with a long search (deadline-bounded so
             the test always terminates), then fill the queue to its
             high-water mark; the next submission must bounce. *)
          let blocker =
            Service.submit svc
              (req ~id:"blocker" ~deadline_ms:3000.0 slow_snd slow_payload)
          in
          spin_until "the blocker to start" (fun () -> Service.inflight svc = 1);
          let q1 =
            Service.submit svc (req ~id:"q1" ~deadline_ms:10000.0 lp3 (payload ()))
          in
          let q2 =
            Service.submit svc (req ~id:"q2" ~deadline_ms:10000.0 lp3 (payload ()))
          in
          Alcotest.(check int) "queue at high-water" 2 (Service.pending svc);
          let rejected = Service.submit svc (req ~id:"q3" lp3 (payload ())) in
          (match Service.poll_response svc rejected with
          | Some r -> (
              match err_reason r with
              | Service.Overloaded -> ()
              | e -> Alcotest.failf "expected overloaded, got %s" (Wire.reason_slug e))
          | None -> Alcotest.fail "rejection must complete the ticket immediately");
          (* The queued-but-accepted requests still complete normally once
             the blocker's deadline frees the worker. *)
          ignore (ok_outcome (Service.await svc q1));
          ignore (ok_outcome (Service.await svc q2));
          match err_reason (Service.await svc blocker) with
          | Service.Deadline_expired -> ()
          | e -> Alcotest.failf "blocker: expected deadline_expired, got %s"
                   (Wire.reason_slug e));
      Alcotest.(check bool) "service.rejected bumped" true
        (Obs.value (Obs.counter "service.rejected") > before))

let test_malformed_payload_is_structured () =
  Service.with_service (fun svc ->
      let bad = "nodes 3\nroot 0\nedge 0 1 2\nedge 1 2 oops\n" in
      let r = Service.await svc (Service.submit svc (req ~id:"bad" lp3 bad)) in
      match err_reason r with
      | Service.Parse_error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "names the line (%s)" msg)
            true
            (let open String in
             length msg >= 4 && sub msg 0 4 = "Seri")
      | e -> Alcotest.failf "expected parse_error, got %s" (Wire.reason_slug e))

let test_wire_parse_errors () =
  let bad l =
    match Wire.parse_request l with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "line %S must not parse" l
  in
  bad "";
  bad "id=1";  (* missing kind/inst *)
  bad "id=1 kind=bogus inst=nodes%202";
  bad "id=1 kind=snd inst=x";  (* snd without budget *)
  bad "id=1 kind=sne inst=x id=2";  (* duplicate key *)
  bad "id=1 kind=sne surprise=1 inst=x";  (* unknown key *)
  bad "id=1 kind=sne inst=%zz";  (* bad escape *)
  bad "id=1 kind=sne deadline_ms=-5 inst=x";
  bad "no_equals_token"

let test_wire_roundtrip () =
  let p = payload ~seed:3 () in
  let reqs =
    [
      req ~id:"w1" lp3 p;
      req ~id:"w2" ~deadline_ms:12.5 ~priority:3
        (Service.Sne { meth = `Cut; backend = Service.Sparse; max_rounds = 77 })
        p;
      req ~id:"w3" (Service.Snd { budget = 2.25 }) p;
      req ~id:"w4" Service.Enforce p;
      req ~id:"w5" Service.Check "nodes 2\nroot 0\nedge 0 1 1\n";
    ]
  in
  List.iter
    (fun r ->
      match Wire.parse_request (Wire.request_to_string r) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip %s" r.Service.id)
            true (r = r')
      | Error e -> Alcotest.failf "round trip %s failed: %s" r.Service.id e)
    reqs

(* Simple substring search (no extra dependency). *)
let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_response_emission () =
  let ok =
    {
      Service.id = "e1";
      result = Ok (Service.Equilibrium { equilibrium = true; tree_weight = 4.0 });
      cache_hit = true;
      elapsed_ms = 1.5;
    }
  in
  let s = Wire.response_to_string ok in
  Alcotest.(check bool) "one line" false (String.contains s '\n');
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "has %s" affix) true (contains ~affix s))
    [ "\"id\":\"e1\""; "\"status\":\"ok\""; "\"cache_hit\":true"; "\"type\":\"check\"" ];
  let err =
    {
      Service.id = "e2";
      result = Error (Service.Parse_error "Serial line 3: boom");
      cache_hit = false;
      elapsed_ms = 0.1;
    }
  in
  let s = Wire.response_to_string err in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "has %s" affix) true (contains ~affix s))
    [ "\"status\":\"error\""; "\"reason\":\"parse_error\""; "Serial line 3" ]

let test_priority_order () =
  (* With one worker and batch=1, a high-priority request submitted while
     the worker is busy must overtake an earlier low-priority one: it is
     dispatched first, so its end-to-end latency is strictly smaller even
     though it entered the queue later. *)
  Service.with_service ~workers:1 ~batch:1 (fun svc ->
      let blocker =
        Service.submit svc (req ~id:"b" ~deadline_ms:1500.0 slow_snd slow_payload)
      in
      spin_until "the blocker to start" (fun () -> Service.inflight svc = 1);
      let lo = Service.submit svc (req ~id:"lo" ~priority:0 lp3 (payload ~seed:11 ())) in
      let hi = Service.submit svc (req ~id:"hi" ~priority:5 lp3 (payload ~seed:12 ())) in
      ignore (Service.await svc blocker);
      let rlo = Service.await svc lo and rhi = Service.await svc hi in
      ignore (ok_outcome rlo);
      ignore (ok_outcome rhi);
      Alcotest.(check bool)
        (Printf.sprintf "hi (%.1fms) finished before lo (%.1fms)"
           rhi.Service.elapsed_ms rlo.Service.elapsed_ms)
        true
        (rhi.Service.elapsed_ms < rlo.Service.elapsed_ms))

let test_pool_map_result_isolation () =
  let pool = Par.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let results =
        Par.Pool.map_result pool
          (fun _check x ->
            if x mod 2 = 0 then failwith (Printf.sprintf "boom %d" x) else x * 10)
          [| 1; 2; 3; 4; 5 |]
      in
      Array.iteri
        (fun i r ->
          let x = i + 1 in
          match r with
          | Ok v ->
              Alcotest.(check bool) "odd survives" true (x mod 2 = 1);
              Alcotest.(check int) "value" (x * 10) v
          | Error (Failure msg) ->
              Alcotest.(check bool) "even fails" true (x mod 2 = 0);
              Alcotest.(check string) "message" (Printf.sprintf "boom %d" x) msg
          | Error e -> Alcotest.failf "unexpected exn %s" (Printexc.to_string e))
        results;
      (* A Cancelled raised by one item kills only that item. *)
      let results =
        Par.Pool.map_result pool
          (fun _check x -> if x = 2 then raise Par.Cancelled else x)
          [| 1; 2; 3 |]
      in
      Alcotest.(check bool) "slot 0 ok" true (results.(0) = Ok 1);
      Alcotest.(check bool) "slot 1 cancelled" true (results.(1) = Error Par.Cancelled);
      Alcotest.(check bool) "slot 2 ok" true (results.(2) = Ok 3))

let test_shutdown_fails_queued () =
  let svc = Service.create ~workers:1 ~batch:1 () in
  let blocker = Service.submit svc (req ~id:"b" ~deadline_ms:2000.0 slow_snd slow_payload) in
  spin_until "the blocker to start" (fun () -> Service.inflight svc = 1);
  let queued = Service.submit svc (req ~id:"q" lp3 (payload ())) in
  Service.shutdown svc;
  (match err_reason (Service.await svc queued) with
  | Service.Shutdown -> ()
  | e -> Alcotest.failf "expected shutdown, got %s" (Wire.reason_slug e));
  (* The blocker was already running: it completes with its own verdict
     (deadline expiry), not Shutdown. *)
  (match err_reason (Service.await svc blocker) with
  | Service.Deadline_expired -> ()
  | e -> Alcotest.failf "expected deadline_expired, got %s" (Wire.reason_slug e));
  (* Submissions after shutdown complete immediately as Shutdown. *)
  match err_reason (Service.await svc (Service.submit svc (req ~id:"late" lp3 (payload ())))) with
  | Service.Shutdown -> ()
  | e -> Alcotest.failf "expected shutdown, got %s" (Wire.reason_slug e)

(* ------------------------------------------------------------------ *)
(* Incremental re-solve sessions over the service                      *)
(* ------------------------------------------------------------------ *)

let open_kind = Service.Session_open { backend = Service.Dense; max_rounds = 500 }

let opened = function
  | Service.Opened { session; digest } -> (session, digest)
  | _ -> Alcotest.fail "expected opened outcome"

let test_session_lifecycle () =
  Service.with_service (fun svc ->
      let p = payload ~seed:9 ~n:10 ~extra:8 () in
      let handle, digest0 =
        opened (ok_outcome (Service.await svc (Service.submit svc (req ~id:"o" open_kind p))))
      in
      Alcotest.(check string)
        "open digest is the canonical instance digest"
        (Repro_util.Digestx.of_string (Serial.to_string (Serial.of_string p)))
        digest0;
      Alcotest.(check int) "one live session" 1 (Service.active_sessions svc);
      (* first resolve matches a stateless cutting-plane solve bit-for-bit
         in cost *)
      let r1 =
        ok_outcome
          (Service.await svc
             (Service.submit svc (req ~id:"r1" (Service.Session_resolve { session = handle }) "")))
      in
      let stateless kindp text =
        match ok_outcome (Service.await svc (Service.submit svc (req ~id:"sl" kindp text))) with
        | Service.Subsidy { cost; _ } -> cost
        | _ -> Alcotest.fail "expected subsidy outcome"
      in
      let cut = Service.Sne { meth = `Cut; backend = Service.Dense; max_rounds = 500 } in
      (match r1 with
      | Service.Resolved { cost; equilibrium; warm; _ } ->
          Alcotest.(check bool) "resolve certified" true equilibrium;
          Alcotest.(check bool) "first resolve is cold" false warm;
          Alcotest.(check (float 1e-6)) "cost = stateless solve" (stateless cut p) cost
      | _ -> Alcotest.fail "expected resolved outcome");
      (* mutate all-or-nothing, then the warm resolve tracks the delta *)
      let trace = "edge_weight 0 7\nedge_weight 1 2" in
      let m =
        ok_outcome
          (Service.await svc
             (Service.submit svc (req ~id:"m" (Service.Session_mutate { session = handle }) trace)))
      in
      let mutated_text =
        Serial.to_string
          (Serial.Delta.apply_all (Serial.of_string p) (Serial.Delta.list_of_string trace))
      in
      (match m with
      | Service.Mutated { applied; digest; _ } ->
          Alcotest.(check int) "both deltas applied" 2 applied;
          Alcotest.(check string) "digest tracks the delta path"
            (Repro_util.Digestx.of_string mutated_text) digest
      | _ -> Alcotest.fail "expected mutated outcome");
      (match
         ok_outcome
           (Service.await svc
              (Service.submit svc (req ~id:"r2" (Service.Session_resolve { session = handle }) "")))
       with
      | Service.Resolved { cost; equilibrium; _ } ->
          Alcotest.(check bool) "warm resolve certified" true equilibrium;
          Alcotest.(check (float 1e-6)) "warm cost = cold solve of mutated instance"
            (stateless cut mutated_text) cost
      | _ -> Alcotest.fail "expected resolved outcome");
      (* close releases the handle; everything after is unknown_session *)
      (match
         ok_outcome
           (Service.await svc
              (Service.submit svc (req ~id:"c" (Service.Session_close { session = handle }) "")))
       with
      | Service.Closed { session } -> Alcotest.(check string) "closed echo" handle session
      | _ -> Alcotest.fail "expected closed outcome");
      Alcotest.(check int) "no live sessions" 0 (Service.active_sessions svc);
      match
        err_reason
          (Service.await svc
             (Service.submit svc (req ~id:"r3" (Service.Session_resolve { session = handle }) "")))
      with
      | Service.Unknown_session h -> Alcotest.(check string) "handle echoed" handle h
      | e -> Alcotest.failf "expected unknown_session, got %s" (Wire.reason_slug e))

let test_session_errors () =
  Service.with_service (fun svc ->
      (* never-issued handle *)
      (match
         err_reason
           (Service.await svc
              (Service.submit svc
                 (req ~id:"b" (Service.Session_resolve { session = "bogus" }) "")))
       with
      | Service.Unknown_session "bogus" -> ()
      | e -> Alcotest.failf "expected unknown_session bogus, got %s" (Wire.reason_slug e));
      let p = payload ~seed:10 () in
      let handle, digest0 =
        opened (ok_outcome (Service.await svc (Service.submit svc (req ~id:"o" open_kind p))))
      in
      (* malformed delta: structured invalid_delta, nothing applied *)
      (match
         err_reason
           (Service.await svc
              (Service.submit svc
                 (req ~id:"m" (Service.Session_mutate { session = handle }) "edge_weight 999 1")))
       with
      | Service.Invalid_delta _ -> ()
      | e -> Alcotest.failf "expected invalid_delta, got %s" (Wire.reason_slug e));
      (* empty mutation payloads are rejected, not silently a no-op *)
      (match
         err_reason
           (Service.await svc
              (Service.submit svc (req ~id:"m2" (Service.Session_mutate { session = handle }) "")))
       with
      | Service.Invalid_delta _ -> ()
      | e -> Alcotest.failf "expected invalid_delta, got %s" (Wire.reason_slug e));
      (* the failed mutates left the instance untouched: a no-op delta
         reports the original digest *)
      match
        ok_outcome
          (Service.await svc
             (Service.submit svc
                (req ~id:"m3" (Service.Session_mutate { session = handle }) "set_budget none")))
      with
      | Service.Mutated { applied; digest; _ } ->
          Alcotest.(check int) "one delta applied" 1 applied;
          Alcotest.(check string) "instance untouched by the failed mutates" digest0 digest
      | _ -> Alcotest.fail "expected mutated outcome")

let test_session_eviction () =
  (* a capacity-1 table: opening a second session evicts the first (LRU),
     whose handle then answers unknown_session, never a raise *)
  Service.with_service ~sessions:1 (fun svc ->
      let h1, _ =
        opened
          (ok_outcome
             (Service.await svc (Service.submit svc (req ~id:"o1" open_kind (payload ~seed:11 ())))))
      in
      let h2, _ =
        opened
          (ok_outcome
             (Service.await svc (Service.submit svc (req ~id:"o2" open_kind (payload ~seed:12 ())))))
      in
      Alcotest.(check int) "table stays at capacity" 1 (Service.active_sessions svc);
      (match
         err_reason
           (Service.await svc
              (Service.submit svc (req ~id:"r1" (Service.Session_resolve { session = h1 }) "")))
       with
      | Service.Unknown_session h -> Alcotest.(check string) "evicted handle echoed" h1 h
      | e -> Alcotest.failf "expected unknown_session, got %s" (Wire.reason_slug e));
      (match
         err_reason
           (Service.await svc
              (Service.submit svc
                 (req ~id:"m1" (Service.Session_mutate { session = h1 }) "edge_weight 0 2")))
       with
      | Service.Unknown_session _ -> ()
      | e -> Alcotest.failf "expected unknown_session on mutate, got %s" (Wire.reason_slug e));
      match
        ok_outcome
          (Service.await svc
             (Service.submit svc (req ~id:"r2" (Service.Session_resolve { session = h2 }) "")))
      with
      | Service.Resolved _ -> ()
      | _ -> Alcotest.fail "expected resolved outcome")

let test_session_wire_roundtrip () =
  let reqs =
    [
      req ~id:"s1" open_kind (payload ~seed:13 ());
      req ~id:"s2"
        (Service.Session_open { backend = Service.Sparse; max_rounds = 77 })
        (payload ~seed:13 ());
      req ~id:"s3" (Service.Session_mutate { session = "h42" }) "edge_weight 0 3.5";
      req ~id:"s4" (Service.Session_resolve { session = "h42" }) "";
      req ~id:"s5" (Service.Session_close { session = "h42" }) "";
    ]
  in
  List.iter
    (fun r ->
      match Wire.parse_request (Wire.request_to_string r) with
      | Ok r' ->
          Alcotest.(check bool) (Printf.sprintf "round trip %s" r.Service.id) true (r = r')
      | Error e -> Alcotest.failf "round trip %s failed: %s" r.Service.id e)
    reqs;
  (match Wire.parse_request "id=x kind=mutate delta=edge_weight%200%201" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mutate without session must not parse");
  match Wire.parse_request "id=x kind=open" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "open without inst must not parse"

(* ------------------------------------------------------------------ *)
(* Monotonic deadlines (regression: deadlines once read the wall clock) *)
(* ------------------------------------------------------------------ *)

let test_deadline_monotonic_clock () =
  (* Inject a fake service clock. Deadlines and elapsed_ms must be
     computed against it — never against Unix.gettimeofday — so a
     wall-clock step (NTP, suspend/resume) can neither fire a deadline
     early nor hold one open. *)
  let fake = Atomic.make 1000.0 in
  Service.with_service ~now:(fun () -> Atomic.get fake) (fun svc ->
      (* Frozen clock: real seconds pass while this request solves, but
         per the service clock zero time elapses, so even a 1ms deadline
         must NOT fire. With the old wall-clock arithmetic this request
         came back deadline_expired. *)
      let r =
        Service.await svc
          (Service.submit svc (req ~id:"frozen" ~deadline_ms:1.0 lp3 (payload ~seed:31 ())))
      in
      ignore (ok_outcome r);
      Alcotest.(check (float 1e-9)) "elapsed_ms read from the service clock" 0.0
        r.Service.elapsed_ms;
      (* The reverse direction: a deadline computed before clock movement
         still fires once the service clock passes it, aborting a search
         that would otherwise run for minutes. *)
      let t0 = Unix.gettimeofday () in
      let tk =
        Service.submit svc (req ~id:"skewed" ~deadline_ms:100.0 slow_snd slow_payload)
      in
      spin_until "the slow search to start" (fun () -> Service.inflight svc = 1);
      Atomic.set fake 1000.2 (* 200ms later on the service clock *);
      (match err_reason (Service.await svc tk) with
      | Service.Deadline_expired -> ()
      | e -> Alcotest.failf "expected deadline_expired, got %s" (Wire.reason_slug e));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "aborted promptly in real time (%.1fs)" elapsed)
        true (elapsed < 30.0))

(* ------------------------------------------------------------------ *)
(* Session pinning (regression: LRU eviction vs in-flight resolve)     *)
(* ------------------------------------------------------------------ *)

let test_session_pin_survives_churn () =
  (* A capacity-1 session table, a resolve in flight on it, and a burst
     of concurrent opens churning the table far past capacity. The
     in-flight session is pinned: it must survive to a Resolved outcome
     (never Unknown_session, never a crash), every open must answer
     Opened, and once the pin drops the table must shrink back to
     capacity. Before pinning, the eviction path could drop the entry
     while its per-session mutex was held by the resolve. *)
  Service.with_service ~workers:2 ~sessions:1 (fun svc ->
      let p = payload ~seed:21 ~n:12 ~extra:10 () in
      let h, _ =
        opened (ok_outcome (Service.await svc (Service.submit svc (req ~id:"o" open_kind p))))
      in
      let resolve =
        Service.submit svc (req ~id:"rz" (Service.Session_resolve { session = h }) "")
      in
      (* A fast resolve can start and finish between two polls, so accept
         "already done" as started — the churn below still exercises the
         pin whenever the race does occur. *)
      spin_until "the resolve to start" (fun () ->
          Service.inflight svc >= 1 || Service.poll_response svc resolve <> None);
      let churn =
        List.init 8 (fun i ->
            Service.submit svc
              (req ~id:(Printf.sprintf "ch%d" i) open_kind (payload ~seed:(40 + i) ())))
      in
      (match (Service.await svc resolve).Service.result with
      | Ok (Service.Resolved _) -> ()
      | Ok _ -> Alcotest.fail "expected resolved outcome"
      | Error (Service.Unknown_session _) ->
          Alcotest.fail "in-flight resolve lost its session to LRU eviction"
      | Error e -> Alcotest.failf "resolve failed: %s" (Wire.reason_slug e));
      List.iter
        (fun tk ->
          match ok_outcome (Service.await svc tk) with
          | Service.Opened _ -> ()
          | _ -> Alcotest.fail "expected opened outcome")
        churn;
      Alcotest.(check int) "table back at capacity after the pin drops" 1
        (Service.active_sessions svc))

let test_open_during_pinned_table_is_usable () =
  (* Capacity-1 session table with a resolve in flight pinning the sole
     resident: an open arriving meanwhile must hand back a handle that
     actually stays in the table. The newcomer is unpinned, and the LRU
     eviction walk used to fall through to it when every older entry was
     pinned — the open answered Opened with an already-evicted handle
     (its scratch released by on_evict), and the next request naming it
     got unknown_session. Both interleavings of the race are asserted:
     if the first resolve already finished, the open evicts the now
     unpinned elder instead, and the fresh handle is just as usable. *)
  Service.with_service ~workers:2 ~sessions:1 (fun svc ->
      let p = payload ~seed:23 ~n:12 ~extra:10 () in
      let h, _ =
        opened (ok_outcome (Service.await svc (Service.submit svc (req ~id:"o" open_kind p))))
      in
      let resolve =
        Service.submit svc (req ~id:"rz" (Service.Session_resolve { session = h }) "")
      in
      spin_until "the resolve to start" (fun () ->
          Service.inflight svc >= 1 || Service.poll_response svc resolve <> None);
      let h2, _ =
        opened
          (ok_outcome
             (Service.await svc
                (Service.submit svc (req ~id:"o2" open_kind (payload ~seed:24 ())))))
      in
      (match
         (Service.await svc
            (Service.submit svc
               (req ~id:"rz2" (Service.Session_resolve { session = h2 }) "")))
           .Service.result
       with
      | Ok (Service.Resolved _) -> ()
      | Ok _ -> Alcotest.fail "expected resolved outcome"
      | Error (Service.Unknown_session _) ->
          Alcotest.fail "freshly opened session self-evicted from a pinned table"
      | Error e -> Alcotest.failf "resolve failed: %s" (Wire.reason_slug e));
      ignore (Service.await svc resolve);
      Alcotest.(check int) "table back at capacity after the pins drop" 1
        (Service.active_sessions svc))

(* ------------------------------------------------------------------ *)
(* Shard routing                                                       *)
(* ------------------------------------------------------------------ *)

let test_shard_routing_deterministic () =
  (* The digest-to-shard map is a pure function: stable across calls and
     service instances, always in range, and total (any digest string). *)
  let digests =
    List.init 64 (fun i -> Repro_util.Digestx.of_string (Printf.sprintf "inst-%d" i))
  in
  List.iter
    (fun d ->
      List.iter
        (fun shards ->
          let s = Service.shard_of_digest ~shards d in
          Alcotest.(check bool)
            (Printf.sprintf "shard %d in range for %d shards" s shards)
            true
            (s >= 0 && s < shards);
          Alcotest.(check int) "routing is deterministic" s
            (Service.shard_of_digest ~shards d))
        [ 1; 2; 3; 4; 7 ])
    digests;
  (* One shard means shard 0, always. *)
  List.iter
    (fun d -> Alcotest.(check int) "single shard" 0 (Service.shard_of_digest ~shards:1 d))
    digests;
  (* With several shards the map must actually spread: 64 distinct
     digests landing on one of 4 shards all together would make the
     shards pointless (probability ~4^-63 by chance). *)
  let spread =
    List.sort_uniq compare (List.map (Service.shard_of_digest ~shards:4) digests)
  in
  Alcotest.(check bool) "digests spread over shards" true (List.length spread > 1);
  (* Routing canonicalizes the payload, so cosmetic differences (comments,
     blank lines) reach the same shard — and therefore the same cache. *)
  let p = payload ~seed:33 () in
  let p' = "# cosmetic comment\n\n" ^ p in
  Service.with_service ~shards:4 ~workers:1 (fun svc ->
      Alcotest.(check int) "canonicalized payloads co-route"
        (Service.shard_of_request svc (req lp3 p))
        (Service.shard_of_request svc (req lp3 p')))

let test_shard_cache_affinity () =
  (* Replays of the same instance must land on the shard that cached the
     first solve, whatever the shard count: a cache hit across a 4-shard
     service proves the affinity end to end. *)
  Service.with_service ~shards:4 ~workers:1 (fun svc ->
      let p = payload ~seed:34 () in
      let r1 = Service.await svc (Service.submit svc (req ~id:"a1" lp3 p)) in
      let r2 = Service.await svc (Service.submit svc (req ~id:"a2" lp3 p)) in
      Alcotest.(check bool) "first solve misses" false r1.Service.cache_hit;
      Alcotest.(check bool) "replay hits across 4 shards" true r2.Service.cache_hit;
      Alcotest.(check string) "byte-identical outcome"
        (Wire.outcome_to_string (ok_outcome r1))
        (Wire.outcome_to_string (ok_outcome r2));
      (* Sessions stay on their home shard through the handle residue:
         open, mutate, resolve, close must all find the same state. *)
      let h, _ =
        opened
          (ok_outcome
             (Service.await svc (Service.submit svc (req ~id:"so" open_kind (payload ~seed:35 ())))))
      in
      (match
         ok_outcome
           (Service.await svc
              (Service.submit svc
                 (req ~id:"sm" (Service.Session_mutate { session = h }) "edge_weight 0 4")))
       with
      | Service.Mutated { applied; _ } -> Alcotest.(check int) "delta applied" 1 applied
      | _ -> Alcotest.fail "expected mutated outcome");
      (match
         ok_outcome
           (Service.await svc
              (Service.submit svc (req ~id:"sr" (Service.Session_resolve { session = h }) "")))
       with
      | Service.Resolved _ -> ()
      | _ -> Alcotest.fail "expected resolved outcome");
      match
        ok_outcome
          (Service.await svc
             (Service.submit svc (req ~id:"sc" (Service.Session_close { session = h }) "")))
      with
      | Service.Closed _ -> ()
      | _ -> Alcotest.fail "expected closed outcome")

let test_sharded_batch () =
  (* The full mixed workload across 3 shards: every request answered,
     ids in order, same outcomes as the single-shard service. *)
  let mixed svc =
    let p = payload ~seed:36 () in
    Service.run_batch svc
      [
        req ~id:"m1" lp3 p;
        req ~id:"m2" Service.Enforce p;
        req ~id:"m3" Service.Check p;
        req ~id:"m4" (Service.Snd { budget = 1e6 }) (payload ~seed:37 ());
        req ~id:"m5" lp3 (payload ~seed:38 ());
      ]
  in
  let one = Service.with_service ~shards:1 ~workers:1 mixed in
  let three = Service.with_service ~shards:3 ~workers:1 mixed in
  Alcotest.(check (list string))
    "ids echoed in order" [ "m1"; "m2"; "m3"; "m4"; "m5" ]
    (List.map (fun r -> r.Service.id) three);
  List.iter2
    (fun a b ->
      match (a.Service.result, b.Service.result) with
      | Ok oa, Ok ob ->
          Alcotest.(check string)
            (Printf.sprintf "outcome %s matches single-shard" a.Service.id)
            (Wire.outcome_to_string oa) (Wire.outcome_to_string ob)
      | _ -> Alcotest.failf "request %s failed" a.Service.id)
    one three

(* ------------------------------------------------------------------ *)
(* Streaming progress events                                           *)
(* ------------------------------------------------------------------ *)

let test_streaming_progress () =
  Service.with_service (fun svc ->
      let events = ref [] in
      let record =
        let mu = Mutex.create () in
        fun p ->
          Mutex.lock mu;
          events := p :: !events;
          Mutex.unlock mu
      in
      (* SND with a generous budget streams every incumbent improvement;
         the last streamed incumbent must match the returned design. *)
      let p = payload ~seed:39 ~n:9 ~extra:6 () in
      let tk =
        Service.submit ~on_progress:record svc
          (req ~id:"st" ~stream:true (Service.Snd { budget = 1e6 }) p)
      in
      let r = Service.await svc tk in
      let incumbents =
        List.filter_map
          (function
            | Service.Snd_incumbent { subsidy_cost; tree_edges; _ } ->
                Some (subsidy_cost, tree_edges)
            | _ -> None)
          (List.rev !events)
      in
      Alcotest.(check bool) "at least one incumbent streamed" true (incumbents <> []);
      (match ok_outcome r with
      | Service.Design { subsidy_cost; tree_edges; _ } ->
          let last_cost, last_tree = List.nth incumbents (List.length incumbents - 1) in
          Alcotest.(check (float 1e-9)) "last incumbent is the answer" subsidy_cost
            last_cost;
          Alcotest.(check (list int)) "same tree" tree_edges last_tree
      | _ -> Alcotest.fail "expected design outcome");
      (* Cutting-plane solves stream a Cut_round per separation round. *)
      events := [];
      let cut = Service.Sne { meth = `Cut; backend = Service.Dense; max_rounds = 500 } in
      (* seed 38 is picked so the initial master is infeasible: the
         cutting loop provably runs at least one separation round that
         finds cuts, so an event is guaranteed, deterministically. *)
      let r =
        Service.await svc
          (Service.submit ~on_progress:record svc
             (req ~id:"cr" ~stream:true cut (payload ~seed:38 ~n:10 ~extra:8 ())))
      in
      ignore (ok_outcome r);
      let rounds =
        List.filter_map
          (function Service.Cut_round { round; cuts } -> Some (round, cuts) | _ -> None)
          !events
      in
      Alcotest.(check bool) "at least one cut round streamed" true (rounds <> []);
      List.iter
        (fun (_, cuts) -> Alcotest.(check bool) "cuts positive" true (cuts > 0))
        rounds;
      (* stream=false suppresses events even with a sink attached. *)
      events := [];
      let r =
        Service.await svc
          (Service.submit ~on_progress:record svc (req ~id:"ns" cut (payload ~seed:41 ())))
      in
      ignore r;
      Alcotest.(check int) "no events without stream=1" 0 (List.length !events))

let test_progress_wire_emission () =
  let inc =
    Service.Snd_incumbent { weight = 4.0; subsidy_cost = 0.5; tree_edges = [ 0; 2 ] }
  in
  let s = Wire.progress_to_string ~id:"p1" inc in
  Alcotest.(check bool) "one line" false (String.contains s '\n');
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "has %s" affix) true (contains ~affix s))
    [
      "\"id\":\"p1\"";
      "\"event\":\"incumbent\"";
      "\"subsidy_cost\":0.5";
      "\"tree_edges\":[0,2]";
    ];
  Alcotest.(check bool) "events carry no status key" false (contains ~affix:"\"status\"" s);
  let s = Wire.progress_to_string ~id:"p2" (Service.Cut_round { round = 3; cuts = 7 }) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "has %s" affix) true (contains ~affix s))
    [ "\"id\":\"p2\""; "\"event\":\"round\""; "\"round\":3"; "\"cuts\":7" ]

(* ------------------------------------------------------------------ *)
(* Wire codecs: properties and corrupt-input rejection                 *)
(* ------------------------------------------------------------------ *)

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let arbitrary_bytes = QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 200))

let prop_percent_roundtrip =
  prop "percent encode/decode round-trips arbitrary bytes" arbitrary_bytes (fun s ->
      Wire.decode (Wire.encode s) = Ok s)

let request_gen =
  let open QCheck2.Gen in
  let ident = string_size ~gen:(char_range 'a' 'z') (1 -- 8) in
  let kind =
    oneof
      [
        map3
          (fun m b r ->
            Service.Sne
              {
                meth = (if m then `Lp3 else `Cut);
                backend = (if b then Service.Dense else Service.Sparse);
                max_rounds = r;
              })
          bool bool (1 -- 1000);
        return Service.Enforce;
        return Service.Check;
        map (fun b -> Service.Snd { budget = float_of_int b /. 16.0 }) (0 -- 10_000);
        map2
          (fun b r ->
            Service.Session_open
              { backend = (if b then Service.Dense else Service.Sparse); max_rounds = r })
          bool (1 -- 1000);
        map (fun s -> Service.Session_mutate { session = s }) ident;
        map (fun s -> Service.Session_resolve { session = s }) ident;
        map (fun s -> Service.Session_close { session = s }) ident;
      ]
  in
  let deadline = oneof [ return None; map (fun d -> Some (float_of_int d /. 8.0)) (1 -- 80_000) ] in
  map3
    (fun (id, k) payload (dl, (prio, stream)) ->
      { Service.id; kind = k; payload; deadline_ms = dl; priority = prio; stream })
    (pair ident kind) arbitrary_bytes
    (pair deadline (pair (0 -- 9) bool))

let prop_binary_request_roundtrip =
  prop "binary request codec round-trips" request_gen (fun r ->
      Wire.Binary.decode_request (Wire.Binary.encode_request r) = Ok r)

let prop_text_request_roundtrip =
  prop "text request codec round-trips" request_gen (fun r ->
      (* The text wire requires nonempty payloads for payload-bearing
         kinds; normalize the generated request accordingly. *)
      let r =
        match r.Service.kind with
        | Service.Session_resolve _ | Service.Session_close _ ->
            { r with Service.payload = "" }
        | Service.Session_mutate _ when r.Service.payload = "" ->
            { r with Service.payload = "edge_weight 0 1" }
        | _ when r.Service.payload = "" -> { r with Service.payload = "x" }
        | _ -> r
      in
      Wire.parse_request (Wire.request_to_string r) = Ok r)

let with_frames payloads k =
  (* Round-trip frames through a real file: the framing layer is defined
     against channels, and a temp file keeps the test honest about
     buffering and EOF. *)
  let path = Filename.temp_file "wire_frames" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      List.iter (Wire.Binary.write_frame oc) payloads;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> k ic))

let prop_frame_roundtrip =
  prop "length-prefixed framing round-trips" (QCheck2.Gen.list_size (QCheck2.Gen.(0 -- 8)) arbitrary_bytes)
    (fun payloads ->
      with_frames payloads (fun ic ->
          let rec drain acc =
            match Wire.Binary.read_frame ic with
            | Ok (Some p) -> drain (p :: acc)
            | Ok None -> List.rev acc
            | Error e -> Alcotest.failf "framing error on clean stream: %s" e
          in
          drain [] = payloads))

let write_raw bytes k =
  let path = Filename.temp_file "wire_raw" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> k ic))

let expect_frame_error what bytes affix =
  write_raw bytes (fun ic ->
      match Wire.Binary.read_frame ic with
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s names the fault (%s)" what e)
            true (contains ~affix e)
      | Ok (Some _) -> Alcotest.failf "%s: corrupt stream produced a frame" what
      | Ok None -> Alcotest.failf "%s: corrupt stream read as clean EOF" what)

let test_binary_frame_rejection () =
  (* Clean EOF at a frame boundary is Ok None... *)
  write_raw "" (fun ic ->
      match Wire.Binary.read_frame ic with
      | Ok None -> ()
      | _ -> Alcotest.fail "empty stream must read as clean EOF");
  (* ...but a cut-off length prefix, an oversized length, and a payload
     shorter than its prefix are structured errors, never exceptions. *)
  expect_frame_error "truncated prefix" "\x00\x00" "truncated length prefix";
  expect_frame_error "oversized frame" "\x7f\xff\xff\xff rest" "exceeds";
  expect_frame_error "truncated payload" "\x00\x00\x00\x0aabc" "truncated frame";
  (* Negative length (high bit set) is oversized, not a crash. *)
  expect_frame_error "negative length" "\xff\xff\xff\xff" "exceeds";
  (* write_frame refuses to emit an oversized frame at the source. *)
  Alcotest.check_raises "write_frame caps at max_frame"
    (Invalid_argument "Service_wire.Binary.write_frame: frame exceeds max_frame")
    (fun () ->
      let oc = open_out_bin "/dev/null" in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Wire.Binary.write_frame oc (String.make (Wire.Binary.max_frame + 1) 'x')))

let test_binary_request_rejection () =
  let bad what bytes =
    match Wire.Binary.decode_request bytes with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s must not decode" what
  in
  bad "empty payload" "";
  bad "unknown version" "\x02";
  let good = Wire.Binary.encode_request (req ~id:"q" lp3 "nodes 2\nroot 0\nedge 0 1 1\n") in
  bad "truncated request" (String.sub good 0 (String.length good - 1));
  bad "trailing bytes" (good ^ "\x00");
  (* Flip the kind tag to an unknown value. *)
  let bytes = Bytes.of_string good in
  Bytes.set bytes 1 '\xee';
  bad "unknown kind tag" (Bytes.to_string bytes);
  (* Unknown flag bits are reserved and must be rejected, so the format
     can grow without old decoders misreading new frames. *)
  let bytes = Bytes.of_string good in
  Bytes.set bytes 2 (Char.chr (Char.code (Bytes.get bytes 2) lor 0x80));
  bad "reserved flag bit" (Bytes.to_string bytes)

let suite =
  [
    Alcotest.test_case "submit/await round trip, all kinds" `Quick test_basic_roundtrip;
    Alcotest.test_case "cache hit is byte-identical" `Quick test_cache_hit_byte_identical;
    Alcotest.test_case "deadline expiry cancels a long SND search" `Slow
      test_deadline_expiry_cancels_snd;
    Alcotest.test_case "client cancellation" `Quick test_client_cancel;
    Alcotest.test_case "backpressure rejects past the high-water mark" `Slow
      test_backpressure_rejects;
    Alcotest.test_case "malformed payload yields structured parse error" `Quick
      test_malformed_payload_is_structured;
    Alcotest.test_case "wire: malformed request lines" `Quick test_wire_parse_errors;
    Alcotest.test_case "wire: request round trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire: response emission" `Quick test_response_emission;
    Alcotest.test_case "priority overtakes FIFO" `Slow test_priority_order;
    Alcotest.test_case "Pool.map_result isolates item faults" `Quick
      test_pool_map_result_isolation;
    Alcotest.test_case "shutdown fails queued, spares running" `Slow
      test_shutdown_fails_queued;
    Alcotest.test_case "session lifecycle: open/resolve/mutate/close" `Quick
      test_session_lifecycle;
    Alcotest.test_case "session errors are structured" `Quick test_session_errors;
    Alcotest.test_case "bounded session table evicts LRU" `Quick test_session_eviction;
    Alcotest.test_case "wire: session request round trips" `Quick
      test_session_wire_roundtrip;
    Alcotest.test_case "deadlines read the monotonic service clock" `Slow
      test_deadline_monotonic_clock;
    Alcotest.test_case "pinned sessions survive LRU churn mid-resolve" `Slow
      test_session_pin_survives_churn;
    Alcotest.test_case "open against a fully-pinned table stays usable" `Slow
      test_open_during_pinned_table_is_usable;
    Alcotest.test_case "shard routing is deterministic and spreads" `Quick
      test_shard_routing_deterministic;
    Alcotest.test_case "shard cache and session affinity" `Quick test_shard_cache_affinity;
    Alcotest.test_case "sharded batch matches single-shard outcomes" `Quick
      test_sharded_batch;
    Alcotest.test_case "streaming progress events" `Slow test_streaming_progress;
    Alcotest.test_case "wire: progress event emission" `Quick test_progress_wire_emission;
    prop_percent_roundtrip;
    prop_binary_request_roundtrip;
    prop_text_request_roundtrip;
    prop_frame_roundtrip;
    Alcotest.test_case "wire: corrupt binary frames rejected" `Quick
      test_binary_frame_rejection;
    Alcotest.test_case "wire: corrupt binary requests rejected" `Quick
      test_binary_request_rejection;
  ]
