let () =
  Alcotest.run "repro"
    [
      ("bigint", Test_bigint.suite);
      ("rational", Test_rational.suite);
      ("graph", Test_graph.suite);
      ("prng", Test_prng.suite);
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("lp", Test_lp.suite);
      ("sparse-lp", Test_sparse_lp.suite);
      ("warmstart", Test_warmstart.suite);
      ("game", Test_game.suite);
      ("core", Test_core.suite);
      ("snd-search", Test_snd_search.suite);
      ("problems", Test_problems.suite);
      ("reductions", Test_reductions.suite);
      ("weighted", Test_weighted.suite);
      ("extensions", Test_extensions.suite);
      ("delta", Test_delta.suite);
      ("session", Test_session.suite);
      ("service", Test_service.suite);
      ("landscape", Test_landscape.suite);
      ("exactness", Test_exactness.suite);
      ("directed", Test_directed.suite);
      ("steiner", Test_steiner.suite);
    ]
