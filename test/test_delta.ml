(* Serial.Delta: apply semantics, one-line parse round trips, and the
   canonicality property the incremental re-solve path leans on — applying
   a delta then serializing yields byte-identical text (hence an identical
   [Digestx] key) to building the mutated instance directly from scratch.
   The property runs against an independent shadow model of the documented
   semantics, over hundreds of randomized instance/delta-sequence cases. *)

module Ser = Repro_core.Serial.Float
module G = Ser.G
module Digestx = Repro_util.Digestx

let digest inst = Digestx.of_string (Ser.to_string inst)

(* ------------------------------------------------------------------ *)
(* Deterministic randomness (fixed LCG; no global RNG state)           *)
(* ------------------------------------------------------------------ *)

let rng = ref 0
let reset_rng seed = rng := seed

let rand n =
  rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
  !rng mod n

(* ------------------------------------------------------------------ *)
(* Shadow model: the documented delta semantics over a plain edge list *)
(* ------------------------------------------------------------------ *)

type shadow = {
  n : int;
  root : int;
  edges : (int * int * float) list;  (** declaration order *)
  subsidy : (int * float) list;
  budget : float option;
}

let shadow_inst s =
  {
    Ser.graph = G.create ~n:s.n s.edges;
    root = s.root;
    tree_edge_ids = None;
    subsidy = s.subsidy;
    budget = s.budget;
  }

let shadow_apply s = function
  | Ser.Delta.Edge_weight { edge; weight } ->
      {
        s with
        edges = List.mapi (fun i (u, v, w) -> if i = edge then (u, v, weight) else (u, v, w)) s.edges;
      }
  | Ser.Delta.Add_player { attach } ->
      { s with n = s.n + 1; edges = s.edges @ List.map (fun (u, w) -> (u, s.n, w)) attach }
  | Ser.Delta.Remove_player { node } ->
      let shift x = if x > node then x - 1 else x in
      let survives (u, v, _) = u <> node && v <> node in
      let old_id = ref (-1) in
      let edge_map = Hashtbl.create 16 in
      let next = ref 0 in
      List.iter
        (fun e ->
          incr old_id;
          if survives e then begin
            Hashtbl.add edge_map !old_id !next;
            incr next
          end)
        s.edges;
      {
        s with
        n = s.n - 1;
        root = shift s.root;
        edges =
          List.filter_map
            (fun (u, v, w) -> if u <> node && v <> node then Some (shift u, shift v, w) else None)
            s.edges;
        subsidy =
          List.filter_map
            (fun (id, b) ->
              match Hashtbl.find_opt edge_map id with Some id' -> Some (id', b) | None -> None)
            s.subsidy;
      }
  | Ser.Delta.Set_budget b -> { s with budget = Option.map (fun x -> x) b }

(* A random connected shadow: a random spanning tree plus extra edges. *)
let random_shadow () =
  let n = 4 + rand 7 in
  let tree = List.init (n - 1) (fun i -> (rand (i + 1), i + 1, float_of_int (1 + rand 9))) in
  let extra =
    List.filter_map
      (fun _ ->
        let u = rand n and v = rand n in
        if u = v then None else Some (u, v, float_of_int (1 + rand 9)))
      (List.init (rand 6) Fun.id)
  in
  let edges = tree @ extra in
  let m = List.length edges in
  let subsidy = if rand 3 = 0 then [ (rand m, float_of_int (rand 4)) ] else [] in
  let budget = if rand 4 = 0 then Some (float_of_int (rand 20)) else None in
  { n; root = rand n; edges; subsidy; budget }

(* A random delta valid for [s] — or None when the draw has no valid
   instance (e.g. every removal would disconnect). *)
let random_delta s =
  let m = List.length s.edges in
  match rand 10 with
  | 0 | 1 ->
      let k = 1 + rand 2 in
      let attach =
        List.init k (fun _ -> (rand s.n, float_of_int (1 + rand 9)))
        (* dedup attachment endpoints: parallel edges are legal, identical
           (u, n) pairs too, so no filtering needed *)
      in
      Some (Ser.Delta.Add_player { attach })
  | 2 ->
      if s.n <= 2 then None
      else
        (* find a removable (non-root, non-disconnecting) node if any *)
        let candidates =
          List.filter
            (fun v ->
              v <> s.root
              &&
              let remaining =
                List.filter_map
                  (fun (u, w, x) ->
                    if u = v || w = v then None
                    else
                      Some ((if u > v then u - 1 else u), (if w > v then w - 1 else w), x))
                  s.edges
              in
              G.is_connected (G.create ~n:(s.n - 1) remaining))
            (List.init s.n Fun.id)
        in
        (match candidates with
        | [] -> None
        | c -> Some (Ser.Delta.Remove_player { node = List.nth c (rand (List.length c)) }))
  | 3 -> Some (Ser.Delta.Set_budget (if rand 2 = 0 then None else Some (float_of_int (rand 15))))
  | _ -> Some (Ser.Delta.Edge_weight { edge = rand m; weight = float_of_int (rand 10) })

(* ------------------------------------------------------------------ *)
(* Unit tests: apply semantics                                         *)
(* ------------------------------------------------------------------ *)

let base () =
  {
    n = 4;
    root = 0;
    edges = [ (0, 1, 3.0); (1, 2, 2.0); (2, 3, 5.0); (0, 3, 4.0) ];
    subsidy = [ (2, 1.0) ];
    budget = Some 10.0;
  }

let test_edge_weight () =
  let inst = shadow_inst (base ()) in
  let a = Ser.Delta.apply inst (Ser.Delta.Edge_weight { edge = 1; weight = 7.5 }) in
  Alcotest.(check (float 0.0)) "weight updated" 7.5 (G.weight a.Ser.Delta.inst.Ser.graph 1);
  Alcotest.(check (list int)) "dirty = the edge" [ 1 ] a.Ser.Delta.dirty_edges;
  Alcotest.(check bool) "not structural" false a.Ser.Delta.structural;
  Alcotest.(check (array int)) "identity edge map" [| 0; 1; 2; 3 |] a.Ser.Delta.edge_map;
  Alcotest.check_raises "out-of-range edge"
    (Failure "Delta: edge_weight references nonexistent edge id 9") (fun () ->
      ignore (Ser.Delta.apply inst (Ser.Delta.Edge_weight { edge = 9; weight = 1.0 })))

let test_add_player () =
  let inst = { (shadow_inst (base ())) with Ser.tree_edge_ids = Some [ 0; 1; 2 ] } in
  let a = Ser.Delta.apply inst (Ser.Delta.Add_player { attach = [ (1, 2.0); (3, 6.0) ] }) in
  let g = a.Ser.Delta.inst.Ser.graph in
  Alcotest.(check int) "node appended" 5 (G.n_nodes g);
  Alcotest.(check int) "edges appended" 6 (G.n_edges g);
  Alcotest.(check (list int)) "new ids dirty" [ 4; 5 ] a.Ser.Delta.dirty_edges;
  Alcotest.(check bool) "structural" true a.Ser.Delta.structural;
  Alcotest.(check (option (list int))) "target tree dropped" None
    a.Ser.Delta.inst.Ser.tree_edge_ids

let test_remove_player () =
  let inst = shadow_inst (base ()) in
  let a = Ser.Delta.apply inst (Ser.Delta.Remove_player { node = 2 }) in
  let g = a.Ser.Delta.inst.Ser.graph in
  Alcotest.(check int) "node removed" 3 (G.n_nodes g);
  (* edges 1 (1-2) and 2 (2-3) die; 0 and 3 survive compactly renumbered *)
  Alcotest.(check (array int)) "edge map" [| 0; -1; -1; 1 |] a.Ser.Delta.edge_map;
  Alcotest.(check (list (pair int (float 0.0)))) "subsidy on dead edge dropped" []
    a.Ser.Delta.inst.Ser.subsidy;
  Alcotest.check_raises "root is irremovable"
    (Failure "Delta: remove_player: cannot remove the root") (fun () ->
      ignore (Ser.Delta.apply inst (Ser.Delta.Remove_player { node = 0 })));
  (* removing node 1 of the path 0-1-2 disconnects it *)
  let path =
    shadow_inst { n = 3; root = 0; edges = [ (0, 1, 1.0); (1, 2, 1.0) ]; subsidy = []; budget = None }
  in
  Alcotest.check_raises "disconnection rejected"
    (Failure "Delta: remove_player: removing node 1 disconnects the instance") (fun () ->
      ignore (Ser.Delta.apply path (Ser.Delta.Remove_player { node = 1 })))

let test_parse_roundtrip () =
  let cases =
    [
      Ser.Delta.Edge_weight { edge = 3; weight = 2.5 };
      Ser.Delta.Add_player { attach = [ (0, 1.0) ] };
      Ser.Delta.Add_player { attach = [ (2, 4.0); (5, 0.5) ] };
      Ser.Delta.Remove_player { node = 7 };
      Ser.Delta.Set_budget None;
      Ser.Delta.Set_budget (Some 12.0);
    ]
  in
  List.iter
    (fun d ->
      let text = Ser.Delta.to_string d in
      Alcotest.(check string)
        ("round trip: " ^ text) text
        (Ser.Delta.to_string (Ser.Delta.of_string text)))
    cases;
  let trace = Ser.Delta.list_to_string cases in
  Alcotest.(check int) "trace round trip" (List.length cases)
    (List.length (Ser.Delta.list_of_string trace));
  Alcotest.check_raises "bad line is a structured failure"
    (Failure "Delta: remove_player expects 'remove_player node'") (fun () ->
      ignore (Ser.Delta.of_string "remove_player 1 2"))

(* ------------------------------------------------------------------ *)
(* The canonicality property, randomized                               *)
(* ------------------------------------------------------------------ *)

let test_digest_canonicality () =
  reset_rng 20260808;
  let cases = ref 0 in
  while !cases < 250 do
    let shadow = ref (random_shadow ()) in
    let inst = ref (shadow_inst !shadow) in
    let steps = 1 + rand 5 in
    for _ = 1 to steps do
      match random_delta !shadow with
      | None -> ()
      | Some d ->
          (* the delta round-trips through its wire text first, like the
             service mutate path *)
          let d = Ser.Delta.of_string (Ser.Delta.to_string d) in
          inst := (Ser.Delta.apply !inst d).Ser.Delta.inst;
          shadow := shadow_apply !shadow d;
          incr cases;
          let direct = shadow_inst !shadow in
          if digest !inst <> digest direct then
            Alcotest.failf "digest diverged after %s:\napplied:\n%s\ndirect:\n%s"
              (Ser.Delta.to_string d) (Ser.to_string !inst) (Ser.to_string direct);
          (* parsing the serialization is also digest-stable *)
          Alcotest.(check string) "parse round trip digest" (digest !inst)
            (digest (Ser.of_string (Ser.to_string !inst)))
    done
  done;
  Alcotest.(check bool) (Printf.sprintf "%d randomized cases" !cases) true (!cases >= 250)

let test_apply_all_matches_stepwise () =
  let inst = shadow_inst (base ()) in
  let ds =
    [
      Ser.Delta.Edge_weight { edge = 0; weight = 9.0 };
      Ser.Delta.Add_player { attach = [ (1, 2.0) ] };
      Ser.Delta.Set_budget None;
    ]
  in
  let stepwise = List.fold_left (fun i d -> (Ser.Delta.apply i d).Ser.Delta.inst) inst ds in
  Alcotest.(check string) "apply_all = stepwise" (digest stepwise)
    (digest (Ser.Delta.apply_all inst ds))

let suite =
  [
    Alcotest.test_case "edge_weight semantics" `Quick test_edge_weight;
    Alcotest.test_case "add_player semantics" `Quick test_add_player;
    Alcotest.test_case "remove_player semantics" `Quick test_remove_player;
    Alcotest.test_case "one-line parse round trips" `Quick test_parse_roundtrip;
    Alcotest.test_case "digest canonicality (250 randomized cases)" `Quick
      test_digest_canonicality;
    Alcotest.test_case "apply_all matches stepwise application" `Quick
      test_apply_all_matches_stepwise;
  ]
