(* Tests for the exact landscapes: the general state-space landscape
   (multicast), epsilon-equilibria, and the SND Pareto frontier. The key
   cross-check: on broadcast games the general state landscape and the
   spanning-tree landscape must agree on the best equilibrium weight. *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Snd = Repro_core.Snd.Float
module Sne = Repro_core.Sne_lp.Float
module Instances = Repro_core.Instances
module Prng = Repro_util.Prng
module Fx = Repro_util.Floatx

let fl = Alcotest.float 1e-9

let shared_highway () =
  G.create ~n:5
    [ (1, 0, 1.0); (2, 0, 1.0); (3, 0, 1.0);
      (1, 4, 0.3); (2, 4, 0.3); (3, 4, 0.3); (4, 0, 1.2) ]

let unit_tests =
  [
    Alcotest.test_case "multicast constructor validates terminals" `Quick (fun () ->
        let g = shared_highway () in
        Alcotest.check_raises "root terminal"
          (Invalid_argument "Game.multicast: root cannot be a terminal") (fun () ->
            ignore (Gm.multicast ~graph:g ~root:0 ~terminals:[ 0 ]));
        Alcotest.check_raises "duplicate"
          (Invalid_argument "Game.multicast: duplicate terminal") (fun () ->
            ignore (Gm.multicast ~graph:g ~root:0 ~terminals:[ 1; 1 ]));
        let spec = Gm.multicast ~graph:g ~root:0 ~terminals:[ 1; 3 ] in
        Alcotest.(check int) "two players" 2 (Gm.n_players spec));
    Alcotest.test_case "multicast landscape on the shared highway" `Quick (fun () ->
        (* Players at nodes 1 and 2 only. The cheapest joint design routes
           player 1 across both spokes onto player 2's private edge
           (0.3 + 0.3 + 1.0 = 1.6) — but it is not stable (player 1 would
           rather pay 1.0 directly). The best equilibrium shares the hub
           (1.8); the worst is all-private (2.0). *)
        let spec = Gm.multicast ~graph:(shared_highway ()) ~root:0 ~terminals:[ 1; 2 ] in
        let l = Gm.Exact.state_landscape spec in
        Alcotest.check fl "optimum" 1.6 l.Gm.Exact.optimum;
        (match l.Gm.Exact.best_eq with
        | Some (w, _) -> Alcotest.check fl "best equilibrium shares the hub" 1.8 w
        | None -> Alcotest.fail "no equilibrium");
        (match l.Gm.Exact.worst_eq with
        | Some (w, _) -> Alcotest.check fl "worst equilibrium is all-private" 2.0 w
        | None -> Alcotest.fail "no equilibrium");
        Alcotest.(check bool) "several states" true (l.Gm.Exact.n_states > 4));
    Alcotest.test_case "state landscape guards against explosion" `Quick (fun () ->
        let spec = Gm.multicast ~graph:(shared_highway ()) ~root:0 ~terminals:[ 1; 2; 3 ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Gm.Exact.state_landscape ~max_states:3 spec);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "epsilon-equilibrium measures" `Quick (fun () ->
        let graph = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ] in
        let spec = Gm.broadcast ~graph ~root:0 in
        (* On the expensive edge: gain = 2 - 1 = 1; ratio = 2. *)
        Alcotest.check fl "additive" 1.0 (Gm.additive_instability spec [| [ 1 ] |]);
        (match Gm.multiplicative_instability spec [| [ 1 ] |] with
        | Some a -> Alcotest.check fl "multiplicative" 2.0 a
        | None -> Alcotest.fail "finite alpha expected");
        Alcotest.(check bool) "eps 0.5 insufficient" false
          (Gm.is_epsilon_equilibrium spec [| [ 1 ] |] ~epsilon:0.5);
        Alcotest.(check bool) "eps 1.0 sufficient" true
          (Gm.is_epsilon_equilibrium spec [| [ 1 ] |] ~epsilon:1.0);
        Alcotest.check fl "equilibrium has zero instability" 0.0
          (Gm.additive_instability spec [| [ 0 ] |]));
    Alcotest.test_case "Pareto frontier on the quickstart instance" `Quick (fun () ->
        (* 0-1-2-3 chain (2 each) + shortcut (0,3) w 3.5. MST (weight 6)
           needs 1/6 of subsidies; the tree through the shortcut
           (weight 7.5 - 2... trees: chain (6); shortcut variants). *)
        let graph = G.create ~n:4 [ (0, 1, 2.0); (1, 2, 2.0); (2, 3, 2.0); (0, 3, 3.5) ] in
        let frontier = Snd.pareto_frontier ~graph ~root:0 in
        Alcotest.(check bool) "non-empty" true (frontier <> []);
        (* Weights strictly increase along the frontier while costs
           strictly decrease. *)
        let rec check_monotone = function
          | a :: (b :: _ as rest) ->
              Alcotest.(check bool) "weights increase" true (a.Snd.weight < b.Snd.weight);
              Alcotest.(check bool) "costs decrease" true
                (a.Snd.subsidy_cost > b.Snd.subsidy_cost);
              check_monotone rest
          | _ -> ()
        in
        check_monotone frontier;
        (* The head is the MST with its LP cost. *)
        (match frontier with
        | head :: _ ->
            Alcotest.check fl "head is the MST" 6.0 head.Snd.weight;
            Alcotest.check fl "with the LP optimum" (1.0 /. 6.0) head.Snd.subsidy_cost
        | [] -> ());
        (* The tail needs no subsidies: the best unsubsidized equilibrium. *)
        match List.rev frontier with
        | last :: _ ->
            Alcotest.check fl "free tail" 0.0 last.Snd.subsidy_cost;
            let best_eq =
              (Gm.Exact.equilibrium_landscape ~graph ~root:0).Gm.Exact.best_equilibrium
            in
            Alcotest.check fl "tail = best unsubsidized equilibrium"
              (fst (Option.get best_eq)) last.Snd.weight
        | [] -> ());
    Alcotest.test_case "engine frontier is byte-identical to brute force on the corpus"
      `Slow (fun () ->
        (* The stacked-PR acceptance bar: on every committed instance the
           branch-and-bound engine's frontier must match the exhaustive
           enumeration exactly — same (budget, weight) pairs over exact
           rationals, not approximately. *)
        let module SndR = Repro_core.Snd.Rat in
        let module SearchR = Repro_core.Snd_search.Rat in
        let module SerialR = Repro_core.Serial.Rat in
        let module Q = Repro_field.Rational in
        let dir = "../instances" in
        let insts =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".inst")
          |> List.sort compare
        in
        Alcotest.(check bool) "corpus found" true (insts <> []);
        List.iter
          (fun file ->
            let t = SerialR.load (Filename.concat dir file) in
            let graph = t.SerialR.graph and root = t.SerialR.root in
            let brute = SndR.pareto_frontier_brute ~graph ~root in
            let engine, _ = SearchR.pareto_frontier ~graph ~root () in
            if List.length brute <> List.length engine then
              Alcotest.failf "%s: %d brute points vs %d engine points" file
                (List.length brute) (List.length engine);
            List.iter2
              (fun (b : SndR.design) (e : SearchR.design) ->
                if
                  Q.compare b.SndR.subsidy_cost e.SearchR.subsidy_cost <> 0
                  || Q.compare b.SndR.weight e.SearchR.weight <> 0
                then
                  Alcotest.failf "%s: frontier mismatch (%s, %s) vs (%s, %s)" file
                    (Q.to_string b.SndR.subsidy_cost)
                    (Q.to_string b.SndR.weight)
                    (Q.to_string e.SearchR.subsidy_cost)
                    (Q.to_string e.SearchR.weight))
              brute engine)
          insts);
    Alcotest.test_case "best_for_budget walks the frontier" `Quick (fun () ->
        let graph = G.create ~n:4 [ (0, 1, 2.0); (1, 2, 2.0); (2, 3, 2.0); (0, 3, 3.5) ] in
        let frontier = Snd.pareto_frontier ~graph ~root:0 in
        (match Snd.best_for_budget frontier ~budget:1.0 with
        | Some d -> Alcotest.check fl "rich budget buys the MST" 6.0 d.Snd.weight
        | None -> Alcotest.fail "feasible");
        match Snd.best_for_budget frontier ~budget:0.0 with
        | Some d ->
            Alcotest.(check bool) "zero budget costs nothing" true
              (Fx.approx_eq d.Snd.subsidy_cost 0.0)
        | None -> Alcotest.fail "zero budget is always feasible");
  ]

let prop ?(count = 20) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "broadcast: state landscape agrees with the tree landscape" (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 7) ~n:(3 + (seed mod 3)) ~extra:2 ~seed ()
        in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        match Gm.Exact.state_landscape ~max_states:300_000 spec with
        | exception Invalid_argument _ -> true (* state space too large: skip *)
        | sl ->
            let tl = Gm.Exact.equilibrium_landscape ~graph ~root in
            (* Optima agree (MST weight = cheapest state cost) and best
               equilibrium weights agree (the cycle argument of Section 2:
               non-tree equilibria cost no less). *)
            Fx.approx_eq sl.Gm.Exact.optimum tl.Gm.Exact.mst_weight
            &&
            (match (sl.Gm.Exact.best_eq, tl.Gm.Exact.best_equilibrium) with
            | Some (a, _), Some (b, _) -> Fx.approx_eq a b
            | None, None -> true
            | _ -> false));
    prop "frontier points are enforceable at their stated budget" ~count:10 (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 7) ~n:(4 + (seed mod 2)) ~extra:2 ~seed ()
        in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        let spec = Instances.spec inst in
        let frontier = Snd.pareto_frontier ~graph ~root in
        frontier <> []
        && List.for_all
             (fun d ->
               let tree = G.Tree.of_edge_ids graph ~root d.Snd.tree_edges in
               Gm.Broadcast.is_tree_equilibrium ~subsidy:d.Snd.subsidy spec tree)
             frontier);
    prop "BR dynamics strictly decrease additive instability to zero" ~count:15
      (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 8) ~n:(4 + (seed mod 4)) ~extra:3 ~seed ()
        in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let start = Gm.Broadcast.state_of_tree spec ~root:inst.Instances.root tree in
        let out = Gm.Dynamics.best_response_dynamics spec start in
        out.Gm.Dynamics.converged
        && Fx.approx_eq (Gm.additive_instability spec out.Gm.Dynamics.state) 0.0);
  ]

let suite = unit_tests @ property_tests
