The CLI end-to-end, on deterministic seeds.

Solving SNE with the broadcast LP:

  $ sne_cli solve --seed 3 -n 9
  instance: seed=3, 9 nodes, 14 edges, root 3, target tree weight 21.000
  LP (3): total subsidies 0.9167 (4.37% of the tree)
    edge 8 (8-6, weight 3.000): subsidize 0.9167
  MST is an equilibrium under this plan: true

The Theorem 6 construction spends its full 1/e guarantee:

  $ sne_cli solve --seed 3 -n 9 --method thm6 | tail -n +2 | head -n 1
  Theorem 6 construction: total subsidies 7.7255 (36.79% of the tree)

Loading an instance from a file (rational weights allowed):

  $ cat > line.inst <<'END'
  > nodes 3
  > root 0
  > edge 0 1 2
  > edge 1 2 2
  > edge 0 2 5/2
  > tree 0 1
  > END
  $ sne_cli solve --file line.inst
  instance: line.inst, 3 nodes, 3 edges, root 0, target tree weight 4.000
  LP (3): total subsidies 0.5000 (12.50% of the tree)
    edge 1 (1-2, weight 2.000): subsidize 0.5000
  MST is an equilibrium under this plan: true

The exact equilibrium landscape:

  $ sne_cli landscape --seed 4 -n 7
  spanning trees: 284, of which equilibria: 4
  MST weight: 30.000
  best equilibrium: weight 30.000, edges 0,1,5,6,9,11
  worst equilibrium: weight 37.000
  price of stability: 1.0000 (H_n bound: 2.4500)

The Theorem 11 family converging to 1/e:

  $ sne_cli lower-bound --family cycle --max-n 32
  
  == Theorem 11: unit cycle ==
  +----+--------+--------+
  | n  | ratio  | 1/e    |
  +----+--------+--------+
  | 8  | 0.3317 | 0.3679 |
  | 16 | 0.3490 | 0.3679 |
  | 32 | 0.3582 | 0.3679 |
  +----+--------+--------+

The bypass reduction:

  $ sne_cli reduction --which bypass
  capacity 4, beta 1: connector deviates = true
  capacity 4, beta 2: connector deviates = true
  capacity 4, beta 3: connector deviates = true
  capacity 4, beta 4: connector deviates = false
  capacity 4, beta 5: connector deviates = false
  capacity 4, beta 6: connector deviates = false
  capacity 4, beta 7: connector deviates = false
  capacity 4, beta 8: connector deviates = false

The shipped instance corpus loads and solves:

  $ sne_cli solve --file ../../instances/twin_hubs.inst
  instance: ../../instances/twin_hubs.inst, 7 nodes, 10 edges, root 0, target tree weight 7.600
  LP (3): total subsidies 0.6000 (7.89% of the tree)
    edge 5 (2-5, weight 1.000): subsidize 0.3000
    edge 8 (4-6, weight 1.000): subsidize 0.3000
  MST is an equilibrium under this plan: true

  $ sne_cli solve --file ../../instances/cycle16.inst | head -n 2
  instance: ../../instances/cycle16.inst, 17 nodes, 17 edges, root 0, target tree weight 16.000
  LP (3): total subsidies 5.5844 (34.90% of the tree)

The branch-and-bound design engine agrees with brute-force enumeration:

  $ sne_cli design --file ../../instances/twin_hubs.inst --budget 0.5
  instance: ../../instances/twin_hubs.inst, 7 nodes, 10 edges, root 0, budget 0.500
  design: weight 7.800, enforcement cost 0.3000, edges 2,4,5,6,7,8
  search: 6 trees seen, 5 priced, 0 lb-pruned, 1 incumbent-skips, 0 cache hits, 7 nodes expanded

  $ sne_cli design --file ../../instances/twin_hubs.inst --budget 0.5 --engine brute
  instance: ../../instances/twin_hubs.inst, 7 nodes, 10 edges, root 0, budget 0.500
  design: weight 7.800, enforcement cost 0.3000, edges 2,4,5,6,7,8

The frontier is identical through either engine:

  $ sne_cli pareto --file ../../instances/twin_hubs.inst --engine brute
  
  == budget menu (Pareto frontier) ==
  +-----------------+---------------+-----------------+
  | required budget | design weight | overhead vs MST |
  +-----------------+---------------+-----------------+
  | 0.6000          | 7.6000        | +0.0%           |
  | 0.3000          | 7.8000        | +2.6%           |
  | 0.0667          | 8.5000        | +11.8%          |
  | 0               | 8.6000        | +13.2%          |
  +-----------------+---------------+-----------------+
  Theorem 6 budget wgt(MST)/e = 2.796 always buys the MST.

A cutting-plane run that exhausts its round limit fails loudly (the
printed subsidy may under-enforce), instead of the old silent exit 0:

  $ sne_cli solve --seed 3 -n 9 --method cut --max-rounds 0
  instance: seed=3, 9 nodes, 14 edges, root 3, target tree weight 21.000
  cutting plane: 0 rounds, 0 constraints generated, 0 pivots
  LP (1) via cutting planes: total subsidies 0.0000 (0.00% of the tree)
  MST is an equilibrium under this plan: false
  sne_cli: cutting plane hit the round limit with violated constraints outstanding; the printed subsidy may under-enforce — re-run with a higher --max-rounds
  [1]

An unaffordable budget is an error, not a quiet empty answer:

  $ sne_cli design --file ../../instances/twin_hubs.inst --budget=-1
  instance: ../../instances/twin_hubs.inst, 7 nodes, 10 edges, root 0, budget -1.000
  search: 64 trees seen, 0 priced, 64 lb-pruned, 0 incumbent-skips, 0 cache hits, 64 nodes expanded
  sne_cli: no design within budget
  [1]

A converged solve still exits 0 with --stats, and the report includes the
solver counters:

  $ sne_cli solve --seed 3 -n 9 --stats | grep -o "sne.broadcast_solves"
  sne.broadcast_solves

  $ sne_cli design --file ../../instances/twin_hubs.inst --budget 0.5 --stats | grep -oE "snd.trees_priced +\| 5"
  snd.trees_priced                | 5

--trace writes the span tree as JSON:

  $ sne_cli solve --seed 3 -n 9 --trace trace.json >/dev/null && grep -o '"name": "sne.broadcast"' trace.json
  "name": "sne.broadcast"

A failing run still emits its stats before the nonzero exit:

  $ sne_cli solve --seed 3 -n 9 --method cut --max-rounds 0 --stats 2>/dev/null | grep -o "sne.nonconverged"
  sne.nonconverged

The sparse revised-simplex backend agrees with the dense kernel through
every method (per-edge subsidy lines are skipped: alternate optima may
distribute the same total differently between backends):

  $ sne_cli solve --seed 3 -n 9 --backend sparse | head -n 2
  instance: seed=3, 9 nodes, 14 edges, root 3, target tree weight 21.000
  LP (3): total subsidies 0.9167 (4.37% of the tree)

  $ sne_cli solve --seed 8 --method cut --backend sparse --domains 2 | grep -v "  edge "
  instance: seed=8, 10 nodes, 15 edges, root 1, target tree weight 45.000
  cutting plane: 1 rounds, 1 constraints generated, 1 pivots
  LP (1) via cutting planes: total subsidies 2.1333 (4.74% of the tree)
  MST is an equilibrium under this plan: true

and its solves are visible in the observability report:

  $ sne_cli solve --seed 8 --method cut --backend sparse --stats | grep -oE "lp.sparse.pivots +\| 1" | head -n 1
  lp.sparse.pivots                | 1

The request service over stdio: responses come back in request order, a
malformed line gets a structured parse error without killing the loop,
and replaying an instance hits the response cache:

  $ printf 'id=a kind=check inst=nodes%%202%%0Aroot%%200%%0Aedge%%200%%201%%203%%0A\nid=b kind=bogus inst=x\nid=c kind=check inst=nodes%%202%%0Aroot%%200%%0Aedge%%200%%201%%203%%0A\n' \
  >   | sne_cli serve --stdio | sed -E 's/"elapsed_ms":[-0-9.e+]+/"elapsed_ms":_/'
  {"id":"a","status":"ok","cache_hit":false,"elapsed_ms":_,"outcome":{"type":"check","equilibrium":true,"tree_weight":3.0}}
  {"id":"b","status":"error","cache_hit":false,"elapsed_ms":_,"reason":"parse_error","detail":"key \"kind\": expected sne, enforce, snd, check, open, mutate, resolve or close, got \"bogus\""}
  {"id":"c","status":"ok","cache_hit":true,"elapsed_ms":_,"outcome":{"type":"check","equilibrium":true,"tree_weight":3.0}}

Clean end-of-stream: a serve loop whose stdin closes with nothing in it
drains and exits 0 with no output, on both wires — EOF is a shutdown
signal, not an error:

  $ sne_cli serve --stdio </dev/null
  $ sne_cli serve --stdio --wire=binary </dev/null

Sharding: the same replay through two shards routes both copies of the
instance to the same shard, so the response cache still hits:

  $ printf 'id=a kind=check inst=nodes%%202%%0Aroot%%200%%0Aedge%%200%%201%%203%%0A\nid=b kind=check inst=nodes%%202%%0Aroot%%200%%0Aedge%%200%%201%%203%%0A\n' \
  >   | sne_cli serve --stdio --shards=2 | sed -E 's/"elapsed_ms":[-0-9.e+]+/"elapsed_ms":_/'
  {"id":"a","status":"ok","cache_hit":false,"elapsed_ms":_,"outcome":{"type":"check","equilibrium":true,"tree_weight":3.0}}
  {"id":"b","status":"ok","cache_hit":true,"elapsed_ms":_,"outcome":{"type":"check","equilibrium":true,"tree_weight":3.0}}

Per-shard observability: two instances whose digests route to different
shards show up under service.shard0.* and service.shard1.* in the stats
report, while the fleet-wide aggregate still counts both:

  $ printf 'id=a kind=check inst=nodes%%202%%0Aroot%%200%%0Aedge%%200%%201%%203%%0A\nid=b kind=check inst=nodes%%202%%0Aroot%%200%%0Aedge%%200%%201%%206%%0A\n' \
  >   | sne_cli serve --stdio --shards=2 --stats 2>/dev/null \
  >   | grep -E "service\.(shard[01]\.)?submitted" | tr -s ' '
  | service.shard0.submitted | 1 |
  | service.shard1.submitted | 1 |
  | service.submitted | 2 |

Streaming: a request with stream=1 receives progress events (here the
single SND incumbent) before its response; events carry "event" where
responses carry "status":

  $ printf 'id=s kind=snd budget=1000000 stream=1 inst=nodes%%202%%0Aroot%%200%%0Aedge%%200%%201%%203%%0A\n' \
  >   | sne_cli serve --stdio | sed -E 's/"elapsed_ms":[-0-9.e+]+/"elapsed_ms":_/'
  {"id":"s","event":"incumbent","weight":3.0,"subsidy_cost":0.0,"tree_edges":[0]}
  {"id":"s","status":"ok","cache_hit":false,"elapsed_ms":_,"outcome":{"type":"design","weight":3.0,"subsidy_cost":0.0,"tree_edges":[0]}}

The binary wire speaks the documented frame layout to a foreign client:
a request frame assembled byte-by-byte in python comes back as a framed
JSON response (version 1, tag 3 = check, zero flags, id "a"):

  $ python3 -c 'import struct,sys
  > inst=b"nodes 2\nroot 0\nedge 0 1 3\n"
  > body=bytes([1,3,0])+struct.pack(">H",1)+b"a"+struct.pack(">i",0)+struct.pack(">I",len(inst))+inst
  > sys.stdout.buffer.write(struct.pack(">I",len(body))+body)' \
  >   | sne_cli serve --stdio --wire=binary \
  >   | python3 -c 'import struct,sys
  > r=sys.stdin.buffer
  > while True:
  >     h=r.read(4)
  >     if not h: break
  >     (n,)=struct.unpack(">I",h)
  >     print(r.read(n).decode())' \
  >   | sed -E 's/"elapsed_ms":[-0-9.e+]+/"elapsed_ms":_/'
  {"id":"a","status":"ok","cache_hit":false,"elapsed_ms":_,"outcome":{"type":"check","equilibrium":true,"tree_weight":3.0}}

A corrupt frame (here a length prefix cut to two NUL bytes) answers with a
structured parse error and then stops reading — resynchronization on a
length-prefixed stream is impossible, but the loop still exits 0:

  $ printf '\000\000' | sne_cli serve --stdio --wire=binary \
  >   | python3 -c 'import struct,sys
  > r=sys.stdin.buffer
  > while True:
  >     h=r.read(4)
  >     if not h: break
  >     (n,)=struct.unpack(">I",h)
  >     print(r.read(n).decode())' \
  >   | sed -E 's/"elapsed_ms":[-0-9.e+]+/"elapsed_ms":_/'
  {"id":"","status":"error","cache_hit":false,"elapsed_ms":_,"reason":"parse_error","detail":"truncated length prefix"}
