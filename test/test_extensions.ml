(* Tests for the Section 6 extensions and the tooling around the core:
   combinatorial SNE (waterfill + closed-form single-constraint optimum),
   coalition (pair) stability, and instance serialization. *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Co = Repro_game.Coalition.Float_coalition
module Comb = Repro_core.Combinatorial.Float
module Sne = Repro_core.Sne_lp.Float
module Lb = Repro_core.Lower_bounds.Float
module Serial = Repro_core.Serial.Float
module SerialQ = Repro_core.Serial.Rat
module Q = Repro_field.Rational
module Instances = Repro_core.Instances
module Fx = Repro_util.Floatx

let fl = Alcotest.float 1e-7

let shared_highway () =
  (* From test_game: private edges w 1, spokes 0.3, hub 1.2. *)
  G.create ~n:5
    [ (1, 0, 1.0); (2, 0, 1.0); (3, 0, 1.0);
      (1, 4, 0.3); (2, 4, 0.3); (3, 4, 0.3); (4, 0, 1.2) ]

let unit_tests =
  [
    (* ---------------- combinatorial SNE ---------------- *)
    Alcotest.test_case "single-constraint optimum matches the LP on cycles" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let inst = Lb.cycle_instance ~n in
            let spec = Lb.spec inst in
            let tree = Lb.tree inst in
            let comb = Comb.single_constraint_opt spec ~root:inst.Lb.root tree in
            let lp = Sne.broadcast spec ~root:inst.Lb.root tree in
            Alcotest.check fl (Printf.sprintf "n=%d" n) lp.Sne.cost comb.Comb.cost;
            Alcotest.(check bool) "enforces" true
              (Gm.Broadcast.is_tree_equilibrium ~subsidy:comb.Comb.subsidy spec tree))
          [ 5; 9; 17; 33 ]);
    Alcotest.test_case "single-constraint solver rejects multi-constraint instances"
      `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 9) ~n:6 ~extra:4 ~seed:3 () in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Comb.single_constraint_opt spec ~root:inst.Instances.root tree);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "waterfill returns zero on stable instances" `Quick (fun () ->
        let graph = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ] in
        let spec = Gm.broadcast ~graph ~root:0 in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 0 ] in
        let r = Comb.waterfill spec ~root:0 tree in
        Alcotest.check fl "no spend" 0.0 r.Comb.cost);
    (* ---------------- coalitions ---------------- *)
    Alcotest.test_case "Nash but not pair-stable: the shared highway" `Quick (fun () ->
        (* All-private is a Nash equilibrium of the 3-player game, but two
           players jointly moving to the hub both gain
           (0.3 + 1.2/2 = 0.9 < 1). *)
        let spec = Gm.create ~graph:(shared_highway ()) ~pairs:[| (1, 0); (2, 0); (3, 0) |] in
        let all_private = [| [ 0 ]; [ 1 ]; [ 2 ] |] in
        Alcotest.(check bool) "Nash" true (Gm.is_equilibrium spec all_private);
        Alcotest.(check bool) "pair-refutable" true
          (Co.refute_pair_stability spec all_private <> None);
        Alcotest.(check bool) "exhaustive agrees" false
          (Co.is_pair_stable_exhaustive spec all_private));
    Alcotest.test_case "all-shared is pair-stable" `Quick (fun () ->
        let spec = Gm.create ~graph:(shared_highway ()) ~pairs:[| (1, 0); (2, 0); (3, 0) |] in
        let all_shared = [| [ 3; 6 ]; [ 4; 6 ]; [ 5; 6 ] |] in
        Alcotest.(check bool) "no quick refutation" true
          (Co.refute_pair_stability spec all_shared = None);
        Alcotest.(check bool) "exhaustively stable" true
          (Co.is_pair_stable_exhaustive spec all_shared));
    Alcotest.test_case "simple path enumeration counts" `Quick (fun () ->
        let g = shared_highway () in
        (* node 1 to 0: direct; spoke+hub; spoke+spoke+private (x2):
           1-4-2-0 and 1-4-3-0. Total 4 simple paths. *)
        Alcotest.(check int) "paths" 4
          (List.length (Co.simple_paths g ~src:1 ~dst:0 ~limit:100)));
    (* ---------------- serialization ---------------- *)
    Alcotest.test_case "parse a hand-written instance" `Quick (fun () ->
        let text =
          "# example\n\
           nodes 3\n\
           root 0\n\
           edge 0 1 2\n\
           edge 1 2 2\n\
           edge 0 2 5/2   # shortcut\n\
           tree 0 1\n\
           subsidy 1 0.5\n"
        in
        let t = Serial.of_string text in
        Alcotest.(check int) "nodes" 3 (G.n_nodes t.Serial.graph);
        Alcotest.(check int) "edges" 3 (G.n_edges t.Serial.graph);
        Alcotest.check fl "rational weight" 2.5 (G.weight t.Serial.graph 2);
        Alcotest.(check (option (list int))) "tree" (Some [ 0; 1 ]) t.Serial.tree_edge_ids;
        let b = Serial.subsidy_array t in
        Alcotest.check fl "subsidy" 0.5 b.(1);
        let tree = Serial.target_tree t in
        Alcotest.(check bool) "declared tree is the target" true
          (G.Tree.mem_edge tree 0 && G.Tree.mem_edge tree 1 && not (G.Tree.mem_edge tree 2)));
    Alcotest.test_case "the same file loads exactly into the rational stack" `Quick
      (fun () ->
        let text = "nodes 2\nroot 0\nedge 0 1 1/3\n" in
        let t = SerialQ.of_string text in
        Alcotest.(check string) "exact third" "1/3"
          (Q.to_string (SerialQ.G.weight t.SerialQ.graph 0)));
    Alcotest.test_case "round-trip through to_string" `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 9) ~n:7 ~extra:4 ~seed:5 () in
        let t =
          {
            Serial.graph = inst.Instances.graph;
            root = inst.Instances.root;
            tree_edge_ids = Some (G.Tree.edge_ids (Instances.mst_tree inst));
            subsidy = [ (0, 0.25) ];
            budget = None;
          }
        in
        let t' = Serial.of_string (Serial.to_string t) in
        Alcotest.(check int) "nodes" (G.n_nodes t.Serial.graph) (G.n_nodes t'.Serial.graph);
        Alcotest.(check int) "edges" (G.n_edges t.Serial.graph) (G.n_edges t'.Serial.graph);
        Alcotest.(check int) "root" t.Serial.root t'.Serial.root;
        Alcotest.(check (option (list int))) "tree" t.Serial.tree_edge_ids t'.Serial.tree_edge_ids;
        G.fold_edges t.Serial.graph ~init:() ~f:(fun () e ->
            Alcotest.check fl "weight" e.G.weight (G.weight t'.Serial.graph e.G.id)));
    Alcotest.test_case "parser rejects malformed input" `Quick (fun () ->
        List.iter
          (fun text ->
            Alcotest.(check bool) ("reject " ^ text) true
              (try
                 ignore (Serial.of_string text);
                 false
               with Failure _ | Invalid_argument _ -> true))
          [ "edge 0 1 2\n"; "nodes 2\nroot 5\nedge 0 1 2\n"; "nodes 2\nfrob 1\n" ]);
    (* Regression: 'subsidy' (and 'tree') lines referencing edge ids the
       instance never declares used to parse fine and only blow up — or
       silently misbehave — much later; ids are now validated at parse
       time, with the offending line's number in the message. *)
    Alcotest.test_case "parser rejects dangling edge-id references" `Quick (fun () ->
        let expect_line line text =
          match Serial.of_string text with
          | _ -> Alcotest.failf "accepted dangling reference: %s" text
          | exception Failure msg ->
              let prefix = Printf.sprintf "Serial line %d:" line in
              Alcotest.(check bool)
                (Printf.sprintf "%S starts with %S" msg prefix)
                true
                (String.length msg >= String.length prefix
                && String.sub msg 0 (String.length prefix) = prefix)
        in
        expect_line 4 "nodes 3\nroot 0\nedge 0 1 2\nsubsidy 7 0.5\n";
        expect_line 4 "nodes 3\nroot 0\nedge 0 1 2\nsubsidy -1 0.5\n";
        expect_line 5 "nodes 3\nroot 0\nedge 0 1 2\nedge 1 2 2\ntree 0 3\n";
        (* In-range references still parse. *)
        let t =
          Serial.of_string "nodes 3\nroot 0\nedge 0 1 2\nedge 1 2 2\nsubsidy 1 0.5\n"
        in
        Alcotest.check fl "valid subsidy kept" 0.5 (Serial.subsidy_array t).(1));
    Alcotest.test_case "save/load through a temp file" `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 5) ~n:5 ~extra:2 ~seed:9 () in
        let t =
          { Serial.graph = inst.Instances.graph; root = inst.Instances.root;
            tree_edge_ids = None; subsidy = []; budget = None }
        in
        let path = Filename.temp_file "sne" ".inst" in
        Serial.save path t;
        let t' = Serial.load path in
        Sys.remove path;
        Alcotest.(check int) "edges" (G.n_edges t.Serial.graph) (G.n_edges t'.Serial.graph));
  ]

let prop ?(count = 30) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "waterfill enforces and is between the LP optimum and Theorem 6" (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 9) ~n:(4 + (seed mod 6))
            ~extra:(2 + (seed mod 4)) ~seed ()
        in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let r = Comb.waterfill spec ~root:inst.Instances.root tree in
        let lp = Sne.broadcast spec ~root:inst.Instances.root tree in
        Gm.Broadcast.is_tree_equilibrium ~subsidy:r.Comb.subsidy spec tree
        && Fx.leq lp.Sne.cost (r.Comb.cost +. 1e-7))
    ;
    prop "waterfill subsidies respect the box constraints" (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 9) ~n:(4 + (seed mod 6))
            ~extra:(2 + (seed mod 4)) ~seed ()
        in
        let spec = Instances.spec inst in
        let graph = inst.Instances.graph in
        let tree = Instances.mst_tree inst in
        let r = Comb.waterfill spec ~root:inst.Instances.root tree in
        Array.for_all2
          (fun b (e : G.edge) ->
            Fx.geq b 0.0 && Fx.leq b e.G.weight
            && (G.Tree.mem_edge tree e.G.id || Fx.approx_eq b 0.0))
          r.Comb.subsidy
          (Array.init (G.n_edges graph) (G.edge graph)));
    prop "pair-stability refutation implies Nash or joint instability is real"
      ~count:20 (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 9) ~n:(4 + (seed mod 4)) ~extra:3 ~seed ()
        in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let state = Gm.Broadcast.state_of_tree spec ~root:inst.Instances.root tree in
        match Co.refute_pair_stability spec state with
        | None -> true
        | Some (i, j, pi, pj) ->
            (* The returned witness really is a joint improvement, and the
               exhaustive check agrees the state is unstable. *)
            Co.joint_improvement spec state i j pi pj
            && not (Co.is_pair_stable_exhaustive spec state));
    prop "serialization round-trips random instances" ~count:25 (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 9) ~n:(4 + (seed mod 8))
            ~extra:(seed mod 6) ~seed ()
        in
        let t =
          { Serial.graph = inst.Instances.graph; root = inst.Instances.root;
            tree_edge_ids = None; subsidy = []; budget = None }
        in
        let t' = Serial.of_string (Serial.to_string t) in
        G.n_edges t'.Serial.graph = G.n_edges t.Serial.graph
        && G.fold_edges t.Serial.graph ~init:true ~f:(fun ok e ->
               ok
               && Fx.approx_eq e.G.weight (G.weight t'.Serial.graph e.G.id)
               && G.endpoints t.Serial.graph e.G.id = G.endpoints t'.Serial.graph e.G.id));
  ]

let suite = unit_tests @ property_tests
