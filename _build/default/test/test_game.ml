(* Tests for the network design game engine: costs, potential, best
   responses, equilibrium checks (the general Dijkstra-based check vs the
   Lemma 2 broadcast fast path — their agreement on random games is the key
   property), best-response dynamics, and the exact equilibrium landscape. *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Prng = Repro_util.Prng

let fl = Alcotest.float 1e-9

(* The classic two-link example: root r = 0, player node 1, parallel edges
   of weight 1 and 2. *)
let two_link () = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ]

(* Shared-highway example: three terminals can each use a private edge of
   weight 1 to the root, or reach a hub through a 0.3 spoke and share the
   1.2 hub-root edge. Both all-private and all-shared are equilibria of the
   3-player game; sharing is socially cheaper. *)
let shared_vs_private () =
  (* Nodes: 0 = root; 1, 2, 3 = terminals; 4 = hub.
     Edge ids: 0-2 = private (i,0) w 1; 3-5 = spokes (i,4) w 0.3;
     6 = hub edge (4,0) w 1.2. *)
  G.create ~n:5
    [
      (1, 0, 1.0); (2, 0, 1.0); (3, 0, 1.0);
      (1, 4, 0.3); (2, 4, 0.3); (3, 4, 0.3);
      (4, 0, 1.2);
    ]

(* The 3-player (non-broadcast) game on the same graph: the hub is shared
   infrastructure, not a player. *)
let three_player_spec () =
  Gm.create ~graph:(shared_vs_private ()) ~pairs:[| (1, 0); (2, 0); (3, 0) |]

let random_broadcast seed =
  let rng = Prng.create seed in
  let n = Prng.int_in_range rng ~lo:3 ~hi:8 in
  let extra = Prng.int rng 6 in
  let graph =
    G.Gen.random_connected rng ~n ~extra_edges:extra
      ~rand_weight:(fun rng -> float_of_int (Prng.int_in_range rng ~lo:0 ~hi:12))
  in
  (graph, Prng.int rng n)

let random_subsidy rng (graph : G.t) =
  Array.init (G.n_edges graph) (fun id ->
      if Prng.bool rng then 0.0 else Prng.float rng (G.weight graph id))

let unit_tests =
  [
    Alcotest.test_case "broadcast spec enumerates non-root nodes" `Quick (fun () ->
        let spec = Gm.broadcast ~graph:(shared_vs_private ()) ~root:0 in
        Alcotest.(check int) "players" 4 (Gm.n_players spec);
        Alcotest.(check int) "player of node 3" 2 (Gm.broadcast_player ~root:0 3);
        Alcotest.check_raises "root has no player"
          (Invalid_argument "Game.broadcast_player: root has no player") (fun () ->
            ignore (Gm.broadcast_player ~root:0 0)));
    Alcotest.test_case "create validates terminals" `Quick (fun () ->
        let g = two_link () in
        Alcotest.check_raises "same endpoints"
          (Invalid_argument "Game.create: source equals target") (fun () ->
            ignore (Gm.create ~graph:g ~pairs:[| (1, 1) |])));
    Alcotest.test_case "player costs share edge weights" `Quick (fun () ->
        let g = shared_vs_private () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        (* All three terminals (and the hub player) share the hub edge. *)
        let state = [| [ 3; 6 ]; [ 4; 6 ]; [ 5; 6 ]; [ 6 ] |] in
        Gm.validate_state spec state;
        Alcotest.check fl "terminal pays 0.3 + 1.2/4" 0.6 (Gm.player_cost spec state 0);
        Alcotest.check fl "hub player pays 1.2/4" 0.3 (Gm.player_cost spec state 3);
        Alcotest.check fl "social cost counts edges once" 2.1 (Gm.social_cost spec state));
    Alcotest.test_case "subsidies reduce player cost but not social cost" `Quick (fun () ->
        let g = shared_vs_private () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        let state = [| [ 3; 6 ]; [ 4; 6 ]; [ 5; 6 ]; [ 6 ] |] in
        let subsidy = Gm.no_subsidy spec in
        subsidy.(6) <- 0.6;
        Alcotest.check fl "half-subsidized hub" 0.45 (Gm.player_cost ~subsidy spec state 0);
        Alcotest.check fl "social cost unchanged" 2.1 (Gm.social_cost spec state));
    Alcotest.test_case "Rosenthal potential on a shared edge" `Quick (fun () ->
        let g = shared_vs_private () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        let state = [| [ 3; 6 ]; [ 4; 6 ]; [ 5; 6 ]; [ 6 ] |] in
        (* Phi = 3 * 0.3 * H_1 + 1.2 * H_4 = 0.9 + 1.2 * 25/12 = 3.4. *)
        Alcotest.check fl "potential" 3.4 (Gm.potential spec state));
    Alcotest.test_case "best response prices deviation shares" `Quick (fun () ->
        let spec = three_player_spec () in
        (* Everyone private, hub idle: deviating to the hub costs
           0.3 + 1.2/1 = 1.5 > 1, and cutting across a neighbour's spoke
           costs 0.3 + 0.3 + 1/2 = 1.1 > 1: stay. *)
        let state = [| [ 0 ]; [ 1 ]; [ 2 ] |] in
        let cost, path = Gm.best_response spec state 0 in
        Alcotest.check fl "stay on the private edge" 1.0 cost;
        Alcotest.(check (list int)) "private path" [ 0 ] path;
        (* With the other two already on the hub, joining costs
           0.3 + 1.2/3 = 0.7 < 1. *)
        let state = [| [ 0 ]; [ 4; 6 ]; [ 5; 6 ] |] in
        let cost, path = Gm.best_response spec state 0 in
        Alcotest.check fl "join the hub" 0.7 cost;
        Alcotest.(check (list int)) "hub path" [ 3; 6 ] path);
    Alcotest.test_case "equilibrium detection on the two-link game" `Quick (fun () ->
        let g = two_link () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        Alcotest.(check bool) "cheap edge is an equilibrium" true
          (Gm.is_equilibrium spec [| [ 0 ] |]);
        Alcotest.(check bool) "expensive edge is not" false
          (Gm.is_equilibrium spec [| [ 1 ] |]);
        match Gm.worst_violation spec [| [ 1 ] |] with
        | Some (i, cur, dev, path) ->
            Alcotest.(check int) "player" 0 i;
            Alcotest.check fl "current" 2.0 cur;
            Alcotest.check fl "deviation" 1.0 dev;
            Alcotest.(check (list int)) "deviating path" [ 0 ] path
        | None -> Alcotest.fail "expected a violation");
    Alcotest.test_case "subsidies can enforce the expensive edge" `Quick (fun () ->
        let g = two_link () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        let subsidy = Gm.no_subsidy spec in
        subsidy.(1) <- 1.0;
        (* Net weight 1 vs 1: deviation no longer strictly better. *)
        Alcotest.(check bool) "enforced" true (Gm.is_equilibrium ~subsidy spec [| [ 1 ] |]));
    Alcotest.test_case "both equilibria of shared_vs_private are found" `Quick (fun () ->
        let spec = three_player_spec () in
        let all_private = [| [ 0 ]; [ 1 ]; [ 2 ] |] in
        let all_shared = [| [ 3; 6 ]; [ 4; 6 ]; [ 5; 6 ] |] in
        Alcotest.(check bool) "all-private is an equilibrium" true
          (Gm.is_equilibrium spec all_private);
        Alcotest.(check bool) "all-shared is an equilibrium" true
          (Gm.is_equilibrium spec all_shared);
        Alcotest.check fl "private social cost" 3.0 (Gm.social_cost spec all_private);
        Alcotest.check fl "shared social cost" 2.1 (Gm.social_cost spec all_shared));
    Alcotest.test_case "best-response dynamics converge to an equilibrium" `Quick (fun () ->
        let g = shared_vs_private () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        (* Start from a mixed profile. *)
        let start = [| [ 0 ]; [ 4; 6 ]; [ 2 ]; [ 6 ] |] in
        let out = Gm.Dynamics.best_response_dynamics spec start in
        Alcotest.(check bool) "converged" true out.converged;
        Alcotest.(check bool) "final state is an equilibrium" true
          (Gm.is_equilibrium spec out.state));
    Alcotest.test_case "tree equilibrium check via Lemma 2" `Quick (fun () ->
        let g = shared_vs_private () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        (* All-private + one spoke: the terminal at node 2 pays 1 and can
           cut across to node 1's private edge for 0.3 + 0.15 + 1/3 < 1. *)
        let tree_private = G.Tree.of_edge_ids g ~root:0 [ 0; 1; 2; 3 ] in
        Alcotest.(check bool) "all-private tree is not an equilibrium" false
          (Gm.Broadcast.is_tree_equilibrium spec tree_private);
        let tree_shared = G.Tree.of_edge_ids g ~root:0 [ 3; 4; 5; 6 ] in
        Alcotest.(check bool) "all-shared tree is an equilibrium" true
          (Gm.Broadcast.is_tree_equilibrium spec tree_shared));
    Alcotest.test_case "exact landscape of shared_vs_private" `Quick (fun () ->
        let l = Gm.Exact.equilibrium_landscape ~graph:(shared_vs_private ()) ~root:0 in
        (* MST = three spokes + one private edge = 0.9 + 1.0 = 1.9. *)
        Alcotest.check fl "mst weight" 1.9 l.mst_weight;
        (match l.best_equilibrium with
        | Some (w, _) -> Alcotest.check fl "best equilibrium" 1.9 w
        | None -> Alcotest.fail "no equilibrium found");
        (match l.worst_equilibrium with
        | Some (w, _) -> Alcotest.check fl "worst equilibrium" 2.1 w
        | None -> Alcotest.fail "no equilibrium found");
        match Gm.Exact.price_of_stability ~graph:(shared_vs_private ()) ~root:0 with
        | Some pos -> Alcotest.check fl "PoS is 1 here" 1.0 pos
        | None -> Alcotest.fail "PoS undefined");
    Alcotest.test_case "validate_state rejects broken paths" `Quick (fun () ->
        let g = two_link () in
        let spec = Gm.broadcast ~graph:g ~root:0 in
        Alcotest.check_raises "wrong arity"
          (Invalid_argument "Game.validate_state: wrong number of strategies") (fun () ->
            Gm.validate_state spec [||]);
        Alcotest.check_raises "dangling"
          (Invalid_argument "Game.validate_state: path does not reach target") (fun () ->
            Gm.validate_state spec [| [] |]));
  ]

let prop ?(count = 40) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "Lemma 2 tree check agrees with the general equilibrium check" (fun seed ->
        let graph, root = random_broadcast seed in
        let spec = Gm.broadcast ~graph ~root in
        let rng = Prng.create (seed + 17) in
        let ok = ref true in
        (* Check several spanning trees, with and without random subsidies. *)
        let trees = ref [] in
        G.Enumerate.iter_spanning_trees graph ~f:(fun t -> trees := t :: !trees);
        let trees = Array.of_list !trees in
        for _ = 1 to min 6 (Array.length trees) do
          let ids = trees.(Prng.int rng (Array.length trees)) in
          let tree = G.Tree.of_edge_ids graph ~root ids in
          let state = Gm.Broadcast.state_of_tree spec ~root tree in
          let subsidy = if Prng.bool rng then None else Some (random_subsidy rng graph) in
          let fast = Gm.Broadcast.is_tree_equilibrium ?subsidy spec tree in
          let slow = Gm.is_equilibrium ?subsidy spec state in
          if fast <> slow then ok := false
        done;
        !ok);
    prop "best response never exceeds the current cost" (fun seed ->
        let graph, root = random_broadcast seed in
        let spec = Gm.broadcast ~graph ~root in
        let ids = Option.get (G.mst_kruskal graph) in
        let tree = G.Tree.of_edge_ids graph ~root ids in
        let state = Gm.Broadcast.state_of_tree spec ~root tree in
        let ok = ref true in
        for i = 0 to Gm.n_players spec - 1 do
          let cost, _ = Gm.best_response spec state i in
          if not (Repro_util.Floatx.leq cost (Gm.player_cost spec state i)) then ok := false
        done;
        !ok);
    prop "improving moves strictly decrease the Rosenthal potential" (fun seed ->
        let graph, root = random_broadcast seed in
        let spec = Gm.broadcast ~graph ~root in
        let ids = Option.get (G.mst_kruskal graph) in
        let tree = G.Tree.of_edge_ids graph ~root ids in
        let state = Gm.Broadcast.state_of_tree spec ~root tree in
        let ok = ref true in
        for i = 0 to Gm.n_players spec - 1 do
          let before_cost = Gm.player_cost spec state i in
          let cost, path = Gm.best_response spec state i in
          if Repro_util.Floatx.lt cost before_cost then begin
            let phi_before = Gm.potential spec state in
            let state' = Array.copy state in
            state'.(i) <- path;
            let phi_after = Gm.potential spec state' in
            (* Potential drop equals the player's cost drop. *)
            if not (Repro_util.Floatx.approx_eq ~eps:1e-6 (phi_before -. phi_after) (before_cost -. cost))
            then ok := false
          end
        done;
        !ok);
    prop "BR dynamics from the MST converge and end in an equilibrium" (fun seed ->
        let graph, root = random_broadcast seed in
        let spec = Gm.broadcast ~graph ~root in
        let ids = Option.get (G.mst_kruskal graph) in
        let tree = G.Tree.of_edge_ids graph ~root ids in
        let state = Gm.Broadcast.state_of_tree spec ~root tree in
        let out = Gm.Dynamics.best_response_dynamics spec state in
        out.converged && Gm.is_equilibrium spec out.state);
    prop ~count:25 "PoS bounds: 1 <= PoS <= H_n (Anshelevich et al.)" (fun seed ->
        let graph, root = random_broadcast seed in
        match Gm.Exact.price_of_stability ~graph ~root with
        | None -> false (* Rosenthal guarantees a tree equilibrium exists *)
        | Some pos ->
            let n = G.n_nodes graph - 1 in
            Repro_util.Floatx.geq pos 1.0
            && Repro_util.Floatx.leq pos (Repro_util.Harmonic.h n));
    prop ~count:25 "the Rosenthal potential minimizer is an equilibrium" (fun seed ->
        (* The argument behind existence (and behind Anshelevich et al.'s
           H_n bound): a state locally minimizing the potential admits no
           improving move. Check the global minimizer over spanning
           trees. *)
        let graph, root = random_broadcast seed in
        let spec = Gm.broadcast ~graph ~root in
        let best = ref None in
        G.Enumerate.iter_spanning_trees graph ~f:(fun ids ->
            let tree = G.Tree.of_edge_ids graph ~root ids in
            let state = Gm.Broadcast.state_of_tree spec ~root tree in
            let phi = Gm.potential spec state in
            match !best with
            | Some (p, _) when p <= phi -> ()
            | _ -> best := Some (phi, state));
        (match !best with
        | Some (_, state) -> Gm.is_equilibrium spec state
        | None -> false));
    prop ~count:25 "social cost equals the sum of player costs" (fun seed ->
        let graph, root = random_broadcast seed in
        let spec = Gm.broadcast ~graph ~root in
        let ids = Option.get (G.mst_kruskal graph) in
        let tree = G.Tree.of_edge_ids graph ~root ids in
        let state = Gm.Broadcast.state_of_tree spec ~root tree in
        let total = ref 0.0 in
        for i = 0 to Gm.n_players spec - 1 do
          total := !total +. Gm.player_cost spec state i
        done;
        Repro_util.Floatx.approx_eq ~eps:1e-6 !total (Gm.social_cost spec state));
  ]

let suite = unit_tests @ property_tests
