(* Unit and property tests for the arbitrary-precision integer substrate.

   Properties are checked against native int arithmetic on ranges where the
   native result is exact, and against algebraic identities (ring axioms,
   division laws) on values far beyond 63 bits constructed from strings. *)

module B = Repro_field.Bigint

let b = B.of_int
let check_str msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)

(* Generator for ints whose products stay exact in native arithmetic. *)
let small_int = QCheck2.Gen.int_range (-1_000_000) 1_000_000

(* Generator for bigints of up to ~120 decimal digits. *)
let big_gen =
  let open QCheck2.Gen in
  let* ndigits = int_range 1 120 in
  let* sign = oneofl [ ""; "-" ] in
  let* first = int_range 1 9 in
  let* rest = list_size (return (ndigits - 1)) (int_range 0 9) in
  return
    (B.of_string
       (sign ^ string_of_int first ^ String.concat "" (List.map string_of_int rest)))

let big_print x = B.to_string x

let unit_tests =
  [
    Alcotest.test_case "zero and one" `Quick (fun () ->
        check_str "zero" "0" B.zero;
        check_str "one" "1" B.one;
        Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
        Alcotest.(check int) "sign -5" (-1) (B.sign (b (-5))));
    Alcotest.test_case "of_int round-trips through to_string" `Quick (fun () ->
        List.iter
          (fun i -> check_str (string_of_int i) (string_of_int i) (b i))
          [ 0; 1; -1; 42; -42; 1 lsl 30; (1 lsl 30) - 1; max_int; min_int; min_int + 1 ]);
    Alcotest.test_case "of_string round-trip on huge literals" `Quick (fun () ->
        List.iter
          (fun s -> check_str s s (B.of_string s))
          [
            "123456789012345678901234567890";
            "-999999999999999999999999999999999999";
            "1000000000000000000000000000000000000000000000001";
          ]);
    Alcotest.test_case "of_string rejects garbage" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.check_raises ("reject " ^ s) (Invalid_argument "Bigint.of_string: bad digit")
              (fun () -> ignore (B.of_string s)))
          [ "12x3"; "1.5" ]);
    Alcotest.test_case "addition with carries across limbs" `Quick (fun () ->
        let x = B.of_string "1152921504606846975" (* 2^60 - 1 *) in
        check_str "2^60-1 + 1" "1152921504606846976" (B.add x B.one));
    Alcotest.test_case "subtraction producing sign change" `Quick (fun () ->
        check_str "3 - 10" "-7" (B.sub (b 3) (b 10));
        check_str "10 - 3" "7" (B.sub (b 10) (b 3));
        check_str "x - x" "0" (B.sub (b 12345) (b 12345)));
    Alcotest.test_case "schoolbook multiplication vs known product" `Quick (fun () ->
        let x = B.of_string "123456789123456789123456789" in
        let y = B.of_string "987654321987654321" in
        check_str "x*y" "121932631356500531469135800347203169112635269" (B.mul x y));
    Alcotest.test_case "division truncates toward zero" `Quick (fun () ->
        let q, r = B.divmod (b 7) (b 2) in
        check_str "7/2" "3" q;
        check_str "7%2" "1" r;
        let q, r = B.divmod (b (-7)) (b 2) in
        check_str "-7/2" "-3" q;
        check_str "-7%2" "-1" r;
        let q, r = B.divmod (b 7) (b (-2)) in
        check_str "7/-2" "-3" q;
        check_str "7%-2" "1" r);
    Alcotest.test_case "division by zero raises" `Quick (fun () ->
        Alcotest.check_raises "divmod" Division_by_zero (fun () ->
            ignore (B.divmod B.one B.zero)));
    Alcotest.test_case "multi-limb Knuth division with add-back path" `Quick (fun () ->
        (* Exercise the long-division path with a known big quotient. *)
        let x = B.of_string "340282366920938463463374607431768211456" (* 2^128 *) in
        let y = B.of_string "18446744073709551616" (* 2^64 *) in
        check_str "2^128 / 2^64" "18446744073709551616" (B.div x y);
        check_str "2^128 mod 2^64" "0" (B.rem x y));
    Alcotest.test_case "gcd" `Quick (fun () ->
        check_str "gcd 12 18" "6" (B.gcd (b 12) (b 18));
        check_str "gcd 0 5" "5" (B.gcd B.zero (b 5));
        check_str "gcd -12 18" "6" (B.gcd (b (-12)) (b 18));
        let fib40 = B.of_string "102334155" and fib41 = B.of_string "165580141" in
        check_str "consecutive fibs coprime" "1" (B.gcd fib40 fib41));
    Alcotest.test_case "pow" `Quick (fun () ->
        check_str "2^100" "1267650600228229401496703205376" (B.pow B.two 100);
        check_str "x^0" "1" (B.pow (b 999) 0);
        check_str "(-3)^3" "-27" (B.pow (b (-3)) 3));
    Alcotest.test_case "to_int_opt" `Quick (fun () ->
        Alcotest.(check (option int)) "42" (Some 42) (B.to_int_opt (b 42));
        Alcotest.(check (option int)) "-42" (Some (-42)) (B.to_int_opt (b (-42)));
        Alcotest.(check (option int))
          "max_int" (Some max_int)
          (B.to_int_opt (B.of_string (string_of_int max_int)));
        Alcotest.(check (option int)) "2^200" None (B.to_int_opt (B.pow B.two 200)));
    Alcotest.test_case "to_float on representable values" `Quick (fun () ->
        Alcotest.(check (float 0.0)) "2^40" (Float.ldexp 1.0 40) (B.to_float (B.pow B.two 40));
        Alcotest.(check (float 0.0)) "-5" (-5.0) (B.to_float (b (-5))));
    Alcotest.test_case "comparisons" `Quick (fun () ->
        Alcotest.(check bool) "lt" true (B.lt (b (-3)) (b 2));
        Alcotest.(check bool) "neg order" true (B.lt (b (-10)) (b (-3)));
        Alcotest.(check bool) "min" true (B.equal (B.min (b 4) (b 9)) (b 4));
        Alcotest.(check bool) "max" true (B.equal (B.max (b 4) (b 9)) (b 9)));
  ]

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let property_tests =
  [
    prop "add agrees with native ints" QCheck2.Gen.(pair small_int small_int) (fun (x, y) ->
        B.to_int_opt (B.add (b x) (b y)) = Some (x + y));
    prop "mul agrees with native ints" QCheck2.Gen.(pair small_int small_int) (fun (x, y) ->
        B.to_int_opt (B.mul (b x) (b y)) = Some (x * y));
    prop "divmod agrees with native ints"
      QCheck2.Gen.(pair small_int small_int)
      (fun (x, y) ->
        y = 0
        ||
        let q, r = B.divmod (b x) (b y) in
        B.to_int_opt q = Some (x / y) && B.to_int_opt r = Some (x mod y));
    prop "string round-trip" big_gen (fun x -> B.equal x (B.of_string (B.to_string x)));
    prop "addition commutes" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal (B.add x y) (B.add y x));
    prop "addition associates"
      QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (x, y, z) -> B.equal (B.add (B.add x y) z) (B.add x (B.add y z)));
    prop "multiplication commutes" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal (B.mul x y) (B.mul y x));
    prop "multiplication distributes"
      QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (x, y, z) ->
        B.equal (B.mul x (B.add y z)) (B.add (B.mul x y) (B.mul x z)));
    prop "sub then add round-trips" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        B.equal x (B.add (B.sub x y) y));
    prop "division law: x = q*y + r with |r| < |y|"
      QCheck2.Gen.(pair big_gen big_gen)
      (fun (x, y) ->
        B.is_zero y
        ||
        let q, r = B.divmod x y in
        B.equal x (B.add (B.mul q y) r)
        && B.lt (B.abs r) (B.abs y)
        && (B.is_zero r || B.sign r = B.sign x));
    prop "gcd divides both" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        let g = B.gcd x y in
        B.is_zero g
        || (B.is_zero (B.rem x g) && B.is_zero (B.rem y g)));
    prop "compare is antisymmetric" QCheck2.Gen.(pair big_gen big_gen) (fun (x, y) ->
        compare (B.compare x y) 0 = compare 0 (B.compare y x));
    prop "neg is an involution" big_gen (fun x -> B.equal x (B.neg (B.neg x)));
    prop "to_string of neg prepends minus" big_gen (fun x ->
        B.is_zero x
        || B.to_string (B.neg x)
           = (if B.sign x > 0 then "-" ^ B.to_string x
              else String.sub (B.to_string x) 1 (String.length (B.to_string x) - 1)));
    prop "print" big_gen (fun x ->
        ignore (big_print x);
        true);
  ]

let suite = unit_tests @ property_tests
