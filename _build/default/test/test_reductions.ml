(* Tests for the three hardness reductions, verified end-to-end with the
   exact-rational game engine:

   - Bypass gadget (Lemma 4): deviation exactly at beta < kappa.
   - BIN PACKING -> SND (Theorem 3): equilibrium MSTs <-> exact-fill
     packings, on solvable and unsolvable instances.
   - INDEPENDENT SET -> PoS (Theorem 5): independent sets <-> equilibrium
     trees of weight 5n/2 - (1-delta)m.
   - 3SAT-4 -> all-or-nothing SNE (Theorem 12): truth assignments <->
     consistent balanced light assignments, enforcement <-> satisfaction,
     checked exhaustively over assignments and over raw light-edge
     subsets. *)

module Sat = Repro_problems.Sat
module IS = Repro_problems.Indepset
module BP = Repro_problems.Binpacking
module Q = Repro_field.Rational
module QGm = Repro_game.Game.Rat_game
module FGm = Repro_game.Game.Float_game
module Bypass = Repro_reductions.Bypass_gadget.Rat
module Bp2snd = Repro_reductions.Binpacking_to_snd.Rat
module Is2pos = Repro_reductions.Indepset_to_pos.Rat
module Is2pos_f = Repro_reductions.Indepset_to_pos.Float
module Sat2aon = Repro_reductions.Sat_to_aon.Rat

let delta = Q.of_ints 1 12

let unit_tests =
  [
    Alcotest.test_case "bypass: basic path length matches the float harmonic" `Quick
      (fun () ->
        for kappa = 1 to 12 do
          Alcotest.(check int)
            (Printf.sprintf "ell at capacity %d" kappa)
            (Repro_util.Harmonic.min_l_exceeding kappa)
            (Bypass.basic_path_length ~capacity:kappa)
        done);
    Alcotest.test_case "bypass: Lemma 4 threshold at beta = kappa" `Quick (fun () ->
        for kappa = 2 to 6 do
          for beta = 1 to 2 * kappa do
            let g = Bypass.build ~capacity:kappa ~beta in
            Alcotest.(check bool)
              (Printf.sprintf "deviates kappa=%d beta=%d" kappa beta)
              (beta < kappa) (Bypass.connector_deviates g);
            Alcotest.(check bool)
              (Printf.sprintf "equilibrium kappa=%d beta=%d" kappa beta)
              (beta >= kappa)
              (Bypass.tree_is_equilibrium g)
          done
        done);
    Alcotest.test_case "binpacking reduction: correspondence on known instances" `Quick
      (fun () ->
        let cases =
          [
            ("2x8 solvable", BP.create ~sizes:[| 4; 4; 2; 2; 2; 2 |] ~bins:2 ~capacity:8, true);
            ("2x4 all twos", BP.create ~sizes:[| 2; 2; 2; 2 |] ~bins:2 ~capacity:4, true);
            ("2x8 6-6-4", BP.create ~sizes:[| 6; 6; 4 |] ~bins:2 ~capacity:8, false);
            ("3x8 sixes and eight", BP.create ~sizes:[| 6; 6; 6; 2; 2; 2 |] ~bins:3 ~capacity:8, true);
            ("2x6 unsolvable", BP.create ~sizes:[| 4; 4; 4 |] ~bins:2 ~capacity:6, false);
          ]
        in
        List.iter
          (fun (name, inst, solvable) ->
            Alcotest.(check bool) (name ^ " solver") solvable (BP.solve inst <> None);
            let t = Bp2snd.build inst in
            Alcotest.(check bool) (name ^ " correspondence") true (Bp2snd.correspondence_holds t);
            Alcotest.(check bool)
              (name ^ " equilibrium MST exists iff solvable")
              solvable
              (Bp2snd.find_equilibrium_mst t <> None))
          cases);
    Alcotest.test_case "binpacking reduction: assignment trees are MSTs" `Quick (fun () ->
        let inst = BP.create ~sizes:[| 4; 4; 2; 2; 2; 2 |] ~bins:2 ~capacity:8 in
        let t = Bp2snd.build inst in
        let a = Option.get (BP.solve inst) in
        let tree = Bp2snd.tree_of_assignment t a in
        Alcotest.(check bool) "weight equals the computed MST weight" true
          (Q.equal (QGm.G.Tree.total_weight tree) t.Bp2snd.mst_weight);
        let kruskal = Option.get (QGm.G.mst_kruskal t.Bp2snd.graph) in
        Alcotest.(check bool) "Kruskal agrees on the weight" true
          (Q.equal (QGm.G.total_weight t.Bp2snd.graph kruskal) t.Bp2snd.mst_weight));
    Alcotest.test_case "binpacking reduction: per-assignment equilibrium = exact fill"
      `Quick (fun () ->
        let inst = BP.create ~sizes:[| 2; 2; 2; 2 |] ~bins:2 ~capacity:4 in
        let t = Bp2snd.build inst in
        (* All 2^4 assignments: equilibrium iff both bins get exactly two
           items. *)
        for mask = 0 to 15 do
          let assignment = Array.init 4 (fun i -> (mask lsr i) land 1) in
          let balanced = Array.fold_left ( + ) 0 assignment = 2 in
          Alcotest.(check bool)
            (Printf.sprintf "mask %d" mask)
            balanced
            (Bp2snd.assignment_is_equilibrium t assignment)
        done);
    Alcotest.test_case "indepset reduction: named graphs match the weight formula" `Quick
      (fun () ->
        List.iter
          (fun (name, h) ->
            let t = Is2pos.build h ~delta in
            let w, tree, mis = Is2pos.best_equilibrium t in
            let spec = Is2pos.spec t in
            Alcotest.(check bool) (name ^ " best tree is an equilibrium") true
              (QGm.Broadcast.is_tree_equilibrium spec tree);
            Alcotest.(check bool)
              (name ^ " weight formula")
              true
              (Q.equal w (Is2pos.equilibrium_weight t ~m:(List.length mis)));
            let star = Is2pos.star_tree t in
            Alcotest.(check bool) (name ^ " star is an equilibrium") true
              (QGm.Broadcast.is_tree_equilibrium spec star);
            Alcotest.(check bool)
              (name ^ " star weight 5n/2")
              true
              (Q.equal
                 (QGm.G.Tree.total_weight star)
                 (Q.of_ints (5 * IS.n_nodes h) 2)))
          [ ("K4", IS.k4); ("prism", IS.prism); ("K3,3", IS.k33); ("cube", IS.cube) ]);
    Alcotest.test_case "indepset reduction: every independent set gives an equilibrium"
      `Quick (fun () ->
        let h = IS.prism in
        let t = Is2pos.build h ~delta in
        let spec = Is2pos.spec t in
        (* All independent sets of the prism. *)
        for mask = 0 to 63 do
          let nodes = List.filter (fun v -> (mask lsr v) land 1 = 1) (List.init 6 (fun i -> i)) in
          if IS.is_independent h nodes then begin
            let tree = Is2pos.tree_of_independent_set t nodes in
            Alcotest.(check bool)
              (Printf.sprintf "mask %d equilibrium" mask)
              true
              (QGm.Broadcast.is_tree_equilibrium spec tree);
            Alcotest.(check bool)
              (Printf.sprintf "mask %d weight" mask)
              true
              (Q.equal (QGm.G.Tree.total_weight tree)
                 (Is2pos.equilibrium_weight t ~m:(List.length nodes)))
          end
        done);
    Alcotest.test_case "indepset reduction: dependent sets are rejected" `Quick (fun () ->
        let t = Is2pos.build IS.k4 ~delta in
        Alcotest.check_raises "not independent"
          (Invalid_argument "Indepset_to_pos.tree_of_independent_set: set is not independent")
          (fun () -> ignore (Is2pos.tree_of_independent_set t [ 0; 1 ])));
    Alcotest.test_case
      "indepset reduction: exhaustive best equilibrium on K4 matches the formula" `Quick
      (fun () ->
        (* Float instantiation for the exponential landscape scan. *)
        let tf = Is2pos_f.build IS.k4 ~delta:(1.0 /. 12.0) in
        let l =
          FGm.Exact.equilibrium_landscape ~graph:tf.Is2pos_f.graph ~root:tf.Is2pos_f.root
        in
        match l.FGm.Exact.best_equilibrium with
        | Some (w, _) ->
            let expected = Q.to_float (Is2pos.equilibrium_weight (Is2pos.build IS.k4 ~delta) ~m:1) in
            Alcotest.(check (float 1e-6)) "best equilibrium weight" expected w
        | None -> Alcotest.fail "K4 game must have equilibria");
    Alcotest.test_case
      "indepset reduction: Figure 3 taxonomy — equilibria on K4 are exactly the \
       independent sets, with only A/B branches" `Quick (fun () ->
        (* Enumerate all 54000 spanning trees of the K4 gadget graph, find
           every equilibrium, and check the structural theorem behind
           Theorem 5: equilibria decompose into type-A/B branches, their
           B-sets are independent in H, their weights match the formula,
           and the count equals the number of independent sets of K4
           (the empty set and four singletons: 5). *)
        let tf = Is2pos_f.build IS.k4 ~delta:(1.0 /. 12.0) in
        let g = tf.Is2pos_f.graph in
        let spec = FGm.broadcast ~graph:g ~root:tf.Is2pos_f.root in
        let n_eq = ref 0 in
        FGm.G.Enumerate.iter_spanning_trees g ~f:(fun ids ->
            let tree = FGm.G.Tree.of_edge_ids g ~root:tf.Is2pos_f.root ids in
            if FGm.Broadcast.is_tree_equilibrium spec tree then begin
              incr n_eq;
              let branches = Is2pos_f.classify_branches tf tree in
              List.iter
                (fun (_, ty) ->
                  if ty <> Is2pos_f.A && ty <> Is2pos_f.B then
                    Alcotest.fail "equilibrium with a C/D/E branch")
                branches;
              let b_set = Is2pos_f.b_branch_set tf tree in
              Alcotest.(check bool) "B-set independent" true
                (IS.is_independent IS.k4 b_set);
              let expected =
                Repro_field.Rational.to_float
                  (Is2pos.equilibrium_weight (Is2pos.build IS.k4 ~delta)
                     ~m:(List.length b_set))
              in
              Alcotest.(check (float 1e-6)) "formula weight" expected
                (FGm.G.Tree.total_weight tree)
            end);
        Alcotest.(check int) "5 equilibria = 5 independent sets" 5 !n_eq);
    Alcotest.test_case "sat reduction: structure invariants" `Quick (fun () ->
        let f = Sat.create ~n_vars:5 [ [ 1; 2; 3 ]; [ -1; 4; 5 ] ] in
        let t = Sat2aon.build f in
        Alcotest.(check bool) "usage counts" true (Sat2aon.usage_counts_ok t);
        (* Labels differ within each clause. *)
        List.iter
          (fun clause ->
            let labels = List.map (fun l -> t.Sat2aon.label.(Sat.var l)) clause in
            Alcotest.(check int) "distinct labels" 3
              (List.length (List.sort_uniq compare labels)))
          f.Sat.clauses;
        let s = Sat2aon.stats t in
        Alcotest.(check bool) "aux nodes dominate" true (s.Sat2aon.aux > s.Sat2aon.nodes / 2);
        Alcotest.(check int) "light cost is 3|C|" 6 (Sat2aon.light_cost t));
    Alcotest.test_case "sat reduction: l-l consistency (same polarity twice)" `Quick
      (fun () ->
        let f = Sat.create ~n_vars:5 [ [ 1; 2; 3 ]; [ 1; 4; 5 ] ] in
        let t = Sat2aon.build f in
        Alcotest.(check bool) "usage counts" true (Sat2aon.usage_counts_ok t);
        Alcotest.(check bool) "correspondence" true (Sat2aon.verify_all_assignments t));
    Alcotest.test_case "sat reduction: l-lbar consistency (opposite polarity)" `Quick
      (fun () ->
        let f = Sat.create ~n_vars:5 [ [ 1; 2; 3 ]; [ -1; 4; 5 ] ] in
        let t = Sat2aon.build f in
        Alcotest.(check bool) "correspondence" true (Sat2aon.verify_all_assignments t));
    Alcotest.test_case "sat reduction: three clauses, mixed sharing" `Quick (fun () ->
        let f = Sat.create ~n_vars:7 [ [ 1; 2; 3 ]; [ -1; 4; 5 ]; [ 2; 6; 7 ] ] in
        let t = Sat2aon.build f in
        Alcotest.(check bool) "usage counts" true (Sat2aon.usage_counts_ok t);
        Alcotest.(check bool) "correspondence" true (Sat2aon.verify_all_assignments t));
    Alcotest.test_case "sat reduction: four occurrences of one variable" `Quick (fun () ->
        let f =
          Sat.create ~n_vars:9
            [ [ 1; 2; 3 ]; [ 1; 4; 5 ]; [ -1; 6; 7 ]; [ -1; 8; 9 ] ]
        in
        let t = Sat2aon.build f in
        Alcotest.(check bool) "usage counts" true (Sat2aon.usage_counts_ok t);
        Alcotest.(check bool) "correspondence" true (Sat2aon.verify_all_assignments t));
    Alcotest.test_case
      "sat reduction: Lemma 19 over every raw light-edge subset (one clause)" `Quick
      (fun () ->
        let f = Sat.create ~n_vars:3 [ [ 1; -2; 3 ] ] in
        let t = Sat2aon.build f in
        let gs = t.Sat2aon.gadgets.(0) in
        let lights =
          Array.to_list gs
          |> List.concat_map (fun g -> [ g.Sat2aon.light1; g.Sat2aon.light2 ])
        in
        Alcotest.(check int) "six light edges" 6 (List.length lights);
        (* enforces <=> balanced (one edge per gadget) and covered (some
           gadget has its second light edge chosen). With single
           occurrences, consistency is vacuous. *)
        for mask = 0 to 63 do
          let chosen = Array.make (QGm.G.n_edges t.Sat2aon.graph) false in
          List.iteri (fun i id -> if (mask lsr i) land 1 = 1 then chosen.(id) <- true) lights;
          let balanced =
            Array.for_all
              (fun g ->
                (if chosen.(g.Sat2aon.light1) then 1 else 0)
                + (if chosen.(g.Sat2aon.light2) then 1 else 0)
                = 1)
              gs
          in
          let covered = Array.exists (fun g -> chosen.(g.Sat2aon.light2)) gs in
          Alcotest.(check bool)
            (Printf.sprintf "subset %d" mask)
            (balanced && covered)
            (Sat2aon.enforces_chosen t chosen)
        done);
    Alcotest.test_case
      "sat reduction: compact geometric growth is insufficient at four labels (known \
       limitation, pinned)" `Quick (fun () ->
        (* This 4-label formula is why the compact variant must be certified
           per instance: with ratio-4 geometric n_j a satisfying model's
           light assignment fails to enforce (an upstream light-edge share
           exceeds Lemma 15's worst-case budget). The paper's squared
           constants avoid this but are astronomically large. *)
        let f = Sat.create ~n_vars:6 [ [ 3; -4; -2 ]; [ -6; -5; -1 ]; [ 6; 2; 4 ] ] in
        let t = Sat2aon.build ~growth:(`Geometric 4) f in
        Alcotest.(check int) "four labels" 4 t.Sat2aon.n_labels;
        Alcotest.(check bool) "usage counts still hold" true (Sat2aon.usage_counts_ok t);
        Alcotest.(check bool) "correspondence fails" false (Sat2aon.verify_all_assignments t);
        (* No practical geometric ratio repairs it: the binding slack is
           ~1/n_j^2 against an upstream share of ~1/(r n_j), so only the
           paper's squared constants (n_1 ~ 9e10 here, unbuildable) cover
           four labels. Exact verification therefore lives on 3-label
           formulas, where `Paper is buildable for |C| = 1 and `Geometric 4
           is certified per instance. *)
        let t16 = Sat2aon.build ~max_nodes:600_000 ~growth:(`Geometric 16) f in
        Alcotest.(check bool) "even ratio 16 fails" false
          (match Sat.solve f with
          | Some model -> Sat2aon.assignment_enforces t16 model
          | None -> true);
        Alcotest.(check bool) "paper constants are unbuildably large at L=4" true
          (try
             ignore (Sat2aon.build ~growth:`Paper f);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "sat reduction: paper constants verify on a one-clause formula"
      `Slow (fun () ->
        (* L = 3 with squared growth: n = (153664, 196, 7); ~154k nodes.
           One exact model check (~7s) plus the usage invariant. *)
        let f = Sat.create ~n_vars:3 [ [ 1; -2; 3 ] ] in
        let t = Sat2aon.build ~growth:`Paper f in
        Alcotest.(check bool) "usage counts" true (Sat2aon.usage_counts_ok t);
        let model = Option.get (Sat.solve f) in
        Alcotest.(check bool) "model enforces" true (Sat2aon.assignment_enforces t model);
        let falsifying = Array.make 4 false in
        falsifying.(2) <- true (* x2 true falsifies (x1 | !x2 | x3) with others false *);
        Alcotest.(check bool) "falsifying assignment does not enforce" false
          (Sat2aon.assignment_enforces t falsifying));
    Alcotest.test_case
      "sat reduction: float and exact-rational verdicts agree (tolerance calibration)"
      `Quick (fun () ->
        (* With the compact geometric sizes the tightest constraint margins
           are ~1/(2 n_1^2) ~ 4e-5 against values ~K ~ 700 — above the
           float stack's scale-relative tolerance, so both backends must
           give identical exhaustive verdicts. *)
        List.iter
          (fun f ->
            let qr = Sat2aon.build f in
            let fl_ = Repro_reductions.Sat_to_aon.Float.build f in
            Alcotest.(check bool) "same verdict" (Sat2aon.verify_all_assignments qr)
              (Repro_reductions.Sat_to_aon.Float.verify_all_assignments fl_))
          [
            Sat.create ~n_vars:5 [ [ 1; 2; 3 ]; [ -1; 4; 5 ] ];
            Sat.create ~n_vars:5 [ [ 1; 2; 3 ]; [ 1; 4; 5 ] ];
          ]);
    Alcotest.test_case "sat reduction: rejects non-3SAT-4 input" `Quick (fun () ->
        let f = Sat.create ~n_vars:2 [ [ 1; 2 ] ] in
        Alcotest.check_raises "width" (Invalid_argument "Sat_to_aon.build: formula must be 3SAT-4")
          (fun () -> ignore (Sat2aon.build f)));
    Alcotest.test_case "sat reduction: node budget guard" `Quick (fun () ->
        let f = Sat.create ~n_vars:5 [ [ 1; 2; 3 ]; [ -1; 4; 5 ] ] in
        Alcotest.(check bool) "budget too small raises" true
          (try
             ignore (Sat2aon.build ~max_nodes:10 f);
             false
           with Invalid_argument _ -> true));
  ]

let prop ?(count = 12) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "random solvable strict instances have equilibrium MSTs" (fun seed ->
        let rng = Repro_util.Prng.create seed in
        let bins = Repro_util.Prng.int_in_range rng ~lo:2 ~hi:3 in
        let capacity = 2 * Repro_util.Prng.int_in_range rng ~lo:2 ~hi:3 in
        let sizes =
          (* Build a solvable instance by slicing each bin. *)
          List.concat_map
            (fun _ ->
              let rec slice remaining acc =
                if remaining = 0 then acc
                else
                  let s =
                    2 * Repro_util.Prng.int_in_range rng ~lo:1 ~hi:(remaining / 2)
                  in
                  slice (remaining - s) (s :: acc)
              in
              slice capacity [])
            (List.init bins (fun i -> i))
          |> Array.of_list
        in
        let inst = BP.create ~sizes ~bins ~capacity in
        let t = Bp2snd.build inst in
        Bp2snd.correspondence_holds t && Bp2snd.find_equilibrium_mst t <> None);
    prop "random 3-regular graphs: MIS tree is an equilibrium with the formula weight"
      ~count:8 (fun seed ->
        let rng = Repro_util.Prng.create seed in
        let h = IS.random_3regular rng ~n:8 in
        let t = Is2pos.build h ~delta in
        let w, tree, mis = Is2pos.best_equilibrium t in
        QGm.Broadcast.is_tree_equilibrium (Is2pos.spec t) tree
        && Q.equal w (Is2pos.equilibrium_weight t ~m:(List.length mis)));
    prop "random tripartite 3SAT-4: model's light assignment enforces" ~count:6
      (fun seed ->
        (* Tripartite formulas get exactly three labels, the regime where
           the compact geometric gadget sizes verify (see the growth note
           in Sat_to_aon and the 4-label regression below). *)
        let rng = Repro_util.Prng.create seed in
        let f = Sat.random_3sat4_tripartite rng ~pool_size:2 ~n_clauses:3 in
        match Sat.solve f with
        | None -> true (* exceedingly unlikely at this density *)
        | Some model ->
            let t = Sat2aon.build f in
            Sat2aon.usage_counts_ok t && Sat2aon.assignment_enforces t model);
  ]

let suite = unit_tests @ property_tests
