(* Tests for the core subsidy algorithms.

   The load-bearing properties:
   - the three LP formulations (broadcast LP (3), polynomial LP (2),
     cutting-plane LP (1)) agree on the minimum subsidy cost and their
     assignments actually enforce the target (Theorem 1, Lemma 2);
   - the Theorem 6 construction stays under wgt(T)/e and enforces the MST;
   - the cycle family needs ~wgt(T)/e (Theorem 11);
   - exact all-or-nothing search, the greedy repair, and the Theorem 21
     path family behave as stated;
   - SND exact/heuristic solvers are consistent with the exact equilibrium
     landscape. *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Enforce = Repro_core.Enforce
module Aon = Repro_core.Aon.Float
module Snd = Repro_core.Snd.Float
module Lb = Repro_core.Lower_bounds.Float
module Instances = Repro_core.Instances
module Fx = Repro_util.Floatx

let fl = Alcotest.float 1e-6
let inv_e = 1.0 /. Stdlib.exp 1.0

let random_instance seed =
  let n = 4 + (seed mod 6) in
  Instances.random ~dist:(Instances.Integer 9) ~n ~extra:(2 + (seed mod 4)) ~seed ()

let enforcement_valid graph (tree : G.Tree.t) subsidy =
  Array.for_all
    (fun (e : G.edge) ->
      Fx.geq subsidy.(e.G.id) 0.0
      && Fx.leq subsidy.(e.G.id) e.G.weight
      && (G.Tree.mem_edge tree e.G.id || Fx.approx_eq subsidy.(e.G.id) 0.0))
    (Array.init (G.n_edges graph) (G.edge graph))

let unit_tests =
  [
    Alcotest.test_case "LP (3) on the two-link game" `Quick (fun () ->
        (* Enforcing the expensive parallel edge needs exactly 1 unit. *)
        let graph = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ] in
        let spec = Gm.broadcast ~graph ~root:0 in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 1 ] in
        let r = Sne.broadcast spec ~root:0 tree in
        Alcotest.check fl "cost" 1.0 r.Sne.cost;
        Alcotest.check fl "subsidy on the expensive edge" 1.0 r.Sne.subsidy.(1);
        Alcotest.check fl "none elsewhere" 0.0 r.Sne.subsidy.(0));
    Alcotest.test_case "LP (3) gives zero subsidies on an equilibrium tree" `Quick
      (fun () ->
        let graph = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ] in
        let spec = Gm.broadcast ~graph ~root:0 in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 0 ] in
        let r = Sne.broadcast spec ~root:0 tree in
        Alcotest.check fl "already stable" 0.0 r.Sne.cost);
    Alcotest.test_case "LP (3) on a 3-node line vs shortcut" `Quick (fun () ->
        (* r=0 - v1 (w 2) - v2 (w 2), shortcut (0,2) w 2.5. Tree = line.
           Player v2 pays 2/2 + 2 = 3 > 2.5: must subsidize. Optimal: put b
           on the deep edge (1,2): (2-b)/1 + 2/2 <= 2.5 -> b >= 0.5. The
           shallow edge would need (2-b')/2 -> b' = 1. So opt = 0.5. *)
        let graph = G.create ~n:3 [ (0, 1, 2.0); (1, 2, 2.0); (0, 2, 2.5) ] in
        let spec = Gm.broadcast ~graph ~root:0 in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 0; 1 ] in
        let r = Sne.broadcast spec ~root:0 tree in
        Alcotest.check fl "cost" 0.5 r.Sne.cost;
        Alcotest.check fl "deep edge subsidized" 0.5 r.Sne.subsidy.(1));
    Alcotest.test_case "LP (2) matches on the 3-node line" `Quick (fun () ->
        let graph = G.create ~n:3 [ (0, 1, 2.0); (1, 2, 2.0); (0, 2, 2.5) ] in
        let spec = Gm.broadcast ~graph ~root:0 in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 0; 1 ] in
        let state = Gm.Broadcast.state_of_tree spec ~root:0 tree in
        let r = Sne.poly spec ~state in
        Alcotest.check fl "cost" 0.5 r.Sne.cost);
    Alcotest.test_case "cutting plane matches and converges" `Quick (fun () ->
        let graph = G.create ~n:3 [ (0, 1, 2.0); (1, 2, 2.0); (0, 2, 2.5) ] in
        let spec = Gm.broadcast ~graph ~root:0 in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 0; 1 ] in
        let state = Gm.Broadcast.state_of_tree spec ~root:0 tree in
        let r, stats = Sne.cutting_plane spec ~state in
        Alcotest.check fl "cost" 0.5 r.Sne.cost;
        Alcotest.(check bool) "converged" true stats.Sne.converged;
        Alcotest.(check bool) "few rounds" true (stats.Sne.rounds <= 10));
    Alcotest.test_case "LP (2) handles a non-broadcast game" `Quick (fun () ->
        (* Two players with distinct terminals sharing a middle edge.
           Graph: 0 -(4)- 1 -(1)- 2 -(4)- 3, shortcuts (0,2) w 3 and (1,3)
           w 3. Player A: 0->2 via [e0;e1] costs 4/1+1/2 = 4.5 > 3: tempted
           by the direct (0,2). Enforce state where A uses [e0;e1] and B
           (1->3) uses [e1;e2]. *)
        let graph =
          G.create ~n:4 [ (0, 1, 4.0); (1, 2, 1.0); (2, 3, 4.0); (0, 2, 3.0); (1, 3, 3.0) ]
        in
        let spec = Gm.create ~graph ~pairs:[| (0, 2); (1, 3) |] in
        let state = [| [ 0; 1 ]; [ 1; 2 ] |] in
        Gm.validate_state spec state;
        let r = Sne.poly spec ~state in
        let subsidy = r.Sne.subsidy in
        Alcotest.(check bool) "enforces the state" true
          (Gm.is_equilibrium ~subsidy spec state);
        (* Player A needs cost <= 3, player B needs cost <= 3; a direct
           check that some subsidy was required. *)
        Alcotest.(check bool) "positive cost" true (r.Sne.cost > 0.1));
    Alcotest.test_case "Theorem 6 on the unit cycle" `Quick (fun () ->
        let inst = Lb.cycle_instance ~n:20 in
        let tree = Lb.tree inst in
        let r = Enforce.subsidize_mst inst.Lb.graph tree in
        let spec = Lb.spec inst in
        Alcotest.(check bool) "enforces" true
          (Gm.Broadcast.is_tree_equilibrium ~subsidy:r.Enforce.subsidy spec tree);
        Alcotest.(check bool) "ratio under 1/e" true
          (Fx.leq (Enforce.ratio r) inv_e));
    Alcotest.test_case "Theorem 6 rejects non-MST targets" `Quick (fun () ->
        let graph = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ] in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 1 ] in
        Alcotest.check_raises "not an MST"
          (Invalid_argument "Enforce.subsidize_mst: target tree is not a minimum spanning tree")
          (fun () -> ignore (Enforce.subsidize_mst graph tree)));
    Alcotest.test_case "virtual cost identities (Claims 8 and 10)" `Quick (fun () ->
        (* vc(a, 0) with m = 1 is infinite in the limit; with y = c it is 0. *)
        Alcotest.check fl "fully subsidized edge has zero vc" 0.0
          (Enforce.virtual_cost ~c:1.0 ~m:5 ~y:1.0);
        (* Claim 8: vc >= (c - y)/n for n >= m. *)
        for m = 1 to 6 do
          let y = 0.3 in
          let vc = Enforce.virtual_cost ~c:1.0 ~m ~y in
          if not (Fx.geq vc (Enforce.real_share ~c:1.0 ~m ~y)) then
            Alcotest.failf "Claim 8 fails at m=%d" m
        done;
        (* Claim 10: packed subsidies on a path with m-values 1..6 and
           budget 1.6c give total vc = c * ln(6/1.6) (the Figure 4 area). *)
        let c = 1.0 and k = 6 in
        let packed = Enforce.pack_on_path ~c ~k ~y:1.6 in
        let total_vc = ref 0.0 in
        Array.iteri
          (fun i y -> total_vc := !total_vc +. Enforce.virtual_cost ~c ~m:(i + 1) ~y)
          packed;
        Alcotest.check fl "area identity" (c *. Stdlib.log (6.0 /. 1.6)) !total_vc);
    Alcotest.test_case "Theorem 11: cycle ratio approaches 1/e from below" `Quick
      (fun () ->
        let ratio n =
          let inst = Lb.cycle_instance ~n in
          let spec = Lb.spec inst in
          let r = Sne.broadcast spec ~root:inst.Lb.root (Lb.tree inst) in
          r.Sne.cost /. float_of_int n
        in
        let r64 = ratio 64 and r256 = ratio 256 in
        Alcotest.(check bool) "below 1/e" true (Fx.leq r256 inv_e);
        Alcotest.(check bool) "monotone toward 1/e" true (r64 <= r256 +. 1e-9);
        (* The proof gives opt >= (n+1)/e - 2. *)
        Alcotest.(check bool) "above the proof's lower bound" true
          (Fx.geq (r256 *. 256.0) ((257.0 /. Stdlib.exp 1.0) -. 2.0)));
    Alcotest.test_case "all-or-nothing exact beats nothing and enforces" `Quick
      (fun () ->
        let inst = Lb.cycle_instance ~n:8 in
        let spec = Lb.spec inst in
        let tree = Lb.tree inst in
        let r = Aon.solve_exact spec tree in
        Alcotest.(check bool) "optimal search completed" true r.Aon.optimal;
        Alcotest.(check bool) "enforces" true (Aon.enforces spec tree r.Aon.chosen);
        (* On the unit cycle the exact AoN cost is an integer count. *)
        Alcotest.(check bool) "cost positive" true (r.Aon.cost > 0.5));
    Alcotest.test_case "greedy all-or-nothing always enforces" `Quick (fun () ->
        let inst = Lb.cycle_instance ~n:12 in
        let spec = Lb.spec inst in
        let tree = Lb.tree inst in
        let r = Aon.greedy spec tree in
        Alcotest.(check bool) "enforces" true (Aon.enforces spec tree r.Aon.chosen));
    Alcotest.test_case "Theorem 21: path family needs ~ e/(2e-1) of wgt(T)" `Quick
      (fun () ->
        let bound = Stdlib.exp 1.0 /. ((2.0 *. Stdlib.exp 1.0) -. 1.0) in
        let ratio n =
          let x = Repro_core.Lower_bounds.theorem21_x ~n in
          let inst = Lb.aon_path_instance ~n ~x in
          let spec = Lb.spec inst in
          let tree = Lb.tree inst in
          let r = Aon.solve_exact spec tree in
          Alcotest.(check bool) "search completed" true r.Aon.optimal;
          r.Aon.cost /. G.Tree.total_weight tree
        in
        let r14 = ratio 14 in
        (* Converges from slightly above/around the bound; for moderate n it
           must already be within a few percent and never far below. *)
        Alcotest.(check bool) "near e/(2e-1)" true (Float.abs (r14 -. bound) < 0.08));
    Alcotest.test_case "SND exact with budget 0 matches the equilibrium landscape"
      `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 6) ~n:5 ~extra:3 ~seed:11 () in
        let landscape =
          Gm.Exact.equilibrium_landscape ~graph:inst.Instances.graph ~root:inst.Instances.root
        in
        match
          ( Snd.exact_small ~graph:inst.Instances.graph ~root:inst.Instances.root ~budget:0.0,
            landscape.Gm.Exact.best_equilibrium )
        with
        | Some d, Some (w, _) -> Alcotest.check fl "same weight" w d.Snd.weight
        | None, None -> ()
        | Some _, None -> Alcotest.fail "SND found a design the landscape missed"
        | None, Some _ -> Alcotest.fail "landscape has an equilibrium SND missed");
    Alcotest.test_case "SND exact with a huge budget returns the MST" `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 6) ~n:5 ~extra:3 ~seed:12 () in
        let graph = inst.Instances.graph in
        match Snd.exact_small ~graph ~root:inst.Instances.root ~budget:1e9 with
        | Some d ->
            let mst_w = G.total_weight graph (Option.get (G.mst_kruskal graph)) in
            Alcotest.check fl "MST weight" mst_w d.Snd.weight
        | None -> Alcotest.fail "budget 1e9 must be feasible");
    Alcotest.test_case "SND mst_heuristic succeeds with the Theorem 6 budget" `Quick
      (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 8) ~n:7 ~extra:5 ~seed:13 () in
        let graph = inst.Instances.graph in
        let mst_w = G.total_weight graph (Option.get (G.mst_kruskal graph)) in
        match Snd.mst_heuristic ~graph ~root:inst.Instances.root ~budget:(mst_w *. inv_e) with
        | Some d ->
            Alcotest.(check bool) "within budget" true
              (Fx.leq d.Snd.subsidy_cost (mst_w *. inv_e))
        | None -> Alcotest.fail "Theorem 6 guarantees feasibility at wgt(T)/e");
    Alcotest.test_case "integral SND agrees with fractional SND at the budget extremes"
      `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 6) ~n:5 ~extra:3 ~seed:21 () in
        let graph = inst.Instances.graph and root = inst.Instances.root in
        (* Budget 0: whole-edge and fractional subsidies coincide (none). *)
        let f0 = Snd.exact_small ~graph ~root ~budget:0.0 in
        let a0 = Snd.exact_small_aon ~graph ~root ~budget:0.0 () in
        (match (f0, a0) with
        | Some df, Some da -> Alcotest.check fl "same weight at budget 0" df.Snd.weight da.Snd.weight
        | _ -> Alcotest.fail "budget 0 is always feasible");
        (* Huge budget: both buy the MST. *)
        let mst_w = G.total_weight graph (Option.get (G.mst_kruskal graph)) in
        (match Snd.exact_small_aon ~graph ~root ~budget:1e9 () with
        | Some d -> Alcotest.check fl "MST at huge budget" mst_w d.Snd.weight
        | None -> Alcotest.fail "huge budget feasible"));
    Alcotest.test_case
      "integral SND never beats fractional SND at the same budget" `Quick (fun () ->
        List.iter
          (fun seed ->
            let inst =
              Instances.random ~dist:(Instances.Integer 6) ~n:5 ~extra:3 ~seed ()
            in
            let graph = inst.Instances.graph and root = inst.Instances.root in
            List.iter
              (fun budget ->
                match
                  ( Snd.exact_small ~graph ~root ~budget,
                    Snd.exact_small_aon ~graph ~root ~budget () )
                with
                | Some df, Some da ->
                    Alcotest.(check bool)
                      (Printf.sprintf "seed %d budget %.1f" seed budget)
                      true
                      (Fx.leq df.Snd.weight da.Snd.weight)
                | _ -> Alcotest.fail "both feasible")
              [ 0.0; 1.0; 3.0 ])
          [ 31; 32; 33 ]);
    Alcotest.test_case "SND local search finds a feasible design" `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 8) ~n:6 ~extra:4 ~seed:14 () in
        let graph = inst.Instances.graph in
        let mst_w = G.total_weight graph (Option.get (G.mst_kruskal graph)) in
        match Snd.local_search ~graph ~root:inst.Instances.root ~budget:(mst_w *. inv_e) () with
        | Some d -> Alcotest.(check bool) "within budget" true
              (Fx.leq d.Snd.subsidy_cost (mst_w *. inv_e +. 1e-9))
        | None -> Alcotest.fail "local search should succeed from the MST");
  ]

let prop ?(count = 30) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "the three LP formulations agree and their subsidies enforce" (fun seed ->
        let inst = random_instance seed in
        let graph = inst.Instances.graph in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let state = Gm.Broadcast.state_of_tree spec ~root:inst.Instances.root tree in
        let r3 = Sne.broadcast spec ~root:inst.Instances.root tree in
        let r2 = Sne.poly spec ~state in
        let r1, stats = Sne.cutting_plane spec ~state in
        stats.Sne.converged
        && Fx.approx_eq ~eps:1e-5 r3.Sne.cost r2.Sne.cost
        && Fx.approx_eq ~eps:1e-5 r3.Sne.cost r1.Sne.cost
        && Gm.Broadcast.is_tree_equilibrium ~subsidy:r3.Sne.subsidy spec tree
        && Gm.is_equilibrium ~subsidy:r2.Sne.subsidy spec state
        && Gm.is_equilibrium ~subsidy:r1.Sne.subsidy spec state
        && enforcement_valid graph tree r3.Sne.subsidy);
    prop "Theorem 6: enforces, bounded by wgt/e, and never beats the LP optimum"
      (fun seed ->
        let inst = random_instance seed in
        let graph = inst.Instances.graph in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let r = Enforce.subsidize_mst graph tree in
        let lp = Sne.broadcast spec ~root:inst.Instances.root tree in
        Gm.Broadcast.is_tree_equilibrium ~subsidy:r.Enforce.subsidy spec tree
        && Fx.leq (Enforce.ratio r) inv_e
        && Fx.leq lp.Sne.cost (r.Enforce.total +. 1e-6)
        && enforcement_valid graph tree r.Enforce.subsidy);
    prop "exact AoN <= greedy AoN, both enforce" ~count:20 (fun seed ->
        let inst =
          Instances.random ~dist:(Instances.Integer 9) ~n:(4 + (seed mod 4))
            ~extra:(1 + (seed mod 3)) ~seed ()
        in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let exact = Aon.solve_exact spec tree in
        let greedy = Aon.greedy spec tree in
        exact.Aon.optimal
        && Aon.enforces spec tree exact.Aon.chosen
        && Aon.enforces spec tree greedy.Aon.chosen
        && Fx.leq exact.Aon.cost greedy.Aon.cost
        (* Fractional optimum lower-bounds the integral one. *)
        && Fx.leq
             (Sne.broadcast spec ~root:inst.Instances.root tree).Sne.cost
             (exact.Aon.cost +. 1e-6));
    prop "lp_rounding is sound when it answers, and costs at least the fraction"
      ~count:20 (fun seed ->
        let inst = random_instance seed in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let frac = Sne.broadcast spec ~root:inst.Instances.root tree in
        match Aon.lp_rounding spec ~root:inst.Instances.root tree with
        | None -> true (* rounding may legitimately fail: non-monotonicity *)
        | Some r ->
            Aon.enforces spec tree r.Aon.chosen && Fx.leq frac.Sne.cost (r.Aon.cost +. 1e-7));
    prop "AoN search respects its node budget and still returns a feasible plan"
      ~count:10 (fun seed ->
        let inst = random_instance seed in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let r = Aon.solve_exact ~max_nodes:5 spec tree in
        (* Truncated search: not optimal, but the full-subsidy fallback is
           always feasible. *)
        (not r.Aon.optimal || r.Aon.nodes_explored <= 5)
        && Aon.enforces spec tree r.Aon.chosen);
    prop "LP subsidy cost is zero iff the MST is already an equilibrium" ~count:25
      (fun seed ->
        let inst = random_instance seed in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let r = Sne.broadcast spec ~root:inst.Instances.root tree in
        let already = Gm.Broadcast.is_tree_equilibrium spec tree in
        if already then Fx.approx_eq ~eps:1e-6 r.Sne.cost 0.0 else r.Sne.cost > 1e-7);
  ]

let suite = unit_tests @ property_tests
