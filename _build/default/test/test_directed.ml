(* Tests for the directed stack: the digraph substrate, the directed game
   engine, the Anshelevich H_n family (directed PoS is tight at H_n), and
   directed SNE by constraint generation — notably that an epsilon subsidy
   on the shared arc enforces the optimum, collapsing the H_n gap. *)

module Dg = Repro_game.Digame.Float_digame
module D = Dg.D
module QDg = Repro_game.Digame.Rat_digame
module Q = Repro_field.Rational
module Fx = Repro_util.Floatx
module Harmonic = Repro_util.Harmonic

let fl = Alcotest.float 1e-9

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3 direct. *)
  D.create ~n:4 [ (0, 1, 1.0); (1, 3, 1.0); (0, 2, 3.0); (2, 3, 0.5); (0, 3, 2.5) ]

let unit_tests =
  [
    Alcotest.test_case "digraph construction and validation" `Quick (fun () ->
        let g = diamond () in
        Alcotest.(check int) "nodes" 4 (D.n_nodes g);
        Alcotest.(check int) "arcs" 5 (D.n_arcs g);
        Alcotest.check fl "weight" 3.0 (D.weight g 2);
        Alcotest.check_raises "self-loop" (Invalid_argument "Dgraph.create: self-loop")
          (fun () -> ignore (D.create ~n:2 [ (1, 1, 1.0) ]));
        Alcotest.check_raises "negative" (Invalid_argument "Dgraph.create: negative weight")
          (fun () -> ignore (D.create ~n:2 [ (0, 1, -1.0) ])));
    Alcotest.test_case "directed Dijkstra respects orientation" `Quick (fun () ->
        let g = diamond () in
        (match D.shortest_path g ~src:0 ~dst:3 with
        | Some (d, path) ->
            Alcotest.check fl "0->3 distance" 2.0 d;
            Alcotest.(check (list int)) "via node 1" [ 0; 1 ] path
        | None -> Alcotest.fail "path exists");
        (* No path against the arrows. *)
        Alcotest.(check bool) "3->0 unreachable" true (D.shortest_path g ~src:3 ~dst:0 = None));
    Alcotest.test_case "parallel arcs are distinct strategies" `Quick (fun () ->
        let g = D.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ] in
        Alcotest.(check int) "two arcs" 2 (D.n_arcs g);
        Alcotest.(check int) "two one-arc paths" 2
          (List.length (D.simple_paths g ~src:0 ~dst:1 ~limit:10));
        match D.shortest_path g ~src:0 ~dst:1 with
        | Some (d, [ 0 ]) -> Alcotest.check fl "cheaper arc" 1.0 d
        | _ -> Alcotest.fail "expected the weight-1 arc");
    Alcotest.test_case "directed simple path enumeration" `Quick (fun () ->
        let g = diamond () in
        Alcotest.(check int) "three routes" 3
          (List.length (D.simple_paths g ~src:0 ~dst:3 ~limit:100)));
    Alcotest.test_case "Anshelevich family: both named states behave as described"
      `Quick (fun () ->
        let n = 4 in
        let spec, shared, private_ = Dg.anshelevich_instance ~n ~eps:0.01 in
        Dg.(
          Alcotest.check fl "shared social cost" 1.01 (social_cost spec shared);
          Alcotest.check fl "private social cost" (Harmonic.h n) (social_cost spec private_);
          (* All-private is an equilibrium: joining the shared arc alone
             costs 1.01 > 1/i for every i. *)
          Alcotest.(check bool) "private is an equilibrium" true
            (is_equilibrium spec private_);
          (* The shared state is not: player n pays 1.01/n... no wait, the
             cheapest deviator is player 1, whose private arc costs 1 <
             1.01 only if she is alone; with all n sharing she pays 1.01/4
             < her private 1. Actually the defector is the player whose
             private arc undercuts her share: 1/i < 1.01/n for i close to
             n. Player 4 pays 1.01/4 = 0.2525 > 1/4 = 0.25: deviates. *)
          Alcotest.(check bool) "shared is not an equilibrium" false
            (is_equilibrium spec shared)));
    Alcotest.test_case "Anshelevich family: PoS approaches H_n (exhaustive)" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let spec, _, _ = Dg.anshelevich_instance ~n ~eps:0.01 in
            let l = Dg.landscape spec in
            Alcotest.check fl "optimum" 1.01 l.Dg.optimum;
            match l.Dg.best_eq with
            | Some (w, _) ->
                Alcotest.check fl
                  (Printf.sprintf "best equilibrium at n=%d is all-private" n)
                  (Harmonic.h n) w
            | None -> Alcotest.fail "equilibrium exists")
          [ 2; 3; 4; 5 ]);
    Alcotest.test_case "epsilon subsidy on the shared arc enforces the optimum" `Quick
      (fun () ->
        let n = 5 in
        let eps = 0.01 in
        let spec, shared, _ = Dg.anshelevich_instance ~n ~eps in
        let subsidy, cost, converged = Dg.sne_cutting_plane spec ~state:shared in
        Alcotest.(check bool) "converged" true converged;
        Alcotest.(check bool) "now an equilibrium" true
          (Dg.is_equilibrium ~subsidy spec shared);
        (* Player n's constraint: (1 + eps - b)/n <= 1/n, i.e. b >= eps:
           the whole H_n gap costs epsilon to fix. *)
        Alcotest.(check (float 1e-6)) "subsidy cost is epsilon" eps cost);
    Alcotest.test_case "exact rational digame agrees on the H_n value" `Quick (fun () ->
        let n = 6 in
        let spec, _, private_ = QDg.anshelevich_instance ~n ~eps:(Q.of_ints 1 100) in
        Alcotest.(check string) "exact H_6" "49/20"
          (Q.to_string (QDg.social_cost spec private_));
        Alcotest.(check bool) "equilibrium" true (QDg.is_equilibrium spec private_));
  ]

let prop ?(count = 25) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 2 7) f)

let property_tests =
  [
    prop "directed best response never exceeds the current cost" (fun n ->
        let spec, shared, private_ = Dg.anshelevich_instance ~n ~eps:0.05 in
        List.for_all
          (fun state ->
            let ok = ref true in
            for i = 0 to Dg.n_players spec - 1 do
              let c, _ = Dg.best_response spec state i in
              if not (Fx.leq c (Dg.player_cost spec state i)) then ok := false
            done;
            !ok)
          [ shared; private_ ]);
    prop "directed SNE cutting plane enforces on the shared state" (fun n ->
        let spec, shared, _ = Dg.anshelevich_instance ~n ~eps:0.02 in
        let subsidy, _, converged = Dg.sne_cutting_plane spec ~state:shared in
        converged && Dg.is_equilibrium ~subsidy spec shared);
    prop "landscape optimum is the shared design" (fun n ->
        let spec, shared, _ = Dg.anshelevich_instance ~n ~eps:0.03 in
        let l = Dg.landscape spec in
        Fx.approx_eq l.Dg.optimum (Dg.social_cost spec shared));
  ]

let suite = unit_tests @ property_tests
