(* Tests for weighted network design games (the Section 6 extension):
   consistency with the unweighted engine at unit demands, demand-dependent
   sharing, best responses, the tree check vs the general check, and the
   weighted SNE LP. *)

module Gm = Repro_game.Game.Float_game
module W = Repro_game.Weighted.Float_weighted
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Instances = Repro_core.Instances
module Prng = Repro_util.Prng
module Fx = Repro_util.Floatx

let fl = Alcotest.float 1e-9

(* Two parallel routes shared by two players of different demand. *)
let two_route () = G.create ~n:2 [ (0, 1, 3.0); (0, 1, 4.0) ]

let random_weighted seed =
  let rng = Prng.create seed in
  let n = Prng.int_in_range rng ~lo:3 ~hi:7 in
  let graph =
    G.Gen.random_connected rng ~n ~extra_edges:(Prng.int rng 5)
      ~rand_weight:(fun rng -> float_of_int (Prng.int_in_range rng ~lo:1 ~hi:9))
  in
  let root = Prng.int rng n in
  let demand_of _ = float_of_int (Prng.int_in_range rng ~lo:1 ~hi:4) in
  (W.broadcast ~graph ~root ~demand_of, graph, root)

let unit_tests =
  [
    Alcotest.test_case "create validates demands" `Quick (fun () ->
        let g = two_route () in
        Alcotest.check_raises "wrong arity"
          (Invalid_argument "Weighted.create: one demand per player") (fun () ->
            ignore (W.create ~graph:g ~pairs:[| (1, 0) |] ~demand:[||]));
        Alcotest.check_raises "non-positive"
          (Invalid_argument "Weighted.create: demands must be positive") (fun () ->
            ignore (W.create ~graph:g ~pairs:[| (1, 0) |] ~demand:[| 0.0 |])));
    Alcotest.test_case "shares are proportional to demand" `Quick (fun () ->
        (* Two players at the same node pair, demands 1 and 3, sharing the
           weight-3 edge: they pay 3/4 and 9/4. *)
        let g = two_route () in
        let t = W.create ~graph:g ~pairs:[| (1, 0); (1, 0) |] ~demand:[| 1.0; 3.0 |] in
        let state = [| [ 0 ]; [ 0 ] |] in
        Alcotest.check fl "small player" 0.75 (W.player_cost t state 0);
        Alcotest.check fl "large player" 2.25 (W.player_cost t state 1);
        Alcotest.check fl "social cost" 3.0 (W.social_cost t state));
    Alcotest.test_case "best response anticipates own demand" `Quick (fun () ->
        (* Player of demand 3 alone on edge 0 (w 3) pays 3. Joining the
           other edge (w 4) where the demand-1 player sits costs
           4 * 3/4 = 3: not strictly better, so stay. *)
        let g = two_route () in
        let t = W.create ~graph:g ~pairs:[| (1, 0); (1, 0) |] ~demand:[| 3.0; 1.0 |] in
        let state = [| [ 0 ]; [ 1 ] |] in
        let cost, path = W.best_response t state 0 in
        Alcotest.check fl "stay" 3.0 cost;
        Alcotest.(check (list int)) "path" [ 0 ] path;
        (* The demand-1 player: pays 4 alone; moving to edge 0 with the big
           player costs 3 * 1/4 = 0.75. *)
        let cost, path = W.best_response t state 1 in
        Alcotest.check fl "move" 0.75 cost;
        Alcotest.(check (list int)) "path'" [ 0 ] path);
    Alcotest.test_case "subsidies lower weighted costs" `Quick (fun () ->
        let g = two_route () in
        let t = W.create ~graph:g ~pairs:[| (1, 0) |] ~demand:[| 2.0 |] in
        let subsidy = W.no_subsidy t in
        subsidy.(0) <- 1.5;
        Alcotest.check fl "half price" 1.5 (W.player_cost ~subsidy t [| [ 0 ] |] 0));
    Alcotest.test_case "weighted SNE LP enforces on the two-route game" `Quick (fun () ->
        (* One player of demand 2, target = the expensive route (weight 4):
           need 4 - b <= 3, so b = 1 (demand scales both sides equally). *)
        let g = two_route () in
        let t = W.broadcast ~graph:g ~root:0 ~demand_of:(fun _ -> 2.0) in
        let tree = G.Tree.of_edge_ids g ~root:0 [ 1 ] in
        let r = Sne.weighted_broadcast t ~root:0 tree in
        Alcotest.check fl "cost" 1.0 r.Sne.cost;
        Alcotest.(check bool) "enforces (tree check)" true
          (W.Broadcast.is_tree_equilibrium ~subsidy:r.Sne.subsidy t ~root:0 tree));
    Alcotest.test_case "demand skew changes the optimal subsidy" `Quick (fun () ->
        (* Line 0-1-2 (weights 2, 2) vs shortcut (0,2) weight 2.5 — the
           unweighted optimum was 0.5. Give node 2 demand 3 and node 1
           demand 1: player 2 pays (2-b1)*3/3 + 2*3/4 = shortcut tempts at
           2.5*3/3 = 2.5... the LP must still enforce. *)
        let graph = G.create ~n:3 [ (0, 1, 2.0); (1, 2, 2.0); (0, 2, 2.5) ] in
        let t =
          W.broadcast ~graph ~root:0 ~demand_of:(fun v -> if v = 2 then 3.0 else 1.0)
        in
        let tree = G.Tree.of_edge_ids graph ~root:0 [ 0; 1 ] in
        let r = Sne.weighted_broadcast t ~root:0 tree in
        Alcotest.(check bool) "enforces" true
          (W.Broadcast.is_tree_equilibrium ~subsidy:r.Sne.subsidy t ~root:0 tree);
        (* Compare against the unweighted optimum: the skew matters. *)
        let spec = Gm.broadcast ~graph ~root:0 in
        let unweighted = Sne.broadcast spec ~root:0 tree in
        Alcotest.(check bool) "differs from unweighted" true
          (not (Fx.approx_eq ~eps:1e-9 r.Sne.cost unweighted.Sne.cost)));
  ]

let prop ?(count = 40) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "unit demands reproduce the unweighted game exactly" (fun seed ->
        let rng = Prng.create seed in
        let n = Prng.int_in_range rng ~lo:3 ~hi:7 in
        let graph =
          G.Gen.random_connected rng ~n ~extra_edges:(Prng.int rng 5)
            ~rand_weight:(fun rng -> float_of_int (Prng.int_in_range rng ~lo:1 ~hi:9))
        in
        let root = Prng.int rng n in
        let w = W.broadcast ~graph ~root ~demand_of:(fun _ -> 1.0) in
        let spec = Gm.broadcast ~graph ~root in
        let tree = G.Tree.of_edge_ids graph ~root (Option.get (G.mst_kruskal graph)) in
        let state = Gm.Broadcast.state_of_tree spec ~root tree in
        let ok = ref true in
        for i = 0 to Gm.n_players spec - 1 do
          if
            not
              (Fx.approx_eq (W.player_cost w state i) (Gm.player_cost spec state i))
          then ok := false;
          let wc, _ = W.best_response w state i in
          let gc, _ = Gm.best_response spec state i in
          if not (Fx.approx_eq wc gc) then ok := false
        done;
        !ok
        && W.is_equilibrium w state = Gm.is_equilibrium spec state
        && W.Broadcast.is_tree_equilibrium w ~root tree
           = Gm.Broadcast.is_tree_equilibrium spec tree);
    prop "weighted tree check is sound (a violation means no equilibrium)" (fun seed ->
        (* Lemma 2 does NOT extend to weighted games: the one-edge deviation
           family is necessary but not sufficient (see the next property),
           so only the sound direction is universal. *)
        let t, graph, root = random_weighted seed in
        let tree = G.Tree.of_edge_ids graph ~root (Option.get (G.mst_kruskal graph)) in
        let state = W.Broadcast.state_of_tree t ~root tree in
        W.Broadcast.is_tree_equilibrium t ~root tree || not (W.is_equilibrium t state));
    prop "weighted cutting plane enforces; one-edge LP is a relaxation of it" ~count:30
      (fun seed ->
        let t, graph, root = random_weighted seed in
        let tree = G.Tree.of_edge_ids graph ~root (Option.get (G.mst_kruskal graph)) in
        let state = W.Broadcast.state_of_tree t ~root tree in
        let exact, stats = Sne.weighted_cutting_plane t ~state in
        let relaxed = Sne.weighted_broadcast t ~root tree in
        stats.Sne.converged
        && W.is_equilibrium ~subsidy:exact.Sne.subsidy t state
        && Fx.leq relaxed.Sne.cost (exact.Sne.cost +. 1e-7)
        && Array.for_all2
             (fun b (e : G.edge) -> Fx.geq b 0.0 && Fx.leq b e.G.weight)
             exact.Sne.subsidy
             (Array.init (G.n_edges graph) (G.edge graph)));
    prop "Lemma 2's gap for weighted games is real (witness search)" ~count:1 (fun _ ->
        (* Seed 14's instance: the one-edge LP's optimum passes the tree
           check but a two-non-tree-edge deviation still improves — the
           reason weighted enforcement needs constraint generation. *)
        let t, graph, root = random_weighted 14 in
        let tree = G.Tree.of_edge_ids graph ~root (Option.get (G.mst_kruskal graph)) in
        let state = W.Broadcast.state_of_tree t ~root tree in
        let r = Sne.weighted_broadcast t ~root tree in
        W.Broadcast.is_tree_equilibrium ~subsidy:r.Sne.subsidy t ~root tree
        && not (W.is_equilibrium ~subsidy:r.Sne.subsidy t state));
    prop "weighted best response never exceeds the current cost" (fun seed ->
        let t, graph, root = random_weighted seed in
        let tree = G.Tree.of_edge_ids graph ~root (Option.get (G.mst_kruskal graph)) in
        let state = W.Broadcast.state_of_tree t ~root tree in
        let ok = ref true in
        for i = 0 to W.n_players t - 1 do
          let c, _ = W.best_response t state i in
          if not (Fx.leq c (W.player_cost t state i)) then ok := false
        done;
        !ok);
  ]

let suite = unit_tests @ property_tests
