test/test_directed.ml: Alcotest List Printf QCheck2 QCheck_alcotest Repro_field Repro_game Repro_util
