test/test_bigint.ml: Alcotest Float List QCheck2 QCheck_alcotest Repro_field String
