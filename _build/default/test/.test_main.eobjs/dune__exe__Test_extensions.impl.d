test/test_extensions.ml: Alcotest Array Filename List Printf QCheck2 QCheck_alcotest Repro_core Repro_field Repro_game Repro_util Sys
