test/test_core.ml: Alcotest Array Float List Option Printf QCheck2 QCheck_alcotest Repro_core Repro_game Repro_util Stdlib
