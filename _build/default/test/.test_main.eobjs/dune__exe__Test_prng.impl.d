test/test_prng.ml: Alcotest Array List QCheck2 QCheck_alcotest Repro_util
