test/test_weighted.ml: Alcotest Array Option QCheck2 QCheck_alcotest Repro_core Repro_game Repro_util
