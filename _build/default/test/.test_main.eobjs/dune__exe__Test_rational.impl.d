test/test_rational.ml: Alcotest Float List Printf QCheck2 QCheck_alcotest Repro_field Repro_util
