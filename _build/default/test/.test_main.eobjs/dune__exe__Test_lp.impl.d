test/test_lp.ml: Alcotest Array Format List Option QCheck2 QCheck_alcotest Repro_field Repro_lp Repro_util String
