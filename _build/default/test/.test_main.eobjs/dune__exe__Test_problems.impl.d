test/test_problems.ml: Alcotest Array List QCheck2 QCheck_alcotest Repro_problems Repro_util
