test/test_game.ml: Alcotest Array Option QCheck2 QCheck_alcotest Repro_game Repro_util
