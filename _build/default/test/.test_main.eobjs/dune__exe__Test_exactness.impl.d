test/test_exactness.ml: Alcotest Float List Option QCheck2 QCheck_alcotest Repro_core Repro_field Repro_game Repro_util
