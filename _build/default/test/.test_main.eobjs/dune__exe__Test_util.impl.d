test/test_util.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Repro_parallel Repro_util String
