test/test_landscape.ml: Alcotest List Option QCheck2 QCheck_alcotest Repro_core Repro_game Repro_util
