test/test_reductions.ml: Alcotest Array List Option Printf QCheck2 QCheck_alcotest Repro_field Repro_game Repro_problems Repro_reductions Repro_util
