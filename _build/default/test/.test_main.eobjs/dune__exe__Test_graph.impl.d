test/test_graph.ml: Alcotest Array Float List Option QCheck2 QCheck_alcotest Repro_field Repro_graph Repro_util
