test/test_steiner.ml: Alcotest Array List Option QCheck2 QCheck_alcotest Repro_game Repro_graph Repro_util
