(* Float-vs-exact-rational full-stack agreement: the same integer-weighted
   instance is run through both field instantiations — MST, player costs,
   equilibrium checks, the SNE LP (3) — and the float answers must match
   the exact ones to tolerance. This is the end-to-end certification that
   the float stack's tolerances are calibrated. Also: potential traces
   strictly decrease. *)

module FGm = Repro_game.Game.Float_game
module FG = FGm.G
module QGm = Repro_game.Game.Rat_game
module QG = QGm.G
module Q = Repro_field.Rational
module FSne = Repro_core.Sne_lp.Float
module QSne = Repro_core.Sne_lp.Rat
module Instances = Repro_core.Instances
module Prng = Repro_util.Prng
module Fx = Repro_util.Floatx

(* The rational twin of a float instance with integer weights. *)
let rational_twin (graph : FG.t) =
  let edges =
    List.init (FG.n_edges graph) (fun id ->
        let u, v = FG.endpoints graph id in
        let w = FG.weight graph id in
        assert (Float.is_integer w);
        (u, v, Q.of_int (int_of_float w)))
  in
  QG.create ~n:(FG.n_nodes graph) edges

let random_pair seed =
  let inst =
    Instances.random ~dist:(Instances.Integer 9) ~n:(4 + (seed mod 5))
      ~extra:(2 + (seed mod 4)) ~seed ()
  in
  (inst.Instances.graph, rational_twin inst.Instances.graph, inst.Instances.root)

let prop ?(count = 40) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let unit_tests =
  [
    Alcotest.test_case "potential trace strictly decreases per round" `Quick (fun () ->
        let inst = Instances.random ~dist:(Instances.Integer 9) ~n:8 ~extra:6 ~seed:77 () in
        let spec = Instances.spec inst in
        let tree = Instances.mst_tree inst in
        let start = FGm.Broadcast.state_of_tree spec ~root:inst.Instances.root tree in
        let out, trace = FGm.Dynamics.trace spec start in
        Alcotest.(check bool) "converged" true out.FGm.Dynamics.converged;
        Alcotest.(check int) "one potential per completed round + start"
          (out.FGm.Dynamics.rounds + 1) (List.length trace);
        let rec strictly_decreasing = function
          | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
          | _ -> true
        in
        Alcotest.(check bool) "strict descent" true (strictly_decreasing trace));
  ]

let property_tests =
  [
    prop "MST weight agrees across fields" (fun seed ->
        let fg, qg, _ = random_pair seed in
        let fw = FG.total_weight fg (Option.get (FG.mst_kruskal fg)) in
        let qw = QG.total_weight qg (Option.get (QG.mst_kruskal qg)) in
        Fx.approx_eq fw (Q.to_float qw));
    prop "player costs agree across fields" (fun seed ->
        let fg, qg, root = random_pair seed in
        let fspec = FGm.broadcast ~graph:fg ~root in
        let qspec = QGm.broadcast ~graph:qg ~root in
        let ids = Option.get (FG.mst_kruskal fg) in
        let ftree = FG.Tree.of_edge_ids fg ~root ids in
        (* Kruskal ties are broken identically (same ids), so the trees
           coincide. *)
        let qtree = QG.Tree.of_edge_ids qg ~root (Option.get (QG.mst_kruskal qg)) in
        let fstate = FGm.Broadcast.state_of_tree fspec ~root ftree in
        let qstate = QGm.Broadcast.state_of_tree qspec ~root qtree in
        let ok = ref true in
        for i = 0 to FGm.n_players fspec - 1 do
          if
            not
              (Fx.approx_eq
                 (FGm.player_cost fspec fstate i)
                 (Q.to_float (QGm.player_cost qspec qstate i)))
          then ok := false
        done;
        !ok);
    prop "equilibrium verdicts agree across fields" (fun seed ->
        let fg, qg, root = random_pair seed in
        let fspec = FGm.broadcast ~graph:fg ~root in
        let qspec = QGm.broadcast ~graph:qg ~root in
        let ftree = FG.Tree.of_edge_ids fg ~root (Option.get (FG.mst_kruskal fg)) in
        let qtree = QG.Tree.of_edge_ids qg ~root (Option.get (QG.mst_kruskal qg)) in
        FGm.Broadcast.is_tree_equilibrium fspec ftree
        = QGm.Broadcast.is_tree_equilibrium qspec qtree);
    prop "SNE LP (3) optima agree across fields" ~count:25 (fun seed ->
        let fg, qg, root = random_pair seed in
        let fspec = FGm.broadcast ~graph:fg ~root in
        let qspec = QGm.broadcast ~graph:qg ~root in
        let ftree = FG.Tree.of_edge_ids fg ~root (Option.get (FG.mst_kruskal fg)) in
        let qtree = QG.Tree.of_edge_ids qg ~root (Option.get (QG.mst_kruskal qg)) in
        let fr = FSne.broadcast fspec ~root ftree in
        let qr = QSne.broadcast qspec ~root qtree in
        Fx.approx_eq ~eps:1e-6 fr.FSne.cost (Q.to_float qr.QSne.cost)
        (* And the exact optimum's subsidies are certified exactly. *)
        && QGm.Broadcast.is_tree_equilibrium ~subsidy:qr.QSne.subsidy qspec qtree);
    prop "rational potential is exactly the weighted harmonic sum" ~count:20 (fun seed ->
        let _, qg, root = random_pair seed in
        let qspec = QGm.broadcast ~graph:qg ~root in
        let qtree = QG.Tree.of_edge_ids qg ~root (Option.get (QG.mst_kruskal qg)) in
        let qstate = QGm.Broadcast.state_of_tree qspec ~root qtree in
        let expected =
          List.fold_left
            (fun acc id ->
              Q.add acc (Q.mul (QG.weight qg id) (Q.harmonic (QG.Tree.usage qtree id))))
            Q.zero (QG.Tree.edge_ids qtree)
        in
        Q.equal expected (QGm.potential qspec qstate));
  ]

let suite = unit_tests @ property_tests
