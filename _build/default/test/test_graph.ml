(* Tests for the graph substrate: structure validation, MST (Kruskal vs
   Prim cross-check), Dijkstra (vs Floyd-Warshall reference), rooted trees
   (paths, LCA, usage counts), spanning-tree enumeration (vs Cayley's
   formula), and generators. *)

module F = Repro_field.Field.Float_field
module G = Repro_graph.Wgraph.Float_graph
module Prng = Repro_util.Prng

let fl = Alcotest.float 1e-9

(* Reference all-pairs shortest paths. *)
let floyd_warshall (g : G.t) =
  let n = G.n_nodes g in
  let inf = Float.infinity in
  let d = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.0
  done;
  G.fold_edges g ~init:() ~f:(fun () e ->
      d.(e.G.u).(e.G.v) <- Float.min d.(e.G.u).(e.G.v) e.G.weight;
      d.(e.G.v).(e.G.u) <- Float.min d.(e.G.v).(e.G.u) e.G.weight);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) +. d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) +. d.(k).(j)
      done
    done
  done;
  d

let random_graph seed =
  let rng = Prng.create seed in
  let n = Prng.int_in_range rng ~lo:2 ~hi:9 in
  let extra = Prng.int rng 8 in
  G.Gen.random_connected rng ~n ~extra_edges:extra
    ~rand_weight:(fun rng -> float_of_int (Prng.int_in_range rng ~lo:0 ~hi:20))

let diamond () =
  (* 0-1 (1), 0-2 (4), 1-2 (2), 1-3 (6), 2-3 (3) *)
  G.create ~n:4 [ (0, 1, 1.0); (0, 2, 4.0); (1, 2, 2.0); (1, 3, 6.0); (2, 3, 3.0) ]

let unit_tests =
  [
    Alcotest.test_case "create rejects bad input" `Quick (fun () ->
        Alcotest.check_raises "self-loop" (Invalid_argument "Wgraph.create: self-loop")
          (fun () -> ignore (G.create ~n:2 [ (0, 0, 1.0) ]));
        Alcotest.check_raises "range" (Invalid_argument "Wgraph.create: endpoint out of range")
          (fun () -> ignore (G.create ~n:2 [ (0, 2, 1.0) ]));
        Alcotest.check_raises "negative" (Invalid_argument "Wgraph.create: negative weight")
          (fun () -> ignore (G.create ~n:2 [ (0, 1, -1.0) ])));
    Alcotest.test_case "parallel edges are allowed and distinct" `Quick (fun () ->
        let g = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0) ] in
        Alcotest.(check int) "two edges" 2 (G.n_edges g);
        Alcotest.(check int) "adjacency sees both" 2 (List.length (G.neighbors g 0)));
    Alcotest.test_case "basic accessors" `Quick (fun () ->
        let g = diamond () in
        Alcotest.(check int) "n" 4 (G.n_nodes g);
        Alcotest.(check int) "m" 5 (G.n_edges g);
        Alcotest.check fl "weight" 2.0 (G.weight g 2);
        Alcotest.(check int) "other" 2 (G.other g 2 1);
        Alcotest.check fl "total" 11.0 (G.total_weight g [ 0; 1; 3 ]));
    Alcotest.test_case "connectivity" `Quick (fun () ->
        Alcotest.(check bool) "diamond" true (G.is_connected (diamond ()));
        let g = G.create ~n:4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
        Alcotest.(check bool) "split" false (G.is_connected g);
        Alcotest.(check int) "components" 2 (G.component_count g));
    Alcotest.test_case "MST on the diamond" `Quick (fun () ->
        match G.mst_kruskal (diamond ()) with
        | None -> Alcotest.fail "connected graph must have an MST"
        | Some ids ->
            Alcotest.check fl "weight" 6.0 (G.total_weight (diamond ()) ids);
            Alcotest.(check (list int)) "edges 0,2,4" [ 0; 2; 4 ] ids);
    Alcotest.test_case "MST of disconnected graph is None" `Quick (fun () ->
        let g = G.create ~n:4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
        Alcotest.(check bool) "kruskal" true (G.mst_kruskal g = None);
        Alcotest.(check bool) "prim" true (G.mst_prim g = None));
    Alcotest.test_case "Dijkstra on the diamond" `Quick (fun () ->
        let g = diamond () in
        match G.shortest_path g ~src:0 ~dst:3 with
        | None -> Alcotest.fail "path must exist"
        | Some (d, path) ->
            Alcotest.check fl "distance" 6.0 d;
            (* 0 -1-> 1 -2-> 2 -3-> 3 via edges 0, 2, 4 *)
            Alcotest.(check (list int)) "path" [ 0; 2; 4 ] path);
    Alcotest.test_case "Dijkstra with a custom weight function" `Quick (fun () ->
        let g = diamond () in
        (* Make everything cost 1 per hop: shortest hop path 0-1-3. *)
        let weight_fn (_ : G.edge) = 1.0 in
        match G.shortest_path ~weight_fn g ~src:0 ~dst:3 with
        | None -> Alcotest.fail "path must exist"
        | Some (d, path) ->
            Alcotest.check fl "hops" 2.0 d;
            Alcotest.(check int) "two edges" 2 (List.length path));
    Alcotest.test_case "Dijkstra handles zero-weight edges" `Quick (fun () ->
        let g = G.create ~n:3 [ (0, 1, 0.0); (1, 2, 0.0); (0, 2, 1.0) ] in
        match G.shortest_path g ~src:0 ~dst:2 with
        | Some (d, path) ->
            Alcotest.check fl "free ride" 0.0 d;
            Alcotest.(check (list int)) "path" [ 0; 1 ] path
        | None -> Alcotest.fail "path must exist");
    Alcotest.test_case "rooted tree structure" `Quick (fun () ->
        let g = diamond () in
        let tree = G.Tree.of_edge_ids g ~root:0 [ 0; 2; 4 ] in
        Alcotest.(check int) "depth 3" 3 (G.Tree.depth tree 3);
        Alcotest.(check (list int)) "path to root from 3" [ 4; 2; 0 ]
          (G.Tree.path_to_root tree 3);
        Alcotest.(check int) "usage of edge 0" 3 (G.Tree.usage tree 0);
        Alcotest.(check int) "usage of edge 2" 2 (G.Tree.usage tree 2);
        Alcotest.(check int) "usage of edge 4" 1 (G.Tree.usage tree 4);
        Alcotest.(check int) "usage of non-tree edge" 0 (G.Tree.usage tree 1);
        Alcotest.(check int) "lca(3,1)" 1 (G.Tree.lca tree 3 1);
        Alcotest.(check (list int)) "path between 3 and 1" [ 4; 2 ]
          (G.Tree.path_between tree 3 1);
        Alcotest.check fl "tree weight" 6.0 (G.Tree.total_weight tree);
        Alcotest.(check int) "subtree of 1" 3 (List.length (G.Tree.subtree_nodes tree 1)));
    Alcotest.test_case "of_edge_ids rejects non-trees" `Quick (fun () ->
        let g = diamond () in
        Alcotest.check_raises "too few"
          (Invalid_argument "Tree.of_edge_ids: a spanning tree has n-1 edges") (fun () ->
            ignore (G.Tree.of_edge_ids g ~root:0 [ 0; 2 ]));
        Alcotest.check_raises "cycle"
          (Invalid_argument "Tree.of_edge_ids: edges do not span the graph") (fun () ->
            ignore (G.Tree.of_edge_ids g ~root:0 [ 0; 1; 2 ])));
    Alcotest.test_case "spanning tree counts match known formulas" `Quick (fun () ->
        let unit _ = 1.0 in
        let unit2 _ _ = 1.0 in
        Alcotest.(check int) "cycle_5" 5
          (G.Enumerate.count_spanning_trees (G.Gen.cycle ~n:5 ~weight:unit));
        Alcotest.(check int) "path_6" 1
          (G.Enumerate.count_spanning_trees (G.Gen.path ~n:6 ~weight:unit));
        (* Cayley: n^(n-2). *)
        Alcotest.(check int) "K3" 3
          (G.Enumerate.count_spanning_trees (G.Gen.complete ~n:3 ~weight:unit2));
        Alcotest.(check int) "K4" 16
          (G.Enumerate.count_spanning_trees (G.Gen.complete ~n:4 ~weight:unit2));
        Alcotest.(check int) "K5" 125
          (G.Enumerate.count_spanning_trees (G.Gen.complete ~n:5 ~weight:unit2)));
    Alcotest.test_case "generators produce the advertised shapes" `Quick (fun () ->
        let rng = Prng.create 7 in
        let g =
          G.Gen.random_connected rng ~n:12 ~extra_edges:5
            ~rand_weight:(fun rng -> Prng.float rng 10.0)
        in
        Alcotest.(check int) "nodes" 12 (G.n_nodes g);
        Alcotest.(check int) "edges" 16 (G.n_edges g);
        Alcotest.(check bool) "connected" true (G.is_connected g);
        let grid = G.Gen.grid ~rows:3 ~cols:4 ~weight:(fun _ _ -> 1.0) in
        Alcotest.(check int) "grid nodes" 12 (G.n_nodes grid);
        Alcotest.(check int) "grid edges" 17 (G.n_edges grid);
        let star = G.Gen.star ~n:5 ~weight:(fun i -> float_of_int i) in
        Alcotest.(check int) "star edges" 4 (G.n_edges star));
    Alcotest.test_case "spanning trees of a parallel-edge multigraph" `Quick (fun () ->
        (* Two nodes joined by three parallel edges: exactly three spanning
           trees, one per edge. *)
        let g = G.create ~n:2 [ (0, 1, 1.0); (0, 1, 2.0); (0, 1, 3.0) ] in
        Alcotest.(check int) "three trees" 3 (G.Enumerate.count_spanning_trees g);
        let seen = ref [] in
        G.Enumerate.iter_spanning_trees g ~f:(fun t -> seen := t :: !seen);
        Alcotest.(check (list (list int))) "each single edge" [ [ 0 ]; [ 1 ]; [ 2 ] ]
          (List.sort compare !seen);
        (* MST picks the cheapest parallel edge. *)
        Alcotest.(check (option (list int))) "mst" (Some [ 0 ]) (G.mst_kruskal g));
    Alcotest.test_case "with_weights preserves structure" `Quick (fun () ->
        let g = diamond () in
        let g2 = G.with_weights g (fun e -> e.G.weight *. 2.0) in
        Alcotest.check fl "doubled" 8.0 (G.weight g2 1);
        Alcotest.(check int) "same edges" (G.n_edges g) (G.n_edges g2));
  ]

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:60 ~name gen f)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let is_spanning_tree g ids =
  List.length ids = G.n_nodes g - 1
  &&
  let uf = Repro_graph.Union_find.create (G.n_nodes g) in
  List.for_all
    (fun id ->
      let u, v = G.endpoints g id in
      Repro_graph.Union_find.union uf u v)
    ids

let property_tests =
  [
    prop "Kruskal and Prim agree on MST weight" seed_gen (fun seed ->
        let g = random_graph seed in
        match (G.mst_kruskal g, G.mst_prim g) with
        | Some k, Some p ->
            Repro_util.Floatx.approx_eq (G.total_weight g k) (G.total_weight g p)
        | _ -> false);
    prop "MST is a spanning tree" seed_gen (fun seed ->
        let g = random_graph seed in
        match G.mst_kruskal g with Some ids -> is_spanning_tree g ids | None -> false);
    prop "MST is minimum among all spanning trees" seed_gen (fun seed ->
        let g = random_graph seed in
        match G.mst_kruskal g with
        | None -> false
        | Some ids ->
            let w = G.total_weight g ids in
            G.Enumerate.fold_spanning_trees g ~init:true ~f:(fun ok t ->
                ok && Repro_util.Floatx.leq w (G.total_weight g t)));
    prop "Dijkstra agrees with Floyd-Warshall" seed_gen (fun seed ->
        let g = random_graph seed in
        let fw = floyd_warshall g in
        let ok = ref true in
        for src = 0 to G.n_nodes g - 1 do
          let sp = G.dijkstra g ~src in
          for dst = 0 to G.n_nodes g - 1 do
            match sp.G.dist.(dst) with
            | None -> if fw.(src).(dst) < Float.infinity then ok := false
            | Some d -> if not (Repro_util.Floatx.approx_eq d fw.(src).(dst)) then ok := false
          done
        done;
        !ok);
    prop "extracted shortest paths have the reported cost" seed_gen (fun seed ->
        let g = random_graph seed in
        let rng = Prng.create (seed + 1) in
        let src = Prng.int rng (G.n_nodes g) and dst = Prng.int rng (G.n_nodes g) in
        src = dst
        ||
        match G.shortest_path g ~src ~dst with
        | None -> false
        | Some (d, path) ->
            let walked = G.total_weight g path in
            Repro_util.Floatx.approx_eq d walked);
    prop "every enumerated spanning tree is one, and the MST is among them" seed_gen
      (fun seed ->
        let g = random_graph seed in
        let all_ok =
          G.Enumerate.fold_spanning_trees g ~init:true ~f:(fun ok t ->
              ok && is_spanning_tree g t)
        in
        let mst = Option.get (G.mst_kruskal g) in
        let seen =
          G.Enumerate.fold_spanning_trees g ~init:false ~f:(fun seen t -> seen || t = mst)
        in
        all_ok && seen);
    prop "tree usages sum to total path length" seed_gen (fun seed ->
        let g = random_graph seed in
        let ids = Option.get (G.mst_kruskal g) in
        let tree = G.Tree.of_edge_ids g ~root:0 ids in
        (* sum_a usage(a) counts (node, ancestor-edge) pairs = sum of depths. *)
        let usage_sum = List.fold_left (fun acc id -> acc + G.Tree.usage tree id) 0 ids in
        let depth_sum = ref 0 in
        for v = 0 to G.n_nodes g - 1 do
          depth_sum := !depth_sum + G.Tree.depth tree v
        done;
        usage_sum = !depth_sum);
    prop "lca is the deepest common ancestor" seed_gen (fun seed ->
        let g = random_graph seed in
        let ids = Option.get (G.mst_kruskal g) in
        let tree = G.Tree.of_edge_ids g ~root:0 ids in
        let ancestors v =
          let rec go v acc =
            match G.Tree.parent tree v with None -> v :: acc | Some p -> go p (v :: acc)
          in
          go v []
        in
        let ok = ref true in
        for u = 0 to G.n_nodes g - 1 do
          for v = 0 to G.n_nodes g - 1 do
            let common =
              List.filter (fun a -> List.mem a (ancestors v)) (ancestors u)
            in
            let deepest =
              List.fold_left
                (fun best a -> if G.Tree.depth tree a > G.Tree.depth tree best then a else best)
                0 common
            in
            if G.Tree.lca tree u v <> deepest then ok := false
          done
        done;
        !ok);
    prop "rollback union-find undo restores component count" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let n = 12 in
        let uf = Repro_graph.Union_find.Rollback.create n in
        let before = Repro_graph.Union_find.Rollback.components uf in
        let performed = ref 0 in
        for _ = 1 to 20 do
          let u = Prng.int rng n and v = Prng.int rng n in
          if u <> v && Repro_graph.Union_find.Rollback.union uf u v then incr performed
        done;
        for _ = 1 to !performed do
          Repro_graph.Union_find.Rollback.undo uf
        done;
        Repro_graph.Union_find.Rollback.components uf = before);
  ]

let suite = unit_tests @ property_tests
