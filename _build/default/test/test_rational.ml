(* Tests for the exact rational field: normalization invariants, field
   axioms (as properties), exact harmonic sums, and conversions. *)

module Q = Repro_field.Rational
module B = Repro_field.Bigint

let q = Q.of_ints
let check_str msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let rat_gen =
  let open QCheck2.Gen in
  let* n = int_range (-10_000) 10_000 in
  let* d = int_range 1 10_000 in
  return (Q.of_ints n d)

let unit_tests =
  [
    Alcotest.test_case "normalization" `Quick (fun () ->
        check_str "4/8" "1/2" (q 4 8);
        check_str "-4/8" "-1/2" (q (-4) 8);
        check_str "4/-8" "-1/2" (q 4 (-8));
        check_str "0/7" "0" (q 0 7);
        check_str "6/3" "2" (q 6 3);
        Alcotest.(check bool) "invariant" true (Q.check (q 123456 (-987654))));
    Alcotest.test_case "zero denominator raises" `Quick (fun () ->
        Alcotest.check_raises "0 den" Division_by_zero (fun () -> ignore (q 1 0));
        Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Q.inv Q.zero)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        check_str "1/2 + 1/3" "5/6" (Q.add (q 1 2) (q 1 3));
        check_str "1/2 - 1/3" "1/6" (Q.sub (q 1 2) (q 1 3));
        check_str "2/3 * 9/4" "3/2" (Q.mul (q 2 3) (q 9 4));
        check_str "(1/2) / (1/3)" "3/2" (Q.div (q 1 2) (q 1 3)));
    Alcotest.test_case "comparisons are exact" `Quick (fun () ->
        (* 1/3 + 1/3 + 1/3 = 1 exactly: the reason this module exists. *)
        let third = q 1 3 in
        Alcotest.(check bool) "sum of thirds" true
          (Q.equal Q.one (Q.add third (Q.add third third)));
        Alcotest.(check bool) "order" true (Q.lt (q 99999 100000) Q.one));
    Alcotest.test_case "harmonic numbers" `Quick (fun () ->
        check_str "H_1" "1" (Q.harmonic 1);
        check_str "H_4" "25/12" (Q.harmonic 4);
        check_str "H_10" "7381/2520" (Q.harmonic 10);
        check_str "H_0" "0" (Q.harmonic 0));
    Alcotest.test_case "harmonic_diff matches subtraction" `Quick (fun () ->
        let lhs = Q.harmonic_diff 20 7 in
        let rhs = Q.sub (Q.harmonic 20) (Q.harmonic 7) in
        Alcotest.(check bool) "H_20 - H_7" true (Q.equal lhs rhs));
    Alcotest.test_case "to_float accuracy" `Quick (fun () ->
        Alcotest.(check (float 1e-12)) "1/3" (1.0 /. 3.0) (Q.to_float (q 1 3));
        Alcotest.(check (float 1e-12)) "-7/2" (-3.5) (Q.to_float (q (-7) 2));
        Alcotest.(check (float 1e-9))
          "H_100 matches float harmonic" (Repro_util.Harmonic.h 100)
          (Q.to_float (Q.harmonic 100)));
    Alcotest.test_case "the generic field harmonic agrees with both backends" `Quick
      (fun () ->
        (* Field.harmonic is what the game engine's Rosenthal potential
           uses; it must match the specialized implementations. *)
        let module F = Repro_field.Field in
        for n = 0 to 30 do
          Alcotest.(check bool)
            (Printf.sprintf "rational H_%d" n)
            true
            (Q.equal (F.harmonic (module F.Rat) n) (Q.harmonic n));
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "float H_%d" n)
            (Repro_util.Harmonic.h n)
            (F.harmonic (module F.Float_field) n)
        done;
        Alcotest.(check bool) "diff" true
          (Q.equal
             (F.harmonic_diff (module F.Rat) 12 5)
             (Q.harmonic_diff 12 5)));
    Alcotest.test_case "of_string round-trip" `Quick (fun () ->
        List.iter
          (fun s -> check_str s s (Q.of_string s))
          [ "0"; "-3"; "1/2"; "-13717421/109739369" ]);
  ]

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let property_tests =
  [
    prop "normalized invariant holds after ops" QCheck2.Gen.(pair rat_gen rat_gen)
      (fun (x, y) ->
        Q.check (Q.add x y) && Q.check (Q.sub x y) && Q.check (Q.mul x y)
        && (Q.is_zero y || Q.check (Q.div x y)));
    prop "addition commutes" QCheck2.Gen.(pair rat_gen rat_gen) (fun (x, y) ->
        Q.equal (Q.add x y) (Q.add y x));
    prop "mul distributes over add" QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
      (fun (x, y, z) -> Q.equal (Q.mul x (Q.add y z)) (Q.add (Q.mul x y) (Q.mul x z)));
    prop "x * inv x = 1" rat_gen (fun x ->
        Q.is_zero x || Q.equal Q.one (Q.mul x (Q.inv x)));
    prop "sub anti-commutes" QCheck2.Gen.(pair rat_gen rat_gen) (fun (x, y) ->
        Q.equal (Q.sub x y) (Q.neg (Q.sub y x)));
    prop "compare consistent with float order on well-separated values"
      QCheck2.Gen.(pair rat_gen rat_gen)
      (fun (x, y) ->
        let fx = Q.to_float x and fy = Q.to_float y in
        Float.abs (fx -. fy) < 1e-9 || compare fx fy = Q.compare x y);
    prop "string round-trip" rat_gen (fun x -> Q.equal x (Q.of_string (Q.to_string x)));
    prop "abs is non-negative" rat_gen (fun x -> Q.sign (Q.abs x) >= 0);
  ]

let suite = unit_tests @ property_tests
