(* Tests for the remaining utility modules: the binary heap, harmonic
   numbers, float comparisons, tables, and the domain pool. *)

module Heap = Repro_util.Heap
module Harmonic = Repro_util.Harmonic
module Fx = Repro_util.Floatx
module Table = Repro_util.Table
module Parallel = Repro_parallel.Parallel
module Prng = Repro_util.Prng

let unit_tests =
  [
    Alcotest.test_case "heap basics" `Quick (fun () ->
        let h = Heap.create ~cmp:compare in
        Alcotest.(check bool) "empty" true (Heap.is_empty h);
        Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
        List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
        Alcotest.(check int) "size" 5 (Heap.size h);
        Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
        Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Heap.to_sorted_list h);
        Alcotest.(check bool) "drained" true (Heap.is_empty h));
    Alcotest.test_case "heap with custom comparison" `Quick (fun () ->
        let h = Heap.create ~cmp:(fun a b -> compare b a) in
        List.iter (Heap.push h) [ 2; 9; 4 ];
        Alcotest.(check (option int)) "max first" (Some 9) (Heap.pop h));
    Alcotest.test_case "harmonic numbers" `Quick (fun () ->
        Alcotest.(check (float 1e-12)) "H_0" 0.0 (Harmonic.h 0);
        Alcotest.(check (float 1e-12)) "H_1" 1.0 (Harmonic.h 1);
        Alcotest.(check (float 1e-12)) "H_4" (25.0 /. 12.0) (Harmonic.h 4);
        Alcotest.(check (float 1e-9)) "diff" (Harmonic.h 20 -. Harmonic.h 7) (Harmonic.diff 20 7);
        Alcotest.check_raises "negative" (Invalid_argument "Harmonic.h: negative index")
          (fun () -> ignore (Harmonic.h (-1))));
    Alcotest.test_case "harmonic asymptotic expansion is continuous at the cutoff" `Quick
      (fun () ->
        (* Compare the expansion against direct summation just above the
           table limit. *)
        let n = (1 lsl 16) + 5 in
        let direct = ref 0.0 in
        for i = 1 to n do
          direct := !direct +. (1.0 /. float_of_int i)
        done;
        Alcotest.(check (float 1e-9)) "expansion matches summation" !direct (Harmonic.h n));
    Alcotest.test_case "bypass path length matches its defining inequality" `Quick
      (fun () ->
        for kappa = 1 to 30 do
          let l = Harmonic.min_l_exceeding kappa in
          if not (Harmonic.diff (kappa + l) kappa > 1.0) then
            Alcotest.failf "l too small at kappa=%d" kappa;
          if l > 1 && Harmonic.diff (kappa + l - 1) kappa > 1.0 then
            Alcotest.failf "l not minimal at kappa=%d" kappa
        done);
    Alcotest.test_case "floatx comparisons" `Quick (fun () ->
        Alcotest.(check bool) "approx_eq at scale" true (Fx.approx_eq 1e12 (1e12 +. 1.0));
        Alcotest.(check bool) "lt beyond tolerance" true (Fx.lt 1.0 1.1);
        Alcotest.(check bool) "not lt within tolerance" false (Fx.lt 1.0 (1.0 +. 1e-12));
        Alcotest.(check bool) "leq with slop" true (Fx.leq (1.0 +. 1e-12) 1.0);
        Alcotest.(check (float 0.0)) "clamp" 2.0 (Fx.clamp ~lo:0.0 ~hi:2.0 5.0));
    Alcotest.test_case "kahan summation beats naive on adversarial input" `Quick
      (fun () ->
        let a = Array.init 10_001 (fun i -> if i = 0 then 1e16 else 1.0) in
        a.(10_000) <- -1e16;
        (* True sum = 9999. Naive summation loses every unit addend into
           the 1e16's rounding; Kahan keeps them to within a few ulps. *)
        let naive = Array.fold_left ( +. ) 0.0 a in
        Alcotest.(check bool) "naive is far off" true (Float.abs (naive -. 9999.0) > 100.0);
        Alcotest.(check (float 4.0)) "kahan" 9999.0 (Fx.sum_kahan a));
    Alcotest.test_case "table renders all cells" `Quick (fun () ->
        let t = Table.create ~title:"T" ~header:[ "a"; "b" ] in
        Table.add_row t [ "1"; "2" ];
        Table.add_rows t [ [ "333"; Table.cell_b true ]; [ Table.cell_f 1.5 ] ];
        let s = Table.render t in
        let contains needle =
          let rec find i =
            i + String.length needle <= String.length s
            && (String.sub s i (String.length needle) = needle || find (i + 1))
          in
          find 0
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
          [ "== T =="; "333"; "yes"; "1.5000" ]);
    Alcotest.test_case "parallel map preserves order and values" `Quick (fun () ->
        let a = Array.init 100 (fun i -> i) in
        let r = Parallel.map ~domains:4 (fun x -> x * x) a in
        Alcotest.(check bool) "squares" true (Array.for_all2 (fun x y -> y = x * x) a r));
    Alcotest.test_case "parallel map re-raises worker exceptions" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Parallel.map ~domains:3
                  (fun x -> if x = 7 then failwith "boom" else x)
                  (Array.init 20 (fun i -> i)));
             false
           with Failure msg -> msg = "boom"));
    Alcotest.test_case "parallel map on empty input" `Quick (fun () ->
        Alcotest.(check int) "empty" 0 (Array.length (Parallel.map (fun x -> x) [||])));
    Alcotest.test_case "timed returns the thunk's value" `Quick (fun () ->
        let v, dt = Parallel.timed (fun () -> 42) in
        Alcotest.(check int) "value" 42 v;
        Alcotest.(check bool) "non-negative time" true (dt >= 0.0));
  ]

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let property_tests =
  [
    prop "heap drains in sorted order" QCheck2.Gen.(list_size (int_range 0 60) int)
      (fun xs ->
        let h = Heap.create ~cmp:compare in
        List.iter (Heap.push h) xs;
        Heap.to_sorted_list h = List.sort compare xs);
    prop "heap interleaved push/pop maintains the invariant"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Prng.create seed in
        let h = Heap.create ~cmp:compare in
        let model = ref [] in
        let ok = ref true in
        for _ = 1 to 200 do
          if Prng.bool rng || !model = [] then begin
            let x = Prng.int rng 1000 in
            Heap.push h x;
            model := x :: !model
          end
          else begin
            let expected = List.fold_left min max_int !model in
            (match Heap.pop h with
            | Some v when v = expected ->
                model :=
                  (let removed = ref false in
                   List.filter
                     (fun y ->
                       if (not !removed) && y = expected then (
                         removed := true;
                         false)
                       else true)
                     !model)
            | _ -> ok := false)
          end
        done;
        !ok && Heap.size h = List.length !model);
    prop "harmonic is monotone and concave-ish" QCheck2.Gen.(int_range 1 5000) (fun n ->
        Harmonic.h (n + 1) > Harmonic.h n
        && Harmonic.h (n + 1) -. Harmonic.h n <= 1.0 /. float_of_int n +. 1e-12);
    prop "parallel map equals sequential map" QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Prng.create seed in
        let a = Array.init (Prng.int_in_range rng ~lo:1 ~hi:64) (fun _ -> Prng.int rng 1000) in
        Parallel.map ~domains:3 (fun x -> (2 * x) + 1) a = Array.map (fun x -> (2 * x) + 1) a);
  ]

let suite = unit_tests @ property_tests
