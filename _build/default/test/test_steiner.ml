(* Tests for the Dreyfus-Wagner Steiner tree solver: known instances,
   degeneration to MST / shortest paths, brute-force agreement on random
   graphs, and the multicast cross-check — the Steiner optimum must equal
   the game engine's exhaustive cheapest-state cost. *)

module St = Repro_graph.Steiner.Float_steiner
module G = St.G
module Gm = Repro_game.Game.Float_game
module Prng = Repro_util.Prng
module Fx = Repro_util.Floatx

let fl = Alcotest.float 1e-9

(* St.G and Gm.G are the same applicative instantiation. *)

let connected_through g terminals ids =
  let uf = Repro_graph.Union_find.create (G.n_nodes g) in
  List.iter
    (fun id ->
      let u, v = G.endpoints g id in
      ignore (Repro_graph.Union_find.union uf u v))
    ids;
  match terminals with
  | [] -> true
  | t0 :: rest -> List.for_all (fun t -> Repro_graph.Union_find.same uf t0 t) rest

(* Reference: try every subset of non-terminal "Steiner" nodes, MST of the
   induced subgraph, keep the best. *)
let brute_force g terminals =
  let n = G.n_nodes g in
  let term = Array.make n false in
  List.iter (fun t -> term.(t) <- true) terminals;
  let optional = List.filter (fun v -> not term.(v)) (List.init n (fun i -> i)) in
  let best = ref None in
  let rec go chosen = function
    | [] ->
        let keep = Array.copy term in
        List.iter (fun v -> keep.(v) <- true) chosen;
        (* MST over the kept nodes, via Kruskal restricted to kept
           endpoints; the result must connect all terminals. *)
        let uf = Repro_graph.Union_find.create n in
        let weight = ref 0.0 in
        let order = List.init (G.n_edges g) (fun i -> i) in
        let order =
          List.sort (fun a b -> compare (G.weight g a) (G.weight g b)) order
        in
        List.iter
          (fun id ->
            let u, v = G.endpoints g id in
            if keep.(u) && keep.(v) && Repro_graph.Union_find.union uf u v then
              weight := !weight +. G.weight g id)
          order;
        let connected =
          match terminals with
          | [] -> true
          | t0 :: rest -> List.for_all (fun t -> Repro_graph.Union_find.same uf t0 t) rest
        in
        if connected then
          (match !best with
          | Some b when b <= !weight -> ()
          | _ -> best := Some !weight)
    | v :: rest ->
        go chosen rest;
        go (v :: chosen) rest
  in
  go [] optional;
  Option.get !best

let random_graph seed =
  let rng = Prng.create seed in
  let n = Prng.int_in_range rng ~lo:4 ~hi:8 in
  G.Gen.random_connected rng ~n ~extra_edges:(Prng.int rng 6)
    ~rand_weight:(fun rng -> float_of_int (Prng.int_in_range rng ~lo:1 ~hi:9))

let unit_tests =
  [
    Alcotest.test_case "two terminals degenerate to the shortest path" `Quick (fun () ->
        let g =
          G.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (0, 3, 2.5) ]
        in
        let w, ids = St.minimum_steiner_tree g ~terminals:[ 0; 3 ] in
        Alcotest.check fl "weight = shortest path" 2.5 w;
        Alcotest.(check (list int)) "the direct edge" [ 3 ] ids);
    Alcotest.test_case "all nodes as terminals degenerate to the MST" `Quick (fun () ->
        let g = random_graph 3 in
        let terminals = List.init (G.n_nodes g) (fun i -> i) in
        let w, _ = St.minimum_steiner_tree g ~terminals in
        let mst_w = G.total_weight g (Option.get (G.mst_kruskal g)) in
        Alcotest.check fl "MST weight" mst_w w);
    Alcotest.test_case "a genuine Steiner point beats terminal-only trees" `Quick
      (fun () ->
        (* Star with center 4: terminals 0,1,2 pairwise at distance 2
           through the center, but 3 through each other. *)
        let g =
          G.create ~n:4
            [ (0, 3, 1.0); (1, 3, 1.0); (2, 3, 1.0); (0, 1, 2.8); (1, 2, 2.8); (0, 2, 2.8) ]
        in
        let w, ids = St.minimum_steiner_tree g ~terminals:[ 0; 1; 2 ] in
        Alcotest.check fl "through the hub" 3.0 w;
        Alcotest.(check (list int)) "three spokes" [ 0; 1; 2 ] ids);
    Alcotest.test_case "input validation" `Quick (fun () ->
        let g = G.create ~n:2 [ (0, 1, 1.0) ] in
        Alcotest.(check bool) "no terminals" true
          (try ignore (St.minimum_steiner_tree g ~terminals:[]); false
           with Invalid_argument _ -> true);
        let disconnected = G.create ~n:3 [ (0, 1, 1.0) ] in
        Alcotest.(check bool) "disconnected" true
          (try ignore (St.minimum_steiner_tree disconnected ~terminals:[ 0; 2 ]); false
           with Invalid_argument _ -> true));
  ]

let prop ?(count = 40) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 1_000_000) f)

let property_tests =
  [
    prop "agrees with brute force over Steiner-node subsets" (fun seed ->
        let g = random_graph seed in
        let rng = Prng.create (seed + 1) in
        let k = Prng.int_in_range rng ~lo:2 ~hi:(min 4 (G.n_nodes g)) in
        let terminals =
          Array.to_list (Prng.sample rng k (Array.init (G.n_nodes g) (fun i -> i)))
        in
        let w, ids = St.minimum_steiner_tree g ~terminals in
        Fx.approx_eq w (brute_force g terminals)
        && Fx.approx_eq w (G.total_weight g ids)
        && connected_through g terminals ids);
    prop "Steiner optimum = multicast game's cheapest state" ~count:15 (fun seed ->
        let g = random_graph seed in
        let rng = Prng.create (seed + 2) in
        let root = Prng.int rng (G.n_nodes g) in
        let others = List.filter (( <> ) root) (List.init (G.n_nodes g) (fun i -> i)) in
        let terminals =
          Array.to_list (Prng.sample rng (min 2 (List.length others)) (Array.of_list others))
        in
        let spec = Gm.multicast ~graph:g ~root ~terminals in
        match Gm.Exact.state_landscape ~max_states:200_000 spec with
        | exception Invalid_argument _ -> true (* too many states: skip *)
        | l ->
            let w, _ = St.minimum_steiner_tree g ~terminals:(root :: terminals) in
            Fx.approx_eq w l.Gm.Exact.optimum);
  ]

let suite = unit_tests @ property_tests
