(* Tests for the deterministic PRNG, including a regression for the 2^62
   overflow that once made [float] return negative values. *)

module Prng = Repro_util.Prng

let unit_tests =
  [
    Alcotest.test_case "determinism from seed" `Quick (fun () ->
        let a = Prng.create 42 and b = Prng.create 42 in
        for _ = 1 to 100 do
          Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
        done);
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let a = Prng.create 1 and b = Prng.create 2 in
        let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
        Alcotest.(check bool) "streams differ" true (xs <> ys));
    Alcotest.test_case "split produces an independent stream" `Quick (fun () ->
        let a = Prng.create 7 in
        let c = Prng.split a in
        let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> Prng.int c 1_000_000) in
        Alcotest.(check bool) "streams differ" true (xs <> ys));
    Alcotest.test_case "copy replays" `Quick (fun () ->
        let a = Prng.create 11 in
        ignore (Prng.int a 10);
        let b = Prng.copy a in
        Alcotest.(check int) "replay" (Prng.int a 1000) (Prng.int b 1000));
    Alcotest.test_case "int rejects non-positive bounds" `Quick (fun () ->
        let a = Prng.create 1 in
        Alcotest.check_raises "zero" (Invalid_argument "Prng.int: bound must be positive")
          (fun () -> ignore (Prng.int a 0)));
  ]

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let property_tests =
  [
    prop "int stays in range" QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 1000))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let v = Prng.int rng n in
        0 <= v && v < n);
    prop "int_in_range stays in range"
      QCheck2.Gen.(triple (int_range 0 10_000) (int_range (-50) 50) (int_range 0 100))
      (fun (seed, lo, extent) ->
        let rng = Prng.create seed in
        let hi = lo + extent in
        let v = Prng.int_in_range rng ~lo ~hi in
        lo <= v && v <= hi);
    prop "float is non-negative and below the bound (overflow regression)"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let rng = Prng.create seed in
        let ok = ref true in
        for _ = 1 to 50 do
          let x = Prng.float rng 10.0 in
          if not (0.0 <= x && x < 10.0) then ok := false
        done;
        !ok);
    prop "shuffle is a permutation" QCheck2.Gen.(int_range 0 10_000) (fun seed ->
        let rng = Prng.create seed in
        let a = Array.init 30 (fun i -> i) in
        Prng.shuffle rng a;
        List.sort compare (Array.to_list a) = List.init 30 (fun i -> i));
    prop "sample yields distinct elements" QCheck2.Gen.(int_range 0 10_000) (fun seed ->
        let rng = Prng.create seed in
        let a = Array.init 20 (fun i -> i) in
        let s = Prng.sample rng 8 a |> Array.to_list in
        List.length (List.sort_uniq compare s) = 8);
  ]

let suite = unit_tests @ property_tests
