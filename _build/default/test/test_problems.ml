(* Tests for the NP-complete problem substrates: exact bin packing, DPLL
   SAT, and maximum independent set. Each solver is validated on known
   instances and against brute force on random small ones. *)

module BP = Repro_problems.Binpacking
module Sat = Repro_problems.Sat
module IS = Repro_problems.Indepset
module Prng = Repro_util.Prng

(* Brute force references. *)
let brute_force_exact_fill (t : BP.t) =
  let n = Array.length t.BP.sizes in
  let rec go i load =
    if i = n then Array.for_all (fun l -> l = t.BP.capacity) load
    else
      let rec try_bin j =
        j < t.BP.bins
        && ((load.(j) + t.BP.sizes.(i) <= t.BP.capacity
            &&
            (load.(j) <- load.(j) + t.BP.sizes.(i);
             let r = go (i + 1) load in
             load.(j) <- load.(j) - t.BP.sizes.(i);
             r))
           || try_bin (j + 1))
      in
      try_bin 0
  in
  go 0 (Array.make t.BP.bins 0)

let brute_force_sat (t : Sat.t) =
  let rec go v assignment =
    if v > t.Sat.n_vars then Sat.satisfies t assignment
    else begin
      assignment.(v) <- false;
      go (v + 1) assignment
      ||
      (assignment.(v) <- true;
       go (v + 1) assignment)
    end
  in
  go 1 (Array.make (t.Sat.n_vars + 1) false)

let brute_force_alpha (g : IS.t) =
  let n = IS.n_nodes g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let nodes = List.filter (fun v -> (mask lsr v) land 1 = 1) (List.init n (fun i -> i)) in
    if IS.is_independent g nodes then best := max !best (List.length nodes)
  done;
  !best

let unit_tests =
  [
    Alcotest.test_case "bin packing: solvable strict instance" `Quick (fun () ->
        let t = BP.create ~sizes:[| 4; 4; 2; 2; 2; 2 |] ~bins:2 ~capacity:8 in
        Alcotest.(check bool) "strict" true (BP.is_strict t);
        match BP.solve t with
        | Some a -> Alcotest.(check bool) "checks" true (BP.check t a)
        | None -> Alcotest.fail "instance is solvable");
    Alcotest.test_case "bin packing: unsolvable exact fill" `Quick (fun () ->
        (* Total = 16 = 2*8 but 6+6 > 8 and 6+4+... no exact split:
           {6,6,4}: 6+? bins must sum to 8 each: impossible. *)
        let t = BP.create ~sizes:[| 6; 6; 4 |] ~bins:2 ~capacity:8 in
        Alcotest.(check bool) "no exact fill" true (BP.solve t = None));
    Alcotest.test_case "bin packing: normalize produces equivalent strict form" `Quick
      (fun () ->
        let t = BP.create ~sizes:[| 3; 3; 5 |] ~bins:2 ~capacity:6 in
        let s = BP.normalize t in
        Alcotest.(check bool) "strict" true (BP.is_strict s);
        (* 3+3 fits a bin, 5+1 fills the other: solvable. *)
        Alcotest.(check bool) "solvable" true (BP.solve s <> None);
        Alcotest.(check bool) "fit answer matches" true (BP.solve_fit t <> None));
    Alcotest.test_case "bin packing: oversized item rejected" `Quick (fun () ->
        let t = BP.create ~sizes:[| 9 |] ~bins:1 ~capacity:8 in
        Alcotest.check_raises "oversize"
          (Invalid_argument "Binpacking.normalize: an item exceeds the capacity") (fun () ->
            ignore (BP.normalize t)));
    Alcotest.test_case "sat: simple formulas" `Quick (fun () ->
        let f = Sat.create ~n_vars:2 [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ] ] in
        Alcotest.(check bool) "satisfiable" true (Sat.is_satisfiable f);
        let g = Sat.create ~n_vars:1 [ [ 1 ]; [ -1 ] ] in
        Alcotest.(check bool) "contradiction" false (Sat.is_satisfiable g);
        let h = Sat.create ~n_vars:2 [ [ 1; 2 ]; [ -1; -2 ]; [ 1; -2 ]; [ -1; 2 ] ] in
        Alcotest.(check bool) "xor of x,y with both implications is unsat" false
          (Sat.is_satisfiable h));
    Alcotest.test_case "sat: solver returns a genuine model" `Quick (fun () ->
        let f =
          Sat.create ~n_vars:4 [ [ 1; -2; 3 ]; [ -1; 2; -4 ]; [ 2; 3; 4 ]; [ -3; -4; 1 ] ]
        in
        match Sat.solve f with
        | Some a -> Alcotest.(check bool) "model satisfies" true (Sat.satisfies f a)
        | None -> Alcotest.fail "formula is satisfiable");
    Alcotest.test_case "sat: 3sat-4 recognizer" `Quick (fun () ->
        let ok = Sat.create ~n_vars:4 [ [ 1; 2; 3 ]; [ -1; -2; 4 ] ] in
        Alcotest.(check bool) "well-formed" true (Sat.is_3sat4 ok);
        let dup = Sat.create ~n_vars:3 [ [ 1; -1; 2 ] ] in
        Alcotest.(check bool) "duplicate variable in clause" false (Sat.is_3sat4 dup);
        let wide = Sat.create ~n_vars:4 [ [ 1; 2 ] ] in
        Alcotest.(check bool) "wrong width" false (Sat.is_3sat4 wide);
        let busy =
          Sat.create ~n_vars:5
            [ [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ 1; 3; 4 ]; [ 1; 2; 5 ]; [ 1; 3; 5 ] ]
        in
        Alcotest.(check bool) "variable 1 appears 5 times" false (Sat.is_3sat4 busy));
    Alcotest.test_case "sat: random 3sat-4 generator is well-formed" `Quick (fun () ->
        let rng = Prng.create 5 in
        let f = Sat.random_3sat4 rng ~n_vars:9 ~n_clauses:8 in
        Alcotest.(check bool) "3sat-4" true (Sat.is_3sat4 f);
        Alcotest.(check int) "clauses" 8 (List.length f.Sat.clauses));
    Alcotest.test_case "sat: all_satisfying agrees with brute force count" `Quick
      (fun () ->
        let f = Sat.create ~n_vars:3 [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ] in
        (* 8 assignments minus all-false minus all-true = 6. *)
        Alcotest.(check int) "count" 6 (List.length (Sat.all_satisfying f)));
    Alcotest.test_case "independent set: named graphs have known alpha" `Quick (fun () ->
        let expect = [ ("K4", 1); ("K3,3", 3); ("prism", 2); ("Petersen", 4); ("cube", 4); ("Moebius-Kantor", 8) ] in
        List.iter
          (fun (name, alpha) ->
            let g = List.assoc name IS.named in
            Alcotest.(check bool) (name ^ " is 3-regular") true (IS.is_3regular g);
            Alcotest.(check int) (name ^ " alpha") alpha (IS.independence_number g);
            Alcotest.(check bool)
              (name ^ " witness is independent")
              true
              (IS.is_independent g (IS.max_independent_set g)))
          expect);
    Alcotest.test_case "independent set: rejects malformed graphs" `Quick (fun () ->
        Alcotest.check_raises "self-loop" (Invalid_argument "Indepset.create: self-loop")
          (fun () -> ignore (IS.create ~n:2 [ (0, 0) ]));
        Alcotest.check_raises "duplicate" (Invalid_argument "Indepset.create: duplicate edge")
          (fun () -> ignore (IS.create ~n:2 [ (0, 1); (1, 0) ])));
    Alcotest.test_case "random 3-regular graphs are 3-regular and connected" `Quick
      (fun () ->
        let rng = Prng.create 3 in
        for _ = 1 to 5 do
          let g = IS.random_3regular rng ~n:10 in
          Alcotest.(check bool) "3-regular" true (IS.is_3regular g);
          Alcotest.(check int) "edges" 15 (IS.n_edges g)
        done);
  ]

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let property_tests =
  [
    prop "exact bin packing agrees with brute force"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Prng.create seed in
        let bins = Prng.int_in_range rng ~lo:1 ~hi:3 in
        let capacity = 2 * Prng.int_in_range rng ~lo:2 ~hi:5 in
        (* Random even items that sum to bins * capacity. *)
        let rec items remaining acc =
          if remaining = 0 then acc
          else
            let s = 2 * Prng.int_in_range rng ~lo:1 ~hi:(min (capacity / 2) (remaining / 2)) in
            items (remaining - s) (s :: acc)
        in
        let sizes = Array.of_list (items (bins * capacity) []) in
        let t = BP.create ~sizes ~bins ~capacity in
        (BP.solve t <> None) = brute_force_exact_fill t);
    prop "solve's assignments always check" QCheck2.Gen.(int_range 0 100_000) (fun seed ->
        let rng = Prng.create seed in
        let bins = Prng.int_in_range rng ~lo:1 ~hi:3 in
        let capacity = 2 * Prng.int_in_range rng ~lo:2 ~hi:5 in
        let rec items remaining acc =
          if remaining = 0 then acc
          else
            let s = 2 * Prng.int_in_range rng ~lo:1 ~hi:(min (capacity / 2) (remaining / 2)) in
            items (remaining - s) (s :: acc)
        in
        let sizes = Array.of_list (items (bins * capacity) []) in
        let t = BP.create ~sizes ~bins ~capacity in
        match BP.solve t with None -> true | Some a -> BP.check t a);
    prop "DPLL agrees with brute force on random 3-CNF"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Prng.create seed in
        let n_vars = Prng.int_in_range rng ~lo:2 ~hi:6 in
        let n_clauses = Prng.int_in_range rng ~lo:1 ~hi:10 in
        let clause () =
          List.init 3 (fun _ ->
              let v = 1 + Prng.int rng n_vars in
              if Prng.bool rng then v else -v)
        in
        let f = Sat.create ~n_vars (List.init n_clauses (fun _ -> clause ())) in
        Sat.is_satisfiable f = brute_force_sat f);
    prop "branch-and-bound alpha agrees with brute force" ~count:30
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Prng.create seed in
        let n = Prng.int_in_range rng ~lo:4 ~hi:10 in
        let edges = ref [] in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if Prng.int rng 100 < 40 then edges := (u, v) :: !edges
          done
        done;
        let g = IS.create ~n !edges in
        IS.independence_number g = brute_force_alpha g);
  ]

let suite = unit_tests @ property_tests
