  $ sne_cli solve --seed 3 -n 9
  $ sne_cli solve --seed 3 -n 9 --method thm6 | tail -n +2 | head -n 1
  $ cat > line.inst <<'END'
  > nodes 3
  > root 0
  > edge 0 1 2
  > edge 1 2 2
  > edge 0 2 5/2
  > tree 0 1
  > END
  $ sne_cli solve --file line.inst
  $ sne_cli landscape --seed 4 -n 7
  $ sne_cli lower-bound --family cycle --max-n 32
  $ sne_cli reduction --which bypass
  $ sne_cli solve --file ../../instances/twin_hubs.inst
  $ sne_cli solve --file ../../instances/cycle16.inst | head -n 2
