bench/stress.mli:
