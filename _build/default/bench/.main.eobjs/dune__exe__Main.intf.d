bench/main.mli:
