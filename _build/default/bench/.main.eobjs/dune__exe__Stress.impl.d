bench/stress.ml: Array List Option Printf Repro_core Repro_game Repro_graph Repro_util Stdlib Sys Unix
