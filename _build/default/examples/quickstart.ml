(* Quickstart: build a broadcast network design game, see why its minimum
   spanning tree is not an equilibrium, and enforce it with minimum
   subsidies computed by the LP of Theorem 1.

   Run with: dune exec examples/quickstart.exe *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float

let () =
  (* A tiny city: the root 0 is the exchange; nodes 1-3 are neighbourhoods.
     Cheap chain 0-1-2-3 plus a direct-but-pricey link from 3 to the
     exchange. *)
  let graph =
    G.create ~n:4 [ (0, 1, 2.0); (1, 2, 2.0); (2, 3, 2.0); (0, 3, 3.5) ]
  in
  let root = 0 in
  let spec = Gm.broadcast ~graph ~root in
  let mst = Option.get (G.mst_kruskal graph) in
  let tree = G.Tree.of_edge_ids graph ~root mst in
  Printf.printf "MST: edges %s, weight %.1f\n"
    (String.concat "," (List.map string_of_int mst))
    (G.Tree.total_weight tree);

  (* Player 3 pays 2/3 + 2/2 + 2/1 = 3.67 along the chain but only 3.5 on
     the direct link: the MST is not stable. *)
  let state = Gm.Broadcast.state_of_tree spec ~root tree in
  Array.iteri
    (fun i (s, _) ->
      Printf.printf "player at node %d pays %.3f\n" s (Gm.player_cost spec state i))
    spec.Gm.pairs;
  (match Gm.Broadcast.tree_violation spec tree with
  | Some (u, e, v, slack) ->
      Printf.printf
        "not an equilibrium: the player at node %d would switch to edge %d (toward %d), gaining %.3f\n"
        u e v (-.slack)
  | None -> print_endline "already an equilibrium");

  (* Minimum subsidies that make the MST stable (Theorem 1 / LP (3)). *)
  let r = Sne.broadcast spec ~root tree in
  Printf.printf "minimum subsidy cost: %.4f (%.1f%% of the tree weight)\n" r.Sne.cost
    (100.0 *. r.Sne.cost /. G.Tree.total_weight tree);
  Array.iteri
    (fun id b -> if b > 1e-9 then Printf.printf "  subsidize edge %d by %.4f\n" id b)
    r.Sne.subsidy;
  let ok = Gm.Broadcast.is_tree_equilibrium ~subsidy:r.Sne.subsidy spec tree in
  Printf.printf "MST is now an equilibrium: %b\n" ok;
  assert ok
