examples/worst_case_tour.ml: List Printf Repro_core Repro_game Repro_util Stdlib
