examples/metro_network.ml: Printf Repro_core Repro_game Repro_util Stdlib
