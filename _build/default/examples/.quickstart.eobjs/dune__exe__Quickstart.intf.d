examples/quickstart.mli:
