examples/reduction_gallery.ml: Array List Option Printf Repro_field Repro_game Repro_problems Repro_reductions Repro_util String
