examples/directed_anarchy.mli:
