examples/budget_frontier.mli:
