examples/reduction_gallery.mli:
