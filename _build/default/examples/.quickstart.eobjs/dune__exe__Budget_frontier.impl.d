examples/budget_frontier.ml: List Option Printf Repro_core Repro_game Repro_util Stdlib String
