examples/metro_network.mli:
