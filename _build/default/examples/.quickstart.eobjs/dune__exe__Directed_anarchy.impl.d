examples/directed_anarchy.ml: List Printf Repro_game Repro_util
