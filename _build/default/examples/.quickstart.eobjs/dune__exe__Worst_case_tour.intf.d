examples/worst_case_tour.mli:
