(* The motivating scenario of the paper's introduction, at city scale:
   a transit authority must propose a backbone network connecting every
   district to the central exchange, with districts sharing link costs
   equally. The cheapest design (the MST) is usually not stable; the
   authority compares three ways to spend subsidy money:

     1. the LP optimum (Theorem 1),
     2. the Theorem 6 constructive assignment (guaranteed <= wgt(T)/e),
     3. greedy all-or-nothing subsidies (whole links only, Section 5),

   and also what best-response dynamics deliver if it refuses to pay.

   Run with: dune exec examples/metro_network.exe *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Sne = Repro_core.Sne_lp.Float
module Enforce = Repro_core.Enforce
module Aon = Repro_core.Aon.Float
module Instances = Repro_core.Instances
module Table = Repro_util.Table

let () =
  let inst = Instances.grid_metro ~rows:4 ~cols:5 ~seed:2026 () in
  let graph = inst.Instances.graph and root = inst.Instances.root in
  let spec = Instances.spec inst in
  let tree = Instances.mst_tree inst in
  let w = G.Tree.total_weight tree in
  Printf.printf "metro grid: %d districts, %d candidate links, MST weight %.2f\n"
    (G.n_nodes graph - 1) (G.n_edges graph) w;
  Printf.printf "MST stable without subsidies: %b\n\n"
    (Gm.Broadcast.is_tree_equilibrium spec tree);

  let lp = Sne.broadcast spec ~root tree in
  let thm6 = Enforce.subsidize_mst graph tree in
  let greedy = Aon.greedy spec tree in
  let t = Table.create ~title:"Subsidy plans enforcing the MST" ~header:[ "plan"; "cost"; "% of wgt(T)"; "stable?" ] in
  let row name cost subsidy =
    Table.add_row t
      [
        name;
        Table.cell_f cost;
        Table.cell_f (100.0 *. cost /. w);
        Table.cell_b (Gm.Broadcast.is_tree_equilibrium ~subsidy spec tree);
      ]
  in
  row "LP optimum (Thm 1)" lp.Sne.cost lp.Sne.subsidy;
  row "Theorem 6 construction" thm6.Enforce.total thm6.Enforce.subsidy;
  row "greedy all-or-nothing" greedy.Aon.cost (Aon.subsidy_of_chosen graph greedy.Aon.chosen);
  Table.print t;
  Printf.printf "\nTheorem 6 guarantee: cost/wgt(T) = %.4f <= 1/e = %.4f\n"
    (Enforce.ratio thm6)
    (1.0 /. Stdlib.exp 1.0);

  (* What happens with no subsidies at all: selfish dynamics from the MST. *)
  let start = Gm.Broadcast.state_of_tree spec ~root tree in
  let out = Gm.Dynamics.best_response_dynamics spec start in
  Printf.printf
    "\nwithout subsidies, best-response dynamics converge in %d rounds (%d moves)\n"
    out.Gm.Dynamics.rounds out.Gm.Dynamics.moves;
  Printf.printf "resulting network costs %.2f vs optimal %.2f (+%.1f%%)\n"
    (Gm.social_cost spec out.Gm.Dynamics.state)
    w
    (100.0 *. ((Gm.social_cost spec out.Gm.Dynamics.state /. w) -. 1.0))
