(* Gallery of the paper's three hardness reductions, built and verified
   end-to-end on small instances with the exact-rational game engine.

   Run with: dune exec examples/reduction_gallery.exe *)

module Sat = Repro_problems.Sat
module IS = Repro_problems.Indepset
module BP = Repro_problems.Binpacking
module Q = Repro_field.Rational
module QGm = Repro_game.Game.Rat_game
module Bypass = Repro_reductions.Bypass_gadget.Rat
module Bp2snd = Repro_reductions.Binpacking_to_snd.Rat
module Is2pos = Repro_reductions.Indepset_to_pos.Rat
module Sat2aon = Repro_reductions.Sat_to_aon.Rat
module Table = Repro_util.Table

let () =
  (* ---- Figure 1 / Lemma 4: the Bypass gadget threshold ---- *)
  let kappa = 4 in
  let t = Table.create
      ~title:(Printf.sprintf "Bypass gadget, capacity %d: connector deviates iff beta < %d" kappa kappa)
      ~header:[ "beta"; "connector deviates?"; "tree is equilibrium?" ] in
  for beta = 1 to 8 do
    let g = Bypass.build ~capacity:kappa ~beta in
    Table.add_row t
      [ Table.cell_i beta;
        Table.cell_b (Bypass.connector_deviates g);
        Table.cell_b (Bypass.tree_is_equilibrium g) ]
  done;
  Table.print t;

  (* ---- Theorem 3 / Figure 2: BIN PACKING -> SND ---- *)
  let t = Table.create ~title:"BIN PACKING -> stable network design (budget 0)"
      ~header:[ "instance"; "packable?"; "equilibrium MST exists?" ] in
  List.iter
    (fun (name, inst) ->
      let c = Bp2snd.build inst in
      Table.add_row t
        [ name;
          Table.cell_b (BP.solve inst <> None);
          Table.cell_b (Bp2snd.find_equilibrium_mst c <> None) ])
    [
      ("4,4,2,2,2,2 in 2x8", BP.create ~sizes:[| 4; 4; 2; 2; 2; 2 |] ~bins:2 ~capacity:8);
      ("6,6,4 in 2x8", BP.create ~sizes:[| 6; 6; 4 |] ~bins:2 ~capacity:8);
      ("6,6,6,2,2,2 in 3x8", BP.create ~sizes:[| 6; 6; 6; 2; 2; 2 |] ~bins:3 ~capacity:8);
      ("4,4,4 in 2x6", BP.create ~sizes:[| 4; 4; 4 |] ~bins:2 ~capacity:6);
    ];
  Table.print t;

  (* ---- Theorem 5 / Figure 3: INDEPENDENT SET -> price of stability ---- *)
  let delta = Q.of_ints 1 12 in
  let t = Table.create ~title:"INDEPENDENT SET -> equilibrium weight 5n/2 - (1-delta)m"
      ~header:[ "graph H"; "alpha(H)"; "best equilibrium"; "star (m=0)"; "implied PoS" ] in
  List.iter
    (fun (name, h) ->
      let c = Is2pos.build h ~delta in
      let w, tree, mis = Is2pos.best_equilibrium c in
      assert (QGm.Broadcast.is_tree_equilibrium (Is2pos.spec c) tree);
      let star_w = Q.of_ints (5 * IS.n_nodes h) 2 in
      (* The best design has weight <= best equilibrium; the reduction's
         point is that computing the best equilibrium needs alpha(H). *)
      Table.add_row t
        [ name; Table.cell_i (List.length mis); Q.to_string w; Q.to_string star_w;
          Printf.sprintf "%.4f" (Q.to_float w /. Q.to_float (QGm.G.total_weight c.Is2pos.graph (Option.get (QGm.G.mst_kruskal c.Is2pos.graph)))) ])
    [ ("K4", IS.k4); ("prism", IS.prism); ("K3,3", IS.k33); ("Petersen", IS.petersen) ];
  Table.print t;

  (* ---- Theorem 12 / Figures 5-7: 3SAT-4 -> all-or-nothing SNE ---- *)
  let f = Sat.create ~n_vars:5 [ [ 1; 2; 3 ]; [ -1; 4; 5 ] ] in
  let c = Sat2aon.build f in
  let s = Sat2aon.stats c in
  Printf.printf
    "\n3SAT-4 formula (x1|x2|x3)&(!x1|x4|x5): gadget graph has %d nodes, %d edges (%d auxiliary), %d labels\n"
    s.Sat2aon.nodes s.Sat2aon.edges s.Sat2aon.aux s.Sat2aon.labels;
  Printf.printf "usage-count invariant (n_j / n_j - 3 players per light edge): %b\n"
    (Sat2aon.usage_counts_ok c);
  let t = Table.create ~title:"truth assignments vs light subsidies (cost 3|C| = 6 each)"
      ~header:[ "assignment x1..x5"; "satisfies?"; "light subsidies enforce T?" ] in
  for mask = 0 to 31 do
    let a = Array.init 6 (fun v -> v > 0 && (mask lsr (v - 1)) land 1 = 1) in
    let bits = String.concat "" (List.init 5 (fun i -> if a.(i + 1) then "1" else "0")) in
    Table.add_row t
      [ bits; Table.cell_b (Sat.satisfies f a); Table.cell_b (Sat2aon.assignment_enforces c a) ]
  done;
  Table.print t;
  print_endline "\n(the two answer columns agree on every row: Corollary 20)"
