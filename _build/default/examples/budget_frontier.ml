(* The designer's budget menu — the paper's motivating question, computed
   exactly on a small city: for every budget, the cheapest network that can
   be made an equilibrium with subsidies within that budget.

   Run with: dune exec examples/budget_frontier.exe *)

module Gm = Repro_game.Game.Float_game
module G = Gm.G
module Snd = Repro_core.Snd.Float
module Instances = Repro_core.Instances
module Table = Repro_util.Table

let () =
  let inst = Instances.random ~dist:(Instances.Integer 9) ~n:7 ~extra:5 ~seed:4242 () in
  let graph = inst.Instances.graph and root = inst.Instances.root in
  Printf.printf "city: %d sites, %d candidate links (seed 4242, root %d)\n"
    (G.n_nodes graph) (G.n_edges graph) root;
  let mst_w = G.total_weight graph (Option.get (G.mst_kruskal graph)) in
  Printf.printf "unconstrained optimum (MST): %.2f\n" mst_w;

  let frontier = Snd.pareto_frontier ~graph ~root in
  let t =
    Table.create ~title:"Pareto frontier: subsidy budget vs design weight"
      ~header:[ "required budget"; "design weight"; "overhead vs MST"; "tree edges" ]
  in
  List.iter
    (fun d ->
      Table.add_row t
        [
          Table.cell_f d.Snd.subsidy_cost;
          Table.cell_f d.Snd.weight;
          Printf.sprintf "+%.1f%%" (100.0 *. ((d.Snd.weight /. mst_w) -. 1.0));
          String.concat "," (List.map string_of_int d.Snd.tree_edges);
        ])
    frontier;
  Table.print t;

  print_endline "\nreading the menu at a few budgets:";
  List.iter
    (fun budget ->
      match Snd.best_for_budget frontier ~budget with
      | Some d ->
          Printf.printf "  budget %.2f -> weight %.2f (spend %.2f)\n" budget d.Snd.weight
            d.Snd.subsidy_cost
      | None -> Printf.printf "  budget %.2f -> infeasible\n" budget)
    [ 0.0; 0.25; 0.5; 1.0; 2.0 ];
  Printf.printf
    "\n(by Theorem 6, a budget of wgt(MST)/e = %.2f always buys the MST itself)\n"
    (mst_w /. Stdlib.exp 1.0)
